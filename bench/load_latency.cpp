// Snapshot cold-load latency: v2 copy-loading vs v3 mmap zero-copy loading
// as the matrix grows.
//
//   ./load_latency [--smoke] [nrows] [reps]
//
// For a fixed row count and nnz growing ~100× (average row degree sweep),
// the copy path must read+verify every byte — O(nnz) — while the mmap path
// parses only the header, control block and segment directory — O(1) in the
// matrix size. The acceptance bar for the zero-copy subsystem: v3 mmap
// cold-load time stays flat (within 2×) across the sweep while v2 copy-load
// grows roughly linearly, and products from both loads are bit-identical.
//
// "Cold" here means per-process-cold (fresh parse, fresh allocations); the
// file stays in page cache across reps, which is exactly the fleet serving
// scenario (N processes, one warm copy).
//
// Emits BENCH_load_latency.json (bench_json.hpp) for cross-PR tracking.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/timer.hpp"
#include "gen/generators.hpp"
#include "serve/snapshot.hpp"

namespace {

using namespace cw;

struct Measured {
  double load_ms = 0;        // best of reps
  double multiply_ms = 0;    // one A'×B to prove the load is usable
  std::uint64_t file_bytes = 0;
};

double best_ms(const std::vector<double>& xs) {
  double m = xs.front();
  for (double x : xs) m = x < m ? x : m;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int argi = 1;
  if (argc > argi && std::strcmp(argv[argi], "--smoke") == 0) {
    smoke = true;
    ++argi;
  }
  const index_t nrows = argc > argi ? std::atoi(argv[argi]) : (smoke ? 1500 : 20000);
  const int reps = argc > argi + 1 ? std::atoi(argv[argi + 1]) : 5;
  const std::vector<index_t> degrees =
      smoke ? std::vector<index_t>{2, 8} : std::vector<index_t>{4, 40, 400};

  const std::string dir = []() -> std::string {
    const char* t = std::getenv("TMPDIR");
    return t != nullptr ? t : "/tmp";
  }();

  bench::JsonBenchWriter json("load_latency");
  std::printf("snapshot cold-load latency, %d rows, best of %d reps\n", nrows,
              reps);
  std::printf("%10s %14s | %12s %12s %12s | %9s\n", "avg nnz/row", "nnz",
              "v2 copy ms", "v3 copy ms", "v3 mmap ms", "mmap MB");

  double mmap_min = 1e300, mmap_max = 0, copy_first = 0, copy_last = 0;
  for (index_t deg : degrees) {
    // A banded random matrix: nnz ≈ nrows × deg, values randomized so the
    // bit-identical check has real numerics to disagree on.
    Csr a = gen_banded(nrows, deg, 0.8, 42);
    randomize_values(a, 43);
    PipelineOptions opt;
    opt.scheme = ClusterScheme::kFixed;
    opt.fixed_length = 8;
    const Pipeline p(a, opt);

    const std::string v2_path = dir + "/cw_load_latency_v2.cwsnap";
    const std::string v3_path = dir + "/cw_load_latency_v3.cwsnap";
    serve::save_pipeline_file(v2_path, p, {.version = 2});
    serve::save_pipeline_file(v3_path, p, {.version = 3});
    const std::uint64_t v2_bytes = MmapRegion::query_file_size(v2_path);
    const std::uint64_t v3_bytes = MmapRegion::query_file_size(v3_path);

    const Csr b = gen_request_payload(a.nrows(), 16, 3, 44);
    const Csr want = p.unpermute_rows(p.multiply(b));

    Measured v2, v3copy, v3mmap;
    v2.file_bytes = v2_bytes;
    v3copy.file_bytes = v3_bytes;
    v3mmap.file_bytes = v3_bytes;
    std::vector<double> t_v2, t_v3copy, t_v3mmap;
    for (int r = 0; r < reps; ++r) {
      {
        Timer t;
        const Pipeline loaded = serve::load_pipeline_file(v2_path);
        t_v2.push_back(t.seconds() * 1e3);
        if (r == 0) {
          Timer tm;
          const Csr c = loaded.unpermute_rows(loaded.multiply(b));
          v2.multiply_ms = tm.seconds() * 1e3;
          if (!(c == want)) {
            std::fprintf(stderr, "FATAL: v2 product differs\n");
            return 1;
          }
        }
      }
      {
        // v3 through the fully-verified copying path (stream loader).
        std::ifstream f(v3_path, std::ios::binary);
        Timer t;
        const Pipeline loaded = serve::load_pipeline(f);
        t_v3copy.push_back(t.seconds() * 1e3);
        if (r == 0 && !(loaded.unpermute_rows(loaded.multiply(b)) == want)) {
          std::fprintf(stderr, "FATAL: v3 copy product differs\n");
          return 1;
        }
      }
      {
        Timer t;
        const Pipeline loaded = serve::load_pipeline_mmap(v3_path);
        t_v3mmap.push_back(t.seconds() * 1e3);
        if (r == 0) {
          Timer tm;
          const Csr c = loaded.unpermute_rows(loaded.multiply(b));
          v3mmap.multiply_ms = tm.seconds() * 1e3;
          if (!(c == want)) {
            std::fprintf(stderr, "FATAL: v3 mmap product differs\n");
            return 1;
          }
        }
      }
    }
    v2.load_ms = best_ms(t_v2);
    v3copy.load_ms = best_ms(t_v3copy);
    v3mmap.load_ms = best_ms(t_v3mmap);
    if (deg == degrees.front()) copy_first = v2.load_ms;
    copy_last = v2.load_ms;
    mmap_min = v3mmap.load_ms < mmap_min ? v3mmap.load_ms : mmap_min;
    mmap_max = v3mmap.load_ms > mmap_max ? v3mmap.load_ms : mmap_max;

    std::printf("%10d %14lld | %12.3f %12.3f %12.3f | %9.2f\n", deg,
                static_cast<long long>(a.nnz()), v2.load_ms, v3copy.load_ms,
                v3mmap.load_ms, static_cast<double>(v3_bytes) / 1e6);

    using W = bench::JsonBenchWriter;
    json.add({"load_v2_copy",
              {W::param("nrows", nrows), W::param("avg_nnz", deg),
               W::param("nnz", a.nnz())},
              v2.load_ms * 1e6, 0, v2_bytes});
    json.add({"load_v3_copy",
              {W::param("nrows", nrows), W::param("avg_nnz", deg),
               W::param("nnz", a.nnz())},
              v3copy.load_ms * 1e6, 0, v3_bytes});
    json.add({"load_v3_mmap",
              {W::param("nrows", nrows), W::param("avg_nnz", deg),
               W::param("nnz", a.nnz())},
              v3mmap.load_ms * 1e6, v3_bytes, 0});

    std::remove(v2_path.c_str());
    std::remove(v3_path.c_str());
  }

  const double flatness = mmap_min > 0 ? mmap_max / mmap_min : 0;
  const double copy_growth = copy_first > 0 ? copy_last / copy_first : 0;
  std::printf(
      "\nmmap flatness %.2fx across the sweep (copy-load grew %.2fx); "
      "zero-copy load is O(header), copy load O(nnz)\n",
      flatness, copy_growth);
  const std::string path = json.write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return 0;
}
