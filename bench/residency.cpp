// Residency-plane benchmark: what prefaulting, frequency-aware admission and
// eviction-with-teeth are each worth.
//
//   ./residency [--smoke] [nrows]
//
// Three sweeps, one acceptance bar each:
//
//   (a) first-multiply latency, cold mmap vs prefaulted — a fresh (or
//       DONTNEEDed) mapping pays one page fault per touched page inside its
//       first multiply; warm_up() moves that cost out of the request path.
//       Bar: prefaulted < cold, products bit-identical to the unwarmed path.
//   (b) hot-pipeline hit rate under a scan flood, LRU vs TinyLFU — a stream
//       of one-shot matrices evicts LRU's hot entry every round; TinyLFU's
//       sketch lets the hot entry defend its slot. Bar: TinyLFU >= LRU.
//   (c) resident mapped bytes across eviction with release enabled — v3
//       eviction must return physical memory, not just forget a pointer.
//       Bar: resident bytes drop after the entry is evicted.
//
// Emits BENCH_residency.json (bench_json.hpp) for cross-PR tracking.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/residency.hpp"
#include "common/timer.hpp"
#include "gen/generators.hpp"
#include "serve/registry.hpp"
#include "serve/snapshot.hpp"

namespace {

using namespace cw;

double median_ms(std::vector<double> xs) {
  std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  return xs[mid];
}

std::shared_ptr<const Pipeline> tiny_pipeline(std::uint64_t seed) {
  PipelineOptions o;
  o.scheme = ClusterScheme::kFixed;
  o.fixed_length = 4;
  Csr a = gen_banded(48, 6, 0.9, seed);
  randomize_values(a, seed ^ 0x9E37);
  return std::make_shared<const Pipeline>(a, o);
}

struct FloodResult {
  double hot_hit_rate = 0;
  std::uint64_t admission_rejects = 0;
  std::uint64_t evictions = 0;
};

/// One hot pipeline queried every round, three fresh one-shot pipelines
/// inserted between queries (the scan). The capacity holds ~3 entries.
FloodResult run_scan_flood(serve::AdmissionKind kind, int rounds) {
  auto hot = tiny_pipeline(1);
  const serve::Fingerprint hot_key = serve::fingerprint(hot->matrix());
  serve::RegistryOptions opt;
  opt.capacity_bytes = 3 * serve::pipeline_footprint(*hot).anonymous_bytes +
                       serve::pipeline_footprint(*hot).anonymous_bytes / 2;
  opt.admission = kind;
  serve::PipelineRegistry reg(opt);

  std::uint64_t hot_hits = 0;
  std::uint64_t cold_seed = 100;
  for (int r = 0; r < rounds; ++r) {
    auto cached = reg.find(hot_key);
    if (cached != nullptr)
      ++hot_hits;
    else
      reg.insert(hot_key, hot);
    for (int c = 0; c < 3; ++c) {
      auto one_shot = tiny_pipeline(cold_seed++);
      const serve::Fingerprint k = serve::fingerprint(one_shot->matrix());
      if (reg.find(k) == nullptr) reg.insert(k, std::move(one_shot));
    }
  }
  FloodResult out;
  // The first round is a compulsory miss for every policy; rate over the
  // rounds that could have hit.
  out.hot_hit_rate = rounds > 1
                         ? static_cast<double>(hot_hits) /
                               static_cast<double>(rounds - 1)
                         : 0;
  out.admission_rejects = reg.stats().admission_rejects;
  out.evictions = reg.stats().evictions;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int argi = 1;
  if (argc > argi && std::strcmp(argv[argi], "--smoke") == 0) {
    smoke = true;
    ++argi;
  }
  const index_t nrows =
      argc > argi ? std::atoi(argv[argi]) : (smoke ? 3000 : 40000);
  const int reps = smoke ? 3 : 7;
  const int flood_rounds = smoke ? 16 : 64;

  const std::string dir = []() -> std::string {
    const char* t = std::getenv("TMPDIR");
    return t != nullptr ? t : "/tmp";
  }();
  bench::JsonBenchWriter json("residency");
  using W = bench::JsonBenchWriter;
  if (!residency::supported())
    std::printf("note: residency syscalls unavailable in this build; "
                "prefault works by touch, probes read 0\n");

  // --- (a) cold vs prefaulted first multiply -------------------------------
  Csr a = gen_banded(nrows, 16, 0.8, 42);
  randomize_values(a, 43);
  PipelineOptions popt;
  popt.scheme = ClusterScheme::kFixed;
  popt.fixed_length = 8;
  const Pipeline built(a, popt);
  const std::string path = dir + "/cw_residency_bench.cwsnap";
  serve::save_pipeline_file(path, built);
  const Csr b = gen_request_payload(nrows, 4, 3, 44);
  const Csr want = built.unpermute_rows(built.multiply(b));

  auto mapped = std::make_shared<const Pipeline>(serve::load_pipeline_mmap(path));
  const std::size_t mapped_bytes = mapped->residency().mapped_bytes;
  std::vector<double> cold_ms, warm_ms;
  for (int r = 0; r < reps; ++r) {
    // Cold: every mapped page dropped, the multiply pays the faults.
    mapped->release_residency();
    Timer tc;
    Csr c = mapped->unpermute_rows(mapped->multiply(b));
    cold_ms.push_back(tc.seconds() * 1e3);
    if (!(c == want)) {
      std::fprintf(stderr, "FATAL: cold-mmap product differs\n");
      return 1;
    }
    // Prefaulted: same starting state, faults paid by warm_up() instead.
    mapped->release_residency();
    mapped->warm_up();
    Timer tw;
    c = mapped->unpermute_rows(mapped->multiply(b));
    warm_ms.push_back(tw.seconds() * 1e3);
    if (!(c == want)) {
      std::fprintf(stderr, "FATAL: prefaulted product differs\n");
      return 1;
    }
  }
  const double cold = median_ms(cold_ms);
  const double warm = median_ms(warm_ms);
  std::printf("first multiply (%.2f MB mapped, median of %d): "
              "cold %.3f ms, prefaulted %.3f ms (%.2fx)\n",
              static_cast<double>(mapped_bytes) / 1e6, reps, cold, warm,
              warm > 0 ? cold / warm : 0);
  json.add({"first_multiply",
            {W::param("mode", "cold"), W::param("nrows", nrows)},
            cold * 1e6, mapped_bytes, 0});
  json.add({"first_multiply",
            {W::param("mode", "prefaulted"), W::param("nrows", nrows)},
            warm * 1e6, mapped_bytes, 0});

  // --- (b) scan flood: hot-pipeline hit rate, LRU vs TinyLFU ---------------
  const FloodResult lru =
      run_scan_flood(serve::AdmissionKind::kAdmitAll, flood_rounds);
  const FloodResult lfu =
      run_scan_flood(serve::AdmissionKind::kTinyLfu, flood_rounds);
  std::printf("scan flood (%d rounds): hot hit rate lru %.0f%% "
              "(%llu evictions) vs tinylfu %.0f%% (%llu rejects)\n",
              flood_rounds, lru.hot_hit_rate * 100,
              static_cast<unsigned long long>(lru.evictions),
              lfu.hot_hit_rate * 100,
              static_cast<unsigned long long>(lfu.admission_rejects));
  json.add({"scan_flood_hot_hit_rate",
            {W::param("admission", "lru"), W::param("rounds", flood_rounds),
             W::param("hit_rate_pct",
                      static_cast<long long>(lru.hot_hit_rate * 100))},
            0, 0, 0});
  json.add({"scan_flood_hot_hit_rate",
            {W::param("admission", "tinylfu"), W::param("rounds", flood_rounds),
             W::param("hit_rate_pct",
                      static_cast<long long>(lfu.hot_hit_rate * 100)),
             W::param("admission_rejects",
                      static_cast<long long>(lfu.admission_rejects))},
            0, 0, 0});

  // --- (c) eviction with teeth: resident mapped bytes drop -----------------
  serve::RegistryOptions ropt;
  auto filler0 = tiny_pipeline(7001);
  ropt.capacity_bytes = serve::pipeline_footprint(*mapped).anonymous_bytes +
                        serve::pipeline_footprint(*filler0).anonymous_bytes / 2;
  ropt.release_mapped_on_evict = true;
  serve::PipelineRegistry reg(ropt);
  reg.insert(serve::fingerprint(mapped->matrix()), mapped);
  mapped->warm_up();
  const std::size_t resident_before = mapped->residency().resident_mapped_bytes;
  // Two fillers exceed the budget: the mapped entry is the LRU victim.
  reg.insert(serve::fingerprint(filler0->matrix()), filler0);
  auto filler1 = tiny_pipeline(7002);
  const serve::Fingerprint filler1_key = serve::fingerprint(filler1->matrix());
  reg.insert(filler1_key, std::move(filler1));
  const std::size_t resident_after = mapped->residency().resident_mapped_bytes;
  std::printf("eviction with release: resident mapped %.2f MB -> %.2f MB "
              "(registry released %.2f MB)\n",
              static_cast<double>(resident_before) / 1e6,
              static_cast<double>(resident_after) / 1e6,
              static_cast<double>(reg.stats().released_bytes) / 1e6);
  json.add({"eviction_release",
            {W::param("stage", "before")}, 0, resident_before, 0});
  json.add({"eviction_release",
            {W::param("stage", "after")}, 0, resident_after, 0});

  if (residency::supported() && resident_after >= resident_before &&
      resident_before > 0) {
    std::fprintf(stderr, "FATAL: eviction did not release mapped residency\n");
    return 1;
  }

  const std::string out = json.write();
  if (!out.empty()) std::printf("wrote %s\n", out.c_str());
  std::remove(path.c_str());
  return 0;
}
