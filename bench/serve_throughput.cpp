// Serving-layer throughput study: how the prepared-matrix engine scales
// request throughput with workers, how request coalescing pays off, and what
// the registry's hit path costs versus re-preprocessing.
//
//   ./serve_throughput [dataset] [requests]     (default: conf5, 64)
//
// Five experiments:
//   1. snapshot economics — preprocess vs save vs load wall time;
//   2. engine scaling — requests/s for 1..max workers at 4 client threads;
//   3. batch-window sweep — batched (column-stacked B) vs unbatched serving
//      at 8 concurrent same-A clients, sweeping the latency budget;
//   4. tracing overhead — the same serving run at 0% / 1% / 100% request
//      sampling, so the cost of the stage-trace plane is a measured number
//      (production guidance: 1% should be within noise of off);
//   5. flight-recorder overhead — the same run with the always-on
//      tail-capture slot off vs armed (high threshold: nothing kept, pure
//      slot cost) vs armed with everything kept (worst case). The always-on
//      configuration is the one production runs with, so it must be within
//      noise of off;
//   6. registry amortization — get_or_build hit path vs rebuild per request;
//   7. fault containment — the same serving run with per-request deadlines
//      and a seeded multiply-fault rate, recording the deadline-miss rate
//      and the per-code typed-error counts (every request must resolve:
//      completed + failed == submitted even under chaos).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "common/timer.hpp"
#include "core/advisor.hpp"
#include "fault/injector.hpp"
#include "fault/status.hpp"
#include "gen/generators.hpp"
#include "gen/suite.hpp"
#include "serve/engine.hpp"
#include "serve/registry.hpp"
#include "serve/snapshot.hpp"

namespace {

using namespace cw;

/// Millisecond value as a JSON-param string (3 decimals).
std::string fmt_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

void run_engine(const std::shared_ptr<const Pipeline>& p,
                const std::vector<Csr>& payloads, int workers, int clients,
                bench::JsonBenchWriter* json) {
  serve::EngineOptions opt;
  opt.num_workers = workers;
  serve::ServeEngine engine(opt);
  const int requests = static_cast<int>(payloads.size());
  Timer t;
  std::vector<std::thread> threads;
  for (int cl = 0; cl < clients; ++cl) {
    threads.emplace_back([&, cl] {
      for (int i = cl; i < requests; i += clients)
        (void)engine.submit(p, payloads[static_cast<std::size_t>(i)]);
    });
  }
  for (auto& th : threads) th.join();
  engine.drain();
  const double wall = t.seconds();
  const serve::EngineStats st = engine.stats();
  std::printf(
      "  %2d workers  %8.1f ms  %7.0f req/s  p50 %6.2f ms  p99 %6.2f ms  "
      "%llu batches\n",
      workers, wall * 1e3, requests / wall, st.latency_p50_ms,
      st.latency_p99_ms, static_cast<unsigned long long>(st.batches));
  using W = bench::JsonBenchWriter;
  json->add({"engine_scaling",
             {W::param("workers", workers), W::param("clients", clients),
              W::param("requests", requests),
              W::param("latency_p50_ms", fmt_ms(st.latency_p50_ms)),
              W::param("latency_p95_ms", fmt_ms(st.latency_p95_ms)),
              W::param("latency_p99_ms", fmt_ms(st.latency_p99_ms)),
              W::param("latency_max_ms", fmt_ms(st.latency_max_ms))},
             wall / requests * 1e9, 0, 0});
}

/// Experiment 5 worker: one serving run at the given trace sampling rate.
/// Returns requests/s so the caller can report overhead vs sampling off.
double run_trace_overhead(const std::shared_ptr<const Pipeline>& p,
                          const std::vector<Csr>& payloads, int workers,
                          int clients, double sample_rate, double base_rps,
                          bench::JsonBenchWriter* json) {
  serve::EngineOptions opt;
  opt.num_workers = workers;
  opt.trace_sample_rate = sample_rate;
  serve::ServeEngine engine(opt);
  const int requests = static_cast<int>(payloads.size());
  Timer t;
  std::vector<std::thread> threads;
  for (int cl = 0; cl < clients; ++cl) {
    threads.emplace_back([&, cl] {
      for (int i = cl; i < requests; i += clients)
        (void)engine.submit(p, payloads[static_cast<std::size_t>(i)]);
    });
  }
  for (auto& th : threads) th.join();
  engine.drain();
  const double wall = t.seconds();
  const double rps = requests / wall;
  const std::uint64_t sampled =
      engine.tracer() != nullptr ? engine.tracer()->sampled() : 0;
  const std::size_t spans =
      engine.tracer() != nullptr ? engine.tracer()->spans().size() : 0;
  const double overhead_pct =
      base_rps > 0 ? (base_rps / rps - 1.0) * 100.0 : 0.0;
  std::printf("  sample %5.1f%%  %8.1f ms  %7.0f req/s  %+5.1f%% vs off  "
              "(%llu traced, %zu spans)\n",
              sample_rate * 100, wall * 1e3, rps, overhead_pct,
              static_cast<unsigned long long>(sampled), spans);
  using W = bench::JsonBenchWriter;
  json->add({"tracing_overhead",
             {W::param("sample_pct",
                       static_cast<long long>(sample_rate * 100)),
              W::param("workers", workers), W::param("clients", clients),
              W::param("requests", requests),
              W::param("sampled", static_cast<long long>(sampled)),
              W::param("overhead_pct", fmt_ms(overhead_pct))},
             wall / requests * 1e9, 0, 0});
  return rps;
}

/// Experiment 5 worker: one serving run with the flight recorder at the
/// given slow threshold (< 0 = recorder off). Returns requests/s.
double run_flight_overhead(const std::shared_ptr<const Pipeline>& p,
                           const std::vector<Csr>& payloads, int workers,
                           int clients, double threshold_ms, double base_rps,
                           bench::JsonBenchWriter* json) {
  serve::EngineOptions opt;
  opt.num_workers = workers;
  if (threshold_ms >= 0) opt.flight_slow_threshold_ms = threshold_ms;
  serve::ServeEngine engine(opt);
  const int requests = static_cast<int>(payloads.size());
  Timer t;
  std::vector<std::thread> threads;
  for (int cl = 0; cl < clients; ++cl) {
    threads.emplace_back([&, cl] {
      for (int i = cl; i < requests; i += clients)
        (void)engine.submit(p, payloads[static_cast<std::size_t>(i)]);
    });
  }
  for (auto& th : threads) th.join();
  engine.drain();
  const double wall = t.seconds();
  const double rps = requests / wall;
  const std::uint64_t kept =
      engine.flight() != nullptr ? engine.flight()->kept() : 0;
  const double overhead_pct =
      base_rps > 0 ? (base_rps / rps - 1.0) * 100.0 : 0.0;
  const char* mode = threshold_ms < 0       ? "off          "
                     : threshold_ms >= 1e6 ? "armed, idle  "
                                           : "keep all     ";
  std::printf("  flight %s %8.1f ms  %7.0f req/s  %+5.1f%% vs off  "
              "(%llu timelines kept)\n",
              mode, wall * 1e3, rps, overhead_pct,
              static_cast<unsigned long long>(kept));
  using W = bench::JsonBenchWriter;
  json->add({"flight_overhead",
             {W::param("threshold_ms", fmt_ms(threshold_ms)),
              W::param("workers", workers), W::param("clients", clients),
              W::param("requests", requests),
              W::param("kept", static_cast<long long>(kept)),
              W::param("overhead_pct", fmt_ms(overhead_pct))},
             wall / requests * 1e9, 0, 0});
  return rps;
}

void run_batch_sweep(const std::shared_ptr<const Pipeline>& p,
                     const std::vector<Csr>& payloads, int workers, int clients,
                     int bcols, long window_us, bench::JsonBenchWriter* json) {
  serve::EngineOptions opt;
  opt.num_workers = workers;
  opt.max_batch = 16;
  opt.batch_window = std::chrono::microseconds(window_us);
  serve::ServeEngine engine(opt);
  const int requests = static_cast<int>(payloads.size());
  Timer t;
  std::vector<std::thread> threads;
  for (int cl = 0; cl < clients; ++cl) {
    threads.emplace_back([&, cl] {
      for (int i = cl; i < requests; i += clients)
        (void)engine.submit(p, payloads[static_cast<std::size_t>(i)]);
    });
  }
  for (auto& th : threads) th.join();
  engine.drain();
  const double wall = t.seconds();
  const serve::EngineStats st = engine.stats();
  // Window hit rate: share of requests that actually rode a fused multiply.
  const double hit_rate =
      st.completed > 0
          ? static_cast<double>(st.stacked_requests) / static_cast<double>(st.completed)
          : 0;
  std::printf(
      "  %2d-col B  window %6ld us  %8.1f ms  %7.0f req/s  p99 %7.2f ms  "
      "%llu fused (%llu reqs, %llu cols, %.0f%% hit)\n",
      bcols, window_us, wall * 1e3, requests / wall, st.latency_p99_ms,
      static_cast<unsigned long long>(st.stacked_batches),
      static_cast<unsigned long long>(st.stacked_requests),
      static_cast<unsigned long long>(st.fused_columns), hit_rate * 100);
  using W = bench::JsonBenchWriter;
  json->add({"batch_window_sweep",
             {W::param("window_us", window_us), W::param("clients", clients),
              W::param("workers", workers), W::param("requests", requests),
              W::param("bcols", bcols),
              W::param("stacked_batches",
                       static_cast<long long>(st.stacked_batches)),
              W::param("stacked_requests",
                       static_cast<long long>(st.stacked_requests)),
              W::param("fused_columns",
                       static_cast<long long>(st.fused_columns)),
              W::param("window_timeouts",
                       static_cast<long long>(st.window_timeouts)),
              W::param("window_hit_rate_pct",
                       static_cast<long long>(hit_rate * 100))},
             wall / requests * 1e9, 0, 0});
}

/// Experiment 7 worker: the serving run under a seeded multiply-fault rate
/// and a per-request deadline; records miss rate and typed-error counts.
void run_fault_chaos(const std::shared_ptr<const Pipeline>& p,
                     const std::vector<Csr>& payloads, int workers,
                     int clients, long deadline_ms, double fault_rate,
                     bench::JsonBenchWriter* json) {
  fault::FaultInjector& inj = fault::FaultInjector::global();
  inj.reset();
  inj.seed(42);
  if (fault_rate > 0) {
    fault::FaultSpec spec;
    spec.probability = fault_rate;
    inj.arm("engine.multiply", spec);
  }
  serve::EngineOptions opt;
  opt.num_workers = workers;
  serve::ServeEngine engine(opt);
  serve::SubmitOptions sopt;
  if (deadline_ms > 0) sopt.deadline = std::chrono::milliseconds(deadline_ms);
  const int requests = static_cast<int>(payloads.size());
  Timer t;
  std::vector<std::thread> threads;
  for (int cl = 0; cl < clients; ++cl) {
    threads.emplace_back([&, cl] {
      for (int i = cl; i < requests; i += clients)
        (void)engine.submit(p, payloads[static_cast<std::size_t>(i)], sopt);
    });
  }
  for (auto& th : threads) th.join();
  engine.drain();
  const double wall = t.seconds();
  inj.reset();  // disarm before the next experiment touches the engine
  const serve::EngineStats st = engine.stats();
  const auto missed = st.errors[static_cast<std::size_t>(
      fault::ErrorCode::kDeadlineExceeded)];
  const auto injected = st.errors[static_cast<std::size_t>(
      fault::ErrorCode::kInternal)];
  const double miss_rate =
      requests > 0 ? static_cast<double>(missed) / requests : 0.0;
  std::printf("  fault %4.1f%%  deadline %4ld ms  %8.1f ms  %7.0f req/s  "
              "%llu failed (%llu injected, %llu deadline-missed)%s\n",
              fault_rate * 100, deadline_ms, wall * 1e3, requests / wall,
              static_cast<unsigned long long>(st.failed),
              static_cast<unsigned long long>(injected),
              static_cast<unsigned long long>(missed),
              st.completed + st.failed + st.shed == st.submitted
                  ? ""
                  : "  ACCOUNTING VIOLATION");
  using W = bench::JsonBenchWriter;
  json->add({"fault_chaos",
             {W::param("fault_pct", static_cast<long long>(fault_rate * 100)),
              W::param("deadline_ms", deadline_ms),
              W::param("workers", workers), W::param("clients", clients),
              W::param("requests", requests),
              W::param("completed", static_cast<long long>(st.completed)),
              W::param("failed", static_cast<long long>(st.failed)),
              W::param("err_internal", static_cast<long long>(injected)),
              W::param("err_deadline", static_cast<long long>(missed)),
              W::param("deadline_miss_rate_pct",
                       fmt_ms(miss_rate * 100))},
             wall / requests * 1e9, 0, 0});
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "conf5";
  const int requests = argc > 2 ? std::atoi(argv[2]) : 64;
  const Csr a = make_dataset(name, suite_scale_from_env());
  std::printf("dataset %s: %d x %d, %lld nnz\n", name.c_str(), a.nrows(),
              a.ncols(), static_cast<long long>(a.nnz()));
  bench::JsonBenchWriter json("serve_throughput");
  using W = bench::JsonBenchWriter;

  const Recommendation rec = advise(a, ReuseBudget::kThousands);

  // --- 1. snapshot economics ------------------------------------------------
  Timer t_prep;
  auto p = std::make_shared<const Pipeline>(a, rec.pipeline_options());
  const double prep_s = t_prep.seconds();
  std::stringstream buf;
  Timer t_save;
  serve::save(buf, *p);
  const double save_s = t_save.seconds();
  Timer t_load;
  const Pipeline reloaded = serve::load_pipeline(buf);
  const double load_s = t_load.seconds();
  // buf.str() copies the whole serialized snapshot; materialize its size
  // once instead of three times.
  const auto snap_bytes = static_cast<std::uint64_t>(buf.str().size());
  std::printf("\nsnapshot economics (%s + %s)\n", to_string(rec.reorder),
              to_string(rec.scheme));
  std::printf("  preprocess %8.1f ms\n", prep_s * 1e3);
  std::printf("  save       %8.1f ms (%.2f MB)\n", save_s * 1e3,
              static_cast<double>(snap_bytes) / 1e6);
  std::printf("  load       %8.1f ms (%.1fx cheaper than preprocessing)\n",
              load_s * 1e3, load_s > 0 ? prep_s / load_s : 0.0);
  json.add({"snapshot_preprocess", {W::param("dataset", name)}, prep_s * 1e9, 0, 0});
  json.add({"snapshot_save", {W::param("dataset", name)}, save_s * 1e9, 0,
            snap_bytes});
  json.add({"snapshot_copy_load", {W::param("dataset", name)}, load_s * 1e9, 0,
            snap_bytes});

  // --- 2. engine scaling ----------------------------------------------------
  std::vector<Csr> payloads;
  for (int i = 0; i < requests; ++i)
    payloads.push_back(gen_request_payload(a.nrows(), 32, 3,
                                           7000 + static_cast<std::uint64_t>(i)));
  std::printf("\nengine scaling (%d requests, 4 client threads)\n", requests);
  const int max_workers =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  for (int w = 1; w <= max_workers; w *= 2)
    run_engine(p, payloads, w, 4, &json);

  // --- 3. batch-window sweep: batched vs unbatched same-A serving -----------
  // >= 8 concurrent clients against one prepared A is exactly the scenario
  // the second-level scheduler targets: stacking their tall-skinny Bs
  // column-wise amortizes the A traversal (and the kernel launch) across the
  // whole pickup. The win grows as B gets skinnier; wide Bs cross over once
  // the fused panel's accumulator working set falls out of cache — which is
  // what EngineOptions::max_stacked_cols caps in production.
  std::printf("\nbatch-window sweep (%d requests, 8 clients, 2 workers)\n",
              requests * 2);
  for (const int bcols : {4, 32}) {
    std::vector<Csr> sweep_payloads;
    for (int i = 0; i < requests * 2; ++i)
      sweep_payloads.push_back(gen_request_payload(
          a.nrows(), bcols, 2, 9000 + static_cast<std::uint64_t>(i)));
    for (const long window_us : {0L, 200L, 1000L})
      run_batch_sweep(p, sweep_payloads, 2, 8, bcols, window_us, &json);
  }

  // --- 4. tracing overhead --------------------------------------------------
  // Same workload three times: sampling off, the 1% production setting, and
  // the everything-traced debugging setting. The first run's req/s anchors
  // the overhead column.
  std::printf("\ntracing overhead (%d requests, 4 clients, 4 workers)\n",
              requests);
  const double base_rps =
      run_trace_overhead(p, payloads, 4, 4, 0.0, 0.0, &json);
  run_trace_overhead(p, payloads, 4, 4, 0.01, base_rps, &json);
  run_trace_overhead(p, payloads, 4, 4, 1.0, base_rps, &json);

  // --- 5. flight-recorder overhead ------------------------------------------
  // Off anchors the baseline. "armed, idle" is the production setting: every
  // request pays for its pre-allocated slot and the completion verdict, but
  // the 1 s threshold keeps nothing — this row must be within noise of off.
  // "keep all" (threshold ~0) retains every timeline: the debugging worst
  // case, bounding what a misconfigured threshold can cost.
  std::printf("\nflight-recorder overhead (%d requests, 4 clients, 4 "
              "workers)\n",
              requests);
  const double flight_base =
      run_flight_overhead(p, payloads, 4, 4, -1.0, 0.0, &json);
  run_flight_overhead(p, payloads, 4, 4, 1e6, flight_base, &json);
  run_flight_overhead(p, payloads, 4, 4, 0.0001, flight_base, &json);

  // --- 6. registry amortization --------------------------------------------
  serve::PipelineRegistry registry(std::size_t{1} << 30);
  const serve::Fingerprint key = serve::fingerprint(a);
  auto build = [&] {
    return std::make_shared<const Pipeline>(a, rec.pipeline_options());
  };
  Timer t_cold;
  (void)registry.get_or_build(key, build);
  const double cold_s = t_cold.seconds();
  const int probes = 1000;
  Timer t_hot;
  for (int i = 0; i < probes; ++i) (void)registry.get_or_build(key, build);
  const double hot_s = t_hot.seconds() / probes;
  const serve::RegistryStats rst = registry.stats();
  std::printf("\nregistry amortization\n");
  std::printf("  cold get_or_build %10.3f ms (preprocess + insert)\n",
              cold_s * 1e3);
  std::printf("  hot  get_or_build %10.6f ms (%.0fx cheaper)\n", hot_s * 1e3,
              hot_s > 0 ? cold_s / hot_s : 0.0);
  std::printf("  hit rate          %10.1f %% (%llu hits, %llu misses)\n",
              rst.hit_rate() * 100,
              static_cast<unsigned long long>(rst.hits),
              static_cast<unsigned long long>(rst.misses));
  json.add({"registry_cold_get_or_build", {W::param("dataset", name)},
            cold_s * 1e9, 0, 0});
  json.add({"registry_hot_get_or_build", {W::param("dataset", name)},
            hot_s * 1e9, 0, 0});

  // --- 7. fault containment -------------------------------------------------
  // Chaos economics: what a 5% injected multiply-fault rate and a generous
  // per-request deadline cost the same serving run — and proof that every
  // request still resolves (the accounting line would call out a leak).
  std::printf("\nfault containment (%d requests, 4 clients, 4 workers, "
              "seeded)\n",
              requests);
  run_fault_chaos(p, payloads, 4, 4, 0, 0.0, &json);
  run_fault_chaos(p, payloads, 4, 4, 1000, 0.05, &json);

  const std::string json_path = json.write();
  if (!json_path.empty()) std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
