// google-benchmark micro suite: SpGEMM kernel variants — row-wise with each
// accumulator, cluster-wise with each clustering scheme, and the
// symbolic/numeric split.
#include <benchmark/benchmark.h>

#include "core/clusterwise_spgemm.hpp"
#include "core/clusterwise_spmm.hpp"
#include "core/clustering_schemes.hpp"
#include "gen/generators.hpp"
#include "spgemm/spgemm.hpp"
#include "spgemm/spmm.hpp"
#include "spgemm/tiled.hpp"

namespace {

using namespace cw;

Csr bench_matrix(int which) {
  switch (which) {
    case 0: return gen_tri_mesh(50, 50, false, 1);   // structured mesh
    case 1: return gen_tri_mesh(50, 50, true, 1);    // shuffled mesh
    case 2: return gen_rmat(10, 8, 0.55, 0.2, 0.15, 2);  // power law
    default: return gen_block_diag(2000, 8, 2.0, 3);  // dense blocks
  }
}

const char* matrix_name(int which) {
  switch (which) {
    case 0: return "mesh";
    case 1: return "mesh-shuffled";
    case 2: return "rmat";
    default: return "block";
  }
}

void BM_RowwiseSpgemm(benchmark::State& state) {
  const Csr a = bench_matrix(static_cast<int>(state.range(0)));
  const auto acc = static_cast<Accumulator>(state.range(1));
  for (auto _ : state) {
    Csr c = spgemm(a, a, acc);
    benchmark::DoNotOptimize(c.nnz());
  }
  state.SetLabel(std::string(matrix_name(static_cast<int>(state.range(0)))) +
                 "/" + to_string(acc));
  state.SetItemsProcessed(state.iterations() * spgemm_products(a, a));
}
BENCHMARK(BM_RowwiseSpgemm)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({0, 2})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({3, 0});

void BM_ClusterwiseSpgemm(benchmark::State& state) {
  const Csr a = bench_matrix(static_cast<int>(state.range(0)));
  Clustering cl;
  const char* scheme;
  switch (state.range(1)) {
    case 0:
      cl = Clustering::fixed(a.nrows(), 8);
      scheme = "fixed8";
      break;
    case 1:
      cl = variable_length_clustering(a, {});
      scheme = "variable";
      break;
    default: {
      // Hierarchical reorders; bench the kernel on the reordered matrix.
      const HierarchicalResult h = hierarchical_clustering(a, {});
      const Csr ap = a.permute_symmetric(h.order);
      const CsrCluster cc = CsrCluster::build(ap, h.clustering);
      for (auto _ : state) {
        Csr c = clusterwise_spgemm(cc, ap);
        benchmark::DoNotOptimize(c.nnz());
      }
      state.SetLabel(std::string(matrix_name(static_cast<int>(state.range(0)))) +
                     "/hierarchical");
      return;
    }
  }
  const CsrCluster cc = CsrCluster::build(a, cl);
  for (auto _ : state) {
    Csr c = clusterwise_spgemm(cc, a);
    benchmark::DoNotOptimize(c.nnz());
  }
  state.SetLabel(std::string(matrix_name(static_cast<int>(state.range(0)))) +
                 "/" + scheme);
}
BENCHMARK(BM_ClusterwiseSpgemm)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({0, 2})
    ->Args({1, 2})
    ->Args({3, 0})
    ->Args({3, 1});

// Ablation: lane accumulator (one probe per cluster column) vs per-row
// accumulators (Alg. 1 verbatim) — the kernel design choice DESIGN.md
// documents.
void BM_ClusterKernelVariant(benchmark::State& state) {
  const Csr a = bench_matrix(static_cast<int>(state.range(0)));
  const HierarchicalResult h = hierarchical_clustering(a, {});
  const Csr ap = a.permute_symmetric(h.order);
  const CsrCluster cc = CsrCluster::build(ap, h.clustering);
  const auto kernel = static_cast<ClusterKernel>(state.range(1));
  for (auto _ : state) {
    Csr c = clusterwise_spgemm(cc, ap, nullptr, kernel);
    benchmark::DoNotOptimize(c.nnz());
  }
  state.SetLabel(std::string(matrix_name(static_cast<int>(state.range(0)))) +
                 "/" + to_string(kernel));
}
BENCHMARK(BM_ClusterKernelVariant)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({3, 0})
    ->Args({3, 1});

void BM_SymbolicPhase(benchmark::State& state) {
  const Csr a = bench_matrix(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto counts = spgemm_symbolic(a, a);
    benchmark::DoNotOptimize(counts.data());
  }
  state.SetLabel(matrix_name(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_SymbolicPhase)->Arg(0)->Arg(2);

// Tiled SpGEMM (§5 future work): tile-width sweep against the untiled
// kernel.
void BM_TiledSpgemm(benchmark::State& state) {
  const Csr a = bench_matrix(static_cast<int>(state.range(0)));
  TiledOptions topt;
  topt.tile_cols = static_cast<index_t>(state.range(1));
  for (auto _ : state) {
    Csr c = spgemm_tiled(a, a, topt);
    benchmark::DoNotOptimize(c.nnz());
  }
  state.SetLabel(std::string(matrix_name(static_cast<int>(state.range(0)))) +
                 "/tile" + std::to_string(state.range(1)));
}
BENCHMARK(BM_TiledSpgemm)
    ->Args({0, 512})
    ->Args({0, 2048})
    ->Args({0, 1 << 20})
    ->Args({2, 512})
    ->Args({2, 2048});

// Cluster-wise SpMM vs row-wise SpMM (the [32] lineage workload).
void BM_Spmm(benchmark::State& state) {
  const Csr a = bench_matrix(static_cast<int>(state.range(0)));
  Dense b(a.ncols(), 16);
  for (index_t r = 0; r < b.nrows(); ++r)
    for (index_t c = 0; c < 16; ++c) b.at(r, c) = 0.5 + 0.001 * c;
  if (state.range(1) == 0) {
    for (auto _ : state) {
      Dense c = spmm(a, b);
      benchmark::DoNotOptimize(c.at(0, 0));
    }
  } else {
    const HierarchicalResult h = hierarchical_clustering(a, {});
    const Csr ap = a.permute_symmetric(h.order);
    const CsrCluster cc = CsrCluster::build(ap, h.clustering);
    for (auto _ : state) {
      Dense c = clusterwise_spmm(cc, b);
      benchmark::DoNotOptimize(c.at(0, 0));
    }
  }
  state.SetLabel(std::string(matrix_name(static_cast<int>(state.range(0)))) +
                 (state.range(1) == 0 ? "/rowwise" : "/clusterwise"));
}
BENCHMARK(BM_Spmm)->Args({0, 0})->Args({0, 1})->Args({1, 0})->Args({1, 1});

void BM_TopKCandidates(benchmark::State& state) {
  const Csr a = bench_matrix(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto pairs = spgemm_topk(a, {});
    benchmark::DoNotOptimize(pairs.data());
  }
  state.SetLabel(matrix_name(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_TopKCandidates)->Arg(0)->Arg(2);

}  // namespace
