// Shared helpers for the table/figure bench binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/timer.hpp"
#include "eval/runner.hpp"
#include "eval/tables.hpp"
#include "reorder/reorder.hpp"

namespace cw::bench {

/// A dataset with its baseline (row-wise, original order) A² time.
struct SuiteEntry {
  std::string name;
  Csr matrix;
  double baseline_seconds = 0;
};

/// Build + baseline-time every selected suite dataset. `names` empty = full
/// registry. Prints progress because the full suite takes a while.
inline std::vector<SuiteEntry> load_suite(const RunConfig& cfg,
                                          const std::vector<std::string>& names = {}) {
  std::vector<std::string> wanted = names;
  if (wanted.empty()) {
    for (const auto& spec : suite_specs()) wanted.push_back(spec.name);
  }
  std::vector<SuiteEntry> out;
  for (const std::string& name : wanted) {
    if (!dataset_selected(cfg, name)) continue;
    SuiteEntry e;
    e.name = name;
    e.matrix = make_dataset(name, cfg.scale);
    e.baseline_seconds = time_rowwise_square(e.matrix, cfg);
    std::fprintf(stderr, "  [suite] %-22s n=%-8d nnz=%-10lld baseline %8.2f ms\n",
                 name.c_str(), e.matrix.nrows(),
                 static_cast<long long>(e.matrix.nnz()),
                 e.baseline_seconds * 1e3);
    out.push_back(std::move(e));
  }
  return out;
}

inline void print_banner(const char* experiment, const char* paper_ref,
                         const RunConfig& cfg) {
  std::printf("== %s ==\n", experiment);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("suite scale: %s, reps: %d (set CW_SUITE / CW_REPS / CW_DATASETS)\n\n",
              to_string(cfg.scale), cfg.reps);
}

/// Reordering cache: the expensive orders (HP/GP/ND/AMD) are shared between
/// the row-wise / fixed / variable variants of the same bench binary instead
/// of being recomputed per variant.
struct CachedReorder {
  Permutation order;
  double seconds = 0;
};

inline const CachedReorder& reorder_cached(const std::string& dataset,
                                           const Csr& a, ReorderAlgo algo) {
  static std::map<std::pair<std::string, ReorderAlgo>, CachedReorder> cache;
  const auto key = std::make_pair(dataset, algo);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  // Second-level disk cache shared between bench binaries (an ordering is
  // deterministic in (dataset, algo, suite scale), so recomputing it per
  // binary only wastes time). Format: seconds, n, then the order vector.
  const std::string dir = ".cwcache";
  const std::string path = dir + "/" + dataset + "-" + to_string(algo) + "-" +
                           std::to_string(a.nrows()) + ".order";
  CachedReorder entry;
  if (FILE* f = std::fopen(path.c_str(), "rb")) {
    std::uint64_t n = 0;
    if (std::fread(&entry.seconds, sizeof entry.seconds, 1, f) == 1 &&
        std::fread(&n, sizeof n, 1, f) == 1 &&
        n == static_cast<std::uint64_t>(a.nrows())) {
      entry.order.resize(n);
      if (std::fread(entry.order.data(), sizeof(index_t), n, f) == n &&
          is_permutation(entry.order, a.nrows())) {
        std::fclose(f);
        return cache.emplace(key, std::move(entry)).first->second;
      }
    }
    std::fclose(f);
    entry = CachedReorder{};
  }

  Timer t;
  entry.order = reorder(a, algo);
  entry.seconds = t.seconds();
#ifdef _WIN32
#else
  (void)std::system(("mkdir -p " + dir).c_str());
#endif
  if (FILE* f = std::fopen(path.c_str(), "wb")) {
    const auto n = static_cast<std::uint64_t>(entry.order.size());
    std::fwrite(&entry.seconds, sizeof entry.seconds, 1, f);
    std::fwrite(&n, sizeof n, 1, f);
    std::fwrite(entry.order.data(), sizeof(index_t), entry.order.size(), f);
    std::fclose(f);
  }
  return cache.emplace(key, std::move(entry)).first->second;
}

/// One (dataset × reordering × clustering) measurement against the cached
/// row-wise/original baseline.
struct VariantResult {
  double kernel_seconds = 0;
  double preprocess_seconds = 0;  // reorder + clustering + format build
  double speedup = 0;
  PipelineStats stats;
  [[nodiscard]] double amortization_iters(double baseline_seconds) const {
    const double gain = baseline_seconds - kernel_seconds;
    return gain > 0 ? preprocess_seconds / gain : 1e18;
  }
};

inline VariantResult run_variant(const SuiteEntry& e, ReorderAlgo algo,
                                 ClusterScheme scheme, const RunConfig& cfg) {
  VariantResult r;
  PipelineOptions opt;
  opt.scheme = scheme;
  double reorder_seconds = 0;
  const Csr* matrix = &e.matrix;
  Csr permuted;
  if (algo != ReorderAlgo::kOriginal) {
    const CachedReorder& cached = reorder_cached(e.name, e.matrix, algo);
    reorder_seconds = cached.seconds;
    permuted = e.matrix.permute_symmetric(cached.order);
    matrix = &permuted;
  }
  Pipeline pipeline(*matrix, opt);
  r.stats = pipeline.stats();
  r.preprocess_seconds = reorder_seconds + pipeline.stats().preprocess_seconds();
  r.kernel_seconds = time_pipeline_square(pipeline, cfg);
  r.speedup = r.kernel_seconds > 0 ? e.baseline_seconds / r.kernel_seconds : 0;
  return r;
}

}  // namespace cw::bench
