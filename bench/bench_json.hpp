// Machine-readable bench output: every serving-layer bench appends records
// and writes one BENCH_<bench>.json next to the working directory (override
// the directory with CW_BENCH_JSON_DIR), so the perf trajectory is diffable
// across PRs instead of living in scrollback.
//
// Schema: {"bench": <name>, "records": [{"name": ..., "params": {k: v, ...},
// "ns_per_op": ..., "bytes_mapped": ..., "bytes_copied": ...}, ...]}
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace cw::bench {

class JsonBenchWriter {
 public:
  explicit JsonBenchWriter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  struct Record {
    std::string name;
    std::vector<std::pair<std::string, std::string>> params;
    double ns_per_op = 0;
    std::uint64_t bytes_mapped = 0;
    std::uint64_t bytes_copied = 0;
  };

  void add(Record r) { records_.push_back(std::move(r)); }

  /// Convenience: numeric params stringify themselves.
  static std::pair<std::string, std::string> param(const std::string& key,
                                                   long long value) {
    return {key, std::to_string(value)};
  }
  static std::pair<std::string, std::string> param(const std::string& key,
                                                   const std::string& value) {
    return {key, value};
  }

  /// Write BENCH_<bench>.json; returns the path (empty on failure — benches
  /// must not die because the cwd is read-only).
  std::string write() const {
    const char* dir = std::getenv("CW_BENCH_JSON_DIR");
    const std::string path =
        (dir != nullptr ? std::string(dir) + "/" : std::string()) + "BENCH_" +
        bench_name_ + ".json";
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return {};
    std::fprintf(f, "{\"bench\": \"%s\", \"records\": [", bench_name_.c_str());
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::fprintf(f, "%s\n  {\"name\": \"%s\", \"params\": {",
                   i == 0 ? "" : ",", escape(r.name).c_str());
      for (std::size_t p = 0; p < r.params.size(); ++p) {
        std::fprintf(f, "%s\"%s\": \"%s\"", p == 0 ? "" : ", ",
                     escape(r.params[p].first).c_str(),
                     escape(r.params[p].second).c_str());
      }
      std::fprintf(f,
                   "}, \"ns_per_op\": %.1f, \"bytes_mapped\": %llu, "
                   "\"bytes_copied\": %llu}",
                   r.ns_per_op,
                   static_cast<unsigned long long>(r.bytes_mapped),
                   static_cast<unsigned long long>(r.bytes_copied));
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    return path;
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) continue;  // keep it simple
      out.push_back(c);
    }
    return out;
  }

  std::string bench_name_;
  std::vector<Record> records_;
};

}  // namespace cw::bench
