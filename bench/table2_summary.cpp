// Table 2: GM / Pos% / +GM of every reordering for row-wise, fixed-cluster
// and variable-cluster SpGEMM (A² over the suite), plus the Best-Reordering
// row (per-matrix best across all reorderings).
#include "bench_common.hpp"
#include "common/stats.hpp"
#include "reorder/reorder.hpp"

int main() {
  using namespace cw;
  using namespace cw::bench;
  const RunConfig cfg = run_config_from_env();
  print_banner("Table 2: reordering impact across SpGEMM variants",
               "Table 2 (GM / Pos% / +GM per reordering × SpGEMM variant)", cfg);

  const std::vector<SuiteEntry> suite = load_suite(cfg);
  const ClusterScheme variants[] = {ClusterScheme::kNone, ClusterScheme::kFixed,
                                    ClusterScheme::kVariable};

  TextTable table({"Algorithm", "Row GM", "Row Pos%", "Row +GM", "Fix GM",
                   "Fix Pos%", "Fix +GM", "Var GM", "Var Pos%", "Var +GM"});

  // speedups[variant][dataset] of the best reordering per dataset.
  std::vector<std::vector<double>> best(3,
                                        std::vector<double>(suite.size(), 0.0));

  for (ReorderAlgo algo : all_reorder_algos()) {
    if (algo == ReorderAlgo::kOriginal) continue;
    std::vector<std::string> row{to_string(algo)};
    for (std::size_t v = 0; v < 3; ++v) {
      std::vector<double> speedups;
      for (std::size_t d = 0; d < suite.size(); ++d) {
        const VariantResult r = run_variant(suite[d], algo, variants[v], cfg);
        speedups.push_back(r.speedup);
        best[v][d] = std::max(best[v][d], r.speedup);
      }
      const SpeedupSummary s = summarize_speedups(speedups);
      row.push_back(fmt_double(s.gm));
      row.push_back(fmt_double(s.pos_pct, 1));
      row.push_back(fmt_double(s.pos_gm));
    }
    table.add_row(std::move(row));
  }

  std::vector<std::string> best_row{"Best Reord."};
  for (std::size_t v = 0; v < 3; ++v) {
    const SpeedupSummary s = summarize_speedups(best[v]);
    best_row.push_back(fmt_double(s.gm));
    best_row.push_back(fmt_double(s.pos_pct, 1));
    best_row.push_back(fmt_double(s.pos_gm));
  }
  table.add_row(std::move(best_row));

  std::fputs(table.render().c_str(), stdout);
  std::puts("\npaper shape: HP best single reordering (row GM ~1.77, ~80% pos);"
            "\nGP/RCM next; Shuffled worst (~0.43); Best-Reordering GM ~2.9.");
  return 0;
}
