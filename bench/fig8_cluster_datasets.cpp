// Fig. 8: the three cluster-wise SpGEMM methods on the 10 representative
// datasets, relative to row-wise SpGEMM on the original order.
#include "bench_common.hpp"

int main() {
  using namespace cw;
  using namespace cw::bench;
  const RunConfig cfg = run_config_from_env();
  print_banner("Figure 8: cluster-wise SpGEMM on representative datasets",
               "Fig. 8 (fixed/variable/hierarchical speedup on 10 datasets)",
               cfg);

  const std::vector<SuiteEntry> suite = load_suite(cfg, representative_datasets());
  TextTable table({"dataset", "fixed", "variable", "hierarchical"});
  for (const SuiteEntry& e : suite) {
    std::vector<std::string> row{e.name};
    for (ClusterScheme scheme : {ClusterScheme::kFixed, ClusterScheme::kVariable,
                                 ClusterScheme::kHierarchical}) {
      const VariantResult r = run_variant(e, ReorderAlgo::kOriginal, scheme, cfg);
      row.push_back(fmt_double(r.speedup));
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\npaper shape: hierarchical >= fixed/variable on nearly all 10;"
            "\nfixed/variable beat 1.0 only on well-structured matrices"
            " (conf5, pdb1, rma10).");
  return 0;
}
