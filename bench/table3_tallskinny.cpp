// Table 3: row-wise SpGEMM speedup after reordering on the tall-skinny
// workload (A × BC-frontier matrices, averaged over the first 10 frontiers),
// relative to the original order, per dataset × reordering + Best column.
#include "bench_common.hpp"
#include "common/stats.hpp"
#include "graph/frontier.hpp"
#include "reorder/reorder.hpp"

int main() {
  using namespace cw;
  using namespace cw::bench;
  const RunConfig cfg = run_config_from_env();
  print_banner("Table 3: reordered row-wise SpGEMM on tall-skinny matrices",
               "Table 3 (speedup per dataset × reordering, BC frontier workload)",
               cfg);

  std::vector<std::string> header{"Dataset"};
  for (ReorderAlgo algo : all_reorder_algos()) {
    if (algo == ReorderAlgo::kOriginal) continue;
    header.push_back(to_string(algo));
  }
  header.push_back("Best");
  TextTable table(header);

  for (const std::string& name : tallskinny_datasets()) {
    if (!dataset_selected(cfg, name)) continue;
    const Csr a = make_dataset(name, cfg.scale);
    FrontierOptions fopt;
    fopt.batch = 64;
    fopt.num_frontiers = 10;
    const std::vector<Csr> frontiers = bc_frontiers(a, fopt);
    std::fprintf(stderr, "  [table3] %-22s n=%d, %zu frontiers\n", name.c_str(),
                 a.nrows(), frontiers.size());

    // Baseline: original order, summed over the frontier series.
    double base_total = 0;
    for (const Csr& b : frontiers) {
      if (b.nnz() == 0) continue;
      base_total += time_rowwise(a, b, cfg);
    }

    std::vector<std::string> row{name};
    double best = 0;
    for (ReorderAlgo algo : all_reorder_algos()) {
      if (algo == ReorderAlgo::kOriginal) continue;
      const Permutation& order = reorder_cached(name, a, algo).order;
      const Csr pa = a.permute_symmetric(order);
      double total = 0;
      for (const Csr& b : frontiers) {
        if (b.nnz() == 0) continue;
        const Csr pb = b.permute_rows(order);
        total += time_rowwise(pa, pb, cfg);
      }
      const double speedup = total > 0 ? base_total / total : 0.0;
      best = std::max(best, speedup);
      row.push_back(fmt_double(speedup));
    }
    row.push_back(fmt_double(best));
    table.add_row(std::move(row));
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\npaper shape: mesh/road datasets (AS365, M6, NLR, europe_osm,"
            "\nGAP-road) gain most from RCM/ND/GP/HP; Shuffled hurts them badly;"
            "\nsocial graphs gain moderately across many orders.");
  return 0;
}
