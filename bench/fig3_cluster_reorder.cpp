// Fig. 3: cluster-wise SpGEMM (fixed- and variable-length, each after every
// reordering; hierarchical standalone) relative to row-wise SpGEMM on the
// original order, over the suite.
#include "bench_common.hpp"
#include "common/stats.hpp"
#include "reorder/reorder.hpp"

int main() {
  using namespace cw;
  using namespace cw::bench;
  const RunConfig cfg = run_config_from_env();
  print_banner("Figure 3: cluster-wise SpGEMM with reordering",
               "Fig. 3 (cluster-wise SpGEMM with reordering vs row-wise on original order)",
               cfg);

  const std::vector<SuiteEntry> suite = load_suite(cfg);

  auto run_group = [&](ClusterScheme scheme) {
    std::printf("\n-- %s clusters --\n", to_string(scheme));
    TextTable table({"reordering", "min", "q1", "median", "q3", "max", "geomean"});
    for (ReorderAlgo algo : all_reorder_algos()) {
      std::vector<double> speedups;
      for (const SuiteEntry& e : suite) {
        const VariantResult r = run_variant(e, algo, scheme, cfg);
        speedups.push_back(r.speedup);
      }
      const BoxSummary box = box_summary(speedups);
      table.add_row({to_string(algo), fmt_double(box.min), fmt_double(box.q1),
                     fmt_double(box.median), fmt_double(box.q3),
                     fmt_double(box.max), fmt_double(geomean(speedups))});
    }
    std::fputs(table.render().c_str(), stdout);
  };

  run_group(ClusterScheme::kFixed);
  run_group(ClusterScheme::kVariable);

  // Hierarchical is its own reordering; a single row (the paper plots it as
  // one box under variable-length clustering).
  std::printf("\n-- hierarchical (standalone; inherent reordering) --\n");
  std::vector<double> speedups;
  for (const SuiteEntry& e : suite) {
    const VariantResult r =
        run_variant(e, ReorderAlgo::kOriginal, ClusterScheme::kHierarchical, cfg);
    speedups.push_back(r.speedup);
  }
  const BoxSummary box = box_summary(speedups);
  TextTable table({"scheme", "min", "q1", "median", "q3", "max", "geomean"});
  table.add_row({"Hierarchical", fmt_double(box.min), fmt_double(box.q1),
                 fmt_double(box.median), fmt_double(box.q3),
                 fmt_double(box.max), fmt_double(geomean(speedups))});
  std::fputs(table.render().c_str(), stdout);
  std::puts("\npaper shape: hierarchical geomean ~1.39 with ~70% positive;"
            "\nHP/GP/RCM + clustering median > 1; Shuffled/Rabbit/AMD below 1.");
  return 0;
}
