// Table 4: hierarchical cluster-wise SpGEMM vs row-wise SpGEMM per BC
// frontier iteration i1..i10 (tall-skinny workload) + per-dataset mean.
#include "bench_common.hpp"
#include "common/stats.hpp"
#include "graph/frontier.hpp"

int main() {
  using namespace cw;
  using namespace cw::bench;
  const RunConfig cfg = run_config_from_env();
  print_banner("Table 4: hierarchical cluster-wise SpGEMM on BC frontiers",
               "Table 4 (speedup per frontier iteration i1..i10 + mean)", cfg);

  constexpr index_t kFrontiers = 10;
  std::vector<std::string> header{"Dataset"};
  for (index_t i = 1; i <= kFrontiers; ++i) header.push_back("i" + std::to_string(i));
  header.push_back("Mean");
  TextTable table(header);

  for (const std::string& name : tallskinny_datasets()) {
    if (!dataset_selected(cfg, name)) continue;
    const Csr a = make_dataset(name, cfg.scale);
    FrontierOptions fopt;
    fopt.batch = 64;
    fopt.num_frontiers = kFrontiers;
    const std::vector<Csr> frontiers = bc_frontiers(a, fopt);

    PipelineOptions opt;
    opt.scheme = ClusterScheme::kHierarchical;
    Pipeline pipeline(a, opt);
    std::fprintf(stderr, "  [table4] %-22s preprocess %.1f ms\n", name.c_str(),
                 pipeline.stats().preprocess_seconds() * 1e3);

    std::vector<std::string> row{name};
    std::vector<double> speedups;
    for (const Csr& b : frontiers) {
      if (b.nnz() == 0) {
        row.push_back("-");
        continue;
      }
      const double base = time_rowwise(a, b, cfg);
      const double clustered = time_pipeline(pipeline, b, cfg);
      const double speedup = clustered > 0 ? base / clustered : 0.0;
      speedups.push_back(speedup);
      row.push_back(fmt_double(speedup));
    }
    row.resize(header.size() - 1, "-");
    row.push_back(fmt_double(mean(speedups)));
    table.add_row(std::move(row));
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\npaper shape: datasets that win on A^2 (meshes, roads) also win"
            "\nacross the frontier series (AS365 ~2.1, GAP-road ~2.5, M6 ~2.5);"
            "\npower-law datasets hover near 1.0.");
  return 0;
}
