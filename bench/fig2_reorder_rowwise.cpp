// Fig. 2: box-plot distribution of row-wise SpGEMM (A²) speedup after each
// of the 10 reorderings, relative to the original order, over the suite.
#include "bench_common.hpp"
#include "common/stats.hpp"
#include "reorder/reorder.hpp"

int main() {
  using namespace cw;
  using namespace cw::bench;
  const RunConfig cfg = run_config_from_env();
  print_banner("Figure 2: row-wise SpGEMM speedup by reordering",
               "Fig. 2 (speedup of row-wise SpGEMM after reordering, 110-matrix suite)",
               cfg);

  const std::vector<SuiteEntry> suite = load_suite(cfg);
  TextTable table({"reordering", "min", "q1", "median", "q3", "max", "geomean"});
  for (ReorderAlgo algo : all_reorder_algos()) {
    if (algo == ReorderAlgo::kOriginal) continue;
    std::vector<double> speedups;
    for (const SuiteEntry& e : suite) {
      const VariantResult r = run_variant(e, algo, ClusterScheme::kNone, cfg);
      speedups.push_back(r.speedup);
    }
    const BoxSummary box = box_summary(speedups);
    table.add_row({to_string(algo), fmt_double(box.min), fmt_double(box.q1),
                   fmt_double(box.median), fmt_double(box.q3),
                   fmt_double(box.max), fmt_double(geomean(speedups))});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\npaper shape: HP/GP/RCM medians above 1; Shuffled well below 1;"
            "\nRabbit/AMD/SlashBurn below 1 on most inputs with high outliers.");
  return 0;
}
