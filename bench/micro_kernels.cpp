// google-benchmark micro suite: accumulator ablation (hash vs dense SPA vs
// sort) and format construction costs — the design choices DESIGN.md calls
// out. Has its own main(): before the google-benchmark suite runs, a
// kernel-dispatch sweep times the wide-lane (stacked-panel) accumulation
// under every available SIMD tier, checks the products are bit-identical to
// the scalar reference, and emits BENCH_micro_kernels.json with per-tier
// speedups (pass --sweep-only to skip the google-benchmark suite).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "accumulator/cluster_accumulator.hpp"
#include "accumulator/dense_accumulator.hpp"
#include "accumulator/hash_accumulator.hpp"
#include "accumulator/sort_accumulator.hpp"
#include "bench_json.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/clustering_schemes.hpp"
#include "gen/generators.hpp"
#include "matrix/csr_cluster.hpp"
#include "simd/dispatch.hpp"

namespace {

using namespace cw;

/// Synthetic accumulation workload: `rows` rows of `len` inserts drawn from
/// `universe` columns.
template <typename Acc>
void accumulate_workload(Acc& acc, int rows, int len, index_t universe,
                         benchmark::State& state) {
  Rng rng(42);
  std::vector<index_t> cols;
  std::vector<value_t> vals;
  for (auto _ : state) {
    for (int r = 0; r < rows; ++r) {
      acc.reset();
      for (int k = 0; k < len; ++k) acc.add(rng.index(universe), 1.0);
      cols.clear();
      vals.clear();
      acc.extract_sorted(cols, vals);
      benchmark::DoNotOptimize(cols.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * rows * len);
}

void BM_HashAccumulator(benchmark::State& state) {
  HashAccumulator acc;
  accumulate_workload(acc, 64, static_cast<int>(state.range(0)),
                      static_cast<index_t>(state.range(1)), state);
}
BENCHMARK(BM_HashAccumulator)
    ->Args({16, 1024})
    ->Args({64, 1024})
    ->Args({256, 65536})
    ->Args({1024, 65536});

void BM_DenseAccumulator(benchmark::State& state) {
  DenseAccumulator acc(static_cast<index_t>(state.range(1)));
  accumulate_workload(acc, 64, static_cast<int>(state.range(0)),
                      static_cast<index_t>(state.range(1)), state);
}
BENCHMARK(BM_DenseAccumulator)
    ->Args({16, 1024})
    ->Args({64, 1024})
    ->Args({256, 65536})
    ->Args({1024, 65536});

void BM_SortAccumulator(benchmark::State& state) {
  SortAccumulator acc;
  accumulate_workload(acc, 64, static_cast<int>(state.range(0)),
                      static_cast<index_t>(state.range(1)), state);
}
BENCHMARK(BM_SortAccumulator)
    ->Args({16, 1024})
    ->Args({64, 1024})
    ->Args({256, 65536});

// --- format construction costs ---------------------------------------------

void BM_CsrClusterBuildFixed(benchmark::State& state) {
  const Csr a = gen_tri_mesh(60, 60, true, 1);
  const auto k = static_cast<index_t>(state.range(0));
  for (auto _ : state) {
    CsrCluster cc = CsrCluster::build(a, Clustering::fixed(a.nrows(), k));
    benchmark::DoNotOptimize(cc.values().data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_CsrClusterBuildFixed)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_VariableClusterConstruction(benchmark::State& state) {
  const Csr a = gen_tri_mesh(60, 60, false, 1);
  for (auto _ : state) {
    Clustering c = variable_length_clustering(a, {});
    benchmark::DoNotOptimize(c.num_clusters());
  }
}
BENCHMARK(BM_VariableClusterConstruction);

void BM_HierarchicalClusterConstruction(benchmark::State& state) {
  const Csr a = gen_tri_mesh(40, 40, true, 1);
  for (auto _ : state) {
    HierarchicalResult r = hierarchical_clustering(a, {});
    benchmark::DoNotOptimize(r.order.data());
  }
}
BENCHMARK(BM_HierarchicalClusterConstruction);

void BM_Transpose(benchmark::State& state) {
  const Csr a = gen_rmat(11, 8, 0.55, 0.2, 0.15, 7);
  for (auto _ : state) {
    Csr at = a.transpose();
    benchmark::DoNotOptimize(at.nnz());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_Transpose);

// --- kernel-dispatch sweep ---------------------------------------------------
//
// Times the two shapes the SIMD tiers accelerate — the raw K-wide lane FMA
// over a stacked-panel's worth of columns, and the full cluster-accumulator
// accumulate+extract loop — once per available tier, always against the
// scalar tier as baseline. Every tier's output is byte-compared to scalar's
// before its timing is recorded: a tier that is fast but not bit-identical
// is a bug, not a win.

struct SweepTiming {
  double ns_per_op = 0;
  bool bit_identical = false;
};

/// Raw stacked-panel accumulation: lane[r] += panel(c, r) * bv[c] for every
/// panel column, lanes-wide. This is the dense-mask inner loop of the
/// numeric phase with the hash probe factored out — pure kernel time.
SweepTiming sweep_panel_fma(simd::SimdTier tier, index_t lanes,
                            std::vector<value_t>& scalar_lane_bytes) {
  const index_t ncols = 512;
  Rng rng(77);
  std::vector<value_t> panel(static_cast<std::size_t>(ncols) *
                             static_cast<std::size_t>(lanes));
  std::vector<value_t> bvals(static_cast<std::size_t>(ncols));
  for (auto& v : panel) v = rng.uniform() - 0.5;
  for (auto& v : bvals) v = rng.uniform() - 0.5;

  if (!simd::force_tier(tier)) return {};
  auto* const lane_fma = simd::kernels().lane_fma;
  std::vector<value_t> lane(static_cast<std::size_t>(lanes), 0.0);
  const int inner = 64;  // panel passes per timed rep
  const double sec = time_best_of(7, [&] {
    std::fill(lane.begin(), lane.end(), 0.0);
    for (int rep = 0; rep < inner; ++rep)
      for (index_t c = 0; c < ncols; ++c)
        lane_fma(lane.data(),
                 panel.data() +
                     static_cast<std::size_t>(c) * static_cast<std::size_t>(lanes),
                 bvals[static_cast<std::size_t>(c)], lanes);
  });
  SweepTiming out;
  out.ns_per_op = sec * 1e9 / (static_cast<double>(inner) * ncols);
  if (tier == simd::SimdTier::kScalar) {
    scalar_lane_bytes = lane;
    out.bit_identical = true;
  } else {
    out.bit_identical =
        lane.size() == scalar_lane_bytes.size() &&
        std::memcmp(lane.data(), scalar_lane_bytes.data(),
                    lane.size() * sizeof(value_t)) == 0;
  }
  return out;
}

/// Cluster-accumulator accumulate + sorted extraction, dense masks — the
/// end-to-end wide-lane path of the stacked-panel numeric phase, hash
/// probes included.
SweepTiming sweep_accumulator(simd::SimdTier tier, index_t lanes,
                              std::vector<value_t>& scalar_vals) {
  const index_t nkeys = 96;
  const int touches = 4096;
  Rng rng(88);
  std::vector<index_t> keys(static_cast<std::size_t>(touches));
  std::vector<value_t> bvals(static_cast<std::size_t>(touches));
  for (auto& k : keys) k = rng.index(nkeys) * 17;
  for (auto& v : bvals) v = rng.uniform() - 0.5;
  std::vector<value_t> avals(static_cast<std::size_t>(lanes));
  for (auto& v : avals) v = rng.uniform() - 0.5;
  const std::uint64_t full_mask =
      lanes == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << lanes) - 1;

  if (!simd::force_tier(tier)) return {};
  ClusterAccumulator acc(lanes);
  std::vector<index_t> cols;
  std::vector<value_t> vals;
  const double sec = time_best_of(7, [&] {
    acc.configure(lanes);
    for (int i = 0; i < touches; ++i)
      acc.add_scaled(keys[static_cast<std::size_t>(i)], full_mask,
                     avals.data(), bvals[static_cast<std::size_t>(i)]);
    cols.clear();
    vals.clear();
    for (index_t r = 0; r < lanes; ++r) acc.extract_lane_sorted(r, cols, vals);
  });
  SweepTiming out;
  out.ns_per_op =
      sec * 1e9 / (static_cast<double>(touches) * static_cast<double>(lanes));
  if (tier == simd::SimdTier::kScalar) {
    scalar_vals = vals;
    out.bit_identical = true;
  } else {
    out.bit_identical =
        vals.size() == scalar_vals.size() &&
        std::memcmp(vals.data(), scalar_vals.data(),
                    vals.size() * sizeof(value_t)) == 0;
  }
  return out;
}

/// Runs both sweeps across lanes × tiers and writes BENCH_micro_kernels.json.
/// Returns false if any tier failed the bit-identity comparison.
bool run_dispatch_sweep() {
  cw::bench::JsonBenchWriter json("micro_kernels");
  const std::vector<simd::SimdTier> tiers = simd::available_tiers();
  bool all_identical = true;
  std::printf("kernel-dispatch sweep (tiers:");
  for (simd::SimdTier t : tiers) std::printf(" %s", simd::to_string(t));
  std::printf(")\n");

  for (const index_t lanes : {index_t{8}, index_t{32}, index_t{64}}) {
    // Scalar baseline first; other tiers are compared and ratioed to it.
    std::vector<value_t> panel_ref;
    SweepTiming scalar_panel = sweep_panel_fma(simd::SimdTier::kScalar, lanes,
                                               panel_ref);
    std::vector<value_t> acc_ref;
    SweepTiming scalar_acc =
        sweep_accumulator(simd::SimdTier::kScalar, lanes, acc_ref);
    for (simd::SimdTier t : tiers) {
      const SweepTiming panel =
          t == simd::SimdTier::kScalar ? scalar_panel
                                       : sweep_panel_fma(t, lanes, panel_ref);
      const SweepTiming acc = t == simd::SimdTier::kScalar
                                  ? scalar_acc
                                  : sweep_accumulator(t, lanes, acc_ref);
      all_identical = all_identical && panel.bit_identical && acc.bit_identical;
      const double panel_speedup = scalar_panel.ns_per_op / panel.ns_per_op;
      const double acc_speedup = scalar_acc.ns_per_op / acc.ns_per_op;
      std::printf(
          "  lanes=%2d tier=%-6s panel_fma %7.3f ns/op (%4.2fx)  "
          "accumulator %7.3f ns/lane-op (%4.2fx)  bit_identical=%s\n",
          static_cast<int>(lanes), simd::to_string(t), panel.ns_per_op,
          panel_speedup, acc.ns_per_op, acc_speedup,
          panel.bit_identical && acc.bit_identical ? "yes" : "NO");
      using W = cw::bench::JsonBenchWriter;
      json.add({"panel_fma",
                {W::param("tier", simd::to_string(t)), W::param("lanes", lanes),
                 W::param("speedup_vs_scalar",
                          std::to_string(panel_speedup)),
                 W::param("bit_identical", panel.bit_identical ? "yes" : "no")},
                panel.ns_per_op,
                0,
                0});
      json.add({"cluster_accumulate_extract",
                {W::param("tier", simd::to_string(t)), W::param("lanes", lanes),
                 W::param("speedup_vs_scalar", std::to_string(acc_speedup)),
                 W::param("bit_identical", acc.bit_identical ? "yes" : "no")},
                acc.ns_per_op,
                0,
                0});
    }
  }
  simd::reset_tier();
  const std::string path = json.write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  if (!all_identical)
    std::fprintf(stderr, "ERROR: a SIMD tier diverged from the scalar bits\n");
  return all_identical;
}

}  // namespace

int main(int argc, char** argv) {
  bool sweep_only = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--sweep-only") == 0) {
      sweep_only = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  const bool ok = run_dispatch_sweep();
  if (!sweep_only) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return ok ? 0 : 1;
}
