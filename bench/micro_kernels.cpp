// google-benchmark micro suite: accumulator ablation (hash vs dense SPA vs
// sort) and format construction costs — the design choices DESIGN.md calls
// out.
#include <benchmark/benchmark.h>

#include "accumulator/dense_accumulator.hpp"
#include "accumulator/hash_accumulator.hpp"
#include "accumulator/sort_accumulator.hpp"
#include "common/rng.hpp"
#include "core/clustering_schemes.hpp"
#include "gen/generators.hpp"
#include "matrix/csr_cluster.hpp"

namespace {

using namespace cw;

/// Synthetic accumulation workload: `rows` rows of `len` inserts drawn from
/// `universe` columns.
template <typename Acc>
void accumulate_workload(Acc& acc, int rows, int len, index_t universe,
                         benchmark::State& state) {
  Rng rng(42);
  std::vector<index_t> cols;
  std::vector<value_t> vals;
  for (auto _ : state) {
    for (int r = 0; r < rows; ++r) {
      acc.reset();
      for (int k = 0; k < len; ++k) acc.add(rng.index(universe), 1.0);
      cols.clear();
      vals.clear();
      acc.extract_sorted(cols, vals);
      benchmark::DoNotOptimize(cols.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * rows * len);
}

void BM_HashAccumulator(benchmark::State& state) {
  HashAccumulator acc;
  accumulate_workload(acc, 64, static_cast<int>(state.range(0)),
                      static_cast<index_t>(state.range(1)), state);
}
BENCHMARK(BM_HashAccumulator)
    ->Args({16, 1024})
    ->Args({64, 1024})
    ->Args({256, 65536})
    ->Args({1024, 65536});

void BM_DenseAccumulator(benchmark::State& state) {
  DenseAccumulator acc(static_cast<index_t>(state.range(1)));
  accumulate_workload(acc, 64, static_cast<int>(state.range(0)),
                      static_cast<index_t>(state.range(1)), state);
}
BENCHMARK(BM_DenseAccumulator)
    ->Args({16, 1024})
    ->Args({64, 1024})
    ->Args({256, 65536})
    ->Args({1024, 65536});

void BM_SortAccumulator(benchmark::State& state) {
  SortAccumulator acc;
  accumulate_workload(acc, 64, static_cast<int>(state.range(0)),
                      static_cast<index_t>(state.range(1)), state);
}
BENCHMARK(BM_SortAccumulator)
    ->Args({16, 1024})
    ->Args({64, 1024})
    ->Args({256, 65536});

// --- format construction costs ---------------------------------------------

void BM_CsrClusterBuildFixed(benchmark::State& state) {
  const Csr a = gen_tri_mesh(60, 60, true, 1);
  const auto k = static_cast<index_t>(state.range(0));
  for (auto _ : state) {
    CsrCluster cc = CsrCluster::build(a, Clustering::fixed(a.nrows(), k));
    benchmark::DoNotOptimize(cc.values().data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_CsrClusterBuildFixed)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_VariableClusterConstruction(benchmark::State& state) {
  const Csr a = gen_tri_mesh(60, 60, false, 1);
  for (auto _ : state) {
    Clustering c = variable_length_clustering(a, {});
    benchmark::DoNotOptimize(c.num_clusters());
  }
}
BENCHMARK(BM_VariableClusterConstruction);

void BM_HierarchicalClusterConstruction(benchmark::State& state) {
  const Csr a = gen_tri_mesh(40, 40, true, 1);
  for (auto _ : state) {
    HierarchicalResult r = hierarchical_clustering(a, {});
    benchmark::DoNotOptimize(r.order.data());
  }
}
BENCHMARK(BM_HierarchicalClusterConstruction);

void BM_Transpose(benchmark::State& state) {
  const Csr a = gen_rmat(11, 8, 0.55, 0.2, 0.15, 7);
  for (auto _ : state) {
    Csr at = a.transpose();
    benchmark::DoNotOptimize(at.nnz());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_Transpose);

}  // namespace
