// Fig. 9: AMD/RCM/GP/HP row-wise SpGEMM speedup on the 10 representative
// datasets, relative to the original order.
#include "bench_common.hpp"
#include "reorder/reorder.hpp"

int main() {
  using namespace cw;
  using namespace cw::bench;
  const RunConfig cfg = run_config_from_env();
  print_banner("Figure 9: row-wise SpGEMM after reordering, representative datasets",
               "Fig. 9 (AMD/RCM/GP/HP speedup on 10 datasets)", cfg);

  const std::vector<SuiteEntry> suite = load_suite(cfg, representative_datasets());
  const ReorderAlgo algos[] = {ReorderAlgo::kAMD, ReorderAlgo::kRCM,
                               ReorderAlgo::kGP, ReorderAlgo::kHP};
  TextTable table({"dataset", "AMD", "RCM", "GP", "HP"});
  for (const SuiteEntry& e : suite) {
    std::vector<std::string> row{e.name};
    for (ReorderAlgo algo : algos) {
      const VariantResult r = run_variant(e, algo, ClusterScheme::kNone, cfg);
      row.push_back(fmt_double(r.speedup));
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\npaper shape: near-1.0 on the first six (structured) datasets;"
            "\nlarge speedups on the shuffled meshes AS365/huget/M6/NLR,"
            " with RCM/GP/HP >> AMD there.");
  return 0;
}
