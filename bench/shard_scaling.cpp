// Sharding scaling study: how row-block sharding behaves as the shard count
// grows, and what the nnz-balanced split buys over the naive equal-rows cut.
//
//   ./shard_scaling [dataset] [requests] [workers]   (default: conf5, 32, 4)
//
// For every strategy (naive, balanced, locality) and K = 1..16 it reports
//   * plan balance (max shard nnz / ideal),
//   * prepare time (summed per-shard preprocessing),
//   * one-shot scatter/gather multiply latency, and
//   * sustained throughput over a request batch through the ShardedEngine.
//
// The headline the sweep demonstrates: multiply cost stays flat while the
// unit of registry admission (max shard bytes) shrinks by ~K, and the
// balanced split keeps the shard fan-out's critical path near ideal where
// the naive cut lets one fat shard dominate.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "gen/generators.hpp"
#include "gen/suite.hpp"
#include "serve/registry.hpp"
#include "shard/engine.hpp"
#include "shard/sharded_pipeline.hpp"

namespace {

using namespace cw;

std::size_t max_shard_bytes(const shard::ShardedPipeline& sp) {
  std::size_t worst = 0;
  for (index_t s = 0; s < sp.num_shards(); ++s)
    worst = std::max(worst, serve::pipeline_memory_bytes(*sp.shard(s)));
  return worst;
}

void run_config(const Csr& a, shard::SplitStrategy strategy, index_t k,
                const std::vector<Csr>& payloads, int workers) {
  shard::PlanOptions popt;
  popt.num_shards = k;
  popt.strategy = strategy;
  PipelineOptions opt;
  opt.scheme = ClusterScheme::kHierarchical;

  Timer t_prep;
  auto sp = std::make_shared<const shard::ShardedPipeline>(a, popt, opt);
  const double prep_s = t_prep.seconds();

  shard::ShardedEngineOptions eopt;
  eopt.num_workers = workers;
  shard::ShardedEngine engine(eopt);

  // One-shot latency first (cold caches), then sustained throughput.
  Timer t_one;
  (void)engine.submit(sp, payloads.front()).get();
  const double one_s = t_one.seconds();

  Timer t_all;
  for (const Csr& b : payloads) (void)engine.submit(sp, b);
  engine.drain();
  const double all_s = t_all.seconds();

  std::printf(
      "  %-8s K=%-3d balance %5.2f  prepare %8.1f ms  multiply %7.2f ms  "
      "%6.0f req/s  max shard %6.2f MB\n",
      to_string(strategy), k, sp->plan().balance(a), prep_s * 1e3, one_s * 1e3,
      static_cast<double>(payloads.size()) / all_s,
      static_cast<double>(max_shard_bytes(*sp)) / 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "conf5";
  const int requests = argc > 2 ? std::atoi(argv[2]) : 32;
  const int workers = argc > 3 ? std::atoi(argv[3]) : 4;
  const Csr a = make_dataset(name, suite_scale_from_env());
  std::printf("dataset %s: %d x %d, %lld nnz (%d requests, %d workers)\n",
              name.c_str(), a.nrows(), a.ncols(),
              static_cast<long long>(a.nnz()), requests, workers);

  std::vector<Csr> payloads;
  for (int i = 0; i < requests; ++i)
    payloads.push_back(gen_request_payload(a.nrows(), 32, 3,
                                           9000 + static_cast<std::uint64_t>(i)));

  for (const shard::SplitStrategy strategy :
       {shard::SplitStrategy::kNaive, shard::SplitStrategy::kBalanced,
        shard::SplitStrategy::kLocality}) {
    std::printf("\n%s split\n", to_string(strategy));
    for (index_t k : {1, 2, 4, 8, 16}) run_config(a, strategy, k, payloads, workers);
  }
  return 0;
}
