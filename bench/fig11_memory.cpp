// Fig. 11: CDF of CSR_Cluster memory relative to CSR for the three
// clustering schemes, over the suite. No kernel timing involved.
#include "bench_common.hpp"
#include "common/stats.hpp"

int main() {
  using namespace cw;
  using namespace cw::bench;
  RunConfig cfg = run_config_from_env();
  cfg.reps = 1;  // no timing needed
  print_banner("Figure 11: memory overhead of cluster-wise SpGEMM",
               "Fig. 11 (CSR_Cluster bytes / CSR bytes, CDF over suite)", cfg);

  const std::vector<double> grid = {0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 3.0, 5.0};
  std::vector<std::string> header{"scheme"};
  for (double x : grid) header.push_back("<=" + fmt_double(x, 2));
  header.push_back("median");
  TextTable table(header);

  for (ClusterScheme scheme : {ClusterScheme::kFixed, ClusterScheme::kVariable,
                               ClusterScheme::kHierarchical}) {
    std::vector<double> ratios;
    for (const auto& spec : suite_specs()) {
      if (!dataset_selected(cfg, spec.name)) continue;
      const Csr a = make_dataset(spec.name, cfg.scale);
      PipelineOptions opt;
      opt.scheme = scheme;
      Pipeline p(a, opt);
      ratios.push_back(p.stats().memory_ratio());
    }
    const std::vector<double> curve = profile_curve(ratios, grid);
    std::vector<std::string> row{to_string(scheme)};
    for (double frac : curve) row.push_back(fmt_double(frac, 2));
    row.push_back(fmt_double(percentile(ratios, 50), 2));
    table.add_row(std::move(row));
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\npaper shape: variable-length lowest overhead, fixed-length highest;"
            "\nmany matrices land below 1.0 (shared column ids beat CSR).");
  return 0;
}
