// Out-of-core serving benchmark: what async shard prefetch + residency-aware
// scheduling buy when the working set does not fit the RAM budget.
//
//   ./out_of_core [--smoke] [nrows]
//
// Setup: a CORPUS of sharded pipelines, each saved as a v3 sharded
// snapshot and mmap-loaded (every shard's arrays are borrowed file
// mappings), served round-robin by a CLOSED-LOOP client that keeps two
// requests outstanding — the steady-state serving shape: one request
// multiplying, the next queued behind it. (An open-loop wave that queues
// the whole corpus would pin every pipeline's shards via demand holds
// and the governor could not enforce the budget at all mid-wave.) The
// "RAM budget" is the paging governor's high watermark over the
// registry's mincore-probed resident mapped bytes, held at roughly TWO
// pipelines' bytes (the active request plus the one streaming in behind
// it) while the CORPUS grows: serving 4, 8, 16 snapshots puts total
// shard bytes at 2x, 4x, 8x the budget — the out-of-core regime is
// ratio >= 4x. Each config starts fully cold (residency released, page
// cache dropped — re-faults hit the disk) and runs twice:
//
//   prefetch OFF — the PR-9 baseline: fixed 0..K-1 scatter order, every
//     cold shard faults inline on the compute workers, the governor alone
//     enforces the budget.
//   prefetch ON  — each dispatch primes the next queued request, so while
//     pipeline A's request computes, B's shards stream into the room the
//     governor frees by releasing already-multiplied (LRU) shards; pickup
//     orders warm shards first.
//
// Bars (enforced in full runs on residency-capable builds only — without
// eviction teeth nothing is ever cold and the modes converge):
//   * every product bit-identical to the fully-resident reference;
//   * at least one out-of-core ratio (>= 4x) shows prefetch-on beating
//     prefetch-off on wall-clock throughput;
//   * at every ratio >= 4x, prefetch-on serves cold shards ahead of
//     demand — inline cold multiplies cut at least 2x vs prefetch-off
//     (measured 3-6x: the streams land nearly every shard before its
//     multiply) — and wall-clock stays within 15% (run-to-run noise on a
//     shared single-core host is ~±8%).
// Context for reading the numbers: on hosts whose cold faults hit a real
// device, the cold-multiply cut IS the cold-shard throughput win — the
// inline I/O stall leaves the request path. This harness's storage is
// host-page-cache backed (~7 GB/s effective readahead), so both modes
// are largely CPU-bound on the same fault/compute work and the wall-clock
// margin is a few percent, not the device-bound multiple.
//
// Emits BENCH_out_of_core.json (bench_json.hpp) for cross-PR tracking.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/residency.hpp"
#include "common/timer.hpp"
#include "gen/generators.hpp"
#include "io/prefetcher.hpp"
#include "obs/sampler.hpp"
#include "serve/paging_governor.hpp"
#include "serve/registry.hpp"
#include "shard/engine.hpp"
#include "shard/snapshot.hpp"

namespace {

using namespace cw;

struct ModeResult {
  double seconds = 0;
  double rps = 0;
  std::uint64_t cold_multiplies = 0;
  std::uint64_t prefetch_issued = 0;
  std::uint64_t prefetch_warmed = 0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t prefetch_skipped = 0;
  std::uint64_t prefetch_bytes = 0;
  double prefetch_hit_rate = 0;
  std::uint64_t governor_released_bytes = 0;
};

using SpHandle = std::shared_ptr<const shard::ShardedPipeline>;

/// Drop every shard's pages (and their page-cache copies): the next touch
/// re-reads from disk. This is the cold start each mode begins from.
void make_cold(const std::vector<SpHandle>& sps) {
  for (const SpHandle& sp : sps)
    for (index_t s = 0; s < sp->num_shards(); ++s)
      sp->shard(s)->release_residency();
}

std::size_t total_mapped_bytes(const std::vector<SpHandle>& sps) {
  std::size_t total = 0;
  for (const SpHandle& sp : sps)
    for (index_t s = 0; s < sp->num_shards(); ++s)
      total += sp->shard(s)->residency().mapped_bytes;
  return total;
}

/// Serve `rounds` waves of one request per pipeline over the first `count`
/// pipelines of the corpus. payloads/want are indexed [round][pipeline].
ModeResult run_mode(const std::vector<SpHandle>& all_sps,
                    const std::vector<std::vector<Csr>>& payloads,
                    const std::vector<std::vector<Csr>>& want,
                    std::size_t count, std::size_t budget_bytes,
                    bool prefetch_on) {
  const std::vector<SpHandle> sps(all_sps.begin(),
                                  all_sps.begin() +
                                      static_cast<std::ptrdiff_t>(count));
  make_cold(sps);

  shard::ShardedEngineOptions opt;
  // ONE compute worker and ONE gather worker: shard multiplies run strictly
  // one at a time, the semi-external-memory regime — compute is the fixed
  // budget and the only question is whether shard I/O hides behind it.
  // OFF: the worker faults each cold shard inline, serializing read and
  // multiply. ON: the prefetcher's I/O threads stream the queued shards
  // while the worker computes.
  opt.num_workers = 1;
  opt.gather_workers = 1;
  // Capacity far above any corpus size: the cache's own LRU eviction must
  // never fire — the paging governor is the only residency authority here,
  // so the sweep measures paging policy, not cache sizing.
  opt.registry.capacity_bytes = std::size_t{4} << 30;
  opt.residency_order = prefetch_on;
  // One metrics plane built up front so the prefetcher's budget probe can
  // read the governor's cached resident gauge (set on every enforcement
  // tick) instead of paying a full-corpus mincore walk per pacing poll —
  // on one core those walks would starve the very compute the prefetch is
  // supposed to hide behind.
  auto metrics = std::make_shared<obs::MetricsRegistry>();
  opt.metrics = metrics;
  obs::Gauge& resident_gauge = metrics->gauge(
      "cw_governor_resident_mapped_bytes",
      "Registry resident mapped bytes at last governor check");
  // Bounded prefetch wait: a cold shard whose stream is mid-flight gets a
  // short grace before the worker faults it inline — racing the advise
  // readahead with an inline fault duplicates the very I/O the prefetch
  // issued. Warm shards scatter first (residency order), so the wait
  // overlaps the inner worker crunching them; ~one shard's stream time is
  // all the grace that pays for itself.
  opt.max_prefetch_wait = std::chrono::milliseconds(10);
  // Dispatch-primed stream-ahead, one pipeline deep: the budget is ~TWO
  // pipelines' bytes — the active request plus exactly one streaming in
  // behind it. Feeding the whole wave at submit instead (lookahead 0)
  // floods the stream queue with the entire corpus; the governor then
  // evicts every early stream before its request runs and the sweep
  // thrashes (all bytes streamed, nothing warm at use).
  opt.prefetch_lookahead = 1;
  std::shared_ptr<io::ShardPrefetcher> prefetcher;
  if (prefetch_on) {
    io::PrefetchOptions popt;
    // ONE streaming worker: service order is sequential, so streaming the
    // queue sequentially resolves the ticket the gather needs NEXT as early
    // as possible — two concurrent streams would halve each other's
    // bandwidth exactly when the pickup is waiting on the first.
    popt.num_workers = 1;
    std::size_t shards = 0;
    for (const SpHandle& sp : sps)
      shards += static_cast<std::size_t>(sp->num_shards());
    popt.max_in_flight = shards + 4;
    // Pace above the demand-hold floor: the closed-loop client keeps two
    // requests outstanding, whose held (unevictable) shards alone sit at
    // the budget — pacing AT the budget would park the stream worker
    // forever. 1.5x leaves a pipeline's slack for the stream itself while
    // still catching a runaway (leaked holds, governor stall).
    popt.budget_bytes = budget_bytes + budget_bytes / 2;
    // Fire-and-forget: the advise hands the I/O to the kernel and the
    // worker moves on — on one core every poll cycle is stolen from the
    // multiply the stream is hiding behind.
    popt.wait_resident = false;
    // A paced ticket legitimately waits as long as the requests ahead of
    // it take to compute — give it the patience (the default 2 s give-up
    // is sized for latency-sensitive serving).
    popt.max_stream_wait = std::chrono::seconds(60);
    popt.resident_bytes_fn = [&resident_gauge]() -> std::size_t {
      return static_cast<std::size_t>(resident_gauge.value());
    };
    prefetcher = std::make_shared<io::ShardPrefetcher>(std::move(popt));
    prefetcher->start();
    opt.prefetcher = prefetcher;
  }
  shard::ShardedEngine eng(opt);
  for (const SpHandle& sp : sps) eng.admit(*sp);

  // Both modes run the SAME pressure loop: a background sampler drives the
  // governor, which releases cold residency (LRU tail — the shards the
  // active request is done with) whenever the budget is breached. Only the
  // streaming side differs.
  io::ShardPrefetcher idle_prefetcher;  // OFF mode: governor needs one
  io::ShardPrefetcher& gov_pf =
      prefetcher != nullptr ? *prefetcher : idle_prefetcher;
  serve::PagingGovernorOptions gopt;
  gopt.high_watermark_bytes = budget_bytes;
  // Release down to half the budget: one enforcement frees a pipeline's
  // worth of headroom, so the prefetcher streams the next request in one
  // burst instead of trickling a shard per release.
  gopt.low_watermark_bytes = budget_bytes / 2;
  gopt.metrics = eng.metrics();
  serve::PagingGovernor governor(*eng.registry(), gov_pf, gopt);
  // Demand holds: queued requests pin their shards out of the release walk
  // until served — without this the LRU tail the governor releases first
  // is, under round-robin, exactly the next request's freshly-prefetched
  // shards (LRU's cyclic-scan failure mode), and both modes thrash.
  eng.set_governor(&governor);
  // 20 ms ticks: each enforcement pays one full-corpus mincore walk, so the
  // cadence trades governor responsiveness (requests take ~50 ms) against
  // stealing the single core from the multiplies.
  obs::PeriodicSampler sampler(eng.metrics(), std::chrono::milliseconds(20));
  governor.register_probes(sampler);
  sampler.start();

  // Closed-loop client, two requests outstanding: the dispatch of one
  // primes the stream of the next (prefetch_lookahead), the governor's
  // demand holds pin at most two pipelines, and residency cycles through
  // the watermark pump continuously — steady-state out-of-core serving,
  // not an open-loop wave that pins the whole corpus.
  std::size_t served = 0;
  Timer t;
  std::vector<Csr> products;
  std::deque<std::future<Csr>> window;
  const std::size_t max_outstanding = 2;
  for (std::size_t r = 0; r < payloads.size(); ++r) {
    for (std::size_t p = 0; p < sps.size(); ++p) {
      if (window.size() == max_outstanding) {
        products.push_back(window.front().get());
        window.pop_front();
      }
      window.push_back(eng.submit(sps[p], payloads[r][p]));
      ++served;
    }
  }
  while (!window.empty()) {
    products.push_back(window.front().get());
    window.pop_front();
  }
  const double seconds = t.seconds();
  sampler.stop();
  eng.set_governor(nullptr);  // the governor dies before the engine does

  std::size_t i = 0;
  for (std::size_t r = 0; r < want.size(); ++r) {
    for (std::size_t p = 0; p < count; ++p, ++i) {
      if (!(products[i] == want[r][p])) {
        std::fprintf(stderr,
                     "FATAL: round %zu pipeline %zu product differs from the "
                     "fully-resident reference (prefetch %s)\n",
                     r, p, prefetch_on ? "on" : "off");
        std::exit(1);
      }
    }
  }

  ModeResult out;
  out.seconds = seconds;
  out.rps = seconds > 0 ? static_cast<double>(served) / seconds : 0;
  out.cold_multiplies = eng.stats().cold_multiplies;
  out.governor_released_bytes = governor.stats().released_bytes;
  if (prefetcher != nullptr) {
    const io::PrefetchStats ps = prefetcher->stats();
    out.prefetch_issued = ps.issued;
    out.prefetch_warmed = ps.warmed;
    out.prefetch_hits = ps.hits;
    out.prefetch_skipped = ps.skipped;
    out.prefetch_bytes = ps.bytes;
    out.prefetch_hit_rate = ps.hit_rate();
    eng.shutdown();
    prefetcher->stop();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int argi = 1;
  if (argc > argi && std::strcmp(argv[argi], "--smoke") == 0) {
    smoke = true;
    ++argi;
  }
  const index_t nrows =
      argc > argi ? std::atoi(argv[argi]) : (smoke ? 5000 : 36000);
  // The corpus is the swept variable: the budget stays ~2 pipelines' bytes
  // (active request + the one streaming behind it) while the snapshot count
  // doubles, so total:budget runs 2x, 4x, 8x.
  const std::vector<std::size_t> counts =
      smoke ? std::vector<std::size_t>{2} : std::vector<std::size_t>{4, 8, 16};
  const std::size_t num_pipelines = counts.back();
  const index_t k_shards = smoke ? 3 : 6;
  const std::size_t rounds = smoke ? 2 : 3;

  const std::string dir = []() -> std::string {
    const char* t = std::getenv("TMPDIR");
    return t != nullptr ? t : "/tmp";
  }();
  bench::JsonBenchWriter json("out_of_core");
  using W = bench::JsonBenchWriter;
  if (!residency::supported())
    std::printf("note: residency syscalls unavailable in this build; "
                "nothing is ever cold and the modes converge\n");

  // P sharded pipelines (same banded structure, distinct values), each
  // saved v3 and mmap-loaded so every shard's arrays are borrowed file
  // mappings with real eviction teeth.
  std::vector<SpHandle> sps;
  std::vector<std::string> paths;
  for (std::size_t p = 0; p < num_pipelines; ++p) {
    Csr a = gen_banded(nrows, 24, 0.9, 42 + static_cast<std::uint64_t>(p));
    randomize_values(a, 420 + static_cast<std::uint64_t>(p));
    PipelineOptions popt;
    popt.scheme = ClusterScheme::kFixed;
    popt.fixed_length = 8;
    shard::PlanOptions plan_opt;
    plan_opt.num_shards = k_shards;
    const shard::ShardedPipeline built(a, plan_opt, popt);
    paths.push_back(dir + "/cw_out_of_core_bench_" + std::to_string(p) +
                    ".cwsnap");
    shard::save_sharded_pipeline_file(paths.back(), built);
    sps.push_back(std::make_shared<const shard::ShardedPipeline>(
        shard::load_sharded_pipeline_file(paths.back())));
  }
  const std::size_t total_bytes = total_mapped_bytes(sps);

  std::vector<std::vector<Csr>> payloads(rounds);
  std::vector<std::vector<Csr>> want(rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t p = 0; p < num_pipelines; ++p) {
      // Payload sized so compute per request (~75 ms warm) clearly exceeds
      // one pipeline's disk time (~35 ms): the latency-bound regime where
      // streaming the next request under the current one's compute has
      // headroom. With a trivial payload the sweep is disk-bandwidth-bound
      // and NO prefetch policy can beat demand paging — the disk is busy
      // either way, only total bytes matter.
      payloads[r].push_back(gen_request_payload(
          nrows, 32, 16, static_cast<std::uint64_t>(100 + r * 16 + p)));
      // Fully-resident reference: the sequential scatter/gather path with
      // everything warm — the bit-identity bar for both modes.
      want[r].push_back(sps[p]->multiply(payloads[r].back()));
    }
  }

  std::printf("out-of-core: corpus of %zu pipelines, %.1f MB mapped across "
              "%zu shards\n",
              num_pipelines, static_cast<double>(total_bytes) / 1e6,
              num_pipelines * static_cast<std::size_t>(k_shards));

  bool perf_bar_ok = true;
  bool out_of_core_win = false;
  for (std::size_t count : counts) {
    std::size_t subset_bytes = 0;
    for (std::size_t p = 0; p < count; ++p)
      for (index_t s = 0; s < sps[p]->num_shards(); ++s)
        subset_bytes += sps[p]->shard(s)->residency().mapped_bytes;
    const int ratio = count >= 4 ? static_cast<int>(count) / 2 : 2;
    const std::size_t budget = subset_bytes / static_cast<std::size_t>(ratio);
    const std::size_t requests = rounds * count;
    // Best-of-N, interleaved: on one core the governor walk, page-cache
    // state and device throughput wander run to run (~±15%); the max over
    // repeats is the standard throughput estimator under one-sided noise,
    // and interleaving decorrelates slow drift from the mode under test.
    const int repeats = smoke ? 1 : 3;
    ModeResult off, on;
    for (int rep = 0; rep < repeats; ++rep) {
      const ModeResult o = run_mode(sps, payloads, want, count, budget, false);
      if (rep == 0 || o.rps > off.rps) off = o;
      const ModeResult p = run_mode(sps, payloads, want, count, budget, true);
      if (rep == 0 || p.rps > on.rps) on = p;
    }
    std::printf(
        "ratio %dx (%zu pipelines, %.1f MB, budget %.1f MB): prefetch-off "
        "%.2f req/s (%llu cold) vs prefetch-on %.2f req/s (%llu cold, hit "
        "rate %.0f%%, %.1f MB streamed)  [%.2fx]\n",
        ratio, count, static_cast<double>(subset_bytes) / 1e6,
        static_cast<double>(budget) / 1e6, off.rps,
        static_cast<unsigned long long>(off.cold_multiplies), on.rps,
        static_cast<unsigned long long>(on.cold_multiplies),
        on.prefetch_hit_rate * 100,
        static_cast<double>(on.prefetch_bytes) / 1e6,
        off.rps > 0 ? on.rps / off.rps : 0);
    std::printf(
        "          prefetch detail: %llu issued / %llu warmed / %llu hits / "
        "%llu skipped; governor released %.1f MB (off) %.1f MB (on)\n",
        static_cast<unsigned long long>(on.prefetch_issued),
        static_cast<unsigned long long>(on.prefetch_warmed),
        static_cast<unsigned long long>(on.prefetch_hits),
        static_cast<unsigned long long>(on.prefetch_skipped),
        static_cast<double>(off.governor_released_bytes) / 1e6,
        static_cast<double>(on.governor_released_bytes) / 1e6);
    for (const auto& [mode, res] :
         {std::pair<const char*, const ModeResult&>{"off", off},
          std::pair<const char*, const ModeResult&>{"on", on}}) {
      json.add({"cold_shard_throughput",
                {W::param("ratio", ratio), W::param("prefetch", mode),
                 W::param("nrows", nrows),
                 W::param("pipelines", static_cast<long long>(count)),
                 W::param("shards",
                          static_cast<long long>(
                              count * static_cast<std::size_t>(k_shards))),
                 W::param("requests", static_cast<long long>(requests)),
                 W::param("total_mb",
                          static_cast<long long>(subset_bytes >> 20)),
                 W::param("budget_mb",
                          static_cast<long long>(budget >> 20)),
                 W::param("cold_multiplies",
                          static_cast<long long>(res.cold_multiplies)),
                 W::param("hit_rate_pct",
                          static_cast<long long>(res.prefetch_hit_rate * 100)),
                 W::param("streamed_mb",
                          static_cast<long long>(res.prefetch_bytes >> 20)),
                 W::param("governor_released_mb",
                          static_cast<long long>(res.governor_released_bytes >>
                                                 20))},
                res.seconds * 1e9 / static_cast<double>(requests),
                subset_bytes, 0});
    }
    // Out-of-core bars (ratio >= 4x): the streams must actually serve the
    // cold shards ahead of demand — inline cold multiplies cut at least
    // 2x (measured 3-6x) — and prefetch must not cost wall-clock where
    // this host's page-cache-backed storage leaves it little to hide
    // (both modes CPU-bound near parity; 15% covers run-to-run noise).
    // The outright wall-clock win is required of the sweep, not of every
    // point: one ratio >= 4x must show prefetch-on ahead.
    if (ratio >= 4) {
      if (on.cold_multiplies * 2 > off.cold_multiplies) perf_bar_ok = false;
      if (on.rps < 0.85 * off.rps) perf_bar_ok = false;
      if (on.rps >= off.rps) out_of_core_win = true;
    }
  }

  const std::string out = json.write();
  if (!out.empty()) std::printf("wrote %s\n", out.c_str());
  for (const std::string& p : paths) std::remove(p.c_str());
  if (!smoke && residency::supported() && (!perf_bar_ok || !out_of_core_win)) {
    std::fprintf(stderr,
                 !perf_bar_ok
                     ? "FATAL: at an out-of-core ratio (>= 4x) prefetch-on "
                       "failed to cut inline cold multiplies 2x, or cost > "
                       "15%% wall-clock vs prefetch-off\n"
                     : "FATAL: no out-of-core ratio (>= 4x) showed "
                       "prefetch-on beating prefetch-off on wall-clock\n");
    return 1;
  }
  return 0;
}
