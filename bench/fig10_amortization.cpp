// Fig. 10: performance profile of preprocessing overhead — for each method,
// the fraction of (positively improved) problems whose reordering/clustering
// cost is amortized within x SpGEMM iterations.
#include "bench_common.hpp"
#include "common/stats.hpp"
#include "reorder/reorder.hpp"

int main() {
  using namespace cw;
  using namespace cw::bench;
  const RunConfig cfg = run_config_from_env();
  print_banner("Figure 10: SpGEMM runs needed to amortize preprocessing",
               "Fig. 10 (performance profile of reordering overhead; positive cases only)",
               cfg);

  const std::vector<SuiteEntry> suite = load_suite(cfg);
  const std::vector<double> grid = {1, 2, 5, 10, 20, 50, 100};

  struct Method {
    std::string label;
    ReorderAlgo algo = ReorderAlgo::kOriginal;
    ClusterScheme scheme = ClusterScheme::kNone;
  };
  std::vector<Method> methods;
  for (ReorderAlgo algo : all_reorder_algos()) {
    if (algo == ReorderAlgo::kOriginal) continue;
    methods.push_back({to_string(algo), algo, ClusterScheme::kNone});
  }
  methods.push_back(
      {"Hierarchical", ReorderAlgo::kOriginal, ClusterScheme::kHierarchical});

  std::vector<std::string> header{"method", "pos%"};
  for (double x : grid) header.push_back("<=" + fmt_double(x, 0));
  TextTable table(header);
  for (const Method& m : methods) {
    std::vector<double> amortization;  // positive cases only (as in the paper)
    int positive = 0;
    for (const SuiteEntry& e : suite) {
      const VariantResult r = run_variant(e, m.algo, m.scheme, cfg);
      if (r.speedup > 1.0) {
        ++positive;
        amortization.push_back(r.amortization_iters(e.baseline_seconds));
      }
    }
    const std::vector<double> curve = profile_curve(amortization, grid);
    std::vector<std::string> row{
        m.label,
        fmt_double(100.0 * positive / std::max<std::size_t>(suite.size(), 1), 0) + "%"};
    for (double frac : curve) row.push_back(fmt_double(frac, 2));
    table.add_row(std::move(row));
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\npaper shape: cheap orders (Shuffled/Degree/Rabbit) amortize within"
            "\n~5 runs; RCM/GP need 20+; Hierarchical amortizes within 20 runs"
            "\nfor ~90% of its positive cases.");
  return 0;
}
