// cwtool — command-line frontend for the library.
//
//   cwtool info    <input>                 structural features + advisor hint
//   cwtool reorder <input> <algo> <out>    write the symmetrically permuted matrix
//   cwtool advise  <input> [budget]        preprocessing recommendation
//   cwtool bench   <input>                 time row-wise vs recommended setup
//   cwtool snapshot save <input> <out.cwsnap> [algo] [scheme] [v2|v3]
//                                          preprocess once, persist the pipeline
//   cwtool snapshot info <file.cwsnap>     header + pipeline summary
//   cwtool snapshot load <file.cwsnap> [mmap|copy] [verify]
//                                          reload and time one multiply
//                                          (v3 defaults to zero-copy mmap)
//   cwtool snapshot convert <in.cwsnap> <out.cwsnap> [v2|v3]
//                                          offline format rewrite (v2→v3
//                                          upgrade, v3→v2 rollback); any kind,
//                                          fully verified, bit-identical
//                                          round trips
//   cwtool snapshot warm <file.cwsnap>     prefault a v3 snapshot's mapped
//                                          pages (WILLNEED + touch) and report
//                                          resident bytes before/after — run
//                                          before a node takes traffic
//   cwtool serve-bench <input|file.cwsnap> [clients] [requests] [workers]
//                      [--batch-window-us N] [--prefault]
//                      [--admission lru|tinylfu]
//                      [--metrics-out m.prom] [--trace-out t.json]
//                      [--trace-sample R]
//                      [--slow-trace-us T] [--dump-out d.json]
//                      [--deadline-ms D] [--fault site=spec]...
//                                          concurrent-engine throughput run;
//                                          N > 0 enables second-level B-stacking
//                                          with an N-microsecond latency budget;
//                                          a .cwsnap input serves the prepared
//                                          pipeline zero-copy from the file — a
//                                          *sharded* .cwsnap serves scatter/
//                                          gather through the sharded engine.
//                                          --metrics-out writes Prometheus text
//                                          exposition; --trace-out writes Chrome
//                                          trace_event JSON (about:tracing /
//                                          Perfetto) of the requests sampled at
//                                          rate R (default 1 when tracing).
//                                          --slow-trace-us arms the flight
//                                          recorder: every request completing
//                                          at or above T microseconds keeps its
//                                          full stage timeline (--trace-out
//                                          exports those when stride sampling
//                                          is off). --dump-out arms a stall
//                                          watchdog and names the diagnostic
//                                          dump file: a watchdog trip, a
//                                          SIGUSR1, or end of run writes one
//                                          JSON document with the in-flight
//                                          table, recent events, flight
//                                          records, registry residency and
//                                          every metric series.
//                                          (CW_SERVE_BENCH_STALL_MS=N stalls
//                                          the first batch pickup N ms — a
//                                          test hook for exercising the
//                                          watchdog path end to end.)
//                                          --deadline-ms gives every request
//                                          a D-millisecond deadline; expired
//                                          requests resolve kDeadlineExceeded
//                                          without running their multiply,
//                                          and the summary reports the miss
//                                          rate. --fault (repeatable) arms
//                                          the fault injector at a named
//                                          site — `engine.multiply=0.02` (2%
//                                          per hit), `snapshot.read=@3` (the
//                                          3rd hit, once) — for chaos drills;
//                                          CW_FAULT/CW_FAULT_SEED do the same
//                                          from the environment. The run
//                                          exits nonzero if the accounting
//                                          invariant completed + failed +
//                                          shed == submitted is violated.
//   cwtool metrics dump <input|file.cwsnap> [requests] [--json]
//                                          run a small serving burst and dump
//                                          every metric series plus recent
//                                          engine events to stdout
//                                          (Prometheus text, or JSON)
//   cwtool debug dump <input|file.cwsnap> [requests] [--out d.json]
//                                          run a small serving burst with the
//                                          flight recorder armed and write the
//                                          engine's full JSON diagnostic dump
//                                          (stdout, or --out)
//   cwtool shard plan <input> [K] [strategy]
//                                          print the row-block split
//   cwtool shard save <input> <out.cwsnap> [K] [strategy] [scheme]
//                                          prepare + persist a sharded pipeline
//   cwtool shard info <file.cwsnap>        sharded manifest summary
//   cwtool shard multiply <file.cwsnap> [bcols] [workers]
//                                          load + time one scatter/gather multiply
//   cwtool shard load-shard <file.cwsnap> <k> [bcols]
//                                          selectively map + serve one row block
//
// <input> is either a Matrix Market file or `dataset:<name>` from the
// built-in suite. <algo> is one of: shuffled rcm amd nd gp hp gray rabbit
// degree slashburn. [budget] is single|tens|thousands. [scheme] is one of:
// none fixed variable hierarchical. [strategy] is one of: naive balanced
// locality.
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/residency.hpp"
#include "common/timer.hpp"
#include "core/advisor.hpp"
#include "fault/injector.hpp"
#include "fault/status.hpp"
#include "gen/generators.hpp"
#include "gen/suite.hpp"
#include "matrix/matrix_market.hpp"
#include "obs/exposition.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/sampler.hpp"
#include "obs/watchdog.hpp"
#include "serve/engine.hpp"
#include "serve/fingerprint.hpp"
#include "io/prefetcher.hpp"
#include "serve/paging_governor.hpp"
#include "serve/snapshot.hpp"
#include "shard/engine.hpp"
#include "shard/snapshot.hpp"

namespace {

using namespace cw;

Csr load_input(const std::string& arg) {
  if (arg.rfind("dataset:", 0) == 0) {
    return make_dataset(arg.substr(8), suite_scale_from_env());
  }
  return read_matrix_market_file(arg);
}

ReorderAlgo parse_algo(const std::string& s) {
  for (ReorderAlgo algo : all_reorder_algos()) {
    std::string name = to_string(algo);
    for (auto& ch : name) ch = static_cast<char>(std::tolower(ch));
    if (name == s) return algo;
  }
  throw Error("unknown reordering: " + s);
}

ReuseBudget parse_budget(const std::string& s) {
  if (s == "single") return ReuseBudget::kSingle;
  if (s == "thousands") return ReuseBudget::kThousands;
  return ReuseBudget::kTens;
}

void print_features(const MatrixFeatures& f) {
  std::printf("rows             %d\n", f.nrows);
  std::printf("nnz              %lld\n", static_cast<long long>(f.nnz));
  std::printf("avg nnz/row      %.2f (max %.0f)\n", f.avg_row_nnz, f.max_row_nnz);
  std::printf("degree CV        %.2f\n", f.degree_cv);
  std::printf("bandwidth ratio  %.3f\n", f.bandwidth_ratio);
  std::printf("consec. Jaccard  %.3f\n", f.consecutive_jaccard);
  std::printf("scatter Jaccard  %.3f\n", f.scattered_jaccard);
}

int cmd_info(const std::string& input) {
  const Csr a = load_input(input);
  print_features(extract_features(a));
  const Recommendation rec = advise(a);
  std::printf("suggestion       %s + %s\n", to_string(rec.reorder),
              to_string(rec.scheme));
  return 0;
}

int cmd_reorder(const std::string& input, const std::string& algo_name,
                const std::string& out_path) {
  const Csr a = load_input(input);
  const ReorderAlgo algo = parse_algo(algo_name);
  Timer t;
  const Permutation order = reorder(a, algo);
  std::fprintf(stderr, "%s ordering computed in %.1f ms\n", to_string(algo),
               t.seconds() * 1e3);
  write_matrix_market_file(out_path, a.permute_symmetric(order));
  std::fprintf(stderr, "wrote %s (bandwidth %d -> %d)\n", out_path.c_str(),
               a.bandwidth(), a.permute_symmetric(order).bandwidth());
  return 0;
}

int cmd_advise(const std::string& input, const std::string& budget) {
  const Csr a = load_input(input);
  const Recommendation rec = advise(a, parse_budget(budget));
  std::printf("reorder:    %s\n", to_string(rec.reorder));
  std::printf("clustering: %s\n", to_string(rec.scheme));
  std::printf("rationale:  %s\n", rec.rationale.c_str());
  return 0;
}

int cmd_bench(const std::string& input) {
  const Csr a = load_input(input);
  Timer tb;
  const Csr base = spgemm_square(a);
  const double base_s = tb.seconds();
  const Recommendation rec = advise(a);
  Pipeline p(a, rec.pipeline_options());
  Timer tv;
  const Csr c = p.multiply_square();
  const double var_s = tv.seconds();
  std::printf("row-wise A^2       %.2f ms\n", base_s * 1e3);
  std::printf("%s + %s  %.2f ms (%.2fx, preprocess %.2f ms)\n",
              to_string(rec.reorder), to_string(rec.scheme), var_s * 1e3,
              base_s / var_s, p.stats().preprocess_seconds() * 1e3);
  return 0;
}

ClusterScheme parse_scheme(const std::string& s) {
  if (s == "none") return ClusterScheme::kNone;
  if (s == "fixed") return ClusterScheme::kFixed;
  if (s == "variable") return ClusterScheme::kVariable;
  if (s == "hierarchical" || s == "hier") return ClusterScheme::kHierarchical;
  throw Error("unknown cluster scheme: " + s);
}

serve::SaveOptions parse_save_format(const std::string& s) {
  if (s == "v2") return {.version = 2};
  if (s == "v3") return {.version = 3};
  throw Error("unknown snapshot format: " + s + " (expected v2 or v3)");
}

int cmd_snapshot_save(const std::string& input, const std::string& out_path,
                      int argc, char** argv) {
  const Csr a = load_input(input);
  PipelineOptions opt;
  serve::SaveOptions save_opt;
  if (argc > 5) {
    opt.reorder = parse_algo(argv[5]);
    opt.scheme = argc > 6 ? parse_scheme(argv[6]) : ClusterScheme::kHierarchical;
    if (argc > 7) save_opt = parse_save_format(argv[7]);
  } else {
    opt = advise(a).pipeline_options();
    std::fprintf(stderr, "using advisor setup: %s + %s\n",
                 to_string(opt.reorder), to_string(opt.scheme));
  }
  Timer t_prep;
  const Pipeline p(a, opt);
  const double prep_s = t_prep.seconds();
  Timer t_save;
  serve::save_pipeline_file(out_path, p, save_opt);
  std::fprintf(stderr,
               "prepared %s in %.1f ms (reorder %.1f, cluster %.1f, format %.1f)\n",
               input.c_str(), prep_s * 1e3, p.stats().reorder_seconds * 1e3,
               p.stats().cluster_seconds * 1e3, p.stats().format_seconds * 1e3);
  std::fprintf(stderr, "wrote %s in %.1f ms (%zu clusters)\n", out_path.c_str(),
               t_save.seconds() * 1e3, static_cast<std::size_t>(p.stats().num_clusters));
  return 0;
}

int cmd_snapshot_info(const std::string& path) {
  const serve::SnapshotInfo info = serve::read_info_file(path);
  std::printf("kind       %s (format v%u)\n", to_string(info.kind), info.version);
  std::printf("rows/cols  %d x %d\n", info.nrows, info.ncols);
  std::printf("nnz        %lld\n", static_cast<long long>(info.nnz));
  if (info.kind == serve::SnapshotKind::kPipeline) {
    const Pipeline p = serve::load_pipeline_file(path);
    std::printf("reorder    %s\n", to_string(p.options().reorder));
    std::printf("scheme     %s\n", to_string(p.options().scheme));
    std::printf("clusters   %d\n", p.stats().num_clusters);
    std::printf("preprocess %.1f ms (amortized away at load time)\n",
                p.stats().preprocess_seconds() * 1e3);
    std::printf("memory     %.2f MB csr, %.2f MB clustered\n",
                static_cast<double>(p.stats().csr_bytes) / 1e6,
                static_cast<double>(p.stats().clustered_bytes) / 1e6);
  }
  return 0;
}

int cmd_snapshot_load(const std::string& path, const std::string& mode,
                      bool verify) {
  const serve::SnapshotInfo info = serve::read_info_file(path);
  serve::MmapLoadOptions mopt;
  mopt.verify_checksums = verify;
  mopt.deep_validate = verify;
  const bool use_mmap = mode == "mmap" || (mode.empty() && info.version >= 3);
  if (use_mmap && info.version < 3)
    throw Error("snapshot: " + path + " is format v" +
                std::to_string(info.version) + "; mmap loading requires v3");
  Timer t_load;
  Pipeline p = [&] {
    if (use_mmap) return serve::load_pipeline_mmap(path, mopt);
    std::ifstream f(path, std::ios::binary);
    if (!f) throw Error("snapshot: cannot open " + path);
    return serve::load_pipeline(f);
  }();
  const double load_s = t_load.seconds();
  Timer t_mul;
  const Csr c = p.mode() == PermutationMode::kSymmetric
                    ? p.multiply_square()
                    : p.multiply(Csr::identity(p.matrix().ncols()));
  const double mul_s = t_mul.seconds();
  std::printf("loaded pipeline    %.1f ms via %s%s (vs %.1f ms preprocessing)\n",
              load_s * 1e3, use_mmap ? "mmap zero-copy" : "stream copy",
              verify ? " + full verification" : "",
              p.stats().preprocess_seconds() * 1e3);
  std::printf("multiply           %.1f ms, %lld nnz\n", mul_s * 1e3,
              static_cast<long long>(c.nnz()));
  return 0;
}

bool is_snapshot_path(const std::string& input) {
  return input.ends_with(".cwsnap");
}

/// Telemetry knobs shared by both serve-bench paths.
struct ServeBenchFlags {
  long batch_window_us = 0;
  bool prefault = false;
  serve::AdmissionKind admission = serve::AdmissionKind::kAdmitAll;
  std::string metrics_out;  // Prometheus text exposition
  std::string trace_out;    // Chrome trace_event JSON
  double trace_sample = 0;  // 0 = tracing off
  long slow_trace_us = 0;   // flight-recorder threshold; 0 = capture off
  std::string dump_out;     // diagnostic dump path; arms the watchdog
  long stall_ms = 0;        // CW_SERVE_BENCH_STALL_MS test hook
  long deadline_ms = 0;     // per-request deadline; 0 = none
  std::vector<std::string> faults;  // injector specs, one per --fault
  /// Registry capacity in bytes (and, for sharded snapshots, the paging
  /// governor's RAM-budget watermark — enforced in BOTH --prefetch
  /// modes). < 0 = the 512 MB default (no governor).
  long long registry_bytes = -1;
  /// Out-of-core A/B knob (sharded snapshots): 1 = prefetcher + residency
  /// ordering, 0 = neither (fixed-order inline-faulting baseline),
  /// -1 = engine defaults (no prefetcher).
  int prefetch = -1;
};

/// Per-request submit options from the bench flags (one fresh deadline per
/// submission — the budget starts at enqueue, not at bench start).
serve::SubmitOptions submit_options(const ServeBenchFlags& flags) {
  serve::SubmitOptions o;
  if (flags.deadline_ms > 0)
    o.deadline = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::milliseconds(flags.deadline_ms));
  return o;
}

/// Snapshot loading under chaos: with `--fault snapshot.read=...` armed the
/// initial load itself can fail, and the drill is about the serving path
/// surviving — retry a retryable load a few times (deterministic under
/// CW_FAULT_SEED), the same recovery the registry's get_or_load applies.
template <typename F>
auto load_with_recovery(F&& load) -> decltype(load()) {
  constexpr int kAttempts = 8;
  for (int attempt = 1;; ++attempt) {
    try {
      return load();
    } catch (const Error&) {
      const fault::ErrorCode code = fault::code_of(std::current_exception());
      if (attempt >= kAttempts || !fault::retryable_load(code)) throw;
      std::fprintf(stderr, "snapshot load failed (%s); retrying %d/%d\n",
                   fault::code_label(code), attempt, kAttempts - 1);
    }
  }
}

/// Shared tail of both serve-bench summaries: typed error counts by code,
/// deadline-miss rate, injector report, and the accounting invariant.
/// Returns 0 when completed + failed + shed == submitted, 1 otherwise.
int print_fault_summary(const char* layer, std::uint64_t submitted,
                        std::uint64_t completed, std::uint64_t failed,
                        std::uint64_t shed,
                        const std::array<std::uint64_t,
                                         fault::kNumErrorCodes>& errors,
                        int requests, const ServeBenchFlags& flags) {
  std::uint64_t typed = 0;
  std::string by_code;
  for (std::size_t c = 1; c < fault::kNumErrorCodes; ++c) {
    if (errors[c] == 0) continue;
    typed += errors[c];
    by_code += std::string(by_code.empty() ? "" : "  ") +
               fault::code_label(static_cast<fault::ErrorCode>(c)) + " " +
               std::to_string(errors[c]);
  }
  if (typed > 0)
    std::printf("  errors by code   %s\n", by_code.c_str());
  if (flags.deadline_ms > 0) {
    const auto missed =
        errors[static_cast<std::size_t>(fault::ErrorCode::kDeadlineExceeded)];
    std::printf("  deadline         %ld ms budget: %llu missed of %d "
                "(%.2f%% miss rate)\n",
                flags.deadline_ms, static_cast<unsigned long long>(missed),
                requests,
                requests > 0 ? 100.0 * static_cast<double>(missed) / requests
                             : 0.0);
  }
  const auto fired = fault::FaultInjector::global().fired_sites();
  if (!fired.empty()) {
    std::string sites;
    for (const auto& [site, fires] : fired)
      sites += std::string(sites.empty() ? "" : "  ") + site + " x" +
               std::to_string(fires);
    std::printf("  faults injected  %s\n", sites.c_str());
  }
  if (completed + failed + shed != submitted) {
    std::fprintf(stderr,
                 "INVARIANT VIOLATION (%s): completed %llu + failed %llu + "
                 "shed %llu != submitted %llu\n",
                 layer, static_cast<unsigned long long>(completed),
                 static_cast<unsigned long long>(failed),
                 static_cast<unsigned long long>(shed),
                 static_cast<unsigned long long>(submitted));
    return 1;
  }
  return 0;
}

void export_telemetry(const obs::MetricsRegistry& metrics,
                      const std::shared_ptr<obs::TraceCollector>& tracer,
                      const std::shared_ptr<obs::FlightRecorder>& flight,
                      const ServeBenchFlags& flags) {
  if (!flags.metrics_out.empty()) {
    std::ofstream f(flags.metrics_out);
    if (!f) throw Error("cannot open " + flags.metrics_out);
    obs::write_prometheus(f, metrics);
    std::fprintf(stderr, "wrote metrics to %s\n", flags.metrics_out.c_str());
  }
  if (!flags.trace_out.empty()) {
    if (!tracer && !flight)
      throw Error(
          "serve-bench: --trace-out needs --trace-sample > 0 or "
          "--slow-trace-us");
    std::ofstream f(flags.trace_out);
    if (!f) throw Error("cannot open " + flags.trace_out);
    if (tracer) {
      tracer->write_chrome_json(f);
      std::fprintf(stderr,
                   "wrote %zu trace spans from %llu sampled requests to %s\n",
                   tracer->spans().size(),
                   static_cast<unsigned long long>(tracer->sampled()),
                   flags.trace_out.c_str());
    } else {
      // Stride sampling off but the flight recorder is armed: export the
      // kept (slow / errored) timelines instead.
      flight->write_chrome_json(f);
      std::fprintf(stderr, "wrote %llu kept flight timelines to %s\n",
                   static_cast<unsigned long long>(flight->kept()),
                   flags.trace_out.c_str());
    }
  }
}

/// SIGUSR1 sets this; the forensics monitor thread polls it. sig_atomic_t
/// write is the only thing the handler does — async-signal-safe.
volatile std::sig_atomic_t g_dump_requested = 0;

extern "C" void on_dump_signal(int) { g_dump_requested = 1; }

/// Stall watchdog + SIGUSR1 diagnostic-dump wiring shared by both
/// serve-bench paths. The watchdog sweeps every 50 ms against a 1 s
/// request deadline; a trip — or a SIGUSR1, polled by the monitor thread —
/// writes ONE JSON diagnostic document to --dump-out (stderr when unset).
/// Writes serialize through a mutex; finish() emits an end-of-run dump only
/// if nothing was written during the run, so --dump-out always yields a
/// document.
class ForensicsHarness {
 public:
  ForensicsHarness(std::string dump_out, std::shared_ptr<obs::EventLog> events,
                   std::function<std::string()> dump)
      : out_(std::move(dump_out)),
        dump_(std::move(dump)),
        watchdog_(sweep_options(), std::move(events)) {
    watchdog_.set_dump([this] { write_("watchdog trip"); });
  }

  /// Register engine targets on this before start().
  [[nodiscard]] obs::Watchdog& watchdog() { return watchdog_; }

  void start() {
    std::signal(SIGUSR1, on_dump_signal);
    watchdog_.start();
    monitor_ = std::thread([this] {
      while (!stop_.load(std::memory_order_relaxed)) {
        if (g_dump_requested != 0) {
          g_dump_requested = 0;
          write_("SIGUSR1");
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    });
  }

  /// Stop sweeping; honor a still-pending signal; dump if nothing did yet.
  void finish() {
    watchdog_.stop();
    stop_.store(true, std::memory_order_relaxed);
    if (monitor_.joinable()) monitor_.join();
    if (g_dump_requested != 0) {
      g_dump_requested = 0;
      write_("SIGUSR1");
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (!written_) write_locked_("end of run");
  }

 private:
  static obs::WatchdogOptions sweep_options() {
    obs::WatchdogOptions o;
    o.interval = std::chrono::milliseconds(50);
    // A saturating bench burst legitimately queues requests for hundreds of
    // milliseconds behind coalesced batches; one second separates "busy"
    // from "wedged" while still tripping well inside an injected stall.
    o.request_deadline_ms = 1000;
    return o;
  }

  void write_(const char* why) {
    std::lock_guard<std::mutex> lock(mu_);
    write_locked_(why);
  }

  void write_locked_(const char* why) {
    const std::string doc = dump_();
    if (out_.empty()) {
      std::fputs(doc.c_str(), stderr);
    } else {
      std::ofstream f(out_);
      if (!f) {
        std::fprintf(stderr, "cannot open %s for the diagnostic dump\n",
                     out_.c_str());
        return;
      }
      f << doc;
    }
    std::fprintf(stderr, "diagnostic dump (%s) -> %s\n", why,
                 out_.empty() ? "stderr" : out_.c_str());
    written_ = true;
  }

  const std::string out_;
  const std::function<std::string()> dump_;
  std::mutex mu_;
  bool written_ = false;
  std::atomic<bool> stop_{false};
  std::thread monitor_;
  obs::Watchdog watchdog_;
};

/// serve-bench over a *sharded* snapshot: requests scatter across the row
/// blocks and gather back, so sampled traces carry the full span set —
/// queue-wait/scatter/gather at this level plus the per-shard window-park,
/// fuse and multiply spans written by the inner engine.
int cmd_serve_bench_sharded(const std::string& input, int clients,
                            int requests, int workers,
                            const ServeBenchFlags& flags) {
  Timer t_load;
  auto sp = std::make_shared<const shard::ShardedPipeline>(load_with_recovery(
      [&] { return shard::load_sharded_pipeline_file(input); }));
  std::fprintf(stderr, "loaded %d shards from %s in %.1f ms\n",
               sp->num_shards(), input.c_str(), t_load.seconds() * 1e3);

  const index_t bcols = 32;
  std::vector<Csr> payloads;
  for (int i = 0; i < requests; ++i)
    payloads.push_back(gen_request_payload(
        sp->plan().ncols(), bcols, 3, 1000 + static_cast<std::uint64_t>(i)));

  const std::size_t registry_bytes =
      flags.registry_bytes >= 0
          ? static_cast<std::size_t>(flags.registry_bytes)
          : std::size_t{512} << 20;
  shard::ShardedEngineOptions eopt;
  eopt.num_workers = workers;
  eopt.gather_workers = std::max(2, clients);
  eopt.batch_window = std::chrono::microseconds(flags.batch_window_us);
  eopt.registry.capacity_bytes = registry_bytes;
  eopt.registry.admission = flags.admission;
  eopt.registry.prefault_on_admit = flags.prefault;
  eopt.trace_sample_rate = flags.trace_sample;
  if (flags.slow_trace_us > 0)
    eopt.flight_slow_threshold_ms =
        static_cast<double>(flags.slow_trace_us) / 1000.0;
  eopt.debug_stall_first = std::chrono::milliseconds(flags.stall_ms);
  if (flags.prefetch == 1) {
    eopt.prefetch = true;
    eopt.residency_order = true;
  } else if (flags.prefetch == 0) {
    eopt.residency_order = false;
  }
  shard::ShardedEngine engine(eopt);
  engine.admit(*sp);

  // An explicit --registry-bytes RAM budget arms the paging governor in
  // BOTH prefetch modes — it enforces the budget as a resident-mapped-
  // bytes watermark (the sampler tick releases cold shards' residency
  // under pressure and re-warms watched pipelines), so the --prefetch
  // on|off A/B compares streaming policy under the SAME memory pressure,
  // not budget-enforced against unlimited. With --prefetch off the
  // governor leans on a never-started prefetcher: its re-warm demand
  // resolves kSkipped and releases proceed as usual.
  std::optional<io::ShardPrefetcher> idle_prefetcher;
  std::optional<serve::PagingGovernor> governor;
  if (flags.registry_bytes >= 0) {
    serve::PagingGovernorOptions gopt;
    gopt.high_watermark_bytes = registry_bytes;
    gopt.metrics = engine.metrics();
    gopt.events = engine.events();
    if (engine.prefetcher() == nullptr) idle_prefetcher.emplace();
    governor.emplace(*engine.registry(),
                     engine.prefetcher() != nullptr ? *engine.prefetcher()
                                                    : *idle_prefetcher,
                     gopt);
    // Queued requests hold their shards out of the release walk — the LRU
    // tail under round-robin load is exactly the next request's shards.
    engine.set_governor(&*governor);
  }

  obs::PeriodicSampler sampler(engine.metrics(), std::chrono::milliseconds(50));
  engine.register_probes(sampler);
  if (governor) governor->register_probes(sampler);
  sampler.start();

  std::optional<ForensicsHarness> forensics;
  if (!flags.dump_out.empty() || flags.stall_ms > 0) {
    forensics.emplace(flags.dump_out, engine.events(),
                      [&engine] { return engine.dump_diagnostics(); });
    engine.register_watchdog(forensics->watchdog());
    forensics->start();
  }

  Timer t_engine;
  std::vector<std::thread> threads;
  for (int cl = 0; cl < clients; ++cl) {
    threads.emplace_back([&, cl] {
      for (int i = cl; i < requests; i += clients)
        (void)engine.submit(sp, payloads[static_cast<std::size_t>(i)],
                            submit_options(flags));
    });
  }
  for (auto& t : threads) t.join();
  engine.drain();
  engine.set_governor(nullptr);  // the governor dies before the engine does
  const double engine_s = t_engine.seconds();
  sampler.stop();
  sampler.sample_once();  // final probe sweep so gauges reflect the drained end state
  if (forensics) forensics->finish();

  const shard::ShardedEngineStats st = engine.stats();
  const serve::EngineStats inner = engine.shard_engine_stats();
  std::printf("requests           %d sharded (B is %d-column tall-skinny)\n",
              requests, bcols);
  std::printf("engine (%d clients, %d workers, %d shards)\n", clients, workers,
              sp->num_shards());
  std::printf("  wall             %.1f ms (%.0f req/s)\n", engine_s * 1e3,
              requests / engine_s);
  std::printf("  scatter/gather   %llu requests -> %llu shard multiplies\n",
              static_cast<unsigned long long>(st.completed),
              static_cast<unsigned long long>(st.shard_multiplies));
  std::printf("  inner engine     %llu batches (%llu sub-requests coalesced)\n",
              static_cast<unsigned long long>(inner.batches),
              static_cast<unsigned long long>(inner.coalesced));
  if (flags.batch_window_us > 0)
    std::printf("  stacking         %llu fused multiplies, %llu sub-requests, "
                "%llu columns\n",
                static_cast<unsigned long long>(inner.stacked_batches),
                static_cast<unsigned long long>(inner.stacked_requests),
                static_cast<unsigned long long>(inner.fused_columns));
  std::printf("  latency ms       p50 %.2f  p95 %.2f  p99 %.2f  max %.2f\n",
              st.latency_p50_ms, st.latency_p95_ms, st.latency_p99_ms,
              st.latency_max_ms);
  if (engine.flight())
    std::printf("  flight           %llu timelines kept of %llu completed "
                "(threshold %.2f ms)\n",
                static_cast<unsigned long long>(engine.flight()->kept()),
                static_cast<unsigned long long>(engine.flight()->completed()),
                engine.flight()->options().slow_threshold_ms);
  if (st.shard_retries > 0)
    std::printf("  shard retries    %llu (%llu recovered the product)\n",
                static_cast<unsigned long long>(st.shard_retries),
                static_cast<unsigned long long>(st.shard_retry_success));
  // Paging stats: how much of the run was served cold, and what the
  // prefetcher/governor did about it. Printed whenever any of the paging
  // plane was armed so the --prefetch on|off A/B always has both lines
  // to compare (an all-warm off run legitimately reads "0 cold").
  if (engine.prefetcher() != nullptr || governor || st.cold_multiplies > 0) {
    std::string line = std::to_string(st.cold_multiplies) +
                       " cold shard multiplies of " +
                       std::to_string(st.shard_multiplies);
    if (engine.prefetcher() != nullptr) {
      const io::PrefetchStats ps = engine.prefetcher()->stats();
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    ", prefetch %llu issued / %llu hits (%.0f%% hit rate, "
                    "%.1f MB streamed)",
                    static_cast<unsigned long long>(ps.issued),
                    static_cast<unsigned long long>(ps.hits),
                    ps.hit_rate() * 100,
                    static_cast<double>(ps.bytes) / 1e6);
      line += buf;
    }
    if (governor) {
      const serve::PagingGovernorStats gs = governor->stats();
      char buf[96];
      std::snprintf(buf, sizeof(buf), ", governor released %.1f MB",
                    static_cast<double>(gs.released_bytes) / 1e6);
      line += buf;
    }
    std::printf("  paging           %s\n", line.c_str());
  }
  const int rc =
      print_fault_summary("sharded", st.submitted, st.completed, st.failed,
                          0, st.errors, requests, flags);
  export_telemetry(*engine.metrics(), engine.tracer(), engine.flight(), flags);
  return rc;
}

int cmd_serve_bench(const std::string& input, int clients, int requests,
                    int workers, const ServeBenchFlags& flags) {
  // A sharded snapshot serves scatter/gather through the sharded engine.
  if (is_snapshot_path(input) &&
      serve::read_info_file(input).kind ==
          serve::SnapshotKind::kShardedPipeline)
    return cmd_serve_bench_sharded(input, clients, requests, workers, flags);

  const long batch_window_us = flags.batch_window_us;
  // A .cwsnap input serves the prepared pipeline zero-copy off the file —
  // the setting where --prefault and the residency counters have teeth.
  std::shared_ptr<const Pipeline> p;
  if (is_snapshot_path(input)) {
    Timer t_load;
    p = std::make_shared<const Pipeline>(
        load_with_recovery([&] { return serve::load_pipeline_file(input); }));
    std::fprintf(stderr, "loaded %s in %.1f ms; fingerprint %s\n",
                 input.c_str(), t_load.seconds() * 1e3,
                 serve::to_string(serve::fingerprint(p->matrix())).c_str());
  } else {
    const Csr a = load_input(input);
    const Recommendation rec = advise(a, ReuseBudget::kThousands);
    Timer t_prep;
    p = std::make_shared<const Pipeline>(a, rec.pipeline_options());
    std::fprintf(stderr, "prepared %s + %s in %.1f ms; fingerprint %s\n",
                 to_string(rec.reorder), to_string(rec.scheme),
                 t_prep.seconds() * 1e3,
                 serve::to_string(serve::fingerprint(a)).c_str());
  }
  const serve::Fingerprint key = serve::fingerprint(p->matrix());
  const index_t brows = p->matrix().ncols();

  // Request payloads are generated up front so the run times serving only.
  const index_t bcols = 32;
  std::vector<Csr> payloads;
  for (int i = 0; i < requests; ++i)
    payloads.push_back(gen_request_payload(brows, bcols, 3,
                                           1000 + static_cast<std::uint64_t>(i)));

  // Sequential baseline: the same requests, one after another, including the
  // unpermute step the engine performs per request (same work both sides).
  Timer t_seq;
  for (const Csr& b : payloads) (void)p->unpermute_rows(p->multiply(b));
  const double seq_s = t_seq.seconds();

  serve::EngineOptions eopt;
  eopt.num_workers = workers;
  eopt.batch_window = std::chrono::microseconds(batch_window_us);
  eopt.registry.capacity_bytes =
      flags.registry_bytes >= 0 ? static_cast<std::size_t>(flags.registry_bytes)
                                : std::size_t{512} << 20;
  eopt.registry.admission = flags.admission;
  eopt.registry.prefault_on_admit = flags.prefault;
  eopt.trace_sample_rate = flags.trace_sample;
  if (flags.slow_trace_us > 0)
    eopt.flight_slow_threshold_ms =
        static_cast<double>(flags.slow_trace_us) / 1000.0;
  eopt.debug_stall_first = std::chrono::milliseconds(flags.stall_ms);
  serve::ServeEngine engine(eopt);
  engine.admit(key, p);

  obs::PeriodicSampler sampler(engine.metrics(), std::chrono::milliseconds(50));
  engine.register_probes(sampler);
  sampler.start();

  std::optional<ForensicsHarness> forensics;
  if (!flags.dump_out.empty() || flags.stall_ms > 0) {
    forensics.emplace(flags.dump_out, engine.events(),
                      [&engine] { return engine.dump_diagnostics(); });
    engine.register_watchdog(forensics->watchdog());
    forensics->start();
  }

  Timer t_engine;
  std::vector<std::thread> threads;
  for (int cl = 0; cl < clients; ++cl) {
    threads.emplace_back([&, cl] {
      for (int i = cl; i < requests; i += clients) {
        // Each request looks its pipeline up by fingerprint, the way a
        // serving frontend would — the hit-rate line below is real traffic.
        auto cached = engine.registry()->find(key);
        (void)engine.submit(cached != nullptr ? std::move(cached) : p,
                            payloads[static_cast<std::size_t>(i)],
                            submit_options(flags));
      }
    });
  }
  for (auto& t : threads) t.join();
  engine.drain();
  const double engine_s = t_engine.seconds();
  sampler.stop();
  sampler.sample_once();  // final probe sweep so gauges reflect the drained end state
  if (forensics) forensics->finish();
  const serve::EngineStats st = engine.stats();
  const std::size_t resident = engine.registry()->resident_mapped_bytes();

  std::printf("requests           %d (B is %d-column tall-skinny)\n", requests,
              bcols);
  std::printf("sequential         %.1f ms (%.0f req/s)\n", seq_s * 1e3,
              requests / seq_s);
  std::printf("engine (%d clients, %d workers)\n", clients, workers);
  std::printf("  wall             %.1f ms (%.0f req/s)\n", engine_s * 1e3,
              requests / engine_s);
  std::printf("  batches          %llu (%llu requests coalesced)\n",
              static_cast<unsigned long long>(st.batches),
              static_cast<unsigned long long>(st.coalesced));
  if (batch_window_us > 0) {
    std::printf(
        "  stacking         %llu fused multiplies, %llu requests, %llu "
        "columns (window %ld us: %llu opened, %llu timed out, %llu filled)\n",
        static_cast<unsigned long long>(st.stacked_batches),
        static_cast<unsigned long long>(st.stacked_requests),
        static_cast<unsigned long long>(st.fused_columns), batch_window_us,
        static_cast<unsigned long long>(st.windows_opened),
        static_cast<unsigned long long>(st.window_timeouts),
        static_cast<unsigned long long>(st.window_filled));
  }
  std::printf("  latency ms       p50 %.2f  p95 %.2f  p99 %.2f  max %.2f\n",
              st.latency_p50_ms, st.latency_p95_ms, st.latency_p99_ms,
              st.latency_max_ms);
  if (engine.flight())
    std::printf("  flight           %llu timelines kept of %llu completed "
                "(threshold %.2f ms)\n",
                static_cast<unsigned long long>(engine.flight()->kept()),
                static_cast<unsigned long long>(engine.flight()->completed()),
                engine.flight()->options().slow_threshold_ms);
  const serve::RegistryStats& rs = st.registry;
  std::printf(
      "  registry         %llu hits / %llu misses (%.1f%% hit rate), "
      "%zu entries\n",
      static_cast<unsigned long long>(rs.hits),
      static_cast<unsigned long long>(rs.misses), rs.hit_rate() * 100.0,
      rs.entries);
  std::printf(
      "                   %.2f MB anon + %.2f MB mapped (%.2f MB resident, "
      "%.2f MB locked)\n",
      static_cast<double>(rs.bytes_used) / 1e6,
      static_cast<double>(rs.mapped_bytes_used) / 1e6,
      static_cast<double>(resident) / 1e6,
      static_cast<double>(rs.locked_bytes) / 1e6);
  std::printf(
      "                   admission %s: %llu rejects; prefaulted %.2f MB; "
      "%llu evictions released %.2f MB\n",
      to_string(engine.registry()->options().admission),
      static_cast<unsigned long long>(rs.admission_rejects),
      static_cast<double>(rs.prefaulted_bytes) / 1e6,
      static_cast<unsigned long long>(rs.released_evictions),
      static_cast<double>(rs.released_bytes) / 1e6);
  const int rc =
      print_fault_summary("engine", st.submitted, st.completed, st.failed,
                          st.shed, st.errors, requests, flags);
  export_telemetry(*engine.metrics(), engine.tracer(), engine.flight(), flags);
  return rc;
}

/// `cwtool metrics dump` — run a small canned serving burst so every layer's
/// series carries real values, then print the whole registry to stdout.
int cmd_metrics_dump(const std::string& input, int requests, bool json) {
  std::shared_ptr<const Pipeline> p;
  if (is_snapshot_path(input)) {
    p = std::make_shared<const Pipeline>(serve::load_pipeline_file(input));
  } else {
    const Csr a = load_input(input);
    p = std::make_shared<const Pipeline>(
        a, advise(a, ReuseBudget::kThousands).pipeline_options());
  }
  const serve::Fingerprint key = serve::fingerprint(p->matrix());
  const index_t brows = p->matrix().ncols();

  serve::EngineOptions eopt;
  eopt.num_workers = 2;
  eopt.registry.capacity_bytes = std::size_t{512} << 20;
  serve::ServeEngine engine(eopt);
  engine.admit(key, p);
  obs::PeriodicSampler sampler(engine.metrics(), std::chrono::milliseconds(50));
  engine.register_probes(sampler);
  for (int i = 0; i < requests; ++i) {
    auto cached = engine.registry()->find(key);
    (void)engine.submit(
        cached != nullptr ? std::move(cached) : p,
        gen_request_payload(brows, 16, 3, 1000 + static_cast<std::uint64_t>(i)));
  }
  engine.drain();
  sampler.sample_once();
  if (json) {
    // One document: every metric series plus the recent structured events.
    std::ostringstream os;
    os << "{\"metrics\": ";
    obs::write_json(os, *engine.metrics());
    os << ", \"events\": ";
    engine.events()->write_json_array(os, 64);
    os << "}\n";
    std::fputs(os.str().c_str(), stdout);
  } else {
    std::fputs(obs::to_prometheus(*engine.metrics()).c_str(), stdout);
    // Recent events ride along as exposition comments — still one paste
    // into a bug report, still a valid scrape.
    std::fputs("# recent events (jsonl)\n", stdout);
    for (const obs::Event& e : engine.events()->recent(16)) {
      std::ostringstream os;
      obs::write_event_json(os, e);
      std::printf("# %s\n", os.str().c_str());
    }
  }
  return 0;
}

/// `cwtool debug dump` — the same canned burst, but with the flight recorder
/// armed at a tiny threshold so the dump carries real timelines; writes the
/// engine's full JSON diagnostic document.
int cmd_debug_dump(const std::string& input, int requests,
                   const std::string& out_path) {
  std::shared_ptr<const Pipeline> p;
  if (is_snapshot_path(input)) {
    p = std::make_shared<const Pipeline>(serve::load_pipeline_file(input));
  } else {
    const Csr a = load_input(input);
    p = std::make_shared<const Pipeline>(
        a, advise(a, ReuseBudget::kThousands).pipeline_options());
  }
  const serve::Fingerprint key = serve::fingerprint(p->matrix());
  const index_t brows = p->matrix().ncols();

  serve::EngineOptions eopt;
  eopt.num_workers = 2;
  eopt.registry.capacity_bytes = std::size_t{512} << 20;
  eopt.flight_slow_threshold_ms = 0.001;  // keep (nearly) every timeline
  serve::ServeEngine engine(eopt);
  engine.admit(key, p);
  for (int i = 0; i < requests; ++i) {
    auto cached = engine.registry()->find(key);
    (void)engine.submit(
        cached != nullptr ? std::move(cached) : p,
        gen_request_payload(brows, 16, 3, 1000 + static_cast<std::uint64_t>(i)));
  }
  engine.drain();
  const std::string doc = engine.dump_diagnostics();
  if (out_path.empty()) {
    std::fputs(doc.c_str(), stdout);
  } else {
    std::ofstream f(out_path);
    if (!f) throw Error("cannot open " + out_path);
    f << doc;
    std::fprintf(stderr, "wrote diagnostic dump to %s\n", out_path.c_str());
  }
  return 0;
}

int cmd_snapshot_convert(const std::string& in_path,
                         const std::string& out_path,
                         const serve::SaveOptions& save_opt) {
  Timer t;
  const serve::SnapshotInfo info =
      shard::convert_snapshot_file(in_path, out_path, save_opt);
  std::printf("converted  %s (%s v%u) -> %s (v%u) in %.1f ms\n",
              in_path.c_str(), to_string(info.kind), info.version,
              out_path.c_str(), save_opt.version, t.seconds() * 1e3);
  std::printf("bytes      %.2f MB -> %.2f MB\n",
              static_cast<double>(MmapRegion::query_file_size(in_path)) / 1e6,
              static_cast<double>(MmapRegion::query_file_size(out_path)) / 1e6);
  return 0;
}

int cmd_snapshot_warm(const std::string& path) {
  const serve::SnapshotInfo info = serve::read_info_file(path);
  if (info.version < 3)
    throw Error("snapshot: " + path + " is format v" +
                std::to_string(info.version) +
                "; warming applies to mmap-loaded (v3) snapshots");
  if (!residency::supported())
    std::fprintf(stderr, "note: residency syscalls unavailable in this "
                         "build; warming by touch only, probes read 0\n");

  // Collect the pipelines to warm (one, or one per shard) zero-copy.
  std::vector<std::shared_ptr<const Pipeline>> pipelines;
  if (info.kind == serve::SnapshotKind::kShardedPipeline) {
    auto sp = shard::load_sharded_pipeline_file(path);
    for (index_t s = 0; s < sp.num_shards(); ++s)
      pipelines.push_back(sp.shard(s));
    std::printf("kind       sharded-pipeline, %d shards\n", sp.num_shards());
  } else if (info.kind == serve::SnapshotKind::kPipeline) {
    pipelines.push_back(
        std::make_shared<const Pipeline>(serve::load_pipeline_mmap(path)));
    std::printf("kind       pipeline\n");
  } else {
    throw Error(std::string("snapshot: warming expects a pipeline or "
                            "sharded-pipeline, got a ") +
                to_string(info.kind));
  }

  std::size_t mapped = 0, before = 0, after = 0, warmed = 0;
  for (const auto& p : pipelines) {
    const PipelineResidency r = p->residency();
    mapped += r.mapped_bytes;
    before += r.resident_mapped_bytes;
  }
  Timer t_warm;
  for (const auto& p : pipelines) warmed += p->warm_up();
  const double warm_s = t_warm.seconds();
  for (const auto& p : pipelines) after += p->residency().resident_mapped_bytes;

  std::printf("mapped     %.2f MB across %zu pipeline(s)\n",
              static_cast<double>(mapped) / 1e6, pipelines.size());
  std::printf("resident   %.2f MB before -> %.2f MB after (touched %.2f MB "
              "in %.1f ms)\n",
              static_cast<double>(before) / 1e6,
              static_cast<double>(after) / 1e6,
              static_cast<double>(warmed) / 1e6, warm_s * 1e3);
  return 0;
}

shard::SplitStrategy parse_strategy(const std::string& s) {
  if (s == "naive") return shard::SplitStrategy::kNaive;
  if (s == "balanced") return shard::SplitStrategy::kBalanced;
  if (s == "locality") return shard::SplitStrategy::kLocality;
  throw Error("unknown split strategy: " + s);
}

void print_plan(const shard::RowBlockPlan& plan, const Csr& a) {
  std::printf("shards     %d (%s split)\n", plan.num_shards(),
              to_string(plan.strategy()));
  const auto blocks = plan.summarize(a);
  for (std::size_t s = 0; s < blocks.size(); ++s)
    std::printf("  shard %-3zu %8d rows  %10lld nnz\n", s, blocks[s].rows,
                static_cast<long long>(blocks[s].nnz));
  std::printf("balance    %.3f (max shard nnz / ideal)\n", plan.balance(a));
}

int cmd_shard_plan(const std::string& input, index_t k,
                   const std::string& strategy) {
  const Csr a = load_input(input);
  shard::PlanOptions popt;
  popt.num_shards = k;
  popt.strategy = parse_strategy(strategy);
  const shard::RowBlockPlan plan = shard::RowBlockPlan::build(a, popt);
  std::printf("matrix     %d x %d, %lld nnz\n", a.nrows(), a.ncols(),
              static_cast<long long>(a.nnz()));
  print_plan(plan, a);
  return 0;
}

int cmd_shard_save(const std::string& input, const std::string& out_path,
                   index_t k, const std::string& strategy,
                   const std::string& scheme) {
  const Csr a = load_input(input);
  shard::PlanOptions popt;
  popt.num_shards = k;
  popt.strategy = parse_strategy(strategy);
  PipelineOptions opt;
  opt.scheme = parse_scheme(scheme);
  Timer t_prep;
  const shard::ShardedPipeline sp(a, popt, opt);
  const double prep_s = t_prep.seconds();
  Timer t_save;
  shard::save_sharded_pipeline_file(out_path, sp);
  std::fprintf(stderr, "prepared %d shards (%s split, %s) in %.1f ms\n",
               sp.num_shards(), to_string(popt.strategy),
               to_string(opt.scheme), prep_s * 1e3);
  std::fprintf(stderr, "wrote %s in %.1f ms (%.2f MB resident)\n",
               out_path.c_str(), t_save.seconds() * 1e3,
               static_cast<double>(sp.memory_bytes()) / 1e6);
  return 0;
}

int cmd_shard_info(const std::string& path) {
  const shard::ShardManifest m = shard::read_manifest_file(path);
  std::printf("kind       sharded-pipeline (format v%u)\n", m.version);
  std::printf("rows/cols  %d x %d\n", m.nrows, m.ncols);
  std::printf("nnz        %lld\n", static_cast<long long>(m.nnz));
  std::printf("shards     %d (%s split)\n", m.num_shards(),
              to_string(m.strategy));
  for (index_t s = 0; s < m.num_shards(); ++s) {
    std::printf("  shard %-3d rows [%d, %d)", s,
                m.block_ptr[static_cast<std::size_t>(s)],
                m.block_ptr[static_cast<std::size_t>(s) + 1]);
    if (!m.shard_ranges.empty()) {
      const auto& rg = m.shard_ranges[static_cast<std::size_t>(s)];
      std::printf("  bytes [%llu, +%llu)",
                  static_cast<unsigned long long>(rg.offset),
                  static_cast<unsigned long long>(rg.length));
    }
    std::printf("\n");
  }
  if (!m.shard_ranges.empty())
    std::printf("selective  yes (v3 offset table; `shard load-shard` maps "
                "one block)\n");
  return 0;
}

int cmd_shard_load_shard(const std::string& path, index_t k, index_t bcols) {
  Timer t_load;
  const shard::ShardLoadResult r = shard::load_shard_file(path, k);
  const double load_s = t_load.seconds();
  const Csr b =
      gen_request_payload(r.pipeline->matrix().ncols(), bcols, 3, 4243);
  Timer t_mul;
  const Csr c = r.pipeline->unpermute_rows(r.pipeline->multiply(b));
  const double mul_s = t_mul.seconds();
  std::printf("shard %d            rows [%d, %d) of the plan\n", r.shard,
              r.row_begin, r.row_end);
  std::printf("selective load     %.2f ms (manifest + one shard record "
              "mapped; other blocks untouched)\n",
              load_s * 1e3);
  std::printf("block multiply     %.2f ms, %lld nnz\n", mul_s * 1e3,
              static_cast<long long>(c.nnz()));
  return 0;
}

int cmd_shard_multiply(const std::string& path, index_t bcols, int workers) {
  Timer t_load;
  auto sp = std::make_shared<const shard::ShardedPipeline>(
      shard::load_sharded_pipeline_file(path));
  const double load_s = t_load.seconds();
  const Csr b = gen_request_payload(sp->plan().ncols(), bcols, 3, 4242);

  Timer t_seq;
  const Csr c_seq = sp->multiply(b);
  const double seq_s = t_seq.seconds();

  shard::ShardedEngineOptions eopt;
  eopt.num_workers = workers;
  shard::ShardedEngine engine(eopt);
  Timer t_mul;
  const Csr c = engine.submit(sp, b).get();
  const double mul_s = t_mul.seconds();
  CW_CHECK_MSG(c == c_seq, "scatter/gather result mismatch");

  std::printf("loaded %d shards      %.1f ms (vs %.1f ms preprocessing)\n",
              sp->num_shards(), load_s * 1e3, sp->prepare_seconds() * 1e3);
  std::printf("sequential multiply  %.1f ms\n", seq_s * 1e3);
  std::printf("scatter/gather       %.1f ms (%d workers), %lld nnz\n",
              mul_s * 1e3, workers, static_cast<long long>(c.nnz()));
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  cwtool info    <input>\n"
               "  cwtool reorder <input> <algo> <out.mtx>\n"
               "  cwtool advise  <input> [single|tens|thousands]\n"
               "  cwtool bench   <input>\n"
               "  cwtool snapshot save <input> <out.cwsnap> [algo] [scheme] [v2|v3]\n"
               "  cwtool snapshot info <file.cwsnap>\n"
               "  cwtool snapshot load <file.cwsnap> [mmap|copy] [verify]\n"
               "  cwtool snapshot convert <in.cwsnap> <out.cwsnap> [v2|v3]\n"
               "  cwtool snapshot warm <file.cwsnap>\n"
               "  cwtool serve-bench <input|file.cwsnap> [clients] [requests]"
               " [workers]\n"
               "                     [--batch-window-us N] [--prefault]"
               " [--admission lru|tinylfu]\n"
               "                     [--metrics-out m.prom] [--trace-out"
               " t.json] [--trace-sample R]\n"
               "                     [--slow-trace-us T] [--dump-out d.json]\n"
               "                     [--deadline-ms D] [--fault site=spec]...\n"
               "                     [--registry-bytes N] [--prefetch on|off]\n"
               "  cwtool metrics dump <input|file.cwsnap> [requests] [--json]\n"
               "  cwtool debug dump <input|file.cwsnap> [requests]"
               " [--out d.json]\n"
               "  cwtool shard plan <input> [K] [naive|balanced|locality]\n"
               "  cwtool shard save <input> <out.cwsnap> [K] [strategy] [scheme]\n"
               "  cwtool shard info <file.cwsnap>\n"
               "  cwtool shard load-shard <file.cwsnap> <k> [bcols]\n"
               "  cwtool shard multiply <file.cwsnap> [bcols] [workers]\n"
               "<input> = file.mtx | dataset:<name>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  const std::string input = argv[2];
  try {
    if (cmd == "info") return cmd_info(input);
    if (cmd == "reorder" && argc >= 5) return cmd_reorder(input, argv[3], argv[4]);
    if (cmd == "advise") return cmd_advise(input, argc > 3 ? argv[3] : "tens");
    if (cmd == "bench") return cmd_bench(input);
    if (cmd == "snapshot") {
      // here `input` is the snapshot sub-verb: save | info | load
      if (input == "save" && argc >= 5)
        return cmd_snapshot_save(argv[3], argv[4], argc, argv);
      if (input == "info" && argc >= 4) return cmd_snapshot_info(argv[3]);
      if (input == "convert" && argc >= 5) {
        serve::SaveOptions save_opt;
        if (argc > 5) save_opt = parse_save_format(argv[5]);
        return cmd_snapshot_convert(argv[3], argv[4], save_opt);
      }
      if (input == "warm" && argc >= 4) return cmd_snapshot_warm(argv[3]);
      if (input == "load" && argc >= 4) {
        std::string mode;
        bool verify = false;
        for (int i = 4; i < argc; ++i) {
          const std::string arg = argv[i];
          if (arg == "mmap" || arg == "copy") mode = arg;
          else if (arg == "verify") verify = true;
          else return usage();
        }
        return cmd_snapshot_load(argv[3], mode, verify);
      }
      return usage();
    }
    if (cmd == "shard") {
      // here `input` is the shard sub-verb: plan | save | info | multiply
      if (input == "plan" && argc >= 4) {
        const index_t k = argc > 4 ? std::atoi(argv[4]) : 4;
        if (k < 1) return usage();
        return cmd_shard_plan(argv[3], k, argc > 5 ? argv[5] : "balanced");
      }
      if (input == "save" && argc >= 5) {
        const index_t k = argc > 5 ? std::atoi(argv[5]) : 4;
        if (k < 1) return usage();
        return cmd_shard_save(argv[3], argv[4], k,
                              argc > 6 ? argv[6] : "balanced",
                              argc > 7 ? argv[7] : "hierarchical");
      }
      if (input == "info" && argc >= 4) return cmd_shard_info(argv[3]);
      if (input == "load-shard" && argc >= 5) {
        const index_t k = std::atoi(argv[4]);
        const index_t bcols = argc > 5 ? std::atoi(argv[5]) : 16;
        if (k < 0 || bcols < 1) return usage();
        return cmd_shard_load_shard(argv[3], k, bcols);
      }
      if (input == "multiply" && argc >= 4) {
        const index_t bcols = argc > 4 ? std::atoi(argv[4]) : 32;
        const int workers = argc > 5 ? std::atoi(argv[5]) : 4;
        if (bcols < 1 || workers < 1) return usage();
        return cmd_shard_multiply(argv[3], bcols, workers);
      }
      return usage();
    }
    if (cmd == "serve-bench") {
      // Positional args first; the -- flags may appear anywhere after the
      // input.
      std::vector<std::string> pos;
      ServeBenchFlags flags;
      bool trace_sample_set = false;
      for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--batch-window-us") {
          if (i + 1 >= argc) return usage();
          flags.batch_window_us = std::atol(argv[++i]);
          if (flags.batch_window_us < 0) return usage();
        } else if (arg == "--prefault") {
          flags.prefault = true;
        } else if (arg == "--admission") {
          if (i + 1 >= argc) return usage();
          flags.admission = serve::parse_admission_kind(argv[++i]);
        } else if (arg == "--metrics-out") {
          if (i + 1 >= argc) return usage();
          flags.metrics_out = argv[++i];
        } else if (arg == "--trace-out") {
          if (i + 1 >= argc) return usage();
          flags.trace_out = argv[++i];
        } else if (arg == "--trace-sample") {
          if (i + 1 >= argc) return usage();
          flags.trace_sample = std::atof(argv[++i]);
          if (flags.trace_sample < 0 || flags.trace_sample > 1) return usage();
          trace_sample_set = true;
        } else if (arg == "--slow-trace-us") {
          if (i + 1 >= argc) return usage();
          flags.slow_trace_us = std::atol(argv[++i]);
          if (flags.slow_trace_us < 0) return usage();
        } else if (arg == "--dump-out") {
          if (i + 1 >= argc) return usage();
          flags.dump_out = argv[++i];
        } else if (arg == "--deadline-ms") {
          if (i + 1 >= argc) return usage();
          flags.deadline_ms = std::atol(argv[++i]);
          if (flags.deadline_ms < 0) return usage();
        } else if (arg == "--fault") {
          if (i + 1 >= argc) return usage();
          flags.faults.emplace_back(argv[++i]);
        } else if (arg == "--registry-bytes") {
          if (i + 1 >= argc) return usage();
          flags.registry_bytes = std::atoll(argv[++i]);
          if (flags.registry_bytes < 0) return usage();
        } else if (arg == "--prefetch") {
          if (i + 1 >= argc) return usage();
          const std::string v = argv[++i];
          if (v == "on") flags.prefetch = 1;
          else if (v == "off") flags.prefetch = 0;
          else return usage();
        } else {
          pos.push_back(arg);
        }
      }
      // --trace-out alone means "trace everything" — unless the flight
      // recorder is armed, in which case it exports the kept timelines.
      if (!flags.trace_out.empty() && !trace_sample_set &&
          flags.slow_trace_us == 0)
        flags.trace_sample = 1.0;
      // Test hook: stall the first batch pickup to exercise the watchdog.
      if (const char* stall = std::getenv("CW_SERVE_BENCH_STALL_MS"))
        flags.stall_ms = std::max(0L, std::atol(stall));
      // Latch SIGUSR1 immediately: a dump request that lands during the
      // prepare or the sequential baseline (before the engine run starts)
      // must be queued for the forensics monitor, not take the default
      // action and kill the process.
      if (!flags.dump_out.empty() || flags.stall_ms > 0)
        std::signal(SIGUSR1, on_dump_signal);
      // Arm the chaos sites before anything loads — the snapshot read is
      // part of the drill (CW_FAULT from the environment arms on first
      // probe by itself).
      for (const std::string& spec : flags.faults)
        fault::FaultInjector::global().arm_from_spec(spec);
      const int clients = pos.size() > 0 ? std::atoi(pos[0].c_str()) : 4;
      const int requests = pos.size() > 1 ? std::atoi(pos[1].c_str()) : 64;
      const int workers = pos.size() > 2 ? std::atoi(pos[2].c_str()) : 4;
      if (clients < 1 || requests < 1 || workers < 1) return usage();
      return cmd_serve_bench(input, clients, requests, workers, flags);
    }
    if (cmd == "metrics") {
      // here `input` is the metrics sub-verb: dump
      if (input == "dump" && argc >= 4) {
        int requests = 32;
        bool json = false;
        for (int i = 4; i < argc; ++i) {
          const std::string arg = argv[i];
          if (arg == "--json") json = true;
          else if (std::atoi(arg.c_str()) > 0) requests = std::atoi(arg.c_str());
          else return usage();
        }
        return cmd_metrics_dump(argv[3], requests, json);
      }
      return usage();
    }
    if (cmd == "debug") {
      // here `input` is the debug sub-verb: dump
      if (input == "dump" && argc >= 4) {
        int requests = 32;
        std::string out;
        for (int i = 4; i < argc; ++i) {
          const std::string arg = argv[i];
          if (arg == "--out") {
            if (i + 1 >= argc) return usage();
            out = argv[++i];
          } else if (std::atoi(arg.c_str()) > 0) {
            requests = std::atoi(arg.c_str());
          } else {
            return usage();
          }
        }
        return cmd_debug_dump(argv[3], requests, out);
      }
      return usage();
    }
  } catch (const cw::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
