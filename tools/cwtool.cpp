// cwtool — command-line frontend for the library.
//
//   cwtool info    <input>                 structural features + advisor hint
//   cwtool reorder <input> <algo> <out>    write the symmetrically permuted matrix
//   cwtool advise  <input> [budget]        preprocessing recommendation
//   cwtool bench   <input>                 time row-wise vs recommended setup
//
// <input> is either a Matrix Market file or `dataset:<name>` from the
// built-in suite. <algo> is one of: shuffled rcm amd nd gp hp gray rabbit
// degree slashburn. [budget] is single|tens|thousands.
#include <cstdio>
#include <cstring>
#include <string>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/advisor.hpp"
#include "gen/suite.hpp"
#include "matrix/matrix_market.hpp"

namespace {

using namespace cw;

Csr load_input(const std::string& arg) {
  if (arg.rfind("dataset:", 0) == 0) {
    return make_dataset(arg.substr(8), suite_scale_from_env());
  }
  return read_matrix_market_file(arg);
}

ReorderAlgo parse_algo(const std::string& s) {
  for (ReorderAlgo algo : all_reorder_algos()) {
    std::string name = to_string(algo);
    for (auto& ch : name) ch = static_cast<char>(std::tolower(ch));
    if (name == s) return algo;
  }
  throw Error("unknown reordering: " + s);
}

ReuseBudget parse_budget(const std::string& s) {
  if (s == "single") return ReuseBudget::kSingle;
  if (s == "thousands") return ReuseBudget::kThousands;
  return ReuseBudget::kTens;
}

void print_features(const MatrixFeatures& f) {
  std::printf("rows             %d\n", f.nrows);
  std::printf("nnz              %lld\n", static_cast<long long>(f.nnz));
  std::printf("avg nnz/row      %.2f (max %.0f)\n", f.avg_row_nnz, f.max_row_nnz);
  std::printf("degree CV        %.2f\n", f.degree_cv);
  std::printf("bandwidth ratio  %.3f\n", f.bandwidth_ratio);
  std::printf("consec. Jaccard  %.3f\n", f.consecutive_jaccard);
  std::printf("scatter Jaccard  %.3f\n", f.scattered_jaccard);
}

int cmd_info(const std::string& input) {
  const Csr a = load_input(input);
  print_features(extract_features(a));
  const Recommendation rec = advise(a);
  std::printf("suggestion       %s + %s\n", to_string(rec.reorder),
              to_string(rec.scheme));
  return 0;
}

int cmd_reorder(const std::string& input, const std::string& algo_name,
                const std::string& out_path) {
  const Csr a = load_input(input);
  const ReorderAlgo algo = parse_algo(algo_name);
  Timer t;
  const Permutation order = reorder(a, algo);
  std::fprintf(stderr, "%s ordering computed in %.1f ms\n", to_string(algo),
               t.seconds() * 1e3);
  write_matrix_market_file(out_path, a.permute_symmetric(order));
  std::fprintf(stderr, "wrote %s (bandwidth %d -> %d)\n", out_path.c_str(),
               a.bandwidth(), a.permute_symmetric(order).bandwidth());
  return 0;
}

int cmd_advise(const std::string& input, const std::string& budget) {
  const Csr a = load_input(input);
  const Recommendation rec = advise(a, parse_budget(budget));
  std::printf("reorder:    %s\n", to_string(rec.reorder));
  std::printf("clustering: %s\n", to_string(rec.scheme));
  std::printf("rationale:  %s\n", rec.rationale.c_str());
  return 0;
}

int cmd_bench(const std::string& input) {
  const Csr a = load_input(input);
  Timer tb;
  const Csr base = spgemm_square(a);
  const double base_s = tb.seconds();
  const Recommendation rec = advise(a);
  Pipeline p(a, rec.pipeline_options());
  Timer tv;
  const Csr c = p.multiply_square();
  const double var_s = tv.seconds();
  std::printf("row-wise A^2       %.2f ms\n", base_s * 1e3);
  std::printf("%s + %s  %.2f ms (%.2fx, preprocess %.2f ms)\n",
              to_string(rec.reorder), to_string(rec.scheme), var_s * 1e3,
              base_s / var_s, p.stats().preprocess_seconds() * 1e3);
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  cwtool info    <input>\n"
               "  cwtool reorder <input> <algo> <out.mtx>\n"
               "  cwtool advise  <input> [single|tens|thousands]\n"
               "  cwtool bench   <input>\n"
               "<input> = file.mtx | dataset:<name>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  const std::string input = argv[2];
  try {
    if (cmd == "info") return cmd_info(input);
    if (cmd == "reorder" && argc >= 5) return cmd_reorder(input, argv[3], argv[4]);
    if (cmd == "advise") return cmd_advise(input, argc > 3 ? argv[3] : "tens");
    if (cmd == "bench") return cmd_bench(input);
  } catch (const cw::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
