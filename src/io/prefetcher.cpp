#include "io/prefetcher.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/residency.hpp"
#include "fault/injector.hpp"
#include "fault/status.hpp"
#include "obs/sampler.hpp"

namespace cw::io {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

ShardPrefetcher::TicketState ShardPrefetcher::Ticket::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

bool ShardPrefetcher::Ticket::wait_until(
    Clock::time_point deadline) const {
  std::unique_lock<std::mutex> lock(mu_);
  if (deadline == Clock::time_point::max()) {
    cv_.wait(lock, [this] { return state_ != TicketState::kPending; });
    return true;
  }
  return cv_.wait_until(lock, deadline, [this] {
    return state_ != TicketState::kPending;
  });
}

void ShardPrefetcher::Ticket::resolve_(TicketState s) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ != TicketState::kPending) return;  // first resolution wins
    state_ = s;
  }
  cv_.notify_all();
}

ShardPrefetcher::Metrics::Metrics(obs::MetricsRegistry& m)
    : issued(m.counter("cw_prefetch_issued_total",
                       "Shard warm-ups started (I/O actually issued)")),
      warmed(m.counter("cw_prefetch_warmed_total",
                       "Issued warm-ups that completed")),
      hits(m.counter("cw_prefetch_hits_total",
                     "Demand already resident — no I/O needed")),
      skipped(m.counter("cw_prefetch_skipped_total",
                        "Demand skipped: queue full / over budget / stopped")),
      failed(m.counter("cw_prefetch_failed_total",
                       "Warm-ups that failed (request falls back to inline "
                       "faulting)")),
      coalesced(m.counter("cw_prefetch_coalesced_total",
                          "Demand that joined an already-pending ticket")),
      bytes(m.counter("cw_prefetch_bytes_total",
                      "Mapped bytes streamed into the page cache")),
      warm_ms(m.histogram("cw_prefetch_warm_ms",
                          "Per-ticket warm-up duration (advise + touch)")) {}

ShardPrefetcher::ShardPrefetcher(PrefetchOptions opt)
    : opt_(std::move(opt)),
      metrics_(opt_.metrics ? opt_.metrics
                            : std::make_shared<obs::MetricsRegistry>()),
      m_(*metrics_) {
  CW_CHECK_MSG(opt_.num_workers >= 1, "prefetcher: need >= 1 worker");
  CW_CHECK_MSG(opt_.max_in_flight >= 1,
               "prefetcher: need >= 1 in-flight slot");
}

ShardPrefetcher::~ShardPrefetcher() { stop(); }

void ShardPrefetcher::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  stopping_ = false;
  workers_.reserve(static_cast<std::size_t>(opt_.num_workers));
  for (int w = 0; w < opt_.num_workers; ++w)
    workers_.emplace_back([this] { worker_loop_(); });
}

void ShardPrefetcher::stop() {
  std::vector<std::thread> workers;
  std::vector<std::shared_ptr<Ticket>> cancelled;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stopping_ = true;
    // Cancel everything still queued; tickets being warmed right now are
    // resolved by their worker before it exits.
    while (!queue_.empty()) {
      cancelled.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    workers.swap(workers_);
  }
  work_cv_.notify_all();
  for (auto& t : cancelled) finish_(t, TicketState::kSkipped, 0, 0);
  for (auto& t : workers) t.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = false;
    stopping_ = false;
  }
}

bool ShardPrefetcher::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

std::shared_ptr<ShardPrefetcher::Ticket> ShardPrefetcher::enqueue(
    std::shared_ptr<const Pipeline> p) {
  auto make_resolved = [](TicketState s) {
    auto t = std::make_shared<Ticket>();
    t->state_ = s;  // never shared yet: no lock needed
    return t;
  };
  // Nothing mapped = nothing to stream: owned bytes are always resident.
  if (p == nullptr) return make_resolved(TicketState::kHit);
  const PipelineResidency res = p->residency();
  if (res.mapped_bytes == 0 ||
      static_cast<double>(res.resident_mapped_bytes) >=
          opt_.resident_fraction * static_cast<double>(res.mapped_bytes)) {
    m_.hits.inc();
    return make_resolved(TicketState::kHit);
  }
  std::shared_ptr<Ticket> ticket;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_ || stopping_) {
      m_.skipped.inc();
      return make_resolved(TicketState::kSkipped);
    }
    auto it = pending_.find(p.get());
    if (it != pending_.end()) {
      m_.coalesced.inc();
      return it->second;  // one paging cycle amortizes all queued demand
    }
    if (in_flight_ >= opt_.max_in_flight) {
      m_.skipped.inc();
      return make_resolved(TicketState::kSkipped);
    }
    ticket = std::make_shared<Ticket>();
    ticket->pipeline_ = std::move(p);
    ticket->enqueued_ = Clock::now();
    pending_.emplace(ticket->pipeline_.get(), ticket);
    queue_.push_back(ticket);
    ++in_flight_;
  }
  work_cv_.notify_one();
  return ticket;
}

std::size_t ShardPrefetcher::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

PrefetchStats ShardPrefetcher::stats() const {
  PrefetchStats s;
  s.issued = m_.issued.value();
  s.warmed = m_.warmed.value();
  s.hits = m_.hits.value();
  s.skipped = m_.skipped.value();
  s.failed = m_.failed.value();
  s.coalesced = m_.coalesced.value();
  s.bytes = m_.bytes.value();
  return s;
}

void ShardPrefetcher::register_probes(obs::PeriodicSampler& sampler) {
  sampler.add_probe("cw_prefetch_hit_rate",
                    "Fraction of prefetch demand already resident",
                    [this] { return stats().hit_rate(); });
  sampler.add_probe("cw_prefetch_in_flight",
                    "Prefetch tickets pending or being warmed",
                    [this] { return static_cast<double>(in_flight()); });
}

void ShardPrefetcher::finish_(const std::shared_ptr<Ticket>& t,
                              TicketState s, std::size_t bytes_streamed,
                              double ms) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.erase(t->pipeline_.get());
    if (in_flight_ > 0) --in_flight_;
  }
  switch (s) {
    case TicketState::kWarmed:
      m_.warmed.inc();
      m_.bytes.inc(bytes_streamed);
      m_.warm_ms.record(ms);
      break;
    case TicketState::kSkipped:
      m_.skipped.inc();
      break;
    case TicketState::kFailed:
      m_.failed.inc();
      break;
    default:
      break;
  }
  t->resolve_(s);
  // Drop the pipeline ref promptly: a resolved ticket must not keep an
  // evicted pipeline's mapping alive for as long as callers hold tickets.
  t->pipeline_.reset();
}

void ShardPrefetcher::worker_loop_() {
  for (;;) {
    std::shared_ptr<Ticket> ticket;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;  // stop() already cancelled the queue
      ticket = std::move(queue_.front());
      queue_.pop_front();
    }
    // The shard may have become resident while the ticket queued (the
    // engine inline-faulted it, a coalesced neighbour streamed it, the
    // governor re-warmed it): a late ticket is a hit, not a re-stream.
    const auto already_resident = [this, &ticket]() -> bool {
      const PipelineResidency res = ticket->pipeline_->residency();
      return res.mapped_bytes == 0 ||
             static_cast<double>(res.resident_mapped_bytes) >=
                 opt_.resident_fraction * static_cast<double>(res.mapped_bytes);
    };
    // Re-probe BEFORE pacing — but only tickets that AGED in the queue (a
    // fresh one was probed at enqueue microseconds ago, and on one core
    // every redundant mincore walk is stolen from the multiplies). Pacing
    // first would park the worker on I/O nobody needs and head-of-line
    // block every fresh ticket behind a stale one for up to
    // max_stream_wait.
    if (residency::supported() &&
        Clock::now() - ticket->enqueued_ > std::chrono::milliseconds(5) &&
        already_resident()) {
      m_.hits.inc();
      finish_(ticket, TicketState::kHit, 0, 0);
      continue;
    }
    // Budget pacing, at ISSUE time: streaming past the budget would evict
    // pages the requests ahead of this one are about to multiply out of —
    // and get this ticket's pages evicted before their turn (prefetch
    // distance). Wait for the governor to open room; demand that cannot
    // get room within max_stream_wait degrades to inline faulting. While
    // paced the world moves on — the engine may inline-fault this very
    // shard — so re-probe every ~16 ms and resolve the gone-resident
    // ticket kHit instead of keeping the queue wedged behind it.
    if (opt_.budget_bytes > 0 && opt_.resident_bytes_fn) {
      const Clock::time_point give_up = Clock::now() + opt_.max_stream_wait;
      bool over = false;
      bool became_hit = false;
      int polls = 0;
      while ((over = opt_.resident_bytes_fn() >= opt_.budget_bytes)) {
        if (Clock::now() >= give_up) break;
        {
          std::lock_guard<std::mutex> lock(mu_);
          if (stopping_) break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        if (residency::supported() && ++polls % 16 == 0 &&
            already_resident()) {
          became_hit = true;
          break;
        }
      }
      if (became_hit) {
        m_.hits.inc();
        finish_(ticket, TicketState::kHit, 0, 0);
        continue;
      }
      if (over) {
        finish_(ticket, TicketState::kSkipped, 0, 0);
        continue;
      }
    }
    const Clock::time_point begin = Clock::now();
    std::size_t streamed = 0;
    TicketState outcome = TicketState::kWarmed;
    std::string what;
    try {
      // The chaos drill's prefetch-loss site: a fire here degrades this
      // ticket to inline faulting — it must never propagate to a request.
      fault::inject("io.prefetch", fault::ErrorCode::kIoError);
      m_.issued.inc();
      if (opt_.touch_pages || !residency::supported()) {
        streamed = ticket->pipeline_->warm_up();
      } else {
        // Advise, then (unless fire-and-forget) sleep-poll until the
        // readahead lands: the kernel does the I/O, the worker yields the
        // CPU to the multiply.
        streamed = ticket->pipeline_->advise_willneed();
        const Clock::time_point give_up =
            opt_.wait_resident ? begin + opt_.max_stream_wait : begin;
        while (opt_.wait_resident) {
          const PipelineResidency res = ticket->pipeline_->residency();
          if (res.mapped_bytes == 0 ||
              static_cast<double>(res.resident_mapped_bytes) >=
                  opt_.resident_fraction *
                      static_cast<double>(res.mapped_bytes))
            break;
          if (Clock::now() >= give_up) break;
          {
            std::lock_guard<std::mutex> lock(mu_);
            if (stopping_) break;
          }
          // 2 ms polls: each iteration pays a mincore probe of the shard,
          // and on a single core that CPU comes out of the multiplies the
          // stream is supposed to hide behind.
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      }
    } catch (const std::exception& e) {
      outcome = TicketState::kFailed;
      what = e.what();
    } catch (...) {
      outcome = TicketState::kFailed;
      what = "unknown error";
    }
    const double ms =
        std::chrono::duration<double>(Clock::now() - begin).count() * 1e3;
    if (outcome == TicketState::kFailed && opt_.events != nullptr &&
        opt_.events->enabled(obs::LogLevel::kWarn))
      opt_.events->warn("prefetcher",
                        "prefetch failed; request will fault inline: " + what,
                        {{"bytes", std::to_string(streamed)}});
    finish_(ticket, outcome, streamed, ms);
  }
}

}  // namespace cw::io
