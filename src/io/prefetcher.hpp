// Async shard prefetcher — the streaming half of out-of-core serving.
//
// A v3-mmapped shard that is not resident pays its page faults inline, on
// the serving thread, in the middle of a multiply. The prefetcher moves
// that cost off the request path: callers enqueue the pipelines upcoming
// requests will touch (the demand stream), and a small pool of worker
// threads streams them in — by default WILLNEED advise (the kernel starts
// async readahead I/O) plus a sleeping mincore poll for completion, so
// cold shards stream from disk WHILE the engine multiplies resident ones
// and the workers cost almost no CPU; PrefetchOptions::touch_pages swaps
// in the synchronous touch pass (Pipeline::warm_up()) instead. This is
// the FlashGraph/SAFS shape (per-worker AIO feeding an in-memory portion
// of an external-memory store) applied to prepared pipelines.
//
// Semantics:
//   * Tickets. enqueue() returns a shared Ticket that turns terminal
//     exactly once: kWarmed (I/O done), kHit (already resident — no I/O
//     needed), kSkipped (queue full / over budget / stopped — caller
//     falls back to inline faulting), or kFailed (an io.prefetch fault or
//     a real syscall error — ALSO just a fallback to inline faulting;
//     a prefetch failure must never fail a request).
//   * Coalescing. Requests queued for the same pipeline share one ticket
//     while it is pending — N queued requests for one shard group pay one
//     paging cycle, not N.
//   * Bounded in-flight. At most `max_in_flight` tickets are pending at
//     once; excess demand resolves kSkipped immediately instead of
//     building an unbounded I/O backlog.
//   * Budget. When a resident-bytes probe is configured (e.g. the
//     registry's mincore walk), a worker PACES at issue time: while the
//     probe reads at or above `budget_bytes` it sleeps, waiting for the
//     paging governor (serve/paging_governor.hpp) to release room, and
//     only then streams — prefetch must not page-thrash the very memory
//     the engine is multiplying out of, nor run so far ahead of the
//     request queue that its own pages are evicted before their turn.
//     A ticket that cannot get room within max_stream_wait resolves
//     kSkipped (inline faulting).
//
// start()/stop() are idempotent; stop() cancels pending tickets (they
// resolve kSkipped) and joins the workers, so an engine shutdown never
// leaves a ticket waiter hanging.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/pipeline.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace cw::obs {
class PeriodicSampler;
}  // namespace cw::obs

namespace cw::io {

struct PrefetchOptions {
  /// Worker threads driving warm_up(). One is usually enough (the kernel
  /// parallelizes the readahead); more overlap multiple shards' touch
  /// passes.
  int num_workers = 1;
  /// Pending-ticket cap: demand beyond it resolves kSkipped immediately.
  std::size_t max_in_flight = 8;
  /// Pace streaming while `resident_bytes_fn` reads >= this (the worker
  /// waits for the governor to open room before issuing); 0 = no budget
  /// (always stream immediately).
  std::size_t budget_bytes = 0;
  /// Resident-byte probe backing the budget (e.g.
  /// PipelineRegistry::resident_mapped_bytes, or the governor's cached
  /// view). Null with budget_bytes > 0 = the budget is ignored.
  std::function<std::size_t()> resident_bytes_fn;
  /// A pipeline whose mapped bytes are at least this resident counts as a
  /// hit (no I/O issued). 1.0 would re-stream a shard missing one page.
  double resident_fraction = 0.9;
  /// Stream mode. false (default): WILLNEED-advise the shard — the
  /// kernel's readahead performs the I/O asynchronously — then poll
  /// mincore with 1 ms sleeps until resident_fraction is reached, so a
  /// worker costs almost no CPU while pages land (the mode for
  /// compute-starved hosts: I/O overlaps the multiply even on one core).
  /// true: follow the advise with a touch pass (Pipeline::warm_up()) that
  /// guarantees the pages are faulted on return — worth it when spare
  /// cores outnumber the I/O streams. Builds without residency syscalls
  /// always touch (there is no mincore to poll).
  bool touch_pages = false;
  /// Async mode: resolve the ticket only once the pages actually landed
  /// (the mincore poll). false = fire-and-forget: the ticket resolves
  /// kWarmed right after the WILLNEED advise — the kernel owns the I/O
  /// from there and whatever has not landed by pickup faults inline. The
  /// cheapest possible streaming on a compute-starved host: no polling,
  /// no waiters, just early readahead. (Ignored by touch_pages mode.)
  bool wait_resident = true;
  /// Async mode: give up polling a ticket after this long; the ticket
  /// still resolves kWarmed and whatever has not landed faults inline.
  std::chrono::milliseconds max_stream_wait{2000};
  /// Metrics registry backing the cw_prefetch_* series. Null = private.
  std::shared_ptr<obs::MetricsRegistry> metrics;
  /// Structured event log for failed/skipped prefetches. Null = silent.
  std::shared_ptr<obs::EventLog> events;
};

/// Point-in-time counters (also exported as cw_prefetch_* series).
struct PrefetchStats {
  std::uint64_t issued = 0;     ///< warm_up()s actually started (I/O)
  std::uint64_t warmed = 0;     ///< issued that completed
  std::uint64_t hits = 0;       ///< demand already resident — no I/O
  std::uint64_t skipped = 0;    ///< queue full / over budget / stopped
  std::uint64_t failed = 0;     ///< injected or real I/O failure
  std::uint64_t coalesced = 0;  ///< demand that joined a pending ticket
  std::uint64_t bytes = 0;      ///< mapped bytes streamed by warm_up()
  /// Fraction of useful demand that needed no I/O: hits/(hits+issued).
  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + issued;
    return total ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
};

class ShardPrefetcher {
 public:
  /// Why (and whether) a ticket is terminal.
  enum class TicketState : std::uint8_t {
    kPending = 0,
    kWarmed,
    kHit,
    kSkipped,
    kFailed,
  };

  /// One unit of demand. Shared: every enqueue() of a pipeline whose
  /// ticket is still pending returns the SAME ticket.
  class Ticket {
   public:
    /// Terminal state, or kPending.
    [[nodiscard]] TicketState state() const;
    [[nodiscard]] bool terminal() const { return state() != TicketState::kPending; }
    /// The prefetch finished with its pages in RAM (warmed or already hot).
    [[nodiscard]] bool resident() const {
      const TicketState s = state();
      return s == TicketState::kWarmed || s == TicketState::kHit;
    }
    /// Block until terminal or `deadline`; returns terminal(). Tickets
    /// always terminate: workers resolve them, and stop() cancels pending
    /// ones — so a max() deadline cannot hang past the prefetcher's life.
    bool wait_until(std::chrono::steady_clock::time_point deadline) const;

   private:
    friend class ShardPrefetcher;
    void resolve_(TicketState s);
    std::shared_ptr<const Pipeline> pipeline_;
    /// When the demand was registered — a worker re-probes residency only
    /// for tickets that AGED in the queue (the enqueue-time probe already
    /// vouched for a fresh one).
    std::chrono::steady_clock::time_point enqueued_{};
    mutable std::mutex mu_;
    mutable std::condition_variable cv_;
    TicketState state_ = TicketState::kPending;
  };

  explicit ShardPrefetcher(PrefetchOptions opt = {});
  ~ShardPrefetcher();  // stop()

  ShardPrefetcher(const ShardPrefetcher&) = delete;
  ShardPrefetcher& operator=(const ShardPrefetcher&) = delete;

  /// Launch the workers. No-op if already running.
  void start();

  /// Cancel pending tickets (kSkipped), join workers. No-op if stopped; a
  /// stopped prefetcher can be start()ed again.
  void stop();

  [[nodiscard]] bool running() const;

  /// Register demand. Never blocks and never throws: the ticket is already
  /// terminal when the demand was a hit, over budget, over the in-flight
  /// cap, or the prefetcher is stopped. Null pipelines and fully-owned
  /// pipelines (nothing mapped to stream) resolve kHit.
  std::shared_ptr<Ticket> enqueue(std::shared_ptr<const Pipeline> p);

  /// Pending + in-progress tickets right now.
  [[nodiscard]] std::size_t in_flight() const;

  [[nodiscard]] PrefetchStats stats() const;

  /// The registry backing the cw_prefetch_* series.
  [[nodiscard]] const std::shared_ptr<obs::MetricsRegistry>& metrics() const {
    return metrics_;
  }

  /// Publish cw_prefetch_hit_rate and cw_prefetch_in_flight as sampled
  /// gauges. Stop the sampler before destroying the prefetcher.
  void register_probes(obs::PeriodicSampler& sampler);

 private:
  /// The cw_prefetch_* instruments, interned once at construction.
  struct Metrics {
    explicit Metrics(obs::MetricsRegistry& m);
    obs::Counter& issued;
    obs::Counter& warmed;
    obs::Counter& hits;
    obs::Counter& skipped;
    obs::Counter& failed;
    obs::Counter& coalesced;
    obs::Counter& bytes;
    obs::Histogram& warm_ms;
  };

  void worker_loop_();
  /// Terminal transition + dedup-map cleanup + metrics. Never under mu_
  /// for the ticket's own cv (Ticket has its own lock).
  void finish_(const std::shared_ptr<Ticket>& t, TicketState s,
               std::size_t bytes_streamed, double ms);

  const PrefetchOptions opt_;
  const std::shared_ptr<obs::MetricsRegistry> metrics_;
  Metrics m_;  // binds into *metrics_: keep declared after it

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Ticket>> queue_;
  /// Coalescing index: pipeline -> its pending ticket. Entries are erased
  /// at terminal transition, so a re-enqueue after completion streams
  /// again (the pages may have been released meanwhile).
  std::unordered_map<const Pipeline*, std::shared_ptr<Ticket>> pending_;
  std::size_t in_flight_ = 0;  // queued + being warmed
  bool running_ = false;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cw::io
