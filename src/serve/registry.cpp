#include "serve/registry.hpp"

#include "common/error.hpp"

namespace cw::serve {

namespace {

/// Add one array's bytes to the side of the footprint its storage lives on.
/// `bytes` follows the historical accounting (CsrCluster::memory_bytes's
/// bit-packed mask convention included) so fully-owned pipelines cost
/// exactly what they always did.
template <typename T>
void account(PipelineFootprint* f, const ArraySegment<T>& seg,
             std::size_t bytes) {
  (seg.owned() ? f->anonymous_bytes : f->mapped_bytes) += bytes;
}

}  // namespace

PipelineFootprint pipeline_footprint(const Pipeline& p) {
  PipelineFootprint f;
  f.anonymous_bytes += sizeof(Pipeline);
  const Csr& a = p.matrix();
  account(&f, a.row_ptr(), a.row_ptr().size_bytes());
  account(&f, a.col_idx(), a.col_idx().size_bytes());
  account(&f, a.values(), a.values().size_bytes());
  f.anonymous_bytes += p.order().size() * sizeof(index_t);
  // The cached inverse permutation is resident too; omitting it once made
  // byte-bounded LRU limits undercount every entry by a full index array.
  f.anonymous_bytes += p.inverse_order().size() * sizeof(index_t);
  account(&f, p.clustering().ptr(), p.clustering().ptr().size_bytes());
  if (p.clustered()) {
    const CsrCluster& cc = *p.clustered();
    const index_t k = cc.clustering().max_size();
    const std::size_t mask_bytes = k <= 8 ? 1 : k <= 16 ? 2 : k <= 32 ? 4 : 8;
    account(&f, cc.cluster_ptr(), cc.cluster_ptr().size_bytes());
    account(&f, cc.value_ptr(), cc.value_ptr().size_bytes());
    account(&f, cc.clustering().ptr(), cc.clustering().ptr().size_bytes());
    account(&f, cc.col_idx(), cc.col_idx().size_bytes());
    // Owned masks keep the historical bit-packed convention; a mapped mask
    // segment occupies its actual on-disk width (8B/entry) of page cache,
    // and mapped_bytes_used must state what is really mapped.
    account(&f, cc.row_mask(),
            cc.row_mask().owned() ? cc.col_idx().size() * mask_bytes
                                  : cc.row_mask().size_bytes());
    account(&f, cc.values(), cc.values().size_bytes());
  }
  return f;
}

std::size_t pipeline_memory_bytes(const Pipeline& p) {
  return pipeline_footprint(p).total();
}

PipelineRegistry::PipelineRegistry(std::size_t capacity_bytes)
    : capacity_(capacity_bytes) {
  stats_.capacity_bytes = capacity_bytes;
}

std::shared_ptr<const Pipeline> PipelineRegistry::find(const Fingerprint& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  touch_(it->second);
  return it->second->pipeline;
}

std::shared_ptr<const Pipeline> PipelineRegistry::insert(
    const Fingerprint& key, std::shared_ptr<const Pipeline> p,
    bool* admitted) {
  CW_CHECK_MSG(p != nullptr, "registry: cannot insert a null pipeline");
  if (admitted) *admitted = false;
  const PipelineFootprint footprint = pipeline_footprint(*p);
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = map_.find(key); it != map_.end()) {
    // Racing builder lost: keep the incumbent so both callers share one copy.
    touch_(it->second);
    return it->second->pipeline;
  }
  // Only the private (anonymous) bytes compete for the budget; mapped bytes
  // are shared page cache (see PipelineFootprint).
  if (footprint.anonymous_bytes > capacity_) {
    ++stats_.oversize_rejects;
    return p;  // usable by the caller, just not cached
  }
  if (admitted) *admitted = true;
  evict_until_(capacity_ - footprint.anonymous_bytes);
  lru_.push_front(Entry{key, std::move(p), footprint});
  map_[key] = lru_.begin();
  stats_.bytes_used += footprint.anonymous_bytes;
  stats_.mapped_bytes_used += footprint.mapped_bytes;
  ++stats_.insertions;
  return lru_.front().pipeline;
}

std::shared_ptr<const Pipeline> PipelineRegistry::get_or_build(
    const Fingerprint& key,
    const std::function<std::shared_ptr<const Pipeline>()>& build) {
  if (auto hit = find(key)) return hit;
  // Build outside the lock: preprocessing can take seconds and must not
  // block lookups or unrelated builds.
  std::shared_ptr<const Pipeline> built = build();
  CW_CHECK_MSG(built != nullptr, "registry: build callback returned null");
  return insert(key, std::move(built));
}

void PipelineRegistry::erase(const Fingerprint& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return;
  stats_.bytes_used -= it->second->footprint.anonymous_bytes;
  stats_.mapped_bytes_used -= it->second->footprint.mapped_bytes;
  lru_.erase(it->second);
  map_.erase(it);
}

void PipelineRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  map_.clear();
  stats_.bytes_used = 0;
  stats_.mapped_bytes_used = 0;
}

RegistryStats PipelineRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistryStats s = stats_;
  s.entries = map_.size();
  return s;
}

std::size_t PipelineRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

void PipelineRegistry::touch_(LruList::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

void PipelineRegistry::evict_until_(std::size_t budget) {
  while (stats_.bytes_used > budget && !lru_.empty()) {
    const Entry& victim = lru_.back();
    stats_.bytes_used -= victim.footprint.anonymous_bytes;
    stats_.mapped_bytes_used -= victim.footprint.mapped_bytes;
    map_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

}  // namespace cw::serve
