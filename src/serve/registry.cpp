#include "serve/registry.hpp"

#include <chrono>
#include <string>

#include "common/error.hpp"
#include "fault/injector.hpp"
#include "obs/sampler.hpp"

namespace cw::serve {

namespace {

/// Milliseconds elapsed since `t0` — residency syscall timing.
double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Add one array's bytes to the side of the footprint its storage lives on.
/// `bytes` follows the historical accounting (CsrCluster::memory_bytes's
/// bit-packed mask convention included) so fully-owned pipelines cost
/// exactly what they always did.
template <typename T>
void account(PipelineFootprint* f, const ArraySegment<T>& seg,
             std::size_t bytes) {
  (seg.owned() ? f->anonymous_bytes : f->mapped_bytes) += bytes;
}

}  // namespace

PipelineFootprint pipeline_footprint(const Pipeline& p) {
  PipelineFootprint f;
  f.anonymous_bytes += sizeof(Pipeline);
  const Csr& a = p.matrix();
  account(&f, a.row_ptr(), a.row_ptr().size_bytes());
  account(&f, a.col_idx(), a.col_idx().size_bytes());
  account(&f, a.values(), a.values().size_bytes());
  f.anonymous_bytes += p.order().size() * sizeof(index_t);
  // The cached inverse permutation is resident too; omitting it once made
  // byte-bounded LRU limits undercount every entry by a full index array.
  f.anonymous_bytes += p.inverse_order().size() * sizeof(index_t);
  account(&f, p.clustering().ptr(), p.clustering().ptr().size_bytes());
  if (p.clustered()) {
    const CsrCluster& cc = *p.clustered();
    const index_t k = cc.clustering().max_size();
    const std::size_t mask_bytes = k <= 8 ? 1 : k <= 16 ? 2 : k <= 32 ? 4 : 8;
    account(&f, cc.cluster_ptr(), cc.cluster_ptr().size_bytes());
    account(&f, cc.value_ptr(), cc.value_ptr().size_bytes());
    account(&f, cc.clustering().ptr(), cc.clustering().ptr().size_bytes());
    account(&f, cc.col_idx(), cc.col_idx().size_bytes());
    // Owned masks keep the historical bit-packed convention; a mapped mask
    // segment occupies its actual on-disk width (8B/entry) of page cache,
    // and mapped_bytes_used must state what is really mapped.
    account(&f, cc.row_mask(),
            cc.row_mask().owned() ? cc.col_idx().size() * mask_bytes
                                  : cc.row_mask().size_bytes());
    account(&f, cc.values(), cc.values().size_bytes());
  }
  return f;
}

std::size_t pipeline_memory_bytes(const Pipeline& p) {
  return pipeline_footprint(p).total();
}

PipelineRegistry::PipelineRegistry(std::size_t capacity_bytes)
    : PipelineRegistry([capacity_bytes] {
        RegistryOptions opt;
        opt.capacity_bytes = capacity_bytes;
        return opt;
      }()) {}

PipelineRegistry::Metrics::Metrics(obs::MetricsRegistry& m)
    : hits(m.counter("cw_registry_hits_total", "Lookups served from cache")),
      misses(m.counter("cw_registry_misses_total",
                       "Lookups that found nothing")),
      insertions(m.counter("cw_registry_insertions_total",
                           "Entries admitted into the cache")),
      evictions(m.counter("cw_registry_evictions_total",
                          "Entries displaced to make room")),
      oversize_rejects(
          m.counter("cw_registry_oversize_rejects_total",
                    "Inserts refused: entry bigger than the whole budget")),
      admission_rejects(
          m.counter("cw_registry_admission_rejects_total",
                    "Inserts refused by the admission policy")),
      released_evictions(
          m.counter("cw_registry_released_evictions_total",
                    "Evictions/erases that released mapped pages")),
      released_bytes(m.counter("cw_registry_released_bytes_total",
                               "Mapped bytes DONTNEEDed by those releases")),
      prefaulted_bytes(m.counter("cw_registry_prefaulted_bytes_total",
                                 "Mapped bytes prefaulted on admit")),
      load_retries(m.counter("cw_registry_load_retries_total",
                             "get_or_load retries after a retryable "
                             "load failure")),
      quarantined(
          m.counter("cw_registry_quarantined_total",
                    "Fingerprints quarantined after exhausting retries")),
      quarantine_blocked(
          m.counter("cw_registry_quarantine_blocked_total",
                    "get_or_load calls refused fast: key quarantined")),
      entries(m.gauge("cw_registry_entries", "Cached pipelines")),
      bytes_used(m.gauge("cw_registry_anonymous_bytes",
                         "Anonymous (budget-charged) bytes cached")),
      mapped_bytes_used(m.gauge("cw_registry_mapped_bytes",
                                "File-backed mmap bytes cached")),
      locked_bytes(m.gauge("cw_registry_locked_bytes",
                           "Mapped bytes pinned under the mlock budget")),
      capacity(m.gauge("cw_registry_capacity_bytes",
                       "Configured anonymous-byte budget")),
      warmup_ms(m.histogram("cw_residency_warmup_ms",
                            "warm_up() wall time per admitted mapped entry")),
      release_ms(
          m.histogram("cw_residency_release_ms",
                      "release_residency() wall time per released entry")) {}

PipelineRegistry::PipelineRegistry(const RegistryOptions& opt)
    : opt_(opt),
      policy_(opt.admission == AdmissionKind::kAdmitAll
                  ? nullptr  // admit-all needs no state or virtual calls
                  : make_admission_policy(opt.admission, opt.tinylfu)),
      metrics_(opt.metrics ? opt.metrics
                           : std::make_shared<obs::MetricsRegistry>()),
      events_(opt.events),
      m_(*metrics_),
      errors_(*metrics_),
      quarantine_(fault::QuarantineOptions{opt.quarantine_ttl}) {
  m_.capacity.set(static_cast<double>(opt.capacity_bytes));
}

std::shared_ptr<const Pipeline> PipelineRegistry::find(const Fingerprint& key) {
  std::lock_guard<std::mutex> lock(mu_);
  // Misses are recorded too: a key that keeps being asked for must build up
  // frequency *before* it is in the cache, or admission could never learn
  // that the fleet wants it.
  if (policy_) policy_->record_access(FingerprintHasher{}(key));
  auto it = map_.find(key);
  if (it == map_.end()) {
    m_.misses.inc();
    return nullptr;
  }
  m_.hits.inc();
  touch_(it->second);
  return it->second->pipeline;
}

std::shared_ptr<const Pipeline> PipelineRegistry::insert(
    const Fingerprint& key, std::shared_ptr<const Pipeline> p,
    bool* admitted) {
  CW_CHECK_MSG(p != nullptr, "registry: cannot insert a null pipeline");
  if (admitted) *admitted = false;
  const PipelineFootprint footprint = pipeline_footprint(*p);
  const std::uint64_t key_hash = FingerprintHasher{}(key);
  std::shared_ptr<const Pipeline> cached;
  std::size_t lock_quota = 0;
  std::uint64_t lock_token = 0;
  std::vector<Deferred> deferred;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (policy_) policy_->record_access(key_hash);
    if (auto it = map_.find(key); it != map_.end()) {
      // Racing builder lost: keep the incumbent so both callers share one
      // copy.
      touch_(it->second);
      return it->second->pipeline;
    }
    // Only the private (anonymous) bytes compete for the budget; mapped
    // bytes are shared page cache (see PipelineFootprint).
    if (footprint.anonymous_bytes > opt_.capacity_bytes) {
      m_.oversize_rejects.inc();
      if (events_)
        events_->warn("registry", "insert refused: entry exceeds budget",
                      {{"key", to_string(key)},
                       {"bytes", std::to_string(footprint.anonymous_bytes)}});
      return p;  // usable by the caller, just not cached
    }
    // Admission is decided over ALL prospective victims BEFORE anything is
    // evicted: each one gets to defend its slot through the policy, and a
    // rejected candidate must leave the cache exactly as it found it — a
    // scan key that beats the coldest entry but loses to the next must not
    // drain the cold tail on every retry while never being admitted.
    std::vector<LruList::iterator> victims;
    std::size_t freed = 0;
    for (auto vit = lru_.end();
         bytes_used_ - freed + footprint.anonymous_bytes >
             opt_.capacity_bytes &&
         vit != lru_.begin();) {
      --vit;  // walk LRU-first (back to front)
      if (policy_ && !policy_->admit_over(key_hash, vit->key_hash)) {
        m_.admission_rejects.inc();
        if (events_)
          events_->info("registry",
                        "insert refused by admission: victim is hotter",
                        {{"key", to_string(key)},
                         {"victim", to_string(vit->key)}});
        return p;
      }
      freed += vit->footprint.anonymous_bytes;
      victims.push_back(vit);
    }
    for (LruList::iterator vit : victims) {
      if (events_)
        events_->info(
            "registry", "evicted to make room",
            {{"key", to_string(vit->key)},
             {"bytes", std::to_string(vit->footprint.anonymous_bytes)},
             {"for", to_string(key)}});
      detach_(vit, &deferred);
      m_.evictions.inc();
    }
    if (admitted) *admitted = true;
    lru_.push_front(Entry{key, key_hash, std::move(p), footprint, 0, 0});
    map_[key] = lru_.begin();
    bytes_used_ += footprint.anonymous_bytes;
    mapped_bytes_used_ += footprint.mapped_bytes;
    m_.insertions.inc();
    cached = lru_.front().pipeline;
    if (footprint.mapped_bytes > 0 &&
        opt_.mlock_budget_bytes > locked_bytes_) {
      // Reserve this entry's share of the mlock budget now (so concurrent
      // admits cannot over-commit it) and true it up to what mlock actually
      // pinned below, outside the lock.
      lock_quota = opt_.mlock_budget_bytes - locked_bytes_;
      if (lock_quota > footprint.mapped_bytes)
        lock_quota = footprint.mapped_bytes;
      locked_bytes_ += lock_quota;
      lru_.front().locked_bytes = lock_quota;
      lock_token = ++next_lock_token_;
      lru_.front().lock_token = lock_token;
    }
    publish_sizes_();
  }
  // Residency work runs outside the lock: touching/pinning/releasing pages
  // is O(mapped bytes) of kernel work, and lookups must not stall behind it.
  finish_releases_(deferred);
  if (footprint.mapped_bytes > 0) {
    if (opt_.prefault_on_admit) {
      const auto t0 = std::chrono::steady_clock::now();
      const std::size_t warmed = cached->warm_up();
      m_.warmup_ms.record(ms_since(t0));
      m_.prefaulted_bytes.inc(warmed);
    }
    if (lock_quota > 0) {
      const std::size_t locked = cached->lock_residency(lock_quota);
      std::lock_guard<std::mutex> lock(mu_);
      auto it = map_.find(key);
      // The token proves the entry still carries THIS call's reservation —
      // matching by key or pipeline pointer is not enough, because an
      // erase-and-reinsert of the same pipeline in the window would make us
      // adjust a stranger's (differently sized) reservation.
      if (it != map_.end() && it->second->lock_token == lock_token) {
        locked_bytes_ -= lock_quota - locked;  // locked <= lock_quota
        it->second->locked_bytes = locked;
        publish_sizes_();
      } else {
        // A racer already evicted/replaced us (its eviction returned our
        // reservation); drop the pins we just took.
        cached->unlock_residency();
      }
    }
  }
  return cached;
}

std::shared_ptr<const Pipeline> PipelineRegistry::get_or_build(
    const Fingerprint& key,
    const std::function<std::shared_ptr<const Pipeline>()>& build) {
  if (auto hit = find(key)) return hit;
  // Build outside the lock: preprocessing can take seconds and must not
  // block lookups or unrelated builds.
  std::shared_ptr<const Pipeline> built = build();
  CW_CHECK_MSG(built != nullptr, "registry: build callback returned null");
  return insert(key, std::move(built));
}

std::shared_ptr<const Pipeline> PipelineRegistry::get_or_load(
    const Fingerprint& key,
    const std::function<std::shared_ptr<const Pipeline>()>& load) {
  if (auto hit = find(key)) return hit;
  const std::string qkey = to_string(key);
  if (quarantine_.blocked(qkey)) {
    // Fail fast: the file was proven bad within the TTL. Re-reading it
    // would spend seconds of IO per admission attempt to rediscover that.
    m_.quarantine_blocked.inc();
    errors_.bump(fault::ErrorCode::kCorruptSnapshot);
    if (events_)
      events_->warn(
          "registry", "load refused: fingerprint quarantined",
          {{"key", qkey},
           {"reason", quarantine_.reason(qkey).value_or("")},
           {"code", fault::code_label(fault::ErrorCode::kCorruptSnapshot)}});
    throw fault::StatusError(
        fault::ErrorCode::kCorruptSnapshot,
        "registry: fingerprint quarantined after repeated load failures: " +
            qkey);
  }
  // `load` runs outside every registry mutex — same discipline as
  // get_or_build and the deferred-release eviction path: O(file) syscall
  // work must never stall concurrent lookups.
  const int attempts = 1 + (opt_.load_retries > 0 ? opt_.load_retries : 0);
  std::exception_ptr last;
  fault::ErrorCode last_code = fault::ErrorCode::kInternal;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    try {
      fault::inject("registry.admit", fault::ErrorCode::kIoError);
      std::shared_ptr<const Pipeline> loaded = load();
      CW_CHECK_MSG(loaded != nullptr, "registry: load callback returned null");
      return insert(key, std::move(loaded));
    } catch (const Error&) {
      last = std::current_exception();
      last_code = fault::code_of(last);
      // A torn read or transient IO error may heal on a re-read from disk;
      // anything else (bad argument, cancellation) never will.
      if (!fault::retryable_load(last_code)) break;
      if (attempt + 1 < attempts) {
        m_.load_retries.inc();
        if (events_)
          events_->warn("registry", "pipeline load failed; retrying from disk",
                        {{"key", qkey},
                         {"attempt", std::to_string(attempt + 1)},
                         {"code", fault::code_label(last_code)}});
      }
    }
  }
  errors_.bump(last_code);
  if (fault::retryable_load(last_code)) {
    // Failed every attempt: the file is bad on disk, not torn in transit.
    quarantine_.put(qkey, "load failed " + std::to_string(attempts) +
                              "x: " + std::string(fault::to_string(last_code)));
    m_.quarantined.inc();
    if (events_)
      events_->error("registry", "pipeline load failed; key quarantined",
                     {{"key", qkey},
                      {"attempts", std::to_string(attempts)},
                      {"code", fault::code_label(last_code)}});
  } else if (events_) {
    events_->error("registry", "pipeline load failed (not retryable)",
                   {{"key", qkey}, {"code", fault::code_label(last_code)}});
  }
  std::rethrow_exception(last);
}

void PipelineRegistry::erase(const Fingerprint& key) {
  std::vector<Deferred> deferred;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) return;
    detach_(it->second, &deferred);
  }
  finish_releases_(deferred);
}

void PipelineRegistry::clear() {
  std::vector<Deferred> deferred;
  {
    std::lock_guard<std::mutex> lock(mu_);
    while (!lru_.empty()) detach_(lru_.begin(), &deferred);
  }
  finish_releases_(deferred);
}

RegistryStats PipelineRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistryStats s;
  s.hits = m_.hits.value();
  s.misses = m_.misses.value();
  s.insertions = m_.insertions.value();
  s.evictions = m_.evictions.value();
  s.oversize_rejects = m_.oversize_rejects.value();
  s.admission_rejects = m_.admission_rejects.value();
  s.released_evictions = m_.released_evictions.value();
  s.released_bytes = m_.released_bytes.value();
  s.prefaulted_bytes = m_.prefaulted_bytes.value();
  s.load_retries = m_.load_retries.value();
  s.quarantined = m_.quarantined.value();
  s.quarantine_blocked = m_.quarantine_blocked.value();
  s.quarantined_keys = quarantine_.size();
  s.bytes_used = bytes_used_;
  s.mapped_bytes_used = mapped_bytes_used_;
  s.locked_bytes = locked_bytes_;
  s.capacity_bytes = opt_.capacity_bytes;
  s.entries = map_.size();
  return s;
}

std::size_t PipelineRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

std::size_t PipelineRegistry::resident_mapped_bytes() const {
  // Snapshot the mapped entries' handles under the lock, probe after it
  // drops: the mincore walk is O(mapped pages) and must not stall lookups —
  // and a concurrent evict must not leave the walk probing a mapping whose
  // pages were already DONTNEEDed out from under it. Each shared_ptr keeps
  // its mapping alive for the duration of the probe; an entry evicted
  // mid-walk just contributes its pre-release residency one last time.
  std::vector<std::shared_ptr<const Pipeline>> mapped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    mapped.reserve(map_.size());
    for (const Entry& entry : lru_)
      if (entry.footprint.mapped_bytes > 0) mapped.push_back(entry.pipeline);
  }
  std::size_t resident = 0;
  for (const auto& p : mapped)
    resident += p->residency().resident_mapped_bytes;
  return resident;
}

std::vector<std::shared_ptr<const Pipeline>>
PipelineRegistry::mapped_entries_coldest_first() const {
  std::vector<std::shared_ptr<const Pipeline>> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(map_.size());
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it)
    if (it->footprint.mapped_bytes > 0) out.push_back(it->pipeline);
  return out;
}

std::size_t PipelineRegistry::release_cold_residency(
    std::size_t target_bytes, const std::vector<const Pipeline*>& keep) {
  // Snapshot (pipeline, mlocked?) coldest-first under the lock, then do all
  // mincore/madvise work after it drops — identical discipline to
  // resident_mapped_bytes(): O(mapped pages) of kernel work must never
  // stall lookups, and the shared_ptrs keep mappings alive across the walk.
  struct Victim {
    std::shared_ptr<const Pipeline> pipeline;
    bool pinned;
  };
  std::vector<Victim> cold;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cold.reserve(map_.size());
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it)
      if (it->footprint.mapped_bytes > 0)
        cold.push_back(Victim{it->pipeline, it->locked_bytes > 0});
  }
  std::size_t resident = 0;
  std::vector<std::size_t> per_entry(cold.size(), 0);
  for (std::size_t i = 0; i < cold.size(); ++i) {
    per_entry[i] = cold[i].pipeline->residency().resident_mapped_bytes;
    resident += per_entry[i];
  }
  std::size_t released = 0;
  for (std::size_t i = 0; i < cold.size() && resident > target_bytes; ++i) {
    if (cold[i].pinned || per_entry[i] == 0) continue;
    bool demanded = false;
    for (const Pipeline* k : keep)
      if (k == cold[i].pipeline.get()) {
        demanded = true;
        break;
      }
    if (demanded) continue;  // a queued request is about to touch it
    const auto t0 = std::chrono::steady_clock::now();
    const std::size_t r = cold[i].pipeline->release_residency();
    m_.release_ms.record(ms_since(t0));
    released += r;
    resident -= per_entry[i] < resident ? per_entry[i] : resident;
    if (events_ && events_->enabled(obs::LogLevel::kDebug))
      events_->debug("registry", "governor released cold entry's residency",
                     {{"bytes", std::to_string(r)}});
  }
  return released;
}

void PipelineRegistry::write_residency_json(std::ostream& os) const {
  // stats() and the mincore probe take the lock separately — a diagnostic
  // report needs per-field truth, not one global instant.
  const RegistryStats s = stats();
  const std::size_t resident = resident_mapped_bytes();
  os << "{\"entries\": " << s.entries << ", \"capacity_bytes\": "
     << s.capacity_bytes << ", \"anonymous_bytes\": " << s.bytes_used
     << ", \"mapped_bytes\": " << s.mapped_bytes_used
     << ", \"resident_mapped_bytes\": " << resident << ", \"locked_bytes\": "
     << s.locked_bytes << ", \"hits\": " << s.hits << ", \"misses\": "
     << s.misses << ", \"evictions\": " << s.evictions
     << ", \"admission_rejects\": " << s.admission_rejects
     << ", \"released_bytes\": " << s.released_bytes << "}";
}

double PipelineRegistry::admission_sketch_occupancy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return policy_ ? policy_->occupancy() : 0.0;
}

void PipelineRegistry::register_probes(obs::PeriodicSampler& sampler) {
  sampler.add_probe(
      "cw_registry_resident_mapped_bytes",
      "mincore-probed physically resident bytes of cached mapped entries",
      [this] { return static_cast<double>(resident_mapped_bytes()); });
  sampler.add_probe(
      "cw_admission_sketch_occupancy",
      "Fraction of nonzero admission-sketch counters (0 under admit-all)",
      [this] { return admission_sketch_occupancy(); });
}

void PipelineRegistry::touch_(LruList::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

void PipelineRegistry::detach_(LruList::iterator it,
                               std::vector<Deferred>* out) {
  const Entry& entry = *it;
  bytes_used_ -= entry.footprint.anonymous_bytes;
  mapped_bytes_used_ -= entry.footprint.mapped_bytes;
  locked_bytes_ -= entry.locked_bytes;
  if (entry.footprint.mapped_bytes > 0 &&
      (opt_.release_mapped_on_evict || entry.locked_bytes > 0))
    out->push_back(
        Deferred{entry.pipeline, entry.locked_bytes,
                 opt_.release_mapped_on_evict});
  map_.erase(entry.key);
  lru_.erase(it);
  publish_sizes_();
}

void PipelineRegistry::publish_sizes_() {
  m_.entries.set(static_cast<double>(map_.size()));
  m_.bytes_used.set(static_cast<double>(bytes_used_));
  m_.mapped_bytes_used.set(static_cast<double>(mapped_bytes_used_));
  m_.locked_bytes.set(static_cast<double>(locked_bytes_));
}

void PipelineRegistry::finish_releases_(const std::vector<Deferred>& deferred) {
  for (const Deferred& d : deferred) {
    if (d.release_mapped) {
      // Dropping a mapped entry must return memory, not just forget a
      // pointer into page cache — DONTNEED its pages and their cache
      // copies. Anyone still holding the shared_ptr (or a racer that
      // re-admits the same pipeline meanwhile) stays correct, just
      // re-faults.
      const auto t0 = std::chrono::steady_clock::now();
      const std::size_t released = d.pipeline->release_residency();
      m_.release_ms.record(ms_since(t0));
      m_.released_bytes.inc(released);
      m_.released_evictions.inc();
      if (events_ && events_->enabled(obs::LogLevel::kDebug))
        events_->debug("registry", "released mapped pages of evicted entry",
                       {{"bytes", std::to_string(released)}});
    } else if (d.locked_bytes > 0) {
      d.pipeline->unlock_residency();
    }
  }
}

}  // namespace cw::serve
