#include "serve/registry.hpp"

#include "common/error.hpp"

namespace cw::serve {

std::size_t pipeline_memory_bytes(const Pipeline& p) {
  std::size_t bytes = sizeof(Pipeline);
  bytes += p.matrix().memory_bytes();
  bytes += p.order().size() * sizeof(index_t);
  // The cached inverse permutation is resident too; omitting it once made
  // byte-bounded LRU limits undercount every entry by a full index array.
  bytes += p.inverse_order().size() * sizeof(index_t);
  bytes += p.clustering().ptr().size() * sizeof(index_t);
  if (p.clustered()) bytes += p.clustered()->memory_bytes();
  return bytes;
}

PipelineRegistry::PipelineRegistry(std::size_t capacity_bytes)
    : capacity_(capacity_bytes) {
  stats_.capacity_bytes = capacity_bytes;
}

std::shared_ptr<const Pipeline> PipelineRegistry::find(const Fingerprint& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  touch_(it->second);
  return it->second->pipeline;
}

std::shared_ptr<const Pipeline> PipelineRegistry::insert(
    const Fingerprint& key, std::shared_ptr<const Pipeline> p,
    bool* admitted) {
  CW_CHECK_MSG(p != nullptr, "registry: cannot insert a null pipeline");
  if (admitted) *admitted = false;
  const std::size_t bytes = pipeline_memory_bytes(*p);
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = map_.find(key); it != map_.end()) {
    // Racing builder lost: keep the incumbent so both callers share one copy.
    touch_(it->second);
    return it->second->pipeline;
  }
  if (bytes > capacity_) {
    ++stats_.oversize_rejects;
    return p;  // usable by the caller, just not cached
  }
  if (admitted) *admitted = true;
  evict_until_(capacity_ - bytes);
  lru_.push_front(Entry{key, std::move(p), bytes});
  map_[key] = lru_.begin();
  stats_.bytes_used += bytes;
  ++stats_.insertions;
  return lru_.front().pipeline;
}

std::shared_ptr<const Pipeline> PipelineRegistry::get_or_build(
    const Fingerprint& key,
    const std::function<std::shared_ptr<const Pipeline>()>& build) {
  if (auto hit = find(key)) return hit;
  // Build outside the lock: preprocessing can take seconds and must not
  // block lookups or unrelated builds.
  std::shared_ptr<const Pipeline> built = build();
  CW_CHECK_MSG(built != nullptr, "registry: build callback returned null");
  return insert(key, std::move(built));
}

void PipelineRegistry::erase(const Fingerprint& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return;
  stats_.bytes_used -= it->second->bytes;
  lru_.erase(it->second);
  map_.erase(it);
}

void PipelineRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  map_.clear();
  stats_.bytes_used = 0;
}

RegistryStats PipelineRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistryStats s = stats_;
  s.entries = map_.size();
  return s;
}

std::size_t PipelineRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

void PipelineRegistry::touch_(LruList::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

void PipelineRegistry::evict_until_(std::size_t budget) {
  while (stats_.bytes_used > budget && !lru_.empty()) {
    const Entry& victim = lru_.back();
    stats_.bytes_used -= victim.bytes;
    map_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

}  // namespace cw::serve
