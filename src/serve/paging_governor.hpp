// Paging governor — the pressure-release half of out-of-core serving.
//
// The prefetcher (io/prefetcher.hpp) streams upcoming shards IN; something
// must decide what goes OUT, or serving a snapshot 10x RAM just thrashes.
// The governor watches the registry's mincore-probed resident mapped bytes
// against a watermark pair:
//
//   resident > high_watermark  →  release cold entries' residency
//                                 (coldest-first, LRU tail) down to
//                                 low_watermark — the entries stay cached
//                                 and re-fault or re-prefetch on next use.
//
// The gap between the watermarks is the streaming headroom: each
// enforcement frees a batch of pages so the next few prefetches land
// without re-triggering a release per ticket. Entries pinned under the
// mlock budget and pipelines named in the current demand set are never
// released.
//
// Two driving paths:
//   * demand(pipelines) — the engine's queued requests name the shards
//     they are about to touch; non-resident ones are fed to the
//     prefetcher and the watermarks enforced (with the demanded set held
//     out of the release walk).
//   * hold_demand()/release_demand() — standing holds for QUEUED demand.
//     The registry releases coldest-first by LRU, but a serving queue is
//     a forward scan: the least-recently-USED pipeline is often exactly
//     the one a queued request touches next (and the prefetcher just
//     streamed) — LRU's classic failure mode. The engine holds every
//     queued request's shards from submit until the request resolves, so
//     no enforcement path (demand-driven or the background sampler tick)
//     can evict pages between their prefetch and their multiply.
//   * register_probes(sampler) — a PeriodicSampler probe publishes the
//     resident level AND, as its side effect, enforces the watermarks and
//     re-warms watched pipelines whose residency decayed below
//     rewarm_fraction (the kernel reclaimed pages behind our back, a
//     neighbour DONTNEEDed a shared mapping, …). This is the background
//     re-warm loop: watch() a pipeline once and the sampler keeps it warm.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "io/prefetcher.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "serve/registry.hpp"

namespace cw::serve {

struct PagingGovernorOptions {
  /// Resident mapped bytes across the registry above which enforce()
  /// releases cold residency. 0 = watermark enforcement disabled (demand
  /// still feeds the prefetcher).
  std::size_t high_watermark_bytes = 0;
  /// Release down to this level; 0 = 7/8 of the high watermark.
  std::size_t low_watermark_bytes = 0;
  /// A watched pipeline is re-warmed when its resident fraction drops
  /// below this.
  double rewarm_fraction = 0.5;
  /// Metrics registry backing the cw_governor_* series. Null = private.
  std::shared_ptr<obs::MetricsRegistry> metrics;
  /// Event log for enforcement/re-warm events. Null = silent.
  std::shared_ptr<obs::EventLog> events;
};

/// Point-in-time counters (also exported as cw_governor_* series).
struct PagingGovernorStats {
  std::uint64_t enforcements = 0;    ///< enforce() calls that released
  std::uint64_t released_bytes = 0;  ///< cold mapped bytes released
  std::uint64_t rewarms = 0;         ///< watched pipelines re-warmed
  std::uint64_t demand = 0;          ///< pipelines fed through demand()
  std::uint64_t held = 0;            ///< pipelines under a standing hold now
};

class PagingGovernor {
 public:
  /// The registry and prefetcher must outlive the governor (and any
  /// sampler its probes are registered with).
  PagingGovernor(PipelineRegistry& registry, io::ShardPrefetcher& prefetcher,
                 PagingGovernorOptions opt = {});

  PagingGovernor(const PagingGovernor&) = delete;
  PagingGovernor& operator=(const PagingGovernor&) = delete;

  /// Feed the demand stream: enqueue prefetches for `pipelines` (the
  /// prefetcher filters hits itself), then enforce the watermarks with
  /// the demanded set excluded from release. Returns the tickets, aligned
  /// with the input.
  std::vector<std::shared_ptr<io::ShardPrefetcher::Ticket>> demand(
      const std::vector<std::shared_ptr<const Pipeline>>& pipelines);

  /// One watermark check: when the registry's resident mapped bytes
  /// exceed the high watermark, release cold residency down to the low
  /// one. `keep` — plus every pipeline under a standing hold — is held
  /// out of the release walk. Returns bytes released.
  std::size_t enforce(const std::vector<const Pipeline*>& keep = {});

  /// Standing hold: keep `p` out of EVERY release walk (background ticks
  /// included) until release_demand(p). Holds are counted — N queued
  /// requests naming the same shard take N holds and the shard stays
  /// protected until the last one resolves. Null is a no-op.
  void hold_demand(const std::shared_ptr<const Pipeline>& p);
  /// Drop one hold on `p`; the pipeline becomes evictable when the count
  /// reaches zero. Unmatched releases are no-ops.
  void release_demand(const Pipeline* p);

  /// Keep `p` warm in the background: every rewarm_once() sweep (usually
  /// sampler-driven) re-enqueues a prefetch when its resident fraction
  /// has dropped below rewarm_fraction. Watching an owned (nothing
  /// mapped) pipeline is a no-op per sweep.
  void watch(std::shared_ptr<const Pipeline> p);
  void unwatch(const Pipeline* p);

  /// Sweep the watched set once; returns re-warms enqueued. (The sampler
  /// probe body — callable inline from tests.)
  std::size_t rewarm_once();

  [[nodiscard]] PagingGovernorStats stats() const;

  /// Publish cw_governor_resident_mapped_bytes as a sampled gauge whose
  /// probe ALSO enforces the watermarks and sweeps the re-warm set — one
  /// registration turns the sampler into the governor's background loop.
  /// Stop the sampler before destroying the governor.
  void register_probes(obs::PeriodicSampler& sampler);

 private:
  /// The cw_governor_* instruments, interned once at construction.
  struct Metrics {
    explicit Metrics(obs::MetricsRegistry& m);
    obs::Counter& enforcements;
    obs::Counter& released_bytes;
    obs::Counter& rewarms;
    obs::Counter& demand;
    obs::Gauge& resident_bytes;
  };

  PipelineRegistry& registry_;
  io::ShardPrefetcher& prefetcher_;
  const PagingGovernorOptions opt_;
  const std::size_t low_watermark_;
  const std::shared_ptr<obs::MetricsRegistry> metrics_;
  Metrics m_;  // binds into *metrics_: keep declared after it

  /// One standing hold: the shared_ptr keeps the mapping alive while a
  /// queued request depends on it; refs counts overlapping requests.
  struct Hold {
    std::shared_ptr<const Pipeline> pipeline;
    std::uint32_t refs = 0;
  };

  mutable std::mutex mu_;  // guards watched_ and held_
  std::vector<std::shared_ptr<const Pipeline>> watched_;
  std::unordered_map<const Pipeline*, Hold> held_;
};

}  // namespace cw::serve
