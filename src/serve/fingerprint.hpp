// Cheap structural fingerprint of a CSR matrix — the serving cache key.
//
// The registry (serve/registry.hpp) must recognize "the same A came in
// again" without holding a copy of every A it has ever prepared. The
// fingerprint combines the exact dimensions and nnz with a 64-bit FNV-1a
// digest over a bounded sample of row_ptr / col_idx / value entries, so
// computing it is O(sample) regardless of matrix size. Two matrices with
// equal fingerprints are treated as identical by the serving layer; the
// sampled digest makes accidental collisions between *different* workload
// matrices astronomically unlikely (dims and nnz must already agree).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "matrix/csr.hpp"

namespace cw::serve {

struct Fingerprint {
  index_t nrows = 0;
  index_t ncols = 0;
  offset_t nnz = 0;
  std::uint64_t digest = 0;

  bool operator==(const Fingerprint&) const = default;
};

/// Fingerprint `a`, hashing at most `sample_rows` evenly spaced rows (their
/// row_ptr extents plus the first/last few column ids and values of each).
/// The first and last row are always included.
Fingerprint fingerprint(const Csr& a, index_t sample_rows = 64);

/// "nrows x ncols, nnz=…, digest=…" (digest in hex).
std::string to_string(const Fingerprint& fp);

/// Hasher for unordered containers keyed by Fingerprint.
struct FingerprintHasher {
  std::size_t operator()(const Fingerprint& fp) const noexcept;
};

}  // namespace cw::serve
