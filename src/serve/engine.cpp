#include "serve/engine.hpp"

#include <algorithm>
#include <optional>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"

namespace cw::serve {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count() * 1e3;
}

}  // namespace

ServeEngine::ServeEngine(EngineOptions opt)
    : opt_(opt),
      start_(Clock::now()),
      registry_(opt.registry.capacity_bytes > 0
                    ? std::make_unique<PipelineRegistry>(opt.registry)
                    : nullptr),
      latencies_(opt.latency_window) {
  CW_CHECK_MSG(opt_.num_workers >= 1, "engine: need at least one worker");
  CW_CHECK_MSG(opt_.max_batch >= 1, "engine: max_batch must be >= 1");
  workers_.reserve(static_cast<std::size_t>(opt_.num_workers));
  for (int w = 0; w < opt_.num_workers; ++w)
    workers_.emplace_back([this] { worker_loop_(); });
}

ServeEngine::~ServeEngine() { shutdown(); }

std::shared_ptr<const Pipeline> ServeEngine::admit(
    const Fingerprint& key, std::shared_ptr<const Pipeline> p) {
  if (registry_ == nullptr) return p;
  return registry_->insert(key, std::move(p));
}

std::future<Csr> ServeEngine::submit(std::shared_ptr<const Pipeline> pipeline,
                                     Csr b) {
  return submit(std::move(pipeline),
                std::make_shared<const Csr>(std::move(b)));
}

std::future<Csr> ServeEngine::submit(std::shared_ptr<const Pipeline> pipeline,
                                     std::shared_ptr<const Csr> b) {
  auto result = enqueue_(std::move(pipeline), std::move(b), /*block=*/true);
  CW_CHECK_MSG(result.has_value(), "engine: blocking submit cannot shed");
  return std::move(*result);
}

std::optional<std::future<Csr>> ServeEngine::try_submit(
    std::shared_ptr<const Pipeline> pipeline, Csr b) {
  return try_submit(std::move(pipeline),
                    std::make_shared<const Csr>(std::move(b)));
}

std::optional<std::future<Csr>> ServeEngine::try_submit(
    std::shared_ptr<const Pipeline> pipeline, std::shared_ptr<const Csr> b) {
  return enqueue_(std::move(pipeline), std::move(b), /*block=*/false);
}

std::optional<std::future<Csr>> ServeEngine::enqueue_(
    std::shared_ptr<const Pipeline> pipeline, std::shared_ptr<const Csr> b,
    bool block) {
  CW_CHECK_MSG(pipeline != nullptr, "engine: null pipeline handle");
  CW_CHECK_MSG(b != nullptr, "engine: null request payload");
  Job job;
  job.b = std::move(b);
  job.enqueued = Clock::now();
  std::future<Csr> result = job.result.get_future();

  {
    std::unique_lock<std::mutex> lock(mu_);
    CW_CHECK_MSG(!stopping_, "engine: submit after shutdown");
    if (opt_.max_queue_depth > 0 && queued_ >= opt_.max_queue_depth) {
      if (!block) {
        ++shed_;
        return std::nullopt;
      }
      // Backpressure: park the caller until a worker drains the queue below
      // the cap. shutdown() notifies too, so a blocked producer fails fast
      // instead of deadlocking a stopping engine.
      space_cv_.wait(lock, [this] {
        return stopping_ || queued_ < opt_.max_queue_depth;
      });
      CW_CHECK_MSG(!stopping_, "engine: submit after shutdown");
    }
    const Pipeline* key = pipeline.get();
    Group& group = groups_[key];
    if (!group.pipeline) group.pipeline = std::move(pipeline);
    // A group enters the round-robin only when it transitions empty→pending;
    // a worker re-queues it after a pickup if jobs remain. A group whose
    // batch window is open is owned by a parked worker instead: it is never
    // in ready_ (jobs non-empty), and the arrival is signalled to the owner
    // so it can re-check the max_batch cutoff.
    if (group.jobs.empty()) ready_.push_back(key);
    group.jobs.push_back(std::move(job));
    ++submitted_;
    ++queued_;
    if (queued_ > max_queued_) max_queued_ = queued_;
    // Wake every parked window on any arrival: the owner of this group's
    // window re-checks max_batch; other windows re-check whether they must
    // yield to newly-ready groups or force-close at the queue cap.
    if (open_windows_ > 0) window_cv_.notify_all();
  }
  work_cv_.notify_one();
  return result;
}

void ServeEngine::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    return ready_.empty() && in_flight_ == 0 &&
           completed_ + failed_ == submitted_;
  });
}

void ServeEngine::close_batch_windows() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++window_epoch_;
  }
  window_cv_.notify_all();
}

void ServeEngine::shutdown() {
  drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();   // wake any producer blocked on backpressure
  window_cv_.notify_all();  // wake any worker parked in a batch window
  for (auto& t : workers_) t.join();
  workers_.clear();
}

EngineStats ServeEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  EngineStats s;
  s.submitted = submitted_;
  s.completed = completed_;
  s.failed = failed_;
  s.shed = shed_;
  s.max_queued = max_queued_;
  s.batches = batches_;
  s.coalesced = coalesced_;
  s.stacked_batches = stacked_batches_;
  s.stacked_requests = stacked_requests_;
  s.fused_columns = fused_columns_;
  s.windows_opened = windows_opened_;
  s.window_timeouts = window_timeouts_;
  s.window_filled = window_filled_;
  s.window_forced = window_forced_;
  s.window_yielded = window_yielded_;
  s.open_windows = open_windows_;
  s.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - start_).count();
  s.busy_seconds = busy_seconds_;
  s.throughput_rps = s.elapsed_seconds > 0
                         ? static_cast<double>(s.completed) / s.elapsed_seconds
                         : 0;
  if (latencies_.count() > 0) {
    s.latency_p50_ms = latencies_.window_percentile(50);
    s.latency_p95_ms = latencies_.window_percentile(95);
    s.latency_p99_ms = latencies_.window_percentile(99);
    s.latency_max_ms = latencies_.max_ms();
  }
  if (registry_) s.registry = registry_->stats();
  return s;
}

void ServeEngine::wait_batch_window_(std::unique_lock<std::mutex>& lock,
                                     Group& group) {
  const Clock::time_point deadline = Clock::now() + opt_.batch_window;
  const std::uint64_t epoch = window_epoch_;
  ++open_windows_;
  ++windows_opened_;
  for (;;) {
    if (group.jobs.size() >= static_cast<std::size_t>(opt_.max_batch)) {
      ++window_filled_;  // max_batch cutoff: no point waiting further
      break;
    }
    if (stopping_ || window_epoch_ != epoch) {
      ++window_forced_;  // close_batch_windows() hook or shutdown
      break;
    }
    if (opt_.max_queue_depth > 0 && queued_ >= opt_.max_queue_depth) {
      // Backpressure has the queue at the cap: every submit() is parked on
      // space_cv_ and every try_submit() sheds, so no arrival can join this
      // window — waiting out the budget would be pure dead time.
      ++window_forced_;
      break;
    }
    if (!ready_.empty() && idle_workers_ == 0) {
      // Another pipeline's requests are waiting and every other worker is
      // parked (in a window) or busy: holding this window open would tax a
      // different group's latency, which the budget never licenses. Flush
      // now and let this worker serve the ready queue.
      ++window_yielded_;
      break;
    }
    if (window_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      // An arrival can race the deadline: classify the close by what the
      // window actually gathered, not by which wakeup came last.
      if (group.jobs.size() >= static_cast<std::size_t>(opt_.max_batch))
        ++window_filled_;
      else
        ++window_timeouts_;
      break;
    }
  }
  --open_windows_;
}

void ServeEngine::worker_loop_() {
  // The nthreads ICV is per OS thread, so capping it here budgets every
  // batch this worker will ever run without touching the other workers or
  // the caller's threads.
  set_num_threads(opt_.omp_threads_per_worker);
  for (;;) {
    std::shared_ptr<const Pipeline> pipeline;
    std::vector<Job> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++idle_workers_;
      work_cv_.wait(lock, [this] { return stopping_ || !ready_.empty(); });
      --idle_workers_;
      if (ready_.empty()) return;  // stopping, queue fully drained
      const Pipeline* key = ready_.front();
      ready_.pop_front();
      Group& group = groups_.at(key);
      pipeline = group.pipeline;
      // Second-level scheduler: an under-filled pickup holds the group's
      // batch window open, trading up to batch_window of latency for more
      // same-A arrivals to stack. The group is out of ready_ the whole time,
      // so this worker owns it; unordered_map references are node-stable, so
      // `group` survives other groups' insertions while the lock is dropped.
      if (opt_.batch_window.count() > 0 && !stopping_ &&
          group.jobs.size() < static_cast<std::size_t>(opt_.max_batch))
        wait_batch_window_(lock, group);
      const auto take = std::min<std::size_t>(
          group.jobs.size(), static_cast<std::size_t>(opt_.max_batch));
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(group.jobs.front()));
        group.jobs.pop_front();
      }
      if (!group.jobs.empty()) {
        ready_.push_back(key);  // round-robin re-queue
        // Leftovers exist only when arrivals outran max_batch — and if they
        // landed during this worker's batch window, their enqueue-time
        // notifications were consumed by idle workers that found ready_
        // empty (the group was window-owned). Re-signal, or an idle worker
        // sleeps through the re-queued work.
        work_cv_.notify_one();
      } else {
        // Drop the empty group so the map does not accumulate one slot per
        // pipeline ever served (we hold our own shared_ptr for the batch).
        groups_.erase(key);
      }
      queued_ -= batch.size();
      in_flight_ += batch.size();
      // This pickup may have consumed the last idle worker while groups
      // remain in ready_ (several arrivals raced one idle worker, or the
      // round-robin re-queue above left work behind): parked windows must
      // re-check their yield condition now, not at an arrival that may
      // never come.
      if (open_windows_ > 0 && !ready_.empty() && idle_workers_ == 0)
        window_cv_.notify_all();
    }
    if (opt_.max_queue_depth > 0) space_cv_.notify_all();

    const Clock::time_point batch_start = Clock::now();
    struct Outcome {
      std::optional<Csr> value;
      std::exception_ptr error;
    };
    std::uint64_t ok = 0, bad = 0;
    std::vector<Outcome> outcomes(batch.size());
    std::vector<double> done_ms(batch.size(), 0.0);

    // Fused stacked multiply: column-stack every compatible B (right row
    // count, within the stacked-column cap) into one panel and run a single
    // kernel launch for all of them — bit-identical per slice to the
    // per-request path. Incompatible or oversized requests simply stay
    // unfulfilled here and take the per-request loop below (where a wrong
    // row count surfaces as that request's own error, exactly as before).
    std::uint64_t stacked_batches = 0, stacked_requests = 0, fused_cols = 0;
    if (opt_.batch_window.count() > 0 && batch.size() >= 2) {
      const index_t want_rows = pipeline->matrix().ncols();
      std::vector<std::size_t> stackable;
      std::int64_t total_cols = 0;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const Csr& b = *batch[i].b;
        if (b.nrows() != want_rows) continue;
        if (opt_.max_stacked_cols > 0 &&
            total_cols + b.ncols() > opt_.max_stacked_cols)
          continue;
        stackable.push_back(i);
        total_cols += b.ncols();
      }
      if (stackable.size() >= 2) {
        std::vector<const Csr*> bs;
        bs.reserve(stackable.size());
        for (const std::size_t i : stackable) bs.push_back(batch[i].b.get());
        try {
          std::vector<Csr> products = pipeline->multiply_stacked(bs);
          // Unpermuting the slice == slicing the unpermuted panel: row
          // permutations commute with column selection, so this matches the
          // per-request path bit for bit. Finish every slice before
          // committing any outcome, so a mid-loop throw leaves the whole
          // fused attempt unfulfilled and the fallback below serves it.
          if (opt_.unpermute_results)
            for (Csr& c : products) c = pipeline->unpermute_rows(c);
          for (std::size_t j = 0; j < stackable.size(); ++j) {
            outcomes[stackable[j]].value = std::move(products[j]);
            ++ok;
          }
          const Clock::time_point fused_done = Clock::now();
          for (const std::size_t i : stackable)
            done_ms[i] = ms_between(batch[i].enqueued, fused_done);
          stacked_batches = 1;
          stacked_requests = stackable.size();
          fused_cols = static_cast<std::uint64_t>(total_cols);
        } catch (...) {
          // Fused path failed as a whole (e.g. panel allocation): fall back
          // to per-request multiplies so one request's cost cannot take the
          // others down with it.
        }
      }
    }

    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (outcomes[i].value.has_value()) continue;  // fulfilled by the panel
      try {
        Csr c = pipeline->multiply(*batch[i].b);
        if (opt_.unpermute_results) c = pipeline->unpermute_rows(c);
        outcomes[i].value = std::move(c);
        ++ok;
      } catch (...) {
        outcomes[i].error = std::current_exception();
        ++bad;
      }
      done_ms[i] = ms_between(batch[i].enqueued, Clock::now());
    }
    const double busy =
        std::chrono::duration<double>(Clock::now() - batch_start).count();

    // Commit the counters BEFORE fulfilling the promises: a client that has
    // seen its future resolve must also see itself in stats().
    bool idle = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      completed_ += ok;
      failed_ += bad;
      ++batches_;
      if (batch.size() > 1) coalesced_ += batch.size();
      stacked_batches_ += stacked_batches;
      stacked_requests_ += stacked_requests;
      fused_columns_ += fused_cols;
      busy_seconds_ += busy;
      for (const double ms : done_ms) latencies_.record(ms);
      in_flight_ -= batch.size();
      idle = ready_.empty() && in_flight_ == 0;
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (outcomes[i].error)
        batch[i].result.set_exception(outcomes[i].error);
      else
        batch[i].result.set_value(std::move(*outcomes[i].value));
    }
    if (idle) idle_cv_.notify_all();
  }
}

}  // namespace cw::serve
