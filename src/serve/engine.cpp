#include "serve/engine.hpp"

#include <algorithm>
#include <optional>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "fault/injector.hpp"
#include "obs/exposition.hpp"
#include "obs/sampler.hpp"

namespace cw::serve {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count() * 1e3;
}

/// Human-readable text of a captured exception, for events and flight
/// records.
std::string describe_error(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

}  // namespace

ServeEngine::Metrics::Metrics(obs::MetricsRegistry& m)
    : submitted(m.counter("cw_engine_submitted_total", "Requests accepted")),
      completed(m.counter("cw_engine_completed_total",
                          "Requests fulfilled with a product")),
      failed(m.counter("cw_engine_failed_total",
                       "Requests whose multiply threw")),
      shed(m.counter("cw_engine_shed_total",
                     "try_submit() refusals at the queue cap")),
      batches(m.counter("cw_engine_batches_total", "Group pickups run")),
      coalesced(m.counter("cw_engine_coalesced_requests_total",
                          "Requests that shared their batch")),
      stacked_batches(m.counter("cw_engine_stacked_batches_total",
                                "Fused column-stacked multiplies run")),
      stacked_requests(m.counter("cw_engine_stacked_requests_total",
                                 "Requests fulfilled from a fused multiply")),
      fused_columns(m.counter("cw_engine_fused_columns_total",
                              "Stacked-panel columns across fused multiplies")),
      windows_opened(m.counter("cw_engine_windows_opened_total",
                               "Batch windows opened")),
      window_timeouts(m.counter("cw_engine_window_timeouts_total",
                                "Windows closed on their latency budget")),
      window_filled(m.counter("cw_engine_window_filled_total",
                              "Windows closed early at max_batch")),
      window_forced(m.counter("cw_engine_window_forced_total",
                              "Windows force-closed (shutdown/hook/cap)")),
      window_yielded(m.counter("cw_engine_window_yielded_total",
                               "Windows closed early to serve other groups")),
      busy_seconds(m.gauge("cw_engine_busy_seconds",
                           "Summed worker compute time")),
      latency_ms(m.histogram("cw_engine_request_latency_ms",
                             "Request latency, enqueue to completion")),
      batch_size(m.histogram("cw_engine_batch_size",
                             "Requests coalesced per group pickup")) {}

ServeEngine::ServeEngine(EngineOptions opt)
    : opt_(std::move(opt)),
      start_(Clock::now()),
      metrics_(opt_.metrics ? opt_.metrics
                            : std::make_shared<obs::MetricsRegistry>()),
      events_(opt_.events ? opt_.events : std::make_shared<obs::EventLog>()),
      flight_(opt_.flight ? opt_.flight
              : opt_.flight_slow_threshold_ms > 0
                  ? std::make_shared<obs::FlightRecorder>(obs::FlightOptions{
                        opt_.flight_slow_threshold_ms})
                  : nullptr),
      registry_(opt_.registry.capacity_bytes > 0
                    ? std::make_unique<PipelineRegistry>([this] {
                        // The embedded cache shares the engine's metrics
                        // registry and event log unless the caller wired
                        // its own.
                        RegistryOptions r = opt_.registry;
                        if (!r.metrics) r.metrics = metrics_;
                        if (!r.events) r.events = events_;
                        return r;
                      }())
                    : nullptr),
      tracer_(opt_.trace ? opt_.trace
              : opt_.trace_sample_rate > 0
                  ? std::make_shared<obs::TraceCollector>(obs::TraceOptions{
                        opt_.trace_sample_rate, std::size_t{1} << 16})
                  : nullptr),
      m_(*metrics_),
      errors_(*metrics_) {
  CW_CHECK_MSG(opt_.num_workers >= 1, "engine: need at least one worker");
  CW_CHECK_MSG(opt_.max_batch >= 1, "engine: max_batch must be >= 1");
  stall_armed_.store(opt_.debug_stall_first.count() > 0,
                     std::memory_order_relaxed);
  workers_.reserve(static_cast<std::size_t>(opt_.num_workers));
  for (int w = 0; w < opt_.num_workers; ++w)
    workers_.emplace_back([this] { worker_loop_(); });
  events_->info("engine", "engine started",
                {{"workers", std::to_string(opt_.num_workers)}});
}

ServeEngine::~ServeEngine() { shutdown(); }

std::shared_ptr<const Pipeline> ServeEngine::admit(
    const Fingerprint& key, std::shared_ptr<const Pipeline> p) {
  if (registry_ == nullptr) return p;
  return registry_->insert(key, std::move(p));
}

std::future<Csr> ServeEngine::submit(std::shared_ptr<const Pipeline> pipeline,
                                     Csr b, const SubmitOptions& opts) {
  return submit(std::move(pipeline), std::make_shared<const Csr>(std::move(b)),
                opts);
}

std::future<Csr> ServeEngine::submit(std::shared_ptr<const Pipeline> pipeline,
                                     std::shared_ptr<const Csr> b,
                                     const SubmitOptions& opts) {
  auto result = enqueue_(std::move(pipeline), std::move(b), /*block=*/true,
                         nullptr, -1, /*external_trace=*/false, nullptr, opts);
  CW_CHECK_MSG(result.has_value(), "engine: blocking submit cannot shed");
  return std::move(*result);
}

std::future<Csr> ServeEngine::submit_traced(
    std::shared_ptr<const Pipeline> pipeline, std::shared_ptr<const Csr> b,
    std::shared_ptr<obs::TraceContext> trace, std::int64_t shard,
    std::shared_ptr<obs::TraceContext> flight, const SubmitOptions& opts) {
  auto result = enqueue_(std::move(pipeline), std::move(b), /*block=*/true,
                         std::move(trace), shard, /*external_trace=*/true,
                         std::move(flight), opts);
  CW_CHECK_MSG(result.has_value(), "engine: blocking submit cannot shed");
  return std::move(*result);
}

std::optional<std::future<Csr>> ServeEngine::try_submit(
    std::shared_ptr<const Pipeline> pipeline, Csr b,
    const SubmitOptions& opts) {
  return try_submit(std::move(pipeline),
                    std::make_shared<const Csr>(std::move(b)), opts);
}

std::optional<std::future<Csr>> ServeEngine::try_submit(
    std::shared_ptr<const Pipeline> pipeline, std::shared_ptr<const Csr> b,
    const SubmitOptions& opts) {
  return enqueue_(std::move(pipeline), std::move(b), /*block=*/false, nullptr,
                  -1, /*external_trace=*/false, nullptr, opts);
}

std::optional<std::future<Csr>> ServeEngine::enqueue_(
    std::shared_ptr<const Pipeline> pipeline, std::shared_ptr<const Csr> b,
    bool block, std::shared_ptr<obs::TraceContext> trace,
    std::int64_t trace_shard, bool external_trace,
    std::shared_ptr<obs::TraceContext> flight_ctx, const SubmitOptions& opts) {
  CW_CHECK_MSG(pipeline != nullptr, "engine: null pipeline handle");
  CW_CHECK_MSG(b != nullptr, "engine: null request payload");
  const std::uint64_t rid =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  Job job;
  job.b = std::move(b);
  if (external_trace) {
    // Scatter path: spans go into the parent request's contexts (which may
    // be null — the parent went unsampled / the parent engine has no
    // recorder); never consult our own sampler or recorder, and leave the
    // keep/discard verdict to the parent.
    job.trace = std::move(trace);
    job.trace_shard = trace_shard;
    job.flight = std::move(flight_ctx);
  } else {
    if (tracer_) {
      job.trace = tracer_->maybe_sample();
      job.own_trace = job.trace != nullptr;
    }
    if (flight_) {
      job.flight = flight_->begin(rid);
      job.own_flight = true;
    }
  }
  job.enqueued = Clock::now();
  job.deadline = opts.deadline_at;
  if (opts.deadline.count() > 0)
    job.deadline = std::min(job.deadline, job.enqueued + opts.deadline);
  job.slot = std::make_shared<obs::RequestSlot>(rid, job.enqueued,
                                                trace_shard);
  std::future<Csr> result = job.result.get_future();

  // Dead on arrival: the deadline passed before the request could queue.
  // Resolve the typed error without consuming a queue slot (never counted
  // submitted).
  if (job.deadline <= job.enqueued) {
    reject_job_(std::move(job), fault::ErrorCode::kDeadlineExceeded,
                "engine: deadline expired before enqueue");
    return result;
  }

  std::vector<Job> victims;
  bool shed = false;
  fault::ErrorCode reject = fault::ErrorCode::kOk;
  const char* reject_msg = nullptr;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_) {
      // The submit/stop race is a normal shutdown condition: resolve the
      // future with kCancelled instead of tearing the caller down with a
      // thrown Error.
      reject = fault::ErrorCode::kCancelled;
      reject_msg = "engine: submit after shutdown";
    } else if (opt_.max_queue_depth > 0 && queued_ >= opt_.max_queue_depth) {
      if (!block) {
        // Deadline-aware shedding: before refusing the arrival, reap any
        // queued request whose deadline has already passed — it can never
        // produce a product, so the slot it holds belongs to a request
        // that still can. Shed the arrival only when no victim exists.
        if (cancel_expired_locked_(Clock::now(), &victims) == 0) {
          shed = true;
          m_.shed.inc();
          errors_.bump(fault::ErrorCode::kShed);
          if (job.own_flight) flight_->record_shed(rid);
          if (events_->enabled(obs::LogLevel::kWarn))
            events_->warn("engine", "request shed at queue cap",
                          {{"request", std::to_string(rid)},
                           {"queue_depth", std::to_string(queued_)}});
        }
      } else {
        // Backpressure: park the caller until a worker drains the queue
        // below the cap, an expired victim frees a slot, the caller's own
        // deadline passes, or shutdown makes the wait moot.
        for (;;) {
          if (stopping_) {
            reject = fault::ErrorCode::kCancelled;
            reject_msg = "engine: submit after shutdown";
            break;
          }
          if (queued_ < opt_.max_queue_depth) break;
          if (cancel_expired_locked_(Clock::now(), &victims) > 0) break;
          if (job.deadline != Clock::time_point::max() &&
              Clock::now() >= job.deadline) {
            reject = fault::ErrorCode::kDeadlineExceeded;
            reject_msg = "engine: deadline expired waiting for queue space";
            break;
          }
          if (job.deadline != Clock::time_point::max())
            space_cv_.wait_until(lock, job.deadline);
          else
            space_cv_.wait(lock);
        }
      }
    }
    if (!shed && reject == fault::ErrorCode::kOk) {
      const Pipeline* key = pipeline.get();
      live_.emplace(rid, job.slot);
      Group& group = groups_[key];
      if (!group.pipeline) group.pipeline = std::move(pipeline);
      // A group enters the round-robin only when it transitions
      // empty→pending; a worker re-queues it after a pickup if jobs remain.
      // A group whose batch window is open is owned by a parked worker
      // instead: it is never in ready_ (jobs non-empty), and the arrival is
      // signalled to the owner so it can re-check the max_batch cutoff.
      if (group.jobs.empty()) ready_.push_back(key);
      group.jobs.push_back(std::move(job));
      m_.submitted.inc();
      ++queued_;
      if (queued_ > max_queued_) max_queued_ = queued_;
      // Wake every parked window on any arrival: the owner of this group's
      // window re-checks max_batch; other windows re-check whether they
      // must yield to newly-ready groups or force-close at the queue cap.
      if (open_windows_ > 0) window_cv_.notify_all();
    }
  }
  if (!victims.empty()) {
    finish_deadline_cancelled_(victims, Clock::now());
    space_cv_.notify_all();  // the reaped slots are free
    idle_cv_.notify_all();   // their failed counts may complete a drain()
  }
  if (shed) return std::nullopt;
  if (reject != fault::ErrorCode::kOk) {
    reject_job_(std::move(job), reject, reject_msg);
    return result;
  }
  work_cv_.notify_one();
  return result;
}

std::size_t ServeEngine::cancel_expired_locked_(Clock::time_point now,
                                                std::vector<Job>* out) {
  std::size_t n = 0;
  for (auto it = ready_.begin(); it != ready_.end();) {
    const Pipeline* key = *it;
    Group& group = groups_.at(key);
    for (auto jit = group.jobs.begin(); jit != group.jobs.end();) {
      if (jit->deadline <= now) {
        out->push_back(std::move(*jit));
        jit = group.jobs.erase(jit);
        ++n;
      } else {
        ++jit;
      }
    }
    if (group.jobs.empty()) {
      groups_.erase(key);
      it = ready_.erase(it);
    } else {
      ++it;
    }
  }
  if (n == 0) return 0;
  queued_ -= n;
  // The victims count as failed — their futures WILL resolve with the typed
  // error once the caller runs finish_deadline_cancelled_ — under mu_, the
  // same consistency contract as the worker's commit.
  for (auto vit = out->end() - static_cast<std::ptrdiff_t>(n);
       vit != out->end(); ++vit) {
    m_.failed.inc();
    errors_.bump(fault::ErrorCode::kDeadlineExceeded);
    m_.latency_ms.record(ms_between(vit->enqueued, now));
    if (vit->slot) {
      vit->slot->stage.store("deadline", std::memory_order_relaxed);
      live_.erase(vit->slot->id);
    }
  }
  return n;
}

void ServeEngine::finish_deadline_cancelled_(std::vector<Job>& victims,
                                             Clock::time_point now) {
  for (Job& job : victims) {
    const double ms = ms_between(job.enqueued, now);
    const char* tag = job.trace_shard >= 0 ? "shard" : nullptr;
    if (job.trace) {
      job.trace->add("queue-wait", job.enqueued, now, tag, job.trace_shard);
      job.trace->add("deadline", now, now, tag, job.trace_shard);
    }
    if (job.flight) {
      job.flight->add("queue-wait", job.enqueued, now, tag, job.trace_shard);
      job.flight->add("deadline", now, now, tag, job.trace_shard);
    }
    if (events_->enabled(obs::LogLevel::kWarn))
      events_->warn(
          "engine", "request cancelled: deadline expired in queue",
          {{"request",
            std::to_string(job.slot ? job.slot->id : std::uint64_t{0})},
           {"code",
            fault::code_label(fault::ErrorCode::kDeadlineExceeded)}});
    if (job.own_flight)
      flight_->complete_error(job.flight, ms, "deadline expired in queue");
    if (job.own_trace) tracer_->commit(job.trace);
    job.result.set_exception(std::make_exception_ptr(fault::StatusError(
        fault::ErrorCode::kDeadlineExceeded,
        "engine: deadline expired in queue")));
  }
}

void ServeEngine::reject_job_(Job&& job, fault::ErrorCode code,
                              const std::string& msg) {
  const Clock::time_point now = Clock::now();
  const double ms = ms_between(job.enqueued, now);
  if (job.slot)
    job.slot->stage.store(
        code == fault::ErrorCode::kCancelled ? "cancelled" : "deadline",
        std::memory_order_relaxed);
  errors_.bump(code);
  if (events_->enabled(obs::LogLevel::kWarn))
    events_->warn("engine", "request rejected: " + msg,
                  {{"request",
                    std::to_string(job.slot ? job.slot->id : std::uint64_t{0})},
                   {"code", fault::code_label(code)}});
  if (job.own_flight) flight_->complete_error(job.flight, ms, msg);
  if (job.own_trace) tracer_->commit(job.trace);
  job.result.set_exception(
      std::make_exception_ptr(fault::StatusError(code, msg)));
}

void ServeEngine::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  // The counter reads are consistent here: every increment happens under
  // mu_, which we hold across the predicate.
  idle_cv_.wait(lock, [this] {
    return ready_.empty() && in_flight_ == 0 &&
           m_.completed.value() + m_.failed.value() == m_.submitted.value();
  });
}

void ServeEngine::close_batch_windows() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++window_epoch_;
  }
  window_cv_.notify_all();
}

void ServeEngine::shutdown() {
  // Flush any open batch windows first: a stopping engine must not wait out
  // latency budgets for arrivals that can no longer come.
  close_batch_windows();
  drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();   // wake any producer blocked on backpressure
  window_cv_.notify_all();  // wake any worker parked in a batch window
  for (auto& t : workers_) t.join();
  workers_.clear();
  events_->info("engine", "engine stopped");
}

EngineStats ServeEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  EngineStats s;
  s.submitted = m_.submitted.value();
  s.completed = m_.completed.value();
  s.failed = m_.failed.value();
  s.shed = m_.shed.value();
  s.max_queued = max_queued_;
  s.batches = m_.batches.value();
  s.coalesced = m_.coalesced.value();
  s.stacked_batches = m_.stacked_batches.value();
  s.stacked_requests = m_.stacked_requests.value();
  s.fused_columns = m_.fused_columns.value();
  s.windows_opened = m_.windows_opened.value();
  s.window_timeouts = m_.window_timeouts.value();
  s.window_filled = m_.window_filled.value();
  s.window_forced = m_.window_forced.value();
  s.window_yielded = m_.window_yielded.value();
  s.open_windows = open_windows_;
  s.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - start_).count();
  s.busy_seconds = m_.busy_seconds.value();
  s.throughput_rps = s.elapsed_seconds > 0
                         ? static_cast<double>(s.completed) / s.elapsed_seconds
                         : 0;
  const obs::HistogramSnapshot lat = m_.latency_ms.snapshot();
  if (lat.count > 0) {
    s.latency_p50_ms = lat.percentile(50);
    s.latency_p95_ms = lat.percentile(95);
    s.latency_p99_ms = lat.percentile(99);
    s.latency_max_ms = lat.max;
  }
  if (registry_) s.registry = registry_->stats();
  s.errors = errors_.snapshot();
  return s;
}

std::size_t ServeEngine::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

std::size_t ServeEngine::open_windows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_windows_;
}

std::size_t ServeEngine::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

void ServeEngine::register_probes(obs::PeriodicSampler& sampler) {
  sampler.add_probe("cw_engine_queue_depth",
                    "Requests waiting in the engine queue",
                    [this] { return static_cast<double>(queue_depth()); });
  sampler.add_probe("cw_engine_open_windows",
                    "Batch windows currently held open",
                    [this] { return static_cast<double>(open_windows()); });
  sampler.add_probe("cw_engine_in_flight",
                    "Requests being computed right now",
                    [this] { return static_cast<double>(in_flight()); });
  if (registry_) registry_->register_probes(sampler);
}

std::vector<obs::InFlightRequest> ServeEngine::in_flight_requests() const {
  const Clock::time_point now = Clock::now();
  std::vector<obs::InFlightRequest> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(live_.size());
    for (const auto& [id, slot] : live_) {
      obs::InFlightRequest r;
      r.id = id;
      r.age_ms = ms_between(slot->enqueued, now);
      r.stage = slot->stage.load(std::memory_order_relaxed);
      r.shard = slot->shard;
      out.push_back(r);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const obs::InFlightRequest& a, const obs::InFlightRequest& b) {
              return a.id < b.id;
            });
  return out;
}

std::vector<double> ServeEngine::open_window_ages_ms() const {
  const Clock::time_point now = Clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<double> ages;
  ages.reserve(window_since_.size());
  for (const auto& [key, since] : window_since_)
    ages.push_back(ms_between(since, now));
  return ages;
}

void ServeEngine::register_watchdog(obs::Watchdog& watchdog) {
  obs::WatchdogTarget target;
  target.in_flight = [this] { return in_flight_requests(); };
  target.window_ages_ms = [this] { return open_window_ages_ms(); };
  target.progress = [this] {
    return m_.completed.value() + m_.failed.value();
  };
  target.window_budget_ms =
      std::chrono::duration<double, std::milli>(opt_.batch_window).count();
  watchdog.add_target("engine", std::move(target));
}

void ServeEngine::dump_diagnostics(std::ostream& os) const {
  // Each section snapshots under its own lock — a diagnostic dump must
  // never require a globally consistent instant (it is taken while the
  // engine may be wedged), only per-section consistency.
  std::size_t queued = 0, inflight = 0, windows = 0;
  std::uint64_t max_queued = 0;
  bool stopping = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queued = queued_;
    inflight = in_flight_;
    windows = open_windows_;
    max_queued = max_queued_;
    stopping = stopping_;
  }
  os << "{\n  \"kind\": \"serve-engine\",\n";
  os << "  \"queue\": {\"queued\": " << queued << ", \"in_flight\": "
     << inflight << ", \"open_windows\": " << windows << ", \"max_queued\": "
     << max_queued << ", \"stopping\": " << (stopping ? "true" : "false")
     << ", \"window_ages_ms\": [";
  {
    const std::vector<double> ages = open_window_ages_ms();
    for (std::size_t i = 0; i < ages.size(); ++i)
      os << (i == 0 ? "" : ", ") << ages[i];
  }
  os << "]},\n";
  os << "  \"in_flight\": [";
  {
    const std::vector<obs::InFlightRequest> table = in_flight_requests();
    for (std::size_t i = 0; i < table.size(); ++i) {
      const obs::InFlightRequest& r = table[i];
      os << (i == 0 ? "\n    " : ",\n    ");
      os << "{\"id\": " << r.id << ", \"age_ms\": " << r.age_ms
         << ", \"stage\": \"" << obs::json_escape(r.stage)
         << "\", \"shard\": " << r.shard << "}";
    }
    os << (table.empty() ? "]" : "\n  ]");
  }
  os << ",\n";
  os << "  \"flight\": ";
  if (flight_ == nullptr) {
    os << "null";
  } else {
    os << "{\"completed\": " << flight_->completed() << ", \"kept\": "
       << flight_->kept() << ", \"overwritten\": " << flight_->overwritten()
       << ", \"slow_threshold_ms\": " << flight_->options().slow_threshold_ms
       << ", \"records\": [";
    const std::vector<obs::FlightRecord> records = flight_->records();
    for (std::size_t i = 0; i < records.size(); ++i) {
      const obs::FlightRecord& r = records[i];
      os << (i == 0 ? "\n    " : ",\n    ");
      os << "{\"request\": " << r.request_id << ", \"reason\": \""
         << obs::to_string(r.reason) << "\", \"latency_ms\": " << r.latency_ms
         << ", \"spans\": " << r.spans.size() << ", \"error\": \""
         << obs::json_escape(r.error) << "\"}";
    }
    os << (records.empty() ? "]}" : "\n  ]}");
  }
  os << ",\n";
  os << "  \"events\": ";
  events_->write_json_array(os, 64);
  os << ",\n";
  os << "  \"registry\": ";
  if (registry_ == nullptr)
    os << "null";
  else
    registry_->write_residency_json(os);
  os << ",\n";
  os << "  \"metrics\": ";
  obs::write_json(os, *metrics_);
  os << "}\n";
}

std::string ServeEngine::dump_diagnostics() const {
  std::ostringstream os;
  dump_diagnostics(os);
  return os.str();
}

void ServeEngine::wait_batch_window_(std::unique_lock<std::mutex>& lock,
                                     Group& group) {
  const Clock::time_point opened = Clock::now();
  const Clock::time_point deadline = opened + opt_.batch_window;
  const std::uint64_t epoch = window_epoch_;
  ++open_windows_;
  window_since_[group.pipeline.get()] = opened;
  m_.windows_opened.inc();
  // The parked jobs are waiting on the window now, not on a worker.
  for (const Job& job : group.jobs)
    if (job.slot)
      job.slot->stage.store("window-park", std::memory_order_relaxed);
  bool forced = false;
  for (;;) {
    if (group.jobs.size() >= static_cast<std::size_t>(opt_.max_batch)) {
      m_.window_filled.inc();  // max_batch cutoff: no point waiting further
      break;
    }
    if (stopping_ || window_epoch_ != epoch) {
      m_.window_forced.inc();  // close_batch_windows() hook or shutdown
      forced = true;
      break;
    }
    if (opt_.max_queue_depth > 0 && queued_ >= opt_.max_queue_depth) {
      // Backpressure has the queue at the cap: every submit() is parked on
      // space_cv_ and every try_submit() sheds, so no arrival can join this
      // window — waiting out the budget would be pure dead time.
      m_.window_forced.inc();
      forced = true;
      break;
    }
    if (!ready_.empty() && idle_workers_ == 0) {
      // Another pipeline's requests are waiting and every other worker is
      // parked (in a window) or busy: holding this window open would tax a
      // different group's latency, which the budget never licenses. Flush
      // now and let this worker serve the ready queue.
      m_.window_yielded.inc();
      break;
    }
    if (window_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      // An arrival can race the deadline: classify the close by what the
      // window actually gathered, not by which wakeup came last.
      if (group.jobs.size() >= static_cast<std::size_t>(opt_.max_batch))
        m_.window_filled.inc();
      else
        m_.window_timeouts.inc();
      break;
    }
  }
  --open_windows_;
  window_since_.erase(group.pipeline.get());
  if (forced && events_->enabled(obs::LogLevel::kInfo))
    events_->info("engine", "batch window force-closed",
                  {{"gathered", std::to_string(group.jobs.size())},
                   {"open_ms", std::to_string(static_cast<std::int64_t>(
                                   ms_between(opened, Clock::now())))}});
}

void ServeEngine::worker_loop_() {
  // The nthreads ICV is per OS thread, so capping it here budgets every
  // batch this worker will ever run without touching the other workers or
  // the caller's threads.
  set_num_threads(opt_.omp_threads_per_worker);
  for (;;) {
    std::shared_ptr<const Pipeline> pipeline;
    std::vector<Job> batch;
    bool windowed = false;
    Clock::time_point window_begin{}, window_end{};
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++idle_workers_;
      work_cv_.wait(lock, [this] { return stopping_ || !ready_.empty(); });
      --idle_workers_;
      if (ready_.empty()) return;  // stopping, queue fully drained
      const Pipeline* key = ready_.front();
      ready_.pop_front();
      Group& group = groups_.at(key);
      pipeline = group.pipeline;
      // Second-level scheduler: an under-filled pickup holds the group's
      // batch window open, trading up to batch_window of latency for more
      // same-A arrivals to stack. The group is out of ready_ the whole time,
      // so this worker owns it; unordered_map references are node-stable, so
      // `group` survives other groups' insertions while the lock is dropped.
      if (opt_.batch_window.count() > 0 && !stopping_ &&
          group.jobs.size() < static_cast<std::size_t>(opt_.max_batch)) {
        window_begin = Clock::now();
        wait_batch_window_(lock, group);
        window_end = Clock::now();
        windowed = true;
      }
      const auto take = std::min<std::size_t>(
          group.jobs.size(), static_cast<std::size_t>(opt_.max_batch));
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(group.jobs.front()));
        group.jobs.pop_front();
      }
      if (!group.jobs.empty()) {
        ready_.push_back(key);  // round-robin re-queue
        // Leftovers exist only when arrivals outran max_batch — and if they
        // landed during this worker's batch window, their enqueue-time
        // notifications were consumed by idle workers that found ready_
        // empty (the group was window-owned). Re-signal, or an idle worker
        // sleeps through the re-queued work.
        work_cv_.notify_one();
      } else {
        // Drop the empty group so the map does not accumulate one slot per
        // pipeline ever served (we hold our own shared_ptr for the batch).
        groups_.erase(key);
      }
      queued_ -= batch.size();
      in_flight_ += batch.size();
      // This pickup may have consumed the last idle worker while groups
      // remain in ready_ (several arrivals raced one idle worker, or the
      // round-robin re-queue above left work behind): parked windows must
      // re-check their yield condition now, not at an arrival that may
      // never come.
      if (open_windows_ > 0 && !ready_.empty() && idle_workers_ == 0)
        window_cv_.notify_all();
    }
    if (opt_.max_queue_depth > 0) space_cv_.notify_all();

    // TEST HOOK: one-shot artificial stall of the first pickup, visible to
    // the watchdog as a request stuck in "multiply" (see debug_stall_first).
    if (opt_.debug_stall_first.count() > 0 && !batch.empty() &&
        stall_armed_.exchange(false, std::memory_order_relaxed)) {
      if (batch[0].slot)
        batch[0].slot->stage.store("multiply", std::memory_order_relaxed);
      std::this_thread::sleep_for(opt_.debug_stall_first);
    }

    const Clock::time_point batch_start = Clock::now();
    // Stage spans land in the stride-sampled trace AND the flight-recorder
    // context — same intervals, independent keep decisions.
    const auto stamp = [](const Job& job, const char* name,
                          Clock::time_point begin, Clock::time_point end,
                          const char* tag, std::int64_t arg) {
      if (job.trace) job.trace->add(name, begin, end, tag, arg);
      if (job.flight) job.flight->add(name, begin, end, tag, arg);
    };
    // Scheduler-stage spans for the instrumented jobs of this pickup
    // (outside mu_; the contexts carry their own locks). A job that arrived
    // while the window was already open spent no time "waiting in queue"
    // before it — clamp so spans never run backwards.
    for (const Job& job : batch) {
      if (!job.trace && !job.flight) continue;
      const bool sub = job.trace_shard >= 0;
      const char* tag = sub ? "shard" : nullptr;
      if (windowed) {
        const Clock::time_point qend = std::max(job.enqueued, window_begin);
        stamp(job, "queue-wait", job.enqueued, qend, tag, job.trace_shard);
        stamp(job, "window-park", std::max(job.enqueued, window_begin),
              window_end, tag, job.trace_shard);
      } else {
        stamp(job, "queue-wait", job.enqueued, batch_start, tag,
              job.trace_shard);
      }
    }
    struct Outcome {
      std::optional<Csr> value;
      std::exception_ptr error;
    };
    std::uint64_t ok = 0, bad = 0;
    std::vector<Outcome> outcomes(batch.size());
    std::vector<double> done_ms(batch.size(), 0.0);

    // Deadline gate at pickup: a request whose budget expired while queued
    // or window-parked resolves its typed error now and never reaches a
    // kernel. (Queue-resident expiry is also reaped by deadline-aware
    // shedding; this catches window-parked jobs and uncapped queues.)
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].deadline > batch_start) continue;
      outcomes[i].error = std::make_exception_ptr(fault::StatusError(
          fault::ErrorCode::kDeadlineExceeded,
          "engine: deadline expired before multiply"));
      ++bad;
      done_ms[i] = ms_between(batch[i].enqueued, batch_start);
      if (batch[i].slot)
        batch[i].slot->stage.store("deadline", std::memory_order_relaxed);
      stamp(batch[i], "deadline", batch_start, batch_start,
            batch[i].trace_shard >= 0 ? "shard" : nullptr,
            batch[i].trace_shard);
    }

    // Fused stacked multiply: column-stack every compatible B (right row
    // count, within the stacked-column cap) into one panel and run a single
    // kernel launch for all of them — bit-identical per slice to the
    // per-request path. Incompatible or oversized requests simply stay
    // unfulfilled here and take the per-request loop below (where a wrong
    // row count surfaces as that request's own error, exactly as before).
    std::uint64_t stacked_batches = 0, stacked_requests = 0, fused_cols = 0;
    if (opt_.batch_window.count() > 0 && batch.size() >= 2) {
      const index_t want_rows = pipeline->matrix().ncols();
      std::vector<std::size_t> stackable;
      std::int64_t total_cols = 0;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (outcomes[i].error) continue;  // expired at pickup
        const Csr& b = *batch[i].b;
        if (b.nrows() != want_rows) continue;
        if (opt_.max_stacked_cols > 0 &&
            total_cols + b.ncols() > opt_.max_stacked_cols)
          continue;
        stackable.push_back(i);
        total_cols += b.ncols();
      }
      if (stackable.size() >= 2) {
        std::vector<const Csr*> bs;
        bs.reserve(stackable.size());
        for (const std::size_t i : stackable) bs.push_back(batch[i].b.get());
        for (const std::size_t i : stackable)
          if (batch[i].slot)
            batch[i].slot->stage.store("multiply", std::memory_order_relaxed);
        const Clock::time_point mul_begin = Clock::now();
        try {
          fault::inject(batch[stackable[0]].trace_shard >= 0
                            ? "shard.multiply_k"
                            : "engine.multiply",
                        fault::ErrorCode::kInternal);
          std::vector<Csr> products = pipeline->multiply_stacked(bs);
          const Clock::time_point mul_end = Clock::now();
          for (const std::size_t i : stackable)
            if (batch[i].slot)
              batch[i].slot->stage.store("unpermute",
                                         std::memory_order_relaxed);
          // Unpermuting the slice == slicing the unpermuted panel: row
          // permutations commute with column selection, so this matches the
          // per-request path bit for bit. Finish every slice before
          // committing any outcome, so a mid-loop throw leaves the whole
          // fused attempt unfulfilled and the fallback below serves it.
          if (opt_.unpermute_results)
            for (Csr& c : products) c = pipeline->unpermute_rows(c);
          for (std::size_t j = 0; j < stackable.size(); ++j) {
            outcomes[stackable[j]].value = std::move(products[j]);
            ++ok;
          }
          const Clock::time_point fused_done = Clock::now();
          for (const std::size_t i : stackable) {
            done_ms[i] = ms_between(batch[i].enqueued, fused_done);
            if (!batch[i].trace && !batch[i].flight) continue;
            // Every stacked request shares the batch's fuse/multiply
            // interval — that sharing IS what the timeline should show. The
            // fuse span covers stackable selection (panel assembly happens
            // inside the multiply). Sub-requests tag their shard; whole
            // requests tag the panel width.
            const bool sub = batch[i].trace_shard >= 0;
            const char* tag = sub ? "shard" : "cols";
            const std::int64_t arg = sub ? batch[i].trace_shard : total_cols;
            stamp(batch[i], "fuse", batch_start, mul_begin, tag, arg);
            stamp(batch[i], "multiply", mul_begin, mul_end, tag, arg);
            if (opt_.unpermute_results)
              stamp(batch[i], "unpermute", mul_end, fused_done, tag, arg);
          }
          stacked_batches = 1;
          stacked_requests = stackable.size();
          fused_cols = static_cast<std::uint64_t>(total_cols);
        } catch (...) {
          // Fused path failed as a whole (e.g. panel allocation): fall back
          // to per-request multiplies so one request's cost cannot take the
          // others down with it.
        }
      }
    }

    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (outcomes[i].value.has_value() || outcomes[i].error)
        continue;  // fulfilled by the panel / expired at pickup
      const bool timed = batch[i].trace != nullptr ||
                         batch[i].flight != nullptr;
      // Re-check between batch-mates' multiplies: an earlier request's long
      // kernel may have consumed this one's whole budget, and an expired
      // request must not spend a kernel launch.
      const Clock::time_point pre = Clock::now();
      if (batch[i].deadline <= pre) {
        outcomes[i].error = std::make_exception_ptr(fault::StatusError(
            fault::ErrorCode::kDeadlineExceeded,
            "engine: deadline expired before multiply"));
        ++bad;
        done_ms[i] = ms_between(batch[i].enqueued, pre);
        if (batch[i].slot)
          batch[i].slot->stage.store("deadline", std::memory_order_relaxed);
        stamp(batch[i], "deadline", pre, pre,
              batch[i].trace_shard >= 0 ? "shard" : nullptr,
              batch[i].trace_shard);
        continue;
      }
      if (batch[i].slot)
        batch[i].slot->stage.store("multiply", std::memory_order_relaxed);
      const Clock::time_point mul_begin =
          timed ? Clock::now() : Clock::time_point{};
      Clock::time_point mul_end{};
      try {
        fault::inject(batch[i].trace_shard >= 0 ? "shard.multiply_k"
                                                : "engine.multiply",
                      fault::ErrorCode::kInternal);
        Csr c = pipeline->multiply(*batch[i].b);
        if (timed) mul_end = Clock::now();
        if (batch[i].slot)
          batch[i].slot->stage.store("unpermute", std::memory_order_relaxed);
        if (opt_.unpermute_results) c = pipeline->unpermute_rows(c);
        outcomes[i].value = std::move(c);
        ++ok;
      } catch (...) {
        outcomes[i].error = std::current_exception();
        ++bad;
      }
      const Clock::time_point done = Clock::now();
      done_ms[i] = ms_between(batch[i].enqueued, done);
      if (timed) {
        const bool sub = batch[i].trace_shard >= 0;
        const char* tag = sub ? "shard" : nullptr;
        if (outcomes[i].error) {
          // The failed multiply's span runs to the throw.
          stamp(batch[i], "multiply", mul_begin, done, tag,
                batch[i].trace_shard);
        } else {
          stamp(batch[i], "multiply", mul_begin, mul_end, tag,
                batch[i].trace_shard);
          if (opt_.unpermute_results)
            stamp(batch[i], "unpermute", mul_end, done, tag,
                  batch[i].trace_shard);
        }
      }
    }
    const double busy =
        std::chrono::duration<double>(Clock::now() - batch_start).count();

    // Commit the counters BEFORE fulfilling the promises: a client that has
    // seen its future resolve must also see itself in stats(). The counters
    // are atomics, but incrementing them under mu_ keeps the historical
    // consistency contract (completed + failed never exceeds submitted from
    // any observer's point of view).
    // Flight-recorder verdicts and trace commits come FIRST — before the
    // in_flight_ decrement and before the promises resolve — so that both
    // "drain() returned" and "future.get() returned" imply the kept
    // timeline (and any failure event) is already in the ring. Scatter
    // sub-requests leave the verdict and the commit to the sharded engine.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const Job& job = batch[i];
      if (outcomes[i].error && events_->enabled(obs::LogLevel::kError)) {
        events_->error(
            "engine", "request failed: " + describe_error(outcomes[i].error),
            {{"request",
              std::to_string(job.slot ? job.slot->id : std::uint64_t{0})},
             {"code",
              fault::code_label(fault::code_of(outcomes[i].error))}});
      }
      if (!job.own_flight) continue;
      if (outcomes[i].error)
        flight_->complete_error(job.flight, done_ms[i],
                                describe_error(outcomes[i].error));
      else
        flight_->complete(job.flight, done_ms[i]);
    }
    for (const Job& job : batch)
      if (job.own_trace) tracer_->commit(job.trace);
    bool idle = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      m_.completed.inc(ok);
      m_.failed.inc(bad);
      for (const Outcome& o : outcomes)
        if (o.error) errors_.bump(fault::code_of(o.error));
      m_.batches.inc();
      if (batch.size() > 1) m_.coalesced.inc(batch.size());
      if (stacked_batches > 0) {
        m_.stacked_batches.inc(stacked_batches);
        m_.stacked_requests.inc(stacked_requests);
        m_.fused_columns.inc(fused_cols);
      }
      m_.busy_seconds.add(busy);
      m_.batch_size.record(static_cast<double>(batch.size()));
      for (const double ms : done_ms) m_.latency_ms.record(ms);
      in_flight_ -= batch.size();
      for (const Job& job : batch)
        if (job.slot) live_.erase(job.slot->id);
      idle = ready_.empty() && in_flight_ == 0;
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (outcomes[i].error)
        batch[i].result.set_exception(outcomes[i].error);
      else
        batch[i].result.set_value(std::move(*outcomes[i].value));
    }
    if (idle) idle_cv_.notify_all();
  }
}

}  // namespace cw::serve
