#include "serve/engine.hpp"

#include <algorithm>
#include <optional>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"

namespace cw::serve {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count() * 1e3;
}

}  // namespace

ServeEngine::ServeEngine(EngineOptions opt)
    : opt_(opt), start_(Clock::now()), latencies_(opt.latency_window) {
  CW_CHECK_MSG(opt_.num_workers >= 1, "engine: need at least one worker");
  CW_CHECK_MSG(opt_.max_batch >= 1, "engine: max_batch must be >= 1");
  workers_.reserve(static_cast<std::size_t>(opt_.num_workers));
  for (int w = 0; w < opt_.num_workers; ++w)
    workers_.emplace_back([this] { worker_loop_(); });
}

ServeEngine::~ServeEngine() { shutdown(); }

std::future<Csr> ServeEngine::submit(std::shared_ptr<const Pipeline> pipeline,
                                     Csr b) {
  return submit(std::move(pipeline),
                std::make_shared<const Csr>(std::move(b)));
}

std::future<Csr> ServeEngine::submit(std::shared_ptr<const Pipeline> pipeline,
                                     std::shared_ptr<const Csr> b) {
  auto result = enqueue_(std::move(pipeline), std::move(b), /*block=*/true);
  CW_CHECK_MSG(result.has_value(), "engine: blocking submit cannot shed");
  return std::move(*result);
}

std::optional<std::future<Csr>> ServeEngine::try_submit(
    std::shared_ptr<const Pipeline> pipeline, Csr b) {
  return try_submit(std::move(pipeline),
                    std::make_shared<const Csr>(std::move(b)));
}

std::optional<std::future<Csr>> ServeEngine::try_submit(
    std::shared_ptr<const Pipeline> pipeline, std::shared_ptr<const Csr> b) {
  return enqueue_(std::move(pipeline), std::move(b), /*block=*/false);
}

std::optional<std::future<Csr>> ServeEngine::enqueue_(
    std::shared_ptr<const Pipeline> pipeline, std::shared_ptr<const Csr> b,
    bool block) {
  CW_CHECK_MSG(pipeline != nullptr, "engine: null pipeline handle");
  CW_CHECK_MSG(b != nullptr, "engine: null request payload");
  Job job;
  job.b = std::move(b);
  job.enqueued = Clock::now();
  std::future<Csr> result = job.result.get_future();

  {
    std::unique_lock<std::mutex> lock(mu_);
    CW_CHECK_MSG(!stopping_, "engine: submit after shutdown");
    if (opt_.max_queue_depth > 0 && queued_ >= opt_.max_queue_depth) {
      if (!block) {
        ++shed_;
        return std::nullopt;
      }
      // Backpressure: park the caller until a worker drains the queue below
      // the cap. shutdown() notifies too, so a blocked producer fails fast
      // instead of deadlocking a stopping engine.
      space_cv_.wait(lock, [this] {
        return stopping_ || queued_ < opt_.max_queue_depth;
      });
      CW_CHECK_MSG(!stopping_, "engine: submit after shutdown");
    }
    const Pipeline* key = pipeline.get();
    Group& group = groups_[key];
    if (!group.pipeline) group.pipeline = std::move(pipeline);
    // A group enters the round-robin only when it transitions empty→pending;
    // a worker re-queues it after a pickup if jobs remain.
    if (group.jobs.empty()) ready_.push_back(key);
    group.jobs.push_back(std::move(job));
    ++submitted_;
    ++queued_;
    if (queued_ > max_queued_) max_queued_ = queued_;
  }
  work_cv_.notify_one();
  return result;
}

void ServeEngine::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    return ready_.empty() && in_flight_ == 0 &&
           completed_ + failed_ == submitted_;
  });
}

void ServeEngine::shutdown() {
  drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();  // wake any producer blocked on backpressure
  for (auto& t : workers_) t.join();
  workers_.clear();
}

EngineStats ServeEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  EngineStats s;
  s.submitted = submitted_;
  s.completed = completed_;
  s.failed = failed_;
  s.shed = shed_;
  s.max_queued = max_queued_;
  s.batches = batches_;
  s.coalesced = coalesced_;
  s.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - start_).count();
  s.busy_seconds = busy_seconds_;
  s.throughput_rps = s.elapsed_seconds > 0
                         ? static_cast<double>(s.completed) / s.elapsed_seconds
                         : 0;
  if (latencies_.count() > 0) {
    s.latency_p50_ms = latencies_.window_percentile(50);
    s.latency_p95_ms = latencies_.window_percentile(95);
    s.latency_p99_ms = latencies_.window_percentile(99);
    s.latency_max_ms = latencies_.max_ms();
  }
  return s;
}

void ServeEngine::worker_loop_() {
  // The nthreads ICV is per OS thread, so capping it here budgets every
  // batch this worker will ever run without touching the other workers or
  // the caller's threads.
  set_num_threads(opt_.omp_threads_per_worker);
  for (;;) {
    std::shared_ptr<const Pipeline> pipeline;
    std::vector<Job> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !ready_.empty(); });
      if (ready_.empty()) return;  // stopping, queue fully drained
      const Pipeline* key = ready_.front();
      ready_.pop_front();
      Group& group = groups_.at(key);
      pipeline = group.pipeline;
      const auto take = std::min<std::size_t>(
          group.jobs.size(), static_cast<std::size_t>(opt_.max_batch));
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(group.jobs.front()));
        group.jobs.pop_front();
      }
      if (!group.jobs.empty()) {
        ready_.push_back(key);  // round-robin re-queue
      } else {
        // Drop the empty group so the map does not accumulate one slot per
        // pipeline ever served (we hold our own shared_ptr for the batch).
        groups_.erase(key);
      }
      queued_ -= batch.size();
      in_flight_ += batch.size();
    }
    if (opt_.max_queue_depth > 0) space_cv_.notify_all();

    const Clock::time_point batch_start = Clock::now();
    struct Outcome {
      std::optional<Csr> value;
      std::exception_ptr error;
    };
    std::uint64_t ok = 0, bad = 0;
    std::vector<Outcome> outcomes(batch.size());
    std::vector<double> done_ms;
    done_ms.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      try {
        Csr c = pipeline->multiply(*batch[i].b);
        if (opt_.unpermute_results) c = pipeline->unpermute_rows(c);
        outcomes[i].value = std::move(c);
        ++ok;
      } catch (...) {
        outcomes[i].error = std::current_exception();
        ++bad;
      }
      done_ms.push_back(ms_between(batch[i].enqueued, Clock::now()));
    }
    const double busy =
        std::chrono::duration<double>(Clock::now() - batch_start).count();

    // Commit the counters BEFORE fulfilling the promises: a client that has
    // seen its future resolve must also see itself in stats().
    bool idle = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      completed_ += ok;
      failed_ += bad;
      ++batches_;
      if (batch.size() > 1) coalesced_ += batch.size();
      busy_seconds_ += busy;
      for (const double ms : done_ms) latencies_.record(ms);
      in_flight_ -= batch.size();
      idle = ready_.empty() && in_flight_ == 0;
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (outcomes[i].error)
        batch[i].result.set_exception(outcomes[i].error);
      else
        batch[i].result.set_value(std::move(*outcomes[i].value));
    }
    if (idle) idle_cv_.notify_all();
  }
}

}  // namespace cw::serve
