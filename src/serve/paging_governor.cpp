#include "serve/paging_governor.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/sampler.hpp"

namespace cw::serve {

PagingGovernor::Metrics::Metrics(obs::MetricsRegistry& m)
    : enforcements(m.counter("cw_governor_enforcements_total",
                             "Watermark checks that released residency")),
      released_bytes(m.counter("cw_governor_released_bytes_total",
                               "Cold mapped bytes released under pressure")),
      rewarms(m.counter("cw_governor_rewarms_total",
                        "Watched pipelines re-warmed after residency decay")),
      demand(m.counter("cw_governor_demand_total",
                       "Pipelines fed through the demand stream")),
      resident_bytes(m.gauge("cw_governor_resident_mapped_bytes",
                             "Registry resident mapped bytes at last "
                             "governor check")) {}

PagingGovernor::PagingGovernor(PipelineRegistry& registry,
                               io::ShardPrefetcher& prefetcher,
                               PagingGovernorOptions opt)
    : registry_(registry),
      prefetcher_(prefetcher),
      opt_(std::move(opt)),
      low_watermark_(opt_.low_watermark_bytes > 0
                         ? opt_.low_watermark_bytes
                         : opt_.high_watermark_bytes -
                               opt_.high_watermark_bytes / 8),
      metrics_(opt_.metrics ? opt_.metrics
                            : std::make_shared<obs::MetricsRegistry>()),
      m_(*metrics_) {}

std::vector<std::shared_ptr<io::ShardPrefetcher::Ticket>>
PagingGovernor::demand(
    const std::vector<std::shared_ptr<const Pipeline>>& pipelines) {
  // Release BEFORE streaming: enforcement with the demanded set held out
  // makes room for exactly the pages the prefetcher is about to pull in,
  // instead of letting them evict each other mid-flight.
  std::vector<const Pipeline*> keep;
  keep.reserve(pipelines.size());
  for (const auto& p : pipelines)
    if (p != nullptr) keep.push_back(p.get());
  enforce(keep);
  std::vector<std::shared_ptr<io::ShardPrefetcher::Ticket>> tickets;
  tickets.reserve(pipelines.size());
  for (const auto& p : pipelines) {
    m_.demand.inc();
    tickets.push_back(prefetcher_.enqueue(p));
  }
  return tickets;
}

std::size_t PagingGovernor::enforce(const std::vector<const Pipeline*>& keep) {
  if (opt_.high_watermark_bytes == 0) return 0;
  const std::size_t resident = registry_.resident_mapped_bytes();
  m_.resident_bytes.set(static_cast<double>(resident));
  if (resident <= opt_.high_watermark_bytes) return 0;
  // Queued demand is sacrosanct: the LRU tail the registry releases first
  // is, in a forward-scanning queue, the very pipeline a queued request is
  // about to touch — merge the standing holds into the keep set so no
  // enforcement path evicts pages between their prefetch and their use.
  std::vector<const Pipeline*> merged = keep;
  {
    std::lock_guard<std::mutex> lock(mu_);
    merged.reserve(merged.size() + held_.size());
    for (const auto& [p, hold] : held_) merged.push_back(p);
  }
  const std::size_t released =
      registry_.release_cold_residency(low_watermark_, merged);
  if (released > 0) {
    m_.enforcements.inc();
    m_.released_bytes.inc(released);
    if (opt_.events != nullptr && opt_.events->enabled(obs::LogLevel::kInfo))
      opt_.events->info(
          "governor", "released cold residency under pressure",
          {{"resident", std::to_string(resident)},
           {"high_watermark", std::to_string(opt_.high_watermark_bytes)},
           {"released", std::to_string(released)}});
  }
  return released;
}

void PagingGovernor::hold_demand(const std::shared_ptr<const Pipeline>& p) {
  if (p == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  Hold& hold = held_[p.get()];
  if (hold.refs == 0) hold.pipeline = p;
  ++hold.refs;
}

void PagingGovernor::release_demand(const Pipeline* p) {
  if (p == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = held_.find(p);
  if (it == held_.end()) return;
  if (--it->second.refs == 0) held_.erase(it);
}

void PagingGovernor::watch(std::shared_ptr<const Pipeline> p) {
  if (p == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& w : watched_)
    if (w.get() == p.get()) return;
  watched_.push_back(std::move(p));
}

void PagingGovernor::unwatch(const Pipeline* p) {
  std::lock_guard<std::mutex> lock(mu_);
  watched_.erase(std::remove_if(watched_.begin(), watched_.end(),
                                [p](const auto& w) { return w.get() == p; }),
                 watched_.end());
}

std::size_t PagingGovernor::rewarm_once() {
  std::vector<std::shared_ptr<const Pipeline>> watched;
  {
    std::lock_guard<std::mutex> lock(mu_);
    watched = watched_;
  }
  std::size_t rewarmed = 0;
  for (const auto& p : watched) {
    const PipelineResidency res = p->residency();
    if (res.mapped_bytes == 0) continue;
    if (static_cast<double>(res.resident_mapped_bytes) >=
        opt_.rewarm_fraction * static_cast<double>(res.mapped_bytes))
      continue;
    // Decayed below the watermark: the kernel reclaimed pages, or a
    // neighbouring release took them. Re-warm through the prefetcher so
    // the touch pass runs off the serving threads and under its budget.
    prefetcher_.enqueue(p);
    m_.rewarms.inc();
    ++rewarmed;
    if (opt_.events != nullptr && opt_.events->enabled(obs::LogLevel::kInfo))
      opt_.events->info(
          "governor", "re-warming pipeline below residency watermark",
          {{"resident", std::to_string(res.resident_mapped_bytes)},
           {"mapped", std::to_string(res.mapped_bytes)}});
  }
  return rewarmed;
}

PagingGovernorStats PagingGovernor::stats() const {
  PagingGovernorStats s;
  s.enforcements = m_.enforcements.value();
  s.released_bytes = m_.released_bytes.value();
  s.rewarms = m_.rewarms.value();
  s.demand = m_.demand.value();
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.held = held_.size();
  }
  return s;
}

void PagingGovernor::register_probes(obs::PeriodicSampler& sampler) {
  sampler.add_probe(
      "cw_governor_resident_mapped_bytes",
      "Registry resident mapped bytes at last governor check",
      [this] {
        // The sampler tick IS the governor's background loop: enforce the
        // watermarks, keep watched pipelines warm, report the level.
        enforce();
        rewarm_once();
        // Report the PRE-release level enforce() just read (one mincore
        // walk per tick, not three). This is also the prefetcher's pacing
        // signal: it must see the pressure the governor saw — publishing
        // the post-release level would tell the streams the coast is
        // clear at exactly the moment it never is, and they would run an
        // entire corpus ahead of the requests consuming them.
        return m_.resident_bytes.value();
      });
}

}  // namespace cw::serve
