// Concurrent multiply engine — the serving subsystem's compute frontend.
//
// A fixed pool of worker threads drains a queue of multiply requests
// `(prepared A, B)`. Requests are grouped by prepared matrix: a worker that
// picks up a group takes a *batch* of its pending requests and runs them
// back-to-back, so the clustered representation of A stays cache-resident
// across the whole batch (the same locality argument as cluster-wise SpGEMM
// itself, lifted to the request level). Groups are scheduled round-robin so
// one hot matrix cannot starve the others.
//
// A second-level scheduler batches *B* matrices too: when
// EngineOptions::batch_window is non-zero, a worker that picks up a group
// with fewer than max_batch pending requests holds a *batch window* open —
// waiting up to the window (a latency budget) for more same-A arrivals —
// then column-stacks the compatible Bs into one SpMM-shaped panel, runs one
// fused multiply (spgemm/stacked.hpp), and splits the product back into
// per-request futures. Stacked results are bit-identical to per-request
// multiplies; incompatible (wrong row count) or oversized (max_stacked_cols)
// requests fall back to the per-request path within the same pickup.
//
// Results are delivered through std::future; by default the engine
// unpermutes product rows back to the caller's original index space, so
// clients never see the preprocessing permutation. Latency (enqueue →
// completion) is recorded per request and summarized as percentiles via
// common/stats.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "core/pipeline.hpp"
#include "serve/registry.hpp"

namespace cw::serve {

struct EngineOptions {
  /// Worker threads draining the queue. Each runs whole multiplies; the
  /// kernels' own OpenMP parallelism composes with this (set OMP threads
  /// low when workers are many).
  int num_workers = 4;
  /// Max requests coalesced into one batch per group pickup.
  index_t max_batch = 16;
  /// Per-batch OpenMP thread cap for the kernels a worker runs: each worker
  /// thread's parallel regions are limited to this many threads, so
  /// num_workers × wide kernels cannot oversubscribe the machine. 0 =
  /// inherit the global OpenMP setting (the pre-budgeting behaviour).
  int omp_threads_per_worker = 0;
  /// Return products with rows in the original (pre-reordering) index space.
  bool unpermute_results = true;
  /// Latency budget for second-level request batching. 0 = disabled (today's
  /// behaviour: every pickup runs per-request multiplies immediately). When
  /// non-zero, a worker whose pickup finds fewer than max_batch pending
  /// requests keeps the group's window open for up to this long, waiting for
  /// more same-A arrivals; the window closes early when max_batch requests
  /// have gathered. Everything batched inside one window is column-stacked
  /// into a single fused multiply, so the knob trades per-request latency
  /// (at most one window) for kernel-launch amortization under concurrency.
  std::chrono::microseconds batch_window{0};
  /// Cap on a fused panel's total stacked columns (and on any single
  /// request's columns to be stacked at all). 0 = unlimited. Requests beyond
  /// the cap run on the per-request path of the same pickup.
  index_t max_stacked_cols = 0;
  /// Backpressure: max requests waiting in the queue (not yet picked up by a
  /// worker). 0 = unbounded (trusted callers only). When full, submit()
  /// BLOCKS the caller until a worker drains below the cap, and try_submit()
  /// refuses immediately — pick per client class: block batch producers,
  /// shed interactive traffic.
  std::size_t max_queue_depth = 0;
  /// Latency samples retained for the percentile report (ring buffer over
  /// the most recent requests, so a long-lived engine stays O(1) memory).
  std::size_t latency_window = 4096;
  /// Embedded pipeline registry (the serving cache): capacity_bytes == 0
  /// (default) means no registry, today's behaviour. A non-zero capacity
  /// gives the engine a fingerprint-keyed cache with the configured
  /// admission policy and residency knobs (prefault_on_admit,
  /// mlock_budget_bytes, release_mapped_on_evict) — see serve/registry.hpp.
  RegistryOptions registry = {};
};

struct EngineStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;  // requests whose multiply threw
  /// try_submit() calls refused because the queue was at max_queue_depth.
  std::uint64_t shed = 0;
  /// High-water mark of requests waiting in the queue — never exceeds
  /// max_queue_depth when a cap is set.
  std::uint64_t max_queued = 0;
  std::uint64_t batches = 0;
  /// Requests that shared their batch with at least one other request —
  /// the coalescing win counter.
  std::uint64_t coalesced = 0;
  /// Fused column-stacked multiplies run (each replaced >= 2 kernel
  /// launches).
  std::uint64_t stacked_batches = 0;
  /// Requests fulfilled from a fused multiply — the stacking win counter.
  std::uint64_t stacked_requests = 0;
  /// Total stacked-panel columns across all fused multiplies.
  std::uint64_t fused_columns = 0;
  /// Batch windows opened (pickups that waited for more arrivals).
  std::uint64_t windows_opened = 0;
  /// Windows that closed on their latency-budget deadline.
  std::uint64_t window_timeouts = 0;
  /// Windows that closed early because max_batch requests gathered.
  std::uint64_t window_filled = 0;
  /// Windows force-closed (close_batch_windows() test hook, shutdown, or
  /// backpressure at the queue cap making further arrivals impossible).
  std::uint64_t window_forced = 0;
  /// Windows closed early to serve another pipeline's pending work when no
  /// idle worker was available to take it — one group's latency budget is
  /// never allowed to tax a different group's latency.
  std::uint64_t window_yielded = 0;
  /// Windows currently open (gauge, not a counter).
  std::uint64_t open_windows = 0;
  double elapsed_seconds = 0;  // since engine construction
  double busy_seconds = 0;     // summed worker compute time
  double throughput_rps = 0;   // completed / elapsed
  /// Percentiles over the most recent EngineOptions::latency_window
  /// requests; max is over the engine's whole lifetime.
  double latency_p50_ms = 0;
  double latency_p95_ms = 0;
  double latency_p99_ms = 0;
  double latency_max_ms = 0;
  /// Embedded registry counters (hit rate, admission rejects, residency
  /// bytes); all-zero when EngineOptions::registry is disabled.
  RegistryStats registry = {};
};

class ServeEngine {
 public:
  explicit ServeEngine(EngineOptions opt = {});
  ~ServeEngine();  // drains the queue, then joins the workers

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Enqueue C = A'×B against the prepared `pipeline`. B's rows are in the
  /// original index space (Pipeline::multiply permutes them internally).
  /// The future yields the product, or rethrows the multiply's exception.
  std::future<Csr> submit(std::shared_ptr<const Pipeline> pipeline, Csr b);

  /// Same, but B is shared: the scatter path (shard/engine.hpp) fans one B
  /// out to K per-shard requests without K copies.
  std::future<Csr> submit(std::shared_ptr<const Pipeline> pipeline,
                          std::shared_ptr<const Csr> b);

  /// Load-shedding submit: like submit(), but when the queue is at
  /// max_queue_depth it refuses instead of blocking. Returns the future on
  /// acceptance, std::nullopt when shed (counted in EngineStats::shed).
  /// Always accepts when no cap is configured.
  std::optional<std::future<Csr>> try_submit(
      std::shared_ptr<const Pipeline> pipeline, std::shared_ptr<const Csr> b);
  std::optional<std::future<Csr>> try_submit(
      std::shared_ptr<const Pipeline> pipeline, Csr b);

  /// Block until every submitted request has completed.
  void drain();

  /// Force every open batch window to flush with whatever it has gathered,
  /// without waiting out its latency budget. Deterministic-test hook (the
  /// batch-window suite drives the scheduler's wait/flush logic with this
  /// instead of real sleeps); harmless in production (a no-op when no window
  /// is open).
  void close_batch_windows();

  /// drain(), then stop and join the workers. Further submits throw.
  /// Idempotent; the destructor calls it.
  void shutdown();

  /// The embedded pipeline registry, or null when EngineOptions::registry
  /// left capacity_bytes at 0.
  [[nodiscard]] PipelineRegistry* registry() const { return registry_.get(); }

  /// Cache `p` in the embedded registry under `key` (admission, prefault
  /// and mlock applied per EngineOptions::registry) and return the cached
  /// handle — or `p` unchanged when the engine has no registry.
  std::shared_ptr<const Pipeline> admit(const Fingerprint& key,
                                        std::shared_ptr<const Pipeline> p);

  [[nodiscard]] EngineStats stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Job {
    std::shared_ptr<const Csr> b;
    std::promise<Csr> result;
    Clock::time_point enqueued;
  };
  // A group whose batch window a worker is holding open is owned by that
  // worker: it stays out of ready_ (jobs non-empty), and enqueue_ wakes all
  // parked windows (window_cv_, gated on open_windows_) so the owner can
  // re-check max_batch and other windows their yield/cap conditions.
  struct Group {
    std::shared_ptr<const Pipeline> pipeline;
    std::deque<Job> jobs;
  };

  void worker_loop_();

  /// Batch-window wait (mu_ held): parks until max_batch requests gathered,
  /// the latency budget expires, or the window is force-closed. Updates the
  /// window counters.
  void wait_batch_window_(std::unique_lock<std::mutex>& lock, Group& group);

  /// Shared enqueue body. `block` selects submit()'s blocking behaviour over
  /// try_submit()'s shedding; returns nullopt only when shedding.
  std::optional<std::future<Csr>> enqueue_(
      std::shared_ptr<const Pipeline> pipeline, std::shared_ptr<const Csr> b,
      bool block);

  const EngineOptions opt_;
  const Clock::time_point start_;
  const std::unique_ptr<PipelineRegistry> registry_;  // null = no registry

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // signalled when ready_ gains a group
  std::condition_variable idle_cv_;   // signalled when the engine goes idle
  std::condition_variable space_cv_;  // signalled when the queue drains
  std::condition_variable window_cv_;  // arrivals into / closes of open windows
  std::unordered_map<const Pipeline*, Group> groups_;
  std::deque<const Pipeline*> ready_;  // round-robin order; one slot per group
  std::size_t queued_ = 0;    // jobs waiting in groups_ (not yet picked up)
  std::size_t in_flight_ = 0;
  std::size_t open_windows_ = 0;
  std::size_t idle_workers_ = 0;  // workers parked on work_cv_ (not windows)
  std::uint64_t window_epoch_ = 0;  // bumped to force-close open windows
  bool stopping_ = false;

  // All guarded by mu_.
  std::uint64_t submitted_ = 0, completed_ = 0, failed_ = 0, shed_ = 0,
                max_queued_ = 0, batches_ = 0, coalesced_ = 0,
                stacked_batches_ = 0, stacked_requests_ = 0, fused_columns_ = 0,
                windows_opened_ = 0, window_timeouts_ = 0, window_filled_ = 0,
                window_forced_ = 0, window_yielded_ = 0;
  double busy_seconds_ = 0;
  LatencyRecorder latencies_;

  std::vector<std::thread> workers_;
};

}  // namespace cw::serve
