// Concurrent multiply engine — the serving subsystem's compute frontend.
//
// A fixed pool of worker threads drains a queue of multiply requests
// `(prepared A, B)`. Requests are grouped by prepared matrix: a worker that
// picks up a group takes a *batch* of its pending requests and runs them
// back-to-back, so the clustered representation of A stays cache-resident
// across the whole batch (the same locality argument as cluster-wise SpGEMM
// itself, lifted to the request level). Groups are scheduled round-robin so
// one hot matrix cannot starve the others.
//
// A second-level scheduler batches *B* matrices too: when
// EngineOptions::batch_window is non-zero, a worker that picks up a group
// with fewer than max_batch pending requests holds a *batch window* open —
// waiting up to the window (a latency budget) for more same-A arrivals —
// then column-stacks the compatible Bs into one SpMM-shaped panel, runs one
// fused multiply (spgemm/stacked.hpp), and splits the product back into
// per-request futures. Stacked results are bit-identical to per-request
// multiplies; incompatible (wrong row count) or oversized (max_stacked_cols)
// requests fall back to the per-request path within the same pickup.
//
// Results are delivered through std::future; by default the engine
// unpermutes product rows back to the caller's original index space, so
// clients never see the preprocessing permutation.
//
// Telemetry (src/obs): every counter the engine keeps is a registry-backed
// metric (cw_engine_* series), per-request latency goes into a log-bucketed
// histogram covering the FULL run (no sample-ring tail bias), and a
// configurable fraction of requests carry a TraceContext through their
// stages — queue-wait, window-park, fuse, multiply, unpermute — exported as
// Chrome trace_event JSON. EngineStats remains as a compatibility snapshot
// over the metrics.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/pipeline.hpp"
#include "fault/counters.hpp"
#include "fault/status.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "serve/registry.hpp"

namespace cw::serve {

/// Per-request submission controls, accepted by every submit overload (and
/// forwarded by the sharded scatter path). Default: no deadline.
struct SubmitOptions {
  /// Relative deadline, measured from submit time; <= 0 = none. Once it
  /// expires the request resolves fault::ErrorCode::kDeadlineExceeded
  /// WITHOUT running its multiply — enforced at queue pickup, at batch-
  /// window close, and between batch-mates' multiplies.
  std::chrono::microseconds deadline{0};
  /// Absolute deadline (steady clock); max() = none. When both are set the
  /// earlier wins. The scatter path (shard/engine.hpp) forwards the parent
  /// request's absolute deadline here so all K per-shard sub-requests race
  /// one shared clock instead of K restarted budgets.
  std::chrono::steady_clock::time_point deadline_at =
      std::chrono::steady_clock::time_point::max();
};

struct EngineOptions {
  /// Worker threads draining the queue. Each runs whole multiplies; the
  /// kernels' own OpenMP parallelism composes with this (set OMP threads
  /// low when workers are many).
  int num_workers = 4;
  /// Max requests coalesced into one batch per group pickup.
  index_t max_batch = 16;
  /// Per-batch OpenMP thread cap for the kernels a worker runs: each worker
  /// thread's parallel regions are limited to this many threads, so
  /// num_workers × wide kernels cannot oversubscribe the machine. 0 =
  /// inherit the global OpenMP setting (the pre-budgeting behaviour).
  int omp_threads_per_worker = 0;
  /// Return products with rows in the original (pre-reordering) index space.
  bool unpermute_results = true;
  /// Latency budget for second-level request batching. 0 = disabled (today's
  /// behaviour: every pickup runs per-request multiplies immediately). When
  /// non-zero, a worker whose pickup finds fewer than max_batch pending
  /// requests keeps the group's window open for up to this long, waiting for
  /// more same-A arrivals; the window closes early when max_batch requests
  /// have gathered. Everything batched inside one window is column-stacked
  /// into a single fused multiply, so the knob trades per-request latency
  /// (at most one window) for kernel-launch amortization under concurrency.
  std::chrono::microseconds batch_window{0};
  /// Cap on a fused panel's total stacked columns (and on any single
  /// request's columns to be stacked at all). 0 = unlimited. Requests beyond
  /// the cap run on the per-request path of the same pickup.
  index_t max_stacked_cols = 0;
  /// Backpressure: max requests waiting in the queue (not yet picked up by a
  /// worker). 0 = unbounded (trusted callers only). When full, submit()
  /// BLOCKS the caller until a worker drains below the cap, and try_submit()
  /// refuses immediately — pick per client class: block batch producers,
  /// shed interactive traffic.
  std::size_t max_queue_depth = 0;
  /// Metrics registry backing the cw_engine_* series. Forwarded to the
  /// embedded pipeline registry too (unless registry.metrics is set), so one
  /// scrape covers engine + cache + residency. Null = the engine creates a
  /// private registry, reachable via metrics().
  std::shared_ptr<obs::MetricsRegistry> metrics;
  /// Fraction of requests whose stage timeline is traced (see obs/trace.hpp);
  /// 0 = off (an untraced submit costs one null check). Ignored when `trace`
  /// is supplied — the collector's own rate governs then.
  double trace_sample_rate = 0;
  /// Trace collector for sampled requests. Null with a non-zero sample rate =
  /// the engine creates its own, reachable via tracer().
  std::shared_ptr<obs::TraceCollector> trace;
  /// Structured event log for the engine's discrete happenings — sheds,
  /// window force-closes, failed multiplies, start/stop (obs/log.hpp).
  /// Forwarded to the embedded registry (unless registry.events is set) so
  /// evictions and admission rejects land in the same timeline. Null = the
  /// engine creates a private log, reachable via events().
  std::shared_ptr<obs::EventLog> events;
  /// Flight recorder for tail-sampled slow/error/shed request capture
  /// (obs/flight.hpp). Null with flight_slow_threshold_ms == 0 = off (a
  /// request then pays only the trace-sampling null check).
  std::shared_ptr<obs::FlightRecorder> flight;
  /// Convenience: > 0 with `flight` null makes the engine create its own
  /// recorder with this slow threshold, reachable via flight().
  double flight_slow_threshold_ms = 0;
  /// TEST HOOK — when non-zero, the first request a worker picks up stalls
  /// for this long in stage "multiply" before computing. Drives the
  /// watchdog/dump CI smoke and the forensics tests; never set in
  /// production.
  std::chrono::milliseconds debug_stall_first{0};
  /// Embedded pipeline registry (the serving cache): capacity_bytes == 0
  /// (default) means no registry, today's behaviour. A non-zero capacity
  /// gives the engine a fingerprint-keyed cache with the configured
  /// admission policy and residency knobs (prefault_on_admit,
  /// mlock_budget_bytes, release_mapped_on_evict) — see serve/registry.hpp.
  RegistryOptions registry = {};
};

/// Point-in-time view of the engine's telemetry. Since PR 6 this is a
/// compatibility snapshot assembled from the registry-backed cw_engine_*
/// metrics — exporters scrape those series directly without this struct.
struct EngineStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;  // requests whose multiply threw
  /// try_submit() calls refused because the queue was at max_queue_depth.
  std::uint64_t shed = 0;
  /// High-water mark of requests waiting in the queue — never exceeds
  /// max_queue_depth when a cap is set.
  std::uint64_t max_queued = 0;
  std::uint64_t batches = 0;
  /// Requests that shared their batch with at least one other request —
  /// the coalescing win counter.
  std::uint64_t coalesced = 0;
  /// Fused column-stacked multiplies run (each replaced >= 2 kernel
  /// launches).
  std::uint64_t stacked_batches = 0;
  /// Requests fulfilled from a fused multiply — the stacking win counter.
  std::uint64_t stacked_requests = 0;
  /// Total stacked-panel columns across all fused multiplies.
  std::uint64_t fused_columns = 0;
  /// Batch windows opened (pickups that waited for more arrivals).
  std::uint64_t windows_opened = 0;
  /// Windows that closed on their latency-budget deadline.
  std::uint64_t window_timeouts = 0;
  /// Windows that closed early because max_batch requests gathered.
  std::uint64_t window_filled = 0;
  /// Windows force-closed (close_batch_windows() test hook, shutdown, or
  /// backpressure at the queue cap making further arrivals impossible).
  std::uint64_t window_forced = 0;
  /// Windows closed early to serve another pipeline's pending work when no
  /// idle worker was available to take it — one group's latency budget is
  /// never allowed to tax a different group's latency.
  std::uint64_t window_yielded = 0;
  /// Windows currently open (gauge, not a counter).
  std::uint64_t open_windows = 0;
  double elapsed_seconds = 0;  // since engine construction
  double busy_seconds = 0;     // summed worker compute time
  double throughput_rps = 0;   // completed / elapsed
  /// Percentiles from the full-run log-bucketed histogram (exact to within
  /// one ~12.5%-wide bucket); max is the exact lifetime maximum.
  double latency_p50_ms = 0;
  double latency_p95_ms = 0;
  double latency_p99_ms = 0;
  double latency_max_ms = 0;
  /// Embedded registry counters (hit rate, admission rejects, residency
  /// bytes); all-zero when EngineOptions::registry is disabled.
  RegistryStats registry = {};
  /// Failures by fault-taxonomy code, indexed by fault::ErrorCode (the
  /// cw_errors_total{code=...} series; [kOk] stays 0). Deadline-cancelled
  /// and multiply-failed requests land in `failed` AND here; sheds land in
  /// `shed` and here under kShed.
  std::array<std::uint64_t, fault::kNumErrorCodes> errors{};
};

class ServeEngine {
 public:
  explicit ServeEngine(EngineOptions opt = {});
  ~ServeEngine();  // drains the queue, then joins the workers

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Enqueue C = A'×B against the prepared `pipeline`. B's rows are in the
  /// original index space (Pipeline::multiply permutes them internally).
  /// The future yields the product, or rethrows the multiply's exception —
  /// a fault::StatusError for every engine-originated failure (kCancelled
  /// after shutdown, kDeadlineExceeded past `opts` deadlines).
  std::future<Csr> submit(std::shared_ptr<const Pipeline> pipeline, Csr b,
                          const SubmitOptions& opts = {});

  /// Same, but B is shared: the scatter path (shard/engine.hpp) fans one B
  /// out to K per-shard requests without K copies.
  std::future<Csr> submit(std::shared_ptr<const Pipeline> pipeline,
                          std::shared_ptr<const Csr> b,
                          const SubmitOptions& opts = {});

  /// Load-shedding submit: like submit(), but when the queue is at
  /// max_queue_depth it refuses instead of blocking. Returns the future on
  /// acceptance, std::nullopt when shed (counted in EngineStats::shed).
  /// Always accepts when no cap is configured. Shedding is deadline-aware:
  /// at the cap, queued requests whose deadline already expired are
  /// cancelled first (they can never produce a product), and the arrival is
  /// accepted into the freed slot — the engine sheds the request that
  /// cannot make its deadline, not the newest arrival.
  std::optional<std::future<Csr>> try_submit(
      std::shared_ptr<const Pipeline> pipeline, std::shared_ptr<const Csr> b,
      const SubmitOptions& opts = {});
  std::optional<std::future<Csr>> try_submit(
      std::shared_ptr<const Pipeline> pipeline, Csr b,
      const SubmitOptions& opts = {});

  /// Scatter-path submit (shard/engine.hpp): like submit(), but this
  /// request's stage spans land in the caller-owned `trace` context tagged
  /// with `shard`, so K per-shard sub-multiplies appear inside the parent
  /// request's single timeline. The engine's own sampler is bypassed either
  /// way (a sharded request must yield one timeline, not K+1); a null
  /// `trace` behaves exactly like submit() with tracing off. The caller
  /// commits the context — the engine only writes spans into it. `flight`
  /// is the parent request's flight-recorder context, same contract: spans
  /// land there, the caller renders the keep/discard verdict (the engine's
  /// own recorder is bypassed so a sharded request yields one timeline).
  std::future<Csr> submit_traced(std::shared_ptr<const Pipeline> pipeline,
                                 std::shared_ptr<const Csr> b,
                                 std::shared_ptr<obs::TraceContext> trace,
                                 std::int64_t shard,
                                 std::shared_ptr<obs::TraceContext> flight =
                                     nullptr,
                                 const SubmitOptions& opts = {});

  /// Block until every submitted request has completed.
  void drain();

  /// Force every open batch window to flush with whatever it has gathered,
  /// without waiting out its latency budget. Deterministic-test hook (the
  /// batch-window suite drives the scheduler's wait/flush logic with this
  /// instead of real sleeps); harmless in production (a no-op when no window
  /// is open).
  void close_batch_windows();

  /// Force-close any open batch windows, drain(), then stop and join the
  /// workers. Further submits resolve their future with
  /// fault::ErrorCode::kCancelled instead of throwing (the submit/stop race
  /// is a normal shutdown condition, not a caller bug). Idempotent; the
  /// destructor calls it.
  void shutdown();

  /// The embedded pipeline registry, or null when EngineOptions::registry
  /// left capacity_bytes at 0.
  [[nodiscard]] PipelineRegistry* registry() const { return registry_.get(); }

  /// Cache `p` in the embedded registry under `key` (admission, prefault
  /// and mlock applied per EngineOptions::registry) and return the cached
  /// handle — or `p` unchanged when the engine has no registry.
  std::shared_ptr<const Pipeline> admit(const Fingerprint& key,
                                        std::shared_ptr<const Pipeline> p);

  [[nodiscard]] EngineStats stats() const;

  /// The metrics registry backing the cw_engine_* series (from
  /// EngineOptions::metrics, or the private one created in its absence).
  [[nodiscard]] const std::shared_ptr<obs::MetricsRegistry>& metrics() const {
    return metrics_;
  }

  /// The trace collector, or null when tracing is off.
  [[nodiscard]] const std::shared_ptr<obs::TraceCollector>& tracer() const {
    return tracer_;
  }

  /// Live levels for the background sampler (and anyone else): requests
  /// waiting in the queue, batch windows held open, requests being computed.
  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] std::size_t open_windows() const;
  [[nodiscard]] std::size_t in_flight() const;

  /// Register the engine's level probes (queue depth, open windows,
  /// in-flight) — and the embedded registry's, when one exists — with a
  /// background sampler. Stop the sampler before destroying the engine.
  void register_probes(obs::PeriodicSampler& sampler);

  /// The structured event log (from EngineOptions::events, or the private
  /// one created in its absence). Never null.
  [[nodiscard]] const std::shared_ptr<obs::EventLog>& events() const {
    return events_;
  }

  /// The flight recorder, or null when tail-sampled capture is off.
  [[nodiscard]] const std::shared_ptr<obs::FlightRecorder>& flight() const {
    return flight_;
  }

  /// Snapshot of every in-flight request (queued, window-parked, or being
  /// computed): id, age, current stage, shard tag. Sorted by id.
  [[nodiscard]] std::vector<obs::InFlightRequest> in_flight_requests() const;

  /// Ages (ms) of the batch windows currently held open.
  [[nodiscard]] std::vector<double> open_window_ages_ms() const;

  /// Register this engine as a watchdog target named "engine": in-flight
  /// table, open-window ages, completion progress, and the batch-window
  /// budget. Stop the watchdog before destroying the engine.
  void register_watchdog(obs::Watchdog& watchdog);

  /// One self-contained JSON diagnostic document: queue/window state, the
  /// in-flight table with per-request current stage, flight-recorder
  /// summary, recent events, registry residency report, and a full metrics
  /// snapshot. Safe to call from any thread at any time (the watchdog's
  /// dump hook calls it mid-stall).
  void dump_diagnostics(std::ostream& os) const;
  [[nodiscard]] std::string dump_diagnostics() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Job {
    std::shared_ptr<const Csr> b;
    std::promise<Csr> result;
    Clock::time_point enqueued;  // queue-enter; queue-wait span begin
    /// Absolute deadline (SubmitOptions resolved at submit); max() = none.
    Clock::time_point deadline = Clock::time_point::max();
    /// Null for the (common) untraced request. Engine-sampled contexts are
    /// committed by the completing worker (own_trace); scatter sub-requests
    /// carry the parent's context (committed by the sharded engine) plus
    /// their shard tag.
    std::shared_ptr<obs::TraceContext> trace;
    bool own_trace = false;
    std::int64_t trace_shard = -1;  // >= 0 tags scatter sub-request spans
    /// Flight-recorder context: non-null for EVERY request when the
    /// recorder is on (its keep/discard verdict comes at completion).
    /// own_flight mirrors own_trace: engine-owned contexts get their
    /// verdict here; scatter sub-requests write into the parent's context
    /// and leave the verdict to the sharded engine.
    std::shared_ptr<obs::TraceContext> flight;
    bool own_flight = false;
    /// Live watchdog bookkeeping: shared with live_ so whichever worker
    /// holds the request can update its stage lock-free.
    std::shared_ptr<obs::RequestSlot> slot;
  };
  // A group whose batch window a worker is holding open is owned by that
  // worker: it stays out of ready_ (jobs non-empty), and enqueue_ wakes all
  // parked windows (window_cv_, gated on open_windows_) so the owner can
  // re-check max_batch and other windows their yield/cap conditions.
  struct Group {
    std::shared_ptr<const Pipeline> pipeline;
    std::deque<Job> jobs;
  };

  void worker_loop_();

  /// Batch-window wait (mu_ held): parks until max_batch requests gathered,
  /// the latency budget expires, or the window is force-closed. Updates the
  /// window counters.
  void wait_batch_window_(std::unique_lock<std::mutex>& lock, Group& group);

  /// Shared enqueue body. `block` selects submit()'s blocking behaviour over
  /// try_submit()'s shedding; returns nullopt only when shedding. With
  /// `external_trace`, `trace`/`trace_shard` attach the caller's context
  /// (possibly null — then the request is simply untraced) instead of
  /// consulting the engine's sampler.
  std::optional<std::future<Csr>> enqueue_(
      std::shared_ptr<const Pipeline> pipeline, std::shared_ptr<const Csr> b,
      bool block, std::shared_ptr<obs::TraceContext> trace,
      std::int64_t trace_shard, bool external_trace,
      std::shared_ptr<obs::TraceContext> flight_ctx = nullptr,
      const SubmitOptions& opts = {});

  /// Reap every expired job still waiting in ready_ groups (mu_ held).
  /// Window-owned groups are left alone — their parked jobs are reaped by
  /// the owning worker at pickup, and erasing a window-owned Group would
  /// dangle the owner's reference. Victims move to `out` for resolution
  /// outside mu_; queued_ and the under-mu_ counters (failed, errors,
  /// latency, live_) are updated here. Returns how many were cancelled.
  std::size_t cancel_expired_locked_(Clock::time_point now,
                                     std::vector<Job>* out);

  /// Resolve queue-reaped victims outside mu_: spans, warn events, flight
  /// verdicts, trace commits, then the kDeadlineExceeded futures — the same
  /// verdicts-before-promises order as the worker's commit.
  void finish_deadline_cancelled_(std::vector<Job>& victims,
                                  Clock::time_point now);

  /// Resolve a never-enqueued job's future with a typed error (submit after
  /// shutdown → kCancelled; deadline already expired at submit →
  /// kDeadlineExceeded). The job was never counted submitted.
  void reject_job_(Job&& job, fault::ErrorCode code, const std::string& msg);

  /// The cw_engine_* instruments, interned once at construction so the
  /// serving paths never touch the metrics registry's lock again.
  struct Metrics {
    explicit Metrics(obs::MetricsRegistry& m);
    obs::Counter& submitted;
    obs::Counter& completed;
    obs::Counter& failed;
    obs::Counter& shed;
    obs::Counter& batches;
    obs::Counter& coalesced;
    obs::Counter& stacked_batches;
    obs::Counter& stacked_requests;
    obs::Counter& fused_columns;
    obs::Counter& windows_opened;
    obs::Counter& window_timeouts;
    obs::Counter& window_filled;
    obs::Counter& window_forced;
    obs::Counter& window_yielded;
    obs::Gauge& busy_seconds;
    obs::Histogram& latency_ms;
    obs::Histogram& batch_size;
  };

  const EngineOptions opt_;
  const Clock::time_point start_;
  const std::shared_ptr<obs::MetricsRegistry> metrics_;
  const std::shared_ptr<obs::EventLog> events_;  // never null
  const std::shared_ptr<obs::FlightRecorder> flight_;  // null = capture off
  const std::unique_ptr<PipelineRegistry> registry_;  // null = no registry
  const std::shared_ptr<obs::TraceCollector> tracer_;  // null = tracing off
  Metrics m_;  // binds into *metrics_: keep declared after it
  fault::ErrorCounters errors_;  // cw_errors_total{code=...}; binds into *metrics_ too

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // signalled when ready_ gains a group
  std::condition_variable idle_cv_;   // signalled when the engine goes idle
  std::condition_variable space_cv_;  // signalled when the queue drains
  std::condition_variable window_cv_;  // arrivals into / closes of open windows
  std::unordered_map<const Pipeline*, Group> groups_;
  std::deque<const Pipeline*> ready_;  // round-robin order; one slot per group
  std::size_t queued_ = 0;    // jobs waiting in groups_ (not yet picked up)
  std::size_t in_flight_ = 0;
  std::size_t open_windows_ = 0;
  std::size_t idle_workers_ = 0;  // workers parked on work_cv_ (not windows)
  std::uint64_t window_epoch_ = 0;  // bumped to force-close open windows
  bool stopping_ = false;

  // Guarded by mu_ (a read-modify-write level, not a monotone counter).
  std::uint64_t max_queued_ = 0;

  /// In-flight table: every accepted, not-yet-fulfilled request's slot,
  /// keyed by request id. The watchdog and dump_diagnostics() snapshot it.
  std::unordered_map<std::uint64_t, std::shared_ptr<obs::RequestSlot>> live_;
  /// Open batch windows' opening stamps, keyed by group (for window ages).
  std::unordered_map<const Pipeline*, Clock::time_point> window_since_;
  std::atomic<std::uint64_t> next_request_id_{0};
  /// debug_stall_first one-shot arming (test hook).
  std::atomic<bool> stall_armed_{false};

  std::vector<std::thread> workers_;
};

}  // namespace cw::serve
