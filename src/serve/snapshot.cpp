#include "serve/snapshot.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>

#include "common/error.hpp"

namespace cw::serve {

namespace {

constexpr char kMagic[8] = {'C', 'W', 'S', 'N', 'A', 'P', '\n', '\0'};
constexpr std::uint32_t kEndianTag = 0x01020304u;

// Section tags let a truncated/garbled payload fail with a named section
// instead of a silent misparse.
enum Section : std::uint32_t {
  kSecOptions = 0x4F505453,     // "OPTS"
  kSecStats = 0x53544154,       // "STAT"
  kSecMode = 0x4D4F4445,        // "MODE" (v2+)
  kSecOrder = 0x4F524452,       // "ORDR"
  kSecCsr = 0x43535220,         // "CSR "
  kSecClustering = 0x434C5553,  // "CLUS"
  kSecCsrCluster = 0x43434C55,  // "CCLU"
};

// --- payloads ---------------------------------------------------------------

void write_csr_payload(io::Writer& w, const Csr& a) {
  w.section(kSecCsr);
  w.pod<index_t>(a.nrows());
  w.pod<index_t>(a.ncols());
  w.vec(a.row_ptr());
  w.vec(a.col_idx());
  w.vec(a.values());
}

Csr read_csr_payload(io::Reader& r) {
  r.expect_section(kSecCsr, "CSR");
  const auto nrows = r.pod<index_t>();
  const auto ncols = r.pod<index_t>();
  auto row_ptr = r.vec<offset_t>();
  auto col_idx = r.vec<index_t>();
  auto values = r.vec<value_t>();
  // Fully validate the raw arrays BEFORE handing them to the Csr
  // constructor: in release builds the constructor trusts row_ptr when it
  // scans rows, so corrupted offsets must never reach it.
  if (nrows < 0 || ncols < 0 ||
      row_ptr.size() != static_cast<std::size_t>(nrows) + 1)
    throw Error("snapshot: inconsistent CSR dimensions");
  if (row_ptr.front() != 0 ||
      row_ptr.back() != static_cast<offset_t>(col_idx.size()) ||
      col_idx.size() != values.size())
    throw Error("snapshot: CSR array lengths do not match row pointers");
  for (std::size_t r2 = 0; r2 + 1 < row_ptr.size(); ++r2)
    if (row_ptr[r2] > row_ptr[r2 + 1])
      throw Error("snapshot: CSR row pointers are not non-decreasing");
  for (const index_t c : col_idx)
    if (c < 0 || c >= ncols)
      throw Error("snapshot: CSR column index out of range");
  Csr a(nrows, ncols, std::move(row_ptr), std::move(col_idx),
        std::move(values));
  a.validate();
  return a;
}

void write_clustering_payload(io::Writer& w, const Clustering& clustering) {
  w.section(kSecClustering);
  w.vec(clustering.ptr());
}

Clustering read_clustering_payload(io::Reader& r) {
  r.expect_section(kSecClustering, "CLUS");
  const auto ptr = r.vec<index_t>();
  if (ptr.empty() || ptr.front() != 0)
    throw Error("snapshot: malformed clustering pointer array");
  std::vector<index_t> sizes(ptr.size() - 1);
  for (std::size_t c = 0; c + 1 < ptr.size(); ++c) {
    if (ptr[c + 1] <= ptr[c])
      throw Error("snapshot: clustering pointers not strictly increasing");
    sizes[c] = ptr[c + 1] - ptr[c];
  }
  return Clustering::from_sizes(sizes);
}

void write_csr_cluster_payload(io::Writer& w, const CsrCluster& cc) {
  w.section(kSecCsrCluster);
  w.pod<index_t>(cc.nrows());
  w.pod<index_t>(cc.ncols());
  w.pod<offset_t>(cc.nnz());
  write_clustering_payload(w, cc.clustering());
  w.vec(cc.cluster_ptr());
  w.vec(cc.value_ptr());
  w.vec(cc.col_idx());
  w.vec(cc.row_mask());
  w.vec(cc.values());
}

CsrCluster read_csr_cluster_payload(io::Reader& r) {
  r.expect_section(kSecCsrCluster, "CCLU");
  const auto nrows = r.pod<index_t>();
  const auto ncols = r.pod<index_t>();
  const auto nnz = r.pod<offset_t>();
  Clustering clustering = read_clustering_payload(r);
  auto cluster_ptr = r.vec<offset_t>();
  auto value_ptr = r.vec<offset_t>();
  auto col_idx = r.vec<index_t>();
  auto row_mask = r.vec<std::uint64_t>();
  auto values = r.vec<value_t>();
  // from_parts runs CsrCluster::validate() on the result.
  return CsrCluster::from_parts(nrows, ncols, nnz, std::move(clustering),
                                std::move(cluster_ptr), std::move(value_ptr),
                                std::move(col_idx), std::move(row_mask),
                                std::move(values));
}

void write_options_payload(io::Writer& w, const PipelineOptions& o) {
  w.section(kSecOptions);
  w.pod<std::uint32_t>(static_cast<std::uint32_t>(o.reorder));
  w.pod<std::uint64_t>(o.reorder_opt.seed);
  w.pod<index_t>(o.reorder_opt.rows_per_part);
  w.pod<index_t>(o.reorder_opt.nd_leaf_size);
  w.pod<double>(o.reorder_opt.slashburn_hub_fraction);
  w.pod<index_t>(o.reorder_opt.gray_dense_threshold);
  w.pod<std::uint32_t>(static_cast<std::uint32_t>(o.scheme));
  w.pod<index_t>(o.fixed_length);
  w.pod<double>(o.variable_opt.jaccard_threshold);
  w.pod<index_t>(o.variable_opt.max_cluster_size);
  w.pod<double>(o.hierarchical_opt.jaccard_threshold);
  w.pod<index_t>(o.hierarchical_opt.max_cluster_size);
  w.pod<index_t>(o.hierarchical_opt.col_cap);
  w.pod<std::uint32_t>(static_cast<std::uint32_t>(o.accumulator));
}

PipelineOptions read_options_payload(io::Reader& r) {
  r.expect_section(kSecOptions, "OPTS");
  PipelineOptions o;
  const auto reorder = r.pod<std::uint32_t>();
  if (reorder > static_cast<std::uint32_t>(ReorderAlgo::kSlashBurn))
    throw Error("snapshot: unknown reorder algorithm id");
  o.reorder = static_cast<ReorderAlgo>(reorder);
  o.reorder_opt.seed = r.pod<std::uint64_t>();
  o.reorder_opt.rows_per_part = r.pod<index_t>();
  o.reorder_opt.nd_leaf_size = r.pod<index_t>();
  o.reorder_opt.slashburn_hub_fraction = r.pod<double>();
  o.reorder_opt.gray_dense_threshold = r.pod<index_t>();
  const auto scheme = r.pod<std::uint32_t>();
  if (scheme > static_cast<std::uint32_t>(ClusterScheme::kHierarchical))
    throw Error("snapshot: unknown cluster scheme id");
  o.scheme = static_cast<ClusterScheme>(scheme);
  o.fixed_length = r.pod<index_t>();
  o.variable_opt.jaccard_threshold = r.pod<double>();
  o.variable_opt.max_cluster_size = r.pod<index_t>();
  o.hierarchical_opt.jaccard_threshold = r.pod<double>();
  o.hierarchical_opt.max_cluster_size = r.pod<index_t>();
  o.hierarchical_opt.col_cap = r.pod<index_t>();
  const auto acc = r.pod<std::uint32_t>();
  if (acc > static_cast<std::uint32_t>(Accumulator::kSort))
    throw Error("snapshot: unknown accumulator id");
  o.accumulator = static_cast<Accumulator>(acc);
  return o;
}

void write_stats_payload(io::Writer& w, const PipelineStats& s) {
  w.section(kSecStats);
  w.pod<double>(s.reorder_seconds);
  w.pod<double>(s.cluster_seconds);
  w.pod<double>(s.format_seconds);
  w.pod<std::uint64_t>(s.csr_bytes);
  w.pod<std::uint64_t>(s.clustered_bytes);
  w.pod<index_t>(s.num_clusters);
}

PipelineStats read_stats_payload(io::Reader& r) {
  r.expect_section(kSecStats, "STAT");
  PipelineStats s;
  s.reorder_seconds = r.pod<double>();
  s.cluster_seconds = r.pod<double>();
  s.format_seconds = r.pod<double>();
  s.csr_bytes = static_cast<std::size_t>(r.pod<std::uint64_t>());
  s.clustered_bytes = static_cast<std::size_t>(r.pod<std::uint64_t>());
  s.num_clusters = r.pod<index_t>();
  return s;
}

}  // namespace

const char* to_string(SnapshotKind kind) {
  switch (kind) {
    case SnapshotKind::kCsr: return "csr";
    case SnapshotKind::kClustering: return "clustering";
    case SnapshotKind::kCsrCluster: return "csr-cluster";
    case SnapshotKind::kPipeline: return "pipeline";
    case SnapshotKind::kShardedPipeline: return "sharded-pipeline";
  }
  return "?";
}

SnapshotInfo read_info(std::istream& in) {
  // The header predates any Reader: it tells us which format version the
  // payload reader must speak. All reads here are raw (no digest).
  io::Reader raw(in, kMinSnapshotVersion);
  char magic[sizeof(kMagic)];
  raw.raw_bytes(magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw Error("snapshot: bad magic (not a CWSNAP file)");
  SnapshotInfo info;
  raw.raw_bytes(&info.version, sizeof(info.version));
  if (info.version < kMinSnapshotVersion || info.version > kSnapshotVersion)
    throw Error("snapshot: unsupported version " + std::to_string(info.version) +
                " (this build reads versions " +
                std::to_string(kMinSnapshotVersion) + ".." +
                std::to_string(kSnapshotVersion) + ")");
  std::uint32_t endian;
  raw.raw_bytes(&endian, sizeof(endian));
  if (endian != kEndianTag)
    throw Error("snapshot: written on a machine with different endianness");
  std::uint8_t widths[4];
  raw.raw_bytes(widths, sizeof(widths));  // index, offset, value, reserved
  if (widths[0] != sizeof(index_t) || widths[1] != sizeof(offset_t) ||
      widths[2] != sizeof(value_t))
    throw Error("snapshot: scalar type widths do not match this build");
  std::uint32_t kind;
  raw.raw_bytes(&kind, sizeof(kind));
  if (kind < static_cast<std::uint32_t>(SnapshotKind::kCsr) ||
      kind > static_cast<std::uint32_t>(SnapshotKind::kShardedPipeline))
    throw Error("snapshot: unknown payload kind");
  info.kind = static_cast<SnapshotKind>(kind);
  raw.raw_bytes(&info.nrows, sizeof(info.nrows));
  raw.raw_bytes(&info.ncols, sizeof(info.ncols));
  raw.raw_bytes(&info.nnz, sizeof(info.nnz));
  return info;
}

namespace detail {

void write_header(io::Writer& w, SnapshotKind kind, index_t nrows,
                  index_t ncols, offset_t nnz) {
  w.raw_bytes(kMagic, sizeof(kMagic));
  w.raw_pod<std::uint32_t>(kSnapshotVersion);
  w.raw_pod<std::uint32_t>(kEndianTag);
  w.raw_pod<std::uint8_t>(sizeof(index_t));
  w.raw_pod<std::uint8_t>(sizeof(offset_t));
  w.raw_pod<std::uint8_t>(sizeof(value_t));
  w.raw_pod<std::uint8_t>(0);  // reserved
  w.raw_pod<std::uint32_t>(static_cast<std::uint32_t>(kind));
  w.raw_pod<index_t>(nrows);
  w.raw_pod<index_t>(ncols);
  w.raw_pod<offset_t>(nnz);
}

void write_pipeline_payload(io::Writer& w, const Pipeline& pipeline) {
  write_options_payload(w, pipeline.options());
  write_stats_payload(w, pipeline.stats());
  w.section(kSecMode);
  w.pod<std::uint8_t>(static_cast<std::uint8_t>(pipeline.mode()));
  w.section(kSecOrder);
  w.vec(pipeline.order());
  write_csr_payload(w, pipeline.matrix());
  write_clustering_payload(w, pipeline.clustering());
  w.pod<std::uint8_t>(pipeline.clustered().has_value() ? 1 : 0);
  if (pipeline.clustered())
    write_csr_cluster_payload(w, *pipeline.clustered());
}

void write_pipeline_options(io::Writer& w, const PipelineOptions& options) {
  write_options_payload(w, options);
}

PipelineOptions read_pipeline_options(io::Reader& r) {
  return read_options_payload(r);
}

Pipeline read_pipeline_payload(io::Reader& r) {
  PipelineOptions opt = read_options_payload(r);
  PipelineStats stats = read_stats_payload(r);
  // Version 1 predates rows-only pipelines; its records are all symmetric.
  PermutationMode mode = PermutationMode::kSymmetric;
  if (r.version() >= 2) {
    r.expect_section(kSecMode, "MODE");
    const auto m = r.pod<std::uint8_t>();
    if (m > static_cast<std::uint8_t>(PermutationMode::kRowsOnly))
      throw Error("snapshot: unknown permutation mode");
    mode = static_cast<PermutationMode>(m);
  }
  r.expect_section(kSecOrder, "ORDR");
  auto order = r.vec<index_t>();
  Csr a = read_csr_payload(r);
  Clustering clustering = read_clustering_payload(r);
  const auto has_clustered = r.pod<std::uint8_t>();
  std::optional<CsrCluster> clustered;
  if (has_clustered) clustered = read_csr_cluster_payload(r);
  // restore() cross-checks order/clustering/clustered against the matrix.
  return Pipeline::restore(opt, std::move(a), std::move(order),
                           std::move(clustering), std::move(clustered), stats,
                           mode);
}

}  // namespace detail

namespace {

SnapshotInfo expect_header(std::istream& in, SnapshotKind want) {
  const SnapshotInfo info = read_info(in);
  if (info.kind != want)
    throw Error(std::string("snapshot: file holds a ") + to_string(info.kind) +
                ", expected a " + to_string(want));
  return info;
}

}  // namespace

// --- top-level save/load ----------------------------------------------------

void save(std::ostream& out, const Csr& a) {
  io::Writer w(out);
  detail::write_header(w, SnapshotKind::kCsr, a.nrows(), a.ncols(), a.nnz());
  write_csr_payload(w, a);
  w.checksum();
}

void save(std::ostream& out, const Clustering& clustering) {
  io::Writer w(out);
  detail::write_header(w, SnapshotKind::kClustering, clustering.nrows(), 0,
                       clustering.num_clusters());
  write_clustering_payload(w, clustering);
  w.checksum();
}

void save(std::ostream& out, const CsrCluster& clustered) {
  io::Writer w(out);
  detail::write_header(w, SnapshotKind::kCsrCluster, clustered.nrows(),
                       clustered.ncols(), clustered.nnz());
  write_csr_cluster_payload(w, clustered);
  w.checksum();
}

void save(std::ostream& out, const Pipeline& pipeline) {
  const Csr& a = pipeline.matrix();
  io::Writer w(out);
  detail::write_header(w, SnapshotKind::kPipeline, a.nrows(), a.ncols(),
                       a.nnz());
  detail::write_pipeline_payload(w, pipeline);
  w.checksum();
}

Csr load_csr(std::istream& in) {
  const SnapshotInfo info = expect_header(in, SnapshotKind::kCsr);
  io::Reader r(in, info.version);
  Csr a = read_csr_payload(r);
  r.checksum("CSR");
  return a;
}

Clustering load_clustering(std::istream& in) {
  const SnapshotInfo info = expect_header(in, SnapshotKind::kClustering);
  io::Reader r(in, info.version);
  Clustering c = read_clustering_payload(r);
  r.checksum("clustering");
  return c;
}

CsrCluster load_csr_cluster(std::istream& in) {
  const SnapshotInfo info = expect_header(in, SnapshotKind::kCsrCluster);
  io::Reader r(in, info.version);
  CsrCluster cc = read_csr_cluster_payload(r);
  r.checksum("csr-cluster");
  return cc;
}

Pipeline load_pipeline(std::istream& in) {
  const SnapshotInfo info = expect_header(in, SnapshotKind::kPipeline);
  io::Reader r(in, info.version);
  Pipeline p = detail::read_pipeline_payload(r);
  r.checksum("pipeline");
  return p;
}

// --- file wrappers ----------------------------------------------------------

namespace {

std::ofstream open_out(const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw Error("snapshot: cannot open " + path + " for writing");
  return f;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw Error("snapshot: cannot open " + path);
  return f;
}

}  // namespace

void save_csr_file(const std::string& path, const Csr& a) {
  auto f = open_out(path);
  save(f, a);
}

void save_pipeline_file(const std::string& path, const Pipeline& pipeline) {
  auto f = open_out(path);
  save(f, pipeline);
}

Csr load_csr_file(const std::string& path) {
  auto f = open_in(path);
  return load_csr(f);
}

Pipeline load_pipeline_file(const std::string& path) {
  auto f = open_in(path);
  return load_pipeline(f);
}

SnapshotInfo read_info_file(const std::string& path) {
  auto f = open_in(path);
  return read_info(f);
}

}  // namespace cw::serve
