#include "serve/snapshot.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>

#include "common/error.hpp"
#include "common/mmap_region.hpp"
#include "fault/injector.hpp"
#include "fault/status.hpp"

namespace cw::serve {

namespace {

constexpr char kMagic[8] = {'C', 'W', 'S', 'N', 'A', 'P', '\n', '\0'};
constexpr std::uint32_t kEndianTag = 0x01020304u;

// Section tags let a truncated/garbled payload fail with a named section
// instead of a silent misparse.
enum Section : std::uint32_t {
  kSecOptions = 0x4F505453,     // "OPTS"
  kSecStats = 0x53544154,       // "STAT"
  kSecMode = 0x4D4F4445,        // "MODE" (v2+)
  kSecOrder = 0x4F524452,       // "ORDR"
  kSecCsr = 0x43535220,         // "CSR "
  kSecClustering = 0x434C5553,  // "CLUS"
  kSecCsrCluster = 0x43434C55,  // "CCLU"
};

// --- payloads ---------------------------------------------------------------
//
// The same write/read functions serve every format version: seg() emits
// inline arrays on v2 streams and segment references on v3 control blocks;
// on read it resolves whichever the Reader was built over. The O(nnz)
// structural checks run when Reader::deep_validate() says so — always on the
// copying path, on demand on the mmap path (the cheap O(rows) invariants
// that bound in-array indexing are unconditional; see Csr::from_segments).

void write_csr_payload(io::Writer& w, const Csr& a) {
  w.section(kSecCsr);
  w.pod<index_t>(a.nrows());
  w.pod<index_t>(a.ncols());
  w.seg(a.row_ptr());
  w.seg(a.col_idx());
  w.seg(a.values());
}

Csr read_csr_payload(io::Reader& r) {
  r.expect_section(kSecCsr, "CSR");
  const auto nrows = r.pod<index_t>();
  const auto ncols = r.pod<index_t>();
  auto row_ptr = r.seg<offset_t>();
  auto col_idx = r.seg<index_t>();
  auto values = r.seg<value_t>();
  // from_segments proves the arrays consistent before anything indexes
  // through them; deep validation adds the O(nnz) column checks.
  return Csr::from_segments(nrows, ncols, std::move(row_ptr),
                            std::move(col_idx), std::move(values),
                            r.deep_validate());
}

void write_clustering_payload(io::Writer& w, const Clustering& clustering) {
  w.section(kSecClustering);
  w.seg(clustering.ptr());
}

Clustering read_clustering_payload(io::Reader& r) {
  r.expect_section(kSecClustering, "CLUS");
  // from_ptr always validates the O(num_clusters) invariants.
  return Clustering::from_ptr(r.seg<index_t>());
}

void write_csr_cluster_payload(io::Writer& w, const CsrCluster& cc) {
  w.section(kSecCsrCluster);
  w.pod<index_t>(cc.nrows());
  w.pod<index_t>(cc.ncols());
  w.pod<offset_t>(cc.nnz());
  write_clustering_payload(w, cc.clustering());
  w.seg(cc.cluster_ptr());
  w.seg(cc.value_ptr());
  w.seg(cc.col_idx());
  w.seg(cc.row_mask());
  w.seg(cc.values());
}

CsrCluster read_csr_cluster_payload(io::Reader& r) {
  r.expect_section(kSecCsrCluster, "CCLU");
  const auto nrows = r.pod<index_t>();
  const auto ncols = r.pod<index_t>();
  const auto nnz = r.pod<offset_t>();
  Clustering clustering = read_clustering_payload(r);
  auto cluster_ptr = r.seg<offset_t>();
  auto value_ptr = r.seg<offset_t>();
  auto col_idx = r.seg<index_t>();
  auto row_mask = r.seg<std::uint64_t>();
  auto values = r.seg<value_t>();
  return CsrCluster::from_segments(nrows, ncols, nnz, std::move(clustering),
                                   std::move(cluster_ptr),
                                   std::move(value_ptr), std::move(col_idx),
                                   std::move(row_mask), std::move(values),
                                   r.deep_validate());
}

void write_options_payload(io::Writer& w, const PipelineOptions& o) {
  w.section(kSecOptions);
  w.pod<std::uint32_t>(static_cast<std::uint32_t>(o.reorder));
  w.pod<std::uint64_t>(o.reorder_opt.seed);
  w.pod<index_t>(o.reorder_opt.rows_per_part);
  w.pod<index_t>(o.reorder_opt.nd_leaf_size);
  w.pod<double>(o.reorder_opt.slashburn_hub_fraction);
  w.pod<index_t>(o.reorder_opt.gray_dense_threshold);
  w.pod<std::uint32_t>(static_cast<std::uint32_t>(o.scheme));
  w.pod<index_t>(o.fixed_length);
  w.pod<double>(o.variable_opt.jaccard_threshold);
  w.pod<index_t>(o.variable_opt.max_cluster_size);
  w.pod<double>(o.hierarchical_opt.jaccard_threshold);
  w.pod<index_t>(o.hierarchical_opt.max_cluster_size);
  w.pod<index_t>(o.hierarchical_opt.col_cap);
  w.pod<std::uint32_t>(static_cast<std::uint32_t>(o.accumulator));
}

PipelineOptions read_options_payload(io::Reader& r) {
  r.expect_section(kSecOptions, "OPTS");
  PipelineOptions o;
  const auto reorder = r.pod<std::uint32_t>();
  if (reorder > static_cast<std::uint32_t>(ReorderAlgo::kSlashBurn))
    throw Error("snapshot: unknown reorder algorithm id");
  o.reorder = static_cast<ReorderAlgo>(reorder);
  o.reorder_opt.seed = r.pod<std::uint64_t>();
  o.reorder_opt.rows_per_part = r.pod<index_t>();
  o.reorder_opt.nd_leaf_size = r.pod<index_t>();
  o.reorder_opt.slashburn_hub_fraction = r.pod<double>();
  o.reorder_opt.gray_dense_threshold = r.pod<index_t>();
  const auto scheme = r.pod<std::uint32_t>();
  if (scheme > static_cast<std::uint32_t>(ClusterScheme::kHierarchical))
    throw Error("snapshot: unknown cluster scheme id");
  o.scheme = static_cast<ClusterScheme>(scheme);
  o.fixed_length = r.pod<index_t>();
  o.variable_opt.jaccard_threshold = r.pod<double>();
  o.variable_opt.max_cluster_size = r.pod<index_t>();
  o.hierarchical_opt.jaccard_threshold = r.pod<double>();
  o.hierarchical_opt.max_cluster_size = r.pod<index_t>();
  o.hierarchical_opt.col_cap = r.pod<index_t>();
  const auto acc = r.pod<std::uint32_t>();
  if (acc > static_cast<std::uint32_t>(Accumulator::kSort))
    throw Error("snapshot: unknown accumulator id");
  o.accumulator = static_cast<Accumulator>(acc);
  return o;
}

void write_stats_payload(io::Writer& w, const PipelineStats& s) {
  w.section(kSecStats);
  w.pod<double>(s.reorder_seconds);
  w.pod<double>(s.cluster_seconds);
  w.pod<double>(s.format_seconds);
  w.pod<std::uint64_t>(s.csr_bytes);
  w.pod<std::uint64_t>(s.clustered_bytes);
  w.pod<index_t>(s.num_clusters);
}

PipelineStats read_stats_payload(io::Reader& r) {
  r.expect_section(kSecStats, "STAT");
  PipelineStats s;
  s.reorder_seconds = r.pod<double>();
  s.cluster_seconds = r.pod<double>();
  s.format_seconds = r.pod<double>();
  s.csr_bytes = static_cast<std::size_t>(r.pod<std::uint64_t>());
  s.clustered_bytes = static_cast<std::size_t>(r.pod<std::uint64_t>());
  s.num_clusters = r.pod<index_t>();
  return s;
}

SnapshotInfo read_info_raw(io::Reader& raw) {
  char magic[sizeof(kMagic)];
  raw.raw_bytes(magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw Error("snapshot: bad magic (not a CWSNAP file)");
  SnapshotInfo info;
  raw.raw_bytes(&info.version, sizeof(info.version));
  if (info.version < kMinSnapshotVersion || info.version > kSnapshotVersion)
    throw Error("snapshot: unsupported version " + std::to_string(info.version) +
                " (this build reads versions " +
                std::to_string(kMinSnapshotVersion) + ".." +
                std::to_string(kSnapshotVersion) + ")");
  std::uint32_t endian;
  raw.raw_bytes(&endian, sizeof(endian));
  if (endian != kEndianTag)
    throw Error("snapshot: written on a machine with different endianness");
  std::uint8_t widths[4];
  raw.raw_bytes(widths, sizeof(widths));  // index, offset, value, reserved
  if (widths[0] != sizeof(index_t) || widths[1] != sizeof(offset_t) ||
      widths[2] != sizeof(value_t))
    throw Error("snapshot: scalar type widths do not match this build");
  std::uint32_t kind;
  raw.raw_bytes(&kind, sizeof(kind));
  if (kind < static_cast<std::uint32_t>(SnapshotKind::kCsr) ||
      kind > static_cast<std::uint32_t>(SnapshotKind::kShardedPipeline))
    throw Error("snapshot: unknown payload kind");
  info.kind = static_cast<SnapshotKind>(kind);
  raw.raw_bytes(&info.nrows, sizeof(info.nrows));
  raw.raw_bytes(&info.ncols, sizeof(info.ncols));
  raw.raw_bytes(&info.nnz, sizeof(info.nnz));
  return info;
}

}  // namespace

const char* to_string(SnapshotKind kind) {
  switch (kind) {
    case SnapshotKind::kCsr: return "csr";
    case SnapshotKind::kClustering: return "clustering";
    case SnapshotKind::kCsrCluster: return "csr-cluster";
    case SnapshotKind::kPipeline: return "pipeline";
    case SnapshotKind::kShardedPipeline: return "sharded-pipeline";
  }
  return "?";
}

SnapshotInfo read_info(std::istream& in) {
  // The header predates any Reader: it tells us which format version the
  // payload reader must speak. All reads here are raw (no digest).
  io::Reader raw(in, kMinSnapshotVersion);
  return read_info_raw(raw);
}

SnapshotInfo read_info_region(const MmapRegion& region) {
  const std::uint64_t len =
      region.size() < kHeaderBytes ? region.size() : kHeaderBytes;
  io::Reader raw(std::span<const std::byte>(region.data(),
                                            static_cast<std::size_t>(len)),
                 kMinSnapshotVersion, nullptr, true);
  return read_info_raw(raw);
}

namespace detail {

void check_save_version(std::uint32_t version) {
  if (version < kMinWritableSnapshotVersion || version > kSnapshotVersion)
    throw Error("snapshot: this build writes format versions " +
                std::to_string(kMinWritableSnapshotVersion) + ".." +
                std::to_string(kSnapshotVersion) + ", not " +
                std::to_string(version));
}

void write_header(io::Writer& w, SnapshotKind kind, index_t nrows,
                  index_t ncols, offset_t nnz, std::uint32_t version) {
  w.raw_bytes(kMagic, sizeof(kMagic));
  w.raw_pod<std::uint32_t>(version);
  w.raw_pod<std::uint32_t>(kEndianTag);
  w.raw_pod<std::uint8_t>(sizeof(index_t));
  w.raw_pod<std::uint8_t>(sizeof(offset_t));
  w.raw_pod<std::uint8_t>(sizeof(value_t));
  w.raw_pod<std::uint8_t>(0);  // reserved
  w.raw_pod<std::uint32_t>(static_cast<std::uint32_t>(kind));
  w.raw_pod<index_t>(nrows);
  w.raw_pod<index_t>(ncols);
  w.raw_pod<offset_t>(nnz);
  if (version >= 3) w.raw_zeros(kFirstRecordOffset - kHeaderBytes);
}

void write_pipeline_payload(io::Writer& w, const Pipeline& pipeline) {
  write_options_payload(w, pipeline.options());
  write_stats_payload(w, pipeline.stats());
  w.section(kSecMode);
  w.pod<std::uint8_t>(static_cast<std::uint8_t>(pipeline.mode()));
  w.section(kSecOrder);
  w.seg(pipeline.order());
  write_csr_payload(w, pipeline.matrix());
  write_clustering_payload(w, pipeline.clustering());
  w.pod<std::uint8_t>(pipeline.clustered().has_value() ? 1 : 0);
  if (pipeline.clustered())
    write_csr_cluster_payload(w, *pipeline.clustered());
}

void write_pipeline_options(io::Writer& w, const PipelineOptions& options) {
  write_options_payload(w, options);
}

PipelineOptions read_pipeline_options(io::Reader& r) {
  return read_options_payload(r);
}

Pipeline read_pipeline_payload(io::Reader& r) {
  PipelineOptions opt = read_options_payload(r);
  PipelineStats stats = read_stats_payload(r);
  // Version 1 predates rows-only pipelines; its records are all symmetric.
  PermutationMode mode = PermutationMode::kSymmetric;
  if (r.version() >= 2) {
    r.expect_section(kSecMode, "MODE");
    const auto m = r.pod<std::uint8_t>();
    if (m > static_cast<std::uint8_t>(PermutationMode::kRowsOnly))
      throw Error("snapshot: unknown permutation mode");
    mode = static_cast<PermutationMode>(m);
  }
  r.expect_section(kSecOrder, "ORDR");
  Permutation order = r.seg<index_t>().to_vector();
  Csr a = read_csr_payload(r);
  Clustering clustering = read_clustering_payload(r);
  const auto has_clustered = r.pod<std::uint8_t>();
  std::optional<CsrCluster> clustered;
  if (has_clustered) clustered = read_csr_cluster_payload(r);
  // restore() cross-checks order/clustering/clustered against the matrix.
  return Pipeline::restore(opt, std::move(a), std::move(order),
                           std::move(clustering), std::move(clustered), stats,
                           mode);
}

}  // namespace detail

namespace {

SnapshotInfo expect_header(std::istream& in, SnapshotKind want) {
  const SnapshotInfo info = read_info(in);
  if (info.kind != want)
    throw Error(std::string("snapshot: file holds a ") + to_string(info.kind) +
                ", expected a " + to_string(want));
  return info;
}

/// Save one single-record snapshot in whichever version `opt` selects.
template <typename WritePayload>
void save_record(std::ostream& out, SnapshotKind kind, index_t nrows,
                 index_t ncols, offset_t nnz, const SaveOptions& opt,
                 WritePayload&& write_payload) {
  detail::check_save_version(opt.version);
  io::Writer w(out);
  detail::write_header(w, kind, nrows, ncols, nnz, opt.version);
  if (opt.version == 2) {
    write_payload(w);
    w.checksum();
    return;
  }
  io::V3RecordBuilder rec;
  rec.build_meta([&](io::Writer& mw) { write_payload(mw); });
  rec.layout(kFirstRecordOffset);
  rec.emit(out);
}

/// Load the single v3 record of a stream positioned after the header.
io::StreamRecord read_first_stream_record(std::istream& in) {
  return io::read_v3_record(in, kHeaderBytes, kFirstRecordOffset);
}

/// Parse the single v3 record of a mapped file; `table_out` receives the
/// segment table the payload Reader resolves references through.
std::span<const std::byte> parse_first_region_record(
    const std::shared_ptr<const MmapRegion>& region,
    const MmapLoadOptions& opt, io::SegmentTable* table_out) {
  io::V3Control ctrl = io::parse_v3_control(*region, kFirstRecordOffset);
  *table_out = io::SegmentTable::mapped(std::move(ctrl.entries), region);
  if (opt.verify_checksums) table_out->verify_checksums();
  return ctrl.meta;
}

SnapshotInfo expect_mmap_header(const MmapRegion& region, SnapshotKind want,
                                const std::string& path) {
  const SnapshotInfo info = read_info_region(region);
  if (info.kind != want)
    throw Error(std::string("snapshot: ") + path + " holds a " +
                to_string(info.kind) + ", expected a " + to_string(want));
  if (info.version < 3)
    throw Error("snapshot: " + path + " is format v" +
                std::to_string(info.version) +
                "; zero-copy loading requires v3 (use the copying path)");
  return info;
}

}  // namespace

// --- top-level save/load ----------------------------------------------------

void save(std::ostream& out, const Csr& a, const SaveOptions& opt) {
  save_record(out, SnapshotKind::kCsr, a.nrows(), a.ncols(), a.nnz(), opt,
              [&](io::Writer& w) { write_csr_payload(w, a); });
}

void save(std::ostream& out, const Clustering& clustering,
          const SaveOptions& opt) {
  save_record(out, SnapshotKind::kClustering, clustering.nrows(), 0,
              clustering.num_clusters(), opt,
              [&](io::Writer& w) { write_clustering_payload(w, clustering); });
}

void save(std::ostream& out, const CsrCluster& clustered,
          const SaveOptions& opt) {
  save_record(out, SnapshotKind::kCsrCluster, clustered.nrows(),
              clustered.ncols(), clustered.nnz(), opt, [&](io::Writer& w) {
                write_csr_cluster_payload(w, clustered);
              });
}

void save(std::ostream& out, const Pipeline& pipeline, const SaveOptions& opt) {
  const Csr& a = pipeline.matrix();
  save_record(out, SnapshotKind::kPipeline, a.nrows(), a.ncols(), a.nnz(), opt,
              [&](io::Writer& w) { detail::write_pipeline_payload(w, pipeline); });
}

namespace {

template <typename ReadPayload>
auto load_record(std::istream& in, SnapshotKind want, const char* what,
                 ReadPayload&& read_payload) {
  const SnapshotInfo info = expect_header(in, want);
  if (info.version >= 3) {
    io::StreamRecord rec = read_first_stream_record(in);
    io::Reader r(std::span<const std::byte>(
                     reinterpret_cast<const std::byte*>(rec.meta.data()),
                     rec.meta.size()),
                 info.version, &rec.table, /*deep_validate=*/true);
    return read_payload(r);
  }
  io::Reader r(in, info.version);
  auto result = read_payload(r);
  r.checksum(what);
  return result;
}

}  // namespace

Csr load_csr(std::istream& in) {
  return load_record(in, SnapshotKind::kCsr, "CSR", read_csr_payload);
}

Clustering load_clustering(std::istream& in) {
  return load_record(in, SnapshotKind::kClustering, "clustering",
                     read_clustering_payload);
}

CsrCluster load_csr_cluster(std::istream& in) {
  return load_record(in, SnapshotKind::kCsrCluster, "csr-cluster",
                     read_csr_cluster_payload);
}

Pipeline load_pipeline(std::istream& in) {
  return load_record(in, SnapshotKind::kPipeline, "pipeline",
                     detail::read_pipeline_payload);
}

// --- file wrappers ----------------------------------------------------------

namespace {

std::ofstream open_out(const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw Error("snapshot: cannot open " + path + " for writing");
  return f;
}

std::ifstream open_in(const std::string& path) {
  fault::inject("snapshot.read", fault::ErrorCode::kIoError);
  std::ifstream f(path, std::ios::binary);
  if (!f)
    throw fault::StatusError(fault::ErrorCode::kIoError,
                             "snapshot: cannot open " + path);
  return f;
}

}  // namespace

void save_csr_file(const std::string& path, const Csr& a,
                   const SaveOptions& opt) {
  auto f = open_out(path);
  save(f, a, opt);
}

void save_pipeline_file(const std::string& path, const Pipeline& pipeline,
                        const SaveOptions& opt) {
  auto f = open_out(path);
  save(f, pipeline, opt);
}

Csr load_csr_mmap(const std::string& path, const MmapLoadOptions& opt) {
  fault::inject("snapshot.read", fault::ErrorCode::kIoError);
  auto region = MmapRegion::map_file(path);
  expect_mmap_header(*region, SnapshotKind::kCsr, path);
  io::SegmentTable table;
  const auto meta = parse_first_region_record(region, opt, &table);
  io::Reader r(meta, 3, &table, opt.deep_validate);
  return read_csr_payload(r);
}

Pipeline load_pipeline_mmap(const std::string& path,
                            const MmapLoadOptions& opt) {
  fault::inject("snapshot.read", fault::ErrorCode::kIoError);
  auto region = MmapRegion::map_file(path);
  expect_mmap_header(*region, SnapshotKind::kPipeline, path);
  io::SegmentTable table;
  const auto meta = parse_first_region_record(region, opt, &table);
  io::Reader r(meta, 3, &table, opt.deep_validate);
  return detail::read_pipeline_payload(r);
}

Csr load_csr_file(const std::string& path, const MmapLoadOptions& opt) {
  if (read_info_file(path).version >= 3) return load_csr_mmap(path, opt);
  auto f = open_in(path);
  return load_csr(f);
}

Pipeline load_pipeline_file(const std::string& path,
                            const MmapLoadOptions& opt) {
  if (read_info_file(path).version >= 3) return load_pipeline_mmap(path, opt);
  auto f = open_in(path);
  return load_pipeline(f);
}

SnapshotInfo read_info_file(const std::string& path) {
  auto f = open_in(path);
  return read_info(f);
}

SnapshotInfo convert_snapshot_file(const std::string& in_path,
                                   const std::string& out_path,
                                   const SaveOptions& opt) {
  detail::check_save_version(opt.version);
  auto in = open_in(in_path);
  const SnapshotInfo info = read_info(in);
  in.seekg(0);  // the loaders re-read the header themselves
  switch (info.kind) {
    case SnapshotKind::kCsr: {
      const Csr a = load_csr(in);
      save_csr_file(out_path, a, opt);
      return info;
    }
    case SnapshotKind::kClustering: {
      const Clustering c = load_clustering(in);
      auto out = open_out(out_path);
      save(out, c, opt);
      return info;
    }
    case SnapshotKind::kCsrCluster: {
      const CsrCluster cc = load_csr_cluster(in);
      auto out = open_out(out_path);
      save(out, cc, opt);
      return info;
    }
    case SnapshotKind::kPipeline: {
      const Pipeline p = load_pipeline(in);
      save_pipeline_file(out_path, p, opt);
      return info;
    }
    case SnapshotKind::kShardedPipeline:
      // The sharded record lives a layer up; keep the error actionable.
      throw Error("snapshot: " + in_path +
                  " is a sharded-pipeline; convert it with `cwtool snapshot "
                  "convert` (shard::convert_snapshot_file)");
  }
  throw Error("snapshot: unknown payload kind");
}

}  // namespace cw::serve
