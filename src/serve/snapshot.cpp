#include "serve/snapshot.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>

#include "common/error.hpp"

namespace cw::serve {

namespace {

constexpr char kMagic[8] = {'C', 'W', 'S', 'N', 'A', 'P', '\n', '\0'};
constexpr std::uint32_t kEndianTag = 0x01020304u;

// Section tags let a truncated/garbled payload fail with a named section
// instead of a silent misparse.
enum class Section : std::uint32_t {
  kOptions = 0x4F505453,     // "OPTS"
  kStats = 0x53544154,       // "STAT"
  kOrder = 0x4F524452,       // "ORDR"
  kCsr = 0x43535220,         // "CSR "
  kClustering = 0x434C5553,  // "CLUS"
  kCsrCluster = 0x43434C55,  // "CCLU"
};

// --- primitive writers/readers ----------------------------------------------

void write_bytes(std::ostream& out, const void* data, std::size_t n) {
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  if (!out) throw Error("snapshot: write failed");
}

template <typename T>
void write_pod(std::ostream& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_bytes(out, &v, sizeof(T));
}

template <typename T>
void write_vec(std::ostream& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_pod<std::uint64_t>(out, v.size());
  if (!v.empty()) write_bytes(out, v.data(), v.size() * sizeof(T));
}

void read_bytes(std::istream& in, void* data, std::size_t n) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(in.gcount()) != n)
    throw Error("snapshot: truncated file");
}

template <typename T>
T read_pod(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v;
  read_bytes(in, &v, sizeof(T));
  return v;
}

template <typename T>
std::vector<T> read_vec(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto count = read_pod<std::uint64_t>(in);
  // Guard against allocating absurd sizes from a corrupted count field.
  if (count > (std::uint64_t{1} << 40) / sizeof(T))
    throw Error("snapshot: implausible array length (corrupted file?)");
  std::vector<T> v(static_cast<std::size_t>(count));
  if (count > 0) read_bytes(in, v.data(), v.size() * sizeof(T));
  return v;
}

void write_section(std::ostream& out, Section s) {
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(s));
}

void expect_section(std::istream& in, Section s, const char* name) {
  const auto got = read_pod<std::uint32_t>(in);
  if (got != static_cast<std::uint32_t>(s))
    throw Error(std::string("snapshot: expected section ") + name);
}

// --- header -----------------------------------------------------------------

void write_header(std::ostream& out, SnapshotKind kind, index_t nrows,
                  index_t ncols, offset_t nnz) {
  write_bytes(out, kMagic, sizeof(kMagic));
  write_pod<std::uint32_t>(out, kSnapshotVersion);
  write_pod<std::uint32_t>(out, kEndianTag);
  write_pod<std::uint8_t>(out, sizeof(index_t));
  write_pod<std::uint8_t>(out, sizeof(offset_t));
  write_pod<std::uint8_t>(out, sizeof(value_t));
  write_pod<std::uint8_t>(out, 0);  // reserved
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(kind));
  write_pod<index_t>(out, nrows);
  write_pod<index_t>(out, ncols);
  write_pod<offset_t>(out, nnz);
}

SnapshotKind expect_header(std::istream& in, SnapshotKind want) {
  const SnapshotInfo info = read_info(in);
  if (info.kind != want)
    throw Error(std::string("snapshot: file holds a ") + to_string(info.kind) +
                ", expected a " + to_string(want));
  return info.kind;
}

// --- payloads ---------------------------------------------------------------

void write_csr_payload(std::ostream& out, const Csr& a) {
  write_section(out, Section::kCsr);
  write_pod<index_t>(out, a.nrows());
  write_pod<index_t>(out, a.ncols());
  write_vec(out, a.row_ptr());
  write_vec(out, a.col_idx());
  write_vec(out, a.values());
}

Csr read_csr_payload(std::istream& in) {
  expect_section(in, Section::kCsr, "CSR");
  const auto nrows = read_pod<index_t>(in);
  const auto ncols = read_pod<index_t>(in);
  auto row_ptr = read_vec<offset_t>(in);
  auto col_idx = read_vec<index_t>(in);
  auto values = read_vec<value_t>(in);
  // Fully validate the raw arrays BEFORE handing them to the Csr
  // constructor: in release builds the constructor trusts row_ptr when it
  // scans rows, so corrupted offsets must never reach it.
  if (nrows < 0 || ncols < 0 ||
      row_ptr.size() != static_cast<std::size_t>(nrows) + 1)
    throw Error("snapshot: inconsistent CSR dimensions");
  if (row_ptr.front() != 0 ||
      row_ptr.back() != static_cast<offset_t>(col_idx.size()) ||
      col_idx.size() != values.size())
    throw Error("snapshot: CSR array lengths do not match row pointers");
  for (std::size_t r = 0; r + 1 < row_ptr.size(); ++r)
    if (row_ptr[r] > row_ptr[r + 1])
      throw Error("snapshot: CSR row pointers are not non-decreasing");
  for (const index_t c : col_idx)
    if (c < 0 || c >= ncols)
      throw Error("snapshot: CSR column index out of range");
  Csr a(nrows, ncols, std::move(row_ptr), std::move(col_idx),
        std::move(values));
  a.validate();
  return a;
}

void write_clustering_payload(std::ostream& out, const Clustering& clustering) {
  write_section(out, Section::kClustering);
  write_vec(out, clustering.ptr());
}

Clustering read_clustering_payload(std::istream& in) {
  expect_section(in, Section::kClustering, "CLUS");
  const auto ptr = read_vec<index_t>(in);
  if (ptr.empty() || ptr.front() != 0)
    throw Error("snapshot: malformed clustering pointer array");
  std::vector<index_t> sizes(ptr.size() - 1);
  for (std::size_t c = 0; c + 1 < ptr.size(); ++c) {
    if (ptr[c + 1] <= ptr[c])
      throw Error("snapshot: clustering pointers not strictly increasing");
    sizes[c] = ptr[c + 1] - ptr[c];
  }
  return Clustering::from_sizes(sizes);
}

void write_csr_cluster_payload(std::ostream& out, const CsrCluster& cc) {
  write_section(out, Section::kCsrCluster);
  write_pod<index_t>(out, cc.nrows());
  write_pod<index_t>(out, cc.ncols());
  write_pod<offset_t>(out, cc.nnz());
  write_clustering_payload(out, cc.clustering());
  write_vec(out, cc.cluster_ptr());
  write_vec(out, cc.value_ptr());
  write_vec(out, cc.col_idx());
  write_vec(out, cc.row_mask());
  write_vec(out, cc.values());
}

CsrCluster read_csr_cluster_payload(std::istream& in) {
  expect_section(in, Section::kCsrCluster, "CCLU");
  const auto nrows = read_pod<index_t>(in);
  const auto ncols = read_pod<index_t>(in);
  const auto nnz = read_pod<offset_t>(in);
  Clustering clustering = read_clustering_payload(in);
  auto cluster_ptr = read_vec<offset_t>(in);
  auto value_ptr = read_vec<offset_t>(in);
  auto col_idx = read_vec<index_t>(in);
  auto row_mask = read_vec<std::uint64_t>(in);
  auto values = read_vec<value_t>(in);
  // from_parts runs CsrCluster::validate() on the result.
  return CsrCluster::from_parts(nrows, ncols, nnz, std::move(clustering),
                                std::move(cluster_ptr), std::move(value_ptr),
                                std::move(col_idx), std::move(row_mask),
                                std::move(values));
}

void write_options_payload(std::ostream& out, const PipelineOptions& o) {
  write_section(out, Section::kOptions);
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(o.reorder));
  write_pod<std::uint64_t>(out, o.reorder_opt.seed);
  write_pod<index_t>(out, o.reorder_opt.rows_per_part);
  write_pod<index_t>(out, o.reorder_opt.nd_leaf_size);
  write_pod<double>(out, o.reorder_opt.slashburn_hub_fraction);
  write_pod<index_t>(out, o.reorder_opt.gray_dense_threshold);
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(o.scheme));
  write_pod<index_t>(out, o.fixed_length);
  write_pod<double>(out, o.variable_opt.jaccard_threshold);
  write_pod<index_t>(out, o.variable_opt.max_cluster_size);
  write_pod<double>(out, o.hierarchical_opt.jaccard_threshold);
  write_pod<index_t>(out, o.hierarchical_opt.max_cluster_size);
  write_pod<index_t>(out, o.hierarchical_opt.col_cap);
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(o.accumulator));
}

PipelineOptions read_options_payload(std::istream& in) {
  expect_section(in, Section::kOptions, "OPTS");
  PipelineOptions o;
  const auto reorder = read_pod<std::uint32_t>(in);
  if (reorder > static_cast<std::uint32_t>(ReorderAlgo::kSlashBurn))
    throw Error("snapshot: unknown reorder algorithm id");
  o.reorder = static_cast<ReorderAlgo>(reorder);
  o.reorder_opt.seed = read_pod<std::uint64_t>(in);
  o.reorder_opt.rows_per_part = read_pod<index_t>(in);
  o.reorder_opt.nd_leaf_size = read_pod<index_t>(in);
  o.reorder_opt.slashburn_hub_fraction = read_pod<double>(in);
  o.reorder_opt.gray_dense_threshold = read_pod<index_t>(in);
  const auto scheme = read_pod<std::uint32_t>(in);
  if (scheme > static_cast<std::uint32_t>(ClusterScheme::kHierarchical))
    throw Error("snapshot: unknown cluster scheme id");
  o.scheme = static_cast<ClusterScheme>(scheme);
  o.fixed_length = read_pod<index_t>(in);
  o.variable_opt.jaccard_threshold = read_pod<double>(in);
  o.variable_opt.max_cluster_size = read_pod<index_t>(in);
  o.hierarchical_opt.jaccard_threshold = read_pod<double>(in);
  o.hierarchical_opt.max_cluster_size = read_pod<index_t>(in);
  o.hierarchical_opt.col_cap = read_pod<index_t>(in);
  const auto acc = read_pod<std::uint32_t>(in);
  if (acc > static_cast<std::uint32_t>(Accumulator::kSort))
    throw Error("snapshot: unknown accumulator id");
  o.accumulator = static_cast<Accumulator>(acc);
  return o;
}

void write_stats_payload(std::ostream& out, const PipelineStats& s) {
  write_section(out, Section::kStats);
  write_pod<double>(out, s.reorder_seconds);
  write_pod<double>(out, s.cluster_seconds);
  write_pod<double>(out, s.format_seconds);
  write_pod<std::uint64_t>(out, s.csr_bytes);
  write_pod<std::uint64_t>(out, s.clustered_bytes);
  write_pod<index_t>(out, s.num_clusters);
}

PipelineStats read_stats_payload(std::istream& in) {
  expect_section(in, Section::kStats, "STAT");
  PipelineStats s;
  s.reorder_seconds = read_pod<double>(in);
  s.cluster_seconds = read_pod<double>(in);
  s.format_seconds = read_pod<double>(in);
  s.csr_bytes = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  s.clustered_bytes = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  s.num_clusters = read_pod<index_t>(in);
  return s;
}

}  // namespace

const char* to_string(SnapshotKind kind) {
  switch (kind) {
    case SnapshotKind::kCsr: return "csr";
    case SnapshotKind::kClustering: return "clustering";
    case SnapshotKind::kCsrCluster: return "csr-cluster";
    case SnapshotKind::kPipeline: return "pipeline";
  }
  return "?";
}

SnapshotInfo read_info(std::istream& in) {
  char magic[sizeof(kMagic)];
  read_bytes(in, magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw Error("snapshot: bad magic (not a CWSNAP file)");
  SnapshotInfo info;
  info.version = read_pod<std::uint32_t>(in);
  if (info.version != kSnapshotVersion)
    throw Error("snapshot: unsupported version " + std::to_string(info.version) +
                " (this build reads version " +
                std::to_string(kSnapshotVersion) + ")");
  if (read_pod<std::uint32_t>(in) != kEndianTag)
    throw Error("snapshot: written on a machine with different endianness");
  const auto iw = read_pod<std::uint8_t>(in);
  const auto ow = read_pod<std::uint8_t>(in);
  const auto vw = read_pod<std::uint8_t>(in);
  (void)read_pod<std::uint8_t>(in);  // reserved
  if (iw != sizeof(index_t) || ow != sizeof(offset_t) || vw != sizeof(value_t))
    throw Error("snapshot: scalar type widths do not match this build");
  const auto kind = read_pod<std::uint32_t>(in);
  if (kind < static_cast<std::uint32_t>(SnapshotKind::kCsr) ||
      kind > static_cast<std::uint32_t>(SnapshotKind::kPipeline))
    throw Error("snapshot: unknown payload kind");
  info.kind = static_cast<SnapshotKind>(kind);
  info.nrows = read_pod<index_t>(in);
  info.ncols = read_pod<index_t>(in);
  info.nnz = read_pod<offset_t>(in);
  return info;
}

// --- top-level save/load ----------------------------------------------------

void save(std::ostream& out, const Csr& a) {
  write_header(out, SnapshotKind::kCsr, a.nrows(), a.ncols(), a.nnz());
  write_csr_payload(out, a);
}

void save(std::ostream& out, const Clustering& clustering) {
  write_header(out, SnapshotKind::kClustering, clustering.nrows(), 0,
               clustering.num_clusters());
  write_clustering_payload(out, clustering);
}

void save(std::ostream& out, const CsrCluster& clustered) {
  write_header(out, SnapshotKind::kCsrCluster, clustered.nrows(),
               clustered.ncols(), clustered.nnz());
  write_csr_cluster_payload(out, clustered);
}

void save(std::ostream& out, const Pipeline& pipeline) {
  const Csr& a = pipeline.matrix();
  write_header(out, SnapshotKind::kPipeline, a.nrows(), a.ncols(), a.nnz());
  write_options_payload(out, pipeline.options());
  write_stats_payload(out, pipeline.stats());
  write_section(out, Section::kOrder);
  write_vec(out, pipeline.order());
  write_csr_payload(out, a);
  write_clustering_payload(out, pipeline.clustering());
  write_pod<std::uint8_t>(out, pipeline.clustered().has_value() ? 1 : 0);
  if (pipeline.clustered())
    write_csr_cluster_payload(out, *pipeline.clustered());
}

Csr load_csr(std::istream& in) {
  expect_header(in, SnapshotKind::kCsr);
  return read_csr_payload(in);
}

Clustering load_clustering(std::istream& in) {
  expect_header(in, SnapshotKind::kClustering);
  return read_clustering_payload(in);
}

CsrCluster load_csr_cluster(std::istream& in) {
  expect_header(in, SnapshotKind::kCsrCluster);
  return read_csr_cluster_payload(in);
}

Pipeline load_pipeline(std::istream& in) {
  expect_header(in, SnapshotKind::kPipeline);
  PipelineOptions opt = read_options_payload(in);
  PipelineStats stats = read_stats_payload(in);
  expect_section(in, Section::kOrder, "ORDR");
  auto order = read_vec<index_t>(in);
  Csr a = read_csr_payload(in);
  Clustering clustering = read_clustering_payload(in);
  const auto has_clustered = read_pod<std::uint8_t>(in);
  std::optional<CsrCluster> clustered;
  if (has_clustered) clustered = read_csr_cluster_payload(in);
  // restore() cross-checks order/clustering/clustered against the matrix.
  return Pipeline::restore(opt, std::move(a), std::move(order),
                           std::move(clustering), std::move(clustered), stats);
}

// --- file wrappers ----------------------------------------------------------

namespace {

std::ofstream open_out(const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw Error("snapshot: cannot open " + path + " for writing");
  return f;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw Error("snapshot: cannot open " + path);
  return f;
}

}  // namespace

void save_csr_file(const std::string& path, const Csr& a) {
  auto f = open_out(path);
  save(f, a);
}

void save_pipeline_file(const std::string& path, const Pipeline& pipeline) {
  auto f = open_out(path);
  save(f, pipeline);
}

Csr load_csr_file(const std::string& path) {
  auto f = open_in(path);
  return load_csr(f);
}

Pipeline load_pipeline_file(const std::string& path) {
  auto f = open_in(path);
  return load_pipeline(f);
}

SnapshotInfo read_info_file(const std::string& path) {
  auto f = open_in(path);
  return read_info(f);
}

}  // namespace cw::serve
