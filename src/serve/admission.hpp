// Pluggable cache-admission policies for the pipeline registry.
//
// LRU answers "who leaves when space runs out?" but never "is the newcomer
// worth the space at all?" — so a scan flood (many one-shot matrices arriving
// back to back) evicts the hot pipelines that earn the cache its hit rate.
// An AdmissionPolicy sits in front of eviction: before the registry evicts a
// victim to make room, the candidate must prove it is more valuable.
//
// Two policies ship:
//
//   * AdmitAllPolicy — always yes: byte-for-byte the registry's historical
//     admit-all LRU behaviour (and the default).
//   * TinyLfuPolicy  — frequency-aware admission à la TinyLFU (Einziger et
//     al.): a 4-bit count-min sketch estimates every key's recent access
//     frequency in O(1) space, a doorkeeper bloom filter absorbs the long
//     tail of once-seen keys before they cost sketch space, and periodic
//     aging (halving all counters) keeps the estimates *recent*. A candidate
//     displaces a victim only when its estimated frequency is strictly
//     higher, so one-shot scan entries bounce off resident hot entries.
//
// Policies are driven entirely under the registry's mutex: given the same
// operation sequence they make the same decisions (the determinism the
// concurrent-admit tests pin down). Keys are pre-hashed 64-bit values (the
// registry feeds FingerprintHasher output).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace cw::serve {

enum class AdmissionKind : std::uint8_t {
  kAdmitAll = 0,  // historical LRU behaviour
  kTinyLfu = 1,   // frequency-aware (sketch + doorkeeper)
};

const char* to_string(AdmissionKind kind);

/// Parse "lru" / "admit-all" / "tinylfu" (CLI flags). Throws on others.
AdmissionKind parse_admission_kind(const std::string& name);

class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// One access to `key_hash` (every registry lookup and insert attempt).
  virtual void record_access(std::uint64_t key_hash) = 0;

  /// Should `candidate` displace `victim`? Called once per prospective
  /// eviction victim; the first false rejects the insertion.
  [[nodiscard]] virtual bool admit_over(std::uint64_t candidate_hash,
                                        std::uint64_t victim_hash) = 0;

  /// Fraction of the policy's frequency state currently in use, in [0, 1] —
  /// an observability signal (how full is the sketch between agings?), not
  /// an admission input. Stateless policies report 0.
  [[nodiscard]] virtual double occupancy() const { return 0.0; }
};

class AdmitAllPolicy final : public AdmissionPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "admit-all"; }
  void record_access(std::uint64_t) override {}
  [[nodiscard]] bool admit_over(std::uint64_t, std::uint64_t) override {
    return true;
  }
};

struct TinyLfuOptions {
  /// log2 of the 4-bit counters per sketch row (default 8192 counters ×
  /// 4 rows = 16 KiB of sketch). Size for ~10× the expected distinct keys.
  std::uint32_t counters_log2 = 13;
  /// Accesses between agings (halve every counter, clear the doorkeeper).
  /// 0 = 8 × counters. Small values age aggressively (test hook).
  std::uint64_t sample_size = 0;
};

class TinyLfuPolicy final : public AdmissionPolicy {
 public:
  explicit TinyLfuPolicy(const TinyLfuOptions& opt = {});

  [[nodiscard]] const char* name() const override { return "tinylfu"; }
  void record_access(std::uint64_t key_hash) override;
  [[nodiscard]] bool admit_over(std::uint64_t candidate_hash,
                                std::uint64_t victim_hash) override;

  /// Current frequency estimate (doorkeeper + sketch minimum); max 16.
  [[nodiscard]] std::uint32_t estimate(std::uint64_t key_hash) const;

  /// Fraction of nonzero 4-bit sketch counters. Grows toward an aging,
  /// collapses after it — sampled over time this exposes the sketch's duty
  /// cycle (sized right, it stays well under 1 between agings).
  [[nodiscard]] double occupancy() const override;

  /// Aging passes run so far (observability + the aging test).
  [[nodiscard]] std::uint64_t agings() const { return agings_; }

 private:
  static constexpr std::uint32_t kDepth = 4;       // sketch rows
  static constexpr std::uint32_t kMaxCount = 15;   // 4-bit saturation

  [[nodiscard]] std::size_t nibble_index_(std::uint32_t row,
                                          std::uint64_t key_hash) const;
  [[nodiscard]] std::uint32_t sketch_min_(std::uint64_t key_hash) const;
  void age_();

  std::uint64_t counter_mask_ = 0;       // counters-per-row - 1
  std::uint64_t sample_size_ = 0;
  std::uint64_t samples_ = 0;
  std::uint64_t agings_ = 0;
  std::vector<std::uint64_t> table_;      // kDepth rows × counters/16 words
  std::vector<std::uint64_t> doorkeeper_;  // 1 bit per counter slot
};

/// Factory keyed by the registry option enum.
std::unique_ptr<AdmissionPolicy> make_admission_policy(
    AdmissionKind kind, const TinyLfuOptions& opt = {});

}  // namespace cw::serve
