#include "serve/fingerprint.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace cw::serve {

namespace {

constexpr std::uint64_t kFnvBasis = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void mix(std::uint64_t& h, std::uint64_t v) {
  // FNV-1a over the 8 bytes of v.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
}

}  // namespace

Fingerprint fingerprint(const Csr& a, index_t sample_rows) {
  Fingerprint fp;
  fp.nrows = a.nrows();
  fp.ncols = a.ncols();
  fp.nnz = a.nnz();

  std::uint64_t h = kFnvBasis;
  mix(h, static_cast<std::uint64_t>(fp.nrows));
  mix(h, static_cast<std::uint64_t>(fp.ncols));
  mix(h, static_cast<std::uint64_t>(fp.nnz));

  const index_t n = a.nrows();
  if (n > 0) {
    const index_t samples = std::clamp<index_t>(sample_rows, 1, n);
    // Evenly spaced rows, endpoints always included (r = i*(n-1)/(s-1)).
    for (index_t i = 0; i < samples; ++i) {
      const index_t r =
          samples == 1 ? 0
                       : static_cast<index_t>(
                             (static_cast<offset_t>(i) * (n - 1)) / (samples - 1));
      mix(h, static_cast<std::uint64_t>(a.row_ptr()[r]));
      mix(h, static_cast<std::uint64_t>(a.row_ptr()[r + 1]));
      const auto cols = a.row_cols(r);
      const auto vals = a.row_vals(r);
      // First and last few entries of the row — cheap, and sensitive to both
      // pattern and numeric edits anywhere a sampled row reaches.
      const std::size_t k = std::min<std::size_t>(cols.size(), 4);
      for (std::size_t j = 0; j < k; ++j) {
        mix(h, static_cast<std::uint64_t>(cols[j]));
        mix(h, std::bit_cast<std::uint64_t>(vals[j]));
        mix(h, static_cast<std::uint64_t>(cols[cols.size() - 1 - j]));
        mix(h, std::bit_cast<std::uint64_t>(vals[vals.size() - 1 - j]));
      }
    }
  }
  fp.digest = h;
  return fp;
}

std::string to_string(const Fingerprint& fp) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%dx%d, nnz=%lld, digest=%016llx", fp.nrows,
                fp.ncols, static_cast<long long>(fp.nnz),
                static_cast<unsigned long long>(fp.digest));
  return buf;
}

std::size_t FingerprintHasher::operator()(const Fingerprint& fp) const noexcept {
  // The digest already mixes dims and nnz; fold it to size_t.
  return static_cast<std::size_t>(fp.digest ^ (fp.digest >> 32));
}

}  // namespace cw::serve
