// Thread-safe LRU registry of prepared pipelines — the serving cache.
//
// Serving processes see the same handful of workload matrices over and over
// (the §4.5 amortization scenario at fleet scale). The registry keeps their
// prepared `Pipeline`s hot in memory, keyed by structural fingerprint and
// bounded by a byte budget: inserting past the budget evicts
// least-recently-used entries. Entries are handed out as
// `shared_ptr<const Pipeline>`, so an evicted pipeline stays alive until the
// last in-flight request using it finishes — eviction never invalidates a
// running multiply.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/pipeline.hpp"
#include "serve/fingerprint.hpp"

namespace cw::serve {

/// How a prepared pipeline's bytes are resident. Anonymous bytes are
/// private heap memory this process alone pays for; mapped bytes are
/// file-backed (a v3 snapshot mmap) — shared page cache the kernel can
/// reclaim and re-fault at will, and shared across every process serving
/// the same snapshot. The registry budget charges only anonymous bytes:
/// counting mapped bytes against it would evict N-1 of N processes' worth
/// of pipelines that in fact occupy one physical copy.
struct PipelineFootprint {
  std::size_t anonymous_bytes = 0;
  std::size_t mapped_bytes = 0;
  [[nodiscard]] std::size_t total() const {
    return anonymous_bytes + mapped_bytes;
  }
};

/// Per-array resident accounting of a prepared pipeline (matrix + order +
/// clustering + clustered format), split by storage kind.
PipelineFootprint pipeline_footprint(const Pipeline& p);

/// Total approximate resident bytes (anonymous + mapped) — the historical
/// single-number accounting; equals the old value for fully-owned pipelines.
std::size_t pipeline_memory_bytes(const Pipeline& p);

struct RegistryStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  /// Inserts refused because a single entry exceeded the whole budget.
  std::uint64_t oversize_rejects = 0;
  /// Anonymous (private, budget-charged) bytes of the cached entries.
  std::size_t bytes_used = 0;
  /// File-backed mmap bytes of the cached entries — tracked for honesty,
  /// not charged against capacity (shared page cache; see PipelineFootprint).
  std::size_t mapped_bytes_used = 0;
  std::size_t capacity_bytes = 0;
  std::size_t entries = 0;
  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
};

class PipelineRegistry {
 public:
  explicit PipelineRegistry(std::size_t capacity_bytes);

  PipelineRegistry(const PipelineRegistry&) = delete;
  PipelineRegistry& operator=(const PipelineRegistry&) = delete;

  /// Lookup; marks the entry most-recently-used. Null on miss.
  std::shared_ptr<const Pipeline> find(const Fingerprint& key);

  /// Insert and return the cached entry, evicting LRU entries until the
  /// budget holds. First insert wins: if the key is already present (e.g. a
  /// racing builder got there first) the incumbent is kept and returned, so
  /// all callers share one copy. To force a rebuild, erase() first. An entry
  /// bigger than the whole budget is returned but not cached. `admitted`
  /// (optional) is set to whether THIS call cached its entry — the returned
  /// handle alone cannot distinguish admitted / incumbent-kept /
  /// oversize-rejected, and a registry-wide counter delta would race other
  /// inserters.
  std::shared_ptr<const Pipeline> insert(const Fingerprint& key,
                                         std::shared_ptr<const Pipeline> p,
                                         bool* admitted = nullptr);

  /// find(), or build-and-insert on miss. `build` runs outside the registry
  /// lock, so concurrent get_or_build calls for *different* keys never
  /// serialize; two racing calls for the same key may both build, in which
  /// case the first insert wins and both callers get that entry.
  std::shared_ptr<const Pipeline> get_or_build(
      const Fingerprint& key,
      const std::function<std::shared_ptr<const Pipeline>()>& build);

  /// Remove one entry (no-op if absent).
  void erase(const Fingerprint& key);

  /// Drop all entries (stat counters survive).
  void clear();

  [[nodiscard]] RegistryStats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity_bytes() const { return capacity_; }

 private:
  struct Entry {
    Fingerprint key;
    std::shared_ptr<const Pipeline> pipeline;
    PipelineFootprint footprint;
  };
  using LruList = std::list<Entry>;

  // Both require mu_ held.
  void touch_(LruList::iterator it);
  void evict_until_(std::size_t budget);

  const std::size_t capacity_;
  mutable std::mutex mu_;
  LruList lru_;  // front = most recently used
  std::unordered_map<Fingerprint, LruList::iterator, FingerprintHasher> map_;
  RegistryStats stats_{};
};

}  // namespace cw::serve
