// Thread-safe LRU registry of prepared pipelines — the serving cache.
//
// Serving processes see the same handful of workload matrices over and over
// (the §4.5 amortization scenario at fleet scale). The registry keeps their
// prepared `Pipeline`s hot in memory, keyed by structural fingerprint and
// bounded by a byte budget: inserting past the budget evicts
// least-recently-used entries. Entries are handed out as
// `shared_ptr<const Pipeline>`, so an evicted pipeline stays alive until the
// last in-flight request using it finishes — eviction never invalidates a
// running multiply.
//
// Two policy hooks refine the plain LRU:
//
//   * admission (serve/admission.hpp) — before an insertion may evict, the
//     candidate must beat each prospective victim under the configured
//     AdmissionPolicy. The default admit-all preserves the historical LRU
//     behaviour exactly; TinyLFU protects hot pipelines from scan floods.
//   * residency (common/residency.hpp) — mmap-loaded entries can be
//     prefaulted on admit (warm before traffic) and pinned within an mlock
//     budget; evicting one releases its physical pages (DONTNEED), so
//     `mapped_bytes` eviction actually returns memory to the machine
//     instead of just forgetting a pointer into page cache.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/pipeline.hpp"
#include "fault/counters.hpp"
#include "fault/quarantine.hpp"
#include "fault/status.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "serve/admission.hpp"
#include "serve/fingerprint.hpp"

namespace cw::obs {
class PeriodicSampler;
}  // namespace cw::obs

namespace cw::serve {

/// How a prepared pipeline's bytes are resident. Anonymous bytes are
/// private heap memory this process alone pays for; mapped bytes are
/// file-backed (a v3 snapshot mmap) — shared page cache the kernel can
/// reclaim and re-fault at will, and shared across every process serving
/// the same snapshot. The registry budget charges only anonymous bytes:
/// counting mapped bytes against it would evict N-1 of N processes' worth
/// of pipelines that in fact occupy one physical copy.
struct PipelineFootprint {
  std::size_t anonymous_bytes = 0;
  std::size_t mapped_bytes = 0;
  [[nodiscard]] std::size_t total() const {
    return anonymous_bytes + mapped_bytes;
  }
};

/// Per-array resident accounting of a prepared pipeline (matrix + order +
/// clustering + clustered format), split by storage kind.
PipelineFootprint pipeline_footprint(const Pipeline& p);

/// Total approximate resident bytes (anonymous + mapped) — the historical
/// single-number accounting; equals the old value for fully-owned pipelines.
std::size_t pipeline_memory_bytes(const Pipeline& p);

struct RegistryOptions {
  /// Anonymous-byte budget (mapped bytes are not charged; see
  /// PipelineFootprint).
  std::size_t capacity_bytes = 0;
  /// Who may displace whom (serve/admission.hpp). kAdmitAll = the
  /// historical LRU behaviour, exactly.
  AdmissionKind admission = AdmissionKind::kAdmitAll;
  /// Sketch sizing/aging when admission == kTinyLfu.
  TinyLfuOptions tinylfu = {};
  /// warm_up() newly admitted mmap-backed entries (WILLNEED + touch) so
  /// their first multiplies pay no page faults.
  bool prefault_on_admit = false;
  /// mlock budget across all cached entries: admitted mapped entries are
  /// pinned greedily (whole entry's worth of segments, or skip) until the
  /// budget is spent. 0 = never lock.
  std::size_t mlock_budget_bytes = 0;
  /// DONTNEED a mapped entry's pages when it is evicted/erased, so dropping
  /// it frees physical memory instead of only forgetting the mapping.
  bool release_mapped_on_evict = true;
  /// Metrics registry backing the cw_registry_* / cw_residency_* series.
  /// Null = the registry creates a private one (reachable via metrics()).
  /// Sharing one across registries aggregates their series — each
  /// RegistryStats view then reports the combined counts.
  std::shared_ptr<obs::MetricsRegistry> metrics;
  /// Structured event log: evictions, admission/oversize rejects and
  /// residency releases become queryable events (obs/log.hpp). Null = the
  /// registry emits no events (counters still count everything).
  std::shared_ptr<obs::EventLog> events;
  /// get_or_load recovery: how many times a retryable load failure
  /// (kIoError / kCorruptSnapshot / kInternal) is retried from disk before
  /// the fingerprint is quarantined. 0 = fail (and quarantine) on the first
  /// error.
  int load_retries = 1;
  /// How long a fingerprint whose load failed retries-exhausted stays in
  /// the corruption quarantine (get_or_load fails it fast with
  /// kCorruptSnapshot instead of re-reading a bad file). <= 0 disables
  /// quarantining.
  std::chrono::milliseconds quarantine_ttl{30000};
};

/// Point-in-time view of the registry's telemetry. Since PR 6 this is a
/// compatibility snapshot assembled from the registry-backed metrics (see
/// RegistryOptions::metrics) — the durable interface is the cw_registry_*
/// series themselves, which exporters scrape without taking this struct.
struct RegistryStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  /// Inserts refused because a single entry exceeded the whole budget.
  std::uint64_t oversize_rejects = 0;
  /// Inserts refused by the admission policy (a prospective victim was
  /// hotter than the candidate).
  std::uint64_t admission_rejects = 0;
  /// Evictions/erases that released a mapped entry's physical pages.
  std::uint64_t released_evictions = 0;
  /// Cumulative mapped bytes DONTNEEDed by those releases.
  std::uint64_t released_bytes = 0;
  /// Cumulative mapped bytes prefaulted by prefault_on_admit.
  std::uint64_t prefaulted_bytes = 0;
  /// get_or_load retries after a retryable load failure.
  std::uint64_t load_retries = 0;
  /// Fingerprints quarantined after exhausting their load retries.
  std::uint64_t quarantined = 0;
  /// get_or_load calls refused fast because the fingerprint was quarantined.
  std::uint64_t quarantine_blocked = 0;
  /// Fingerprints currently in quarantine.
  std::size_t quarantined_keys = 0;
  /// Anonymous (private, budget-charged) bytes of the cached entries.
  std::size_t bytes_used = 0;
  /// File-backed mmap bytes of the cached entries — tracked for honesty,
  /// not charged against capacity (shared page cache; see PipelineFootprint).
  std::size_t mapped_bytes_used = 0;
  /// Mapped bytes currently mlocked under RegistryOptions::mlock_budget.
  std::size_t locked_bytes = 0;
  std::size_t capacity_bytes = 0;
  std::size_t entries = 0;
  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
};

class PipelineRegistry {
 public:
  /// Historical constructor: admit-all LRU over `capacity_bytes`.
  explicit PipelineRegistry(std::size_t capacity_bytes);

  explicit PipelineRegistry(const RegistryOptions& opt);

  PipelineRegistry(const PipelineRegistry&) = delete;
  PipelineRegistry& operator=(const PipelineRegistry&) = delete;

  /// Lookup; marks the entry most-recently-used. Null on miss.
  std::shared_ptr<const Pipeline> find(const Fingerprint& key);

  /// Insert and return the cached entry, evicting LRU entries until the
  /// budget holds. First insert wins: if the key is already present (e.g. a
  /// racing builder got there first) the incumbent is kept and returned, so
  /// all callers share one copy. To force a rebuild, erase() first. An entry
  /// bigger than the whole budget — or one the admission policy judges
  /// colder than a prospective eviction victim — is returned but not
  /// cached. `admitted` (optional) is set to whether THIS call cached its
  /// entry — the returned handle alone cannot distinguish admitted /
  /// incumbent-kept / rejected, and a registry-wide counter delta would
  /// race other inserters.
  std::shared_ptr<const Pipeline> insert(const Fingerprint& key,
                                         std::shared_ptr<const Pipeline> p,
                                         bool* admitted = nullptr);

  /// find(), or build-and-insert on miss. `build` runs outside the registry
  /// lock, so concurrent get_or_build calls for *different* keys never
  /// serialize; two racing calls for the same key may both build, in which
  /// case the first insert wins and both callers get that entry.
  std::shared_ptr<const Pipeline> get_or_build(
      const Fingerprint& key,
      const std::function<std::shared_ptr<const Pipeline>()>& build);

  /// find(), or load-from-disk-and-insert on miss — get_or_build's
  /// fault-contained sibling for snapshot-backed pipelines. `load` runs
  /// OUTSIDE every registry mutex (same deferred-syscall discipline as the
  /// eviction path: O(file) work never stalls concurrent lookups). A
  /// retryable failure (kIoError / kCorruptSnapshot / kInternal — a torn
  /// read may heal on a re-read) is retried from disk up to
  /// RegistryOptions::load_retries times; when every attempt fails the
  /// fingerprint is quarantined for quarantine_ttl and the last error
  /// rethrown. While quarantined, calls fail fast with kCorruptSnapshot —
  /// microseconds instead of re-reading and re-hashing a bad multi-GB file
  /// per admission attempt. Non-retryable codes rethrow immediately,
  /// without retry or quarantine.
  std::shared_ptr<const Pipeline> get_or_load(
      const Fingerprint& key,
      const std::function<std::shared_ptr<const Pipeline>()>& load);

  /// The corruption quarantine behind get_or_load (operator override:
  /// release(key) / clear() after replacing a bad file).
  [[nodiscard]] fault::Quarantine& quarantine() { return quarantine_; }

  /// Remove one entry (no-op if absent).
  void erase(const Fingerprint& key);

  /// Drop all entries (stat counters survive).
  void clear();

  [[nodiscard]] RegistryStats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity_bytes() const {
    return opt_.capacity_bytes;
  }
  [[nodiscard]] const RegistryOptions& options() const { return opt_; }

  /// The metrics registry backing this cache's series (the one from
  /// RegistryOptions::metrics, or the private one created in its absence).
  [[nodiscard]] const std::shared_ptr<obs::MetricsRegistry>& metrics() const {
    return metrics_;
  }

  /// Diagnostic probe: mincore the mapped bytes of every cached entry and
  /// sum what is physically resident right now. The entry handles are
  /// snapshotted under the lock and probed after it drops — the walk is
  /// O(cached mapped pages) and must neither stall lookups nor race a
  /// concurrent evict into a released mapping. An operator/bench/sampler
  /// observable, not a hot-path call.
  [[nodiscard]] std::size_t resident_mapped_bytes() const;

  /// Residency report as one JSON object — occupancy, budget, locked and
  /// mincore-probed resident bytes, and the headline cache counters. The
  /// registry section of ServeEngine::dump_diagnostics().
  void write_residency_json(std::ostream& os) const;

  /// Paging-governor hook (serve/paging_governor.hpp): release cold mapped
  /// entries' RESIDENCY — not the entries themselves — until the
  /// mincore-probed resident total across the cache is <= `target_bytes`.
  /// Walks coldest-first (LRU tail), skips mlocked entries and anything in
  /// `keep` (pipelines queued requests are about to touch), and runs every
  /// syscall outside mu_ under the same snapshot discipline as
  /// resident_mapped_bytes(). The entries stay cached and re-fault (or are
  /// re-prefetched) on next use. Returns mapped bytes released.
  std::size_t release_cold_residency(
      std::size_t target_bytes,
      const std::vector<const Pipeline*>& keep = {});

  /// Cached mapped-backed entries, coldest (LRU tail) first — the
  /// governor's and diagnostics' residency-walk order. Handles keep their
  /// mappings alive while the caller probes them.
  [[nodiscard]] std::vector<std::shared_ptr<const Pipeline>>
  mapped_entries_coldest_first() const;

  /// Occupancy of the admission sketch (fraction of nonzero counters);
  /// 0 under admit-all. See AdmissionPolicy::occupancy().
  [[nodiscard]] double admission_sketch_occupancy() const;

  /// Register this registry's slow probes (resident mapped bytes, sketch
  /// occupancy) with a background sampler. The sampler must be stopped
  /// before the registry is destroyed.
  void register_probes(obs::PeriodicSampler& sampler);

 private:
  struct Entry {
    Fingerprint key;
    std::uint64_t key_hash = 0;  // policy handle (FingerprintHasher output)
    std::shared_ptr<const Pipeline> pipeline;
    PipelineFootprint footprint;
    std::size_t locked_bytes = 0;  // this entry's share of the mlock budget
    /// Identifies the insert() call whose mlock reservation this is: the
    /// true-up after the syscalls must not adjust a *different* entry that
    /// re-inserted the same key (even the same pipeline) meanwhile.
    std::uint64_t lock_token = 0;
  };
  using LruList = std::list<Entry>;

  /// Residency syscalls owed for a detached entry, run after mu_ drops —
  /// releasing a mapped pipeline is O(its pages) of kernel work and must
  /// never stall concurrent lookups.
  struct Deferred {
    std::shared_ptr<const Pipeline> pipeline;
    std::size_t locked_bytes = 0;
    bool release_mapped = false;
  };

  // Require mu_ held.
  void touch_(LruList::iterator it);
  void detach_(LruList::iterator it, std::vector<Deferred>* out);

  /// Perform the queued residency work; must be called WITHOUT mu_ held.
  void finish_releases_(const std::vector<Deferred>& deferred);

  /// Mirror the byte/entry occupancy fields into their gauges (mu_ held).
  void publish_sizes_();

  /// The cw_registry_* / cw_residency_* instruments, interned once at
  /// construction so the serving paths never touch the metrics registry's
  /// lock again.
  struct Metrics {
    explicit Metrics(obs::MetricsRegistry& m);
    obs::Counter& hits;
    obs::Counter& misses;
    obs::Counter& insertions;
    obs::Counter& evictions;
    obs::Counter& oversize_rejects;
    obs::Counter& admission_rejects;
    obs::Counter& released_evictions;
    obs::Counter& released_bytes;
    obs::Counter& prefaulted_bytes;
    obs::Counter& load_retries;
    obs::Counter& quarantined;
    obs::Counter& quarantine_blocked;
    obs::Gauge& entries;
    obs::Gauge& bytes_used;
    obs::Gauge& mapped_bytes_used;
    obs::Gauge& locked_bytes;
    obs::Gauge& capacity;
    obs::Histogram& warmup_ms;
    obs::Histogram& release_ms;
  };

  const RegistryOptions opt_;
  const std::unique_ptr<AdmissionPolicy> policy_;  // null = admit all
  const std::shared_ptr<obs::MetricsRegistry> metrics_;
  const std::shared_ptr<obs::EventLog> events_;  // null = no events
  Metrics m_;  // binds into *metrics_: keep declared after it
  fault::ErrorCounters errors_;  // cw_errors_total{code=...}, shared series
  /// Negative cache of fingerprints whose loads failed retries-exhausted.
  /// Its own lock, never held together with mu_: a quarantine check must
  /// not serialize behind an eviction, nor vice versa.
  fault::Quarantine quarantine_;
  mutable std::mutex mu_;
  std::uint64_t next_lock_token_ = 0;
  LruList lru_;  // front = most recently used
  std::unordered_map<Fingerprint, LruList::iterator, FingerprintHasher> map_;
  /// Byte occupancy stays a plain field (mu_-guarded): the eviction loop
  /// needs read-modify-write consistency a gauge cannot give. Mirrored into
  /// m_ gauges by publish_sizes_() after every mutation.
  std::size_t bytes_used_ = 0;
  std::size_t mapped_bytes_used_ = 0;
  std::size_t locked_bytes_ = 0;
};

}  // namespace cw::serve
