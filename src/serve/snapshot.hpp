// Snapshot persistence for prepared matrices — the serving subsystem's
// on-disk format.
//
// The paper's economic argument is preprocess-once / multiply-many (§4.5):
// reordering + clustering overhead amortizes across repeated SpGEMMs.
// Snapshots extend that amortization across *processes*: a `Pipeline`
// prepared by an offline job can be saved, shipped, and reloaded by any
// number of serving processes without redoing the preprocessing.
//
// Format (version 3): a fixed little-header (magic, version, endianness tag,
// scalar-type widths, payload kind, dims), then one v3 *record* per logical
// object: a control block holding every scalar/section of the payload with
// bulk arrays replaced by references into a segment directory (absolute
// 64-byte-aligned file offsets + element counts/widths + per-segment FNV-1a
// digests), followed by the raw arrays themselves. Two load paths:
//
//   * zero-copy (load_*_mmap, and load_*_file for v3 files): the file is
//     mmapped and the loaded object's arrays BORROW the mapping
//     (ArraySegment, common/array_segment.hpp) — load time is O(header +
//     directory) instead of O(nnz), and N serving processes share one
//     page-cache copy. The control block's digest is always verified;
//     per-segment digests and the O(nnz) structural checks are on-demand
//     (MmapLoadOptions) because reading every byte would defeat the point.
//     Use the flags when the file crossed a trust boundary.
//   * copying (the istream loads, and load_*_file for v1/v2 files): every
//     array is read into owned memory with per-segment digests and full
//     structural validation — the v2 behaviour, kept for archival files,
//     cross-checking, and platforms without mmap.
//
// Version-2 files (inline checksummed stream) and version-1 files (no
// checksums, pipelines always symmetric-mode) still load through the copying
// path; save() can still emit v2 (SaveOptions) for fleets mid-upgrade. The
// format is not interchangeable between machines of different endianness
// (by design — serving fleets are homogeneous; a portable export can
// convert offline).
#pragma once

#include <iosfwd>
#include <string>

#include "core/pipeline.hpp"
#include "matrix/csr.hpp"
#include "matrix/csr_cluster.hpp"
#include "serve/snapshot_io.hpp"

namespace cw::serve {

/// Current snapshot format version. Bump on any layout change; load accepts
/// this and every older version it can still parse (currently 1).
inline constexpr std::uint32_t kSnapshotVersion = 3;

/// Oldest version load still understands.
inline constexpr std::uint32_t kMinSnapshotVersion = 1;

/// Oldest version save can still emit (for fleets mid-upgrade).
inline constexpr std::uint32_t kMinWritableSnapshotVersion = 2;

/// Fixed header size; the first record of a v3 file starts at the next
/// 64-byte boundary (kFirstRecordOffset).
inline constexpr std::uint64_t kHeaderBytes =
    8 + 4 + 4 + 4 + 4 + 2 * sizeof(index_t) + sizeof(offset_t);
inline constexpr std::uint64_t kFirstRecordOffset = 64;

struct SaveOptions {
  /// Format version to emit: kSnapshotVersion (default) or 2.
  std::uint32_t version = kSnapshotVersion;
};

struct MmapLoadOptions {
  /// Verify every segment's FNV-1a digest (reads the whole mapping once).
  bool verify_checksums = false;
  /// Run the full O(nnz) structural validation the copying path always runs.
  bool deep_validate = false;
};

/// What a snapshot file contains.
enum class SnapshotKind : std::uint32_t {
  kCsr = 1,
  kClustering = 2,
  kCsrCluster = 3,
  kPipeline = 4,
  /// Row-block sharded pipeline: a shard manifest followed by one embedded
  /// pipeline record per shard (written/read by shard/snapshot.hpp).
  kShardedPipeline = 5,
};

const char* to_string(SnapshotKind kind);

/// Header summary readable without parsing the payload (`cwtool snapshot
/// info`). For kClustering, nrows is the row count and nnz the cluster count.
struct SnapshotInfo {
  std::uint32_t version = 0;
  SnapshotKind kind = SnapshotKind::kCsr;
  index_t nrows = 0;
  index_t ncols = 0;
  offset_t nnz = 0;
};

// --- stream API -------------------------------------------------------------

void save(std::ostream& out, const Csr& a, const SaveOptions& opt = {});
void save(std::ostream& out, const Clustering& clustering,
          const SaveOptions& opt = {});
void save(std::ostream& out, const CsrCluster& clustered,
          const SaveOptions& opt = {});
void save(std::ostream& out, const Pipeline& pipeline,
          const SaveOptions& opt = {});

// Stream loads copy every array and fully verify (all format versions).
Csr load_csr(std::istream& in);
Clustering load_clustering(std::istream& in);
CsrCluster load_csr_cluster(std::istream& in);
Pipeline load_pipeline(std::istream& in);

/// Read and verify only the header, leaving the stream positioned at the
/// payload.
SnapshotInfo read_info(std::istream& in);

/// Header summary parsed from a mapped file.
SnapshotInfo read_info_region(const MmapRegion& region);

// --- file API ---------------------------------------------------------------

void save_csr_file(const std::string& path, const Csr& a,
                   const SaveOptions& opt = {});
void save_pipeline_file(const std::string& path, const Pipeline& pipeline,
                        const SaveOptions& opt = {});

/// Zero-copy loads: mmap `path` (format v3 required) and return an object
/// whose arrays borrow the mapping. O(header + directory) work.
Csr load_csr_mmap(const std::string& path, const MmapLoadOptions& opt = {});
Pipeline load_pipeline_mmap(const std::string& path,
                            const MmapLoadOptions& opt = {});

/// Auto-dispatching loads: v3 files take the zero-copy mmap path (with
/// `opt`), v1/v2 files the fully-verified copying path.
Csr load_csr_file(const std::string& path, const MmapLoadOptions& opt = {});
Pipeline load_pipeline_file(const std::string& path,
                            const MmapLoadOptions& opt = {});

/// Header summary of a snapshot file (any kind).
SnapshotInfo read_info_file(const std::string& path);

/// Offline format conversion: read `in_path` through the fully-verified
/// copying path (any readable version) and rewrite it at `out_path` in
/// `opt.version` — v2→v3 upgrades a fleet's artifacts to zero-copy loading
/// without re-preprocessing; v3→v2 is the rollback path. Conversions
/// round-trip bit-identically (converting back reproduces the original file
/// byte for byte). Handles every single-record kind; sharded files go
/// through shard::convert_snapshot_file. Returns the input's header info.
SnapshotInfo convert_snapshot_file(const std::string& in_path,
                                   const std::string& out_path,
                                   const SaveOptions& opt = {});

// --- record building blocks (shard/snapshot.cpp) ----------------------------

namespace detail {

/// Write the fixed header (not covered by any payload checksum).
void write_header(io::Writer& w, SnapshotKind kind, index_t nrows,
                  index_t ncols, offset_t nnz, std::uint32_t version);

/// Write/read one pipeline payload (options, stats, mode, order, matrix,
/// clustering, clustered format) WITHOUT the closing checksum — the caller
/// decides the record boundary.
void write_pipeline_payload(io::Writer& w, const Pipeline& pipeline);
Pipeline read_pipeline_payload(io::Reader& r);

/// Write/read one OPTS section (the sharded manifest stores the overall
/// pipeline options with the same encoding as a pipeline record).
void write_pipeline_options(io::Writer& w, const PipelineOptions& options);
PipelineOptions read_pipeline_options(io::Reader& r);

/// Reject unsupported SaveOptions versions.
void check_save_version(std::uint32_t version);

}  // namespace detail

}  // namespace cw::serve
