// Snapshot persistence for prepared matrices — the serving subsystem's
// on-disk format.
//
// The paper's economic argument is preprocess-once / multiply-many (§4.5):
// reordering + clustering overhead amortizes across repeated SpGEMMs.
// Snapshots extend that amortization across *processes*: a `Pipeline`
// prepared by an offline job can be saved, shipped, and reloaded by any
// number of serving processes without redoing the preprocessing.
//
// Format: a fixed little-header (magic, version, endianness tag, scalar-type
// widths, payload kind, dims) followed by tagged sections of raw
// fixed-width arrays. Loading verifies magic/version/endianness/widths up
// front, bounds-checks every index/pointer array before it is dereferenced,
// and runs the target type's validate() on the reassembled object, so a
// truncated file or corrupted *structure* fails loudly with cw::Error
// instead of producing wrong numerics. Corruption of free-form numeric
// fields (stored values, timing stats) has no invariant to violate and is
// not detected — a payload checksum is a ROADMAP item. The format is not
// interchangeable between machines of different endianness (by design —
// serving fleets are homogeneous; a portable export can convert offline).
#pragma once

#include <iosfwd>
#include <string>

#include "core/pipeline.hpp"
#include "matrix/csr.hpp"
#include "matrix/csr_cluster.hpp"

namespace cw::serve {

/// Current snapshot format version. Bump on any layout change; load rejects
/// mismatches.
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// What a snapshot file contains.
enum class SnapshotKind : std::uint32_t {
  kCsr = 1,
  kClustering = 2,
  kCsrCluster = 3,
  kPipeline = 4,
};

const char* to_string(SnapshotKind kind);

/// Header summary readable without parsing the payload (`cwtool snapshot
/// info`). For kClustering, nrows is the row count and nnz the cluster count.
struct SnapshotInfo {
  std::uint32_t version = 0;
  SnapshotKind kind = SnapshotKind::kCsr;
  index_t nrows = 0;
  index_t ncols = 0;
  offset_t nnz = 0;
};

// --- stream API -------------------------------------------------------------

void save(std::ostream& out, const Csr& a);
void save(std::ostream& out, const Clustering& clustering);
void save(std::ostream& out, const CsrCluster& clustered);
void save(std::ostream& out, const Pipeline& pipeline);

Csr load_csr(std::istream& in);
Clustering load_clustering(std::istream& in);
CsrCluster load_csr_cluster(std::istream& in);
Pipeline load_pipeline(std::istream& in);

/// Read and verify only the header, leaving the stream positioned at the
/// payload.
SnapshotInfo read_info(std::istream& in);

// --- file API ---------------------------------------------------------------

void save_csr_file(const std::string& path, const Csr& a);
void save_pipeline_file(const std::string& path, const Pipeline& pipeline);

Csr load_csr_file(const std::string& path);
Pipeline load_pipeline_file(const std::string& path);

/// Header summary of a snapshot file (any kind).
SnapshotInfo read_info_file(const std::string& path);

}  // namespace cw::serve
