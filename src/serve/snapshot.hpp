// Snapshot persistence for prepared matrices — the serving subsystem's
// on-disk format.
//
// The paper's economic argument is preprocess-once / multiply-many (§4.5):
// reordering + clustering overhead amortizes across repeated SpGEMMs.
// Snapshots extend that amortization across *processes*: a `Pipeline`
// prepared by an offline job can be saved, shipped, and reloaded by any
// number of serving processes without redoing the preprocessing.
//
// Format (version 2): a fixed little-header (magic, version, endianness tag,
// scalar-type widths, payload kind, dims) followed by tagged sections of raw
// fixed-width arrays, closed by an FNV-1a checksum over the payload bytes
// (snapshot_io.hpp). Loading verifies magic/version/endianness/widths up
// front, bounds-checks every index/pointer array before it is dereferenced,
// runs the target type's validate() on the reassembled object, and compares
// the payload digest — so a truncated file, corrupted structure, or flipped
// bits inside free-form numerics (stored values, timing stats) all fail
// loudly with cw::Error instead of producing wrong numbers. Version-1 files
// (no checksums, pipelines always symmetric-mode) still load. The format is
// not interchangeable between machines of different endianness (by design —
// serving fleets are homogeneous; a portable export can convert offline).
#pragma once

#include <iosfwd>
#include <string>

#include "core/pipeline.hpp"
#include "matrix/csr.hpp"
#include "matrix/csr_cluster.hpp"
#include "serve/snapshot_io.hpp"

namespace cw::serve {

/// Current snapshot format version. Bump on any layout change; load accepts
/// this and every older version it can still parse (currently 1).
inline constexpr std::uint32_t kSnapshotVersion = 2;

/// Oldest version load still understands.
inline constexpr std::uint32_t kMinSnapshotVersion = 1;

/// What a snapshot file contains.
enum class SnapshotKind : std::uint32_t {
  kCsr = 1,
  kClustering = 2,
  kCsrCluster = 3,
  kPipeline = 4,
  /// Row-block sharded pipeline: a shard manifest followed by one embedded
  /// pipeline record per shard (written/read by shard/snapshot.hpp).
  kShardedPipeline = 5,
};

const char* to_string(SnapshotKind kind);

/// Header summary readable without parsing the payload (`cwtool snapshot
/// info`). For kClustering, nrows is the row count and nnz the cluster count.
struct SnapshotInfo {
  std::uint32_t version = 0;
  SnapshotKind kind = SnapshotKind::kCsr;
  index_t nrows = 0;
  index_t ncols = 0;
  offset_t nnz = 0;
};

// --- stream API -------------------------------------------------------------

void save(std::ostream& out, const Csr& a);
void save(std::ostream& out, const Clustering& clustering);
void save(std::ostream& out, const CsrCluster& clustered);
void save(std::ostream& out, const Pipeline& pipeline);

Csr load_csr(std::istream& in);
Clustering load_clustering(std::istream& in);
CsrCluster load_csr_cluster(std::istream& in);
Pipeline load_pipeline(std::istream& in);

/// Read and verify only the header, leaving the stream positioned at the
/// payload.
SnapshotInfo read_info(std::istream& in);

// --- file API ---------------------------------------------------------------

void save_csr_file(const std::string& path, const Csr& a);
void save_pipeline_file(const std::string& path, const Pipeline& pipeline);

Csr load_csr_file(const std::string& path);
Pipeline load_pipeline_file(const std::string& path);

/// Header summary of a snapshot file (any kind).
SnapshotInfo read_info_file(const std::string& path);

// --- record building blocks (shard/snapshot.cpp) ----------------------------

namespace detail {

/// Write the fixed header (not covered by any payload checksum).
void write_header(io::Writer& w, SnapshotKind kind, index_t nrows,
                  index_t ncols, offset_t nnz);

/// Write/read one pipeline payload (options, stats, mode, order, matrix,
/// clustering, clustered format) WITHOUT the closing checksum — the caller
/// decides the record boundary.
void write_pipeline_payload(io::Writer& w, const Pipeline& pipeline);
Pipeline read_pipeline_payload(io::Reader& r);

/// Write/read one OPTS section (the sharded manifest stores the overall
/// pipeline options with the same encoding as a pipeline record).
void write_pipeline_options(io::Writer& w, const PipelineOptions& options);
PipelineOptions read_pipeline_options(io::Reader& r);

}  // namespace detail

}  // namespace cw::serve
