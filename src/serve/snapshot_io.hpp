// Low-level snapshot stream primitives shared by the serve and shard
// snapshot records (serve/snapshot.cpp, shard/snapshot.cpp).
//
// Writer and Reader wrap a binary stream and fold every payload byte that
// passes through them into a running FNV-1a digest. A record writer calls
// checksum() after its payload; the emitted CSUM section stores the digest
// and resets the running hash, so one stream can carry several
// independently-verifiable records (the sharded snapshot stores one per
// shard). Readers mirror the fold on the bytes they consume and compare in
// checksum(); version-1 streams predate checksums, so a Reader constructed
// with version 1 skips both the fold comparison and the CSUM section.
//
// The digest covers payload bytes only — the fixed header is fully
// cross-checked field-by-field by read_info and needs no hash.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

#include "common/error.hpp"

namespace cw::serve::io {

inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Section tag of the checksum record that closes a checksummed payload.
inline constexpr std::uint32_t kChecksumTag = 0x4353554D;  // "CSUM"

inline std::uint64_t fnv1a(std::uint64_t digest, const void* data,
                           std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    digest ^= bytes[i];
    digest *= kFnvPrime;
  }
  return digest;
}

class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) {}

  void bytes(const void* data, std::size_t n) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(n));
    if (!out_) throw Error("snapshot: write failed");
    digest_ = fnv1a(digest_, data, n);
  }

  template <typename T>
  void pod(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    bytes(&v, sizeof(T));
  }

  template <typename T>
  void vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    pod<std::uint64_t>(v.size());
    if (!v.empty()) bytes(v.data(), v.size() * sizeof(T));
  }

  void section(std::uint32_t tag) { pod<std::uint32_t>(tag); }

  /// Emit the CSUM section for everything written since construction or the
  /// previous checksum() and reset the running digest. The CSUM bytes
  /// themselves are excluded from any digest.
  void checksum() {
    const std::uint64_t d = digest_;
    raw_pod<std::uint32_t>(kChecksumTag);
    raw_pod<std::uint64_t>(d);
    digest_ = kFnvOffsetBasis;
  }

  /// Write without folding into the digest (header bytes).
  void raw_bytes(const void* data, std::size_t n) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(n));
    if (!out_) throw Error("snapshot: write failed");
  }

  template <typename T>
  void raw_pod(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    raw_bytes(&v, sizeof(T));
  }

 private:
  std::ostream& out_;
  std::uint64_t digest_ = kFnvOffsetBasis;
};

class Reader {
 public:
  Reader(std::istream& in, std::uint32_t version)
      : in_(in), version_(version) {}

  [[nodiscard]] std::uint32_t version() const { return version_; }
  [[nodiscard]] bool checksummed() const { return version_ >= 2; }

  void bytes(void* data, std::size_t n) {
    raw_bytes(data, n);
    digest_ = fnv1a(digest_, data, n);
  }

  template <typename T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    bytes(&v, sizeof(T));
    return v;
  }

  template <typename T>
  std::vector<T> vec() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto count = pod<std::uint64_t>();
    // Guard against allocating absurd sizes from a corrupted count field.
    if (count > (std::uint64_t{1} << 40) / sizeof(T))
      throw Error("snapshot: implausible array length (corrupted file?)");
    std::vector<T> v(static_cast<std::size_t>(count));
    if (count > 0) bytes(v.data(), v.size() * sizeof(T));
    return v;
  }

  void expect_section(std::uint32_t tag, const char* name) {
    const auto got = pod<std::uint32_t>();
    if (got != tag)
      throw Error(std::string("snapshot: expected section ") + name);
  }

  /// Verify the CSUM section closing the record read since construction or
  /// the previous checksum(), then reset the running digest. No-op on
  /// checksum-less version-1 streams.
  void checksum(const char* what) {
    if (!checksummed()) return;
    const std::uint64_t computed = digest_;
    std::uint32_t tag;
    raw_bytes(&tag, sizeof(tag));
    if (tag != kChecksumTag)
      throw Error(std::string("snapshot: expected checksum after ") + what);
    std::uint64_t stored;
    raw_bytes(&stored, sizeof(stored));
    if (stored != computed)
      throw Error(std::string("snapshot: checksum mismatch in ") + what +
                  " payload (stored bits do not match their digest — "
                  "corrupted file?)");
    digest_ = kFnvOffsetBasis;
  }

  /// Read without folding into the digest (CSUM records).
  void raw_bytes(void* data, std::size_t n) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (static_cast<std::size_t>(in_.gcount()) != n)
      throw Error("snapshot: truncated file");
  }

 private:
  std::istream& in_;
  std::uint32_t version_;
  std::uint64_t digest_ = kFnvOffsetBasis;
};

}  // namespace cw::serve::io
