// Low-level snapshot stream primitives shared by the serve and shard
// snapshot records (serve/snapshot.cpp, shard/snapshot.cpp).
//
// Two record layouts share one payload vocabulary:
//
//   * v1/v2 — a single byte stream: sections, PODs and length-prefixed
//     arrays interleaved, closed by an FNV-1a digest over the payload bytes
//     (v2; v1 predates checksums). Loading copies every array.
//   * v3 — a *control block* (the same section/POD metadata, but every bulk
//     array replaced by a segment reference) followed by a segment directory
//     (absolute file offset, element count/width, per-segment FNV-1a digest)
//     and the raw arrays themselves at 64-byte-aligned file offsets. The
//     control block + directory carry their own always-verified digest;
//     segment digests are verified on demand (forced full-file reads would
//     defeat zero-copy loading). Loading can either mmap the file and point
//     ArraySegments straight at it, or stream-copy the segments (with full
//     verification) when no mapping is possible or wanted.
//
// Writer and Reader speak both: payload code calls seg() for bulk arrays and
// pod()/section() for scalars, and the same functions serialize v2 inline
// streams, v3 control blocks, and parse all of v1/v2/v3. Checksums are
// computed with the streaming Fnv1a hasher below — the digest folds over
// bytes as they pass through; no payload is ever staged in a buffer to be
// hashed (peak save memory stays O(1) regardless of matrix size).
#pragma once

#include <cstdint>
#include <cstring>
#include <istream>
#include <limits>
#include <memory>
#include <ostream>
#include <span>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "common/array_segment.hpp"
#include "common/error.hpp"
#include "common/mmap_region.hpp"
#include "fault/injector.hpp"
#include "fault/status.hpp"

namespace cw::serve::io {

inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Section tag of the checksum record that closes a checksummed payload
/// (v2 streams) or a v3 control block.
inline constexpr std::uint32_t kChecksumTag = 0x4353554D;  // "CSUM"

/// Every v3 segment starts at a multiple of this within the file, so a
/// mapped pointer is safely aligned for any scalar the library stores (and
/// for cache-line-friendly kernel access).
inline constexpr std::uint64_t kSegmentAlignment = 64;

/// Sanity caps applied before trusting length fields from a file.
inline constexpr std::uint64_t kMaxMetaBytes = std::uint64_t{1} << 22;
inline constexpr std::uint64_t kMaxSegments = std::uint64_t{1} << 20;
inline constexpr std::uint64_t kMaxSegmentBytes = std::uint64_t{1} << 40;

inline std::uint64_t fnv1a(std::uint64_t digest, const void* data,
                           std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    digest ^= bytes[i];
    digest *= kFnvPrime;
  }
  return digest;
}

/// Streaming FNV-1a hasher: fold bytes as they are produced/consumed, read
/// the digest at a record boundary, reset, repeat. The single checksum
/// engine behind Writer, Reader and the v3 record builder/parsers.
class Fnv1a {
 public:
  void update(const void* data, std::size_t n) {
    digest_ = fnv1a(digest_, data, n);
  }
  [[nodiscard]] std::uint64_t digest() const { return digest_; }
  void reset() { digest_ = kFnvOffsetBasis; }

 private:
  std::uint64_t digest_ = kFnvOffsetBasis;
};

inline std::uint64_t align_up(std::uint64_t x, std::uint64_t a) {
  return (x + a - 1) / a * a;
}

/// A bulk array queued for the segment area of a v3 record. Points at live
/// caller memory; valid until the record is emitted.
struct PendingSegment {
  const void* data = nullptr;
  std::uint64_t count = 0;
  std::uint32_t elem_size = 0;
};

/// One v3 segment-directory entry as stored on disk (32 bytes).
struct SegmentEntry {
  std::uint64_t offset = 0;  // absolute file offset, 64-byte aligned; 0 if empty
  std::uint64_t count = 0;   // elements
  std::uint32_t elem_size = 0;
  std::uint32_t reserved = 0;
  std::uint64_t checksum = 0;  // FNV-1a over the segment bytes
  [[nodiscard]] std::uint64_t bytes() const { return count * elem_size; }
};
static_assert(sizeof(SegmentEntry) == 32);

class Writer {
 public:
  /// Inline mode (v1/v2 streams, and v3 control blocks when `sink` is set:
  /// seg() then defers arrays to the sink instead of writing them inline).
  explicit Writer(std::ostream& out, std::vector<PendingSegment>* sink = nullptr)
      : out_(out), sink_(sink) {}

  void bytes(const void* data, std::size_t n) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(n));
    if (!out_) throw Error("snapshot: write failed");
    hash_.update(data, n);
  }

  template <typename T>
  void pod(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    bytes(&v, sizeof(T));
  }

  template <typename T>
  void vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    pod<std::uint64_t>(v.size());
    if (!v.empty()) bytes(v.data(), v.size() * sizeof(T));
  }

  /// Bulk array: inline (count + raw bytes, byte-identical to vec()) when no
  /// sink is attached; otherwise a segment reference into the v3 directory.
  template <typename T>
  void seg(const ArraySegment<T>& v) {
    seg_raw(v.data(), v.size(), sizeof(T));
  }
  template <typename T>
  void seg(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    seg_raw(v.data(), v.size(), sizeof(T));
  }

  void seg_raw(const void* data, std::uint64_t count, std::uint32_t elem_size) {
    if (sink_ == nullptr) {
      pod<std::uint64_t>(count);
      if (count > 0) bytes(data, static_cast<std::size_t>(count) * elem_size);
      return;
    }
    pod<std::uint64_t>(sink_->size());  // directory index, covered by digest
    sink_->push_back(PendingSegment{data, count, elem_size});
  }

  void section(std::uint32_t tag) { pod<std::uint32_t>(tag); }

  /// Emit the CSUM section for everything written since construction or the
  /// previous checksum() and reset the running digest. The CSUM bytes
  /// themselves are excluded from any digest.
  void checksum() {
    const std::uint64_t d = hash_.digest();
    raw_pod<std::uint32_t>(kChecksumTag);
    raw_pod<std::uint64_t>(d);
    hash_.reset();
  }

  /// Write without folding into the digest (header bytes).
  void raw_bytes(const void* data, std::size_t n) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(n));
    if (!out_) throw Error("snapshot: write failed");
  }

  template <typename T>
  void raw_pod(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    raw_bytes(&v, sizeof(T));
  }

  void raw_zeros(std::size_t n) {
    static const char zeros[64] = {};
    while (n > 0) {
      const std::size_t take = n < sizeof(zeros) ? n : sizeof(zeros);
      raw_bytes(zeros, take);
      n -= take;
    }
  }

 private:
  std::ostream& out_;
  std::vector<PendingSegment>* sink_;
  Fnv1a hash_;
};

// --- segment sources --------------------------------------------------------

/// Resolved segment directory of one v3 record, backed either by a mapped
/// region (zero-copy: get() returns borrowed ArraySegments pointing into the
/// file) or by buffers copied off a stream (get() returns owned segments).
class SegmentTable {
 public:
  SegmentTable() = default;

  static SegmentTable mapped(std::vector<SegmentEntry> entries,
                             std::shared_ptr<const MmapRegion> region) {
    SegmentTable t;
    t.entries_ = std::move(entries);
    t.region_ = std::move(region);
    return t;
  }

  static SegmentTable buffered(std::vector<SegmentEntry> entries,
                               std::vector<std::string> buffers) {
    SegmentTable t;
    t.entries_ = std::move(entries);
    t.buffers_ = std::move(buffers);
    return t;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::vector<SegmentEntry>& entries() const {
    return entries_;
  }

  /// Verify every segment's stored digest against its bytes — the on-demand
  /// full check for mapped tables. Buffered tables are verified by
  /// construction (read_v3_record checks each segment while reading), so
  /// this is a no-op for them.
  void verify_checksums() const {
    if (region_ == nullptr) return;
    fault::inject("snapshot.checksum", fault::ErrorCode::kCorruptSnapshot);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const SegmentEntry& e = entries_[i];
      if (e.count == 0) continue;
      const void* p = region_->at(e.offset, e.bytes());
      if (fnv1a(kFnvOffsetBasis, p, static_cast<std::size_t>(e.bytes())) !=
          e.checksum)
        throw fault::StatusError(
            fault::ErrorCode::kCorruptSnapshot,
            "snapshot: checksum mismatch in segment " + std::to_string(i) +
                " (stored bits do not match their digest — corrupted file?)");
    }
  }

  template <typename T>
  [[nodiscard]] ArraySegment<T> get(std::uint64_t index) const {
    if (index >= entries_.size())
      throw Error("snapshot: segment reference out of range");
    const SegmentEntry& e = entries_[static_cast<std::size_t>(index)];
    if (e.elem_size != sizeof(T))
      throw Error("snapshot: segment element width does not match its use");
    if (e.count == 0) return {};
    const auto count = static_cast<std::size_t>(e.count);
    if (region_) {
      const std::byte* p = region_->at(e.offset, e.bytes());
      return ArraySegment<T>::borrowed(reinterpret_cast<const T*>(p), count,
                                       region_);
    }
    std::vector<T> v(count);
    std::memcpy(v.data(), buffers_[static_cast<std::size_t>(index)].data(),
                count * sizeof(T));
    return ArraySegment<T>(std::move(v));
  }

 private:
  std::vector<SegmentEntry> entries_;
  std::shared_ptr<const MmapRegion> region_;  // mapped mode
  std::vector<std::string> buffers_;          // buffered mode (per entry)
};

class Reader {
 public:
  /// Stream source (v1/v2 payloads, and raw header reads).
  Reader(std::istream& in, std::uint32_t version)
      : in_(&in), version_(version) {}

  /// Memory source over a v3 control block, with the record's segment table
  /// attached; seg() resolves directory references through it.
  /// `deep_validate` tells payload readers whether to run the O(nnz)
  /// structural checks (the copying path always does; the mmap path opts in).
  Reader(std::span<const std::byte> meta, std::uint32_t version,
         const SegmentTable* segments, bool deep_validate)
      : mem_(meta.data()),
        mem_size_(meta.size()),
        version_(version),
        segments_(segments),
        deep_validate_(deep_validate) {}

  [[nodiscard]] std::uint32_t version() const { return version_; }
  [[nodiscard]] bool checksummed() const {
    // v3 records close with per-segment + control digests instead of a
    // trailing payload CSUM; only v2 streams carry the latter.
    return version_ == 2;
  }
  [[nodiscard]] bool deep_validate() const { return deep_validate_; }

  void bytes(void* data, std::size_t n) {
    raw_bytes(data, n);
    hash_.update(data, n);
  }

  template <typename T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    bytes(&v, sizeof(T));
    return v;
  }

  template <typename T>
  std::vector<T> vec() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto count = pod<std::uint64_t>();
    // Guard against allocating absurd sizes from a corrupted count field.
    if (count > kMaxSegmentBytes / sizeof(T))
      throw Error("snapshot: implausible array length (corrupted file?)");
    std::vector<T> v(static_cast<std::size_t>(count));
    if (count > 0) bytes(v.data(), v.size() * sizeof(T));
    return v;
  }

  /// Bulk array: resolves a v3 segment reference when a table is attached;
  /// otherwise reads an inline (v1/v2) array into owned storage.
  template <typename T>
  [[nodiscard]] ArraySegment<T> seg() {
    if (segments_ != nullptr) return segments_->get<T>(pod<std::uint64_t>());
    return ArraySegment<T>(vec<T>());
  }

  void expect_section(std::uint32_t tag, const char* name) {
    const auto got = pod<std::uint32_t>();
    if (got != tag)
      throw Error(std::string("snapshot: expected section ") + name);
  }

  /// Verify the CSUM section closing the record read since construction or
  /// the previous checksum(), then reset the running digest. No-op on
  /// checksum-less version-1 streams and on v3 records (whose digests live
  /// in the control block / directory).
  void checksum(const char* what) {
    if (!checksummed()) return;
    fault::inject("snapshot.checksum", fault::ErrorCode::kCorruptSnapshot);
    const std::uint64_t computed = hash_.digest();
    std::uint32_t tag;
    raw_bytes(&tag, sizeof(tag));
    if (tag != kChecksumTag)
      throw Error(std::string("snapshot: expected checksum after ") + what);
    std::uint64_t stored;
    raw_bytes(&stored, sizeof(stored));
    if (stored != computed)
      throw fault::StatusError(
          fault::ErrorCode::kCorruptSnapshot,
          std::string("snapshot: checksum mismatch in ") + what +
              " payload (stored bits do not match their digest — "
              "corrupted file?)");
    hash_.reset();
  }

  /// Read without folding into the digest (CSUM records, headers).
  void raw_bytes(void* data, std::size_t n) {
    if (in_ != nullptr) {
      in_->read(static_cast<char*>(data), static_cast<std::streamsize>(n));
      if (static_cast<std::size_t>(in_->gcount()) != n)
        throw Error("snapshot: truncated file");
      return;
    }
    if (n > mem_size_ - mem_pos_)
      throw Error("snapshot: truncated file");
    std::memcpy(data, mem_ + mem_pos_, n);
    mem_pos_ += n;
  }

 private:
  std::istream* in_ = nullptr;         // stream source
  const std::byte* mem_ = nullptr;     // memory source
  std::size_t mem_size_ = 0, mem_pos_ = 0;
  std::uint32_t version_;
  const SegmentTable* segments_ = nullptr;
  bool deep_validate_ = true;
  Fnv1a hash_;
};

// --- v3 record building -----------------------------------------------------

/// One v3 record: control block (metadata with segment references + segment
/// directory + digest) followed by the 64-byte-aligned segment area.
///
///   [u64 meta_len][meta][u64 seg_count][seg_count × SegmentEntry]
///   [u32 CSUM tag][u64 control digest]          <- digest over all of the above
///   [padding][segment 0][padding][segment 1]...  <- absolute aligned offsets
///
/// Usage: build_meta() serializes the metadata (collecting segments through
/// the Writer sink), layout(base) assigns absolute file offsets, emit()
/// writes the bytes. layout() is separate so several records can be placed
/// in one file (the sharded snapshot needs every record's extent before the
/// manifest that indexes them is final).
class V3RecordBuilder {
 public:
  template <typename Fn>
  void build_meta(Fn&& fn) {
    std::ostringstream os;
    segments_.clear();
    Writer w(os, &segments_);
    fn(w);
    meta_ = os.str();
    if (meta_.size() > kMaxMetaBytes)
      throw Error("snapshot: record metadata implausibly large");
  }

  [[nodiscard]] std::uint64_t control_bytes() const {
    return 8 + meta_.size() + 8 + segments_.size() * sizeof(SegmentEntry) + 12;
  }

  /// Assign absolute offsets for a record starting at `base`; returns the
  /// offset one past the record's last byte.
  std::uint64_t layout(std::uint64_t base) {
    base_ = base;
    offsets_.assign(segments_.size(), 0);
    std::uint64_t cursor = base + control_bytes();
    end_ = cursor;
    for (std::size_t i = 0; i < segments_.size(); ++i) {
      if (segments_[i].count == 0) continue;  // empty: offset 0 sentinel
      cursor = align_up(cursor, kSegmentAlignment);
      offsets_[i] = cursor;
      cursor += segments_[i].count * segments_[i].elem_size;
      end_ = cursor;
    }
    return end_;
  }

  /// Write the record; the stream must be positioned at the layout() base.
  /// Segment digests are computed here in a streaming pass over the live
  /// arrays (nothing is staged), then the bytes are written.
  void emit(std::ostream& out) const {
    // Directory with per-segment digests.
    std::vector<SegmentEntry> entries(segments_.size());
    for (std::size_t i = 0; i < segments_.size(); ++i) {
      const PendingSegment& s = segments_[i];
      entries[i].offset = offsets_[i];
      entries[i].count = s.count;
      entries[i].elem_size = s.elem_size;
      entries[i].checksum =
          s.count == 0
              ? kFnvOffsetBasis
              : fnv1a(kFnvOffsetBasis, s.data,
                      static_cast<std::size_t>(s.count) * s.elem_size);
    }
    Fnv1a ctrl;
    const auto put = [&](const void* data, std::size_t n) {
      out.write(static_cast<const char*>(data),
                static_cast<std::streamsize>(n));
      if (!out) throw Error("snapshot: write failed");
      ctrl.update(data, n);
    };
    const std::uint64_t meta_len = meta_.size();
    put(&meta_len, sizeof(meta_len));
    put(meta_.data(), meta_.size());
    const std::uint64_t seg_count = entries.size();
    put(&seg_count, sizeof(seg_count));
    if (!entries.empty())
      put(entries.data(), entries.size() * sizeof(SegmentEntry));
    Writer w(out);
    w.raw_pod<std::uint32_t>(kChecksumTag);
    w.raw_pod<std::uint64_t>(ctrl.digest());

    // Segment area.
    std::uint64_t pos = base_ + control_bytes();
    for (std::size_t i = 0; i < segments_.size(); ++i) {
      if (segments_[i].count == 0) continue;
      w.raw_zeros(static_cast<std::size_t>(offsets_[i] - pos));
      const std::uint64_t nbytes = segments_[i].count * segments_[i].elem_size;
      w.raw_bytes(segments_[i].data, static_cast<std::size_t>(nbytes));
      pos = offsets_[i] + nbytes;
    }
  }

 private:
  std::string meta_;
  std::vector<PendingSegment> segments_;
  std::vector<std::uint64_t> offsets_;
  std::uint64_t base_ = 0, end_ = 0;
};

// --- v3 record parsing ------------------------------------------------------

/// Parsed control block of a v3 record inside a mapped region. `meta` points
/// into the mapping; entries are validated (width, alignment, ordering, file
/// bounds) and the control digest is verified — these checks are O(meta +
/// directory), never O(payload).
struct V3Control {
  std::span<const std::byte> meta;
  std::vector<SegmentEntry> entries;
  std::uint64_t end = 0;  // file offset one past the record
};

inline void validate_entries(const std::vector<SegmentEntry>& entries,
                             std::uint64_t ctrl_end, std::uint64_t file_size,
                             std::uint64_t* record_end) {
  std::uint64_t cursor = ctrl_end;
  *record_end = ctrl_end;
  for (const SegmentEntry& e : entries) {
    if (e.elem_size != 1 && e.elem_size != 2 && e.elem_size != 4 &&
        e.elem_size != 8)
      throw Error("snapshot: segment directory holds an unsupported element "
                  "width (corrupted file?)");
    if (e.count == 0) continue;
    if (e.count > kMaxSegmentBytes / e.elem_size)
      throw Error("snapshot: implausible array length (corrupted file?)");
    if (e.offset % kSegmentAlignment != 0)
      throw Error("snapshot: misaligned segment offset (corrupted file?)");
    if (e.offset < cursor)
      throw Error("snapshot: overlapping segments (corrupted file?)");
    if (e.offset > file_size || e.bytes() > file_size - e.offset)
      throw Error("snapshot: truncated file (segment extends past the end)");
    cursor = e.offset + e.bytes();
    *record_end = cursor;
  }
}

/// Parse + verify the control block of the record at `base`. The region must
/// cover the control block; segment extents are checked against the file
/// size (the caller maps them as needed — possibly selectively).
inline V3Control parse_v3_control(const MmapRegion& region,
                                  std::uint64_t base) {
  V3Control c;
  std::uint64_t meta_len;
  std::memcpy(&meta_len, region.at(base, 8), 8);
  if (meta_len > kMaxMetaBytes)
    throw Error("snapshot: record metadata implausibly large (corrupted "
                "file?)");
  const std::byte* meta = region.at(base + 8, meta_len);
  c.meta = {meta, static_cast<std::size_t>(meta_len)};
  std::uint64_t seg_count;
  std::memcpy(&seg_count, region.at(base + 8 + meta_len, 8), 8);
  if (seg_count > kMaxSegments)
    throw Error("snapshot: implausible segment count (corrupted file?)");
  const std::uint64_t dir_off = base + 16 + meta_len;
  const std::uint64_t dir_bytes = seg_count * sizeof(SegmentEntry);
  c.entries.resize(static_cast<std::size_t>(seg_count));
  if (seg_count > 0)
    std::memcpy(c.entries.data(), region.at(dir_off, dir_bytes), dir_bytes);

  // Control digest: everything from meta_len through the directory.
  Fnv1a ctrl;
  ctrl.update(region.at(base, 8 + meta_len), static_cast<std::size_t>(8 + meta_len));
  ctrl.update(region.at(base + 8 + meta_len, 8 + dir_bytes),
              static_cast<std::size_t>(8 + dir_bytes));
  std::uint32_t tag;
  std::memcpy(&tag, region.at(dir_off + dir_bytes, 4), 4);
  std::uint64_t stored;
  std::memcpy(&stored, region.at(dir_off + dir_bytes + 4, 8), 8);
  fault::inject("snapshot.checksum", fault::ErrorCode::kCorruptSnapshot);
  if (tag != kChecksumTag || stored != ctrl.digest())
    throw fault::StatusError(
        fault::ErrorCode::kCorruptSnapshot,
        "snapshot: control checksum mismatch (corrupted file?)");

  const std::uint64_t ctrl_end = dir_off + dir_bytes + 12;
  validate_entries(c.entries, ctrl_end, region.file_size(), &c.end);
  return c;
}

/// One v3 record copied off a stream: buffered segments (each verified
/// against its directory digest while read — the copying path is the fully
/// checked one) plus the metadata bytes.
struct StreamRecord {
  std::string meta;
  SegmentTable table;
  std::uint64_t end = 0;  // absolute offset one past the record
};

inline void stream_skip(std::istream& in, std::uint64_t n) {
  char buf[4096];
  while (n > 0) {
    const auto take = static_cast<std::streamsize>(
        n < sizeof(buf) ? n : sizeof(buf));
    in.read(buf, take);
    if (in.gcount() != take) throw Error("snapshot: truncated file");
    n -= static_cast<std::uint64_t>(take);
  }
}

/// Read the record at absolute offset `base`; the stream is currently at
/// absolute offset `pos` (<= base; the gap is padding).
inline StreamRecord read_v3_record(std::istream& in, std::uint64_t pos,
                                   std::uint64_t base) {
  if (base < pos)
    throw Error("snapshot: records out of order (corrupted file?)");
  stream_skip(in, base - pos);

  Fnv1a ctrl;
  const auto read_ctrl = [&](void* data, std::size_t n) {
    in.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (static_cast<std::size_t>(in.gcount()) != n)
      throw Error("snapshot: truncated file");
    ctrl.update(data, n);
  };

  StreamRecord rec;
  std::uint64_t meta_len;
  read_ctrl(&meta_len, 8);
  if (meta_len > kMaxMetaBytes)
    throw Error("snapshot: record metadata implausibly large (corrupted "
                "file?)");
  rec.meta.resize(static_cast<std::size_t>(meta_len));
  if (meta_len > 0) read_ctrl(rec.meta.data(), rec.meta.size());
  std::uint64_t seg_count;
  read_ctrl(&seg_count, 8);
  if (seg_count > kMaxSegments)
    throw Error("snapshot: implausible segment count (corrupted file?)");
  std::vector<SegmentEntry> entries(static_cast<std::size_t>(seg_count));
  if (seg_count > 0)
    read_ctrl(entries.data(), entries.size() * sizeof(SegmentEntry));
  std::uint32_t tag;
  std::uint64_t stored;
  Reader raw(in, 3);
  raw.raw_bytes(&tag, sizeof(tag));
  raw.raw_bytes(&stored, sizeof(stored));
  fault::inject("snapshot.checksum", fault::ErrorCode::kCorruptSnapshot);
  if (tag != kChecksumTag || stored != ctrl.digest())
    throw fault::StatusError(
        fault::ErrorCode::kCorruptSnapshot,
        "snapshot: control checksum mismatch (corrupted file?)");

  const std::uint64_t ctrl_end =
      base + 16 + meta_len + seg_count * sizeof(SegmentEntry) + 12;
  std::uint64_t record_end = ctrl_end;
  // Stream mode cannot know the file size; segment extents are implicitly
  // checked by the reads below hitting EOF.
  validate_entries(entries, ctrl_end,
                   std::numeric_limits<std::uint64_t>::max(), &record_end);

  std::vector<std::string> buffers(entries.size());
  std::uint64_t cur = ctrl_end;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const SegmentEntry& e = entries[i];
    if (e.count == 0) continue;
    stream_skip(in, e.offset - cur);
    buffers[i].resize(static_cast<std::size_t>(e.bytes()));
    in.read(buffers[i].data(), static_cast<std::streamsize>(e.bytes()));
    if (static_cast<std::uint64_t>(in.gcount()) != e.bytes())
      throw Error("snapshot: truncated file");
    if (fnv1a(kFnvOffsetBasis, buffers[i].data(), buffers[i].size()) !=
        e.checksum)
      throw fault::StatusError(
          fault::ErrorCode::kCorruptSnapshot,
          "snapshot: checksum mismatch in segment " + std::to_string(i) +
              " (stored bits do not match their digest — corrupted file?)");
    cur = e.offset + e.bytes();
  }
  rec.table = SegmentTable::buffered(std::move(entries), std::move(buffers));
  rec.end = record_end;
  return rec;
}

}  // namespace cw::serve::io
