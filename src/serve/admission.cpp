#include "serve/admission.hpp"

#include "common/error.hpp"

namespace cw::serve {

const char* to_string(AdmissionKind kind) {
  switch (kind) {
    case AdmissionKind::kAdmitAll: return "admit-all";
    case AdmissionKind::kTinyLfu: return "tinylfu";
  }
  return "?";
}

AdmissionKind parse_admission_kind(const std::string& name) {
  if (name == "lru" || name == "admit-all") return AdmissionKind::kAdmitAll;
  if (name == "tinylfu") return AdmissionKind::kTinyLfu;
  throw Error("unknown admission policy: " + name +
              " (expected lru or tinylfu)");
}

namespace {

/// splitmix64 finalizer: decorrelates the per-row probe positions from the
/// single FingerprintHasher value the registry feeds in.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

TinyLfuPolicy::TinyLfuPolicy(const TinyLfuOptions& opt) {
  const std::uint32_t log2 =
      opt.counters_log2 < 4 ? 4 : opt.counters_log2 > 28 ? 28 : opt.counters_log2;
  const std::uint64_t counters = std::uint64_t{1} << log2;
  counter_mask_ = counters - 1;
  sample_size_ = opt.sample_size > 0 ? opt.sample_size : counters * 8;
  table_.assign(kDepth * (counters / 16), 0);  // 16 4-bit counters per word
  doorkeeper_.assign((counters + 63) / 64, 0);  // round up: log2 < 6 is legal
}

std::size_t TinyLfuPolicy::nibble_index_(std::uint32_t row,
                                         std::uint64_t key_hash) const {
  return static_cast<std::size_t>(mix64(key_hash + row * 0xC2B2AE3D27D4EB4Full) &
                                  counter_mask_);
}

std::uint32_t TinyLfuPolicy::sketch_min_(std::uint64_t key_hash) const {
  std::uint32_t freq = kMaxCount;
  const std::size_t words_per_row = counter_mask_ / 16 + 1;
  for (std::uint32_t row = 0; row < kDepth; ++row) {
    const std::size_t idx = nibble_index_(row, key_hash);
    const std::uint64_t word = table_[row * words_per_row + idx / 16];
    const auto count =
        static_cast<std::uint32_t>((word >> (4 * (idx % 16))) & 0xF);
    if (count < freq) freq = count;
  }
  return freq;
}

void TinyLfuPolicy::record_access(std::uint64_t key_hash) {
  // Doorkeeper: the first sighting of a key sets one bloom bit and stays out
  // of the sketch, so the long tail of once-seen keys (the scan flood
  // itself) cannot dilute the counters that track genuinely hot keys.
  const std::size_t bit =
      static_cast<std::size_t>(mix64(key_hash) & counter_mask_);
  const std::uint64_t mask = std::uint64_t{1} << (bit % 64);
  if ((doorkeeper_[bit / 64] & mask) == 0) {
    doorkeeper_[bit / 64] |= mask;
  } else {
    // Conservative-update count-min: only bump the minimal counters, which
    // tightens the estimate under hash collisions.
    const std::uint32_t current = sketch_min_(key_hash);
    if (current < kMaxCount) {
      const std::size_t words_per_row = counter_mask_ / 16 + 1;
      for (std::uint32_t row = 0; row < kDepth; ++row) {
        const std::size_t idx = nibble_index_(row, key_hash);
        std::uint64_t& word = table_[row * words_per_row + idx / 16];
        const std::uint32_t shift = 4 * (idx % 16);
        const auto count = static_cast<std::uint32_t>((word >> shift) & 0xF);
        if (count == current)
          word += std::uint64_t{1} << shift;  // nibble-local, cannot carry
      }
    }
  }
  if (++samples_ >= sample_size_) age_();
}

void TinyLfuPolicy::age_() {
  // Halve every counter in place: shifting the whole word right by one and
  // masking the bit that would leak across each nibble boundary halves all
  // 16 counters at once. Recency matters — a key hot last epoch but silent
  // since must decay below today's hot set.
  for (std::uint64_t& word : table_)
    word = (word >> 1) & 0x7777777777777777ull;
  for (std::uint64_t& word : doorkeeper_) word = 0;
  samples_ = 0;
  ++agings_;
}

std::uint32_t TinyLfuPolicy::estimate(std::uint64_t key_hash) const {
  const std::size_t bit =
      static_cast<std::size_t>(mix64(key_hash) & counter_mask_);
  const std::uint32_t door =
      (doorkeeper_[bit / 64] >> (bit % 64)) & 1 ? 1u : 0u;
  return sketch_min_(key_hash) + door;
}

double TinyLfuPolicy::occupancy() const {
  // Count nonzero nibbles word-by-word: OR each nibble's bits into its low
  // bit, then popcount the low bits — O(words), no per-nibble loop.
  std::uint64_t nonzero = 0;
  for (std::uint64_t word : table_) {
    std::uint64_t any = word | (word >> 1) | (word >> 2) | (word >> 3);
    nonzero += static_cast<std::uint64_t>(
        __builtin_popcountll(any & 0x1111111111111111ull));
  }
  const auto total = static_cast<double>(table_.size() * 16);
  return total > 0 ? static_cast<double>(nonzero) / total : 0.0;
}

bool TinyLfuPolicy::admit_over(std::uint64_t candidate_hash,
                               std::uint64_t victim_hash) {
  // Strictly greater: ties keep the incumbent (it at least proved itself
  // once by being admitted; churn without evidence is pure cost).
  return estimate(candidate_hash) > estimate(victim_hash);
}

std::unique_ptr<AdmissionPolicy> make_admission_policy(
    AdmissionKind kind, const TinyLfuOptions& opt) {
  switch (kind) {
    case AdmissionKind::kAdmitAll: return std::make_unique<AdmitAllPolicy>();
    case AdmissionKind::kTinyLfu: return std::make_unique<TinyLfuPolicy>(opt);
  }
  throw Error("unknown admission policy id");
}

}  // namespace cw::serve
