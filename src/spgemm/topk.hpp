// SpGEMM_TopK (Alg. 3, line 3): similar-row candidate generation.
//
// Conceptually this is the SpGEMM A·Aᵀ with all values reset to 1 — output
// entry (i, j) then counts overlapping nonzero columns of rows i and j. We
// never materialize the full product: per row we accumulate overlap counts in
// a hash accumulator, convert them to exact Jaccard similarity
// |i ∩ j| / |i ∪ j|, and keep only the top-K partners above the threshold.
#pragma once

#include <vector>

#include "matrix/csr.hpp"

namespace cw {

/// A scored candidate pair (i < j) for hierarchical clustering.
struct CandidatePair {
  index_t i = 0;
  index_t j = 0;
  double score = 0.0;  // exact Jaccard similarity of rows i and j
};

struct TopKOptions {
  index_t topk = 7;           // max_cluster_th - 1 (paper default 8-1)
  double jaccard_threshold = 0.3;  // paper default
  /// Columns of A with more than col_cap entries are skipped when expanding
  /// A·Aᵀ — an engineering guard against quadratic blowup on dense columns
  /// (hub columns would otherwise pair every incident row with every other).
  /// Set to 0 to disable (tests do, for exactness).
  index_t col_cap = 256;
};

/// Generate candidate pairs via the A·Aᵀ overlap trick. The result is
/// deduplicated (i < j) and unsorted; Alg. 3 heapifies it.
std::vector<CandidatePair> spgemm_topk(const Csr& a, const TopKOptions& opt);

}  // namespace cw
