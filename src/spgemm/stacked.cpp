#include "spgemm/stacked.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>

#include "common/error.hpp"
#include "simd/dispatch.hpp"

namespace cw {

ColumnStack stack_columns(const std::vector<const Csr*>& bs) {
  CW_CHECK_MSG(!bs.empty(), "stack_columns: empty request list");
  for (const Csr* b : bs)
    CW_CHECK_MSG(b != nullptr, "stack_columns: null request matrix");
  const index_t nrows = bs[0]->nrows();

  ColumnStack out;
  out.offsets.resize(bs.size() + 1);
  out.offsets[0] = 0;
  std::int64_t total_cols = 0;
  offset_t total_nnz = 0;
  for (std::size_t k = 0; k < bs.size(); ++k) {
    CW_CHECK_MSG(bs[k]->nrows() == nrows,
                 "stack_columns: request " << k << " has " << bs[k]->nrows()
                                           << " rows, expected " << nrows);
    total_cols += bs[k]->ncols();
    CW_CHECK_MSG(total_cols <= std::numeric_limits<index_t>::max(),
                 "stack_columns: stacked panel exceeds the index space");
    out.offsets[k + 1] = static_cast<index_t>(total_cols);
    total_nnz += bs[k]->nnz();
  }

  // Row r of the panel concatenates row r of every request in stack order;
  // each request's columns are already sorted and the slices ascend, so the
  // concatenation preserves the CSR sorted-row invariant.
  std::vector<offset_t> row_ptr(static_cast<std::size_t>(nrows) + 1, 0);
  for (const Csr* b : bs)
    for (index_t r = 0; r < nrows; ++r)
      row_ptr[static_cast<std::size_t>(r) + 1] += b->row_nnz(r);
  for (index_t r = 0; r < nrows; ++r)
    row_ptr[static_cast<std::size_t>(r) + 1] +=
        row_ptr[static_cast<std::size_t>(r)];

  // Each (row, request) segment is contiguous in both source and panel, so
  // the fill is one vectorized column-id shift plus one value memcpy per
  // segment instead of an element-wise loop.
  const simd::KernelTable& kern = simd::kernels();
  std::vector<index_t> cols(static_cast<std::size_t>(total_nnz));
  std::vector<value_t> vals(static_cast<std::size_t>(total_nnz));
  for (index_t r = 0; r < nrows; ++r) {
    std::size_t dst = static_cast<std::size_t>(row_ptr[r]);
    for (std::size_t k = 0; k < bs.size(); ++k) {
      const index_t off = out.offsets[k];
      const auto rc = bs[k]->row_cols(r);
      const auto rv = bs[k]->row_vals(r);
      if (rc.empty()) continue;
      kern.shift_i32(cols.data() + dst, rc.data(), off, rc.size());
      std::memcpy(vals.data() + dst, rv.data(), rv.size() * sizeof(value_t));
      dst += rc.size();
    }
  }
  out.panel = Csr(nrows, static_cast<index_t>(total_cols), std::move(row_ptr),
                  std::move(cols), std::move(vals));
  return out;
}

std::vector<Csr> split_columns(const Csr& c,
                               const std::vector<index_t>& offsets) {
  CW_CHECK_MSG(offsets.size() >= 2 && offsets.front() == 0 &&
                   offsets.back() == c.ncols(),
               "split_columns: offsets must cover [0, ncols]");
  const std::size_t num = offsets.size() - 1;
  for (std::size_t k = 0; k < num; ++k)
    CW_CHECK_MSG(offsets[k] <= offsets[k + 1],
                 "split_columns: offsets must be non-decreasing");
  const index_t nrows = c.nrows();

  // Rows are sorted, so a slice's entries are contiguous within a row: find
  // each (row, slice) segment's end by binary search and bucket it as one
  // block — the copy-out below then runs as a vectorized column-id shift
  // plus a value memcpy per segment instead of an element-wise walk.
  std::vector<std::vector<offset_t>> row_ptrs(num);
  for (std::size_t k = 0; k < num; ++k)
    row_ptrs[k].assign(static_cast<std::size_t>(nrows) + 1, 0);
  for (index_t r = 0; r < nrows; ++r) {
    const auto rc = c.row_cols(r);
    std::size_t t = 0, k = 0;
    while (t < rc.size()) {
      while (rc[t] >= offsets[k + 1]) ++k;
      const std::size_t seg_end = static_cast<std::size_t>(
          std::lower_bound(rc.begin() + static_cast<std::ptrdiff_t>(t),
                           rc.end(), offsets[k + 1]) -
          rc.begin());
      row_ptrs[k][static_cast<std::size_t>(r) + 1] +=
          static_cast<offset_t>(seg_end - t);
      t = seg_end;
    }
  }
  std::vector<std::vector<index_t>> cols(num);
  std::vector<std::vector<value_t>> vals(num);
  for (std::size_t k = 0; k < num; ++k) {
    for (index_t r = 0; r < nrows; ++r)
      row_ptrs[k][static_cast<std::size_t>(r) + 1] +=
          row_ptrs[k][static_cast<std::size_t>(r)];
    cols[k].resize(static_cast<std::size_t>(row_ptrs[k].back()));
    vals[k].resize(static_cast<std::size_t>(row_ptrs[k].back()));
  }

  const simd::KernelTable& kern = simd::kernels();
  std::vector<offset_t> cursor(num);
  for (std::size_t k = 0; k < num; ++k) cursor[k] = 0;
  for (index_t r = 0; r < nrows; ++r) {
    const auto rc = c.row_cols(r);
    const auto rv = c.row_vals(r);
    std::size_t t = 0, k = 0;
    while (t < rc.size()) {
      while (rc[t] >= offsets[k + 1]) ++k;
      const std::size_t seg_end = static_cast<std::size_t>(
          std::lower_bound(rc.begin() + static_cast<std::ptrdiff_t>(t),
                           rc.end(), offsets[k + 1]) -
          rc.begin());
      const std::size_t n = seg_end - t;
      const auto dst = static_cast<std::size_t>(cursor[k]);
      cursor[k] += static_cast<offset_t>(n);
      kern.shift_i32(cols[k].data() + dst, rc.data() + t, -offsets[k], n);
      std::memcpy(vals[k].data() + dst, rv.data() + t, n * sizeof(value_t));
      t = seg_end;
    }
  }

  std::vector<Csr> out;
  out.reserve(num);
  for (std::size_t k = 0; k < num; ++k) {
    out.emplace_back(nrows, offsets[k + 1] - offsets[k],
                     std::move(row_ptrs[k]), std::move(cols[k]),
                     std::move(vals[k]));
  }
  return out;
}

std::vector<Csr> stacked_spgemm(const Csr& a, const std::vector<const Csr*>& bs,
                                Accumulator acc, SpgemmStats* stats) {
  if (bs.empty()) return {};
  const ColumnStack stack = stack_columns(bs);
  const Csr c = spgemm(a, stack.panel, acc, stats);
  return split_columns(c, stack.offsets);
}

}  // namespace cw
