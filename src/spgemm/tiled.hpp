// Column-tiled row-wise SpGEMM — the "alternative SpGEMM scheme based on
// tiling" the paper's §5 names as future work for reordering studies.
//
// B's columns are split into tiles of `tile_cols`; the kernel runs one
// row-wise pass per tile, restricted to B entries inside the tile. Each
// pass's accumulator footprint is bounded by the tile width, trading extra
// passes over A for a smaller, cache-resident accumulator — the classic
// locality/work trade-off tiling exposes (and the reason reordering
// interacts with it differently than with the row-wise baseline).
#pragma once

#include "spgemm/spgemm.hpp"

namespace cw {

struct TiledOptions {
  index_t tile_cols = 4096;  // B columns per tile
  Accumulator accumulator = Accumulator::kHash;
};

/// C = A × B, identical output to spgemm(a, b) (pattern and values, up to FP
/// addition order within a tile).
Csr spgemm_tiled(const Csr& a, const Csr& b, const TiledOptions& opt = {});

}  // namespace cw
