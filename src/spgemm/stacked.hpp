// Column-stacked panel multiply — the serving layer's second amortization
// level (after same-A request coalescing): K concurrent requests against one
// prepared A each carry a tall-skinny B, and instead of K kernel launches
// over n×c_k panels, the Bs are gathered column-wise into one n×(Σc_k)
// panel, multiplied once, and the product's column slices scattered back out.
//
// The whole point is bit-identity: every per-request product extracted from
// the stacked multiply must equal the product of an independent multiply,
// bit for bit. That holds because (a) requests occupy disjoint column
// ranges, so no accumulator key is shared across requests — each output
// value is the sum of exactly the same products in exactly the same
// A-traversal order as in the independent multiply; and (b) every
// accumulator combines duplicate keys in insertion order (the sort
// accumulator uses a stable sort for precisely this reason). The randomized
// harness in tests/serve/batch_identity_test.cpp enforces this over the
// shape/option space.
#pragma once

#include <vector>

#include "spgemm/spgemm.hpp"

namespace cw {

/// A column-stacked panel plus the slice boundaries needed to undo it.
struct ColumnStack {
  /// nrows × (Σ ncols_k) panel; row r is the concatenation of every request's
  /// row r with its columns shifted into the request's slice.
  Csr panel;
  /// K+1 non-decreasing column offsets; request k owns columns
  /// [offsets[k], offsets[k+1]) of the panel.
  std::vector<index_t> offsets;
};

/// Gather: stack the Bs column-wise. All must share a row count; column
/// counts are free (0-column requests contribute an empty slice).
ColumnStack stack_columns(const std::vector<const Csr*>& bs);

/// Scatter: split a stacked product (or panel) back into per-slice matrices
/// at `offsets` (K+1 entries covering exactly c's columns). Slice k's
/// columns are rebased to start at 0. Bit-exact inverse of stacking a
/// multiply: split_columns(A×stack(bs)) == {A×b : b in bs}.
std::vector<Csr> split_columns(const Csr& c, const std::vector<index_t>& offsets);

/// One-shot stacked entry point at the kernel level: gather, one SpGEMM
/// launch, scatter. Bit-identical to calling spgemm(a, *b) per request.
std::vector<Csr> stacked_spgemm(const Csr& a, const std::vector<const Csr*>& bs,
                                Accumulator acc = Accumulator::kHash,
                                SpgemmStats* stats = nullptr);

}  // namespace cw
