// Brute-force SpGEMM — ground truth for tests only.
//
// The sparse kernels keep every *structural* output entry, even when values
// cancel to exactly 0. The reference reproduces that: the pattern comes from
// a symbolic pass over patterns, values from dense accumulation.
#pragma once

#include "matrix/csr.hpp"

namespace cw {

/// C = A×B computed via dense pattern + dense values. O(n·m) memory — tests
/// only.
Csr spgemm_reference(const Csr& a, const Csr& b);

}  // namespace cw
