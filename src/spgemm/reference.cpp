#include "spgemm/reference.hpp"

#include "common/error.hpp"
#include "common/prefix_sum.hpp"

namespace cw {

Csr spgemm_reference(const Csr& a, const Csr& b) {
  CW_CHECK(a.ncols() == b.nrows());
  const index_t n = a.nrows();
  const index_t m = b.ncols();

  std::vector<offset_t> counts(static_cast<std::size_t>(n), 0);
  std::vector<std::uint8_t> pattern(static_cast<std::size_t>(m));
  std::vector<value_t> row_vals(static_cast<std::size_t>(m));
  std::vector<offset_t> row_ptr;
  std::vector<index_t> cols;
  std::vector<value_t> vals;
  row_ptr.reserve(static_cast<std::size_t>(n) + 1);
  row_ptr.push_back(0);

  for (index_t i = 0; i < n; ++i) {
    std::fill(pattern.begin(), pattern.end(), 0);
    std::fill(row_vals.begin(), row_vals.end(), 0.0);
    for (offset_t ka = a.row_ptr()[i]; ka < a.row_ptr()[i + 1]; ++ka) {
      const index_t k = a.col_idx()[static_cast<std::size_t>(ka)];
      const value_t aik = a.values()[static_cast<std::size_t>(ka)];
      for (offset_t kb = b.row_ptr()[k]; kb < b.row_ptr()[k + 1]; ++kb) {
        const index_t j = b.col_idx()[static_cast<std::size_t>(kb)];
        pattern[static_cast<std::size_t>(j)] = 1;
        row_vals[static_cast<std::size_t>(j)] +=
            aik * b.values()[static_cast<std::size_t>(kb)];
      }
    }
    for (index_t j = 0; j < m; ++j) {
      if (pattern[static_cast<std::size_t>(j)]) {
        cols.push_back(j);
        vals.push_back(row_vals[static_cast<std::size_t>(j)]);
      }
    }
    row_ptr.push_back(static_cast<offset_t>(cols.size()));
  }
  return Csr(n, m, std::move(row_ptr), std::move(cols), std::move(vals));
}

}  // namespace cw
