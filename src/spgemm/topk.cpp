#include "spgemm/topk.hpp"

#include <algorithm>

#include "accumulator/hash_accumulator.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"

namespace cw {

std::vector<CandidatePair> spgemm_topk(const Csr& a, const TopKOptions& opt) {
  CW_CHECK(opt.topk >= 1);
  const index_t n = a.nrows();
  const Csr at = a.transpose();

  // Per-thread candidate buffers merged at the end.
  std::vector<std::vector<CandidatePair>> per_thread;
#pragma omp parallel
  {
#pragma omp single
    per_thread.resize(static_cast<std::size_t>(
#ifdef _OPENMP
        omp_get_num_threads()
#else
        1
#endif
        ));
  }

#pragma omp parallel
  {
#ifdef _OPENMP
    auto& local = per_thread[static_cast<std::size_t>(omp_get_thread_num())];
#else
    auto& local = per_thread[0];
#endif
    HashAccumulator overlap;
    std::vector<CandidatePair> row_best;
#pragma omp for schedule(dynamic, 64)
    for (index_t i = 0; i < n; ++i) {
      const index_t nnz_i = a.row_nnz(i);
      if (nnz_i == 0) continue;
      overlap.reset();
      // Expand row i of A·Aᵀ: every row j sharing a column k with row i.
      for (offset_t ka = a.row_ptr()[i]; ka < a.row_ptr()[i + 1]; ++ka) {
        const index_t k = a.col_idx()[static_cast<std::size_t>(ka)];
        const offset_t col_len = at.row_ptr()[k + 1] - at.row_ptr()[k];
        if (opt.col_cap > 0 && col_len > opt.col_cap) continue;
        for (offset_t kt = at.row_ptr()[k]; kt < at.row_ptr()[k + 1]; ++kt) {
          const index_t j = at.col_idx()[static_cast<std::size_t>(kt)];
          if (j == i) continue;
          overlap.add(j, 1.0);
        }
      }
      // Score and keep the row's top-K.
      row_best.clear();
      overlap.for_each([&](index_t j, value_t count) {
        const index_t nnz_j = a.row_nnz(j);
        const double inter = count;
        const double uni = static_cast<double>(nnz_i) +
                           static_cast<double>(nnz_j) - inter;
        const double jac = uni > 0 ? inter / uni : 0.0;
        if (jac > opt.jaccard_threshold) {
          row_best.push_back({std::min(i, j), std::max(i, j), jac});
        }
      });
      if (static_cast<index_t>(row_best.size()) > opt.topk) {
        // Ties (common with identical rows) prefer nearby partners: merging
        // neighbours spreads candidates evenly instead of funnelling every
        // row at the same few targets, which the size-capped union would
        // then reject.
        std::nth_element(row_best.begin(), row_best.begin() + opt.topk,
                         row_best.end(), [](const auto& x, const auto& y) {
                           if (x.score != y.score) return x.score > y.score;
                           return x.j - x.i < y.j - y.i;
                         });
        row_best.resize(static_cast<std::size_t>(opt.topk));
      }
      local.insert(local.end(), row_best.begin(), row_best.end());
    }
  }

  // Merge and deduplicate (each pair can appear from both endpoints).
  std::vector<CandidatePair> all;
  std::size_t total = 0;
  for (const auto& v : per_thread) total += v.size();
  all.reserve(total);
  for (auto& v : per_thread) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end(), [](const auto& x, const auto& y) {
    if (x.i != y.i) return x.i < y.i;
    return x.j < y.j;
  });
  all.erase(std::unique(all.begin(), all.end(),
                        [](const auto& x, const auto& y) {
                          return x.i == y.i && x.j == y.j;
                        }),
            all.end());
  return all;
}

}  // namespace cw
