#include "accumulator/dense_accumulator.hpp"
#include "accumulator/hash_accumulator.hpp"
#include "accumulator/sort_accumulator.hpp"
#include "common/error.hpp"
#include "spgemm/spgemm.hpp"

namespace cw {

namespace {

template <typename Acc>
void symbolic_rows(const Csr& a, const Csr& b, std::vector<offset_t>& out,
                   Acc make_acc) {
#pragma omp parallel
  {
    auto acc = make_acc();
#pragma omp for schedule(dynamic, 64)
    for (index_t i = 0; i < a.nrows(); ++i) {
      acc.reset();
      for (offset_t ka = a.row_ptr()[i]; ka < a.row_ptr()[i + 1]; ++ka) {
        const index_t k = a.col_idx()[static_cast<std::size_t>(ka)];
        for (offset_t kb = b.row_ptr()[k]; kb < b.row_ptr()[k + 1]; ++kb) {
          acc.add_symbolic(b.col_idx()[static_cast<std::size_t>(kb)]);
        }
      }
      out[static_cast<std::size_t>(i)] = acc.size();
    }
  }
}

}  // namespace

offset_t spgemm_products(const Csr& a, const Csr& b) {
  CW_CHECK_MSG(a.ncols() == b.nrows(), "dimension mismatch in SpGEMM");
  offset_t products = 0;
#pragma omp parallel for schedule(static) reduction(+ : products)
  for (index_t i = 0; i < a.nrows(); ++i) {
    for (offset_t ka = a.row_ptr()[i]; ka < a.row_ptr()[i + 1]; ++ka) {
      const index_t k = a.col_idx()[static_cast<std::size_t>(ka)];
      products += b.row_ptr()[k + 1] - b.row_ptr()[k];
    }
  }
  return products;
}

std::vector<offset_t> spgemm_symbolic(const Csr& a, const Csr& b,
                                      Accumulator acc) {
  CW_CHECK_MSG(a.ncols() == b.nrows(), "dimension mismatch in SpGEMM");
  std::vector<offset_t> nnz_per_row(static_cast<std::size_t>(a.nrows()), 0);
  switch (acc) {
    case Accumulator::kHash:
      symbolic_rows(a, b, nnz_per_row, [] { return HashAccumulator(); });
      break;
    case Accumulator::kDense:
      symbolic_rows(a, b, nnz_per_row,
                    [&] { return DenseAccumulator(b.ncols()); });
      break;
    case Accumulator::kSort:
      symbolic_rows(a, b, nnz_per_row, [] { return SortAccumulator(); });
      break;
  }
  return nnz_per_row;
}

}  // namespace cw
