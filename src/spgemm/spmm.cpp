#include "spgemm/spmm.hpp"

#include "common/error.hpp"

namespace cw {

Dense spmm(const Csr& a, const Dense& b) {
  CW_CHECK_MSG(a.ncols() == b.nrows(), "dimension mismatch in SpMM");
  const index_t n = a.nrows();
  const index_t m = b.ncols();
  Dense c(n, m);
#pragma omp parallel for schedule(dynamic, 64)
  for (index_t i = 0; i < n; ++i) {
    auto cols = a.row_cols(i);
    auto vals = a.row_vals(i);
    for (std::size_t t = 0; t < cols.size(); ++t) {
      const index_t k = cols[t];
      const value_t aik = vals[t];
      for (index_t j = 0; j < m; ++j) c.at(i, j) += aik * b.at(k, j);
    }
  }
  return c;
}

Csr sddmm(const Csr& s, const Dense& u, const Dense& v) {
  CW_CHECK_MSG(u.nrows() == s.nrows(), "U rows must match S rows");
  CW_CHECK_MSG(v.nrows() == s.ncols(), "V rows must match S cols");
  CW_CHECK_MSG(u.ncols() == v.ncols(), "U/V inner dimensions must match");
  const index_t k = u.ncols();
  std::vector<offset_t> row_ptr = s.row_ptr().to_vector();
  std::vector<index_t> col_idx = s.col_idx().to_vector();
  std::vector<value_t> values(col_idx.size());
#pragma omp parallel for schedule(dynamic, 64)
  for (index_t i = 0; i < s.nrows(); ++i) {
    for (offset_t t = s.row_ptr()[i]; t < s.row_ptr()[i + 1]; ++t) {
      const index_t j = s.col_idx()[static_cast<std::size_t>(t)];
      value_t dot = 0;
      for (index_t d = 0; d < k; ++d) dot += u.at(i, d) * v.at(j, d);
      values[static_cast<std::size_t>(t)] =
          s.values()[static_cast<std::size_t>(t)] * dot;
    }
  }
  return Csr(s.nrows(), s.ncols(), std::move(row_ptr), std::move(col_idx),
             std::move(values));
}

}  // namespace cw
