#include "spgemm/tiled.hpp"

#include <algorithm>

#include "accumulator/hash_accumulator.hpp"
#include "common/error.hpp"
#include "common/prefix_sum.hpp"

namespace cw {

namespace {

/// B restricted to columns [lo, hi): same row structure, entries filtered.
/// Column ids keep their global labels so the output needs no relabeling.
Csr column_slice(const Csr& b, index_t lo, index_t hi) {
  std::vector<offset_t> row_ptr(static_cast<std::size_t>(b.nrows()) + 1, 0);
  std::vector<index_t> cols;
  std::vector<value_t> vals;
  for (index_t r = 0; r < b.nrows(); ++r) {
    auto rc = b.row_cols(r);
    auto rv = b.row_vals(r);
    // Rows are sorted: binary-search the tile's span.
    const auto first = std::lower_bound(rc.begin(), rc.end(), lo) - rc.begin();
    const auto last = std::lower_bound(rc.begin(), rc.end(), hi) - rc.begin();
    for (auto t = first; t < last; ++t) {
      cols.push_back(rc[static_cast<std::size_t>(t)]);
      vals.push_back(rv[static_cast<std::size_t>(t)]);
    }
    row_ptr[static_cast<std::size_t>(r) + 1] = static_cast<offset_t>(cols.size());
  }
  return Csr(b.nrows(), b.ncols(), std::move(row_ptr), std::move(cols),
             std::move(vals));
}

}  // namespace

Csr spgemm_tiled(const Csr& a, const Csr& b, const TiledOptions& opt) {
  CW_CHECK_MSG(a.ncols() == b.nrows(), "dimension mismatch in SpGEMM");
  CW_CHECK(opt.tile_cols >= 1);
  if (b.ncols() <= opt.tile_cols) return spgemm(a, b, opt.accumulator);

  // Per-tile products. Each tile's output occupies a disjoint column range,
  // so per-row concatenation of the tile results is already sorted.
  std::vector<Csr> tiles;
  for (index_t lo = 0; lo < b.ncols(); lo += opt.tile_cols) {
    const index_t hi = std::min<index_t>(b.ncols(), lo + opt.tile_cols);
    const Csr b_tile = column_slice(b, lo, hi);
    tiles.push_back(spgemm(a, b_tile, opt.accumulator));
  }

  // Stitch: row r of C = concat over tiles of row r.
  const index_t n = a.nrows();
  std::vector<offset_t> counts(static_cast<std::size_t>(n), 0);
  for (const Csr& t : tiles)
    for (index_t r = 0; r < n; ++r)
      counts[static_cast<std::size_t>(r)] += t.row_nnz(r);
  std::vector<offset_t> row_ptr = counts_to_pointers(counts);
  std::vector<index_t> cols(static_cast<std::size_t>(row_ptr.back()));
  std::vector<value_t> vals(static_cast<std::size_t>(row_ptr.back()));
  std::vector<offset_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
  for (const Csr& t : tiles) {
    for (index_t r = 0; r < n; ++r) {
      auto rc = t.row_cols(r);
      auto rv = t.row_vals(r);
      offset_t& dst = cursor[static_cast<std::size_t>(r)];
      for (std::size_t u = 0; u < rc.size(); ++u, ++dst) {
        cols[static_cast<std::size_t>(dst)] = rc[u];
        vals[static_cast<std::size_t>(dst)] = rv[u];
      }
    }
  }
  return Csr(n, b.ncols(), std::move(row_ptr), std::move(cols),
             std::move(vals));
}

}  // namespace cw
