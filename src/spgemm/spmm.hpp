// Sparse × dense kernels: SpMM and SDDMM.
//
// The original hierarchical-clustering work (Jiang et al. [32], §1 of the
// paper) targeted exactly these kernels; they are included so the clustered
// format can be exercised on every sparse BLAS-3 shape the paper discusses,
// not just SpGEMM.
#pragma once

#include "matrix/csr.hpp"
#include "matrix/dense.hpp"

namespace cw {

/// C = A × B with sparse A (CSR) and dense row-major B. C is dense
/// nrows(A) × ncols(B).
Dense spmm(const Csr& a, const Dense& b);

/// SDDMM: out(i,j) = s(i,j) · (U·Vᵀ)(i,j) for every stored entry of the
/// sampling matrix S. U is nrows(S) × k, V is ncols(S) × k (both dense,
/// row-major). The result has exactly S's pattern.
Csr sddmm(const Csr& s, const Dense& u, const Dense& v);

}  // namespace cw
