// Row-wise Gustavson SpGEMM (§2.2): the baseline kernel of the paper.
//
// Two-phase execution: a symbolic pass counts each output row's nonzeros
// (so C can be allocated exactly), then the numeric pass computes values.
// Both phases parallelize over rows of A with one reusable accumulator per
// thread.
#pragma once

#include <vector>

#include "matrix/csr.hpp"

namespace cw {

/// Sparse accumulator selection (§2.2 uses the hash table; the others are
/// kept for the ablation benches).
enum class Accumulator { kHash, kDense, kSort };

const char* to_string(Accumulator acc);

/// Optional instrumentation filled by spgemm().
struct SpgemmStats {
  double symbolic_seconds = 0;
  double numeric_seconds = 0;
  offset_t flops = 0;          // 2 × intermediate products
  offset_t output_nnz = 0;
  double compression_ratio = 0;  // intermediate products / output nnz [40]
};

/// Number of intermediate products of A×B (half the conventional flop count).
offset_t spgemm_products(const Csr& a, const Csr& b);

/// Symbolic phase: nnz of every row of C = A×B.
std::vector<offset_t> spgemm_symbolic(const Csr& a, const Csr& b,
                                      Accumulator acc = Accumulator::kHash);

/// C = A × B with exact allocation. Rows of C are sorted.
Csr spgemm(const Csr& a, const Csr& b, Accumulator acc = Accumulator::kHash,
           SpgemmStats* stats = nullptr);

/// Convenience: A².
inline Csr spgemm_square(const Csr& a, Accumulator acc = Accumulator::kHash,
                         SpgemmStats* stats = nullptr) {
  return spgemm(a, a, acc, stats);
}

}  // namespace cw
