#include "spgemm/spgemm.hpp"

#include "accumulator/dense_accumulator.hpp"
#include "accumulator/hash_accumulator.hpp"
#include "accumulator/sort_accumulator.hpp"
#include "common/error.hpp"
#include "common/prefix_sum.hpp"
#include "common/timer.hpp"

namespace cw {

const char* to_string(Accumulator acc) {
  switch (acc) {
    case Accumulator::kHash: return "hash";
    case Accumulator::kDense: return "dense";
    case Accumulator::kSort: return "sort";
  }
  return "?";
}

namespace {

/// Numeric phase: row_ptr of C is already known; each thread fills its rows'
/// column/value segments directly (sorted at extraction).
template <typename MakeAcc>
void numeric_rows(const Csr& a, const Csr& b,
                  const std::vector<offset_t>& c_row_ptr,
                  std::vector<index_t>& c_cols, std::vector<value_t>& c_vals,
                  MakeAcc make_acc) {
#pragma omp parallel
  {
    auto acc = make_acc();
    std::vector<index_t> cols_buf;
    std::vector<value_t> vals_buf;
#pragma omp for schedule(dynamic, 64)
    for (index_t i = 0; i < a.nrows(); ++i) {
      acc.reset();
      for (offset_t ka = a.row_ptr()[i]; ka < a.row_ptr()[i + 1]; ++ka) {
        const index_t k = a.col_idx()[static_cast<std::size_t>(ka)];
        const value_t aik = a.values()[static_cast<std::size_t>(ka)];
        for (offset_t kb = b.row_ptr()[k]; kb < b.row_ptr()[k + 1]; ++kb) {
          acc.add(b.col_idx()[static_cast<std::size_t>(kb)],
                  aik * b.values()[static_cast<std::size_t>(kb)]);
        }
      }
      cols_buf.clear();
      vals_buf.clear();
      acc.extract_sorted(cols_buf, vals_buf);
      CW_DCHECK(static_cast<offset_t>(cols_buf.size()) ==
                c_row_ptr[static_cast<std::size_t>(i) + 1] -
                    c_row_ptr[static_cast<std::size_t>(i)]);
      const offset_t dst = c_row_ptr[static_cast<std::size_t>(i)];
      for (std::size_t t = 0; t < cols_buf.size(); ++t) {
        c_cols[static_cast<std::size_t>(dst) + t] = cols_buf[t];
        c_vals[static_cast<std::size_t>(dst) + t] = vals_buf[t];
      }
    }
  }
}

}  // namespace

Csr spgemm(const Csr& a, const Csr& b, Accumulator acc, SpgemmStats* stats) {
  CW_CHECK_MSG(a.ncols() == b.nrows(), "dimension mismatch in SpGEMM");

  Timer t_sym;
  std::vector<offset_t> counts = spgemm_symbolic(a, b, acc);
  std::vector<offset_t> c_row_ptr = counts_to_pointers(counts);
  const double symbolic_s = t_sym.seconds();

  Timer t_num;
  std::vector<index_t> c_cols(static_cast<std::size_t>(c_row_ptr.back()));
  std::vector<value_t> c_vals(static_cast<std::size_t>(c_row_ptr.back()));
  switch (acc) {
    case Accumulator::kHash:
      numeric_rows(a, b, c_row_ptr, c_cols, c_vals,
                   [] { return HashAccumulator(); });
      break;
    case Accumulator::kDense:
      numeric_rows(a, b, c_row_ptr, c_cols, c_vals,
                   [&] { return DenseAccumulator(b.ncols()); });
      break;
    case Accumulator::kSort:
      numeric_rows(a, b, c_row_ptr, c_cols, c_vals,
                   [] { return SortAccumulator(); });
      break;
  }
  const double numeric_s = t_num.seconds();

  if (stats) {
    stats->symbolic_seconds = symbolic_s;
    stats->numeric_seconds = numeric_s;
    const offset_t products = spgemm_products(a, b);
    stats->flops = 2 * products;
    stats->output_nnz = c_row_ptr.back();
    stats->compression_ratio =
        stats->output_nnz > 0
            ? static_cast<double>(products) / static_cast<double>(stats->output_nnz)
            : 0.0;
  }
  return Csr(a.nrows(), b.ncols(), std::move(c_row_ptr), std::move(c_cols),
             std::move(c_vals));
}

}  // namespace cw
