#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/error.hpp"
#include "common/prefix_sum.hpp"
#include "partition/hypergraph.hpp"

namespace cw {

std::vector<index_t> hp_matching(const Hypergraph& h, const HpOptions& opt,
                                 Rng& rng) {
  std::vector<index_t> match(static_cast<std::size_t>(h.nv), kInvalidIndex);
  std::vector<index_t> visit(static_cast<std::size_t>(h.nv));
  std::iota(visit.begin(), visit.end(), index_t{0});
  shuffle(visit, rng);
  std::unordered_map<index_t, index_t> shared;  // candidate -> #shared nets
  for (index_t v : visit) {
    if (match[static_cast<std::size_t>(v)] != kInvalidIndex) continue;
    shared.clear();
    for (offset_t k = h.vptr[static_cast<std::size_t>(v)];
         k < h.vptr[static_cast<std::size_t>(v) + 1]; ++k) {
      const index_t net = h.vnets[static_cast<std::size_t>(k)];
      const offset_t len = h.nptr[static_cast<std::size_t>(net) + 1] -
                           h.nptr[static_cast<std::size_t>(net)];
      if (len > opt.net_scan_cap) continue;  // hub net: too expensive
      for (offset_t p = h.nptr[static_cast<std::size_t>(net)];
           p < h.nptr[static_cast<std::size_t>(net) + 1]; ++p) {
        const index_t u = h.npins[static_cast<std::size_t>(p)];
        if (u == v || match[static_cast<std::size_t>(u)] != kInvalidIndex)
          continue;
        ++shared[u];
      }
    }
    index_t best = kInvalidIndex, best_count = 0;
    for (const auto& [u, count] : shared) {
      if (count > best_count || (count == best_count && best != kInvalidIndex && u < best)) {
        best_count = count;
        best = u;
      }
    }
    if (best == kInvalidIndex) {
      match[static_cast<std::size_t>(v)] = v;
    } else {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
    }
  }
  return match;
}

Hypergraph hp_contract(const Hypergraph& h, const std::vector<index_t>& match,
                       std::vector<index_t>& coarse_of) {
  coarse_of.assign(static_cast<std::size_t>(h.nv), kInvalidIndex);
  index_t nc = 0;
  for (index_t v = 0; v < h.nv; ++v) {
    if (coarse_of[static_cast<std::size_t>(v)] != kInvalidIndex) continue;
    const index_t u = match[static_cast<std::size_t>(v)];
    coarse_of[static_cast<std::size_t>(v)] = nc;
    if (u != v) coarse_of[static_cast<std::size_t>(u)] = nc;
    ++nc;
  }

  Hypergraph out;
  out.nv = nc;
  out.vw.assign(static_cast<std::size_t>(nc), 0);
  for (index_t v = 0; v < h.nv; ++v)
    out.vw[static_cast<std::size_t>(coarse_of[static_cast<std::size_t>(v)])] +=
        h.vw[static_cast<std::size_t>(v)];

  // Contract nets: map pins to coarse ids, deduplicate, drop nets that end
  // up with a single pin (never cuttable), merge identical nets implicitly by
  // just keeping them (weights add up through the cut metric anyway).
  std::vector<offset_t> keep_ptr{0};
  std::vector<index_t> keep_pins;
  std::vector<index_t> keep_w;
  std::vector<index_t> scratch;
  for (index_t net = 0; net < h.nn; ++net) {
    scratch.clear();
    for (offset_t p = h.nptr[static_cast<std::size_t>(net)];
         p < h.nptr[static_cast<std::size_t>(net) + 1]; ++p) {
      scratch.push_back(
          coarse_of[static_cast<std::size_t>(h.npins[static_cast<std::size_t>(p)])]);
    }
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    if (scratch.size() < 2) continue;
    keep_pins.insert(keep_pins.end(), scratch.begin(), scratch.end());
    keep_ptr.push_back(static_cast<offset_t>(keep_pins.size()));
    keep_w.push_back(h.nw[static_cast<std::size_t>(net)]);
  }
  out.nn = static_cast<index_t>(keep_w.size());
  out.nptr = std::move(keep_ptr);
  out.npins = std::move(keep_pins);
  out.nw = std::move(keep_w);
  out.rebuild_vertex_incidence();
  return out;
}

}  // namespace cw
