// Weighted undirected graph for the multilevel partitioner (METIS
// substitute). Vertices carry weights (folded fine vertices), edges carry
// weights (folded parallel edges). No self loops.
#pragma once

#include <vector>

#include "matrix/csr.hpp"

namespace cw {

struct PGraph {
  index_t nv = 0;
  std::vector<offset_t> xadj;  // size nv+1
  std::vector<index_t> adj;    // neighbour ids
  std::vector<index_t> adjw;   // edge weights, parallel to adj
  std::vector<index_t> vw;     // vertex weights, size nv

  [[nodiscard]] offset_t ne() const { return static_cast<offset_t>(adj.size()); }
  [[nodiscard]] offset_t total_vw() const;
  [[nodiscard]] index_t degree(index_t v) const {
    return static_cast<index_t>(xadj[v + 1] - xadj[v]);
  }

  /// Adjacency structure from a CSR pattern: symmetrized, diagonal dropped,
  /// unit weights.
  static PGraph from_csr_pattern(const Csr& a);

  /// Subgraph induced by `verts` (ids relabelled 0..|verts|-1 in given
  /// order). `global_of[i]` returns the original id of local vertex i.
  [[nodiscard]] PGraph induced(const std::vector<index_t>& verts,
                               std::vector<index_t>& global_of) const;

  /// Edge-cut weight of a 2-way side assignment.
  [[nodiscard]] offset_t cut(const std::vector<std::uint8_t>& side) const;

  void validate() const;
};

}  // namespace cw
