#include <algorithm>

#include "common/error.hpp"
#include "partition/partition.hpp"

namespace cw {

// Vertex separator for nested dissection: refine an edge cut, then promote
// the smaller set of boundary vertices to the separator so that no edge
// connects the remaining left and right parts.
Separator vertex_separator(const PGraph& g, std::uint64_t seed) {
  Separator s;
  if (g.nv == 0) return s;
  if (g.nv == 1) {
    s.left.push_back(0);
    return s;
  }
  Rng rng(seed);
  BisectOptions opt;
  Bisection b = multilevel_bisect(g, opt, rng);

  // Boundary vertices per side.
  std::vector<std::uint8_t> boundary(static_cast<std::size_t>(g.nv), 0);
  offset_t bw0 = 0, bw1 = 0;
  for (index_t v = 0; v < g.nv; ++v) {
    for (offset_t k = g.xadj[v]; k < g.xadj[v + 1]; ++k) {
      const index_t u = g.adj[static_cast<std::size_t>(k)];
      if (b.side[static_cast<std::size_t>(v)] != b.side[static_cast<std::size_t>(u)]) {
        if (!boundary[static_cast<std::size_t>(v)]) {
          boundary[static_cast<std::size_t>(v)] = 1;
          (b.side[static_cast<std::size_t>(v)] == 0 ? bw0 : bw1) +=
              g.vw[static_cast<std::size_t>(v)];
        }
        break;
      }
    }
  }
  // Promote the lighter boundary side: every cut edge has an endpoint there,
  // so removing it disconnects the two sides.
  const std::uint8_t promote = bw0 <= bw1 ? 0 : 1;
  for (index_t v = 0; v < g.nv; ++v) {
    if (boundary[static_cast<std::size_t>(v)] &&
        b.side[static_cast<std::size_t>(v)] == promote) {
      s.sep.push_back(v);
    } else if (b.side[static_cast<std::size_t>(v)] == 0) {
      s.left.push_back(v);
    } else {
      s.right.push_back(v);
    }
  }
  return s;
}

}  // namespace cw
