#include <algorithm>
#include <queue>

#include "common/error.hpp"
#include "partition/partition.hpp"

namespace cw {

namespace {

struct PqEntry {
  offset_t gain;
  index_t v;
  bool operator<(const PqEntry& o) const {
    if (gain != o.gain) return gain < o.gain;
    return v > o.v;
  }
};

/// gain(v) = weight of edges to the other side − weight of edges to own side
/// (positive gain ⇒ moving v reduces the cut by gain).
offset_t vertex_gain(const PGraph& g, const std::vector<std::uint8_t>& side,
                     index_t v) {
  offset_t ext = 0, in = 0;
  const std::uint8_t sv = side[static_cast<std::size_t>(v)];
  for (offset_t k = g.xadj[v]; k < g.xadj[v + 1]; ++k) {
    const index_t u = g.adj[static_cast<std::size_t>(k)];
    if (side[static_cast<std::size_t>(u)] == sv)
      in += g.adjw[static_cast<std::size_t>(k)];
    else
      ext += g.adjw[static_cast<std::size_t>(k)];
  }
  return ext - in;
}

}  // namespace

void fm_refine(const PGraph& g, Bisection& b, const BisectOptions& opt) {
  const offset_t total = g.total_vw();
  const double frac = opt.target_fraction;
  const auto max0 = static_cast<offset_t>(
      static_cast<double>(total) * frac * (1.0 + opt.imbalance)) + 1;
  const auto max1 = static_cast<offset_t>(
      static_cast<double>(total) * (1.0 - frac) * (1.0 + opt.imbalance)) + 1;

  std::vector<offset_t> gain(static_cast<std::size_t>(g.nv));
  std::vector<std::uint8_t> moved(static_cast<std::size_t>(g.nv));

  for (int pass = 0; pass < opt.fm_passes; ++pass) {
    const offset_t pass_start_cut = b.cut;
    std::fill(moved.begin(), moved.end(), 0);
    std::priority_queue<PqEntry> pq;
    for (index_t v = 0; v < g.nv; ++v) {
      gain[static_cast<std::size_t>(v)] = vertex_gain(g, b.side, v);
      pq.push({gain[static_cast<std::size_t>(v)], v});
    }

    struct Move {
      index_t v;
      offset_t cut_after;
    };
    std::vector<Move> log;
    offset_t cur_cut = b.cut;
    offset_t w0 = b.weight0, w1 = b.weight1;
    offset_t best_cut = b.cut;
    std::ptrdiff_t best_prefix = -1;  // index into log of last kept move

    while (!pq.empty()) {
      const PqEntry e = pq.top();
      pq.pop();
      if (moved[static_cast<std::size_t>(e.v)]) continue;
      if (e.gain != gain[static_cast<std::size_t>(e.v)]) continue;  // stale
      const std::uint8_t sv = b.side[static_cast<std::size_t>(e.v)];
      const offset_t vwv = g.vw[static_cast<std::size_t>(e.v)];
      // Balance test: moving v from sv to 1-sv.
      const bool src_over = (sv == 0 ? w0 > max0 : w1 > max1);
      if (sv == 0) {
        if (!src_over && w1 + vwv > max1) continue;
      } else {
        if (!src_over && w0 + vwv > max0) continue;
      }
      // Apply the move.
      moved[static_cast<std::size_t>(e.v)] = 1;
      b.side[static_cast<std::size_t>(e.v)] = static_cast<std::uint8_t>(1 - sv);
      cur_cut -= e.gain;
      if (sv == 0) {
        w0 -= vwv;
        w1 += vwv;
      } else {
        w1 -= vwv;
        w0 += vwv;
      }
      log.push_back({e.v, cur_cut});
      if (cur_cut < best_cut) {
        best_cut = cur_cut;
        best_prefix = static_cast<std::ptrdiff_t>(log.size()) - 1;
      }
      // Refresh neighbour gains.
      for (offset_t k = g.xadj[e.v]; k < g.xadj[e.v + 1]; ++k) {
        const index_t u = g.adj[static_cast<std::size_t>(k)];
        if (moved[static_cast<std::size_t>(u)]) continue;
        gain[static_cast<std::size_t>(u)] = vertex_gain(g, b.side, u);
        pq.push({gain[static_cast<std::size_t>(u)], u});
      }
    }

    // Roll back everything after the best prefix.
    for (std::ptrdiff_t i = static_cast<std::ptrdiff_t>(log.size()) - 1;
         i > best_prefix; --i) {
      const index_t v = log[static_cast<std::size_t>(i)].v;
      b.side[static_cast<std::size_t>(v)] ^= 1;
    }
    // Recompute weights and cut from scratch (cheap relative to the pass).
    b.weight0 = 0;
    for (index_t v = 0; v < g.nv; ++v)
      if (b.side[static_cast<std::size_t>(v)] == 0)
        b.weight0 += g.vw[static_cast<std::size_t>(v)];
    b.weight1 = total - b.weight0;
    b.cut = g.cut(b.side);
    CW_DCHECK(b.cut == best_cut);
    if (b.cut >= pass_start_cut) break;  // no improvement this pass
  }
}

Bisection multilevel_bisect(const PGraph& g, const BisectOptions& opt,
                            Rng& rng) {
  if (g.nv <= opt.coarsen_to || g.nv <= 2) {
    Bisection b = g.nv >= 2 ? grow_bisection(g, opt, rng) : Bisection{};
    if (g.nv < 2) {
      b.side.assign(static_cast<std::size_t>(g.nv), 0);
      b.weight0 = g.total_vw();
      b.weight1 = 0;
      b.cut = 0;
      return b;
    }
    fm_refine(g, b, opt);
    return b;
  }

  // Coarsen one level; bail out to direct bisection when matching stalls
  // (e.g., star graphs where everything is already matched to one hub).
  std::vector<index_t> match = heavy_edge_matching(g, rng);
  std::vector<index_t> coarse_of;
  PGraph coarse = contract(g, match, coarse_of);
  if (coarse.nv > static_cast<index_t>(0.95 * static_cast<double>(g.nv))) {
    Bisection b = grow_bisection(g, opt, rng);
    fm_refine(g, b, opt);
    return b;
  }

  Bisection cb = multilevel_bisect(coarse, opt, rng);

  // Project to the fine level and refine.
  Bisection b;
  b.side.resize(static_cast<std::size_t>(g.nv));
  for (index_t v = 0; v < g.nv; ++v)
    b.side[static_cast<std::size_t>(v)] =
        cb.side[static_cast<std::size_t>(coarse_of[static_cast<std::size_t>(v)])];
  b.weight0 = 0;
  for (index_t v = 0; v < g.nv; ++v)
    if (b.side[static_cast<std::size_t>(v)] == 0)
      b.weight0 += g.vw[static_cast<std::size_t>(v)];
  b.weight1 = g.total_vw() - b.weight0;
  b.cut = g.cut(b.side);
  fm_refine(g, b, opt);
  return b;
}

}  // namespace cw
