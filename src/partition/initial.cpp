#include <algorithm>

#include "common/error.hpp"
#include "partition/partition.hpp"

namespace cw {

namespace {

/// Grow side 0 by BFS from `seed` until it holds ~target_fraction of the
/// total vertex weight.
Bisection grow_once(const PGraph& g, const BisectOptions& opt, index_t seed) {
  Bisection b;
  b.side.assign(static_cast<std::size_t>(g.nv), 1);
  const offset_t total = g.total_vw();
  const auto target =
      static_cast<offset_t>(static_cast<double>(total) * opt.target_fraction);
  offset_t w0 = 0;

  std::vector<index_t> frontier{seed}, next;
  b.side[static_cast<std::size_t>(seed)] = 0;
  w0 += g.vw[static_cast<std::size_t>(seed)];
  while (w0 < target && !frontier.empty()) {
    next.clear();
    for (index_t u : frontier) {
      for (offset_t k = g.xadj[u]; k < g.xadj[u + 1] && w0 < target; ++k) {
        const index_t v = g.adj[static_cast<std::size_t>(k)];
        if (b.side[static_cast<std::size_t>(v)] == 1) {
          b.side[static_cast<std::size_t>(v)] = 0;
          w0 += g.vw[static_cast<std::size_t>(v)];
          next.push_back(v);
        }
      }
      if (w0 >= target) break;
    }
    frontier.swap(next);
  }
  // Disconnected graphs: BFS may stall before reaching the target; top up
  // with arbitrary side-1 vertices.
  for (index_t v = 0; v < g.nv && w0 < target; ++v) {
    if (b.side[static_cast<std::size_t>(v)] == 1) {
      b.side[static_cast<std::size_t>(v)] = 0;
      w0 += g.vw[static_cast<std::size_t>(v)];
    }
  }
  b.weight0 = w0;
  b.weight1 = total - w0;
  b.cut = g.cut(b.side);
  return b;
}

}  // namespace

Bisection grow_bisection(const PGraph& g, const BisectOptions& opt, Rng& rng) {
  CW_CHECK(g.nv >= 2);
  Bisection best;
  best.cut = -1;
  for (int t = 0; t < std::max(1, opt.initial_tries); ++t) {
    const index_t seed = rng.index(g.nv);
    Bisection b = grow_once(g, opt, seed);
    if (best.cut < 0 || b.cut < best.cut) best = std::move(b);
  }
  return best;
}

}  // namespace cw
