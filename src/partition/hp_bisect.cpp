#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "partition/hypergraph.hpp"

namespace cw {

namespace {

HpBisection hp_random_bisection(const Hypergraph& h, const HpOptions& opt,
                                Rng& rng) {
  HpBisection b;
  b.side.assign(static_cast<std::size_t>(h.nv), 1);
  const offset_t total = h.total_vw();
  const auto target =
      static_cast<offset_t>(static_cast<double>(total) * opt.target_fraction);
  std::vector<index_t> order(static_cast<std::size_t>(h.nv));
  std::iota(order.begin(), order.end(), index_t{0});
  shuffle(order, rng);
  offset_t w0 = 0;
  for (index_t v : order) {
    if (w0 >= target) break;
    b.side[static_cast<std::size_t>(v)] = 0;
    w0 += h.vw[static_cast<std::size_t>(v)];
  }
  b.weight0 = w0;
  b.weight1 = total - w0;
  b.cut = h.cut(b.side);
  return b;
}

/// Induced sub-hypergraph over `verts`; nets restricted to kept pins and
/// dropped when fewer than 2 pins remain.
Hypergraph hp_induced(const Hypergraph& h, const std::vector<index_t>& verts) {
  std::vector<index_t> local(static_cast<std::size_t>(h.nv), kInvalidIndex);
  for (index_t i = 0; i < static_cast<index_t>(verts.size()); ++i)
    local[static_cast<std::size_t>(verts[static_cast<std::size_t>(i)])] = i;
  Hypergraph out;
  out.nv = static_cast<index_t>(verts.size());
  out.vw.resize(verts.size());
  for (std::size_t i = 0; i < verts.size(); ++i)
    out.vw[i] = h.vw[static_cast<std::size_t>(verts[i])];
  out.nptr = {0};
  std::vector<index_t> scratch;
  for (index_t net = 0; net < h.nn; ++net) {
    scratch.clear();
    for (offset_t p = h.nptr[static_cast<std::size_t>(net)];
         p < h.nptr[static_cast<std::size_t>(net) + 1]; ++p) {
      const index_t l =
          local[static_cast<std::size_t>(h.npins[static_cast<std::size_t>(p)])];
      if (l != kInvalidIndex) scratch.push_back(l);
    }
    if (scratch.size() < 2) continue;
    out.npins.insert(out.npins.end(), scratch.begin(), scratch.end());
    out.nptr.push_back(static_cast<offset_t>(out.npins.size()));
    out.nw.push_back(h.nw[static_cast<std::size_t>(net)]);
  }
  out.nn = static_cast<index_t>(out.nw.size());
  out.rebuild_vertex_incidence();
  return out;
}

void hp_kway_recurse(const Hypergraph& h, const std::vector<index_t>& global_of,
                     index_t k, index_t part_base, double imbalance, Rng& rng,
                     std::vector<index_t>& part) {
  if (k == 1 || h.nv <= 1) {
    for (index_t v = 0; v < h.nv; ++v)
      part[static_cast<std::size_t>(global_of[static_cast<std::size_t>(v)])] =
          part_base;
    return;
  }
  const index_t k_left = k / 2;
  HpOptions opt;
  opt.target_fraction = static_cast<double>(k_left) / static_cast<double>(k);
  opt.imbalance = imbalance;
  HpBisection b = hp_multilevel_bisect(h, opt, rng);

  std::vector<index_t> lv, rv;
  for (index_t v = 0; v < h.nv; ++v)
    (b.side[static_cast<std::size_t>(v)] == 0 ? lv : rv).push_back(v);
  if (lv.empty() || rv.empty()) {
    auto& all = lv.empty() ? rv : lv;
    const std::size_t half = all.size() / 2;
    lv.assign(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(half));
    rv.assign(all.begin() + static_cast<std::ptrdiff_t>(half), all.end());
    if (lv.empty()) std::swap(lv, rv);
  }

  std::vector<index_t> gl(lv.size()), gr(rv.size());
  for (std::size_t i = 0; i < lv.size(); ++i)
    gl[i] = global_of[static_cast<std::size_t>(lv[i])];
  for (std::size_t i = 0; i < rv.size(); ++i)
    gr[i] = global_of[static_cast<std::size_t>(rv[i])];
  Hypergraph lh = hp_induced(h, lv);
  Hypergraph rh = hp_induced(h, rv);
  hp_kway_recurse(lh, gl, k_left, part_base, imbalance, rng, part);
  hp_kway_recurse(rh, gr, k - k_left, part_base + k_left, imbalance, rng, part);
}

}  // namespace

HpBisection hp_multilevel_bisect(const Hypergraph& h, const HpOptions& opt,
                                 Rng& rng) {
  if (h.nv <= opt.coarsen_to || h.nv <= 2) {
    HpBisection b;
    if (h.nv < 2) {
      b.side.assign(static_cast<std::size_t>(h.nv), 0);
      b.weight0 = h.total_vw();
      return b;
    }
    b = hp_random_bisection(h, opt, rng);
    hp_fm_refine(h, b, opt);
    return b;
  }
  std::vector<index_t> match = hp_matching(h, opt, rng);
  std::vector<index_t> coarse_of;
  Hypergraph coarse = hp_contract(h, match, coarse_of);
  if (coarse.nv > static_cast<index_t>(0.95 * static_cast<double>(h.nv))) {
    HpBisection b = hp_random_bisection(h, opt, rng);
    hp_fm_refine(h, b, opt);
    return b;
  }
  HpBisection cb = hp_multilevel_bisect(coarse, opt, rng);
  HpBisection b;
  b.side.resize(static_cast<std::size_t>(h.nv));
  for (index_t v = 0; v < h.nv; ++v)
    b.side[static_cast<std::size_t>(v)] =
        cb.side[static_cast<std::size_t>(coarse_of[static_cast<std::size_t>(v)])];
  b.weight0 = 0;
  for (index_t v = 0; v < h.nv; ++v)
    if (b.side[static_cast<std::size_t>(v)] == 0)
      b.weight0 += h.vw[static_cast<std::size_t>(v)];
  b.weight1 = h.total_vw() - b.weight0;
  b.cut = h.cut(b.side);
  hp_fm_refine(h, b, opt);
  return b;
}

std::vector<index_t> hp_kway_partition(const Hypergraph& h, index_t k,
                                       std::uint64_t seed, double imbalance) {
  CW_CHECK(k >= 1);
  std::vector<index_t> part(static_cast<std::size_t>(h.nv), 0);
  std::vector<index_t> global_of(static_cast<std::size_t>(h.nv));
  std::iota(global_of.begin(), global_of.end(), index_t{0});
  Rng rng(seed);
  hp_kway_recurse(h, global_of, std::min<index_t>(k, std::max<index_t>(h.nv, 1)),
                  0, imbalance, rng, part);
  return part;
}

}  // namespace cw
