// Multilevel hypergraph partitioning (PaToH substitute) with the cut-net
// metric, used by the HP reordering.
//
// Column-net model (Çatalyürek–Aykanat): matrix rows are vertices, matrix
// columns are nets, and net j connects every row with a nonzero in column j.
// Minimizing cut nets groups rows that touch the same columns — exactly the
// B-row-reuse structure SpGEMM benefits from.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "matrix/csr.hpp"

namespace cw {

struct Hypergraph {
  index_t nv = 0;  // vertices
  index_t nn = 0;  // nets
  std::vector<offset_t> vptr;   // vertex -> incident nets
  std::vector<index_t> vnets;
  std::vector<offset_t> nptr;   // net -> pins
  std::vector<index_t> npins;
  std::vector<index_t> vw;      // vertex weights
  std::vector<index_t> nw;      // net weights

  [[nodiscard]] offset_t pins() const { return static_cast<offset_t>(npins.size()); }
  [[nodiscard]] offset_t total_vw() const;

  /// Column-net model of a sparse matrix (nets with <2 pins are kept; they
  /// simply can never be cut).
  static Hypergraph column_net(const Csr& a);

  /// Rebuild vertex->net incidence from the net->pin lists.
  void rebuild_vertex_incidence();

  /// Cut-net objective of a 2-way assignment: total weight of nets with pins
  /// on both sides.
  [[nodiscard]] offset_t cut(const std::vector<std::uint8_t>& side) const;

  void validate() const;
};

struct HpOptions {
  double target_fraction = 0.5;
  double imbalance = 0.05;
  index_t coarsen_to = 128;
  int fm_passes = 6;
  index_t net_scan_cap = 256;  // skip huge nets during matching
};

struct HpBisection {
  std::vector<std::uint8_t> side;
  offset_t cut = 0;
  offset_t weight0 = 0, weight1 = 0;
};

/// Heavy-connectivity matching for one coarsening level.
std::vector<index_t> hp_matching(const Hypergraph& h, const HpOptions& opt,
                                 Rng& rng);

/// Contract a matching; fills coarse_of (fine vertex -> coarse vertex).
Hypergraph hp_contract(const Hypergraph& h, const std::vector<index_t>& match,
                       std::vector<index_t>& coarse_of);

/// FM refinement on the cut-net metric.
void hp_fm_refine(const Hypergraph& h, HpBisection& b, const HpOptions& opt);

/// Full multilevel 2-way partition.
HpBisection hp_multilevel_bisect(const Hypergraph& h, const HpOptions& opt,
                                 Rng& rng);

/// k-way via recursive bisection; part id per vertex.
std::vector<index_t> hp_kway_partition(const Hypergraph& h, index_t k,
                                       std::uint64_t seed,
                                       double imbalance = 0.05);

}  // namespace cw
