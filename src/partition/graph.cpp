#include "partition/graph.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/prefix_sum.hpp"

namespace cw {

offset_t PGraph::total_vw() const {
  offset_t t = 0;
  for (index_t w : vw) t += w;
  return t;
}

PGraph PGraph::from_csr_pattern(const Csr& a) {
  CW_CHECK_MSG(a.nrows() == a.ncols(), "partitioning requires square matrix");
  const Csr sym = a.symmetrized().without_diagonal();
  PGraph g;
  g.nv = sym.nrows();
  g.xadj = sym.row_ptr().to_vector();
  g.adj = sym.col_idx().to_vector();
  g.adjw.assign(g.adj.size(), 1);
  g.vw.assign(static_cast<std::size_t>(g.nv), 1);
  return g;
}

PGraph PGraph::induced(const std::vector<index_t>& verts,
                       std::vector<index_t>& global_of) const {
  global_of = verts;
  std::vector<index_t> local(static_cast<std::size_t>(nv), kInvalidIndex);
  for (index_t i = 0; i < static_cast<index_t>(verts.size()); ++i)
    local[static_cast<std::size_t>(verts[static_cast<std::size_t>(i)])] = i;

  PGraph out;
  out.nv = static_cast<index_t>(verts.size());
  out.vw.resize(verts.size());
  std::vector<offset_t> counts(verts.size(), 0);
  for (std::size_t i = 0; i < verts.size(); ++i) {
    out.vw[i] = vw[static_cast<std::size_t>(verts[i])];
    for (offset_t k = xadj[verts[i]]; k < xadj[verts[i] + 1]; ++k) {
      if (local[static_cast<std::size_t>(adj[static_cast<std::size_t>(k)])] !=
          kInvalidIndex)
        ++counts[i];
    }
  }
  out.xadj = counts_to_pointers(counts);
  out.adj.resize(static_cast<std::size_t>(out.xadj.back()));
  out.adjw.resize(static_cast<std::size_t>(out.xadj.back()));
  for (std::size_t i = 0; i < verts.size(); ++i) {
    offset_t dst = out.xadj[i];
    for (offset_t k = xadj[verts[i]]; k < xadj[verts[i] + 1]; ++k) {
      const index_t l =
          local[static_cast<std::size_t>(adj[static_cast<std::size_t>(k)])];
      if (l == kInvalidIndex) continue;
      out.adj[static_cast<std::size_t>(dst)] = l;
      out.adjw[static_cast<std::size_t>(dst)] = adjw[static_cast<std::size_t>(k)];
      ++dst;
    }
  }
  return out;
}

offset_t PGraph::cut(const std::vector<std::uint8_t>& side) const {
  CW_CHECK(static_cast<index_t>(side.size()) == nv);
  offset_t c = 0;
  for (index_t v = 0; v < nv; ++v) {
    for (offset_t k = xadj[v]; k < xadj[v + 1]; ++k) {
      const index_t u = adj[static_cast<std::size_t>(k)];
      if (side[static_cast<std::size_t>(v)] != side[static_cast<std::size_t>(u)])
        c += adjw[static_cast<std::size_t>(k)];
    }
  }
  return c / 2;  // every cut edge visited from both endpoints
}

void PGraph::validate() const {
  CW_CHECK(static_cast<index_t>(xadj.size()) == nv + 1);
  CW_CHECK(xadj[0] == 0);
  CW_CHECK(adj.size() == adjw.size());
  CW_CHECK(static_cast<offset_t>(adj.size()) == xadj[static_cast<std::size_t>(nv)]);
  CW_CHECK(static_cast<index_t>(vw.size()) == nv);
  for (index_t v = 0; v < nv; ++v) {
    for (offset_t k = xadj[v]; k < xadj[v + 1]; ++k) {
      const index_t u = adj[static_cast<std::size_t>(k)];
      CW_CHECK(u >= 0 && u < nv);
      CW_CHECK_MSG(u != v, "self loop at vertex " << v);
    }
  }
}

}  // namespace cw
