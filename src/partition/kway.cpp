#include <algorithm>

#include "common/error.hpp"
#include "partition/partition.hpp"

namespace cw {

namespace {

void kway_recurse(const PGraph& g, const std::vector<index_t>& global_of,
                  index_t k, index_t part_base, double imbalance, Rng& rng,
                  std::vector<index_t>& part) {
  if (k == 1 || g.nv <= 1) {
    for (index_t v = 0; v < g.nv; ++v)
      part[static_cast<std::size_t>(global_of[static_cast<std::size_t>(v)])] =
          part_base;
    return;
  }
  const index_t k_left = k / 2;
  BisectOptions opt;
  opt.target_fraction = static_cast<double>(k_left) / static_cast<double>(k);
  opt.imbalance = imbalance;
  Bisection b = multilevel_bisect(g, opt, rng);

  std::vector<index_t> left_verts, right_verts;
  for (index_t v = 0; v < g.nv; ++v) {
    (b.side[static_cast<std::size_t>(v)] == 0 ? left_verts : right_verts)
        .push_back(v);
  }
  // Degenerate splits (all weight on one side) still need progress.
  if (left_verts.empty() || right_verts.empty()) {
    auto& all = left_verts.empty() ? right_verts : left_verts;
    const std::size_t half = all.size() / 2;
    left_verts.assign(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(half));
    right_verts.assign(all.begin() + static_cast<std::ptrdiff_t>(half), all.end());
    if (left_verts.empty()) std::swap(left_verts, right_verts);
  }

  std::vector<index_t> gl, gr;
  PGraph lg = g.induced(left_verts, gl);
  PGraph rg = g.induced(right_verts, gr);
  for (auto& v : gl) v = global_of[static_cast<std::size_t>(v)];
  for (auto& v : gr) v = global_of[static_cast<std::size_t>(v)];
  kway_recurse(lg, gl, k_left, part_base, imbalance, rng, part);
  kway_recurse(rg, gr, k - k_left, part_base + k_left, imbalance, rng, part);
}

}  // namespace

std::vector<index_t> kway_partition(const PGraph& g, index_t k,
                                    std::uint64_t seed, double imbalance) {
  CW_CHECK(k >= 1);
  std::vector<index_t> part(static_cast<std::size_t>(g.nv), 0);
  std::vector<index_t> global_of(static_cast<std::size_t>(g.nv));
  for (index_t v = 0; v < g.nv; ++v) global_of[static_cast<std::size_t>(v)] = v;
  Rng rng(seed);
  kway_recurse(g, global_of, std::min<index_t>(k, std::max<index_t>(g.nv, 1)),
               0, imbalance, rng, part);
  return part;
}

}  // namespace cw
