#include "partition/hypergraph.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/prefix_sum.hpp"

namespace cw {

offset_t Hypergraph::total_vw() const {
  offset_t t = 0;
  for (index_t w : vw) t += w;
  return t;
}

Hypergraph Hypergraph::column_net(const Csr& a) {
  Hypergraph h;
  h.nv = a.nrows();
  h.nn = a.ncols();
  h.vw.assign(static_cast<std::size_t>(h.nv), 1);
  h.nw.assign(static_cast<std::size_t>(h.nn), 1);

  // net -> pins is the transpose pattern of A.
  std::vector<offset_t> counts(static_cast<std::size_t>(h.nn), 0);
  for (index_t c : a.col_idx()) ++counts[static_cast<std::size_t>(c)];
  h.nptr = counts_to_pointers(counts);
  h.npins.resize(static_cast<std::size_t>(h.nptr.back()));
  std::vector<offset_t> cursor(h.nptr.begin(), h.nptr.end() - 1);
  for (index_t r = 0; r < a.nrows(); ++r) {
    for (index_t c : a.row_cols(r)) {
      h.npins[static_cast<std::size_t>(cursor[static_cast<std::size_t>(c)]++)] = r;
    }
  }
  h.rebuild_vertex_incidence();
  return h;
}

void Hypergraph::rebuild_vertex_incidence() {
  std::vector<offset_t> counts(static_cast<std::size_t>(nv), 0);
  for (index_t v : npins) ++counts[static_cast<std::size_t>(v)];
  vptr = counts_to_pointers(counts);
  vnets.resize(static_cast<std::size_t>(vptr.back()));
  std::vector<offset_t> cursor(vptr.begin(), vptr.end() - 1);
  for (index_t net = 0; net < nn; ++net) {
    for (offset_t p = nptr[static_cast<std::size_t>(net)];
         p < nptr[static_cast<std::size_t>(net) + 1]; ++p) {
      const index_t v = npins[static_cast<std::size_t>(p)];
      vnets[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] = net;
    }
  }
}

offset_t Hypergraph::cut(const std::vector<std::uint8_t>& side) const {
  CW_CHECK(static_cast<index_t>(side.size()) == nv);
  offset_t c = 0;
  for (index_t net = 0; net < nn; ++net) {
    bool s0 = false, s1 = false;
    for (offset_t p = nptr[static_cast<std::size_t>(net)];
         p < nptr[static_cast<std::size_t>(net) + 1]; ++p) {
      (side[static_cast<std::size_t>(npins[static_cast<std::size_t>(p)])] == 0
           ? s0
           : s1) = true;
      if (s0 && s1) break;
    }
    if (s0 && s1) c += nw[static_cast<std::size_t>(net)];
  }
  return c;
}

void Hypergraph::validate() const {
  CW_CHECK(static_cast<index_t>(vptr.size()) == nv + 1);
  CW_CHECK(static_cast<index_t>(nptr.size()) == nn + 1);
  CW_CHECK(static_cast<index_t>(vw.size()) == nv);
  CW_CHECK(static_cast<index_t>(nw.size()) == nn);
  CW_CHECK(vnets.size() == npins.size());
  for (index_t v : npins) CW_CHECK(v >= 0 && v < nv);
  for (index_t n : vnets) CW_CHECK(n >= 0 && n < nn);
}

}  // namespace cw
