#include <algorithm>
#include <queue>

#include "common/error.hpp"
#include "partition/hypergraph.hpp"

namespace cw {

namespace {

struct PqEntry {
  offset_t gain;
  index_t v;
  bool operator<(const PqEntry& o) const {
    if (gain != o.gain) return gain < o.gain;
    return v > o.v;
  }
};

/// Cut-net gain of moving v to the other side, given per-net side pin counts.
offset_t hp_gain(const Hypergraph& h, const std::vector<std::uint8_t>& side,
                 const std::vector<index_t>& cnt0,
                 const std::vector<index_t>& cnt1, index_t v) {
  offset_t gain = 0;
  const std::uint8_t sv = side[static_cast<std::size_t>(v)];
  for (offset_t k = h.vptr[static_cast<std::size_t>(v)];
       k < h.vptr[static_cast<std::size_t>(v) + 1]; ++k) {
    const index_t net = h.vnets[static_cast<std::size_t>(k)];
    const index_t c0 = cnt0[static_cast<std::size_t>(net)];
    const index_t c1 = cnt1[static_cast<std::size_t>(net)];
    const index_t own = sv == 0 ? c0 : c1;
    const index_t other = sv == 0 ? c1 : c0;
    if (own == 1 && other > 0) {
      gain += h.nw[static_cast<std::size_t>(net)];  // net becomes uncut
    } else if (other == 0 && own > 1) {
      gain -= h.nw[static_cast<std::size_t>(net)];  // net becomes cut
    }
  }
  return gain;
}

}  // namespace

void hp_fm_refine(const Hypergraph& h, HpBisection& b, const HpOptions& opt) {
  const offset_t total = h.total_vw();
  const double frac = opt.target_fraction;
  const auto max0 = static_cast<offset_t>(
      static_cast<double>(total) * frac * (1.0 + opt.imbalance)) + 1;
  const auto max1 = static_cast<offset_t>(
      static_cast<double>(total) * (1.0 - frac) * (1.0 + opt.imbalance)) + 1;

  std::vector<index_t> cnt0(static_cast<std::size_t>(h.nn));
  std::vector<index_t> cnt1(static_cast<std::size_t>(h.nn));
  std::vector<offset_t> gain(static_cast<std::size_t>(h.nv));
  std::vector<std::uint8_t> moved(static_cast<std::size_t>(h.nv));

  for (int pass = 0; pass < opt.fm_passes; ++pass) {
    const offset_t pass_start_cut = b.cut;
    // Per-net pin counts per side.
    std::fill(cnt0.begin(), cnt0.end(), 0);
    std::fill(cnt1.begin(), cnt1.end(), 0);
    for (index_t net = 0; net < h.nn; ++net) {
      for (offset_t p = h.nptr[static_cast<std::size_t>(net)];
           p < h.nptr[static_cast<std::size_t>(net) + 1]; ++p) {
        const index_t v = h.npins[static_cast<std::size_t>(p)];
        (b.side[static_cast<std::size_t>(v)] == 0 ? cnt0
                                                  : cnt1)[static_cast<std::size_t>(net)]++;
      }
    }
    std::fill(moved.begin(), moved.end(), 0);
    std::priority_queue<PqEntry> pq;
    for (index_t v = 0; v < h.nv; ++v) {
      gain[static_cast<std::size_t>(v)] = hp_gain(h, b.side, cnt0, cnt1, v);
      pq.push({gain[static_cast<std::size_t>(v)], v});
    }

    struct Move {
      index_t v;
    };
    std::vector<Move> log;
    offset_t cur_cut = b.cut;
    offset_t w0 = b.weight0, w1 = b.weight1;
    offset_t best_cut = b.cut;
    std::ptrdiff_t best_prefix = -1;

    while (!pq.empty()) {
      const PqEntry e = pq.top();
      pq.pop();
      if (moved[static_cast<std::size_t>(e.v)]) continue;
      if (e.gain != gain[static_cast<std::size_t>(e.v)]) continue;
      const std::uint8_t sv = b.side[static_cast<std::size_t>(e.v)];
      const offset_t vwv = h.vw[static_cast<std::size_t>(e.v)];
      const bool src_over = (sv == 0 ? w0 > max0 : w1 > max1);
      if (sv == 0) {
        if (!src_over && w1 + vwv > max1) continue;
      } else {
        if (!src_over && w0 + vwv > max0) continue;
      }
      // Apply the move and update net counts + affected gains.
      moved[static_cast<std::size_t>(e.v)] = 1;
      b.side[static_cast<std::size_t>(e.v)] = static_cast<std::uint8_t>(1 - sv);
      cur_cut -= e.gain;
      if (sv == 0) {
        w0 -= vwv;
        w1 += vwv;
      } else {
        w1 -= vwv;
        w0 += vwv;
      }
      for (offset_t k = h.vptr[static_cast<std::size_t>(e.v)];
           k < h.vptr[static_cast<std::size_t>(e.v) + 1]; ++k) {
        const index_t net = h.vnets[static_cast<std::size_t>(k)];
        const offset_t net_pins = h.nptr[static_cast<std::size_t>(net) + 1] -
                                  h.nptr[static_cast<std::size_t>(net)];
        if (sv == 0) {
          cnt0[static_cast<std::size_t>(net)]--;
          cnt1[static_cast<std::size_t>(net)]++;
        } else {
          cnt1[static_cast<std::size_t>(net)]--;
          cnt0[static_cast<std::size_t>(net)]++;
        }
        // Refresh gains of the net's unmoved pins. Hub nets (power-law
        // columns) are skipped: refreshing their thousands of pins per move
        // is quadratic, and a hub net's cut state almost never flips from a
        // single move, so its pins' gains are unaffected in practice. Their
        // contribution stays exact in the cut recomputation at pass end.
        if (net_pins > opt.net_scan_cap * 2) continue;
        for (offset_t p = h.nptr[static_cast<std::size_t>(net)];
             p < h.nptr[static_cast<std::size_t>(net) + 1]; ++p) {
          const index_t u = h.npins[static_cast<std::size_t>(p)];
          if (moved[static_cast<std::size_t>(u)]) continue;
          gain[static_cast<std::size_t>(u)] = hp_gain(h, b.side, cnt0, cnt1, u);
          pq.push({gain[static_cast<std::size_t>(u)], u});
        }
      }
      log.push_back({e.v});
      if (cur_cut < best_cut) {
        best_cut = cur_cut;
        best_prefix = static_cast<std::ptrdiff_t>(log.size()) - 1;
      }
    }

    for (std::ptrdiff_t i = static_cast<std::ptrdiff_t>(log.size()) - 1;
         i > best_prefix; --i) {
      b.side[static_cast<std::size_t>(log[static_cast<std::size_t>(i)].v)] ^= 1;
    }
    b.weight0 = 0;
    for (index_t v = 0; v < h.nv; ++v)
      if (b.side[static_cast<std::size_t>(v)] == 0)
        b.weight0 += h.vw[static_cast<std::size_t>(v)];
    b.weight1 = total - b.weight0;
    b.cut = h.cut(b.side);
    if (b.cut >= pass_start_cut) break;
  }
}

}  // namespace cw
