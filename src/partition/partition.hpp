// Multilevel graph partitioning public API (METIS substitute).
//
// Pipeline: heavy-edge-matching coarsening until the graph is small, a
// region-growing initial bisection, then FM refinement projected back up the
// hierarchy. k-way partitions come from recursive bisection; nested
// dissection extracts a vertex separator from the refined edge cut.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "partition/graph.hpp"

namespace cw {

struct BisectOptions {
  double target_fraction = 0.5;  // weight fraction of side 0
  double imbalance = 0.05;       // allowed relative deviation from the target
  index_t coarsen_to = 128;      // stop coarsening at this many vertices
  int initial_tries = 4;         // region-growing restarts
  int fm_passes = 8;             // FM pass cap per level
};

struct Bisection {
  std::vector<std::uint8_t> side;  // 0 or 1 per vertex
  offset_t cut = 0;
  offset_t weight0 = 0, weight1 = 0;
};

/// One level of heavy-edge matching. match[v] = partner (or v if unmatched).
std::vector<index_t> heavy_edge_matching(const PGraph& g, Rng& rng);

/// Contract a matching: returns the coarse graph and fills coarse_of
/// (fine vertex -> coarse vertex).
PGraph contract(const PGraph& g, const std::vector<index_t>& match,
                std::vector<index_t>& coarse_of);

/// Region-growing (greedy BFS) bisection used on the coarsest graph.
Bisection grow_bisection(const PGraph& g, const BisectOptions& opt, Rng& rng);

/// Fiduccia–Mattheyses refinement of an existing bisection (in place).
void fm_refine(const PGraph& g, Bisection& b, const BisectOptions& opt);

/// Full multilevel 2-way partition.
Bisection multilevel_bisect(const PGraph& g, const BisectOptions& opt, Rng& rng);

/// k-way partition via recursive bisection. Returns part id (0..k-1) per
/// vertex; parts have near-equal vertex weight.
std::vector<index_t> kway_partition(const PGraph& g, index_t k,
                                    std::uint64_t seed,
                                    double imbalance = 0.05);

/// Vertex separator derived from a refined edge cut: the smaller boundary
/// side is promoted to the separator (used by nested dissection).
struct Separator {
  std::vector<index_t> left, right, sep;
};
Separator vertex_separator(const PGraph& g, std::uint64_t seed);

}  // namespace cw
