#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/error.hpp"
#include "common/prefix_sum.hpp"
#include "partition/partition.hpp"

namespace cw {

std::vector<index_t> heavy_edge_matching(const PGraph& g, Rng& rng) {
  std::vector<index_t> match(static_cast<std::size_t>(g.nv), kInvalidIndex);
  std::vector<index_t> visit(static_cast<std::size_t>(g.nv));
  std::iota(visit.begin(), visit.end(), index_t{0});
  shuffle(visit, rng);
  for (index_t v : visit) {
    if (match[static_cast<std::size_t>(v)] != kInvalidIndex) continue;
    index_t best = kInvalidIndex;
    index_t best_w = 0;
    for (offset_t k = g.xadj[v]; k < g.xadj[v + 1]; ++k) {
      const index_t u = g.adj[static_cast<std::size_t>(k)];
      if (match[static_cast<std::size_t>(u)] != kInvalidIndex) continue;
      const index_t w = g.adjw[static_cast<std::size_t>(k)];
      if (w > best_w || (w == best_w && best != kInvalidIndex && u < best)) {
        best_w = w;
        best = u;
      }
    }
    if (best == kInvalidIndex) {
      match[static_cast<std::size_t>(v)] = v;  // unmatched singleton
    } else {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
    }
  }
  return match;
}

PGraph contract(const PGraph& g, const std::vector<index_t>& match,
                std::vector<index_t>& coarse_of) {
  CW_CHECK(static_cast<index_t>(match.size()) == g.nv);
  coarse_of.assign(static_cast<std::size_t>(g.nv), kInvalidIndex);
  index_t nc = 0;
  for (index_t v = 0; v < g.nv; ++v) {
    if (coarse_of[static_cast<std::size_t>(v)] != kInvalidIndex) continue;
    const index_t u = match[static_cast<std::size_t>(v)];
    coarse_of[static_cast<std::size_t>(v)] = nc;
    if (u != v) coarse_of[static_cast<std::size_t>(u)] = nc;
    ++nc;
  }

  PGraph out;
  out.nv = nc;
  out.vw.assign(static_cast<std::size_t>(nc), 0);
  for (index_t v = 0; v < g.nv; ++v)
    out.vw[static_cast<std::size_t>(coarse_of[static_cast<std::size_t>(v)])] +=
        g.vw[static_cast<std::size_t>(v)];

  // Aggregate edges per coarse vertex with a scratch map keyed by neighbour.
  std::vector<offset_t> counts(static_cast<std::size_t>(nc), 0);
  std::vector<std::vector<std::pair<index_t, index_t>>> rows(
      static_cast<std::size_t>(nc));
  std::unordered_map<index_t, index_t> agg;
  // Gather fine vertices per coarse vertex.
  std::vector<std::vector<index_t>> members(static_cast<std::size_t>(nc));
  for (index_t v = 0; v < g.nv; ++v)
    members[static_cast<std::size_t>(coarse_of[static_cast<std::size_t>(v)])]
        .push_back(v);
  for (index_t c = 0; c < nc; ++c) {
    agg.clear();
    for (index_t v : members[static_cast<std::size_t>(c)]) {
      for (offset_t k = g.xadj[v]; k < g.xadj[v + 1]; ++k) {
        const index_t cu =
            coarse_of[static_cast<std::size_t>(g.adj[static_cast<std::size_t>(k)])];
        if (cu == c) continue;  // contracted edge disappears
        agg[cu] += g.adjw[static_cast<std::size_t>(k)];
      }
    }
    auto& row = rows[static_cast<std::size_t>(c)];
    row.assign(agg.begin(), agg.end());
    std::sort(row.begin(), row.end());
    counts[static_cast<std::size_t>(c)] = static_cast<offset_t>(row.size());
  }
  out.xadj = counts_to_pointers(counts);
  out.adj.resize(static_cast<std::size_t>(out.xadj.back()));
  out.adjw.resize(static_cast<std::size_t>(out.xadj.back()));
  for (index_t c = 0; c < nc; ++c) {
    offset_t dst = out.xadj[static_cast<std::size_t>(c)];
    for (const auto& [u, w] : rows[static_cast<std::size_t>(c)]) {
      out.adj[static_cast<std::size_t>(dst)] = u;
      out.adjw[static_cast<std::size_t>(dst)] = w;
      ++dst;
    }
  }
  return out;
}

}  // namespace cw
