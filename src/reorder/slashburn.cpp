#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "graph/components.hpp"
#include "reorder/reorder.hpp"

namespace cw {

// SlashBurn (Lim, Kang, Faloutsos [37]): repeatedly "slash" the k highest-
// degree hubs to the front of the ordering, then "burn": every connected
// component of the remainder except the giant one (the spokes) moves to the
// back; recursion continues on the giant component. Hubs end up first,
// spokes last, exposing the dense core in the middle.
Permutation slashburn_order(const Csr& a, const ReorderOptions& opt) {
  const Csr g = a.symmetrized().without_diagonal();
  const index_t n = g.nrows();
  const index_t k = std::max<index_t>(
      1, static_cast<index_t>(opt.slashburn_hub_fraction * static_cast<double>(n)));

  std::vector<index_t> front, back;  // back is built reversed
  front.reserve(static_cast<std::size_t>(n));
  std::vector<index_t> active(static_cast<std::size_t>(n));
  std::iota(active.begin(), active.end(), index_t{0});
  // Degrees maintained on the shrinking active set.
  std::vector<index_t> degree(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> in_active(static_cast<std::size_t>(n), 1);
  for (index_t v = 0; v < n; ++v) degree[static_cast<std::size_t>(v)] = g.row_nnz(v);

  while (static_cast<index_t>(active.size()) > k) {
    // Slash: k highest-degree active vertices to the front.
    std::vector<index_t> hubs = active;
    std::nth_element(hubs.begin(), hubs.begin() + (k - 1), hubs.end(),
                     [&](index_t x, index_t y) {
                       if (degree[static_cast<std::size_t>(x)] !=
                           degree[static_cast<std::size_t>(y)])
                         return degree[static_cast<std::size_t>(x)] >
                                degree[static_cast<std::size_t>(y)];
                       return x < y;
                     });
    hubs.resize(static_cast<std::size_t>(k));
    std::sort(hubs.begin(), hubs.end(), [&](index_t x, index_t y) {
      if (degree[static_cast<std::size_t>(x)] != degree[static_cast<std::size_t>(y)])
        return degree[static_cast<std::size_t>(x)] > degree[static_cast<std::size_t>(y)];
      return x < y;
    });
    for (index_t h : hubs) {
      front.push_back(h);
      in_active[static_cast<std::size_t>(h)] = 0;
    }
    // Update degrees of the hubs' neighbours.
    for (index_t h : hubs) {
      for (index_t u : g.row_cols(h)) {
        if (in_active[static_cast<std::size_t>(u)])
          --degree[static_cast<std::size_t>(u)];
      }
    }
    // Burn: components of the remainder. Label via DFS restricted to active.
    std::vector<index_t> remaining;
    remaining.reserve(active.size() - static_cast<std::size_t>(k));
    for (index_t v : active)
      if (in_active[static_cast<std::size_t>(v)]) remaining.push_back(v);
    if (remaining.empty()) break;

    std::vector<index_t> comp(static_cast<std::size_t>(n), kInvalidIndex);
    std::vector<std::vector<index_t>> members;
    std::vector<index_t> stack;
    for (index_t s : remaining) {
      if (comp[static_cast<std::size_t>(s)] != kInvalidIndex) continue;
      const auto id = static_cast<index_t>(members.size());
      members.emplace_back();
      comp[static_cast<std::size_t>(s)] = id;
      stack.push_back(s);
      while (!stack.empty()) {
        const index_t u = stack.back();
        stack.pop_back();
        members[static_cast<std::size_t>(id)].push_back(u);
        for (index_t w : g.row_cols(u)) {
          if (in_active[static_cast<std::size_t>(w)] &&
              comp[static_cast<std::size_t>(w)] == kInvalidIndex) {
            comp[static_cast<std::size_t>(w)] = id;
            stack.push_back(w);
          }
        }
      }
    }
    // Giant component continues; spokes (all others) go to the back, larger
    // components closer to the core, vertices within a spoke by id.
    std::size_t giant = 0;
    for (std::size_t c = 1; c < members.size(); ++c)
      if (members[c].size() > members[giant].size()) giant = c;
    std::vector<std::size_t> spokes;
    for (std::size_t c = 0; c < members.size(); ++c)
      if (c != giant) spokes.push_back(c);
    std::sort(spokes.begin(), spokes.end(), [&](std::size_t x, std::size_t y) {
      if (members[x].size() != members[y].size())
        return members[x].size() < members[y].size();
      return members[x][0] < members[y][0];
    });
    // back is reversed at the end, so push smallest spokes first (they end up
    // last in the final ordering).
    for (std::size_t c : spokes) {
      std::vector<index_t> verts = members[c];
      std::sort(verts.begin(), verts.end());
      for (auto it = verts.rbegin(); it != verts.rend(); ++it) {
        back.push_back(*it);
        in_active[static_cast<std::size_t>(*it)] = 0;
      }
    }
    active = std::move(members[giant]);
    std::sort(active.begin(), active.end());
  }

  // Remainder (≤ k vertices): by degree descending after the hubs.
  std::sort(active.begin(), active.end(), [&](index_t x, index_t y) {
    if (degree[static_cast<std::size_t>(x)] != degree[static_cast<std::size_t>(y)])
      return degree[static_cast<std::size_t>(x)] > degree[static_cast<std::size_t>(y)];
    return x < y;
  });
  Permutation p = std::move(front);
  p.insert(p.end(), active.begin(), active.end());
  p.insert(p.end(), back.rbegin(), back.rend());
  CW_CHECK(is_permutation(p, n));
  return p;
}

}  // namespace cw
