#include <algorithm>
#include <numeric>

#include "reorder/reorder.hpp"

namespace cw {

namespace {

/// 64-bucket occupancy signature of a row's column pattern.
std::uint64_t row_signature(const Csr& a, index_t r) {
  std::uint64_t sig = 0;
  const auto ncols = static_cast<std::uint64_t>(a.ncols());
  for (index_t c : a.row_cols(r)) {
    const std::uint64_t bucket =
        ncols <= 64 ? static_cast<std::uint64_t>(c)
                    : static_cast<std::uint64_t>(c) * 64 / ncols;
    sig |= std::uint64_t{1} << (63 - bucket);  // MSB = leftmost columns
  }
  return sig;
}

/// Interpret the signature as a reflected Gray code and decode it to its
/// binary rank (prefix-xor). Rows whose patterns differ in one bucket end up
/// adjacent in rank order — the grouping property Gray ordering relies on.
std::uint64_t gray_to_binary(std::uint64_t g) {
  for (int shift = 1; shift < 64; shift <<= 1) g ^= g >> shift;
  return g;
}

}  // namespace

// Gray-code ordering (Zhao et al. [51]): split dense from sparse rows, then
// sort each group by the Gray rank of its bucketed sparsity signature.
Permutation gray_order(const Csr& a, const ReorderOptions& opt) {
  const index_t n = a.nrows();
  index_t dense_th = opt.gray_dense_threshold;
  if (dense_th <= 0) {
    const double avg = n > 0 ? static_cast<double>(a.nnz()) / n : 0.0;
    dense_th = std::max<index_t>(16, static_cast<index_t>(2.0 * avg));
  }

  std::vector<std::uint64_t> rank(static_cast<std::size_t>(n));
  for (index_t r = 0; r < n; ++r)
    rank[static_cast<std::size_t>(r)] = gray_to_binary(row_signature(a, r));

  Permutation p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), index_t{0});
  std::stable_sort(p.begin(), p.end(), [&](index_t x, index_t y) {
    const bool dx = a.row_nnz(x) >= dense_th;
    const bool dy = a.row_nnz(y) >= dense_th;
    if (dx != dy) return dx;  // dense rows first
    return rank[static_cast<std::size_t>(x)] > rank[static_cast<std::size_t>(y)];
  });
  return p;
}

}  // namespace cw
