#include <numeric>

#include "common/rng.hpp"
#include "reorder/reorder.hpp"

namespace cw {

Permutation random_order(const Csr& a, std::uint64_t seed) {
  Permutation p(static_cast<std::size_t>(a.nrows()));
  std::iota(p.begin(), p.end(), index_t{0});
  Rng rng(seed);
  shuffle(p, rng);
  return p;
}

}  // namespace cw
