#include <algorithm>
#include <numeric>

#include "partition/partition.hpp"
#include "reorder/reorder.hpp"

namespace cw {

// Graph-partitioning reordering (METIS edge-cut objective in the paper):
// k-way partition the symmetrized adjacency, then order rows by part id,
// preserving the original order within a part. Rows sharing many columns
// land in the same part, so consecutive rows reuse the same B rows.
Permutation gp_order(const Csr& a, const ReorderOptions& opt) {
  const index_t n = a.nrows();
  const index_t k = std::max<index_t>(
      2, (n + opt.rows_per_part - 1) / std::max<index_t>(opt.rows_per_part, 1));
  const PGraph g = PGraph::from_csr_pattern(a);
  const std::vector<index_t> part = kway_partition(g, k, opt.seed);

  Permutation p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), index_t{0});
  std::stable_sort(p.begin(), p.end(), [&](index_t x, index_t y) {
    return part[static_cast<std::size_t>(x)] < part[static_cast<std::size_t>(y)];
  });
  return p;
}

}  // namespace cw
