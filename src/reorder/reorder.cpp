#include "reorder/reorder.hpp"

#include <numeric>

#include "common/error.hpp"

namespace cw {

const char* to_string(ReorderAlgo algo) {
  switch (algo) {
    case ReorderAlgo::kOriginal: return "Original";
    case ReorderAlgo::kRandom: return "Shuffled";
    case ReorderAlgo::kRCM: return "RCM";
    case ReorderAlgo::kAMD: return "AMD";
    case ReorderAlgo::kND: return "ND";
    case ReorderAlgo::kGP: return "GP";
    case ReorderAlgo::kHP: return "HP";
    case ReorderAlgo::kGray: return "Gray";
    case ReorderAlgo::kRabbit: return "Rabbit";
    case ReorderAlgo::kDegree: return "Degree";
    case ReorderAlgo::kSlashBurn: return "SlashBurn";
  }
  return "?";
}

const std::vector<ReorderAlgo>& all_reorder_algos() {
  static const std::vector<ReorderAlgo> algos = {
      ReorderAlgo::kOriginal, ReorderAlgo::kRandom,  ReorderAlgo::kRCM,
      ReorderAlgo::kAMD,      ReorderAlgo::kND,      ReorderAlgo::kGP,
      ReorderAlgo::kHP,       ReorderAlgo::kGray,    ReorderAlgo::kRabbit,
      ReorderAlgo::kDegree,   ReorderAlgo::kSlashBurn};
  return algos;
}

Permutation original_order(const Csr& a) {
  Permutation p(static_cast<std::size_t>(a.nrows()));
  std::iota(p.begin(), p.end(), index_t{0});
  return p;
}

Permutation reorder(const Csr& a, ReorderAlgo algo, const ReorderOptions& opt) {
  CW_CHECK_MSG(a.nrows() == a.ncols(),
               "reordering expects a square matrix (got " << a.nrows() << "x"
                                                          << a.ncols() << ")");
  switch (algo) {
    case ReorderAlgo::kOriginal: return original_order(a);
    case ReorderAlgo::kRandom: return random_order(a, opt.seed);
    case ReorderAlgo::kRCM: return rcm_order(a);
    case ReorderAlgo::kAMD: return amd_order(a);
    case ReorderAlgo::kND: return nd_order(a, opt);
    case ReorderAlgo::kGP: return gp_order(a, opt);
    case ReorderAlgo::kHP: return hp_order(a, opt);
    case ReorderAlgo::kGray: return gray_order(a, opt);
    case ReorderAlgo::kRabbit: return rabbit_order(a);
    case ReorderAlgo::kDegree: return degree_order(a);
    case ReorderAlgo::kSlashBurn: return slashburn_order(a, opt);
  }
  CW_CHECK_MSG(false, "unknown reorder algorithm");
  return {};
}

}  // namespace cw
