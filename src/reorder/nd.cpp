#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "partition/partition.hpp"
#include "reorder/reorder.hpp"

namespace cw {

namespace {

/// Order a small leaf subgraph greedily by minimum degree (a cheap local
/// fill-reducing order; ties by id).
std::vector<index_t> leaf_order(const PGraph& g) {
  std::vector<index_t> deg(static_cast<std::size_t>(g.nv));
  for (index_t v = 0; v < g.nv; ++v) deg[static_cast<std::size_t>(v)] = g.degree(v);
  std::vector<index_t> order(static_cast<std::size_t>(g.nv));
  std::iota(order.begin(), order.end(), index_t{0});
  std::sort(order.begin(), order.end(), [&](index_t x, index_t y) {
    if (deg[static_cast<std::size_t>(x)] != deg[static_cast<std::size_t>(y)])
      return deg[static_cast<std::size_t>(x)] < deg[static_cast<std::size_t>(y)];
    return x < y;
  });
  return order;
}

void nd_recurse(const PGraph& g, const std::vector<index_t>& global_of,
                const ReorderOptions& opt, std::uint64_t seed,
                Permutation& out) {
  if (g.nv == 0) return;
  if (g.nv <= opt.nd_leaf_size) {
    for (index_t v : leaf_order(g))
      out.push_back(global_of[static_cast<std::size_t>(v)]);
    return;
  }
  Separator s = vertex_separator(g, seed);
  // Degenerate separator (e.g. disconnected star pieces): fall back to leaf
  // order to guarantee progress.
  if (s.left.empty() || s.right.empty()) {
    for (index_t v : leaf_order(g))
      out.push_back(global_of[static_cast<std::size_t>(v)]);
    return;
  }
  std::vector<index_t> gl, gr;
  PGraph lg = g.induced(s.left, gl);
  PGraph rg = g.induced(s.right, gr);
  for (auto& v : gl) v = global_of[static_cast<std::size_t>(v)];
  for (auto& v : gr) v = global_of[static_cast<std::size_t>(v)];
  nd_recurse(lg, gl, opt, seed * 6364136223846793005ULL + 1, out);
  nd_recurse(rg, gr, opt, seed * 6364136223846793005ULL + 2, out);
  // Separator vertices are ordered last (eliminated last in solver terms).
  for (index_t v : s.sep) out.push_back(global_of[static_cast<std::size_t>(v)]);
}

}  // namespace

// Nested dissection (George [18]): recursively split with a vertex
// separator; order = [left, right, separator].
Permutation nd_order(const Csr& a, const ReorderOptions& opt) {
  const PGraph g = PGraph::from_csr_pattern(a);
  std::vector<index_t> global_of(static_cast<std::size_t>(g.nv));
  std::iota(global_of.begin(), global_of.end(), index_t{0});
  Permutation out;
  out.reserve(static_cast<std::size_t>(g.nv));
  nd_recurse(g, global_of, opt, opt.seed, out);
  CW_CHECK(is_permutation(out, a.nrows()));
  return out;
}

}  // namespace cw
