#include <algorithm>

#include "common/error.hpp"
#include "graph/bfs.hpp"
#include "graph/peripheral.hpp"
#include "reorder/reorder.hpp"

namespace cw {

// Reverse Cuthill–McKee: per connected component, BFS from a
// pseudo-peripheral vertex visiting neighbours in increasing-degree order,
// then reverse the full visit sequence (George–Liu formulation).
Permutation rcm_order(const Csr& a) {
  const Csr g = a.symmetrized().without_diagonal();
  const index_t n = g.nrows();
  std::vector<std::uint8_t> placed(static_cast<std::size_t>(n), 0);
  Permutation cm;
  cm.reserve(static_cast<std::size_t>(n));

  // Visit components in order of their lowest-numbered vertex; start each at
  // a pseudo-peripheral node.
  for (index_t s = 0; s < n; ++s) {
    if (placed[static_cast<std::size_t>(s)]) continue;
    if (g.row_nnz(s) == 0) {  // isolated vertex
      cm.push_back(s);
      placed[static_cast<std::size_t>(s)] = 1;
      continue;
    }
    const index_t start = pseudo_peripheral_node(g, s);
    std::vector<index_t> order = bfs_order(g, start, /*sort_by_degree=*/true);
    for (index_t v : order) {
      CW_DCHECK(!placed[static_cast<std::size_t>(v)]);
      placed[static_cast<std::size_t>(v)] = 1;
      cm.push_back(v);
    }
  }
  std::reverse(cm.begin(), cm.end());
  return cm;
}

}  // namespace cw
