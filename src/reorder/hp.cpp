#include <algorithm>
#include <numeric>

#include "partition/hypergraph.hpp"
#include "reorder/reorder.hpp"

namespace cw {

// Hypergraph-partitioning reordering (PaToH cut-net objective in the paper):
// column-net model, k-way partition, rows ordered by part. Minimizing cut
// nets directly groups rows that touch the same columns of B.
Permutation hp_order(const Csr& a, const ReorderOptions& opt) {
  const index_t n = a.nrows();
  const index_t k = std::max<index_t>(
      2, (n + opt.rows_per_part - 1) / std::max<index_t>(opt.rows_per_part, 1));
  const Hypergraph h = Hypergraph::column_net(a);
  const std::vector<index_t> part = hp_kway_partition(h, k, opt.seed);

  Permutation p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), index_t{0});
  std::stable_sort(p.begin(), p.end(), [&](index_t x, index_t y) {
    return part[static_cast<std::size_t>(x)] < part[static_cast<std::size_t>(y)];
  });
  return p;
}

}  // namespace cw
