#include <algorithm>
#include <numeric>
#include <queue>

#include "common/error.hpp"
#include "reorder/reorder.hpp"

namespace cw {

// Approximate minimum degree (Amestoy–Davis–Duff style, simplified):
// quotient-graph elimination where each eliminated pivot becomes an
// *element* whose member list stands in for the clique its elimination
// would create. Degrees are the classical AMD upper bound
//   d(v) ≈ |A_v| + Σ_{live elements e ∋ v} |L_e|
// maintained lazily through a priority heap. Two standard engineering
// guards are included: element absorption (elements merged into a new pivot
// are marked dead and skipped lazily) and dense-vertex postponement
// (vertices with huge initial degree are ordered last, as real AMD codes do
// — they would otherwise drag quadratic work into the quotient graph).
Permutation amd_order(const Csr& a) {
  const Csr g = a.symmetrized().without_diagonal();
  const index_t n = g.nrows();

  // Mutable variable adjacency + element membership.
  std::vector<std::vector<index_t>> var_adj(static_cast<std::size_t>(n));
  std::vector<std::vector<index_t>> elem_adj(static_cast<std::size_t>(n));
  std::vector<std::vector<index_t>> elem_members(static_cast<std::size_t>(n));
  for (index_t v = 0; v < n; ++v) {
    auto cols = g.row_cols(v);
    var_adj[static_cast<std::size_t>(v)].assign(cols.begin(), cols.end());
  }

  enum class State : std::uint8_t { kVariable, kEliminated, kDense };
  std::vector<State> state(static_cast<std::size_t>(n), State::kVariable);
  std::vector<std::uint8_t> elem_dead(static_cast<std::size_t>(n), 0);
  std::vector<offset_t> degree(static_cast<std::size_t>(n));

  // Dense-vertex postponement threshold.
  const double avg_deg = n > 0 ? static_cast<double>(g.nnz()) / n : 0.0;
  const auto dense_th = static_cast<offset_t>(
      std::max(64.0, 10.0 * avg_deg + 16.0));
  std::vector<index_t> dense_rows;
  for (index_t v = 0; v < n; ++v) {
    degree[static_cast<std::size_t>(v)] =
        static_cast<offset_t>(var_adj[static_cast<std::size_t>(v)].size());
    if (degree[static_cast<std::size_t>(v)] > dense_th) {
      state[static_cast<std::size_t>(v)] = State::kDense;
      dense_rows.push_back(v);
    }
  }

  struct HeapEntry {
    offset_t deg;
    index_t v;
    bool operator>(const HeapEntry& o) const {
      if (deg != o.deg) return deg > o.deg;
      return v > o.v;
    }
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  for (index_t v = 0; v < n; ++v)
    if (state[static_cast<std::size_t>(v)] == State::kVariable)
      heap.push({degree[static_cast<std::size_t>(v)], v});

  std::vector<index_t> stamp(static_cast<std::size_t>(n), -1);
  index_t stamp_gen = 0;
  Permutation order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<index_t> lp;  // L_p scratch

  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    const index_t p = top.v;
    if (state[static_cast<std::size_t>(p)] != State::kVariable) continue;
    if (top.deg != degree[static_cast<std::size_t>(p)]) continue;  // stale

    // --- Eliminate p: build L_p = live variables adjacent through A_p and
    // through p's live elements. ---
    ++stamp_gen;
    lp.clear();
    auto absorb = [&](index_t v) {
      if (v == p) return;
      if (state[static_cast<std::size_t>(v)] != State::kVariable) return;
      if (stamp[static_cast<std::size_t>(v)] == stamp_gen) return;
      stamp[static_cast<std::size_t>(v)] = stamp_gen;
      lp.push_back(v);
    };
    for (index_t v : var_adj[static_cast<std::size_t>(p)]) absorb(v);
    for (index_t e : elem_adj[static_cast<std::size_t>(p)]) {
      if (elem_dead[static_cast<std::size_t>(e)]) continue;
      for (index_t v : elem_members[static_cast<std::size_t>(e)]) absorb(v);
      elem_dead[static_cast<std::size_t>(e)] = 1;  // absorbed into element p
      elem_members[static_cast<std::size_t>(e)].clear();
      elem_members[static_cast<std::size_t>(e)].shrink_to_fit();
    }
    state[static_cast<std::size_t>(p)] = State::kEliminated;
    order.push_back(p);
    var_adj[static_cast<std::size_t>(p)].clear();
    var_adj[static_cast<std::size_t>(p)].shrink_to_fit();
    elem_adj[static_cast<std::size_t>(p)].clear();
    elem_adj[static_cast<std::size_t>(p)].shrink_to_fit();
    elem_members[static_cast<std::size_t>(p)] = lp;

    // --- Update every v ∈ L_p. ---
    for (index_t v : lp) {
      // Prune A_v: drop p, eliminated vertices, and members of L_p (their
      // coupling is now represented by element p).
      auto& av = var_adj[static_cast<std::size_t>(v)];
      std::size_t out = 0;
      for (index_t w : av) {
        if (w == p) continue;
        if (state[static_cast<std::size_t>(w)] != State::kVariable &&
            state[static_cast<std::size_t>(w)] != State::kDense)
          continue;
        if (stamp[static_cast<std::size_t>(w)] == stamp_gen) continue;
        av[out++] = w;
      }
      av.resize(out);
      // Compact element list (drop absorbed) and append element p.
      auto& ev = elem_adj[static_cast<std::size_t>(v)];
      out = 0;
      for (index_t e : ev) {
        if (!elem_dead[static_cast<std::size_t>(e)]) ev[out++] = e;
      }
      ev.resize(out);
      ev.push_back(p);
      // AMD approximate degree.
      offset_t d = static_cast<offset_t>(av.size());
      for (index_t e : ev)
        d += static_cast<offset_t>(elem_members[static_cast<std::size_t>(e)].size()) - 1;
      degree[static_cast<std::size_t>(v)] = d;
      heap.push({d, v});
    }
  }

  // Postponed dense vertices: ascending current degree, ties by id.
  std::sort(dense_rows.begin(), dense_rows.end(), [&](index_t x, index_t y) {
    if (degree[static_cast<std::size_t>(x)] != degree[static_cast<std::size_t>(y)])
      return degree[static_cast<std::size_t>(x)] < degree[static_cast<std::size_t>(y)];
    return x < y;
  });
  order.insert(order.end(), dense_rows.begin(), dense_rows.end());
  CW_CHECK(is_permutation(order, n));
  return order;
}

}  // namespace cw
