#include <algorithm>
#include <numeric>

#include "graph/community.hpp"
#include "reorder/reorder.hpp"

namespace cw {

// Rabbit Order (Arai et al. [5]): hierarchical community aggregation, then
// new ids assigned so each community's vertices are consecutive at every
// level of the hierarchy. We run aggregation levels until they stop merging,
// remember each vertex's community id per level, and sort vertices by the
// (coarsest, ..., finest) label tuple — the DFS order of the dendrogram.
Permutation rabbit_order(const Csr& a) {
  const Csr g0 = a.symmetrized().without_diagonal();
  const index_t n = g0.nrows();

  // labels[l][v] = community of v at level l (composed down to vertices).
  std::vector<std::vector<index_t>> labels;
  Csr g = g0.pattern_ones();
  std::vector<index_t> volume(static_cast<std::size_t>(n));
  for (index_t v = 0; v < n; ++v) volume[static_cast<std::size_t>(v)] = g.row_nnz(v);
  std::vector<index_t> to_fine(static_cast<std::size_t>(n));  // coarse id of each fine vertex
  std::iota(to_fine.begin(), to_fine.end(), index_t{0});

  for (int level = 0; level < 16; ++level) {
    AggregationLevel agg = aggregate_communities(g, volume);
    if (agg.num_communities >= g.nrows()) break;  // nothing merged
    // Compose to fine vertices.
    std::vector<index_t> composed(static_cast<std::size_t>(n));
    for (index_t v = 0; v < n; ++v)
      composed[static_cast<std::size_t>(v)] =
          agg.community[static_cast<std::size_t>(to_fine[static_cast<std::size_t>(v)])];
    labels.push_back(composed);
    to_fine = std::move(composed);
    volume = std::move(agg.volume);
    g = std::move(agg.coarse);
    if (g.nrows() <= 1) break;
  }

  Permutation p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), index_t{0});
  std::sort(p.begin(), p.end(), [&](index_t x, index_t y) {
    for (auto it = labels.rbegin(); it != labels.rend(); ++it) {
      const index_t lx = (*it)[static_cast<std::size_t>(x)];
      const index_t ly = (*it)[static_cast<std::size_t>(y)];
      if (lx != ly) return lx < ly;
    }
    return x < y;
  });
  return p;
}

}  // namespace cw
