#include <algorithm>
#include <numeric>

#include "reorder/reorder.hpp"

namespace cw {

// Descending-degree packing: high-degree rows first so hub rows share cache
// lines (Table 1: "Reorder in descending order of degrees").
Permutation degree_order(const Csr& a) {
  const Csr sym = a.symmetrized();
  Permutation p(static_cast<std::size_t>(a.nrows()));
  std::iota(p.begin(), p.end(), index_t{0});
  std::stable_sort(p.begin(), p.end(), [&](index_t x, index_t y) {
    return sym.row_nnz(x) > sym.row_nnz(y);
  });
  return p;
}

}  // namespace cw
