// The 10 row-reordering algorithms of Table 1, behind one dispatch.
//
// Every algorithm returns a Permutation (order[new_pos] = old row id) meant
// to be applied symmetrically (P·A·Pᵀ) to a square matrix. All of them work
// on the symmetrized pattern of A, matching the SpMV-reordering practice the
// paper inherits its implementations from.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "matrix/csr.hpp"

namespace cw {

enum class ReorderAlgo {
  kOriginal,   // identity
  kRandom,     // random shuffle (the paper's extreme baseline)
  kRCM,        // reverse Cuthill–McKee
  kAMD,        // approximate minimum degree
  kND,         // nested dissection
  kGP,         // graph partitioning (METIS substitute)
  kHP,         // hypergraph partitioning (PaToH substitute)
  kGray,       // Gray-code ordering (Zhao et al.)
  kRabbit,     // community-based reordering (Arai et al.)
  kDegree,     // descending degree
  kSlashBurn,  // hubs-and-spokes (Lim et al.)
};

const char* to_string(ReorderAlgo algo);

/// All algorithms in Table-1 order (Original first).
const std::vector<ReorderAlgo>& all_reorder_algos();

struct ReorderOptions {
  std::uint64_t seed = 1;
  /// GP/HP: rows per part; the part count is ceil(n / rows_per_part).
  index_t rows_per_part = 4096;
  /// ND: subgraphs at or below this size are ordered directly.
  index_t nd_leaf_size = 64;
  /// SlashBurn: hub fraction removed per iteration (k = max(1, frac·n)).
  double slashburn_hub_fraction = 0.005;
  /// Gray: rows with nnz above this many are "dense" and ordered first;
  /// 0 = auto (2× average row nnz, min 16).
  index_t gray_dense_threshold = 0;
};

/// Dispatch. Throws cw::Error for non-square inputs.
Permutation reorder(const Csr& a, ReorderAlgo algo,
                    const ReorderOptions& opt = {});

// Individual algorithms (same contract as reorder()).
Permutation original_order(const Csr& a);
Permutation random_order(const Csr& a, std::uint64_t seed);
Permutation rcm_order(const Csr& a);
Permutation amd_order(const Csr& a);
Permutation nd_order(const Csr& a, const ReorderOptions& opt);
Permutation gp_order(const Csr& a, const ReorderOptions& opt);
Permutation hp_order(const Csr& a, const ReorderOptions& opt);
Permutation gray_order(const Csr& a, const ReorderOptions& opt);
Permutation rabbit_order(const Csr& a);
Permutation degree_order(const Csr& a);
Permutation slashburn_order(const Csr& a, const ReorderOptions& opt);

}  // namespace cw
