// Dense sparse accumulator (SPA, Gilbert–Moler–Schreiber): an ncols-wide
// value array plus an occupancy flag array and a list of touched columns.
// O(1) insert, O(#touched) reset, but O(ncols) memory per thread — the
// classical alternative to the hash accumulator, used in ablation benches.
#pragma once

#include <algorithm>
#include <vector>

#include "common/types.hpp"

namespace cw {

class DenseAccumulator {
 public:
  explicit DenseAccumulator(index_t ncols)
      : vals_(static_cast<std::size_t>(ncols), 0.0),
        present_(static_cast<std::size_t>(ncols), 0) {}

  void add(index_t key, value_t v) {
    if (!present_[static_cast<std::size_t>(key)]) {
      present_[static_cast<std::size_t>(key)] = 1;
      touched_.push_back(key);
    }
    vals_[static_cast<std::size_t>(key)] += v;
  }

  void add_symbolic(index_t key) {
    if (!present_[static_cast<std::size_t>(key)]) {
      present_[static_cast<std::size_t>(key)] = 1;
      touched_.push_back(key);
    }
  }

  [[nodiscard]] index_t size() const {
    return static_cast<index_t>(touched_.size());
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (index_t c : touched_) fn(c, vals_[static_cast<std::size_t>(c)]);
  }

  void extract_sorted(std::vector<index_t>& cols, std::vector<value_t>& vals) {
    std::sort(touched_.begin(), touched_.end());
    for (index_t c : touched_) {
      cols.push_back(c);
      vals.push_back(vals_[static_cast<std::size_t>(c)]);
    }
  }

  void reset() {
    for (index_t c : touched_) {
      present_[static_cast<std::size_t>(c)] = 0;
      vals_[static_cast<std::size_t>(c)] = 0.0;
    }
    touched_.clear();
  }

 private:
  std::vector<value_t> vals_;
  std::vector<std::uint8_t> present_;
  std::vector<index_t> touched_;
};

}  // namespace cw
