// Dense sparse accumulator (SPA, Gilbert–Moler–Schreiber): an ncols-wide
// value array plus an occupancy flag array and a list of touched columns.
// O(1) insert, O(#touched) reset, but O(ncols) memory per thread — the
// classical alternative to the hash accumulator, used in ablation benches.
#pragma once

#include <algorithm>
#include <vector>

#include "common/types.hpp"
#include "simd/dispatch.hpp"

namespace cw {

class DenseAccumulator {
 public:
  explicit DenseAccumulator(index_t ncols)
      : vals_(static_cast<std::size_t>(ncols), 0.0),
        present_(static_cast<std::size_t>(ncols), 0) {}

  void add(index_t key, value_t v) {
    if (!present_[static_cast<std::size_t>(key)]) {
      present_[static_cast<std::size_t>(key)] = 1;
      touched_.push_back(key);
    }
    vals_[static_cast<std::size_t>(key)] += v;
  }

  void add_symbolic(index_t key) {
    if (!present_[static_cast<std::size_t>(key)]) {
      present_[static_cast<std::size_t>(key)] = 1;
      touched_.push_back(key);
    }
  }

  [[nodiscard]] index_t size() const {
    return static_cast<index_t>(touched_.size());
  }

  /// Iterates in insertion order — extract_sorted does not disturb it.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (index_t c : touched_) fn(c, vals_[static_cast<std::size_t>(c)]);
  }

  /// Append the entries sorted by key. Sorts a scratch copy of the touched
  /// list: extraction used to std::sort touched_ in place, so a for_each (or
  /// any order-dependent consumer) after an extraction silently observed
  /// sorted order instead of insertion order. The value gather runs through
  /// the dispatched SIMD kernel (pure data movement, bit-exact).
  void extract_sorted(std::vector<index_t>& cols, std::vector<value_t>& vals) {
    scratch_.assign(touched_.begin(), touched_.end());
    std::sort(scratch_.begin(), scratch_.end());
    const std::size_t base = cols.size();
    cols.reserve(base + scratch_.size());
    vals.reserve(base + scratch_.size());
    cols.insert(cols.end(), scratch_.begin(), scratch_.end());
    vals.resize(base + scratch_.size());
    simd::kernels().gather_f64(vals.data() + base, vals_.data(),
                               scratch_.data(), scratch_.size());
  }

  void reset() {
    // Once a decent fraction of the columns was touched, two wholesale
    // vectorized fills beat per-entry scatter stores; sparsely touched rows
    // keep the O(#touched) clear.
    if (touched_.size() >= vals_.size() / 8) {
      simd::kernels().fill_zero_f64(vals_.data(), vals_.size());
      simd::kernels().fill_zero_u8(present_.data(), present_.size());
    } else {
      for (index_t c : touched_) {
        present_[static_cast<std::size_t>(c)] = 0;
        vals_[static_cast<std::size_t>(c)] = 0.0;
      }
    }
    touched_.clear();
  }

 private:
  std::vector<value_t> vals_;
  std::vector<std::uint8_t> present_;
  std::vector<index_t> touched_;
  std::vector<index_t> scratch_;  // reused per-extraction sort buffer
};

}  // namespace cw
