// Hash-table sparse accumulator in the style of Nagasaka et al. [40] — the
// accumulator the paper uses for every SpGEMM experiment.
//
// Open addressing, linear probing, power-of-two capacity. One instance is
// reused across all rows processed by a thread: reset() clears only the
// occupied slots (tracked in an occupancy list), so per-row cost is O(row
// output size), not O(capacity).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace cw {

class HashAccumulator {
 public:
  HashAccumulator() { rehash_(kMinCapacity); }

  /// Make sure at least `n` distinct keys fit without rehash mid-row.
  void reserve(index_t n) {
    std::size_t want = kMinCapacity;
    while (want < static_cast<std::size_t>(n) * 2) want <<= 1;
    if (want > capacity_) rehash_(want);
  }

  /// value[key] += v, inserting the key if absent.
  void add(index_t key, value_t v) {
    if (occupied_.size() * 2 >= capacity_) grow_();
    std::size_t slot = probe_(key);
    if (keys_[slot] == kEmpty) {
      keys_[slot] = key;
      vals_[slot] = v;
      occupied_.push_back(static_cast<std::uint32_t>(slot));
    } else {
      vals_[slot] += v;
    }
  }

  /// Insert the key with value 0 if absent (symbolic phase).
  void add_symbolic(index_t key) {
    if (occupied_.size() * 2 >= capacity_) grow_();
    std::size_t slot = probe_(key);
    if (keys_[slot] == kEmpty) {
      keys_[slot] = key;
      vals_[slot] = 0.0;
      occupied_.push_back(static_cast<std::uint32_t>(slot));
    }
  }

  /// Number of distinct keys inserted since the last reset.
  [[nodiscard]] index_t size() const {
    return static_cast<index_t>(occupied_.size());
  }

  /// Call fn(key, value) for every entry, in unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::uint32_t slot : occupied_) fn(keys_[slot], vals_[slot]);
  }

  /// Extract entries sorted by key into (cols, vals), appending.
  void extract_sorted(std::vector<index_t>& cols, std::vector<value_t>& vals);

  /// Forget all entries; O(#entries).
  void reset() {
    for (std::uint32_t slot : occupied_) keys_[slot] = kEmpty;
    occupied_.clear();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  static constexpr index_t kEmpty = -1;
  static constexpr std::size_t kMinCapacity = 16;

  static std::uint64_t hash_(index_t key) {
    // Fibonacci hashing; good spread for consecutive column ids.
    return static_cast<std::uint64_t>(static_cast<std::uint32_t>(key)) *
           0x9e3779b97f4a7c15ULL;
  }

  std::size_t probe_(index_t key) const {
    std::size_t slot = static_cast<std::size_t>(hash_(key) >> shift_);
    while (keys_[slot] != kEmpty && keys_[slot] != key) {
      slot = (slot + 1) & (capacity_ - 1);
    }
    return slot;
  }

  void rehash_(std::size_t new_capacity) {
    std::vector<index_t> old_keys = std::move(keys_);
    std::vector<value_t> old_vals = std::move(vals_);
    std::vector<std::uint32_t> old_occ = std::move(occupied_);
    capacity_ = new_capacity;
    shift_ = 64 - log2_(capacity_);
    keys_.assign(capacity_, kEmpty);
    vals_.assign(capacity_, 0.0);
    occupied_.clear();
    occupied_.reserve(capacity_ / 2 + 1);
    for (std::uint32_t slot : old_occ) {
      std::size_t s = probe_(old_keys[slot]);
      keys_[s] = old_keys[slot];
      vals_[s] = old_vals[slot];
      occupied_.push_back(static_cast<std::uint32_t>(s));
    }
  }

  void grow_() { rehash_(capacity_ * 2); }

  static int log2_(std::size_t x) {
    int n = 0;
    while ((std::size_t{1} << n) < x) ++n;
    return n;
  }

  std::size_t capacity_ = 0;
  int shift_ = 0;
  std::vector<index_t> keys_;
  std::vector<value_t> vals_;
  std::vector<std::uint32_t> occupied_;
};

inline void HashAccumulator::extract_sorted(std::vector<index_t>& cols,
                                            std::vector<value_t>& vals) {
  const std::size_t base = cols.size();
  cols.resize(base + occupied_.size());
  vals.resize(base + occupied_.size());
  // Sort the occupancy list by key, then copy out.
  std::sort(occupied_.begin(), occupied_.end(),
            [&](std::uint32_t a, std::uint32_t b) { return keys_[a] < keys_[b]; });
  for (std::size_t i = 0; i < occupied_.size(); ++i) {
    cols[base + i] = keys_[occupied_[i]];
    vals[base + i] = vals_[occupied_[i]];
  }
}

}  // namespace cw
