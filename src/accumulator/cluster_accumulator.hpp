// Lane-structured sparse accumulator for cluster-wise SpGEMM.
//
// Rows of a cluster are similar by construction, so they produce mostly the
// same output columns. Instead of one hash accumulator per cluster row (one
// probe per (row, B-entry)), a single table keyed by output column holds K
// value lanes plus a presence mask: one probe per (cluster column, B-entry)
// serves every row at once, and the per-row products accumulate into
// contiguous lanes. The probe saving is proportional to the very reuse the
// CSR_Cluster format creates — this is where Alg. 1's locality turns into
// single-thread arithmetic savings too.
#pragma once

#include <algorithm>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "simd/dispatch.hpp"

namespace cw {

class ClusterAccumulator {
 public:
  static constexpr index_t kMaxLanes = 64;

  explicit ClusterAccumulator(index_t lanes = 1) { configure(lanes); }

  /// Set the lane count (cluster size). Implies reset(). Lane counts above
  /// kMaxLanes are rejected, not clamped: the presence masks are 64-bit, so
  /// lane 64 would shift a uint64_t by >= 64 (UB) and silently corrupt the
  /// output pattern. Callers with wider clusters must split them first
  /// (Clustering::split).
  void configure(index_t lanes) {
    CW_CHECK_MSG(lanes <= kMaxLanes,
                 "ClusterAccumulator: " << lanes << " lanes exceeds kMaxLanes ("
                                        << kMaxLanes
                                        << "); split the cluster");
    lanes_ = std::max<index_t>(lanes, 1);
    lane_fma_ = simd::kernels().lane_fma;
    if (capacity_ == 0) rehash_(kMinCapacity);
    // slot_for() zero-fills a lane the moment its key is inserted, so stale
    // values from earlier clusters are unreachable — only the backing
    // array's size must track the lane count. A full O(capacity × lanes)
    // clear here would tax every cluster with the table growth caused by
    // the widest row of the run (column-stacked panels especially).
    if (vals_.size() < capacity_ * static_cast<std::size_t>(lanes_))
      vals_.resize(capacity_ * static_cast<std::size_t>(lanes_));
    for (std::uint32_t slot : occupied_) keys_[slot] = kEmpty;
    occupied_.clear();
    sorted_ = true;
  }

  [[nodiscard]] index_t lanes() const { return lanes_; }

  /// Returns the slot for `key`, inserting it (mask 0, zero lanes) if new.
  std::size_t slot_for(index_t key) {
    if (occupied_.size() * 2 >= capacity_) grow_();
    std::size_t slot = probe_(key);
    if (keys_[slot] == kEmpty) {
      keys_[slot] = key;
      masks_[slot] = 0;
      value_t* lane = &vals_[slot * static_cast<std::size_t>(lanes_)];
      std::fill(lane, lane + lanes_, 0.0);
      occupied_.push_back(static_cast<std::uint32_t>(slot));
      sorted_ = false;
    }
    return slot;
  }

  /// Symbolic insert: record that rows in `mask` produce column `key`.
  void add_symbolic(index_t key, std::uint64_t mask) {
    masks_[slot_for(key)] |= mask;
  }

  /// Numeric insert: lane r += avals[r] * bv for rows owning the column.
  /// Dense masks take the K-wide lane update — dispatched to the active SIMD
  /// tier for wide lanes (per-lane order-preserving mul-then-add, so the
  /// vector path is bit-identical to the scalar loop; padding lanes carry
  /// avals[r] == 0, guaranteed by CSR_Cluster, so they accumulate zeros).
  /// Sparse masks iterate set bits to avoid wasted lane work. The mask keeps
  /// the *pattern* exact either way.
  void add_scaled(index_t key, std::uint64_t mask, const value_t* avals,
                  value_t bv) {
    const std::size_t slot = slot_for(key);
    masks_[slot] |= mask;
    value_t* lane = &vals_[slot * static_cast<std::size_t>(lanes_)];
    if (2 * __builtin_popcountll(mask) >= lanes_) {
      if (lanes_ >= simd::kMinVectorLanes) {
        lane_fma_(lane, avals, bv, lanes_);
      } else {
        for (index_t r = 0; r < lanes_; ++r) lane[r] += avals[r] * bv;
      }
    } else {
      std::uint64_t m = mask;
      while (m) {
        const int r = __builtin_ctzll(m);
        m &= m - 1;
        lane[r] += avals[r] * bv;
      }
    }
  }

  /// Distinct keys seen by lane r.
  [[nodiscard]] index_t lane_size(index_t r) const {
    index_t count = 0;
    const std::uint64_t bit = std::uint64_t{1} << r;
    for (std::uint32_t slot : occupied_)
      if (masks_[slot] & bit) ++count;
    return count;
  }

  /// Distinct keys per lane, all lanes in one pass over the table.
  void lane_sizes(std::vector<offset_t>& out) const {
    out.assign(static_cast<std::size_t>(lanes_), 0);
    for (std::uint32_t slot : occupied_) {
      std::uint64_t m = masks_[slot];
      while (m) {
        const int r = __builtin_ctzll(m);
        m &= m - 1;
        ++out[static_cast<std::size_t>(r)];
      }
    }
  }

  /// Extract lane r sorted by key, appending to (cols, vals).
  void extract_lane_sorted(index_t r, std::vector<index_t>& cols,
                           std::vector<value_t>& vals) {
    sort_occupied_();
    const std::uint64_t bit = std::uint64_t{1} << r;
    for (std::uint32_t slot : occupied_) {
      if (masks_[slot] & bit) {
        cols.push_back(keys_[slot]);
        vals.push_back(vals_[static_cast<std::size_t>(slot) *
                                 static_cast<std::size_t>(lanes_) +
                             static_cast<std::size_t>(r)]);
      }
    }
  }

  /// Extract every lane in one pass over the (sorted) table. `emit(r, key,
  /// value)` is called in ascending-key order within each lane.
  template <typename Emit>
  void extract_all_sorted(Emit&& emit) {
    sort_occupied_();
    for (std::uint32_t slot : occupied_) {
      const index_t key = keys_[slot];
      const value_t* lane = &vals_[static_cast<std::size_t>(slot) *
                                   static_cast<std::size_t>(lanes_)];
      std::uint64_t m = masks_[slot];
      while (m) {
        const int r = __builtin_ctzll(m);
        m &= m - 1;
        emit(static_cast<index_t>(r), key, lane[r]);
      }
    }
  }

  /// Forget all entries; O(#entries × lanes).
  void reset() {
    for (std::uint32_t slot : occupied_) {
      keys_[slot] = kEmpty;
      value_t* lane = &vals_[static_cast<std::size_t>(slot) *
                             static_cast<std::size_t>(lanes_)];
      std::fill(lane, lane + lanes_, 0.0);
    }
    occupied_.clear();
    sorted_ = true;
  }

  [[nodiscard]] index_t size() const {
    return static_cast<index_t>(occupied_.size());
  }

 private:
  static constexpr index_t kEmpty = -1;
  static constexpr std::size_t kMinCapacity = 16;

  static std::uint64_t hash_(index_t key) {
    // Mix the full key width. Truncating to uint32 before the multiply would
    // alias keys differing only in high bits onto one probe chain the moment
    // index_t widens to 64 bits; the xor-shift folds the multiply's high
    // bits back down so probe_'s top-bits slot (>> shift_) sees all of them.
    std::uint64_t x =
        static_cast<std::uint64_t>(static_cast<std::make_unsigned_t<index_t>>(key));
    x *= 0x9e3779b97f4a7c15ULL;
    x ^= x >> 32;
    x *= 0xbf58476d1ce4e5b9ULL;
    return x;
  }

  std::size_t probe_(index_t key) const {
    std::size_t slot = static_cast<std::size_t>(hash_(key) >> shift_);
    while (keys_[slot] != kEmpty && keys_[slot] != key) {
      slot = (slot + 1) & (capacity_ - 1);
    }
    return slot;
  }

  void rehash_(std::size_t new_capacity) {
    std::vector<index_t> old_keys = std::move(keys_);
    std::vector<std::uint64_t> old_masks = std::move(masks_);
    std::vector<value_t> old_vals = std::move(vals_);
    std::vector<std::uint32_t> old_occ = std::move(occupied_);
    capacity_ = new_capacity;
    shift_ = 64 - log2_(capacity_);
    keys_.assign(capacity_, kEmpty);
    masks_.assign(capacity_, 0);
    vals_.assign(capacity_ * static_cast<std::size_t>(lanes_), 0.0);
    occupied_.clear();
    occupied_.reserve(capacity_ / 2 + 1);
    for (std::uint32_t slot : old_occ) {
      const std::size_t s = probe_(old_keys[slot]);
      keys_[s] = old_keys[slot];
      masks_[s] = old_masks[slot];
      for (index_t r = 0; r < lanes_; ++r) {
        vals_[s * static_cast<std::size_t>(lanes_) + static_cast<std::size_t>(r)] =
            old_vals[static_cast<std::size_t>(slot) *
                         static_cast<std::size_t>(lanes_) +
                     static_cast<std::size_t>(r)];
      }
      occupied_.push_back(static_cast<std::uint32_t>(s));
    }
    sorted_ = false;
  }

  void grow_() { rehash_(capacity_ * 2); }

  void sort_occupied_() {
    if (sorted_) return;
    std::sort(occupied_.begin(), occupied_.end(),
              [&](std::uint32_t a, std::uint32_t b) { return keys_[a] < keys_[b]; });
    sorted_ = true;
  }

  static int log2_(std::size_t x) {
    int n = 0;
    while ((std::size_t{1} << n) < x) ++n;
    return n;
  }

  index_t lanes_ = 1;
  // Dense-branch lane kernel, re-fetched from the dispatch table at every
  // configure() so per-cluster work never re-probes mid-loop.
  void (*lane_fma_)(value_t*, const value_t*, value_t, index_t) = nullptr;
  std::size_t capacity_ = 0;
  int shift_ = 0;
  bool sorted_ = true;
  std::vector<index_t> keys_;
  std::vector<std::uint64_t> masks_;
  std::vector<value_t> vals_;
  std::vector<std::uint32_t> occupied_;
};

}  // namespace cw
