// Sort-based accumulator: append (col, val) pairs, then sort-and-combine at
// extraction. No per-row state beyond the pair buffer; best when rows have
// few intermediate products. Ablation counterpart of the hash accumulator.
#pragma once

#include <algorithm>
#include <vector>

#include "common/types.hpp"

namespace cw {

class SortAccumulator {
 public:
  void add(index_t key, value_t v) {
    buf_.emplace_back(key, v);
    combined_ = false;
  }
  void add_symbolic(index_t key) {
    buf_.emplace_back(key, 0.0);
    combined_ = false;
  }

  /// Distinct keys — requires a combine pass, O(n log n).
  [[nodiscard]] index_t size() {
    combine_();
    return static_cast<index_t>(buf_.size());
  }

  template <typename Fn>
  void for_each(Fn&& fn) {
    combine_();
    for (const auto& [c, v] : buf_) fn(c, v);
  }

  void extract_sorted(std::vector<index_t>& cols, std::vector<value_t>& vals) {
    combine_();
    for (const auto& [c, v] : buf_) {
      cols.push_back(c);
      vals.push_back(v);
    }
  }

  void reset() {
    buf_.clear();
    combined_ = true;
  }

 private:
  void combine_() {
    if (combined_) return;
    // Stable: duplicate keys must be summed in insertion order, so that a
    // column's value is independent of which other columns share the row —
    // the invariant the stacked-panel path (spgemm/stacked.hpp) relies on
    // for bit-identity with per-request multiplies.
    std::stable_sort(buf_.begin(), buf_.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    std::size_t out = 0;
    for (std::size_t i = 0; i < buf_.size(); ++i) {
      if (out > 0 && buf_[out - 1].first == buf_[i].first) {
        buf_[out - 1].second += buf_[i].second;
      } else {
        buf_[out++] = buf_[i];
      }
    }
    buf_.resize(out);
    combined_ = true;
  }

  std::vector<std::pair<index_t, value_t>> buf_;
  bool combined_ = true;
};

}  // namespace cw
