#include "fault/quarantine.hpp"

#include <utility>

namespace cw::fault {

Quarantine::Quarantine(QuarantineOptions opt) : opt_(opt) {}

void Quarantine::put(const std::string& key, std::string reason) {
  if (opt_.ttl.count() <= 0 || opt_.capacity == 0) return;
  const Clock::time_point now = Clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  if (map_.size() >= opt_.capacity && map_.find(key) == map_.end()) {
    // At capacity, sacrifice the entry closest to expiry: it was the least
    // protection left to lose.
    auto victim = map_.begin();
    for (auto it = map_.begin(); it != map_.end(); ++it)
      if (it->second.expires < victim->second.expires) victim = it;
    map_.erase(victim);
  }
  map_[key] = Entry{now + opt_.ttl, std::move(reason)};
  ++quarantined_;
}

bool Quarantine::blocked(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  if (Clock::now() >= it->second.expires) {
    map_.erase(it);  // TTL elapsed: the key earns another chance
    return false;
  }
  ++blocked_;
  return true;
}

std::optional<std::string> Quarantine::reason(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end() || Clock::now() >= it->second.expires)
    return std::nullopt;
  return it->second.reason;
}

void Quarantine::release(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  map_.erase(key);
}

void Quarantine::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
}

std::size_t Quarantine::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

std::uint64_t Quarantine::quarantined_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantined_;
}

std::uint64_t Quarantine::blocked_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocked_;
}

}  // namespace cw::fault
