// Deterministic fault injection for the containment plane's chaos drills.
//
// Sites are string-named probe points compiled permanently into the
// serving and snapshot-IO paths (`snapshot.read`, `snapshot.checksum`,
// `mmap.map`, `engine.multiply`, `shard.multiply_k`, `registry.admit`).
// A probe at a DISARMED injector costs exactly one relaxed atomic load —
// no map lookup, no lock, no string hash — so the hooks stay on in release
// builds and the chaos CI exercises the very binary that ships.
//
// Arming is per site, by per-hit probability or fire-on-the-Nth-hit, with
// an explicitly seeded xoshiro RNG (common/rng.hpp): the same seed and the
// same single-threaded hit order reproduce the same fires, and @N specs
// are deterministic regardless of scheduling. Drive it programmatically
// (tests), from `cwtool serve-bench --fault site=spec`, or from the
// `CW_FAULT` environment variable (applied once, on first probe).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "fault/status.hpp"

namespace cw::fault {

/// How an armed site fires. Exactly one trigger is active: `fire_on_hit`
/// when non-zero (deterministic), else `probability` per hit (seeded RNG).
struct FaultSpec {
  /// Per-hit fire probability in [0, 1]; 1 fires on every hit.
  double probability = 0.0;
  /// Fire exactly on the Nth hit of the site (1-based). 0 = use
  /// probability instead.
  std::uint64_t fire_on_hit = 0;
  /// Stop firing after this many fires; 0 = unlimited. arm_from_spec's
  /// `@N` grammar sets 1 (a one-shot fault).
  std::uint64_t max_fires = 0;
  /// Code of the injected StatusError; kOk = the probe site's own default
  /// (snapshot sites throw kCorruptSnapshot/kIoError, multiply sites
  /// kInternal).
  ErrorCode code = ErrorCode::kOk;
};

class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// The process-wide injector every inject() probe consults. Applies
  /// CW_FAULT / CW_FAULT_SEED once on first use; intentionally leaked so
  /// probes stay valid during static destruction.
  static FaultInjector& global();

  void arm(const std::string& site, FaultSpec spec);
  void disarm(const std::string& site);

  /// Disarm every site and zero the hit/fire counters (test isolation).
  void reset();

  /// Re-seed the RNG behind probability-armed sites.
  void seed(std::uint64_t s);

  /// Arm sites from a comma-separated spec string:
  ///   "engine.multiply=0.02"  — 2% per-hit probability
  ///   "snapshot.read=@3"      — fire exactly on the 3rd hit, once
  ///   "a=0.5,b=@1"            — several sites at once
  /// Returns how many sites were armed; throws Error on a malformed spec.
  int arm_from_spec(const std::string& spec);

  /// Arm from the environment: `var` holds an arm_from_spec string,
  /// CW_FAULT_SEED (optional) a decimal RNG seed. Returns sites armed (0
  /// when the variable is unset or empty).
  int arm_from_env(const char* var = "CW_FAULT");

  /// One relaxed load — the whole cost of a probe while nothing is armed.
  [[nodiscard]] bool armed() const {
    return armed_sites_.load(std::memory_order_relaxed) != 0;
  }

  /// Count a hit at `site` and throw StatusError when it fires. Called via
  /// inject() below, which short-circuits on armed() first.
  void check(const char* site, ErrorCode default_code);

  /// Lifetime hit/fire counts of a site (0 if never armed). Hits are only
  /// counted while the injector has ANY armed site — the zero-cost
  /// disarmed path does not track traffic.
  [[nodiscard]] std::uint64_t hits(const std::string& site) const;
  [[nodiscard]] std::uint64_t fires(const std::string& site) const;

  /// (site, fires) for every site that fired at least once — the
  /// serve-bench summary's injection report.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  fired_sites() const;

 private:
  struct Site {
    FaultSpec spec;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
  };

  std::atomic<int> armed_sites_{0};
  mutable std::mutex mu_;
  Rng rng_{0xfa017ULL};  // explicit default seed: deterministic by default
  std::unordered_map<std::string, Site> sites_;
};

/// The probe compiled into the serving/IO paths. Zero-cost (one relaxed
/// load) while nothing is armed anywhere.
inline void inject(const char* site, ErrorCode default_code) {
  FaultInjector& g = FaultInjector::global();
  if (g.armed()) g.check(site, default_code);
}

}  // namespace cw::fault
