// Typed error taxonomy for the serving stack's fault-containment plane.
//
// Failures that cross a plane boundary (ServeEngine/ShardedEngine futures,
// PipelineRegistry loads, snapshot IO) carry an ErrorCode so callers can
// branch on WHAT failed without parsing strings: a deadline miss must never
// be retried, a corrupt snapshot is quarantinable, a transient IO or
// internal kernel error is worth one retry on a fresh worker. StatusError
// derives from cw::Error, so every existing `catch (const Error&)` handler
// keeps working — the taxonomy refines the exception hierarchy instead of
// replacing it, and an exception that reaches a boundary untyped simply
// classifies as kInternal.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <string>

#include "common/error.hpp"

namespace cw::fault {

enum class ErrorCode : std::uint8_t {
  kOk = 0,
  /// The request's deadline passed before (or between) its multiplies; the
  /// multiply was never run.
  kDeadlineExceeded = 1,
  /// Refused at the queue cap (try_submit backpressure).
  kShed = 2,
  /// Snapshot bytes do not match their stored digest (or a quarantined
  /// fingerprint was asked for again).
  kCorruptSnapshot = 3,
  /// A syscall-level IO failure: open/stat/mmap/read.
  kIoError = 4,
  /// Submitted after shutdown, or abandoned by an engine stop.
  kCancelled = 5,
  /// Any failure that reached a plane boundary without a finer type.
  kInternal = 6,
};

inline constexpr std::size_t kNumErrorCodes = 7;

/// Enumerator-style name ("kDeadlineExceeded") for logs and test output.
const char* to_string(ErrorCode code);

/// Prometheus label value ("deadline_exceeded") — the `code` label of
/// cw_errors_total and the vocabulary of event-log labels.
const char* code_label(ErrorCode code);

/// The typed exception the serving planes throw across boundaries.
class StatusError : public Error {
 public:
  StatusError(ErrorCode code, const std::string& what)
      : Error(what), code_(code) {}

  [[nodiscard]] ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// Value-shaped view of a failure, for callers that want to inspect rather
/// than catch (cwtool summaries, tests).
struct Status {
  ErrorCode code = ErrorCode::kOk;
  std::string message;
  [[nodiscard]] bool ok() const { return code == ErrorCode::kOk; }
};

/// Classify a captured exception: a StatusError yields its own code, any
/// other exception kInternal. Null classifies as kOk.
[[nodiscard]] ErrorCode code_of(const std::exception_ptr& error) noexcept;

/// code_of() plus the exception's what() text.
[[nodiscard]] Status status_of(const std::exception_ptr& error);

/// Load-path failures worth one retry from disk: a torn read or transient
/// IO error can heal; a second identical failure means the file itself is
/// bad (quarantine it). Deadline/cancel/shed failures must never re-read.
[[nodiscard]] inline bool retryable_load(ErrorCode code) noexcept {
  return code == ErrorCode::kIoError || code == ErrorCode::kCorruptSnapshot ||
         code == ErrorCode::kInternal;
}

/// Multiply-path failures worth one retry on a fresh worker: transient
/// internal/IO faults. A deadline miss or cancellation is final by
/// definition, and a corrupt snapshot will corrupt the retry identically.
[[nodiscard]] inline bool retryable_multiply(ErrorCode code) noexcept {
  return code == ErrorCode::kIoError || code == ErrorCode::kInternal;
}

}  // namespace cw::fault
