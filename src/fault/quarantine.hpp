// TTL-bounded negative cache for inputs proven bad — the recovery plane's
// memory of which snapshots not to trust.
//
// A snapshot whose load fails its checksum once might be a torn read; one
// that fails again after a retry from disk is bad on disk. The registry
// quarantines that fingerprint here so a hot serving loop fails fast
// (kCorruptSnapshot, microseconds) instead of re-reading and re-hashing a
// multi-GB bad file on every admission attempt. Entries expire after a TTL
// — an operator who replaces the file gets it re-admitted without a
// restart — and the map is capacity-bounded so an adversarial stream of
// distinct bad keys cannot grow it without limit.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace cw::fault {

struct QuarantineOptions {
  /// How long a key stays blocked. <= 0 disables quarantining entirely
  /// (put() becomes a no-op).
  std::chrono::milliseconds ttl{30000};
  /// Max simultaneously quarantined keys; at capacity, the entry closest
  /// to expiry is dropped to make room.
  std::size_t capacity = 1024;
};

class Quarantine {
 public:
  explicit Quarantine(QuarantineOptions opt = {});
  Quarantine(const Quarantine&) = delete;
  Quarantine& operator=(const Quarantine&) = delete;

  /// Block `key` for the TTL (re-quarantining refreshes the clock).
  void put(const std::string& key, std::string reason);

  /// Is `key` currently blocked? Expired entries are dropped lazily here;
  /// a true return counts toward blocked_total().
  [[nodiscard]] bool blocked(const std::string& key);

  /// Why `key` is blocked, or nullopt when it is not.
  [[nodiscard]] std::optional<std::string> reason(const std::string& key);

  /// Drop one key / every key (operator override: "I replaced the file").
  void release(const std::string& key);
  void clear();

  [[nodiscard]] std::size_t size() const;
  /// Lifetime keys quarantined (refreshes included).
  [[nodiscard]] std::uint64_t quarantined_total() const;
  /// Lifetime lookups refused because the key was blocked.
  [[nodiscard]] std::uint64_t blocked_total() const;

 private:
  using Clock = std::chrono::steady_clock;
  struct Entry {
    Clock::time_point expires;
    std::string reason;
  };

  const QuarantineOptions opt_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> map_;
  std::uint64_t quarantined_ = 0;
  std::uint64_t blocked_ = 0;
};

}  // namespace cw::fault
