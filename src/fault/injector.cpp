#include "fault/injector.hpp"

#include <cstdlib>

namespace cw::fault {

FaultInjector& FaultInjector::global() {
  // Leaked on purpose: probes may run from static destructors (e.g. a
  // cached mmap region unwinding after main), and a destructed injector
  // would turn the armed() load into a use-after-free.
  static FaultInjector* g = [] {
    auto* injector = new FaultInjector();
    injector->arm_from_env();
    return injector;
  }();
  return *g;
}

void FaultInjector::arm(const std::string& site, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  Site& s = sites_[site];
  s.spec = spec;
  s.hits = 0;
  s.fires = 0;
  armed_sites_.store(static_cast<int>(sites_.size()),
                     std::memory_order_relaxed);
}

void FaultInjector::disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.erase(site);
  armed_sites_.store(static_cast<int>(sites_.size()),
                     std::memory_order_relaxed);
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  armed_sites_.store(0, std::memory_order_relaxed);
}

void FaultInjector::seed(std::uint64_t s) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_ = Rng(s);
}

int FaultInjector::arm_from_spec(const std::string& spec) {
  int armed = 0;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string token = spec.substr(pos, end - pos);
    pos = end + 1;
    if (token.empty()) continue;
    const std::size_t eq = token.find('=');
    CW_CHECK_MSG(eq != std::string::npos && eq > 0 && eq + 1 < token.size(),
                 "fault: malformed spec token '" << token
                                                << "' (want site=p or site=@N)");
    const std::string site = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    FaultSpec fs;
    if (value[0] == '@') {
      char* parse_end = nullptr;
      fs.fire_on_hit = std::strtoull(value.c_str() + 1, &parse_end, 10);
      CW_CHECK_MSG(parse_end != nullptr && *parse_end == '\0' &&
                       fs.fire_on_hit > 0,
                   "fault: malformed @N trigger in '" << token << "'");
      fs.max_fires = 1;
    } else {
      char* parse_end = nullptr;
      fs.probability = std::strtod(value.c_str(), &parse_end);
      CW_CHECK_MSG(parse_end != nullptr && *parse_end == '\0' &&
                       fs.probability >= 0.0 && fs.probability <= 1.0,
                   "fault: probability in '" << token
                                             << "' must be a number in [0,1]");
    }
    arm(site, fs);
    ++armed;
  }
  return armed;
}

int FaultInjector::arm_from_env(const char* var) {
  if (const char* seed_text = std::getenv("CW_FAULT_SEED");
      seed_text != nullptr && *seed_text != '\0')
    seed(std::strtoull(seed_text, nullptr, 10));
  const char* spec = std::getenv(var);
  if (spec == nullptr || *spec == '\0') return 0;
  return arm_from_spec(spec);
}

void FaultInjector::check(const char* site, ErrorCode default_code) {
  ErrorCode fired_code = ErrorCode::kOk;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(site);
    if (it == sites_.end()) return;
    Site& s = it->second;
    ++s.hits;
    if (s.spec.max_fires > 0 && s.fires >= s.spec.max_fires) return;
    const bool fire = s.spec.fire_on_hit > 0
                          ? s.hits == s.spec.fire_on_hit
                          : rng_.uniform() < s.spec.probability;
    if (!fire) return;
    ++s.fires;
    fired_code =
        s.spec.code != ErrorCode::kOk ? s.spec.code : default_code;
  }
  throw StatusError(fired_code,
                    std::string("injected fault at ") + site + " (" +
                        code_label(fired_code) + ")");
}

std::uint64_t FaultInjector::hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

std::uint64_t FaultInjector::fires(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

std::vector<std::pair<std::string, std::uint64_t>> FaultInjector::fired_sites()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& [site, s] : sites_)
    if (s.fires > 0) out.emplace_back(site, s.fires);
  return out;
}

}  // namespace cw::fault
