// Per-code failure counters: the cw_errors_total{code=...} series.
//
// Every failure that crosses a plane boundary bumps exactly one of these,
// keyed by its taxonomy code (fault/status.hpp). The instruments are
// interned once at construction — the hot failure paths never touch the
// metrics registry's lock — and engines/registries sharing one
// MetricsRegistry share the instruments, so the per-code totals aggregate
// across the whole serving plane (the same (name, labels) → same
// instrument contract as every other cw_* series).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "fault/status.hpp"
#include "obs/metrics.hpp"

namespace cw::fault {

class ErrorCounters {
 public:
  explicit ErrorCounters(obs::MetricsRegistry& m) {
    for (std::size_t i = 1; i < kNumErrorCodes; ++i)
      counters_[i] = &m.counter(
          "cw_errors_total", "Failures by fault-taxonomy code",
          {{"code", code_label(static_cast<ErrorCode>(i))}});
  }

  /// Count one failure of `code`. kOk (and out-of-range values) are
  /// ignored — a success is not an error series sample.
  void bump(ErrorCode code) {
    const auto i = static_cast<std::size_t>(code);
    if (i >= 1 && i < kNumErrorCodes) counters_[i]->inc();
  }

  [[nodiscard]] std::uint64_t value(ErrorCode code) const {
    const auto i = static_cast<std::size_t>(code);
    return (i >= 1 && i < kNumErrorCodes) ? counters_[i]->value() : 0;
  }

  /// Snapshot of every code's count, indexed by ErrorCode ([0] stays 0).
  [[nodiscard]] std::array<std::uint64_t, kNumErrorCodes> snapshot() const {
    std::array<std::uint64_t, kNumErrorCodes> out{};
    for (std::size_t i = 1; i < kNumErrorCodes; ++i)
      out[i] = counters_[i]->value();
    return out;
  }

 private:
  std::array<obs::Counter*, kNumErrorCodes> counters_{};
};

}  // namespace cw::fault
