#include "fault/status.hpp"

namespace cw::fault {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "kOk";
    case ErrorCode::kDeadlineExceeded:
      return "kDeadlineExceeded";
    case ErrorCode::kShed:
      return "kShed";
    case ErrorCode::kCorruptSnapshot:
      return "kCorruptSnapshot";
    case ErrorCode::kIoError:
      return "kIoError";
    case ErrorCode::kCancelled:
      return "kCancelled";
    case ErrorCode::kInternal:
      return "kInternal";
  }
  return "kInternal";
}

const char* code_label(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case ErrorCode::kShed:
      return "shed";
    case ErrorCode::kCorruptSnapshot:
      return "corrupt_snapshot";
    case ErrorCode::kIoError:
      return "io_error";
    case ErrorCode::kCancelled:
      return "cancelled";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "internal";
}

ErrorCode code_of(const std::exception_ptr& error) noexcept {
  if (!error) return ErrorCode::kOk;
  try {
    std::rethrow_exception(error);
  } catch (const StatusError& e) {
    return e.code();
  } catch (...) {
    return ErrorCode::kInternal;
  }
}

Status status_of(const std::exception_ptr& error) {
  Status s;
  if (!error) return s;
  try {
    std::rethrow_exception(error);
  } catch (const StatusError& e) {
    s.code = e.code();
    s.message = e.what();
  } catch (const std::exception& e) {
    s.code = ErrorCode::kInternal;
    s.message = e.what();
  } catch (...) {
    s.code = ErrorCode::kInternal;
    s.message = "unknown error";
  }
  return s;
}

}  // namespace cw::fault
