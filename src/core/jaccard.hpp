// Jaccard similarity between sparsity patterns of two CSR rows (§3.2).
#pragma once

#include "matrix/csr.hpp"

namespace cw {

/// |cols(i) ∩ cols(j)| / |cols(i) ∪ cols(j)|. Two empty rows score 0.
double jaccard_similarity(const Csr& a, index_t i, index_t j);

/// Intersection size of the (sorted) column sets of rows i and j.
index_t row_overlap(const Csr& a, index_t i, index_t j);

}  // namespace cw
