// Cluster-wise SpMM: the Alg. 1 dataflow applied to a dense B operand —
// each dense B row is streamed once per cluster and fused into every owning
// output row while resident (the SpMM analogue the hierarchical-clustering
// lineage [32] started from).
#pragma once

#include "matrix/csr_cluster.hpp"
#include "matrix/dense.hpp"

namespace cw {

/// C = A_cluster × B (dense). Identical result to spmm(a.to_csr(), b) up to
/// FP addition order.
Dense clusterwise_spmm(const CsrCluster& a, const Dense& b);

}  // namespace cw
