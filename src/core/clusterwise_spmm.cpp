#include "core/clusterwise_spmm.hpp"

#include "common/error.hpp"

namespace cw {

Dense clusterwise_spmm(const CsrCluster& a, const Dense& b) {
  CW_CHECK_MSG(a.ncols() == b.nrows(), "dimension mismatch in SpMM");
  const index_t m = b.ncols();
  Dense c(a.nrows(), m);
  const Clustering& cl = a.clustering();
  const index_t ncl = a.num_clusters();

#pragma omp parallel for schedule(dynamic, 16)
  for (index_t cidx = 0; cidx < ncl; ++cidx) {
    const index_t k = cl.size(cidx);
    const index_t row0 = cl.row_start(cidx);
    offset_t val_off = a.value_ptr()[static_cast<std::size_t>(cidx)];
    for (offset_t t = a.cluster_ptr()[static_cast<std::size_t>(cidx)];
         t < a.cluster_ptr()[static_cast<std::size_t>(cidx) + 1];
         ++t, val_off += k) {
      const index_t col = a.col_idx()[static_cast<std::size_t>(t)];
      const std::uint64_t mask = a.row_mask()[static_cast<std::size_t>(t)];
      const value_t* avals = &a.values()[static_cast<std::size_t>(val_off)];
      // B row `col` is streamed once; every owning cluster row consumes it
      // while it sits in cache.
      std::uint64_t msk = mask;
      while (msk) {
        const int r = __builtin_ctzll(msk);
        msk &= msk - 1;
        const value_t arv = avals[r];
        value_t* crow = c.row_data(row0 + r);
        const value_t* brow = b.row_data(col);
        for (index_t j = 0; j < m; ++j) crow[j] += arv * brow[j];
      }
    }
  }
  return c;
}

}  // namespace cw
