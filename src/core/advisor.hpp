// Preprocessing advisor — the paper's §5 future-work direction of
// "predicting the best choice of reordering combined with the best
// clustering scheme" from matrix structure.
//
// The advisor extracts cheap structural features (O(nnz), sampled) and maps
// them through the decision rules the paper's evaluation supports:
//   * consecutive rows already similar        → clustering without reordering
//   * mesh/banded structure in scrambled order → RCM/GP-style reordering first
//   * scattered similar rows                   → hierarchical clustering
//   * heavy-tailed degree, no row similarity   → keep row-wise (reordering
//     rarely pays; see the paper's webbase/wikipedia rows)
// plus a budget knob reflecting the Fig. 10 amortization trade-off.
#pragma once

#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "matrix/csr.hpp"

namespace cw {

/// Structural features of a square sparse matrix (sampled where noted).
struct MatrixFeatures {
  index_t nrows = 0;
  offset_t nnz = 0;
  double avg_row_nnz = 0;
  double max_row_nnz = 0;
  /// Coefficient of variation of row nnz — heavy tail indicator.
  double degree_cv = 0;
  /// bandwidth / nrows: 1.0 ≈ fully scrambled, ~0 ≈ tightly banded.
  double bandwidth_ratio = 0;
  /// Mean Jaccard similarity of consecutive row pairs (sampled): high means
  /// fixed/variable clustering will find clusters in place.
  double consecutive_jaccard = 0;
  /// Mean of each sampled row's best Jaccard among candidate partners from
  /// A·Aᵀ (sampled): high while consecutive_jaccard is low means similar
  /// rows exist but are scattered — hierarchical clustering's case.
  double scattered_jaccard = 0;
};

/// Extract features; `sample` rows are inspected for the Jaccard statistics.
MatrixFeatures extract_features(const Csr& a, index_t sample = 512,
                                std::uint64_t seed = 7);

/// How many SpGEMMs the preprocessing may amortize over (Fig. 10's x-axis).
enum class ReuseBudget {
  kSingle,    // one product: only near-free preprocessing is worth it
  kTens,      // ~10–100 products: hierarchical clustering territory
  kThousands  // BC-like reuse: expensive reorderings (GP/HP) pay off
};

struct Recommendation {
  ReorderAlgo reorder = ReorderAlgo::kOriginal;
  ClusterScheme scheme = ClusterScheme::kNone;
  std::string rationale;
  [[nodiscard]] PipelineOptions pipeline_options() const;
};

/// Rule-based recommendation; deterministic in the features.
Recommendation advise(const MatrixFeatures& f,
                      ReuseBudget budget = ReuseBudget::kTens);

/// Convenience: extract + advise.
Recommendation advise(const Csr& a, ReuseBudget budget = ReuseBudget::kTens);

}  // namespace cw
