#include <algorithm>

#include "common/error.hpp"
#include "core/clustering_schemes.hpp"

namespace cw {

Clustering fixed_length_clustering(index_t nrows, index_t k) {
  return Clustering::fixed(nrows, k);
}

namespace {

/// Estimated CSR_Cluster slots for grouping rows [lo, lo+k) — distinct
/// columns × k. Uses the same merge the real builder uses but only counts.
offset_t padded_slots(const Csr& a, index_t lo, index_t k) {
  // Count distinct columns via a k-way scan over the sorted rows.
  offset_t distinct = 0;
  std::vector<offset_t> cursor(static_cast<std::size_t>(k));
  for (index_t r = 0; r < k; ++r)
    cursor[static_cast<std::size_t>(r)] = a.row_ptr()[lo + r];
  for (;;) {
    index_t min_col = -1;
    for (index_t r = 0; r < k; ++r) {
      const offset_t cur = cursor[static_cast<std::size_t>(r)];
      if (cur < a.row_ptr()[lo + r + 1]) {
        const index_t c = a.col_idx()[static_cast<std::size_t>(cur)];
        if (min_col < 0 || c < min_col) min_col = c;
      }
    }
    if (min_col < 0) break;
    ++distinct;
    for (index_t r = 0; r < k; ++r) {
      offset_t& cur = cursor[static_cast<std::size_t>(r)];
      if (cur < a.row_ptr()[lo + r + 1] &&
          a.col_idx()[static_cast<std::size_t>(cur)] == min_col)
        ++cur;
    }
  }
  return distinct * k;
}

}  // namespace

index_t choose_fixed_length(const Csr& a, const std::vector<index_t>& candidates) {
  CW_CHECK(!candidates.empty());
  const index_t n = a.nrows();
  // Sample up to 64 cluster-aligned windows spread over the matrix.
  index_t best_k = candidates[0];
  double best_ratio = 1e300;
  for (index_t k : candidates) {
    CW_CHECK(k >= 1 && k <= CsrCluster::kMaxClusterSize);
    offset_t slots = 0, nnz = 0;
    const index_t nwindows = std::max<index_t>(1, std::min<index_t>(64, n / std::max<index_t>(k, 1)));
    for (index_t w = 0; w < nwindows; ++w) {
      index_t lo = static_cast<index_t>(
          (static_cast<offset_t>(w) * (n - k)) / std::max<index_t>(nwindows, 1));
      // Align to a real cluster boundary: fixed-length clustering always
      // starts clusters at multiples of k, so sampling must too.
      lo = (lo / k) * k;
      lo = std::min(lo, n - k);
      if (lo < 0) break;
      slots += padded_slots(a, lo, k);
      nnz += a.row_ptr()[lo + k] - a.row_ptr()[lo];
    }
    if (nnz == 0) continue;
    // Padding ratio per stored nonzero; smaller is better. Ties favour the
    // larger k (more B-row reuse).
    const double ratio = static_cast<double>(slots) / static_cast<double>(nnz);
    if (ratio < best_ratio - 1e-12 ||
        (std::abs(ratio - best_ratio) <= 1e-12 && k > best_k)) {
      best_ratio = ratio;
      best_k = k;
    }
  }
  return best_k;
}

}  // namespace cw
