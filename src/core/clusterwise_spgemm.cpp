#include "core/clusterwise_spgemm.hpp"

#include "accumulator/cluster_accumulator.hpp"
#include "accumulator/hash_accumulator.hpp"
#include "common/error.hpp"
#include "common/prefix_sum.hpp"
#include "common/timer.hpp"
#include "simd/dispatch.hpp"

namespace cw {

const char* to_string(ClusterKernel k) {
  switch (k) {
    case ClusterKernel::kLaneAccumulator: return "lane";
    case ClusterKernel::kPerRowAccumulators: return "per-row";
  }
  return "?";
}

namespace {

// ---------------------------------------------------------------------------
// Lane-accumulator variant: one probe per (cluster column, B entry).
// ---------------------------------------------------------------------------

void symbolic_lanes(const CsrCluster& a, const Csr& b,
                    std::vector<offset_t>& nnz_per_row) {
  const index_t ncl = a.num_clusters();
  const Clustering& cl = a.clustering();
#pragma omp parallel
  {
    ClusterAccumulator acc;
    std::vector<offset_t> sizes;
#pragma omp for schedule(dynamic, 16)
    for (index_t c = 0; c < ncl; ++c) {
      const index_t k = cl.size(c);
      acc.configure(k);
      const offset_t t_end = a.cluster_ptr()[static_cast<std::size_t>(c) + 1];
      for (offset_t t = a.cluster_ptr()[static_cast<std::size_t>(c)];
           t < t_end; ++t) {
        // A's column stream is sequential; the B row it selects is not.
        // Reading the next column id early and prefetching its B row hides
        // the dependent-load latency behind this column's accumulate.
        if (t + 1 < t_end) {
          const index_t next_col = a.col_idx()[static_cast<std::size_t>(t) + 1];
          const offset_t bnext = b.row_ptr()[next_col];
          simd::prefetch_read(b.col_idx().data() + bnext);
        }
        const index_t col = a.col_idx()[static_cast<std::size_t>(t)];
        const std::uint64_t mask = a.row_mask()[static_cast<std::size_t>(t)];
        for (offset_t kb = b.row_ptr()[col]; kb < b.row_ptr()[col + 1]; ++kb) {
          acc.add_symbolic(b.col_idx()[static_cast<std::size_t>(kb)], mask);
        }
      }
      acc.lane_sizes(sizes);
      const index_t row0 = cl.row_start(c);
      for (index_t r = 0; r < k; ++r)
        nnz_per_row[static_cast<std::size_t>(row0 + r)] =
            sizes[static_cast<std::size_t>(r)];
    }
  }
}

void numeric_lanes(const CsrCluster& a, const Csr& b,
                   const std::vector<offset_t>& c_row_ptr,
                   std::vector<index_t>& c_cols, std::vector<value_t>& c_vals) {
  const index_t ncl = a.num_clusters();
  const Clustering& cl = a.clustering();
#pragma omp parallel
  {
    ClusterAccumulator acc;
#pragma omp for schedule(dynamic, 16)
    for (index_t c = 0; c < ncl; ++c) {
      const index_t k = cl.size(c);
      acc.configure(k);
      offset_t val_off = a.value_ptr()[static_cast<std::size_t>(c)];
      // Alg. 1 lines 3–8: each B row is fetched once per cluster; the
      // K-wide lane FMA applies it to every owning row.
      const offset_t t_end = a.cluster_ptr()[static_cast<std::size_t>(c) + 1];
      for (offset_t t = a.cluster_ptr()[static_cast<std::size_t>(c)];
           t < t_end; ++t, val_off += k) {
        // Prefetch the next column's B row (ids and values) while this
        // column's lane updates run — the B-row fetch is the only
        // non-sequential access in the loop.
        if (t + 1 < t_end) {
          const index_t next_col = a.col_idx()[static_cast<std::size_t>(t) + 1];
          const offset_t bnext = b.row_ptr()[next_col];
          simd::prefetch_read(b.col_idx().data() + bnext);
          simd::prefetch_read(b.values().data() + bnext);
        }
        const index_t col = a.col_idx()[static_cast<std::size_t>(t)];
        const std::uint64_t mask = a.row_mask()[static_cast<std::size_t>(t)];
        const value_t* avals = &a.values()[static_cast<std::size_t>(val_off)];
        for (offset_t kb = b.row_ptr()[col]; kb < b.row_ptr()[col + 1]; ++kb) {
          acc.add_scaled(b.col_idx()[static_cast<std::size_t>(kb)], mask, avals,
                         b.values()[static_cast<std::size_t>(kb)]);
        }
      }
      // One pass over the table writes every row's output segment directly
      // (keys come out ascending per lane, matching CSR's sorted-row
      // invariant).
      const index_t row0 = cl.row_start(c);
      offset_t cursor[CsrCluster::kMaxClusterSize];
      for (index_t r = 0; r < k; ++r)
        cursor[r] = c_row_ptr[static_cast<std::size_t>(row0 + r)];
      acc.extract_all_sorted([&](index_t r, index_t key, value_t v) {
        const offset_t dst = cursor[r]++;
        c_cols[static_cast<std::size_t>(dst)] = key;
        c_vals[static_cast<std::size_t>(dst)] = v;
      });
#ifndef NDEBUG
      for (index_t r = 0; r < k; ++r)
        CW_DCHECK(cursor[r] == c_row_ptr[static_cast<std::size_t>(row0 + r) + 1]);
#endif
    }
  }
}

// ---------------------------------------------------------------------------
// Per-row-accumulator variant (Alg. 1 verbatim; ablation baseline).
// ---------------------------------------------------------------------------

void symbolic_per_row(const CsrCluster& a, const Csr& b,
                      std::vector<offset_t>& nnz_per_row) {
  const index_t ncl = a.num_clusters();
  const Clustering& cl = a.clustering();
  const index_t max_k = cl.max_size();
#pragma omp parallel
  {
    std::vector<HashAccumulator> accs(static_cast<std::size_t>(max_k));
#pragma omp for schedule(dynamic, 16)
    for (index_t c = 0; c < ncl; ++c) {
      const index_t k = cl.size(c);
      for (index_t r = 0; r < k; ++r) accs[static_cast<std::size_t>(r)].reset();
      for (offset_t t = a.cluster_ptr()[static_cast<std::size_t>(c)];
           t < a.cluster_ptr()[static_cast<std::size_t>(c) + 1]; ++t) {
        const index_t col = a.col_idx()[static_cast<std::size_t>(t)];
        const std::uint64_t mask = a.row_mask()[static_cast<std::size_t>(t)];
        for (offset_t kb = b.row_ptr()[col]; kb < b.row_ptr()[col + 1]; ++kb) {
          const index_t bj = b.col_idx()[static_cast<std::size_t>(kb)];
          std::uint64_t m = mask;
          while (m) {
            const int r = __builtin_ctzll(m);
            m &= m - 1;
            accs[static_cast<std::size_t>(r)].add_symbolic(bj);
          }
        }
      }
      const index_t row0 = cl.row_start(c);
      for (index_t r = 0; r < k; ++r)
        nnz_per_row[static_cast<std::size_t>(row0 + r)] =
            accs[static_cast<std::size_t>(r)].size();
    }
  }
}

void numeric_per_row(const CsrCluster& a, const Csr& b,
                     const std::vector<offset_t>& c_row_ptr,
                     std::vector<index_t>& c_cols,
                     std::vector<value_t>& c_vals) {
  const index_t ncl = a.num_clusters();
  const Clustering& cl = a.clustering();
  const index_t max_k = cl.max_size();
#pragma omp parallel
  {
    std::vector<HashAccumulator> accs(static_cast<std::size_t>(max_k));
    std::vector<index_t> cols_buf;
    std::vector<value_t> vals_buf;
#pragma omp for schedule(dynamic, 16)
    for (index_t c = 0; c < ncl; ++c) {
      const index_t k = cl.size(c);
      for (index_t r = 0; r < k; ++r) accs[static_cast<std::size_t>(r)].reset();
      offset_t val_off = a.value_ptr()[static_cast<std::size_t>(c)];
      for (offset_t t = a.cluster_ptr()[static_cast<std::size_t>(c)];
           t < a.cluster_ptr()[static_cast<std::size_t>(c) + 1];
           ++t, val_off += k) {
        const index_t col = a.col_idx()[static_cast<std::size_t>(t)];
        const std::uint64_t mask = a.row_mask()[static_cast<std::size_t>(t)];
        for (offset_t kb = b.row_ptr()[col]; kb < b.row_ptr()[col + 1]; ++kb) {
          const index_t bj = b.col_idx()[static_cast<std::size_t>(kb)];
          const value_t bv = b.values()[static_cast<std::size_t>(kb)];
          std::uint64_t m = mask;
          while (m) {
            const int r = __builtin_ctzll(m);
            m &= m - 1;
            accs[static_cast<std::size_t>(r)].add(
                bj, a.values()[static_cast<std::size_t>(val_off + r)] * bv);
          }
        }
      }
      const index_t row0 = cl.row_start(c);
      for (index_t r = 0; r < k; ++r) {
        cols_buf.clear();
        vals_buf.clear();
        accs[static_cast<std::size_t>(r)].extract_sorted(cols_buf, vals_buf);
        const offset_t dst = c_row_ptr[static_cast<std::size_t>(row0 + r)];
        for (std::size_t u = 0; u < cols_buf.size(); ++u) {
          c_cols[static_cast<std::size_t>(dst) + u] = cols_buf[u];
          c_vals[static_cast<std::size_t>(dst) + u] = vals_buf[u];
        }
      }
    }
  }
}

}  // namespace

std::vector<offset_t> clusterwise_symbolic(const CsrCluster& a, const Csr& b,
                                           ClusterKernel kernel) {
  CW_CHECK_MSG(a.ncols() == b.nrows(), "dimension mismatch in SpGEMM");
  std::vector<offset_t> nnz_per_row(static_cast<std::size_t>(a.nrows()), 0);
  if (kernel == ClusterKernel::kLaneAccumulator) {
    symbolic_lanes(a, b, nnz_per_row);
  } else {
    symbolic_per_row(a, b, nnz_per_row);
  }
  return nnz_per_row;
}

Csr clusterwise_spgemm(const CsrCluster& a, const Csr& b, SpgemmStats* stats,
                       ClusterKernel kernel) {
  CW_CHECK_MSG(a.ncols() == b.nrows(), "dimension mismatch in SpGEMM");

  Timer t_sym;
  std::vector<offset_t> counts = clusterwise_symbolic(a, b, kernel);
  std::vector<offset_t> c_row_ptr = counts_to_pointers(counts);
  const double symbolic_s = t_sym.seconds();

  Timer t_num;
  std::vector<index_t> c_cols(static_cast<std::size_t>(c_row_ptr.back()));
  std::vector<value_t> c_vals(static_cast<std::size_t>(c_row_ptr.back()));
  if (kernel == ClusterKernel::kLaneAccumulator) {
    numeric_lanes(a, b, c_row_ptr, c_cols, c_vals);
  } else {
    numeric_per_row(a, b, c_row_ptr, c_cols, c_vals);
  }
  const double numeric_s = t_num.seconds();

  if (stats) {
    stats->symbolic_seconds = symbolic_s;
    stats->numeric_seconds = numeric_s;
    stats->output_nnz = c_row_ptr.back();
  }
  return Csr(a.nrows(), b.ncols(), std::move(c_row_ptr), std::move(c_cols),
             std::move(c_vals));
}

}  // namespace cw
