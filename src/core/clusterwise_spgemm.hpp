// Cluster-wise SpGEMM (Alg. 1): C = A_cluster × B.
//
// Iteration order per cluster: over the cluster's *distinct columns* (the
// merged row of Fig. 5), then over B's row for that column, then over every
// cluster row that owns the column. A row of B is therefore touched exactly
// once per cluster and reused by all rows in it while cache-resident — the
// locality improvement the paper builds on.
//
// Two kernel variants are provided:
//   * kLaneAccumulator (default): one hash table per cluster whose slots
//     carry `cluster_size` value lanes — a single probe per
//     (cluster column, B entry) serves every row, so the cluster's reuse
//     also saves hash work, not just B traffic.
//   * kPerRowAccumulators: the literal reading of Alg. 1 with one
//     independent hash accumulator per cluster row (ablation baseline).
#pragma once

#include "matrix/csr_cluster.hpp"
#include "spgemm/spgemm.hpp"

namespace cw {

enum class ClusterKernel { kLaneAccumulator, kPerRowAccumulators };

const char* to_string(ClusterKernel k);

/// Symbolic phase: nnz of every row of C = A_cluster × B.
std::vector<offset_t> clusterwise_symbolic(
    const CsrCluster& a, const Csr& b,
    ClusterKernel kernel = ClusterKernel::kLaneAccumulator);

/// C = A_cluster × B with exact allocation; rows of C sorted. Identical
/// output (pattern and values, up to FP addition order) to
/// spgemm(a.to_csr(), b).
Csr clusterwise_spgemm(const CsrCluster& a, const Csr& b,
                       SpgemmStats* stats = nullptr,
                       ClusterKernel kernel = ClusterKernel::kLaneAccumulator);

}  // namespace cw
