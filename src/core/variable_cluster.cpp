#include "common/error.hpp"
#include "core/clustering_schemes.hpp"
#include "core/jaccard.hpp"

namespace cw {

// Alg. 2 verbatim: the first row of each cluster is its representative;
// consecutive rows join while their Jaccard similarity with the
// representative exceeds jacc_th and the cluster is below max_cluster_th.
Clustering variable_length_clustering(const Csr& a,
                                      const VariableClusterOptions& opt) {
  CW_CHECK(opt.max_cluster_size >= 1 &&
           opt.max_cluster_size <= CsrCluster::kMaxClusterSize);
  const index_t n = a.nrows();
  std::vector<index_t> sizes;
  if (n == 0) return Clustering::from_sizes(sizes);

  index_t rep_row = 0;
  index_t cluster_sz = 1;
  for (index_t i = 1; i < n; ++i) {
    const double j_score = jaccard_similarity(a, rep_row, i);
    if (j_score < opt.jaccard_threshold || cluster_sz == opt.max_cluster_size) {
      sizes.push_back(cluster_sz);
      rep_row = i;
      cluster_sz = 1;
    } else {
      ++cluster_sz;
    }
  }
  sizes.push_back(cluster_sz);
  return Clustering::from_sizes(sizes);
}

}  // namespace cw
