#include "core/pipeline.hpp"

#include "common/error.hpp"
#include "common/residency.hpp"
#include "common/timer.hpp"

namespace cw {

namespace {

/// Apply `fn(segment)` to every bulk array of the pipeline — the one place
/// that knows which segments a prepared pipeline is made of, so the
/// residency operations below can never drift out of sync with the storage
/// layout. (The `order` arrays are std::vectors — always private heap — and
/// are accounted separately in residency().)
template <typename Fn>
void for_each_segment(const Pipeline& p, Fn&& fn) {
  const Csr& a = p.matrix();
  fn(a.row_ptr());
  fn(a.col_idx());
  fn(a.values());
  fn(p.clustering().ptr());
  if (p.clustered()) {
    const CsrCluster& cc = *p.clustered();
    fn(cc.cluster_ptr());
    fn(cc.value_ptr());
    fn(cc.clustering().ptr());
    fn(cc.col_idx());
    fn(cc.row_mask());
    fn(cc.values());
  }
}

}  // namespace

const char* to_string(ClusterScheme scheme) {
  switch (scheme) {
    case ClusterScheme::kNone: return "row-wise";
    case ClusterScheme::kFixed: return "fixed-length";
    case ClusterScheme::kVariable: return "variable-length";
    case ClusterScheme::kHierarchical: return "hierarchical";
  }
  return "?";
}

const char* to_string(PermutationMode mode) {
  switch (mode) {
    case PermutationMode::kSymmetric: return "symmetric";
    case PermutationMode::kRowsOnly: return "rows-only";
  }
  return "?";
}

Pipeline::Pipeline(const Csr& a, const PipelineOptions& opt) : opt_(opt) {
  CW_CHECK_MSG(a.nrows() == a.ncols(), "Pipeline requires a square matrix");
  build_(a);
}

Pipeline Pipeline::prepare_rows(const Csr& a, const PipelineOptions& opt) {
  CW_CHECK_MSG(opt.reorder == ReorderAlgo::kOriginal,
               "prepare_rows: explicit reorderings require a square symmetric "
               "adjacency; rows-only pipelines take kOriginal");
  Pipeline p;
  p.opt_ = opt;
  p.mode_ = PermutationMode::kRowsOnly;
  p.build_(a);
  return p;
}

void Pipeline::build_(const Csr& a) {
  stats_.csr_bytes = a.memory_bytes();

  // --- Step 1: explicit reordering (skipped for Original). -----------------
  Timer t_reorder;
  if (mode_ == PermutationMode::kSymmetric &&
      opt_.reorder != ReorderAlgo::kOriginal) {
    order_ = reorder(a, opt_.reorder, opt_.reorder_opt);
    a_ = a.permute_symmetric(order_);
  } else {
    order_ = original_order(a);
    a_ = a;
  }
  stats_.reorder_seconds = t_reorder.seconds();

  // --- Step 2: clustering. --------------------------------------------------
  Timer t_cluster;
  switch (opt_.scheme) {
    case ClusterScheme::kNone:
      clustering_ = Clustering::singletons(a_.nrows());
      break;
    case ClusterScheme::kFixed: {
      index_t k = opt_.fixed_length;
      if (k <= 0) k = choose_fixed_length(a_);
      clustering_ = fixed_length_clustering(a_.nrows(), k);
      break;
    }
    case ClusterScheme::kVariable:
      clustering_ = variable_length_clustering(a_, opt_.variable_opt);
      break;
    case ClusterScheme::kHierarchical: {
      HierarchicalResult h = hierarchical_clustering(a_, opt_.hierarchical_opt);
      // Hierarchical clustering reorders as a side effect (§3.3): compose
      // its order with the explicit one and permute the matrix again. In
      // rows-only mode the columns keep their labels (B must stay shared
      // across shards), so only the rows move.
      a_ = mode_ == PermutationMode::kSymmetric
               ? a_.permute_symmetric(h.order)
               : a_.permute_rows(h.order);
      Permutation composed(order_.size());
      for (std::size_t i = 0; i < composed.size(); ++i)
        composed[i] = order_[static_cast<std::size_t>(h.order[i])];
      order_ = std::move(composed);
      clustering_ = std::move(h.clustering);
      break;
    }
  }
  stats_.cluster_seconds = t_cluster.seconds();
  stats_.num_clusters = clustering_.num_clusters();
  inv_order_ = invert_permutation(order_);

  // --- Step 3: clustered format. --------------------------------------------
  Timer t_format;
  if (opt_.scheme != ClusterScheme::kNone) {
    clustered_ = CsrCluster::build(a_, clustering_);
    stats_.clustered_bytes = clustered_->memory_bytes();
  }
  stats_.format_seconds = t_format.seconds();
}

Pipeline Pipeline::restore(PipelineOptions opt, Csr a, Permutation order,
                           Clustering clustering,
                           std::optional<CsrCluster> clustered,
                           PipelineStats stats, PermutationMode mode) {
  CW_CHECK_MSG(mode == PermutationMode::kRowsOnly || a.nrows() == a.ncols(),
               "Pipeline requires a square matrix");
  CW_CHECK_MSG(is_permutation(order, a.nrows()),
               "restore: order is not a permutation of the matrix rows");
  clustering.validate(a.nrows());
  CW_CHECK_MSG(clustered.has_value() == (opt.scheme != ClusterScheme::kNone),
               "restore: clustered format must be present iff scheme != kNone");
  if (clustered) {
    CW_CHECK_MSG(clustered->nrows() == a.nrows() && clustered->nnz() == a.nnz(),
                 "restore: clustered format does not match the matrix");
  }
  Pipeline p;
  p.opt_ = opt;
  p.mode_ = mode;
  p.a_ = std::move(a);
  p.order_ = std::move(order);
  p.inv_order_ = invert_permutation(p.order_);
  p.clustering_ = std::move(clustering);
  p.clustered_ = std::move(clustered);
  p.stats_ = stats;
  return p;
}

Csr Pipeline::multiply_square(SpgemmStats* kernel_stats) const {
  CW_CHECK_MSG(mode_ == PermutationMode::kSymmetric,
               "multiply_square: rows-only pipelines are not their own column "
               "space; use multiply(b)");
  if (clustered_) return clusterwise_spgemm(*clustered_, a_, kernel_stats);
  return spgemm(a_, a_, opt_.accumulator, kernel_stats);
}

Csr Pipeline::multiply(const Csr& b, SpgemmStats* kernel_stats) const {
  CW_CHECK_MSG(b.nrows() == a_.ncols(),
               "B has " << b.nrows() << " rows, expected " << a_.ncols());
  // Symmetric mode relabelled A's columns with order_, so B's rows must
  // follow. Rows-only mode never touched the columns; B is used as-is.
  if (mode_ == PermutationMode::kRowsOnly) {
    if (clustered_) return clusterwise_spgemm(*clustered_, b, kernel_stats);
    return spgemm(a_, b, opt_.accumulator, kernel_stats);
  }
  const Csr b_perm = b.permute_rows(order_);
  if (clustered_) return clusterwise_spgemm(*clustered_, b_perm, kernel_stats);
  return spgemm(a_, b_perm, opt_.accumulator, kernel_stats);
}

std::vector<Csr> Pipeline::multiply_stacked(const std::vector<const Csr*>& bs,
                                            SpgemmStats* kernel_stats) const {
  if (bs.empty()) return {};
  // Row permutation (multiply's symmetric-mode internal step) commutes with
  // column stacking, so stacking the callers' Bs first and running the
  // ordinary multiply is exactly the per-request computation — B rows are
  // permuted once for the whole panel instead of once per request.
  const ColumnStack stack = stack_columns(bs);
  const Csr c = multiply(stack.panel, kernel_stats);
  return split_columns(c, stack.offsets);
}

Csr Pipeline::unpermute_rows(const Csr& c) const {
  return c.permute_rows(inv_order_);
}

std::size_t Pipeline::warm_up() const {
  std::size_t warmed = 0;
  for_each_segment(*this, [&](const auto& seg) {
    if (seg.owned() || seg.empty()) return;
    // Hint first so the kernel can batch the read-in, then touch so the
    // pages are guaranteed faulted by the time we return (WILLNEED alone is
    // asynchronous and, on fallback builds, a no-op).
    seg.advise(residency::Advice::kWillNeed);
    warmed += residency::touch(seg.data(), seg.size_bytes());
  });
  return warmed;
}

std::size_t Pipeline::advise_willneed() const {
  std::size_t advised = 0;
  for_each_segment(*this, [&](const auto& seg) {
    if (seg.owned() || seg.empty()) return;
    seg.advise(residency::Advice::kWillNeed);
    advised += seg.size_bytes();
  });
  return advised;
}

std::size_t Pipeline::release_residency() const {
  std::size_t released = 0;
  for_each_segment(*this,
                   [&](const auto& seg) { released += seg.release(); });
  return released;
}

std::size_t Pipeline::lock_residency(std::size_t max_bytes) const {
  std::size_t locked = 0;
  for_each_segment(*this, [&](const auto& seg) {
    if (seg.owned() || seg.empty()) return;
    if (seg.size_bytes() > max_bytes - locked) return;  // whole-segment-or-skip
    if (seg.lock_memory()) locked += seg.size_bytes();
  });
  return locked;
}

std::size_t Pipeline::unlock_residency() const {
  std::size_t unlocked = 0;
  for_each_segment(*this, [&](const auto& seg) {
    if (seg.owned() || seg.empty()) return;
    if (seg.unlock_memory()) unlocked += seg.size_bytes();
  });
  return unlocked;
}

PipelineResidency Pipeline::residency() const {
  PipelineResidency r;
  for_each_segment(*this, [&](const auto& seg) {
    if (seg.owned()) {
      r.owned_bytes += seg.size_bytes();
    } else {
      r.mapped_bytes += seg.size_bytes();
      r.resident_mapped_bytes += seg.resident_bytes();
    }
  });
  r.owned_bytes += (order_.size() + inv_order_.size()) * sizeof(index_t);
  return r;
}

}  // namespace cw
