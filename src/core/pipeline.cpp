#include "core/pipeline.hpp"

#include "common/error.hpp"
#include "common/timer.hpp"

namespace cw {

const char* to_string(ClusterScheme scheme) {
  switch (scheme) {
    case ClusterScheme::kNone: return "row-wise";
    case ClusterScheme::kFixed: return "fixed-length";
    case ClusterScheme::kVariable: return "variable-length";
    case ClusterScheme::kHierarchical: return "hierarchical";
  }
  return "?";
}

Pipeline::Pipeline(const Csr& a, const PipelineOptions& opt) : opt_(opt) {
  CW_CHECK_MSG(a.nrows() == a.ncols(), "Pipeline requires a square matrix");
  stats_.csr_bytes = a.memory_bytes();

  // --- Step 1: explicit reordering (skipped for Original). -----------------
  Timer t_reorder;
  if (opt.reorder == ReorderAlgo::kOriginal) {
    order_ = original_order(a);
    a_ = a;
  } else {
    order_ = reorder(a, opt.reorder, opt.reorder_opt);
    a_ = a.permute_symmetric(order_);
  }
  stats_.reorder_seconds = t_reorder.seconds();

  // --- Step 2: clustering. --------------------------------------------------
  Timer t_cluster;
  switch (opt.scheme) {
    case ClusterScheme::kNone:
      clustering_ = Clustering::singletons(a_.nrows());
      break;
    case ClusterScheme::kFixed: {
      index_t k = opt.fixed_length;
      if (k <= 0) k = choose_fixed_length(a_);
      clustering_ = fixed_length_clustering(a_.nrows(), k);
      break;
    }
    case ClusterScheme::kVariable:
      clustering_ = variable_length_clustering(a_, opt.variable_opt);
      break;
    case ClusterScheme::kHierarchical: {
      HierarchicalResult h = hierarchical_clustering(a_, opt.hierarchical_opt);
      // Hierarchical clustering reorders as a side effect (§3.3): compose
      // its order with the explicit one and permute the matrix again.
      a_ = a_.permute_symmetric(h.order);
      Permutation composed(order_.size());
      for (std::size_t i = 0; i < composed.size(); ++i)
        composed[i] = order_[static_cast<std::size_t>(h.order[i])];
      order_ = std::move(composed);
      clustering_ = std::move(h.clustering);
      break;
    }
  }
  stats_.cluster_seconds = t_cluster.seconds();
  stats_.num_clusters = clustering_.num_clusters();
  inv_order_ = invert_permutation(order_);

  // --- Step 3: clustered format. --------------------------------------------
  Timer t_format;
  if (opt.scheme != ClusterScheme::kNone) {
    clustered_ = CsrCluster::build(a_, clustering_);
    stats_.clustered_bytes = clustered_->memory_bytes();
  }
  stats_.format_seconds = t_format.seconds();
}

Pipeline Pipeline::restore(PipelineOptions opt, Csr a, Permutation order,
                           Clustering clustering,
                           std::optional<CsrCluster> clustered,
                           PipelineStats stats) {
  CW_CHECK_MSG(a.nrows() == a.ncols(), "Pipeline requires a square matrix");
  CW_CHECK_MSG(is_permutation(order, a.nrows()),
               "restore: order is not a permutation of the matrix rows");
  clustering.validate(a.nrows());
  CW_CHECK_MSG(clustered.has_value() == (opt.scheme != ClusterScheme::kNone),
               "restore: clustered format must be present iff scheme != kNone");
  if (clustered) {
    CW_CHECK_MSG(clustered->nrows() == a.nrows() && clustered->nnz() == a.nnz(),
                 "restore: clustered format does not match the matrix");
  }
  Pipeline p;
  p.opt_ = opt;
  p.a_ = std::move(a);
  p.order_ = std::move(order);
  p.inv_order_ = invert_permutation(p.order_);
  p.clustering_ = std::move(clustering);
  p.clustered_ = std::move(clustered);
  p.stats_ = stats;
  return p;
}

Csr Pipeline::multiply_square(SpgemmStats* kernel_stats) const {
  if (clustered_) return clusterwise_spgemm(*clustered_, a_, kernel_stats);
  return spgemm(a_, a_, opt_.accumulator, kernel_stats);
}

Csr Pipeline::multiply(const Csr& b, SpgemmStats* kernel_stats) const {
  CW_CHECK_MSG(b.nrows() == a_.ncols(),
               "B has " << b.nrows() << " rows, expected " << a_.ncols());
  // A's columns were relabelled by order_, so B's rows must follow.
  const Csr b_perm = b.permute_rows(order_);
  if (clustered_) return clusterwise_spgemm(*clustered_, b_perm, kernel_stats);
  return spgemm(a_, b_perm, opt_.accumulator, kernel_stats);
}

Csr Pipeline::unpermute_rows(const Csr& c) const {
  return c.permute_rows(inv_order_);
}

}  // namespace cw
