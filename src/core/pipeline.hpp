// High-level public API: preprocess a square A once (reorder → cluster →
// build CSR_Cluster), then run many SpGEMMs against it — the amortization
// scenario (§4.5) the paper targets (e.g. BC's repeated frontier products).
//
// Two permutation modes exist. The symmetric mode is the paper's setting:
// a square A reordered as P·A·Pᵀ, so B's rows must be permuted to match the
// relabelled columns on every multiply. The rows-only mode backs the
// sharding subsystem (src/shard): a *row block* of a larger matrix keeps its
// original column labels (so one shared B serves every shard unchanged) and
// only its rows may be reordered — by hierarchical clustering's implicit
// order, never by an explicit reordering (those assume a square symmetric
// adjacency).
#pragma once

#include <optional>
#include <string>

#include "core/clustering_schemes.hpp"
#include "core/clusterwise_spgemm.hpp"
#include "matrix/csr_cluster.hpp"
#include "reorder/reorder.hpp"
#include "spgemm/spgemm.hpp"
#include "spgemm/stacked.hpp"

namespace cw {

/// Which cluster-wise scheme to run (§3.2–3.3). kNone = row-wise baseline.
enum class ClusterScheme { kNone, kFixed, kVariable, kHierarchical };

const char* to_string(ClusterScheme scheme);

/// How the pipeline's row order relates to the matrix it was built from.
/// kSymmetric: order applied as P·A·Pᵀ (columns relabelled; B is permuted on
/// multiply). kRowsOnly: order applied as row shuffle only (columns keep
/// their labels; B is used as-is) — the row-block/shard setting.
enum class PermutationMode : std::uint8_t { kSymmetric = 0, kRowsOnly = 1 };

const char* to_string(PermutationMode mode);

struct PipelineOptions {
  /// Reordering applied first (Original = keep input order). Ignored rows vs
  /// columns: applied symmetrically, P·A·Pᵀ.
  ReorderAlgo reorder = ReorderAlgo::kOriginal;
  ReorderOptions reorder_opt = {};

  ClusterScheme scheme = ClusterScheme::kHierarchical;
  /// kFixed: rows per cluster; 0 = auto-tune via choose_fixed_length().
  index_t fixed_length = 0;
  VariableClusterOptions variable_opt = {};
  HierarchicalOptions hierarchical_opt = {};

  /// Accumulator for the row-wise path (cluster-wise always uses hash, as in
  /// the paper).
  Accumulator accumulator = Accumulator::kHash;
};

/// Preprocessing timings + format stats for the overhead study (§4.5).
struct PipelineStats {
  double reorder_seconds = 0;
  double cluster_seconds = 0;  // clustering construction (Alg. 2 / Alg. 3)
  double format_seconds = 0;   // CsrCluster::build
  std::size_t csr_bytes = 0;
  std::size_t clustered_bytes = 0;  // 0 when scheme == kNone
  index_t num_clusters = 0;
  [[nodiscard]] double preprocess_seconds() const {
    return reorder_seconds + cluster_seconds + format_seconds;
  }
  [[nodiscard]] double memory_ratio() const {
    return csr_bytes > 0 && clustered_bytes > 0
               ? static_cast<double>(clustered_bytes) / static_cast<double>(csr_bytes)
               : 1.0;
  }
};

/// Physical-memory placement of a pipeline's bulk arrays (residency()).
/// Owned bytes are private heap (always resident); mapped bytes borrow a
/// snapshot-v3 file mapping, of which only resident_mapped_bytes are in RAM
/// right now — the rest fault in on first touch.
struct PipelineResidency {
  std::size_t owned_bytes = 0;
  std::size_t mapped_bytes = 0;
  std::size_t resident_mapped_bytes = 0;
};

/// Preprocess-once / multiply-many context.
class Pipeline {
 public:
  /// Preprocesses `a` according to `opt` in symmetric mode. `a` must be
  /// square.
  Pipeline(const Csr& a, const PipelineOptions& opt);

  /// Preprocess a (possibly rectangular) row block in rows-only mode:
  /// clustering runs as usual, but any row reordering (hierarchical's
  /// implicit one) shuffles rows without relabelling columns, so multiply()
  /// takes B unchanged. Requires opt.reorder == kOriginal — the explicit
  /// reorderings assume a square symmetric adjacency that a row block does
  /// not have (the sharding layer captures locality in its global plan
  /// order instead).
  static Pipeline prepare_rows(const Csr& a, const PipelineOptions& opt);

  /// Reassemble a pipeline from previously computed parts without redoing any
  /// preprocessing — the snapshot-loading path (serve/snapshot.hpp), which is
  /// what lets the §4.5 amortization span processes. `clustered` must be
  /// engaged iff opt.scheme != kNone, and all parts must be mutually
  /// consistent (a already permuted by order, clustering covering a's rows).
  /// Symmetric mode additionally requires a square matrix.
  static Pipeline restore(PipelineOptions opt, Csr a, Permutation order,
                          Clustering clustering,
                          std::optional<CsrCluster> clustered,
                          PipelineStats stats,
                          PermutationMode mode = PermutationMode::kSymmetric);

  /// The permutation mode the pipeline was prepared in.
  [[nodiscard]] PermutationMode mode() const { return mode_; }

  /// The row order in effect (order[new_pos] = original row). Hierarchical
  /// clustering contributes its own reordering on top of opt.reorder.
  [[nodiscard]] const Permutation& order() const { return order_; }

  /// Cached inverse of order() (inv[original row] = new position) — the
  /// per-request unpermute path must not rebuild it.
  [[nodiscard]] const Permutation& inverse_order() const { return inv_order_; }

  /// The preprocessed A (reordered symmetrically, or rows-only in kRowsOnly
  /// mode).
  [[nodiscard]] const Csr& matrix() const { return a_; }

  /// Cluster structure (singletons when scheme == kNone).
  [[nodiscard]] const Clustering& clustering() const { return clustering_; }

  [[nodiscard]] const PipelineStats& stats() const { return stats_; }

  /// The options the pipeline was preprocessed with.
  [[nodiscard]] const PipelineOptions& options() const { return opt_; }

  /// Clustered format (engaged unless scheme == kNone).
  [[nodiscard]] const std::optional<CsrCluster>& clustered() const {
    return clustered_;
  }

  /// C = A' × A' in the preprocessed (permuted) space. Equal to P·A²·Pᵀ.
  /// Symmetric mode only (a rows-only block is not its own column space).
  [[nodiscard]] Csr multiply_square(SpgemmStats* kernel_stats = nullptr) const;

  /// C = A' × B. Symmetric mode: B's rows are given in the *original* index
  /// space and permuted internally to match A's relabelled columns.
  /// Rows-only mode: columns were never relabelled, so B is used as-is.
  /// Either way the result's rows are in the preprocessed order (use
  /// unpermute_rows to go back).
  [[nodiscard]] Csr multiply(const Csr& b, SpgemmStats* kernel_stats = nullptr) const;

  /// Batched multiply: C_k = A' × B_k for every request in one kernel launch.
  /// The Bs (which must share A's column count as their row count; per-request
  /// column counts are free) are gathered into one column-stacked panel, the
  /// panel is multiplied once, and the product's column slices are scattered
  /// back out — each returned product is bit-identical to multiply(*bs[k]).
  /// This is the serving engine's second-level batching primitive
  /// (serve/engine.hpp, EngineOptions::batch_window).
  [[nodiscard]] std::vector<Csr> multiply_stacked(
      const std::vector<const Csr*>& bs,
      SpgemmStats* kernel_stats = nullptr) const;

  /// Undo the row permutation of a product computed in preprocessed space.
  [[nodiscard]] Csr unpermute_rows(const Csr& c) const;

  // --- residency control (common/residency.hpp) ----------------------------
  //
  // Only meaningful for mmap-loaded pipelines (borrowed segments); all four
  // are no-ops returning 0 on fully owned pipelines, and every one leaves
  // the pipeline's *values* untouched — products before and after any of
  // them are bit-identical. They are const (and thread-safe) because they
  // change where bytes live, never what they are.

  /// Prefault: WILLNEED-advise every mapped segment, then fault it in with a
  /// touch pass — a node can absorb the page-fault cost before taking
  /// traffic instead of on its first multiplies. Returns mapped bytes warmed.
  std::size_t warm_up() const;

  /// Async half of warm_up(): WILLNEED-advise every mapped segment and
  /// return immediately — the kernel's readahead streams the pages in
  /// behind the caller (poll residency() for completion). Costs almost no
  /// CPU, so prefetch can overlap compute even on a single core. Returns
  /// mapped bytes advised.
  std::size_t advise_willneed() const;

  /// Release: munlock + DONTNEED every mapped segment, dropping its physical
  /// pages (they re-fault from the file on next use). This is what gives
  /// registry eviction of mapped pipelines real teeth. Returns mapped bytes
  /// released.
  std::size_t release_residency() const;

  /// Pin whole mapped segments greedily until adding the next would exceed
  /// `max_bytes`. mlock failures (RLIMIT_MEMLOCK) skip the segment. Returns
  /// the bytes actually locked.
  std::size_t lock_residency(std::size_t max_bytes) const;

  /// Unpin everything lock_residency() may have pinned.
  std::size_t unlock_residency() const;

  /// Probe where this pipeline's bytes physically live right now.
  [[nodiscard]] PipelineResidency residency() const;

 private:
  Pipeline() = default;  // used by restore() / prepare_rows()

  /// Shared preprocessing body: reorder (symmetric mode only) → cluster →
  /// clustered format.
  void build_(const Csr& a);

  PipelineOptions opt_;
  PermutationMode mode_ = PermutationMode::kSymmetric;
  Csr a_;                    // preprocessed matrix
  Permutation order_;        // composition of reorder (+ hierarchical order)
  Permutation inv_order_;    // cached inverse: serving calls unpermute_rows
                             // per request, so it must not be O(n) rebuilt
  Clustering clustering_;
  std::optional<CsrCluster> clustered_;  // engaged unless scheme == kNone
  PipelineStats stats_;
};

}  // namespace cw
