#include "core/jaccard.hpp"

namespace cw {

index_t row_overlap(const Csr& a, index_t i, index_t j) {
  auto ci = a.row_cols(i);
  auto cj = a.row_cols(j);
  index_t overlap = 0;
  std::size_t p = 0, q = 0;
  while (p < ci.size() && q < cj.size()) {
    if (ci[p] == cj[q]) {
      ++overlap;
      ++p;
      ++q;
    } else if (ci[p] < cj[q]) {
      ++p;
    } else {
      ++q;
    }
  }
  return overlap;
}

double jaccard_similarity(const Csr& a, index_t i, index_t j) {
  const index_t ni = a.row_nnz(i);
  const index_t nj = a.row_nnz(j);
  if (ni == 0 && nj == 0) return 0.0;
  const index_t inter = row_overlap(a, i, j);
  const index_t uni = ni + nj - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace cw
