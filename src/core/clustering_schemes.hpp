// The three cluster-construction strategies of §3.2–3.3.
#pragma once

#include <vector>

#include "matrix/csr_cluster.hpp"
#include "spgemm/topk.hpp"

namespace cw {

// --- fixed-length (§3.2) ----------------------------------------------------

/// Group every `k` consecutive rows (last cluster may be shorter).
Clustering fixed_length_clustering(index_t nrows, index_t k);

/// Pick a fixed length from `candidates` by minimizing the CSR_Cluster
/// padding ratio on a row sample — a cheap auto-tuner for matrices whose
/// diagonal-block size is unknown (the paper notes "the number of rows per
/// cluster may vary across matrices").
index_t choose_fixed_length(const Csr& a,
                            const std::vector<index_t>& candidates = {2, 4, 8});

// --- variable-length (§3.2, Alg. 2) -----------------------------------------

struct VariableClusterOptions {
  double jaccard_threshold = 0.3;  // jacc_th, paper default
  index_t max_cluster_size = 8;    // max_cluster_th, paper default
};

/// Alg. 2: scan consecutive rows; extend the current cluster while the
/// Jaccard similarity to the cluster's *representative* (first) row stays
/// above the threshold and the size cap is not hit.
Clustering variable_length_clustering(const Csr& a,
                                      const VariableClusterOptions& opt = {});

// --- hierarchical (§3.3, Alg. 3) ---------------------------------------------

struct HierarchicalOptions {
  double jaccard_threshold = 0.3;
  index_t max_cluster_size = 8;
  index_t col_cap = 256;  // see TopKOptions::col_cap
};

/// Result of hierarchical clustering: a row order that places every cluster's
/// members consecutively, plus the clustering expressed in the *new* order
/// (ready for CsrCluster::build on a.permute_symmetric(order) /
/// a.permute_rows(order)).
struct HierarchicalResult {
  Permutation order;      // order[new_pos] = old row id
  Clustering clustering;  // consecutive ranges in the new order
  // Preprocessing breakdown (for the Fig. 10 amortization study).
  double topk_seconds = 0;
  double merge_seconds = 0;
  double build_order_seconds = 0;
  std::size_t candidate_pairs = 0;
  std::size_t merges = 0;
  std::size_t rescored_pairs = 0;
  [[nodiscard]] double total_seconds() const {
    return topk_seconds + merge_seconds + build_order_seconds;
  }
};

/// Alg. 3: candidate pairs via SpGEMM_TopK(A·Aᵀ), greedy merge through a
/// max-heap with lazy re-scoring, size-capped union–find, then emit the
/// cluster-ordered permutation (clusters sorted by their minimum original
/// row id, members ascending — keeps whatever locality the input order had).
HierarchicalResult hierarchical_clustering(const Csr& a,
                                           const HierarchicalOptions& opt = {});

}  // namespace cw
