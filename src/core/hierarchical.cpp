#include <algorithm>
#include <queue>
#include <unordered_set>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/clustering_schemes.hpp"
#include "core/jaccard.hpp"
#include "core/union_find.hpp"

namespace cw {

namespace {

/// Heap entry: highest Jaccard first; ties broken on (i, j) for determinism.
struct HeapEntry {
  double score;
  index_t i, j;
  bool operator<(const HeapEntry& o) const {
    if (score != o.score) return score < o.score;
    if (i != o.i) return i > o.i;
    return j > o.j;
  }
};

std::uint64_t pair_key(index_t i, index_t j) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(i)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(j));
}

}  // namespace

HierarchicalResult hierarchical_clustering(const Csr& a,
                                           const HierarchicalOptions& opt) {
  CW_CHECK(opt.max_cluster_size >= 1 &&
           opt.max_cluster_size <= CsrCluster::kMaxClusterSize);
  const index_t n = a.nrows();
  HierarchicalResult result;

  // ---- Alg. 3 lines 1–3: candidate pairs via SpGEMM(A·Aᵀ) top-K. ----------
  // Values are irrelevant for the overlap count (spgemm_topk works on the
  // pattern), which is exactly the "reset all values in A to 1" step.
  Timer t_topk;
  TopKOptions topk_opt;
  topk_opt.topk = std::max<index_t>(1, opt.max_cluster_size - 1);
  topk_opt.jaccard_threshold = opt.jaccard_threshold;
  topk_opt.col_cap = opt.col_cap;
  std::vector<CandidatePair> candidates = spgemm_topk(a, topk_opt);
  result.topk_seconds = t_topk.seconds();
  result.candidate_pairs = candidates.size();

  // ---- Alg. 3 lines 5–23: greedy merge with lazy re-scoring. --------------
  Timer t_merge;
  std::priority_queue<HeapEntry> sim_queue;
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(candidates.size() * 2);
  for (const CandidatePair& p : candidates) {
    sim_queue.push({p.score, p.i, p.j});
    seen.insert(pair_key(p.i, p.j));
  }

  UnionFind uf(n);
  while (!sim_queue.empty()) {
    const HeapEntry top = sim_queue.top();
    sim_queue.pop();
    index_t i = top.i, j = top.j;
    if (uf.is_root(i) && uf.is_root(j)) {
      if (uf.unite_capped(i, j, opt.max_cluster_size)) ++result.merges;
    } else {
      // One endpoint was absorbed: re-score the pair of current roots
      // (Alg. 3 lines 13–20) and requeue it if still similar.
      i = uf.find(i);
      j = uf.find(j);
      if (i == j) continue;
      if (i > j) std::swap(i, j);
      if (seen.insert(pair_key(i, j)).second) {
        const double score = jaccard_similarity(a, i, j);
        ++result.rescored_pairs;
        if (score > opt.jaccard_threshold) sim_queue.push({score, i, j});
      }
    }
  }
  result.merge_seconds = t_merge.seconds();

  // ---- Emit cluster-ordered permutation + clustering. ----------------------
  // Members of each set, gathered per root in ascending row order; clusters
  // ordered by minimum member (== first member since we scan ascending).
  Timer t_build;
  std::vector<index_t> head(static_cast<std::size_t>(n), kInvalidIndex);
  std::vector<index_t> next(static_cast<std::size_t>(n), kInvalidIndex);
  std::vector<index_t> tail(static_cast<std::size_t>(n), kInvalidIndex);
  std::vector<index_t> cluster_order;  // roots by first-seen (ascending row)
  cluster_order.reserve(static_cast<std::size_t>(n));
  for (index_t r = 0; r < n; ++r) {
    const index_t root = uf.find(r);
    if (head[static_cast<std::size_t>(root)] == kInvalidIndex) {
      head[static_cast<std::size_t>(root)] = r;
      tail[static_cast<std::size_t>(root)] = r;
      cluster_order.push_back(root);
    } else {
      next[static_cast<std::size_t>(tail[static_cast<std::size_t>(root)])] = r;
      tail[static_cast<std::size_t>(root)] = r;
    }
  }
  result.order.reserve(static_cast<std::size_t>(n));
  std::vector<index_t> sizes;
  sizes.reserve(cluster_order.size());
  for (index_t root : cluster_order) {
    index_t sz = 0;
    for (index_t r = head[static_cast<std::size_t>(root)]; r != kInvalidIndex;
         r = next[static_cast<std::size_t>(r)]) {
      result.order.push_back(r);
      ++sz;
    }
    sizes.push_back(sz);
  }
  result.clustering = Clustering::from_sizes(sizes);
  result.build_order_seconds = t_build.seconds();

  CW_DCHECK(is_permutation(result.order, n));
  return result;
}

}  // namespace cw
