#include "core/advisor.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/jaccard.hpp"
#include "spgemm/topk.hpp"

namespace cw {

MatrixFeatures extract_features(const Csr& a, index_t sample,
                                std::uint64_t seed) {
  CW_CHECK_MSG(a.nrows() == a.ncols(), "advisor expects a square matrix");
  MatrixFeatures f;
  f.nrows = a.nrows();
  f.nnz = a.nnz();
  if (f.nrows == 0) return f;
  f.avg_row_nnz = static_cast<double>(f.nnz) / static_cast<double>(f.nrows);

  double sq_sum = 0;
  index_t max_nnz = 0;
  for (index_t r = 0; r < a.nrows(); ++r) {
    const index_t d = a.row_nnz(r);
    sq_sum += static_cast<double>(d) * static_cast<double>(d);
    max_nnz = std::max(max_nnz, d);
  }
  f.max_row_nnz = max_nnz;
  const double var = sq_sum / static_cast<double>(f.nrows) -
                     f.avg_row_nnz * f.avg_row_nnz;
  f.degree_cv = f.avg_row_nnz > 0 ? std::sqrt(std::max(var, 0.0)) / f.avg_row_nnz : 0;
  f.bandwidth_ratio = f.nrows > 1 ? static_cast<double>(a.bandwidth()) /
                                        static_cast<double>(f.nrows - 1)
                                  : 0;

  // Sampled consecutive-row similarity.
  Rng rng(seed);
  const index_t n_samples = std::min<index_t>(sample, f.nrows - 1);
  double consec = 0;
  for (index_t s = 0; s < n_samples; ++s) {
    const index_t r = n_samples == f.nrows - 1 ? s : rng.index(f.nrows - 1);
    consec += jaccard_similarity(a, r, r + 1);
  }
  f.consecutive_jaccard = n_samples > 0 ? consec / n_samples : 0;

  // Sampled best-partner similarity via the same candidate machinery the
  // hierarchical preprocessing uses, restricted to a row sample.
  const index_t probe_rows = std::min<index_t>(sample / 4 + 1, f.nrows);
  TopKOptions topt;
  topt.topk = 1;
  topt.jaccard_threshold = 0.0;
  topt.col_cap = 128;
  // Build a row-sample submatrix is overkill; probe full topk only on small
  // matrices, otherwise reuse consecutive stats plus a stride sample.
  double best_sum = 0;
  index_t best_n = 0;
  if (f.nrows <= 4096) {
    const auto pairs = spgemm_topk(a, topt);
    std::vector<double> best(static_cast<std::size_t>(f.nrows), 0.0);
    for (const auto& p : pairs) {
      best[static_cast<std::size_t>(p.i)] = std::max(best[static_cast<std::size_t>(p.i)], p.score);
      best[static_cast<std::size_t>(p.j)] = std::max(best[static_cast<std::size_t>(p.j)], p.score);
    }
    for (double b : best) best_sum += b;
    best_n = f.nrows;
  } else {
    // Stride-sampled pairwise probe: compare each sampled row against a
    // handful of structurally-plausible partners (its column-neighbours).
    const Csr at = a.transpose();
    for (index_t s = 0; s < probe_rows; ++s) {
      const index_t i = rng.index(f.nrows);
      double best = 0;
      index_t checked = 0;
      for (index_t c : a.row_cols(i)) {
        const offset_t len = at.row_ptr()[c + 1] - at.row_ptr()[c];
        if (len > 128) continue;
        for (offset_t t = at.row_ptr()[c]; t < at.row_ptr()[c + 1] && checked < 16;
             ++t) {
          const index_t j = at.col_idx()[static_cast<std::size_t>(t)];
          if (j == i) continue;
          best = std::max(best, jaccard_similarity(a, i, j));
          ++checked;
        }
        if (checked >= 16) break;
      }
      best_sum += best;
      ++best_n;
    }
  }
  f.scattered_jaccard = best_n > 0 ? best_sum / best_n : 0;
  return f;
}

PipelineOptions Recommendation::pipeline_options() const {
  PipelineOptions opt;
  opt.reorder = reorder;
  opt.scheme = scheme;
  return opt;
}

Recommendation advise(const MatrixFeatures& f, ReuseBudget budget) {
  Recommendation rec;

  const bool heavy_tail = f.degree_cv > 2.0;
  const bool scrambled = f.bandwidth_ratio > 0.5;
  const bool rows_similar_in_place = f.consecutive_jaccard > 0.3;
  const bool rows_similar_somewhere = f.scattered_jaccard > 0.3;

  if (heavy_tail && !rows_similar_somewhere) {
    // Power-law graphs without duplicate-row structure: the paper's
    // webbase/wikipedia rows — neither reordering nor clustering is a
    // reliable win; Degree ordering is the cheap thing worth trying with
    // plenty of reuse.
    rec.reorder = budget == ReuseBudget::kThousands ? ReorderAlgo::kDegree
                                                    : ReorderAlgo::kOriginal;
    rec.scheme = ClusterScheme::kNone;
    rec.rationale =
        "heavy-tailed degrees without similar rows: row-wise baseline "
        "(reordering rarely pays on this family)";
    return rec;
  }

  if (rows_similar_in_place) {
    // Clusters already sit consecutively: skip reordering, cluster directly.
    rec.reorder = ReorderAlgo::kOriginal;
    rec.scheme = ClusterScheme::kVariable;
    rec.rationale =
        "consecutive rows already similar: variable-length clustering "
        "without reordering (fixed-length if the block size is known)";
    return rec;
  }

  if (rows_similar_somewhere) {
    // Similar rows exist but are scattered — hierarchical clustering's
    // home turf; with huge reuse budgets HP-then-cluster does better still
    // (Table 2's HP+cluster columns).
    if (budget == ReuseBudget::kThousands) {
      rec.reorder = ReorderAlgo::kHP;
      rec.scheme = ClusterScheme::kVariable;
      rec.rationale =
          "scattered similar rows + large reuse budget: hypergraph "
          "partitioning then variable-length clustering";
    } else {
      rec.reorder = ReorderAlgo::kOriginal;
      rec.scheme = ClusterScheme::kHierarchical;
      rec.rationale =
          "scattered similar rows: hierarchical clustering (inherent "
          "reordering, amortizes within ~20 SpGEMMs)";
    }
    return rec;
  }

  if (scrambled) {
    // Mesh/banded structure in a bad order: bandwidth/partition orders give
    // the paper's largest wins; pick by budget (Fig. 10 amortization).
    switch (budget) {
      case ReuseBudget::kSingle:
        rec.reorder = ReorderAlgo::kOriginal;
        rec.scheme = ClusterScheme::kNone;
        rec.rationale =
            "scrambled order but only one product: preprocessing cannot "
            "amortize — run row-wise";
        break;
      case ReuseBudget::kTens:
        rec.reorder = ReorderAlgo::kRCM;
        rec.scheme = ClusterScheme::kNone;
        rec.rationale =
            "scrambled locality, moderate reuse: RCM (cheapest of the "
            "high-payoff orders)";
        break;
      case ReuseBudget::kThousands:
        rec.reorder = ReorderAlgo::kHP;
        rec.scheme = ClusterScheme::kNone;
        rec.rationale =
            "scrambled locality, large reuse: hypergraph partitioning "
            "(highest geomean in Table 2)";
        break;
    }
    return rec;
  }

  rec.reorder = ReorderAlgo::kOriginal;
  rec.scheme = ClusterScheme::kNone;
  rec.rationale =
      "well-ordered matrix without row similarity: the row-wise baseline is "
      "already near-optimal";
  return rec;
}

Recommendation advise(const Csr& a, ReuseBudget budget) {
  return advise(extract_features(a), budget);
}

}  // namespace cw
