// Union–find with union-by-size and path halving, plus the size-capped union
// used by hierarchical clustering (merges that would exceed the maximum
// cluster size are rejected, per §3.3).
#pragma once

#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace cw {

class UnionFind {
 public:
  explicit UnionFind(index_t n) : parent_(static_cast<std::size_t>(n)),
                                  size_(static_cast<std::size_t>(n), 1) {
    for (index_t i = 0; i < n; ++i) parent_[static_cast<std::size_t>(i)] = i;
  }

  /// Representative of x's set (path halving).
  index_t find(index_t x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }

  /// True iff x is currently the representative of its set.
  [[nodiscard]] bool is_root(index_t x) const {
    return parent_[static_cast<std::size_t>(x)] == x;
  }

  /// Size of the set containing x.
  index_t set_size(index_t x) { return size_[static_cast<std::size_t>(find(x))]; }

  /// Merge the sets of a and b. Returns false if already joined.
  bool unite(index_t a, index_t b) {
    index_t ra = find(a), rb = find(b);
    if (ra == rb) return false;
    if (size_[static_cast<std::size_t>(ra)] < size_[static_cast<std::size_t>(rb)])
      std::swap(ra, rb);
    parent_[static_cast<std::size_t>(rb)] = ra;
    size_[static_cast<std::size_t>(ra)] += size_[static_cast<std::size_t>(rb)];
    return true;
  }

  /// Merge only if the combined size stays within `cap`. Returns whether a
  /// merge happened.
  bool unite_capped(index_t a, index_t b, index_t cap) {
    index_t ra = find(a), rb = find(b);
    if (ra == rb) return false;
    if (size_[static_cast<std::size_t>(ra)] + size_[static_cast<std::size_t>(rb)] > cap)
      return false;
    return unite(ra, rb);
  }

  [[nodiscard]] index_t n() const { return static_cast<index_t>(parent_.size()); }

 private:
  std::vector<index_t> parent_;
  std::vector<index_t> size_;
};

}  // namespace cw
