// Named dataset registry — the SuiteSparse-collection substitute.
//
// Dataset names mirror the paper's representative matrices; each maps to a
// generator reproducing the structural family at laptop scale (see
// DESIGN.md). The registry drives every table/figure bench.
#pragma once

#include <string>
#include <vector>

#include "matrix/csr.hpp"

namespace cw {

enum class SuiteScale { kSmall, kMedium, kFull };

/// Reads CW_SUITE=small|medium|full (default small).
SuiteScale suite_scale_from_env();

const char* to_string(SuiteScale s);

struct DatasetSpec {
  std::string name;
  std::string family;       // mesh / lattice / road / social / banded / ...
  std::string paper_match;  // which SuiteSparse matrix this stands in for
};

/// All datasets (the full evaluation suite).
const std::vector<DatasetSpec>& suite_specs();

/// The 10 representative datasets of Figs. 8–9.
const std::vector<std::string>& representative_datasets();

/// The 10 datasets of Tables 3–4 (tall-skinny workload).
const std::vector<std::string>& tallskinny_datasets();

/// Build a dataset by name at the given scale. Throws cw::Error for unknown
/// names.
Csr make_dataset(const std::string& name, SuiteScale scale);

/// True iff `name` is in the registry.
bool has_dataset(const std::string& name);

}  // namespace cw
