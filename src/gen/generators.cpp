#include "gen/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "matrix/coo.hpp"

namespace cw {

namespace {

/// Uniform value in [0.5, 1.5) — keeps products well-conditioned.
value_t rand_val(Rng& rng) { return 0.5 + rng.uniform(); }

}  // namespace

Csr gen_grid2d(index_t nx, index_t ny, int stencil) {
  CW_CHECK(nx >= 1 && ny >= 1);
  CW_CHECK(stencil == 5 || stencil == 9);
  const index_t n = nx * ny;
  Coo coo(n, n);
  Rng rng(0x61d2d5eedULL + static_cast<std::uint64_t>(n));
  auto id = [&](index_t x, index_t y) { return y * nx + x; };
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t v = id(x, y);
      coo.push(v, v, 4.0 + rng.uniform());
      const int dx9[] = {-1, 1, 0, 0, -1, -1, 1, 1};
      const int dy9[] = {0, 0, -1, 1, -1, 1, -1, 1};
      const int nn = stencil == 5 ? 4 : 8;
      for (int d = 0; d < nn; ++d) {
        const index_t xx = x + dx9[d], yy = y + dy9[d];
        if (xx < 0 || xx >= nx || yy < 0 || yy >= ny) continue;
        coo.push(v, id(xx, yy), -rand_val(rng));
      }
    }
  }
  return Csr::from_coo(coo);
}

Csr gen_grid3d(index_t nx, index_t ny, index_t nz, int stencil) {
  CW_CHECK(nx >= 1 && ny >= 1 && nz >= 1);
  CW_CHECK(stencil == 7 || stencil == 27);
  const index_t n = nx * ny * nz;
  Coo coo(n, n);
  Rng rng(0x3dULL + static_cast<std::uint64_t>(n));
  auto id = [&](index_t x, index_t y, index_t z) { return (z * ny + y) * nx + x; };
  for (index_t z = 0; z < nz; ++z) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        const index_t v = id(x, y, z);
        coo.push(v, v, 6.0 + rng.uniform());
        for (int dz = -1; dz <= 1; ++dz) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              if (dx == 0 && dy == 0 && dz == 0) continue;
              if (stencil == 7 && std::abs(dx) + std::abs(dy) + std::abs(dz) > 1)
                continue;
              const index_t xx = x + dx, yy = y + dy, zz = z + dz;
              if (xx < 0 || xx >= nx || yy < 0 || yy >= ny || zz < 0 || zz >= nz)
                continue;
              coo.push(v, id(xx, yy, zz), -rand_val(rng));
            }
          }
        }
      }
    }
  }
  return Csr::from_coo(coo);
}

Csr block_expand(const Csr& a, index_t b, std::uint64_t seed) {
  CW_CHECK(b >= 1);
  Rng rng(seed);
  const index_t n = a.nrows() * b;
  Coo coo(n, a.ncols() * b);
  coo.reserve(a.nnz() * b * b);
  for (index_t r = 0; r < a.nrows(); ++r) {
    for (index_t c : a.row_cols(r)) {
      for (index_t br = 0; br < b; ++br) {
        for (index_t bc = 0; bc < b; ++bc) {
          coo.push(r * b + br, c * b + bc,
                   r == c && br == bc ? 4.0 + rng.uniform() : rand_val(rng));
        }
      }
    }
  }
  return Csr::from_coo(coo);
}

Csr gen_lattice4d(index_t nx, index_t ny, index_t nz, index_t nt) {
  CW_CHECK(nx >= 2 && ny >= 2 && nz >= 2 && nt >= 2);
  const index_t n = nx * ny * nz * nt;
  Coo coo(n, n);
  Rng rng(0x4dULL + static_cast<std::uint64_t>(n));
  auto id = [&](index_t x, index_t y, index_t z, index_t t) {
    return ((t * nz + z) * ny + y) * nx + x;
  };
  for (index_t t = 0; t < nt; ++t) {
    for (index_t z = 0; z < nz; ++z) {
      for (index_t y = 0; y < ny; ++y) {
        for (index_t x = 0; x < nx; ++x) {
          const index_t v = id(x, y, z, t);
          coo.push(v, v, 8.0 + rng.uniform());
          // Periodic axis neighbours in ±x, ±y, ±z, ±t.
          coo.push(v, id((x + 1) % nx, y, z, t), rand_val(rng));
          coo.push(v, id((x + nx - 1) % nx, y, z, t), rand_val(rng));
          coo.push(v, id(x, (y + 1) % ny, z, t), rand_val(rng));
          coo.push(v, id(x, (y + ny - 1) % ny, z, t), rand_val(rng));
          coo.push(v, id(x, y, (z + 1) % nz, t), rand_val(rng));
          coo.push(v, id(x, y, (z + nz - 1) % nz, t), rand_val(rng));
          coo.push(v, id(x, y, z, (t + 1) % nt), rand_val(rng));
          coo.push(v, id(x, y, z, (t + nt - 1) % nt), rand_val(rng));
        }
      }
    }
  }
  return Csr::from_coo(coo);
}

Csr gen_tri_mesh(index_t nx, index_t ny, bool shuffled, std::uint64_t seed) {
  CW_CHECK(nx >= 2 && ny >= 2);
  const index_t n = nx * ny;
  Rng rng(seed);
  // Optional vertex relabeling destroys the natural grid order, which is how
  // real unstructured meshes arrive (mesh generators emit irregular ids).
  std::vector<index_t> label(static_cast<std::size_t>(n));
  std::iota(label.begin(), label.end(), index_t{0});
  if (shuffled) shuffle(label, rng);
  auto id = [&](index_t x, index_t y) {
    return label[static_cast<std::size_t>(y * nx + x)];
  };
  Coo coo(n, n);
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t v = id(x, y);
      coo.push(v, v, 6.0 + rng.uniform());
      if (x + 1 < nx) coo.push(v, id(x + 1, y), rand_val(rng));
      if (x > 0) coo.push(v, id(x - 1, y), rand_val(rng));
      if (y + 1 < ny) coo.push(v, id(x, y + 1), rand_val(rng));
      if (y > 0) coo.push(v, id(x, y - 1), rand_val(rng));
      // Triangulating diagonal.
      if (x + 1 < nx && y + 1 < ny) coo.push(v, id(x + 1, y + 1), rand_val(rng));
      if (x > 0 && y > 0) coo.push(v, id(x - 1, y - 1), rand_val(rng));
    }
  }
  return Csr::from_coo(coo);
}

Csr gen_road_network(index_t n, index_t avg_degree, std::uint64_t seed) {
  CW_CHECK(n >= 2 && avg_degree >= 1);
  Rng rng(seed);
  // Points on a unit square; connect to nearest neighbours found through a
  // uniform grid of cells (~1 point per cell).
  const auto side = static_cast<index_t>(std::sqrt(static_cast<double>(n)) + 1);
  std::vector<double> px(static_cast<std::size_t>(n)), py(static_cast<std::size_t>(n));
  std::vector<std::vector<index_t>> cell(
      static_cast<std::size_t>(side) * static_cast<std::size_t>(side));
  for (index_t v = 0; v < n; ++v) {
    px[static_cast<std::size_t>(v)] = rng.uniform();
    py[static_cast<std::size_t>(v)] = rng.uniform();
    const auto cx = std::min<index_t>(side - 1, static_cast<index_t>(px[static_cast<std::size_t>(v)] * side));
    const auto cy = std::min<index_t>(side - 1, static_cast<index_t>(py[static_cast<std::size_t>(v)] * side));
    cell[static_cast<std::size_t>(cy) * static_cast<std::size_t>(side) +
         static_cast<std::size_t>(cx)]
        .push_back(v);
  }
  Coo coo(n, n);
  std::vector<std::pair<double, index_t>> nearest;
  for (index_t v = 0; v < n; ++v) {
    coo.push(v, v, 2.0 + rng.uniform());
    const auto cx = std::min<index_t>(side - 1, static_cast<index_t>(px[static_cast<std::size_t>(v)] * side));
    const auto cy = std::min<index_t>(side - 1, static_cast<index_t>(py[static_cast<std::size_t>(v)] * side));
    nearest.clear();
    for (index_t dy = -1; dy <= 1; ++dy) {
      for (index_t dx = -1; dx <= 1; ++dx) {
        const index_t xx = cx + dx, yy = cy + dy;
        if (xx < 0 || xx >= side || yy < 0 || yy >= side) continue;
        for (index_t u : cell[static_cast<std::size_t>(yy) * static_cast<std::size_t>(side) +
                              static_cast<std::size_t>(xx)]) {
          if (u == v) continue;
          const double d2 = (px[static_cast<std::size_t>(u)] - px[static_cast<std::size_t>(v)]) *
                                (px[static_cast<std::size_t>(u)] - px[static_cast<std::size_t>(v)]) +
                            (py[static_cast<std::size_t>(u)] - py[static_cast<std::size_t>(v)]) *
                                (py[static_cast<std::size_t>(u)] - py[static_cast<std::size_t>(v)]);
          nearest.emplace_back(d2, u);
        }
      }
    }
    const auto want = static_cast<std::size_t>(avg_degree);
    if (nearest.size() > want) {
      std::nth_element(nearest.begin(),
                       nearest.begin() + static_cast<std::ptrdiff_t>(want) - 1,
                       nearest.end());
      nearest.resize(want);
    }
    for (const auto& [d2, u] : nearest) {
      const value_t w = rand_val(rng);
      coo.push(v, u, w);
      coo.push(u, v, w);
    }
  }
  return Csr::from_coo(coo);
}

Csr gen_rmat(index_t scale, index_t edge_factor, double a, double b, double c,
             std::uint64_t seed, bool symmetric) {
  CW_CHECK(scale >= 1 && scale <= 26);
  const index_t n = index_t{1} << scale;
  const offset_t m = static_cast<offset_t>(n) * edge_factor;
  const double d = 1.0 - a - b - c;
  CW_CHECK_MSG(d >= 0.0, "RMAT probabilities must sum to <= 1");
  Rng rng(seed);
  Coo coo(n, n);
  coo.reserve(symmetric ? 2 * m + n : m + n);
  for (index_t v = 0; v < n; ++v) coo.push(v, v, 1.0);  // keep diagonal
  for (offset_t e = 0; e < m; ++e) {
    index_t r = 0, col = 0;
    for (index_t bit = n >> 1; bit > 0; bit >>= 1) {
      const double p = rng.uniform();
      if (p < a) {
        // top-left quadrant
      } else if (p < a + b) {
        col |= bit;
      } else if (p < a + b + c) {
        r |= bit;
      } else {
        r |= bit;
        col |= bit;
      }
    }
    const value_t w = rand_val(rng);
    coo.push(r, col, w);
    if (symmetric && r != col) coo.push(col, r, w);
  }
  return Csr::from_coo(coo);
}

Csr gen_erdos_renyi(index_t n, index_t avg_degree, std::uint64_t seed) {
  CW_CHECK(n >= 2 && avg_degree >= 1);
  Rng rng(seed);
  Coo coo(n, n);
  const offset_t m = static_cast<offset_t>(n) * avg_degree / 2;
  coo.reserve(2 * m + n);
  for (index_t v = 0; v < n; ++v) coo.push(v, v, 1.0);
  for (offset_t e = 0; e < m; ++e) {
    const index_t u = rng.index(n);
    const index_t v = rng.index(n);
    if (u == v) continue;
    const value_t w = rand_val(rng);
    coo.push(u, v, w);
    coo.push(v, u, w);
  }
  return Csr::from_coo(coo);
}

Csr gen_banded(index_t n, index_t bandwidth, double fill, std::uint64_t seed) {
  CW_CHECK(n >= 1 && bandwidth >= 1);
  CW_CHECK(fill > 0.0 && fill <= 1.0);
  Rng rng(seed);
  Coo coo(n, n);
  for (index_t r = 0; r < n; ++r) {
    coo.push(r, r, 4.0 + rng.uniform());
    const index_t lo = std::max<index_t>(0, r - bandwidth);
    const index_t hi = std::min<index_t>(n - 1, r + bandwidth);
    for (index_t col = lo; col <= hi; ++col) {
      if (col == r) continue;
      if (rng.uniform() < fill) coo.push(r, col, rand_val(rng));
    }
  }
  return Csr::from_coo(coo);
}

Csr gen_block_diag(index_t n, index_t block, double coupling,
                   std::uint64_t seed) {
  CW_CHECK(n >= 1 && block >= 1);
  Rng rng(seed);
  Coo coo(n, n);
  for (index_t b0 = 0; b0 < n; b0 += block) {
    const index_t b1 = std::min<index_t>(n, b0 + block);
    for (index_t r = b0; r < b1; ++r) {
      for (index_t col = b0; col < b1; ++col) {
        coo.push(r, col, r == col ? 4.0 + rng.uniform() : rand_val(rng));
      }
    }
  }
  // Sparse random coupling between blocks.
  const auto extra = static_cast<offset_t>(coupling * static_cast<double>(n));
  for (offset_t e = 0; e < extra; ++e) {
    const index_t u = rng.index(n);
    const index_t v = rng.index(n);
    if (u == v) continue;
    const value_t w = rand_val(rng);
    coo.push(u, v, w);
    coo.push(v, u, w);
  }
  return Csr::from_coo(coo);
}

Csr gen_kkt(index_t n_base, index_t border, index_t avg_degree,
            std::uint64_t seed) {
  CW_CHECK(n_base >= 2 && border >= 0);
  Rng rng(seed);
  const index_t n = n_base + border;
  Coo coo(n, n);
  // Sparse base block (short-range random couplings).
  for (index_t v = 0; v < n_base; ++v) {
    coo.push(v, v, 4.0 + rng.uniform());
    for (index_t e = 0; e < avg_degree / 2; ++e) {
      // Mostly local couplings with occasional long-range ones — KKT systems
      // couple neighbouring variables plus a few global constraints.
      index_t u;
      if (rng.uniform() < 0.9) {
        const index_t span = 32;
        const auto delta = static_cast<index_t>(rng.bounded(2 * span + 1)) - span;
        u = std::clamp<index_t>(v + delta, 0, n_base - 1);
      } else {
        u = rng.index(n_base);
      }
      if (u == v) continue;
      const value_t w = rand_val(rng);
      coo.push(v, u, w);
      coo.push(u, v, w);
    }
  }
  // Dense-ish constraint border rows/cols.
  for (index_t b = 0; b < border; ++b) {
    const index_t r = n_base + b;
    coo.push(r, r, 1.0);
    const index_t touches = std::max<index_t>(1, n_base / std::max<index_t>(border, 1) / 2);
    for (index_t t = 0; t < touches; ++t) {
      const index_t u = rng.index(n_base);
      const value_t w = rand_val(rng);
      coo.push(r, u, w);
      coo.push(u, r, w);
    }
  }
  return Csr::from_coo(coo);
}

Csr gen_citation(index_t n, index_t avg_degree, std::uint64_t seed) {
  CW_CHECK(n >= 2 && avg_degree >= 1);
  Rng rng(seed);
  Coo coo(n, n);
  for (index_t v = 1; v < n; ++v) {
    const index_t cites = 1 + rng.index(2 * avg_degree - 1);
    for (index_t e = 0; e < cites; ++e) {
      // Preferential to recent vertices: quadratic bias toward v.
      const double u01 = rng.uniform();
      const auto target = static_cast<index_t>(
          static_cast<double>(v) * (1.0 - u01 * u01));
      coo.push(v, std::min<index_t>(target, v - 1), rand_val(rng));
    }
  }
  for (index_t v = 0; v < n; ++v) coo.push(v, v, 1.0);
  return Csr::from_coo(coo);
}

void randomize_values(Csr& a, std::uint64_t seed) {
  Rng rng(seed);
  for (value_t& v : a.mutable_values()) v = rand_val(rng);
}

Csr gen_request_payload(index_t nrows, index_t ncols, index_t max_row_nnz,
                        std::uint64_t seed) {
  CW_CHECK(nrows >= 1 && ncols >= 1 && max_row_nnz >= 1);
  Rng rng(seed);
  Coo coo(nrows, ncols);
  for (index_t r = 0; r < nrows; ++r) {
    const index_t k = 1 + rng.index(max_row_nnz);
    for (index_t j = 0; j < k; ++j) coo.push(r, rng.index(ncols), rand_val(rng));
  }
  return Csr::from_coo(coo);
}

}  // namespace cw
