// Synthetic sparse-matrix generators covering the structural families of the
// paper's 110-matrix SuiteSparse suite (see DESIGN.md for the substitution
// rationale). All generators are deterministic given their seed.
#pragma once

#include <cstdint>

#include "matrix/csr.hpp"

namespace cw {

/// 2D nx×ny grid, 5-point (stencil=5) or 9-point (stencil=9) stencil,
/// diagonal included. Models structured FEM/Poisson problems.
Csr gen_grid2d(index_t nx, index_t ny, int stencil = 5);

/// 3D nx×ny×nz grid, 7-point (stencil=7) or 27-point (stencil=27) stencil
/// with diagonal (rma10/poisson3Da-like).
Csr gen_grid3d(index_t nx, index_t ny, index_t nz, int stencil = 7);

/// Expand every scalar entry (i,j) into a dense b×b block — the multi-DOF
/// supernode structure of FEM/QCD matrices (conf5's 3-colour blocks, CFD
/// velocity/pressure groups). Rows within a block share an identical
/// sparsity pattern, which is what makes row clustering effective on these
/// families (§3.2's "dense diagonal block pattern").
Csr block_expand(const Csr& a, index_t b, std::uint64_t seed);

/// 4D periodic lattice (torus) with 8 axis neighbours + diagonal — the QCD
/// conf5_4-8x8-05 structure.
Csr gen_lattice4d(index_t nx, index_t ny, index_t nz, index_t nt);

/// Triangular 2D mesh: grid + one diagonal per cell, vertices jittered into
/// random order optionally. Models the AS365/M6/NLR FEM meshes.
Csr gen_tri_mesh(index_t nx, index_t ny, bool shuffled, std::uint64_t seed);

/// Road-network-like random geometric graph: n points on a unit square,
/// each connected to its few nearest neighbours via grid hashing
/// (europe_osm / GAP-road style: huge diameter, degree ~2-4).
Csr gen_road_network(index_t n, index_t avg_degree, std::uint64_t seed);

/// RMAT power-law graph (Chakrabarti et al. parameters a,b,c,d). Models
/// social/web graphs (com-LiveJournal, wikipedia, webbase).
Csr gen_rmat(index_t scale, index_t edge_factor, double a, double b, double c,
             std::uint64_t seed, bool symmetric = true);

/// Erdős–Rényi with expected average degree; uniform structure.
Csr gen_erdos_renyi(index_t n, index_t avg_degree, std::uint64_t seed);

/// Random banded matrix: entries within `bandwidth` of the diagonal with
/// density `fill`, diagonal always present (cage/pdb-like locality).
Csr gen_banded(index_t n, index_t bandwidth, double fill, std::uint64_t seed);

/// Dense diagonal blocks of size `block` (fully dense) plus sparse random
/// coupling entries — the protein/optimization block structure (§3.2
/// motivates fixed-length clustering with exactly this pattern).
Csr gen_block_diag(index_t n, index_t block, double coupling,
                   std::uint64_t seed);

/// KKT-style bordered block system: sparse SPD-ish base + `border` dense
/// rows/columns at the end (kkt_power-like).
Csr gen_kkt(index_t n_base, index_t border, index_t avg_degree,
            std::uint64_t seed);

/// Citation-graph-like: DAG edges to earlier vertices, preferential towards
/// recent ones (patents_main-like), symmetrized on request.
Csr gen_citation(index_t n, index_t avg_degree, std::uint64_t seed);

/// Random values in [0.5, 1.5) for every stored entry (in place).
void randomize_values(Csr& a, std::uint64_t seed);

/// Random tall-skinny request payload: every row holds 1..max_row_nnz
/// entries at uniform columns — the B-matrix shape of the serving workload
/// (BC frontiers, AMG interpolation operators).
Csr gen_request_payload(index_t nrows, index_t ncols, index_t max_row_nnz,
                        std::uint64_t seed);

}  // namespace cw
