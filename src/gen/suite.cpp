#include "gen/suite.hpp"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <map>

#include "common/error.hpp"
#include "gen/generators.hpp"

namespace cw {

SuiteScale suite_scale_from_env() {
  const char* env = std::getenv("CW_SUITE");
  if (!env) return SuiteScale::kSmall;
  const std::string s(env);
  if (s == "full") return SuiteScale::kFull;
  if (s == "medium") return SuiteScale::kMedium;
  return SuiteScale::kSmall;
}

const char* to_string(SuiteScale s) {
  switch (s) {
    case SuiteScale::kSmall: return "small";
    case SuiteScale::kMedium: return "medium";
    case SuiteScale::kFull: return "full";
  }
  return "?";
}

namespace {

/// Linear-dimension multiplier per scale.
index_t dim(SuiteScale s, index_t base) {
  switch (s) {
    case SuiteScale::kSmall: return base;
    case SuiteScale::kMedium: return base * 2;
    case SuiteScale::kFull: return base * 3;
  }
  return base;
}

/// Vertex-count multiplier per scale (for generators taking n directly).
index_t cnt(SuiteScale s, index_t base) {
  switch (s) {
    case SuiteScale::kSmall: return base;
    case SuiteScale::kMedium: return base * 4;
    case SuiteScale::kFull: return base * 8;
  }
  return base;
}

/// RMAT scale bump per suite scale.
index_t rscale(SuiteScale s, index_t base) {
  switch (s) {
    case SuiteScale::kSmall: return base;
    case SuiteScale::kMedium: return base + 2;
    case SuiteScale::kFull: return base + 3;
  }
  return base;
}

struct Entry {
  DatasetSpec spec;
  std::function<Csr(SuiteScale)> make;
};

// Sizing: small-scale matrices target ~300k–1.5M stored nonzeros so the
// B operand exceeds the 2 MiB L2 of the evaluation container — the cache
// level whose reuse the paper's clustering improves. Multi-DOF families
// (QCD, CFD, protein) use block_expand: rows within a block share their
// sparsity pattern, the structure that makes row clustering effective.
const std::vector<Entry>& registry() {
  static const std::vector<Entry> entries = {
      // --- the 10 representative datasets of Figs. 8–9 ----------------------
      {{"cage12", "banded", "cage12 (DNA electrophoresis)"},
       [](SuiteScale s) { return gen_banded(cnt(s, 20000), 48, 0.15, 101); }},
      {{"poi3D", "mesh3d", "poisson3Da (3D Poisson, 27pt)"},
       [](SuiteScale s) {
         return gen_grid3d(dim(s, 24), dim(s, 24), dim(s, 24), 27);
       }},
      {{"conf5", "lattice4d", "conf5_4-8x8-05 (QCD, 3-colour blocks)"},
       [](SuiteScale s) {
         return block_expand(gen_lattice4d(8, 8, 8, dim(s, 8)), 3, 102);
       }},
      {{"pdb1", "block", "pdb1HYS (protein)"},
       [](SuiteScale s) { return gen_block_diag(cnt(s, 12000), 24, 4.0, 103); }},
      {{"rma10", "mesh3d", "rma10 (3D CFD, 3 DOF/node)"},
       [](SuiteScale s) {
         return block_expand(gen_grid3d(dim(s, 24), dim(s, 20), 10), 3, 104);
       }},
      {{"wb", "social", "webbase-1M (web crawl)"},
       [](SuiteScale s) { return gen_rmat(rscale(s, 14), 5, 0.57, 0.19, 0.19, 105); }},
      {{"AS365", "mesh2d", "AS365 (2D FEM mesh)"},
       [](SuiteScale s) { return gen_tri_mesh(dim(s, 180), dim(s, 180), true, 106); }},
      {{"huget", "mesh2d", "hugetric (2D mesh)"},
       [](SuiteScale s) { return gen_tri_mesh(dim(s, 220), dim(s, 200), true, 107); }},
      {{"M6", "mesh2d", "M6 (2D FEM mesh)"},
       [](SuiteScale s) { return gen_tri_mesh(dim(s, 200), dim(s, 200), true, 108); }},
      {{"NLR", "mesh2d", "NLR (2D FEM mesh)"},
       [](SuiteScale s) { return gen_tri_mesh(dim(s, 230), dim(s, 230), true, 109); }},
      // --- Tables 3–4 additions ---------------------------------------------
      {{"webbase-1M", "social", "webbase-1M (web crawl)"},
       [](SuiteScale s) { return gen_rmat(rscale(s, 14), 5, 0.57, 0.19, 0.19, 105); }},
      {{"patents_main", "citation", "patents_main (citations)"},
       [](SuiteScale s) { return gen_citation(cnt(s, 60000), 3, 110); }},
      {{"com-LiveJournal", "social", "com-LiveJournal (social)"},
       [](SuiteScale s) { return gen_rmat(rscale(s, 14), 10, 0.45, 0.22, 0.22, 111); }},
      {{"europe_osm", "road", "europe_osm (road network)"},
       [](SuiteScale s) { return gen_road_network(cnt(s, 120000), 2, 112); }},
      {{"GAP-road", "road", "GAP-road (road network)"},
       [](SuiteScale s) { return gen_road_network(cnt(s, 100000), 3, 113); }},
      {{"kkt_power", "kkt", "kkt_power (optimization KKT)"},
       [](SuiteScale s) { return gen_kkt(cnt(s, 80000), 300, 6, 114); }},
      {{"wikipedia-20070206", "social", "wikipedia-20070206 (links)"},
       [](SuiteScale s) { return gen_rmat(rscale(s, 14), 8, 0.55, 0.2, 0.15, 115); }},
      // --- §4.3 crossover example -------------------------------------------
      {{"torso1", "kkt", "torso1 (FEM with dense rows)"},
       [](SuiteScale s) { return gen_kkt(cnt(s, 30000), 100, 20, 116); }},
      // --- family fillers spanning the rest of the 110-matrix suite ---------
      {{"poisson2D-5pt", "mesh2d", "structured 2D Poisson"},
       [](SuiteScale s) { return gen_grid2d(dim(s, 220), dim(s, 220), 5); }},
      {{"poisson2D-9pt", "mesh2d", "structured 2D Poisson (9pt)"},
       [](SuiteScale s) { return gen_grid2d(dim(s, 180), dim(s, 180), 9); }},
      {{"mesh-natural", "mesh2d", "FEM mesh in natural order"},
       [](SuiteScale s) { return gen_tri_mesh(dim(s, 160), dim(s, 160), false, 117); }},
      {{"fem-2dof", "block", "FEM mesh with 2 DOF per node"},
       [](SuiteScale s) {
         return block_expand(gen_tri_mesh(dim(s, 120), dim(s, 120), false, 118), 2, 118);
       }},
      {{"fem-3dof-shuffled", "block", "shuffled FEM mesh, 3 DOF per node"},
       [](SuiteScale s) {
         return block_expand(gen_grid2d(dim(s, 90), dim(s, 90), 9), 3, 119);
       }},
      {{"er-sparse", "uniform", "uniform random (DIMACS10-like)"},
       [](SuiteScale s) { return gen_erdos_renyi(cnt(s, 50000), 8, 120); }},
      {{"er-dense", "uniform", "uniform random, denser"},
       [](SuiteScale s) { return gen_erdos_renyi(cnt(s, 25000), 16, 121); }},
      {{"rmat-dense", "social", "dense power-law (SNAP-like)"},
       [](SuiteScale s) { return gen_rmat(rscale(s, 12), 16, 0.5, 0.2, 0.2, 122); }},
      {{"rmat-sym", "social", "balanced RMAT"},
       [](SuiteScale s) { return gen_rmat(rscale(s, 14), 6, 0.45, 0.22, 0.22, 123); }},
      {{"banded-wide", "banded", "wide sparse band"},
       [](SuiteScale s) { return gen_banded(cnt(s, 15000), 150, 0.05, 124); }},
      {{"banded-dense", "banded", "narrow dense band"},
       [](SuiteScale s) { return gen_banded(cnt(s, 15000), 16, 0.5, 125); }},
      {{"block-large", "block", "large dense diagonal blocks"},
       [](SuiteScale s) { return gen_block_diag(cnt(s, 9000), 32, 1.0, 126); }},
      {{"block-small", "block", "small dense diagonal blocks"},
       [](SuiteScale s) { return gen_block_diag(cnt(s, 20000), 4, 4.0, 127); }},
      {{"road-dense", "road", "denser road-like network"},
       [](SuiteScale s) { return gen_road_network(cnt(s, 60000), 4, 128); }},
      {{"lattice4d-8", "lattice4d", "QCD lattice variant (2-spin blocks)"},
       [](SuiteScale s) {
         return block_expand(gen_lattice4d(dim(s, 8), 8, 8, 10), 2, 129);
       }},
      {{"citation-dense", "citation", "denser citation DAG"},
       [](SuiteScale s) { return gen_citation(cnt(s, 40000), 8, 130); }},
  };
  return entries;
}

}  // namespace

const std::vector<DatasetSpec>& suite_specs() {
  static const std::vector<DatasetSpec> specs = [] {
    std::vector<DatasetSpec> s;
    for (const Entry& e : registry()) s.push_back(e.spec);
    return s;
  }();
  return specs;
}

const std::vector<std::string>& representative_datasets() {
  static const std::vector<std::string> names = {
      "cage12", "poi3D", "conf5", "pdb1", "rma10",
      "wb",     "AS365", "huget", "M6",   "NLR"};
  return names;
}

const std::vector<std::string>& tallskinny_datasets() {
  static const std::vector<std::string> names = {
      "webbase-1M", "patents_main", "AS365",     "com-LiveJournal",
      "europe_osm", "GAP-road",     "kkt_power", "M6",
      "NLR",        "wikipedia-20070206"};
  return names;
}

Csr make_dataset(const std::string& name, SuiteScale scale) {
  for (const Entry& e : registry()) {
    if (e.spec.name == name) return e.make(scale);
  }
  throw Error("unknown dataset: " + name);
}

bool has_dataset(const std::string& name) {
  return std::any_of(registry().begin(), registry().end(),
                     [&](const Entry& e) { return e.spec.name == name; });
}

}  // namespace cw
