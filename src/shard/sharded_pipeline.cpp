#include "shard/sharded_pipeline.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cw::shard {

ShardedPipeline::ShardedPipeline(const Csr& a, const PlanOptions& plan_opt,
                                 const PipelineOptions& opt)
    : plan_(RowBlockPlan::build(a, plan_opt)), opt_(opt) {
  CW_CHECK_MSG(opt.reorder == ReorderAlgo::kOriginal,
               "sharded pipeline: shards are rows-only pipelines and take no "
               "explicit reordering; use SplitStrategy::kLocality for a "
               "locality-restoring global order");
  const index_t k = plan_.num_shards();
  shards_.reserve(static_cast<std::size_t>(k));
  fingerprints_.reserve(static_cast<std::size_t>(k));
  for (index_t s = 0; s < k; ++s) {
    const Csr block = plan_.extract_block(a, s);
    PipelineOptions sopt = opt;
    // An empty block has nothing to cluster; kNone keeps its pipeline from
    // exercising cluster construction on zero rows.
    if (block.nrows() == 0) sopt.scheme = ClusterScheme::kNone;
    auto p = std::make_shared<const Pipeline>(Pipeline::prepare_rows(block, sopt));
    // Keyed by the *prepared* block so restore() (which no longer has the
    // raw extraction) derives identical keys.
    fingerprints_.push_back(serve::fingerprint(p->matrix()));
    shards_.push_back(std::move(p));
  }
}

ShardedPipeline ShardedPipeline::restore(
    RowBlockPlan plan, PipelineOptions opt,
    std::vector<std::shared_ptr<const Pipeline>> shards) {
  CW_CHECK_MSG(static_cast<index_t>(shards.size()) == plan.num_shards(),
               "sharded restore: shard count does not match the plan");
  offset_t total_nnz = 0;
  for (index_t s = 0; s < plan.num_shards(); ++s) {
    const auto& p = shards[static_cast<std::size_t>(s)];
    CW_CHECK_MSG(p != nullptr, "sharded restore: null shard pipeline");
    CW_CHECK_MSG(p->mode() == PermutationMode::kRowsOnly,
                 "sharded restore: shard " << s << " is not a rows-only "
                 "pipeline");
    CW_CHECK_MSG(p->matrix().nrows() == plan.block_rows(s) &&
                     p->matrix().ncols() == plan.ncols(),
                 "sharded restore: shard " << s << " does not match its row "
                 "block");
    total_nnz += p->matrix().nnz();
  }
  CW_CHECK_MSG(total_nnz == plan.nnz(),
               "sharded restore: shard nnz does not sum to the plan's");
  ShardedPipeline sp;
  sp.plan_ = std::move(plan);
  sp.opt_ = opt;
  sp.shards_ = std::move(shards);
  sp.fingerprints_.reserve(sp.shards_.size());
  for (const auto& p : sp.shards_)
    sp.fingerprints_.push_back(serve::fingerprint(p->matrix()));
  return sp;
}

index_t ShardedPipeline::admit(serve::PipelineRegistry& registry) const {
  index_t admitted_count = 0;
  for (index_t s = 0; s < num_shards(); ++s) {
    bool admitted = false;
    registry.insert(fingerprints_[static_cast<std::size_t>(s)],
                    shards_[static_cast<std::size_t>(s)], &admitted);
    if (admitted) ++admitted_count;
  }
  return admitted_count;
}

Csr ShardedPipeline::multiply(const Csr& b) const {
  CW_CHECK_MSG(b.nrows() == plan_.ncols(),
               "sharded multiply: B has " << b.nrows() << " rows, expected "
               << plan_.ncols());
  std::vector<Csr> results;
  results.reserve(static_cast<std::size_t>(num_shards()));
  for (index_t s = 0; s < num_shards(); ++s) {
    const auto& p = shards_[static_cast<std::size_t>(s)];
    results.push_back(p->unpermute_rows(p->multiply(b)));
  }
  return gather(results);
}

Csr ShardedPipeline::gather(const std::vector<Csr>& block_results) const {
  CW_CHECK_MSG(static_cast<index_t>(block_results.size()) == num_shards(),
               "gather: expected one product per shard");
  const index_t ncols =
      block_results.empty() ? 0 : block_results.front().ncols();
  for (index_t s = 0; s < num_shards(); ++s) {
    const Csr& c = block_results[static_cast<std::size_t>(s)];
    CW_CHECK_MSG(c.nrows() == plan_.block_rows(s),
                 "gather: shard " << s << " product has " << c.nrows()
                 << " rows, expected " << plan_.block_rows(s));
    CW_CHECK_MSG(c.ncols() == ncols,
                 "gather: shard products disagree on column count");
  }

  const index_t nrows = plan_.nrows();
  const Permutation& order = plan_.order();
  const std::vector<index_t>& ptr = plan_.block_ptr();
  std::vector<offset_t> row_ptr(static_cast<std::size_t>(nrows) + 1, 0);
  for (index_t s = 0; s < num_shards(); ++s) {
    const Csr& c = block_results[static_cast<std::size_t>(s)];
    for (index_t i = 0; i < c.nrows(); ++i) {
      const index_t orig =
          order[static_cast<std::size_t>(ptr[static_cast<std::size_t>(s)] + i)];
      row_ptr[static_cast<std::size_t>(orig) + 1] = c.row_nnz(i);
    }
  }
  for (index_t r = 0; r < nrows; ++r)
    row_ptr[static_cast<std::size_t>(r) + 1] +=
        row_ptr[static_cast<std::size_t>(r)];

  std::vector<index_t> col_idx(static_cast<std::size_t>(row_ptr.back()));
  std::vector<value_t> values(static_cast<std::size_t>(row_ptr.back()));
  for (index_t s = 0; s < num_shards(); ++s) {
    const Csr& c = block_results[static_cast<std::size_t>(s)];
    for (index_t i = 0; i < c.nrows(); ++i) {
      const index_t orig =
          order[static_cast<std::size_t>(ptr[static_cast<std::size_t>(s)] + i)];
      const auto cols = c.row_cols(i);
      const auto vals = c.row_vals(i);
      std::copy(cols.begin(), cols.end(),
                col_idx.begin() + row_ptr[static_cast<std::size_t>(orig)]);
      std::copy(vals.begin(), vals.end(),
                values.begin() + row_ptr[static_cast<std::size_t>(orig)]);
    }
  }
  return Csr(nrows, ncols, std::move(row_ptr), std::move(col_idx),
             std::move(values));
}

double ShardedPipeline::prepare_seconds() const {
  double total = 0;
  for (const auto& p : shards_) total += p->stats().preprocess_seconds();
  return total;
}

std::size_t ShardedPipeline::memory_bytes() const {
  std::size_t bytes = sizeof(ShardedPipeline);
  bytes += plan_.order().size() * sizeof(index_t) * 2;  // order + inverse
  bytes += plan_.block_ptr().size() * sizeof(index_t);
  for (const auto& p : shards_) bytes += serve::pipeline_memory_bytes(*p);
  return bytes;
}

}  // namespace cw::shard
