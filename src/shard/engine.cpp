#include "shard/engine.hpp"

#include <algorithm>
#include <exception>
#include <optional>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "fault/status.hpp"
#include "obs/sampler.hpp"

namespace cw::shard {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count() * 1e3;
}

std::string describe_error(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

}  // namespace

ShardedEngine::Metrics::Metrics(obs::MetricsRegistry& m)
    : submitted(m.counter("cw_sharded_submitted_total",
                          "Sharded requests accepted")),
      completed(m.counter("cw_sharded_completed_total",
                          "Sharded requests gathered successfully")),
      failed(m.counter("cw_sharded_failed_total",
                       "Sharded requests with >= 1 failed shard")),
      shard_multiplies(m.counter("cw_sharded_shard_multiplies_total",
                                 "Per-shard sub-multiplies scattered")),
      shard_retries(m.counter("cw_sharded_shard_retries_total",
                              "Failed shard multiplies resubmitted once")),
      shard_retry_success(
          m.counter("cw_sharded_shard_retry_success_total",
                    "Shard retries that produced the product after all")),
      latency_ms(m.histogram("cw_sharded_request_latency_ms",
                             "Sharded request latency, submit to gathered")) {}

ShardedEngine::ShardedEngine(ShardedEngineOptions opt)
    : opt_(std::move(opt)),
      start_(Clock::now()),
      metrics_(opt_.metrics ? opt_.metrics
                            : std::make_shared<obs::MetricsRegistry>()),
      events_(opt_.events ? opt_.events : std::make_shared<obs::EventLog>()),
      flight_(opt_.flight ? opt_.flight
              : opt_.flight_slow_threshold_ms > 0
                  ? std::make_shared<obs::FlightRecorder>(obs::FlightOptions{
                        opt_.flight_slow_threshold_ms})
                  : nullptr),
      tracer_(opt_.trace ? opt_.trace
              : opt_.trace_sample_rate > 0
                  ? std::make_shared<obs::TraceCollector>(obs::TraceOptions{
                        opt_.trace_sample_rate, std::size_t{1} << 16})
                  : nullptr),
      m_(*metrics_),
      errors_(*metrics_) {
  CW_CHECK_MSG(opt_.num_workers >= 1, "sharded engine: need >= 1 worker");
  CW_CHECK_MSG(opt_.gather_workers >= 1,
               "sharded engine: need >= 1 gather worker");
  serve::EngineOptions eopt;
  eopt.num_workers = opt_.num_workers;
  eopt.max_batch = opt_.max_batch;
  eopt.batch_window = opt_.batch_window;
  eopt.max_stacked_cols = opt_.max_stacked_cols;
  eopt.registry = opt_.registry;
  // One registry for the whole plane: cw_sharded_* (this layer),
  // cw_engine_* (per-shard multiplies), cw_registry_* (the cache). The
  // inner engine does NOT get its own trace sampler OR flight recorder —
  // sampled/recorded requests carry their contexts into submit_traced, so
  // per-shard spans join the parent timeline instead of founding K new
  // ones. The event log IS shared: both layers' events form one timeline.
  eopt.metrics = metrics_;
  eopt.events = events_;
  eopt.debug_stall_first = opt_.debug_stall_first;
  // Shard results are gathered in block-local order, so the inner engine
  // performs the per-shard unpermute.
  eopt.unpermute_results = true;
  eopt.omp_threads_per_worker =
      opt_.omp_threads_per_worker > 0
          ? opt_.omp_threads_per_worker
          : std::max(1, hardware_threads() / opt_.num_workers);
  shard_engine_ = std::make_unique<serve::ServeEngine>(eopt);

  gatherers_.reserve(static_cast<std::size_t>(opt_.gather_workers));
  for (int g = 0; g < opt_.gather_workers; ++g)
    gatherers_.emplace_back([this] { gather_loop_(); });
}

ShardedEngine::~ShardedEngine() { shutdown(); }

std::future<Csr> ShardedEngine::submit(
    std::shared_ptr<const ShardedPipeline> pipeline, Csr b,
    const serve::SubmitOptions& opts) {
  CW_CHECK_MSG(pipeline != nullptr, "sharded engine: null pipeline handle");
  const std::uint64_t rid =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  Request req;
  req.pipeline = std::move(pipeline);
  req.b = std::make_shared<const Csr>(std::move(b));
  if (tracer_) req.trace = tracer_->maybe_sample();
  if (flight_) req.flight = flight_->begin(rid);
  req.enqueued = Clock::now();
  req.deadline = opts.deadline_at;
  if (opts.deadline.count() > 0)
    req.deadline = std::min(req.deadline, req.enqueued + opts.deadline);
  req.slot = std::make_shared<obs::RequestSlot>(rid, req.enqueued);
  std::future<Csr> result = req.result.get_future();
  bool rejected = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      rejected = true;  // submit/stop race: resolve kCancelled, don't throw
    } else {
      live_.emplace(rid, req.slot);
      queue_.push_back(std::move(req));
      m_.submitted.inc();
    }
  }
  if (rejected) {
    const std::string msg = "sharded engine: submit after shutdown";
    if (req.slot)
      req.slot->stage.store("cancelled", std::memory_order_relaxed);
    errors_.bump(fault::ErrorCode::kCancelled);
    if (events_->enabled(obs::LogLevel::kWarn))
      events_->warn(
          "sharded-engine", "request rejected: " + msg,
          {{"request", std::to_string(rid)},
           {"code", fault::code_label(fault::ErrorCode::kCancelled)}});
    if (req.flight) flight_->complete_error(req.flight, 0.0, msg);
    if (req.trace) tracer_->commit(req.trace);
    req.result.set_exception(std::make_exception_ptr(
        fault::StatusError(fault::ErrorCode::kCancelled, msg)));
    return result;
  }
  work_cv_.notify_one();
  return result;
}

void ShardedEngine::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  // Counter reads are consistent here: every increment happens under mu_.
  idle_cv_.wait(lock, [this] {
    return queue_.empty() && in_flight_ == 0 &&
           m_.completed.value() + m_.failed.value() == m_.submitted.value();
  });
}

void ShardedEngine::shutdown() {
  drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : gatherers_) t.join();
  gatherers_.clear();
  shard_engine_->shutdown();
}

ShardedEngineStats ShardedEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ShardedEngineStats s;
  s.submitted = m_.submitted.value();
  s.completed = m_.completed.value();
  s.failed = m_.failed.value();
  s.shard_multiplies = m_.shard_multiplies.value();
  s.shard_retries = m_.shard_retries.value();
  s.shard_retry_success = m_.shard_retry_success.value();
  s.errors = errors_.snapshot();
  s.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - start_).count();
  s.throughput_rps = s.elapsed_seconds > 0
                         ? static_cast<double>(s.completed) / s.elapsed_seconds
                         : 0;
  const obs::HistogramSnapshot lat = m_.latency_ms.snapshot();
  if (lat.count > 0) {
    s.latency_p50_ms = lat.percentile(50);
    s.latency_p95_ms = lat.percentile(95);
    s.latency_p99_ms = lat.percentile(99);
    s.latency_max_ms = lat.max;
  }
  return s;
}

std::size_t ShardedEngine::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ShardedEngine::register_probes(obs::PeriodicSampler& sampler) {
  sampler.add_probe("cw_sharded_queue_depth",
                    "Sharded requests waiting for a gather worker",
                    [this] { return static_cast<double>(queue_depth()); });
  shard_engine_->register_probes(sampler);
}

serve::EngineStats ShardedEngine::shard_engine_stats() const {
  return shard_engine_->stats();
}

std::vector<obs::InFlightRequest> ShardedEngine::in_flight_requests() const {
  const Clock::time_point now = Clock::now();
  std::vector<obs::InFlightRequest> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(live_.size());
    for (const auto& [id, slot] : live_) {
      obs::InFlightRequest r;
      r.id = id;
      r.age_ms = ms_between(slot->enqueued, now);
      r.stage = slot->stage.load(std::memory_order_relaxed);
      r.shard = slot->shard;
      out.push_back(r);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const obs::InFlightRequest& a, const obs::InFlightRequest& b) {
              return a.id < b.id;
            });
  return out;
}

void ShardedEngine::register_watchdog(obs::Watchdog& watchdog) {
  obs::WatchdogTarget target;
  target.in_flight = [this] { return in_flight_requests(); };
  target.progress = [this] {
    return m_.completed.value() + m_.failed.value();
  };
  // No batch windows at the gather layer; the inner engine registers its
  // own window budget below.
  watchdog.add_target("sharded-engine", std::move(target));
  shard_engine_->register_watchdog(watchdog);
}

void ShardedEngine::dump_diagnostics(std::ostream& os) const {
  std::size_t queued = 0, inflight = 0;
  bool stopping = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queued = queue_.size();
    inflight = in_flight_;
    stopping = stopping_;
  }
  os << "{\n  \"kind\": \"sharded-engine\",\n";
  os << "  \"queue\": {\"queued\": " << queued << ", \"in_flight\": "
     << inflight << ", \"stopping\": " << (stopping ? "true" : "false")
     << "},\n";
  os << "  \"in_flight\": [";
  {
    const std::vector<obs::InFlightRequest> table = in_flight_requests();
    for (std::size_t i = 0; i < table.size(); ++i) {
      const obs::InFlightRequest& r = table[i];
      os << (i == 0 ? "\n    " : ",\n    ");
      os << "{\"id\": " << r.id << ", \"age_ms\": " << r.age_ms
         << ", \"stage\": \"" << obs::json_escape(r.stage) << "\"}";
    }
    os << (table.empty() ? "]" : "\n  ]");
  }
  os << ",\n";
  os << "  \"flight\": ";
  if (flight_ == nullptr) {
    os << "null";
  } else {
    os << "{\"completed\": " << flight_->completed() << ", \"kept\": "
       << flight_->kept() << ", \"overwritten\": " << flight_->overwritten()
       << "}";
  }
  os << ",\n";
  os << "  \"events\": ";
  events_->write_json_array(os, 64);
  os << ",\n";
  os << "  \"engine\": ";
  shard_engine_->dump_diagnostics(os);
  os << "}\n";
}

std::string ShardedEngine::dump_diagnostics() const {
  std::ostringstream os;
  dump_diagnostics(os);
  return os.str();
}

void ShardedEngine::gather_loop_() {
  for (;;) {
    Request req;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, queue fully drained
      req = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    const Clock::time_point pickup = Clock::now();

    const ShardedPipeline& sp = *req.pipeline;
    const index_t k = sp.num_shards();

    // Scatter: one sub-request per shard, all sharing one B (and, when the
    // request is instrumented, one trace and/or flight context — the inner
    // engine tags each sub-multiply's spans with its shard) AND one
    // absolute deadline. Always submit_traced: scatter sub-requests carry
    // their shard tag even untraced, so the inner engine's fault-injection
    // probes see them as "shard.multiply_k", not "engine.multiply". The
    // submit may itself fail (e.g. after an engine shutdown race); treat
    // that as a request failure, not a crash.
    std::vector<std::future<Csr>> futures;
    std::exception_ptr error;
    serve::SubmitOptions sub;
    sub.deadline_at = req.deadline;
    if (req.deadline <= pickup) {
      // Expired while waiting for a gather worker: the typed error resolves
      // without scattering a single shard multiply.
      if (req.slot)
        req.slot->stage.store("deadline", std::memory_order_relaxed);
      error = std::make_exception_ptr(fault::StatusError(
          fault::ErrorCode::kDeadlineExceeded,
          "sharded engine: deadline expired before scatter"));
    } else {
      if (req.slot)
        req.slot->stage.store("scatter", std::memory_order_relaxed);
      try {
        futures.reserve(static_cast<std::size_t>(k));
        for (index_t s = 0; s < k; ++s)
          futures.push_back(shard_engine_->submit_traced(
              sp.shard(s), req.b, req.trace, s, req.flight, sub));
      } catch (...) {
        error = std::current_exception();
      }
    }
    const Clock::time_point scatter_end = Clock::now();
    if (req.slot && req.deadline > pickup)
      req.slot->stage.store("gather", std::memory_order_relaxed);

    // Gather: wait on every launched shard even after a failure (abandoning
    // a future would discard an in-flight shard result mid-drain), keeping
    // the first error for the caller. A shard whose multiply failed with a
    // retryable code (kInternal / kIoError — an injected fault, transient
    // worker trouble) is resubmitted ONCE: the retry is a fresh submission
    // that lands on whichever worker is free, not the one that just failed.
    // Non-retryable codes (deadline, cancellation, corruption), an already
    // doomed request, or an expired deadline skip the retry.
    std::vector<std::optional<Csr>> parts(futures.size());
    std::exception_ptr first_error = error;
    for (std::size_t s = 0; s < futures.size(); ++s) {
      std::exception_ptr shard_error;
      try {
        parts[s].emplace(futures[s].get());
        continue;
      } catch (...) {
        shard_error = std::current_exception();
      }
      const fault::ErrorCode code = fault::code_of(shard_error);
      const bool in_budget = req.deadline == Clock::time_point::max() ||
                             Clock::now() < req.deadline;
      if (error || !fault::retryable_multiply(code) || !in_budget) {
        if (!first_error) first_error = shard_error;
        continue;
      }
      m_.shard_retries.inc();
      if (events_->enabled(obs::LogLevel::kWarn))
        events_->warn(
            "sharded-engine", "shard multiply failed; retrying once",
            {{"request",
              std::to_string(req.slot ? req.slot->id : std::uint64_t{0})},
             {"shard", std::to_string(s)},
             {"code", fault::code_label(code)}});
      try {
        parts[s].emplace(
            shard_engine_
                ->submit_traced(sp.shard(static_cast<index_t>(s)), req.b,
                                req.trace, static_cast<std::int64_t>(s),
                                req.flight, sub)
                .get());
        m_.shard_retry_success.inc();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }

    bool idle = false;
    std::exception_ptr final_error = first_error;
    std::optional<Csr> final_value;
    if (!final_error) {
      std::vector<Csr> results;
      results.reserve(parts.size());
      for (auto& p : parts) results.push_back(std::move(*p));
      try {
        final_value.emplace(sp.gather(results));
      } catch (...) {
        final_error = std::current_exception();
      }
    }
    const Clock::time_point done = Clock::now();
    const double ms = ms_between(req.enqueued, done);
    // Gather-stage spans: queue-wait (submit → gather worker pickup),
    // scatter (fanning out K sub-requests), gather (waiting on shard
    // futures + stitching row blocks). The per-shard multiply spans in
    // between were written by the inner engine's workers — into the same
    // contexts.
    for (const auto& ctx : {req.trace, req.flight}) {
      if (!ctx) continue;
      ctx->add("queue-wait", req.enqueued, pickup);
      ctx->add("scatter", pickup, scatter_end, "shards",
               static_cast<std::int64_t>(futures.size()));
      ctx->add("gather", scatter_end, done, "shards",
               static_cast<std::int64_t>(futures.size()));
    }
    // Flight verdict, failure event and trace commit land BEFORE the
    // in_flight_ decrement and the promise: both "drain() returned" and
    // "future.get() returned" must imply the timeline is already kept.
    if (final_error || req.flight) {
      const std::string what =
          final_error ? describe_error(final_error) : std::string();
      if (final_error && events_->enabled(obs::LogLevel::kError))
        events_->error(
            "sharded-engine", "request failed: " + what,
            {{"request",
              std::to_string(req.slot ? req.slot->id : std::uint64_t{0})},
             {"code", fault::code_label(fault::code_of(final_error))}});
      if (req.flight) {
        if (final_error)
          flight_->complete_error(req.flight, ms, what);
        else
          flight_->complete(req.flight, ms);
      }
    }
    if (req.trace) tracer_->commit(req.trace);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (final_error) {
        m_.failed.inc();
        errors_.bump(fault::code_of(final_error));
      } else {
        m_.completed.inc();
      }
      m_.shard_multiplies.inc(futures.size());
      m_.latency_ms.record(ms);
      --in_flight_;
      if (req.slot) live_.erase(req.slot->id);
      idle = queue_.empty() && in_flight_ == 0;
    }
    if (final_error)
      req.result.set_exception(final_error);
    else
      req.result.set_value(std::move(*final_value));
    if (idle) idle_cv_.notify_all();
  }
}

}  // namespace cw::shard
