#include "shard/engine.hpp"

#include <algorithm>
#include <exception>
#include <optional>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"

namespace cw::shard {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count() * 1e3;
}

}  // namespace

ShardedEngine::ShardedEngine(ShardedEngineOptions opt)
    : opt_(opt), start_(Clock::now()), latencies_(opt.latency_window) {
  CW_CHECK_MSG(opt_.num_workers >= 1, "sharded engine: need >= 1 worker");
  CW_CHECK_MSG(opt_.gather_workers >= 1,
               "sharded engine: need >= 1 gather worker");
  serve::EngineOptions eopt;
  eopt.num_workers = opt_.num_workers;
  eopt.max_batch = opt_.max_batch;
  eopt.batch_window = opt_.batch_window;
  eopt.max_stacked_cols = opt_.max_stacked_cols;
  eopt.registry = opt_.registry;
  // Shard results are gathered in block-local order, so the inner engine
  // performs the per-shard unpermute.
  eopt.unpermute_results = true;
  eopt.omp_threads_per_worker =
      opt_.omp_threads_per_worker > 0
          ? opt_.omp_threads_per_worker
          : std::max(1, hardware_threads() / opt_.num_workers);
  shard_engine_ = std::make_unique<serve::ServeEngine>(eopt);

  gatherers_.reserve(static_cast<std::size_t>(opt_.gather_workers));
  for (int g = 0; g < opt_.gather_workers; ++g)
    gatherers_.emplace_back([this] { gather_loop_(); });
}

ShardedEngine::~ShardedEngine() { shutdown(); }

std::future<Csr> ShardedEngine::submit(
    std::shared_ptr<const ShardedPipeline> pipeline, Csr b) {
  CW_CHECK_MSG(pipeline != nullptr, "sharded engine: null pipeline handle");
  Request req;
  req.pipeline = std::move(pipeline);
  req.b = std::make_shared<const Csr>(std::move(b));
  req.enqueued = Clock::now();
  std::future<Csr> result = req.result.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    CW_CHECK_MSG(!stopping_, "sharded engine: submit after shutdown");
    queue_.push_back(std::move(req));
    ++submitted_;
  }
  work_cv_.notify_one();
  return result;
}

void ShardedEngine::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    return queue_.empty() && in_flight_ == 0 &&
           completed_ + failed_ == submitted_;
  });
}

void ShardedEngine::shutdown() {
  drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : gatherers_) t.join();
  gatherers_.clear();
  shard_engine_->shutdown();
}

ShardedEngineStats ShardedEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ShardedEngineStats s;
  s.submitted = submitted_;
  s.completed = completed_;
  s.failed = failed_;
  s.shard_multiplies = shard_multiplies_;
  s.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - start_).count();
  s.throughput_rps = s.elapsed_seconds > 0
                         ? static_cast<double>(s.completed) / s.elapsed_seconds
                         : 0;
  if (latencies_.count() > 0) {
    s.latency_p50_ms = latencies_.window_percentile(50);
    s.latency_p95_ms = latencies_.window_percentile(95);
    s.latency_p99_ms = latencies_.window_percentile(99);
    s.latency_max_ms = latencies_.max_ms();
  }
  return s;
}

serve::EngineStats ShardedEngine::shard_engine_stats() const {
  return shard_engine_->stats();
}

void ShardedEngine::gather_loop_() {
  for (;;) {
    Request req;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, queue fully drained
      req = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }

    const ShardedPipeline& sp = *req.pipeline;
    const index_t k = sp.num_shards();

    // Scatter: one sub-request per shard, all sharing one B. The submit may
    // itself throw (e.g. after an engine shutdown race); treat that as a
    // request failure, not a crash.
    std::vector<std::future<Csr>> futures;
    std::exception_ptr error;
    try {
      futures.reserve(static_cast<std::size_t>(k));
      for (index_t s = 0; s < k; ++s)
        futures.push_back(shard_engine_->submit(sp.shard(s), req.b));
    } catch (...) {
      error = std::current_exception();
    }

    // Gather: wait on every launched shard even after a failure (abandoning
    // a future would discard an in-flight shard result mid-drain), keeping
    // the first error for the caller.
    std::vector<Csr> results;
    results.reserve(futures.size());
    for (auto& f : futures) {
      try {
        results.push_back(f.get());
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }

    bool idle = false;
    std::exception_ptr final_error = error;
    std::optional<Csr> final_value;
    if (!final_error) {
      try {
        final_value.emplace(sp.gather(results));
      } catch (...) {
        final_error = std::current_exception();
      }
    }
    const double ms = ms_between(req.enqueued, Clock::now());
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (final_error)
        ++failed_;
      else
        ++completed_;
      shard_multiplies_ += static_cast<std::uint64_t>(futures.size());
      latencies_.record(ms);
      --in_flight_;
      idle = queue_.empty() && in_flight_ == 0;
    }
    if (final_error)
      req.result.set_exception(final_error);
    else
      req.result.set_value(std::move(*final_value));
    if (idle) idle_cv_.notify_all();
  }
}

}  // namespace cw::shard
