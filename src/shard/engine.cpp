#include "shard/engine.hpp"

#include <algorithm>
#include <exception>
#include <optional>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "fault/status.hpp"
#include "obs/sampler.hpp"
#include "serve/paging_governor.hpp"

namespace cw::shard {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count() * 1e3;
}

std::string describe_error(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

}  // namespace

ShardedEngine::Metrics::Metrics(obs::MetricsRegistry& m)
    : submitted(m.counter("cw_sharded_submitted_total",
                          "Sharded requests accepted")),
      completed(m.counter("cw_sharded_completed_total",
                          "Sharded requests gathered successfully")),
      failed(m.counter("cw_sharded_failed_total",
                       "Sharded requests with >= 1 failed shard")),
      shard_multiplies(m.counter("cw_sharded_shard_multiplies_total",
                                 "Per-shard sub-multiplies scattered")),
      shard_retries(m.counter("cw_sharded_shard_retries_total",
                              "Failed shard multiplies resubmitted once")),
      shard_retry_success(
          m.counter("cw_sharded_shard_retry_success_total",
                    "Shard retries that produced the product after all")),
      cold_multiplies(
          m.counter("cw_shard_cold_multiplies_total",
                    "Shard multiplies scattered below the residency "
                    "threshold (paid page faults inline)")),
      latency_ms(m.histogram("cw_sharded_request_latency_ms",
                             "Sharded request latency, submit to gathered")),
      prefetch_wait_ms(
          m.histogram("cw_sharded_prefetch_wait_ms",
                      "Per-request wall time spent waiting on cold shards' "
                      "prefetch tickets before scattering them")) {}

ShardedEngine::ShardedEngine(ShardedEngineOptions opt)
    : opt_(std::move(opt)),
      start_(Clock::now()),
      metrics_(opt_.metrics ? opt_.metrics
                            : std::make_shared<obs::MetricsRegistry>()),
      events_(opt_.events ? opt_.events : std::make_shared<obs::EventLog>()),
      flight_(opt_.flight ? opt_.flight
              : opt_.flight_slow_threshold_ms > 0
                  ? std::make_shared<obs::FlightRecorder>(obs::FlightOptions{
                        opt_.flight_slow_threshold_ms})
                  : nullptr),
      tracer_(opt_.trace ? opt_.trace
              : opt_.trace_sample_rate > 0
                  ? std::make_shared<obs::TraceCollector>(obs::TraceOptions{
                        opt_.trace_sample_rate, std::size_t{1} << 16})
                  : nullptr),
      m_(*metrics_),
      errors_(*metrics_) {
  CW_CHECK_MSG(opt_.num_workers >= 1, "sharded engine: need >= 1 worker");
  CW_CHECK_MSG(opt_.gather_workers >= 1,
               "sharded engine: need >= 1 gather worker");
  serve::EngineOptions eopt;
  eopt.num_workers = opt_.num_workers;
  eopt.max_batch = opt_.max_batch;
  eopt.batch_window = opt_.batch_window;
  eopt.max_stacked_cols = opt_.max_stacked_cols;
  eopt.registry = opt_.registry;
  // One registry for the whole plane: cw_sharded_* (this layer),
  // cw_engine_* (per-shard multiplies), cw_registry_* (the cache). The
  // inner engine does NOT get its own trace sampler OR flight recorder —
  // sampled/recorded requests carry their contexts into submit_traced, so
  // per-shard spans join the parent timeline instead of founding K new
  // ones. The event log IS shared: both layers' events form one timeline.
  eopt.metrics = metrics_;
  eopt.events = events_;
  eopt.debug_stall_first = opt_.debug_stall_first;
  // Shard results are gathered in block-local order, so the inner engine
  // performs the per-shard unpermute.
  eopt.unpermute_results = true;
  eopt.omp_threads_per_worker =
      opt_.omp_threads_per_worker > 0
          ? opt_.omp_threads_per_worker
          : std::max(1, hardware_threads() / opt_.num_workers);
  shard_engine_ = std::make_unique<serve::ServeEngine>(eopt);

  // Out-of-core prefetch: a shared instance keeps its caller's lifecycle;
  // an internal one is started here and stopped by shutdown(). Its
  // cw_prefetch_* series and failure events join this engine's plane
  // unless prefetch_opt already names others.
  if (opt_.prefetcher != nullptr) {
    prefetcher_ = opt_.prefetcher;
  } else if (opt_.prefetch) {
    io::PrefetchOptions popt = opt_.prefetch_opt;
    if (popt.metrics == nullptr) popt.metrics = metrics_;
    if (popt.events == nullptr) popt.events = events_;
    prefetcher_ = std::make_shared<io::ShardPrefetcher>(std::move(popt));
    prefetcher_->start();
    owns_prefetcher_ = true;
  }

  gatherers_.reserve(static_cast<std::size_t>(opt_.gather_workers));
  for (int g = 0; g < opt_.gather_workers; ++g)
    gatherers_.emplace_back([this] { gather_loop_(); });
}

ShardedEngine::~ShardedEngine() { shutdown(); }

void ShardedEngine::release_holds_(Request& req) {
  if (!req.held) return;
  req.held = false;
  serve::PagingGovernor* governor =
      governor_.load(std::memory_order_acquire);
  if (governor == nullptr) return;
  const index_t k = req.pipeline->num_shards();
  for (index_t s = 0; s < k; ++s)
    governor->release_demand(req.pipeline->shard(s).get());
}

std::future<Csr> ShardedEngine::submit(
    std::shared_ptr<const ShardedPipeline> pipeline, Csr b,
    const serve::SubmitOptions& opts) {
  CW_CHECK_MSG(pipeline != nullptr, "sharded engine: null pipeline handle");
  const std::uint64_t rid =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  Request req;
  req.pipeline = std::move(pipeline);
  req.b = std::make_shared<const Csr>(std::move(b));
  if (tracer_) req.trace = tracer_->maybe_sample();
  if (flight_) req.flight = flight_->begin(rid);
  req.enqueued = Clock::now();
  req.deadline = opts.deadline_at;
  if (opts.deadline.count() > 0)
    req.deadline = std::min(req.deadline, req.enqueued + opts.deadline);
  req.slot = std::make_shared<obs::RequestSlot>(rid, req.enqueued);
  // Demand stream: name every shard this request will touch so cold ones
  // start streaming NOW, while the request waits for a gather worker and
  // earlier requests' resident shards multiply. An already-expired request
  // must not trigger a byte of prefetch I/O — it will resolve
  // kDeadlineExceeded without scattering. The governor hold lands BEFORE
  // the tickets: a watermark enforcement racing this submit must not evict
  // the very pages the tickets are about to stream.
  serve::PagingGovernor* governor =
      governor_.load(std::memory_order_acquire);
  if (governor != nullptr && req.deadline > req.enqueued) {
    const index_t k = req.pipeline->num_shards();
    for (index_t s = 0; s < k; ++s)
      governor->hold_demand(req.pipeline->shard(s));
    req.held = true;
  }
  if (prefetcher_ != nullptr && req.deadline > req.enqueued &&
      opt_.prefetch_lookahead == 0) {
    const index_t k = req.pipeline->num_shards();
    req.tickets.reserve(static_cast<std::size_t>(k));
    for (index_t s = 0; s < k; ++s)
      req.tickets.push_back(prefetcher_->enqueue(req.pipeline->shard(s)));
  }
  std::future<Csr> result = req.result.get_future();
  bool rejected = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      rejected = true;  // submit/stop race: resolve kCancelled, don't throw
    } else {
      live_.emplace(rid, req.slot);
      queue_.push_back(std::move(req));
      m_.submitted.inc();
    }
  }
  if (rejected) {
    release_holds_(req);
    const std::string msg = "sharded engine: submit after shutdown";
    if (req.slot)
      req.slot->stage.store("cancelled", std::memory_order_relaxed);
    errors_.bump(fault::ErrorCode::kCancelled);
    if (events_->enabled(obs::LogLevel::kWarn))
      events_->warn(
          "sharded-engine", "request rejected: " + msg,
          {{"request", std::to_string(rid)},
           {"code", fault::code_label(fault::ErrorCode::kCancelled)}});
    if (req.flight) flight_->complete_error(req.flight, 0.0, msg);
    if (req.trace) tracer_->commit(req.trace);
    req.result.set_exception(std::make_exception_ptr(
        fault::StatusError(fault::ErrorCode::kCancelled, msg)));
    return result;
  }
  work_cv_.notify_one();
  return result;
}

void ShardedEngine::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  // Counter reads are consistent here: every increment happens under mu_.
  idle_cv_.wait(lock, [this] {
    return queue_.empty() && in_flight_ == 0 &&
           m_.completed.value() + m_.failed.value() == m_.submitted.value();
  });
}

void ShardedEngine::shutdown() {
  drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : gatherers_) t.join();
  gatherers_.clear();
  shard_engine_->shutdown();
  // The internal prefetcher dies with the engine: pending tickets resolve
  // kSkipped (nobody is left to wait on them) and the workers join. A
  // shared prefetcher is the caller's to stop.
  if (owns_prefetcher_ && prefetcher_ != nullptr) prefetcher_->stop();
}

ShardedEngineStats ShardedEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ShardedEngineStats s;
  s.submitted = m_.submitted.value();
  s.completed = m_.completed.value();
  s.failed = m_.failed.value();
  s.shard_multiplies = m_.shard_multiplies.value();
  s.shard_retries = m_.shard_retries.value();
  s.shard_retry_success = m_.shard_retry_success.value();
  s.cold_multiplies = m_.cold_multiplies.value();
  s.errors = errors_.snapshot();
  s.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - start_).count();
  s.throughput_rps = s.elapsed_seconds > 0
                         ? static_cast<double>(s.completed) / s.elapsed_seconds
                         : 0;
  const obs::HistogramSnapshot lat = m_.latency_ms.snapshot();
  if (lat.count > 0) {
    s.latency_p50_ms = lat.percentile(50);
    s.latency_p95_ms = lat.percentile(95);
    s.latency_p99_ms = lat.percentile(99);
    s.latency_max_ms = lat.max;
  }
  return s;
}

std::size_t ShardedEngine::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ShardedEngine::register_probes(obs::PeriodicSampler& sampler) {
  sampler.add_probe("cw_sharded_queue_depth",
                    "Sharded requests waiting for a gather worker",
                    [this] { return static_cast<double>(queue_depth()); });
  if (prefetcher_ != nullptr) prefetcher_->register_probes(sampler);
  shard_engine_->register_probes(sampler);
}

serve::EngineStats ShardedEngine::shard_engine_stats() const {
  return shard_engine_->stats();
}

std::vector<obs::InFlightRequest> ShardedEngine::in_flight_requests() const {
  const Clock::time_point now = Clock::now();
  std::vector<obs::InFlightRequest> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(live_.size());
    for (const auto& [id, slot] : live_) {
      obs::InFlightRequest r;
      r.id = id;
      r.age_ms = ms_between(slot->enqueued, now);
      r.stage = slot->stage.load(std::memory_order_relaxed);
      r.shard = slot->shard;
      out.push_back(r);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const obs::InFlightRequest& a, const obs::InFlightRequest& b) {
              return a.id < b.id;
            });
  return out;
}

void ShardedEngine::register_watchdog(obs::Watchdog& watchdog) {
  obs::WatchdogTarget target;
  target.in_flight = [this] { return in_flight_requests(); };
  target.progress = [this] {
    return m_.completed.value() + m_.failed.value();
  };
  // No batch windows at the gather layer; the inner engine registers its
  // own window budget below.
  watchdog.add_target("sharded-engine", std::move(target));
  shard_engine_->register_watchdog(watchdog);
}

void ShardedEngine::dump_diagnostics(std::ostream& os) const {
  std::size_t queued = 0, inflight = 0;
  bool stopping = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queued = queue_.size();
    inflight = in_flight_;
    stopping = stopping_;
  }
  os << "{\n  \"kind\": \"sharded-engine\",\n";
  os << "  \"queue\": {\"queued\": " << queued << ", \"in_flight\": "
     << inflight << ", \"stopping\": " << (stopping ? "true" : "false")
     << "},\n";
  os << "  \"in_flight\": [";
  {
    const std::vector<obs::InFlightRequest> table = in_flight_requests();
    for (std::size_t i = 0; i < table.size(); ++i) {
      const obs::InFlightRequest& r = table[i];
      os << (i == 0 ? "\n    " : ",\n    ");
      os << "{\"id\": " << r.id << ", \"age_ms\": " << r.age_ms
         << ", \"stage\": \"" << obs::json_escape(r.stage) << "\"}";
    }
    os << (table.empty() ? "]" : "\n  ]");
  }
  os << ",\n";
  os << "  \"flight\": ";
  if (flight_ == nullptr) {
    os << "null";
  } else {
    os << "{\"completed\": " << flight_->completed() << ", \"kept\": "
       << flight_->kept() << ", \"overwritten\": " << flight_->overwritten()
       << "}";
  }
  os << ",\n";
  os << "  \"events\": ";
  events_->write_json_array(os, 64);
  os << ",\n";
  os << "  \"engine\": ";
  shard_engine_->dump_diagnostics(os);
  os << "}\n";
}

std::string ShardedEngine::dump_diagnostics() const {
  std::ostringstream os;
  dump_diagnostics(os);
  return os.str();
}

void ShardedEngine::gather_loop_() {
  for (;;) {
    Request req;
    std::vector<std::shared_ptr<const ShardedPipeline>> prime;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, queue fully drained
      req = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
      // Dispatch-primed streaming: this dispatch IS the consumption signal
      // the stream pipeline paces itself by — prime the next L queued
      // requests (skipping already-primed and expired ones) so stream-ahead
      // never exceeds L pipelines no matter how deep the backlog. The
      // actual enqueues happen after the lock drops; only the window
      // bookkeeping needs mu_.
      if (prefetcher_ != nullptr && opt_.prefetch_lookahead > 0) {
        const Clock::time_point now = Clock::now();
        // A dispatch nobody primed (the first of a burst) streams ITSELF
        // first: one WILLNEED advise opens the kernel's readahead at full
        // window immediately, where the scatter's demand faults would pay
        // the per-mapping ramp. It goes ahead of the successors in the
        // stream queue — its bytes are the ones needed NOW.
        if (!req.primed && req.deadline > now) prime.push_back(req.pipeline);
        std::size_t window = 0;
        for (Request& next : queue_) {
          if (window == opt_.prefetch_lookahead) break;
          if (next.primed) {  // still occupies its slot until dispatched
            ++window;
            continue;
          }
          if (next.deadline <= now) continue;  // expired: not a byte of I/O
          next.primed = true;
          prime.push_back(next.pipeline);
          ++window;
        }
      }
    }
    for (const auto& ahead : prime) {
      const index_t ka = ahead->num_shards();
      for (index_t s = 0; s < ka; ++s) prefetcher_->enqueue(ahead->shard(s));
    }
    const Clock::time_point pickup = Clock::now();

    const ShardedPipeline& sp = *req.pipeline;
    const index_t k = sp.num_shards();

    // Scatter: one sub-request per shard, all sharing one B (and, when the
    // request is instrumented, one trace and/or flight context — the inner
    // engine tags each sub-multiply's spans with its shard) AND one
    // absolute deadline. Always submit_traced: scatter sub-requests carry
    // their shard tag even untraced, so the inner engine's fault-injection
    // probes see them as "shard.multiply_k", not "engine.multiply". The
    // submit may itself fail (e.g. after an engine shutdown race); treat
    // that as a request failure, not a crash.
    //
    // Residency-aware order: warm shards are submitted first and multiply
    // immediately; cold ones go last, each given a bounded chance to
    // finish streaming (its prefetch ticket) before it is scattered to
    // fault inline. gather() stitches by shard index, so any submission
    // order is bit-identical to the fixed 0..K-1 scatter.
    std::vector<std::future<Csr>> futures;
    std::vector<index_t> scatter_order;
    std::exception_ptr error;
    serve::SubmitOptions sub;
    sub.deadline_at = req.deadline;
    Clock::time_point prefetch_wait_begin{};
    Clock::time_point prefetch_wait_end{};
    std::uint64_t cold_scattered = 0;
    if (req.deadline <= pickup) {
      // Expired while waiting for a gather worker: the typed error resolves
      // without scattering a single shard multiply — and without waiting a
      // microsecond on (or issuing) any prefetch.
      if (req.slot)
        req.slot->stage.store("deadline", std::memory_order_relaxed);
      error = std::make_exception_ptr(fault::StatusError(
          fault::ErrorCode::kDeadlineExceeded,
          "sharded engine: deadline expired before scatter"));
    } else {
      if (req.slot)
        req.slot->stage.store("scatter", std::memory_order_relaxed);
      try {
        scatter_order.resize(static_cast<std::size_t>(k));
        for (index_t s = 0; s < k; ++s)
          scatter_order[static_cast<std::size_t>(s)] = s;
        // One mincore walk per shard: fraction of its mapped bytes in RAM
        // right now (owned-only shards count as fully resident). Probed in
        // BOTH orders so cw_shard_cold_multiplies stays honest with the
        // reorder off.
        std::vector<double> resident_frac;
        if (k > 1) {
          resident_frac.resize(static_cast<std::size_t>(k), 1.0);
          for (index_t s = 0; s < k; ++s) {
            const PipelineResidency res = sp.shard(s)->residency();
            if (res.mapped_bytes > 0)
              resident_frac[static_cast<std::size_t>(s)] =
                  static_cast<double>(res.resident_mapped_bytes) /
                  static_cast<double>(res.mapped_bytes);
          }
        }
        if (opt_.residency_order && k > 1) {
          // stable: equal-residency shards keep index order, so the fully
          // resident (or fully cold) case degenerates to the fixed order.
          std::stable_sort(scatter_order.begin(), scatter_order.end(),
                           [&resident_frac](index_t a, index_t b) {
                             return resident_frac[static_cast<std::size_t>(
                                        a)] >
                                    resident_frac[static_cast<std::size_t>(b)];
                           });
        }
        futures.reserve(static_cast<std::size_t>(k));
        for (index_t pos = 0; pos < k; ++pos) {
          const index_t s = scatter_order[static_cast<std::size_t>(pos)];
          bool cold =
              !resident_frac.empty() &&
              resident_frac[static_cast<std::size_t>(s)] < opt_.cold_fraction;
          const std::shared_ptr<io::ShardPrefetcher::Ticket>* ticket =
              static_cast<std::size_t>(s) < req.tickets.size()
                  ? &req.tickets[static_cast<std::size_t>(s)]
                  : nullptr;
          if (cold && pos > 0 && ticket != nullptr && *ticket != nullptr &&
              !(*ticket)->terminal() &&
              opt_.max_prefetch_wait.count() > 0) {
            // Bounded prefetch-wait: the shards scattered ahead of this one
            // are already multiplying, so the wait runs concurrently with
            // their compute. The FIRST scattered shard never waits — with
            // nothing in the shard workers' queue the wait would idle them,
            // and inline faulting overlaps the stream anyway. Capped by the
            // request deadline — and by max_prefetch_wait, past which
            // inline faulting beats waiting.
            const Clock::time_point wait_begin = Clock::now();
            Clock::time_point wait_deadline =
                wait_begin + opt_.max_prefetch_wait;
            if (req.deadline < wait_deadline) wait_deadline = req.deadline;
            if (prefetch_wait_begin == Clock::time_point{})
              prefetch_wait_begin = wait_begin;
            (*ticket)->wait_until(wait_deadline);
            prefetch_wait_end = Clock::now();
            // Re-probe after the wait: mincore, not the ticket, is the
            // truth about what the multiply is about to find (a fire-and-
            // forget ticket resolves when the I/O is ISSUED, not landed).
            const PipelineResidency res = sp.shard(s)->residency();
            if (res.mapped_bytes > 0)
              cold = static_cast<double>(res.resident_mapped_bytes) <
                     opt_.cold_fraction * static_cast<double>(res.mapped_bytes);
          }
          // Still cold at submission (no stream, or it has not landed):
          // this multiply pays its faults inline — exactly the event
          // cw_shard_cold_multiplies counts.
          if (cold) {
            m_.cold_multiplies.inc();
            ++cold_scattered;
          }
          futures.push_back(shard_engine_->submit_traced(
              sp.shard(s), req.b, req.trace, s, req.flight, sub));
        }
      } catch (...) {
        error = std::current_exception();
      }
    }
    req.tickets.clear();  // drop ticket refs; coalesced waiters keep theirs
    const Clock::time_point scatter_end = Clock::now();
    if (req.slot && req.deadline > pickup)
      req.slot->stage.store("gather", std::memory_order_relaxed);

    // Gather: wait on every launched shard even after a failure (abandoning
    // a future would discard an in-flight shard result mid-drain), keeping
    // the first error for the caller. A shard whose multiply failed with a
    // retryable code (kInternal / kIoError — an injected fault, transient
    // worker trouble) is resubmitted ONCE: the retry is a fresh submission
    // that lands on whichever worker is free, not the one that just failed.
    // Non-retryable codes (deadline, cancellation, corruption), an already
    // doomed request, or an expired deadline skip the retry.
    // parts is indexed by SHARD id while futures follows the scatter
    // order — the mapping through scatter_order is what keeps a
    // residency-reordered fan-out bit-identical at gather().
    std::vector<std::optional<Csr>> parts(static_cast<std::size_t>(k));
    std::exception_ptr first_error = error;
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const index_t s = scatter_order[i];
      std::exception_ptr shard_error;
      try {
        parts[static_cast<std::size_t>(s)].emplace(futures[i].get());
        continue;
      } catch (...) {
        shard_error = std::current_exception();
      }
      const fault::ErrorCode code = fault::code_of(shard_error);
      const bool in_budget = req.deadline == Clock::time_point::max() ||
                             Clock::now() < req.deadline;
      if (error || !fault::retryable_multiply(code) || !in_budget) {
        if (!first_error) first_error = shard_error;
        continue;
      }
      m_.shard_retries.inc();
      if (events_->enabled(obs::LogLevel::kWarn))
        events_->warn(
            "sharded-engine", "shard multiply failed; retrying once",
            {{"request",
              std::to_string(req.slot ? req.slot->id : std::uint64_t{0})},
             {"shard", std::to_string(s)},
             {"code", fault::code_label(code)}});
      try {
        parts[static_cast<std::size_t>(s)].emplace(
            shard_engine_
                ->submit_traced(sp.shard(s), req.b, req.trace,
                                static_cast<std::int64_t>(s), req.flight, sub)
                .get());
        m_.shard_retry_success.inc();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }

    // Every shard future is resolved: the multiplies are done reading the
    // mapped arrays, so the queued-demand holds come off — from here the
    // governor may evict this request's shards to make room for the next.
    release_holds_(req);

    bool idle = false;
    std::exception_ptr final_error = first_error;
    std::optional<Csr> final_value;
    if (!final_error) {
      std::vector<Csr> results;
      results.reserve(parts.size());
      for (auto& p : parts) results.push_back(std::move(*p));
      try {
        final_value.emplace(sp.gather(results));
      } catch (...) {
        final_error = std::current_exception();
      }
    }
    const Clock::time_point done = Clock::now();
    const double ms = ms_between(req.enqueued, done);
    // Gather-stage spans: queue-wait (submit → gather worker pickup),
    // scatter (fanning out K sub-requests), gather (waiting on shard
    // futures + stitching row blocks). The per-shard multiply spans in
    // between were written by the inner engine's workers — into the same
    // contexts.
    const bool prefetch_waited =
        prefetch_wait_begin != Clock::time_point{};
    for (const auto& ctx : {req.trace, req.flight}) {
      if (!ctx) continue;
      ctx->add("queue-wait", req.enqueued, pickup);
      // prefetch-wait nests inside scatter: the wall time this pickup
      // spent parked on cold shards' tickets (while already-submitted warm
      // shards multiplied) — the paging-stall signal the runbook reads.
      if (prefetch_waited)
        ctx->add("prefetch-wait", prefetch_wait_begin, prefetch_wait_end,
                 "cold_shards", static_cast<std::int64_t>(cold_scattered));
      ctx->add("scatter", pickup, scatter_end, "shards",
               static_cast<std::int64_t>(futures.size()));
      ctx->add("gather", scatter_end, done, "shards",
               static_cast<std::int64_t>(futures.size()));
    }
    if (prefetch_waited)
      m_.prefetch_wait_ms.record(
          ms_between(prefetch_wait_begin, prefetch_wait_end));
    // Flight verdict, failure event and trace commit land BEFORE the
    // in_flight_ decrement and the promise: both "drain() returned" and
    // "future.get() returned" must imply the timeline is already kept.
    if (final_error || req.flight) {
      const std::string what =
          final_error ? describe_error(final_error) : std::string();
      if (final_error && events_->enabled(obs::LogLevel::kError))
        events_->error(
            "sharded-engine", "request failed: " + what,
            {{"request",
              std::to_string(req.slot ? req.slot->id : std::uint64_t{0})},
             {"code", fault::code_label(fault::code_of(final_error))}});
      if (req.flight) {
        if (final_error)
          flight_->complete_error(req.flight, ms, what);
        else
          flight_->complete(req.flight, ms);
      }
    }
    if (req.trace) tracer_->commit(req.trace);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (final_error) {
        m_.failed.inc();
        errors_.bump(fault::code_of(final_error));
      } else {
        m_.completed.inc();
      }
      m_.shard_multiplies.inc(futures.size());
      m_.latency_ms.record(ms);
      --in_flight_;
      if (req.slot) live_.erase(req.slot->id);
      idle = queue_.empty() && in_flight_ == 0;
    }
    if (final_error)
      req.result.set_exception(final_error);
    else
      req.result.set_value(std::move(*final_value));
    if (idle) idle_cv_.notify_all();
  }
}

}  // namespace cw::shard
