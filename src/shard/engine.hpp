// Scatter/gather multiply engine for sharded pipelines.
//
// A request (sharded pipeline, B) fans out into one sub-request per shard
// against an inner ServeEngine: every shard worker runs a clusterwise
// multiply of its row block against the *shared* B (shards never relabel
// columns, so B is scattered by reference, not copied). A small pool of
// gather workers waits on the K shard futures, stitches the row-block
// products back into original row order, and fulfils the request's future.
//
// Thread budget: shard workers × wide kernels would oversubscribe the
// machine, so the inner engine gets a per-worker OpenMP cap
// (EngineOptions::omp_threads_per_worker) — by default the hardware threads
// divided evenly among the shard workers.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fault/counters.hpp"
#include "fault/status.hpp"
#include "io/prefetcher.hpp"
#include "serve/engine.hpp"
#include "shard/sharded_pipeline.hpp"

namespace cw::serve {
class PagingGovernor;
}  // namespace cw::serve

namespace cw::shard {

struct ShardedEngineOptions {
  /// Shard-multiply workers of the inner ServeEngine.
  int num_workers = 4;
  /// Concurrent sharded requests in flight (each occupies one gather worker
  /// while its shard fan-out completes).
  int gather_workers = 2;
  /// OpenMP thread cap per shard worker; 0 = hardware threads divided
  /// evenly among the shard workers (never below 1).
  int omp_threads_per_worker = 0;
  /// Max shard sub-requests coalesced per worker pickup (the inner engine
  /// groups them by shard pipeline).
  index_t max_batch = 8;
  /// Second-level batching latency budget, forwarded to the inner engine
  /// (serve::EngineOptions::batch_window): sub-requests of *different*
  /// sharded requests that hit the same shard inside the window are
  /// column-stacked into one fused multiply per shard — stacking composes
  /// with scatter/gather, and results stay bit-identical. 0 = disabled.
  std::chrono::microseconds batch_window{0};
  /// Stacked-column cap per fused shard multiply (see
  /// serve::EngineOptions::max_stacked_cols). 0 = unlimited.
  index_t max_stacked_cols = 0;
  /// Metrics registry backing the cw_sharded_* series; forwarded to the
  /// inner engine (cw_engine_*, cw_registry_*) so one scrape covers the
  /// whole plane. Null = a private registry, reachable via metrics().
  std::shared_ptr<obs::MetricsRegistry> metrics;
  /// Fraction of *sharded* requests traced. The inner engine never samples
  /// on its own here — per-shard multiply spans land inside the sampled
  /// parent request's timeline (one timeline per request, not K+1). Ignored
  /// when `trace` is supplied.
  double trace_sample_rate = 0;
  /// Trace collector for sampled requests. Null with a non-zero sample
  /// rate = the engine creates its own, reachable via tracer().
  std::shared_ptr<obs::TraceCollector> trace;
  /// Structured event log, shared with the inner engine (and its registry)
  /// so gather failures, sheds, evictions and watchdog trips form ONE
  /// timeline. Null = the engine creates a private log (events()).
  std::shared_ptr<obs::EventLog> events;
  /// Flight recorder for tail-sampled capture of SHARDED requests: the
  /// per-shard sub-multiply spans join the parent request's single flight
  /// timeline (the inner engine renders no verdict of its own). Null with
  /// flight_slow_threshold_ms == 0 = off.
  std::shared_ptr<obs::FlightRecorder> flight;
  /// Convenience: > 0 with `flight` null makes the engine create its own
  /// recorder with this slow threshold, reachable via flight().
  double flight_slow_threshold_ms = 0;
  /// TEST HOOK, forwarded to the inner engine: the first shard pickup
  /// stalls this long in stage "multiply" (see
  /// serve::EngineOptions::debug_stall_first).
  std::chrono::milliseconds debug_stall_first{0};
  /// Embedded per-shard pipeline registry, forwarded to the inner engine
  /// (serve::EngineOptions::registry): capacity 0 = none. Shards are
  /// registry-sized pieces by design (shard/sharded_pipeline.hpp), so
  /// admission, prefault-on-admit and the mlock budget apply per shard.
  serve::RegistryOptions registry = {};
  /// Out-of-core serving: create an internal prefetcher (io/prefetcher.hpp,
  /// configured by prefetch_opt) that streams cold shards' pages in the
  /// background while resident shards multiply. Every submit feeds it the
  /// request's non-resident shards as demand (never for an already-expired
  /// request). The engine owns the internal instance: shutdown() cancels
  /// its pending tickets and joins its workers.
  bool prefetch = false;
  io::PrefetchOptions prefetch_opt = {};
  /// Alternatively share an external prefetcher (e.g. one governed
  /// instance across engines). Takes precedence over `prefetch`; its
  /// lifecycle stays with the caller.
  std::shared_ptr<io::ShardPrefetcher> prefetcher;
  /// Order each request's scatter by current shard residency: resident
  /// shards are submitted (and multiply) first while cold ones stream in
  /// behind them. Bit-identical to the fixed 0..K-1 order — gather
  /// stitches by shard index, not completion order. The pickup pays one
  /// mincore walk over the request's mapped shards.
  bool residency_order = true;
  /// A shard whose mapped bytes are less than this fraction resident
  /// counts as cold (cw_shard_cold_multiplies, prefetch waits).
  double cold_fraction = 0.9;
  /// Longest a pickup waits for ONE cold shard's prefetch ticket before
  /// scattering it anyway (inline faulting); also capped by the request
  /// deadline. 0 = never wait — cold shards scatter immediately and the
  /// prefetch races the inner queue.
  std::chrono::milliseconds max_prefetch_wait{250};
  /// Stream-ahead flow control. 0 = every request's shards are fed to the
  /// prefetcher at submit — fine for shallow queues, but a deep backlog
  /// floods the stream pipeline with a whole queue's demand at once and
  /// the paging governor evicts the early streams before their requests
  /// run (cyclic-scan thrash: every shard streamed, none warm at use).
  /// L > 0 = dispatch-primed: each request DISPATCH primes the next L
  /// still-queued requests' shards, so the dispatch itself is the
  /// consumption signal the streams pace themselves by and stream-ahead
  /// never exceeds L pipelines regardless of queue depth. Size L so L
  /// pipelines fit the residency budget beside the active request.
  std::size_t prefetch_lookahead = 0;
};

/// Point-in-time view over the registry-backed cw_sharded_* metrics.
struct ShardedEngineStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;  // requests with at least one failed shard
  std::uint64_t shard_multiplies = 0;
  /// Failed per-shard multiplies resubmitted once to a fresh worker
  /// (retryable codes only), and how many of those retries produced the
  /// shard's product after all.
  std::uint64_t shard_retries = 0;
  std::uint64_t shard_retry_success = 0;
  /// Shard multiplies scattered while their shard was below the
  /// cold_fraction residency threshold — each one paid page faults inline
  /// (the number the prefetcher exists to drive to zero).
  std::uint64_t cold_multiplies = 0;
  /// Failures by fault-taxonomy code at THIS layer (one entry per sharded
  /// request, by its final error), indexed by fault::ErrorCode.
  std::array<std::uint64_t, fault::kNumErrorCodes> errors{};
  double elapsed_seconds = 0;
  double throughput_rps = 0;
  /// End-to-end request latency (submit → gathered) percentiles from the
  /// full-run histogram; max is the exact lifetime maximum.
  double latency_p50_ms = 0;
  double latency_p95_ms = 0;
  double latency_p99_ms = 0;
  double latency_max_ms = 0;
};

class ShardedEngine {
 public:
  explicit ShardedEngine(ShardedEngineOptions opt = {});
  ~ShardedEngine();  // drains the queue, then joins all workers

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Enqueue C = A×B against the sharded `pipeline`. B's rows are in A's
  /// original column space; the future yields C with rows in the original
  /// row order, or rethrows the first failed shard's exception (a
  /// fault::StatusError for engine-originated failures). An `opts` deadline
  /// is shared by all K per-shard sub-requests — one absolute clock, not K
  /// restarted budgets; an expired request resolves kDeadlineExceeded
  /// without scattering a single shard multiply.
  std::future<Csr> submit(std::shared_ptr<const ShardedPipeline> pipeline,
                          Csr b, const serve::SubmitOptions& opts = {});

  /// Block until every submitted request has been gathered.
  void drain();

  /// drain(), then stop and join. Further submits resolve kCancelled
  /// instead of throwing. Idempotent.
  void shutdown();

  [[nodiscard]] ShardedEngineStats stats() const;

  /// Inner shard-multiply engine counters (batching, coalescing, stacking…).
  [[nodiscard]] serve::EngineStats shard_engine_stats() const;

  /// The inner engine's embedded registry (null when
  /// ShardedEngineOptions::registry is disabled).
  [[nodiscard]] serve::PipelineRegistry* registry() const {
    return shard_engine_->registry();
  }

  /// Admit every shard of `sp` into the embedded registry (admission,
  /// prefault and mlock applied per shard). Returns how many shards were
  /// newly cached; 0 without a registry.
  index_t admit(const ShardedPipeline& sp) {
    return registry() != nullptr ? sp.admit(*registry()) : 0;
  }

  /// Force the inner engine's open batch windows to flush immediately —
  /// deterministic-test hook (see serve::ServeEngine::close_batch_windows).
  void close_batch_windows() { shard_engine_->close_batch_windows(); }

  /// The shard prefetcher (internal or shared), or null when out-of-core
  /// prefetch is off.
  [[nodiscard]] const std::shared_ptr<io::ShardPrefetcher>& prefetcher() const {
    return prefetcher_;
  }

  /// Attach a paging governor: from then on every accepted request takes a
  /// standing demand-hold on its shards (serve::PagingGovernor::hold_demand)
  /// at submit and drops it when the request resolves, so the governor's
  /// watermark enforcement never evicts pages a queued request is about to
  /// multiply out of. The governor must outlive the engine (or be detached
  /// with nullptr after shutdown()); null = no holds (the default).
  void set_governor(serve::PagingGovernor* governor) {
    governor_.store(governor, std::memory_order_release);
  }

  /// The metrics registry backing the cw_sharded_* series (shared with the
  /// inner engine's cw_engine_* / cw_registry_* series).
  [[nodiscard]] const std::shared_ptr<obs::MetricsRegistry>& metrics() const {
    return metrics_;
  }

  /// The trace collector, or null when tracing is off.
  [[nodiscard]] const std::shared_ptr<obs::TraceCollector>& tracer() const {
    return tracer_;
  }

  /// Sharded requests waiting for a gather worker.
  [[nodiscard]] std::size_t queue_depth() const;

  /// The structured event log shared across the sharded plane. Never null.
  [[nodiscard]] const std::shared_ptr<obs::EventLog>& events() const {
    return events_;
  }

  /// The flight recorder, or null when tail-sampled capture is off.
  [[nodiscard]] const std::shared_ptr<obs::FlightRecorder>& flight() const {
    return flight_;
  }

  /// Snapshot of in-flight SHARDED requests (queued / scatter / gather),
  /// sorted by id. The inner engine's per-shard sub-requests have their own
  /// table (see ServeEngine::in_flight_requests()).
  [[nodiscard]] std::vector<obs::InFlightRequest> in_flight_requests() const;

  /// Register both layers with the watchdog: this engine as target
  /// "sharded-engine" (gather progress, no windows) and the inner engine as
  /// target "engine" (shard sub-requests, batch windows).
  void register_watchdog(obs::Watchdog& watchdog);

  /// One JSON diagnostic document for the whole sharded plane; the inner
  /// engine's dump (queue, per-shard in-flight table, registry residency,
  /// metrics) is nested under "engine".
  void dump_diagnostics(std::ostream& os) const;
  [[nodiscard]] std::string dump_diagnostics() const;

  /// Register this engine's level probes (gather queue depth plus the inner
  /// engine's and registry's probes) with a background sampler. Stop the
  /// sampler before destroying the engine.
  void register_probes(obs::PeriodicSampler& sampler);

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    std::shared_ptr<const ShardedPipeline> pipeline;
    std::shared_ptr<const Csr> b;
    std::promise<Csr> result;
    Clock::time_point enqueued;
    /// Absolute deadline shared by all K sub-requests; max() = none.
    Clock::time_point deadline = Clock::time_point::max();
    /// Sampled request's timeline; per-shard sub-multiply spans land here
    /// too (via ServeEngine::submit_traced). Committed by the gatherer.
    std::shared_ptr<obs::TraceContext> trace;
    /// Flight-recorder context (every request when the recorder is on);
    /// per-shard spans join it the same way. Verdict at gather completion.
    std::shared_ptr<obs::TraceContext> flight;
    /// Live watchdog bookkeeping (stage: queued → scatter → gather).
    std::shared_ptr<obs::RequestSlot> slot;
    /// Prefetch tickets, aligned with shard index (empty when prefetch is
    /// off or the request arrived expired). The scatter loop waits —
    /// bounded — on a cold shard's ticket before submitting it.
    std::vector<std::shared_ptr<io::ShardPrefetcher::Ticket>> tickets;
    /// This request holds its shards in the governor's demand set (dropped
    /// by the gatherer when the request resolves).
    bool held = false;
    /// Under dispatch-primed streaming (prefetch_lookahead > 0): a
    /// predecessor's dispatch already fed this request's shards to the
    /// prefetcher while it sat in the queue.
    bool primed = false;
  };

  void gather_loop_();
  /// Drop the request's standing demand-holds (no-op when it took none).
  void release_holds_(Request& req);

  /// The cw_sharded_* instruments, interned once at construction.
  struct Metrics {
    explicit Metrics(obs::MetricsRegistry& m);
    obs::Counter& submitted;
    obs::Counter& completed;
    obs::Counter& failed;
    obs::Counter& shard_multiplies;
    obs::Counter& shard_retries;
    obs::Counter& shard_retry_success;
    obs::Counter& cold_multiplies;
    obs::Histogram& latency_ms;
    obs::Histogram& prefetch_wait_ms;
  };

  const ShardedEngineOptions opt_;
  const Clock::time_point start_;
  const std::shared_ptr<obs::MetricsRegistry> metrics_;
  const std::shared_ptr<obs::EventLog> events_;  // never null
  const std::shared_ptr<obs::FlightRecorder> flight_;  // null = capture off
  const std::shared_ptr<obs::TraceCollector> tracer_;  // null = tracing off
  Metrics m_;  // binds into *metrics_: keep declared after it
  fault::ErrorCounters errors_;  // cw_errors_total{code=...}, shared series
  std::unique_ptr<serve::ServeEngine> shard_engine_;
  std::shared_ptr<io::ShardPrefetcher> prefetcher_;  // null = prefetch off
  bool owns_prefetcher_ = false;  // internal instance: stopped by shutdown()
  std::atomic<serve::PagingGovernor*> governor_{nullptr};  // null = no holds

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<Request> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  /// In-flight table of sharded requests, keyed by request id.
  std::unordered_map<std::uint64_t, std::shared_ptr<obs::RequestSlot>> live_;
  std::atomic<std::uint64_t> next_request_id_{0};

  std::vector<std::thread> gatherers_;
};

}  // namespace cw::shard
