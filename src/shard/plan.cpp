#include "shard/plan.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "partition/partition.hpp"
#include "reorder/reorder.hpp"

namespace cw::shard {

const char* to_string(SplitStrategy strategy) {
  switch (strategy) {
    case SplitStrategy::kNaive: return "naive";
    case SplitStrategy::kBalanced: return "balanced";
    case SplitStrategy::kLocality: return "locality";
  }
  return "?";
}

namespace {

std::vector<index_t> naive_cuts(index_t nrows, index_t k) {
  std::vector<index_t> ptr(static_cast<std::size_t>(k) + 1);
  for (index_t s = 0; s <= k; ++s)
    ptr[static_cast<std::size_t>(s)] = static_cast<index_t>(
        static_cast<std::int64_t>(s) * nrows / k);
  return ptr;
}

/// Blocks needed to pack `work` into contiguous chunks of sum <= cap
/// (infinite if any single element exceeds cap — callers choose cap >= max).
index_t blocks_needed(const std::vector<offset_t>& work, offset_t cap) {
  index_t blocks = 1;
  offset_t acc = 0;
  for (const offset_t x : work) {
    if (acc + x > cap) {
      ++blocks;
      acc = 0;
    }
    acc += x;
  }
  return blocks;
}

/// Optimal contiguous bottleneck partition (chains-on-chains): binary search
/// the smallest cap for which greedy packing needs <= k blocks, then cut.
std::vector<index_t> balanced_cuts(const std::vector<offset_t>& work,
                                   index_t k) {
  const index_t n = static_cast<index_t>(work.size());
  const offset_t total = std::accumulate(work.begin(), work.end(), offset_t{0});
  if (total == 0) return naive_cuts(n, k);
  offset_t lo = std::max<offset_t>((total + k - 1) / k,
                                   *std::max_element(work.begin(), work.end()));
  offset_t hi = total;
  while (lo < hi) {
    const offset_t mid = lo + (hi - lo) / 2;
    if (blocks_needed(work, mid) <= k)
      hi = mid;
    else
      lo = mid + 1;
  }
  std::vector<index_t> ptr;
  ptr.reserve(static_cast<std::size_t>(k) + 1);
  ptr.push_back(0);
  offset_t acc = 0;
  for (index_t r = 0; r < n; ++r) {
    if (acc + work[static_cast<std::size_t>(r)] > lo) {
      ptr.push_back(r);
      acc = 0;
    }
    acc += work[static_cast<std::size_t>(r)];
  }
  // Greedy may use fewer than k blocks; the surplus trails empty.
  while (static_cast<index_t>(ptr.size()) <= k) ptr.push_back(n);
  return ptr;
}

}  // namespace

RowBlockPlan RowBlockPlan::build(const Csr& a, const PlanOptions& opt) {
  CW_CHECK_MSG(opt.num_shards >= 1, "shard plan: need at least one shard");
  const index_t k = opt.num_shards;

  RowBlockPlan plan;
  plan.nrows_ = a.nrows();
  plan.ncols_ = a.ncols();
  plan.nnz_ = a.nnz();
  plan.strategy_ = opt.strategy;

  switch (opt.strategy) {
    case SplitStrategy::kNaive:
      plan.order_ = original_order(a);
      plan.block_ptr_ = naive_cuts(a.nrows(), k);
      break;
    case SplitStrategy::kBalanced: {
      plan.order_ = original_order(a);
      std::vector<offset_t> work(static_cast<std::size_t>(a.nrows()));
      for (index_t r = 0; r < a.nrows(); ++r)
        work[static_cast<std::size_t>(r)] = a.row_nnz(r);
      plan.block_ptr_ = balanced_cuts(work, k);
      break;
    }
    case SplitStrategy::kLocality: {
      CW_CHECK_MSG(a.nrows() == a.ncols(),
                   "shard plan: locality split partitions the symmetrized "
                   "pattern and requires a square matrix");
      if (a.nrows() == 0 || a.nnz() == 0) {
        // Nothing to cluster; degenerate to the naive cut.
        plan.order_ = original_order(a);
        plan.block_ptr_ = naive_cuts(a.nrows(), k);
        break;
      }
      PGraph g = PGraph::from_csr_pattern(a);
      // Balance shards by work, not row count: a vertex weighs its nnz.
      for (index_t v = 0; v < g.nv; ++v)
        g.vw[static_cast<std::size_t>(v)] = 1 + a.row_nnz(v);
      const index_t k_eff = std::min(k, a.nrows());
      const std::vector<index_t> part =
          kway_partition(g, k_eff, opt.seed, opt.imbalance);
      // Stable counting sort by part id keeps each part's rows in input
      // order, preserving whatever locality the rows already had.
      std::vector<index_t> count(static_cast<std::size_t>(k_eff) + 1, 0);
      for (const index_t p : part) ++count[static_cast<std::size_t>(p) + 1];
      for (index_t s = 0; s < k_eff; ++s)
        count[static_cast<std::size_t>(s) + 1] +=
            count[static_cast<std::size_t>(s)];
      plan.block_ptr_.assign(count.begin(), count.end());
      plan.order_.resize(static_cast<std::size_t>(a.nrows()));
      std::vector<index_t> cursor(count.begin(), count.end() - 1);
      for (index_t r = 0; r < a.nrows(); ++r) {
        const index_t p = part[static_cast<std::size_t>(r)];
        plan.order_[static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(p)]++)] = r;
      }
      while (static_cast<index_t>(plan.block_ptr_.size()) <= k)
        plan.block_ptr_.push_back(a.nrows());
      break;
    }
  }

  plan.inv_order_ = invert_permutation(plan.order_);
  plan.validate();
  return plan;
}

RowBlockPlan RowBlockPlan::from_parts(index_t nrows, index_t ncols,
                                      offset_t nnz, SplitStrategy strategy,
                                      Permutation order,
                                      std::vector<index_t> block_ptr) {
  RowBlockPlan plan;
  plan.nrows_ = nrows;
  plan.ncols_ = ncols;
  plan.nnz_ = nnz;
  plan.strategy_ = strategy;
  plan.order_ = std::move(order);
  plan.block_ptr_ = std::move(block_ptr);
  plan.validate();
  plan.inv_order_ = invert_permutation(plan.order_);
  return plan;
}

index_t RowBlockPlan::shard_of_row(index_t original_row) const {
  CW_CHECK_MSG(original_row >= 0 && original_row < nrows_,
               "shard plan: row out of range");
  const index_t p = inv_order_[static_cast<std::size_t>(original_row)];
  // First cut strictly past p, minus one — robust to empty blocks (repeated
  // cut values).
  const auto it =
      std::upper_bound(block_ptr_.begin(), block_ptr_.end(), p);
  return static_cast<index_t>(it - block_ptr_.begin()) - 1;
}

Csr RowBlockPlan::extract_block(const Csr& a, index_t s) const {
  CW_CHECK_MSG(a.nrows() == nrows_ && a.ncols() == ncols_ && a.nnz() == nnz_,
               "shard plan: matrix does not match the plan");
  CW_CHECK_MSG(s >= 0 && s < num_shards(), "shard plan: shard out of range");
  const index_t begin = block_ptr_[static_cast<std::size_t>(s)];
  const index_t rows = block_rows(s);

  std::vector<offset_t> row_ptr(static_cast<std::size_t>(rows) + 1, 0);
  for (index_t i = 0; i < rows; ++i)
    row_ptr[static_cast<std::size_t>(i) + 1] =
        row_ptr[static_cast<std::size_t>(i)] +
        a.row_nnz(order_[static_cast<std::size_t>(begin + i)]);
  std::vector<index_t> col_idx(static_cast<std::size_t>(row_ptr.back()));
  std::vector<value_t> values(static_cast<std::size_t>(row_ptr.back()));
  for (index_t i = 0; i < rows; ++i) {
    const index_t src = order_[static_cast<std::size_t>(begin + i)];
    const auto cols = a.row_cols(src);
    const auto vals = a.row_vals(src);
    std::copy(cols.begin(), cols.end(),
              col_idx.begin() + row_ptr[static_cast<std::size_t>(i)]);
    std::copy(vals.begin(), vals.end(),
              values.begin() + row_ptr[static_cast<std::size_t>(i)]);
  }
  return Csr(rows, ncols_, std::move(row_ptr), std::move(col_idx),
             std::move(values));
}

std::vector<BlockSummary> RowBlockPlan::summarize(const Csr& a) const {
  CW_CHECK_MSG(a.nrows() == nrows_ && a.ncols() == ncols_ && a.nnz() == nnz_,
               "shard plan: matrix does not match the plan");
  std::vector<BlockSummary> out(static_cast<std::size_t>(num_shards()));
  for (index_t s = 0; s < num_shards(); ++s) {
    BlockSummary& b = out[static_cast<std::size_t>(s)];
    b.rows = block_rows(s);
    for (index_t i = block_ptr_[static_cast<std::size_t>(s)];
         i < block_ptr_[static_cast<std::size_t>(s) + 1]; ++i)
      b.nnz += a.row_nnz(order_[static_cast<std::size_t>(i)]);
  }
  return out;
}

double RowBlockPlan::balance(const Csr& a) const {
  if (nnz_ == 0) return 1.0;
  offset_t worst = 0;
  for (const BlockSummary& b : summarize(a)) worst = std::max(worst, b.nnz);
  const double ideal =
      static_cast<double>(nnz_) / static_cast<double>(num_shards());
  return static_cast<double>(worst) / ideal;
}

void RowBlockPlan::validate() const {
  CW_CHECK_MSG(nrows_ >= 0 && ncols_ >= 0 && nnz_ >= 0,
               "shard plan: negative dimensions");
  CW_CHECK_MSG(is_permutation(order_, nrows_),
               "shard plan: order is not a permutation of the rows");
  CW_CHECK_MSG(block_ptr_.size() >= 2, "shard plan: need at least one block");
  CW_CHECK_MSG(block_ptr_.front() == 0 && block_ptr_.back() == nrows_,
               "shard plan: block pointers must span all rows");
  for (std::size_t s = 0; s + 1 < block_ptr_.size(); ++s)
    CW_CHECK_MSG(block_ptr_[s] <= block_ptr_[s + 1],
                 "shard plan: block pointers must be non-decreasing");
}

}  // namespace cw::shard
