// Snapshot persistence for sharded pipelines — snapshot format v2's
// kShardedPipeline record.
//
// Layout: the common CWSNAP header (dims of the *source* matrix), then a
// checksummed shard manifest (split strategy, overall pipeline options, the
// plan's row order and block cut points), then one embedded pipeline
// payload per shard, each closed by its own FNV-1a checksum — so a flipped
// bit is reported against the specific shard it corrupted, and a loader
// could in principle fetch shards selectively. Every shard record is the
// same payload a standalone kPipeline snapshot carries; a shard saved
// individually via serve::save(ostream, pipeline) remains loadable on its
// own.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "serve/snapshot.hpp"
#include "shard/sharded_pipeline.hpp"

namespace cw::shard {

/// Manifest summary readable without parsing the shard payloads
/// (`cwtool shard info`).
struct ShardManifest {
  std::uint32_t version = 0;
  SplitStrategy strategy = SplitStrategy::kBalanced;
  index_t nrows = 0;
  index_t ncols = 0;
  offset_t nnz = 0;
  std::vector<index_t> block_ptr;  // num_shards()+1 cut points
  [[nodiscard]] index_t num_shards() const {
    return static_cast<index_t>(block_ptr.size()) - 1;
  }
};

// --- stream API -------------------------------------------------------------

void save(std::ostream& out, const ShardedPipeline& sharded);
ShardedPipeline load_sharded_pipeline(std::istream& in);

/// Read header + manifest only, leaving the stream at the first shard.
ShardManifest read_manifest(std::istream& in);

// --- file API ---------------------------------------------------------------

void save_sharded_pipeline_file(const std::string& path,
                                const ShardedPipeline& sharded);
ShardedPipeline load_sharded_pipeline_file(const std::string& path);
ShardManifest read_manifest_file(const std::string& path);

}  // namespace cw::shard
