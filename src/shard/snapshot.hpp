// Snapshot persistence for sharded pipelines — the kShardedPipeline record.
//
// v3 layout: the common CWSNAP header (dims of the *source* matrix), then a
// manifest record (split strategy, overall pipeline options, per-shard BYTE
// RANGES, and the plan's row order / block cut points as segments), then one
// v3 pipeline record per shard at a 64-byte-aligned offset. The manifest's
// shard table is what makes loading selective: a node serving row block k
// maps only the manifest and shard k's byte range (`load_shard_file`) — the
// other shards' bytes are never read, mapped, or paged in.
//
// v2 layout (still read, still writable via SaveOptions): a checksummed
// inline manifest followed by one embedded checksummed pipeline payload per
// shard. A v2 loader must stream past every earlier shard; v3 seeks.
//
// Every shard record carries the same payload a standalone kPipeline
// snapshot does, and each is independently digested — a flipped bit is
// reported against the specific shard it corrupted.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "serve/snapshot.hpp"
#include "shard/sharded_pipeline.hpp"

namespace cw::shard {

/// Byte extent of one shard's record inside a v3 sharded snapshot file.
struct ShardByteRange {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
};

/// Manifest summary readable without parsing the shard payloads
/// (`cwtool shard info`).
struct ShardManifest {
  std::uint32_t version = 0;
  SplitStrategy strategy = SplitStrategy::kBalanced;
  index_t nrows = 0;
  index_t ncols = 0;
  offset_t nnz = 0;
  std::vector<index_t> block_ptr;  // num_shards()+1 cut points
  /// v3+: where each shard's record lives (empty for v2 files, which have
  /// no offset table and can only be read front to back).
  std::vector<ShardByteRange> shard_ranges;
  [[nodiscard]] index_t num_shards() const {
    return static_cast<index_t>(block_ptr.size()) - 1;
  }
};

/// One selectively loaded shard (load_shard_file): the prepared rows-only
/// pipeline for permuted rows [row_begin, row_end) of the plan.
struct ShardLoadResult {
  index_t shard = 0;
  index_t row_begin = 0;
  index_t row_end = 0;
  std::shared_ptr<const Pipeline> pipeline;
};

// --- stream API -------------------------------------------------------------

void save(std::ostream& out, const ShardedPipeline& sharded,
          const serve::SaveOptions& opt = {});
ShardedPipeline load_sharded_pipeline(std::istream& in);

/// Read header + manifest only, leaving the stream at the first shard.
ShardManifest read_manifest(std::istream& in);

// --- file API ---------------------------------------------------------------

void save_sharded_pipeline_file(const std::string& path,
                                const ShardedPipeline& sharded,
                                const serve::SaveOptions& opt = {});

/// Load every shard. v3 files take the zero-copy mmap path (shard arrays
/// borrow one shared mapping, options as in serve::load_pipeline_mmap);
/// v1/v2 files the fully-verified copying path.
ShardedPipeline load_sharded_pipeline_file(
    const std::string& path, const serve::MmapLoadOptions& opt = {});

/// Selective zero-copy load of ONE shard from a v3 file: maps the manifest
/// plus shard `shard`'s byte range only — O(manifest + that shard's
/// directory) work and no paging of the other row blocks.
ShardLoadResult load_shard_file(const std::string& path, index_t shard,
                                const serve::MmapLoadOptions& opt = {});

ShardManifest read_manifest_file(const std::string& path);

/// Offline format conversion for any snapshot kind: sharded files are
/// re-written shard record by shard record; every other kind delegates to
/// serve::convert_snapshot_file. Round-trips are bit-identical. This is the
/// entry point `cwtool snapshot convert` uses.
serve::SnapshotInfo convert_snapshot_file(const std::string& in_path,
                                          const std::string& out_path,
                                          const serve::SaveOptions& opt = {});

}  // namespace cw::shard
