// Row-block sharding plan — how a matrix too large for one registry is cut
// into per-shard pieces.
//
// A plan is a row permutation plus K contiguous cut points over the
// permuted rows: shard s serves permuted rows [block_ptr[s], block_ptr[s+1])
// with ALL columns, so C = A×B decomposes exactly into K independent
// row-slice products against one shared B (scatter), stitched back in
// original row order (gather). Three split strategies:
//
//   * kNaive    — equal row counts, identity order. The baseline the bench
//                 sweep compares against.
//   * kBalanced — contiguous cuts minimizing the bottleneck shard's nnz
//                 (binary search over the bottleneck + greedy packing —
//                 optimal for contiguous splits), identity order. Balanced
//                 work per shard is what makes the scatter fan-out finish
//                 together instead of waiting on one fat shard.
//   * kLocality — rows are first permuted so that graph-partition clusters
//                 land in the same shard (src/partition k-way on the
//                 symmetrized pattern, vertex weight = row nnz), then cut at
//                 part boundaries. Keeps dense row neighbourhoods intact
//                 inside one shard so per-shard clustering still finds them.
//
// The permutation is rows-only: column labels never change, which is what
// lets every shard share one unpermuted B.
#pragma once

#include <cstdint>
#include <vector>

#include "matrix/csr.hpp"

namespace cw::shard {

enum class SplitStrategy : std::uint32_t {
  kNaive = 0,
  kBalanced = 1,
  kLocality = 2,
};

const char* to_string(SplitStrategy strategy);

struct PlanOptions {
  /// Number of row blocks (shards), >= 1. May exceed nrows; the surplus
  /// blocks are empty.
  index_t num_shards = 4;
  SplitStrategy strategy = SplitStrategy::kBalanced;
  /// kLocality: partitioner seed and balance tolerance.
  std::uint64_t seed = 1;
  double imbalance = 0.05;
};

/// Per-shard summary for reporting (cwtool shard plan, bench sweep).
struct BlockSummary {
  index_t rows = 0;
  offset_t nnz = 0;
};

class RowBlockPlan {
 public:
  RowBlockPlan() = default;

  /// Plan a K-way row-block split of `a`. kLocality requires a square
  /// matrix (the partitioner works on the symmetrized pattern); the other
  /// strategies accept any shape.
  static RowBlockPlan build(const Csr& a, const PlanOptions& opt);

  /// Reassemble a plan from stored parts (snapshot loading); validates.
  static RowBlockPlan from_parts(index_t nrows, index_t ncols, offset_t nnz,
                                 SplitStrategy strategy, Permutation order,
                                 std::vector<index_t> block_ptr);

  [[nodiscard]] index_t num_shards() const {
    return static_cast<index_t>(block_ptr_.size()) - 1;
  }
  [[nodiscard]] index_t nrows() const { return nrows_; }
  [[nodiscard]] index_t ncols() const { return ncols_; }
  [[nodiscard]] offset_t nnz() const { return nnz_; }
  [[nodiscard]] SplitStrategy strategy() const { return strategy_; }

  /// Row order (order[permuted_pos] = original row). Identity for kNaive
  /// and kBalanced.
  [[nodiscard]] const Permutation& order() const { return order_; }

  /// Cached inverse (inverse_order[original row] = permuted position).
  [[nodiscard]] const Permutation& inverse_order() const { return inv_order_; }

  /// Cut points over permuted rows; size num_shards()+1, front 0, back nrows.
  [[nodiscard]] const std::vector<index_t>& block_ptr() const {
    return block_ptr_;
  }

  [[nodiscard]] index_t block_rows(index_t s) const {
    return block_ptr_[static_cast<std::size_t>(s) + 1] -
           block_ptr_[static_cast<std::size_t>(s)];
  }

  /// Which shard serves `original_row`.
  [[nodiscard]] index_t shard_of_row(index_t original_row) const;

  /// Materialize shard s's row block of `a`: block_rows(s) × ncols, row i =
  /// a's row order()[block_ptr[s] + i]. `a` must be the matrix the plan was
  /// built for (dims + nnz are checked).
  [[nodiscard]] Csr extract_block(const Csr& a, index_t s) const;

  /// Rows + nnz of every block of `a` (one O(nrows) pass).
  [[nodiscard]] std::vector<BlockSummary> summarize(const Csr& a) const;

  /// Bottleneck ratio: max block nnz / ideal(= nnz/K). 1.0 is perfect;
  /// reported by the bench sweep. Returns 1.0 for nnz == 0.
  [[nodiscard]] double balance(const Csr& a) const;

  /// Check every invariant; throws cw::Error on failure.
  void validate() const;

 private:
  index_t nrows_ = 0, ncols_ = 0;
  offset_t nnz_ = 0;
  SplitStrategy strategy_ = SplitStrategy::kBalanced;
  Permutation order_;      // size nrows_
  Permutation inv_order_;  // cached inverse of order_
  std::vector<index_t> block_ptr_{0};
};

}  // namespace cw::shard
