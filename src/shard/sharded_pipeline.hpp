// Sharded prepared-matrix context: K independently-prepared per-shard
// Pipelines over a RowBlockPlan.
//
// Each shard owns a rows-only `Pipeline` (core/pipeline.hpp) for its row
// block — individually snapshot-able (serve/snapshot + shard/snapshot),
// fingerprint-keyed by its block's structure, and admissible into a
// `PipelineRegistry` like any other prepared pipeline. That is the point of
// sharding: a matrix whose single prepared pipeline would blow one
// registry's byte budget becomes K registry-sized pieces, each still
// amortizing its preprocessing across many multiplies (§4.5 at block
// granularity).
//
// multiply() here is the sequential scatter/gather reference; the concurrent
// fan-out lives in shard/engine.hpp. Both produce rows in the ORIGINAL index
// space, bit-identical to an unsharded row-wise multiply (every output row's
// dot products accumulate in ascending column order in either path).
#pragma once

#include <memory>
#include <vector>

#include "core/pipeline.hpp"
#include "serve/fingerprint.hpp"
#include "serve/registry.hpp"
#include "shard/plan.hpp"

namespace cw::shard {

class ShardedPipeline {
 public:
  /// Plan the split of `a` and prepare all K shard pipelines. `opt.reorder`
  /// must be kOriginal (rows-only pipelines take no explicit reordering;
  /// use PlanOptions::kLocality for a locality-restoring global order).
  ShardedPipeline(const Csr& a, const PlanOptions& plan_opt,
                  const PipelineOptions& opt);

  /// Reassemble from previously prepared parts (snapshot loading). Every
  /// shard must be a rows-only pipeline matching its block's dims.
  static ShardedPipeline restore(
      RowBlockPlan plan, PipelineOptions opt,
      std::vector<std::shared_ptr<const Pipeline>> shards);

  [[nodiscard]] const RowBlockPlan& plan() const { return plan_; }
  [[nodiscard]] index_t num_shards() const { return plan_.num_shards(); }
  [[nodiscard]] const PipelineOptions& options() const { return opt_; }

  /// Shard s's prepared pipeline (shareable with engines/registries).
  [[nodiscard]] const std::shared_ptr<const Pipeline>& shard(index_t s) const {
    return shards_[static_cast<std::size_t>(s)];
  }

  /// Structural fingerprint of shard s's row block — its registry key.
  [[nodiscard]] const serve::Fingerprint& shard_fingerprint(index_t s) const {
    return fingerprints_[static_cast<std::size_t>(s)];
  }

  /// Insert every shard into `registry` under its fingerprint. Returns how
  /// many were newly admitted (an already-present or over-budget shard
  /// counts as not admitted).
  index_t admit(serve::PipelineRegistry& registry) const;

  /// Sequential scatter/gather reference: C = A×B with C's rows in the
  /// original index space. B's rows are the original column space of A
  /// (shards never relabel columns, so B is shared unchanged).
  [[nodiscard]] Csr multiply(const Csr& b) const;

  /// Stitch per-shard products back into one matrix in original row order.
  /// block_results[s] must hold shard s's product with rows in block-local
  /// order (i.e. after Pipeline::unpermute_rows), as produced by
  /// ServeEngine with unpermute_results on.
  [[nodiscard]] Csr gather(const std::vector<Csr>& block_results) const;

  /// Summed preprocessing time across shards (plan time excluded).
  [[nodiscard]] double prepare_seconds() const;

  /// Resident bytes across all shard pipelines + the plan arrays.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  ShardedPipeline() = default;

  RowBlockPlan plan_;
  PipelineOptions opt_;
  std::vector<std::shared_ptr<const Pipeline>> shards_;
  std::vector<serve::Fingerprint> fingerprints_;
};

}  // namespace cw::shard
