#include "shard/snapshot.hpp"

#include <fstream>
#include <istream>
#include <ostream>

#include "common/error.hpp"

namespace cw::shard {

namespace {

using serve::SnapshotInfo;
using serve::SnapshotKind;

// Section tags specific to the sharded record.
constexpr std::uint32_t kSecManifest = 0x534D414E;  // "SMAN"
constexpr std::uint32_t kSecShard = 0x53485244;     // "SHRD"

SnapshotInfo expect_sharded_header(std::istream& in) {
  const SnapshotInfo info = serve::read_info(in);
  if (info.kind != SnapshotKind::kShardedPipeline)
    throw Error(std::string("snapshot: file holds a ") + to_string(info.kind) +
                ", expected a sharded-pipeline");
  if (info.version < 2)
    throw Error("snapshot: sharded pipelines require format version >= 2");
  return info;
}

struct ManifestPayload {
  SplitStrategy strategy = SplitStrategy::kBalanced;
  PipelineOptions options;
  Permutation order;
  std::vector<index_t> block_ptr;
};

ManifestPayload read_manifest_payload(serve::io::Reader& r) {
  r.expect_section(kSecManifest, "SMAN");
  ManifestPayload m;
  const auto strategy = r.pod<std::uint32_t>();
  if (strategy > static_cast<std::uint32_t>(SplitStrategy::kLocality))
    throw Error("snapshot: unknown shard split strategy");
  m.strategy = static_cast<SplitStrategy>(strategy);
  m.options = serve::detail::read_pipeline_options(r);
  m.order = r.vec<index_t>();
  m.block_ptr = r.vec<index_t>();
  if (m.block_ptr.size() < 2)
    throw Error("snapshot: sharded manifest holds no blocks");
  r.checksum("shard manifest");
  return m;
}

}  // namespace

void save(std::ostream& out, const ShardedPipeline& sharded) {
  const RowBlockPlan& plan = sharded.plan();
  serve::io::Writer w(out);
  serve::detail::write_header(w, SnapshotKind::kShardedPipeline, plan.nrows(),
                              plan.ncols(), plan.nnz());
  w.section(kSecManifest);
  w.pod<std::uint32_t>(static_cast<std::uint32_t>(plan.strategy()));
  serve::detail::write_pipeline_options(w, sharded.options());
  w.vec(plan.order());
  w.vec(plan.block_ptr());
  w.checksum();
  for (index_t s = 0; s < sharded.num_shards(); ++s) {
    w.section(kSecShard);
    w.pod<index_t>(s);
    serve::detail::write_pipeline_payload(w, *sharded.shard(s));
    w.checksum();
  }
}

ShardedPipeline load_sharded_pipeline(std::istream& in) {
  const SnapshotInfo info = expect_sharded_header(in);
  serve::io::Reader r(in, info.version);
  ManifestPayload m = read_manifest_payload(r);
  RowBlockPlan plan =
      RowBlockPlan::from_parts(info.nrows, info.ncols, info.nnz, m.strategy,
                               std::move(m.order), std::move(m.block_ptr));
  std::vector<std::shared_ptr<const Pipeline>> shards;
  shards.reserve(static_cast<std::size_t>(plan.num_shards()));
  for (index_t s = 0; s < plan.num_shards(); ++s) {
    r.expect_section(kSecShard, "SHRD");
    const auto stored = r.pod<index_t>();
    if (stored != s)
      throw Error("snapshot: shard records out of order (corrupted file?)");
    Pipeline p = serve::detail::read_pipeline_payload(r);
    r.checksum("shard pipeline");
    shards.push_back(std::make_shared<const Pipeline>(std::move(p)));
  }
  // restore() cross-checks every shard against its row block.
  return ShardedPipeline::restore(std::move(plan), m.options,
                                  std::move(shards));
}

ShardManifest read_manifest(std::istream& in) {
  const SnapshotInfo info = expect_sharded_header(in);
  serve::io::Reader r(in, info.version);
  const ManifestPayload m = read_manifest_payload(r);
  ShardManifest out;
  out.version = info.version;
  out.strategy = m.strategy;
  out.nrows = info.nrows;
  out.ncols = info.ncols;
  out.nnz = info.nnz;
  out.block_ptr = m.block_ptr;
  return out;
}

// --- file wrappers ----------------------------------------------------------

namespace {

std::ofstream open_out(const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw Error("snapshot: cannot open " + path + " for writing");
  return f;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw Error("snapshot: cannot open " + path);
  return f;
}

}  // namespace

void save_sharded_pipeline_file(const std::string& path,
                                const ShardedPipeline& sharded) {
  auto f = open_out(path);
  save(f, sharded);
}

ShardedPipeline load_sharded_pipeline_file(const std::string& path) {
  auto f = open_in(path);
  return load_sharded_pipeline(f);
}

ShardManifest read_manifest_file(const std::string& path) {
  auto f = open_in(path);
  return read_manifest(f);
}

}  // namespace cw::shard
