#include "shard/snapshot.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/error.hpp"
#include "common/mmap_region.hpp"

namespace cw::shard {

namespace {

using serve::SnapshotInfo;
using serve::SnapshotKind;

// Section tags specific to the sharded record.
constexpr std::uint32_t kSecManifest = 0x534D414E;  // "SMAN"
constexpr std::uint32_t kSecShard = 0x53485244;     // "SHRD"

SnapshotInfo expect_sharded_header(std::istream& in) {
  const SnapshotInfo info = serve::read_info(in);
  if (info.kind != SnapshotKind::kShardedPipeline)
    throw Error(std::string("snapshot: file holds a ") + to_string(info.kind) +
                ", expected a sharded-pipeline");
  if (info.version < 2)
    throw Error("snapshot: sharded pipelines require format version >= 2");
  return info;
}

struct ManifestPayload {
  SplitStrategy strategy = SplitStrategy::kBalanced;
  PipelineOptions options;
  // Kept as segments so a selective loader can read the two cut points it
  // needs without paging in the whole order array.
  ArraySegment<index_t> order;
  ArraySegment<index_t> block_ptr;
  std::vector<ShardByteRange> ranges;  // v3+ only
};

ManifestPayload read_manifest_payload(serve::io::Reader& r) {
  r.expect_section(kSecManifest, "SMAN");
  ManifestPayload m;
  const auto strategy = r.pod<std::uint32_t>();
  if (strategy > static_cast<std::uint32_t>(SplitStrategy::kLocality))
    throw Error("snapshot: unknown shard split strategy");
  m.strategy = static_cast<SplitStrategy>(strategy);
  m.options = serve::detail::read_pipeline_options(r);
  if (r.version() >= 3) {
    const auto count = r.pod<std::uint64_t>();
    if (count > serve::io::kMaxSegments)
      throw Error("snapshot: implausible shard count (corrupted file?)");
    m.ranges.resize(static_cast<std::size_t>(count));
    for (ShardByteRange& rg : m.ranges) {
      rg.offset = r.pod<std::uint64_t>();
      rg.length = r.pod<std::uint64_t>();
    }
    m.order = r.seg<index_t>();
    m.block_ptr = r.seg<index_t>();
  } else {
    m.order = ArraySegment<index_t>(r.vec<index_t>());
    m.block_ptr = ArraySegment<index_t>(r.vec<index_t>());
    r.checksum("shard manifest");
  }
  if (m.block_ptr.size() < 2)
    throw Error("snapshot: sharded manifest holds no blocks");
  if (r.version() >= 3 && m.ranges.size() != m.block_ptr.size() - 1)
    throw Error("snapshot: shard table does not match the block count");
  return m;
}

void write_manifest_meta(serve::io::Writer& w, const ShardedPipeline& sharded,
                         const std::vector<ShardByteRange>& ranges) {
  const RowBlockPlan& plan = sharded.plan();
  w.section(kSecManifest);
  w.pod<std::uint32_t>(static_cast<std::uint32_t>(plan.strategy()));
  serve::detail::write_pipeline_options(w, sharded.options());
  w.pod<std::uint64_t>(ranges.size());
  for (const ShardByteRange& rg : ranges) {
    w.pod<std::uint64_t>(rg.offset);
    w.pod<std::uint64_t>(rg.length);
  }
  w.seg(plan.order());
  w.seg(plan.block_ptr());
}

void save_v2(std::ostream& out, const ShardedPipeline& sharded) {
  const RowBlockPlan& plan = sharded.plan();
  serve::io::Writer w(out);
  serve::detail::write_header(w, SnapshotKind::kShardedPipeline, plan.nrows(),
                              plan.ncols(), plan.nnz(), 2);
  w.section(kSecManifest);
  w.pod<std::uint32_t>(static_cast<std::uint32_t>(plan.strategy()));
  serve::detail::write_pipeline_options(w, sharded.options());
  w.vec(plan.order());
  w.vec(plan.block_ptr());
  w.checksum();
  for (index_t s = 0; s < sharded.num_shards(); ++s) {
    w.section(kSecShard);
    w.pod<index_t>(s);
    serve::detail::write_pipeline_payload(w, *sharded.shard(s));
    w.checksum();
  }
}

Pipeline read_shard_record_payload(serve::io::Reader& r, index_t expected) {
  r.expect_section(kSecShard, "SHRD");
  const auto stored = r.pod<index_t>();
  if (stored != expected)
    throw Error("snapshot: shard records out of order (corrupted file?)");
  return serve::detail::read_pipeline_payload(r);
}

std::span<const std::byte> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

}  // namespace

void save(std::ostream& out, const ShardedPipeline& sharded,
          const serve::SaveOptions& opt) {
  serve::detail::check_save_version(opt.version);
  if (opt.version == 2) {
    save_v2(out, sharded);
    return;
  }
  const RowBlockPlan& plan = sharded.plan();
  serve::io::Writer w(out);
  serve::detail::write_header(w, SnapshotKind::kShardedPipeline, plan.nrows(),
                              plan.ncols(), plan.nnz(), opt.version);

  // Plan every shard record first: the manifest indexes them by byte range,
  // so their extents must be final before the manifest is serialized.
  const index_t num_shards = sharded.num_shards();
  std::vector<serve::io::V3RecordBuilder> shard_recs(
      static_cast<std::size_t>(num_shards));
  for (index_t s = 0; s < num_shards; ++s) {
    shard_recs[static_cast<std::size_t>(s)].build_meta(
        [&](serve::io::Writer& mw) {
          mw.section(kSecShard);
          mw.pod<index_t>(s);
          serve::detail::write_pipeline_payload(mw, *sharded.shard(s));
        });
  }

  // The manifest's size depends only on the shard COUNT, not the range
  // values, so build it once with placeholders to learn its extent, lay
  // everything out, then rebuild with the real table.
  std::vector<ShardByteRange> ranges(static_cast<std::size_t>(num_shards));
  serve::io::V3RecordBuilder manifest;
  manifest.build_meta(
      [&](serve::io::Writer& mw) { write_manifest_meta(mw, sharded, ranges); });
  const std::uint64_t manifest_end = manifest.layout(serve::kFirstRecordOffset);
  std::uint64_t cursor =
      serve::io::align_up(manifest_end, serve::io::kSegmentAlignment);
  for (index_t s = 0; s < num_shards; ++s) {
    const std::uint64_t end =
        shard_recs[static_cast<std::size_t>(s)].layout(cursor);
    ranges[static_cast<std::size_t>(s)] = {cursor, end - cursor};
    cursor = serve::io::align_up(end, serve::io::kSegmentAlignment);
  }
  manifest.build_meta(
      [&](serve::io::Writer& mw) { write_manifest_meta(mw, sharded, ranges); });
  manifest.layout(serve::kFirstRecordOffset);

  manifest.emit(out);
  std::uint64_t pos = manifest_end;
  for (index_t s = 0; s < num_shards; ++s) {
    const ShardByteRange& rg = ranges[static_cast<std::size_t>(s)];
    w.raw_zeros(static_cast<std::size_t>(rg.offset - pos));
    shard_recs[static_cast<std::size_t>(s)].emit(out);
    pos = rg.offset + rg.length;
  }
}

ShardedPipeline load_sharded_pipeline(std::istream& in) {
  const SnapshotInfo info = expect_sharded_header(in);
  ManifestPayload m;
  std::vector<std::shared_ptr<const Pipeline>> shards;
  if (info.version >= 3) {
    serve::io::StreamRecord man = serve::io::read_v3_record(
        in, serve::kHeaderBytes, serve::kFirstRecordOffset);
    serve::io::Reader mr(as_bytes(man.meta), info.version, &man.table,
                         /*deep_validate=*/true);
    m = read_manifest_payload(mr);
    const index_t num_shards = static_cast<index_t>(m.ranges.size());
    shards.reserve(m.ranges.size());
    std::uint64_t pos = man.end;
    for (index_t s = 0; s < num_shards; ++s) {
      const ShardByteRange& rg = m.ranges[static_cast<std::size_t>(s)];
      serve::io::StreamRecord rec = serve::io::read_v3_record(in, pos, rg.offset);
      if (rec.end != rg.offset + rg.length)
        throw Error("snapshot: shard record does not match its manifest "
                    "byte range (corrupted file?)");
      serve::io::Reader r(as_bytes(rec.meta), info.version, &rec.table,
                          /*deep_validate=*/true);
      shards.push_back(std::make_shared<const Pipeline>(
          read_shard_record_payload(r, s)));
      pos = rec.end;
    }
  } else {
    serve::io::Reader r(in, info.version);
    m = read_manifest_payload(r);
    const index_t num_shards = static_cast<index_t>(m.block_ptr.size()) - 1;
    shards.reserve(static_cast<std::size_t>(num_shards));
    for (index_t s = 0; s < num_shards; ++s) {
      Pipeline p = read_shard_record_payload(r, s);
      r.checksum("shard pipeline");
      shards.push_back(std::make_shared<const Pipeline>(std::move(p)));
    }
  }
  RowBlockPlan plan = RowBlockPlan::from_parts(
      info.nrows, info.ncols, info.nnz, m.strategy, m.order.to_vector(),
      m.block_ptr.to_vector());
  // restore() cross-checks every shard against its row block.
  return ShardedPipeline::restore(std::move(plan), m.options,
                                  std::move(shards));
}

namespace {

ShardManifest manifest_from_payload(const SnapshotInfo& info,
                                    const ManifestPayload& m) {
  ShardManifest out;
  out.version = info.version;
  out.strategy = m.strategy;
  out.nrows = info.nrows;
  out.ncols = info.ncols;
  out.nnz = info.nnz;
  out.block_ptr = m.block_ptr.to_vector();
  out.shard_ranges = m.ranges;
  return out;
}

}  // namespace

ShardManifest read_manifest(std::istream& in) {
  const SnapshotInfo info = expect_sharded_header(in);
  if (info.version >= 3) {
    serve::io::StreamRecord man = serve::io::read_v3_record(
        in, serve::kHeaderBytes, serve::kFirstRecordOffset);
    serve::io::Reader mr(as_bytes(man.meta), info.version, &man.table,
                         /*deep_validate=*/true);
    return manifest_from_payload(info, read_manifest_payload(mr));
  }
  serve::io::Reader r(in, info.version);
  return manifest_from_payload(info, read_manifest_payload(r));
}

// --- file wrappers ----------------------------------------------------------

namespace {

std::ofstream open_out(const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw Error("snapshot: cannot open " + path + " for writing");
  return f;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw Error("snapshot: cannot open " + path);
  return f;
}

SnapshotInfo expect_sharded_region(const MmapRegion& region,
                                   const std::string& path) {
  const SnapshotInfo info = serve::read_info_region(region);
  if (info.kind != SnapshotKind::kShardedPipeline)
    throw Error("snapshot: " + path + " holds a " + to_string(info.kind) +
                ", expected a sharded-pipeline");
  return info;
}

/// Map a window [0, end) of `path`, growing a previously mapped window.
void grow_window(const std::string& path,
                 std::shared_ptr<const MmapRegion>* region,
                 std::uint64_t end) {
  if (end > (*region)->file_size())
    throw Error("snapshot: truncated file (manifest extends past the end of " +
                path + ")");
  if (end > (*region)->size()) *region = MmapRegion::map_file(path, 0, end);
}

/// Map just enough of `path` to cover the manifest record, and parse it.
/// Starts from a small probe window and grows it to the exact extents the
/// control block declares — shard records are never mapped here.
ManifestPayload map_manifest(const std::string& path,
                             std::shared_ptr<const MmapRegion>* region,
                             serve::io::SegmentTable* table,
                             SnapshotInfo* info,
                             const serve::MmapLoadOptions& opt) {
  const std::uint64_t file_size = MmapRegion::query_file_size(path);
  constexpr std::uint64_t kProbe = 64 * 1024;
  *region = MmapRegion::map_file(
      path, 0, file_size < kProbe ? file_size : kProbe);
  *info = expect_sharded_region(**region, path);
  if (info->version < 3)
    throw Error("snapshot: " + path + " is format v" +
                std::to_string(info->version) +
                "; selective/zero-copy loading requires v3");

  const std::uint64_t base = serve::kFirstRecordOffset;
  grow_window(path, region, base + 8);
  std::uint64_t meta_len;
  std::memcpy(&meta_len, (*region)->at(base, 8), 8);
  if (meta_len > serve::io::kMaxMetaBytes)
    throw Error("snapshot: record metadata implausibly large (corrupted "
                "file?)");
  grow_window(path, region, base + 8 + meta_len + 8);
  std::uint64_t seg_count;
  std::memcpy(&seg_count, (*region)->at(base + 8 + meta_len, 8), 8);
  if (seg_count > serve::io::kMaxSegments)
    throw Error("snapshot: implausible segment count (corrupted file?)");
  grow_window(path, region,
              base + 16 + meta_len +
                  seg_count * sizeof(serve::io::SegmentEntry) + 12);
  serve::io::V3Control ctrl = serve::io::parse_v3_control(**region, base);
  if (ctrl.end > (*region)->size()) {
    grow_window(path, region, ctrl.end);
    ctrl = serve::io::parse_v3_control(**region, base);  // meta span moved
  }
  *table = serve::io::SegmentTable::mapped(std::move(ctrl.entries), *region);
  if (opt.verify_checksums) table->verify_checksums();
  serve::io::Reader mr(ctrl.meta, info->version, table, opt.deep_validate);
  return read_manifest_payload(mr);
}

}  // namespace

void save_sharded_pipeline_file(const std::string& path,
                                const ShardedPipeline& sharded,
                                const serve::SaveOptions& opt) {
  auto f = open_out(path);
  save(f, sharded, opt);
}

ShardedPipeline load_sharded_pipeline_file(const std::string& path,
                                           const serve::MmapLoadOptions& opt) {
  {
    auto f = open_in(path);
    const SnapshotInfo info = serve::read_info(f);
    if (info.kind != SnapshotKind::kShardedPipeline)
      throw Error("snapshot: " + path + " holds a " + to_string(info.kind) +
                  ", expected a sharded-pipeline");
    if (info.version < 3) {
      f.seekg(0);
      return load_sharded_pipeline(f);
    }
  }
  // v3: one shared mapping; every shard's arrays borrow from it.
  auto region = MmapRegion::map_file(path);
  const SnapshotInfo info = expect_sharded_region(*region, path);
  serve::io::V3Control mc =
      serve::io::parse_v3_control(*region, serve::kFirstRecordOffset);
  serve::io::SegmentTable mtable =
      serve::io::SegmentTable::mapped(std::move(mc.entries), region);
  if (opt.verify_checksums) mtable.verify_checksums();
  serve::io::Reader mr(mc.meta, info.version, &mtable, opt.deep_validate);
  ManifestPayload m = read_manifest_payload(mr);

  std::vector<std::shared_ptr<const Pipeline>> shards;
  shards.reserve(m.ranges.size());
  for (index_t s = 0; s < static_cast<index_t>(m.ranges.size()); ++s) {
    const ShardByteRange& rg = m.ranges[static_cast<std::size_t>(s)];
    serve::io::V3Control sc = serve::io::parse_v3_control(*region, rg.offset);
    if (sc.end != rg.offset + rg.length)
      throw Error("snapshot: shard record does not match its manifest byte "
                  "range (corrupted file?)");
    serve::io::SegmentTable stable =
        serve::io::SegmentTable::mapped(std::move(sc.entries), region);
    if (opt.verify_checksums) stable.verify_checksums();
    serve::io::Reader r(sc.meta, info.version, &stable, opt.deep_validate);
    shards.push_back(
        std::make_shared<const Pipeline>(read_shard_record_payload(r, s)));
  }
  RowBlockPlan plan = RowBlockPlan::from_parts(
      info.nrows, info.ncols, info.nnz, m.strategy, m.order.to_vector(),
      m.block_ptr.to_vector());
  return ShardedPipeline::restore(std::move(plan), m.options,
                                  std::move(shards));
}

ShardLoadResult load_shard_file(const std::string& path, index_t shard,
                                const serve::MmapLoadOptions& opt) {
  std::shared_ptr<const MmapRegion> manifest_region;
  serve::io::SegmentTable manifest_table;
  SnapshotInfo info;
  const ManifestPayload m =
      map_manifest(path, &manifest_region, &manifest_table, &info, opt);
  const auto num_shards = static_cast<index_t>(m.ranges.size());
  if (shard < 0 || shard >= num_shards)
    throw Error("snapshot: shard " + std::to_string(shard) +
                " out of range (file holds " + std::to_string(num_shards) +
                ")");

  // Touches exactly two block_ptr entries; the order array (and every other
  // shard's record) stays unpaged.
  ShardLoadResult out;
  out.shard = shard;
  out.row_begin = m.block_ptr[static_cast<std::size_t>(shard)];
  out.row_end = m.block_ptr[static_cast<std::size_t>(shard) + 1];
  if (out.row_begin < 0 || out.row_begin > out.row_end ||
      out.row_end > info.nrows)
    throw Error("snapshot: manifest block pointers are inconsistent "
                "(corrupted file?)");

  const ShardByteRange& rg = m.ranges[static_cast<std::size_t>(shard)];
  auto region = MmapRegion::map_file(path, rg.offset, rg.length);
  serve::io::V3Control sc = serve::io::parse_v3_control(*region, rg.offset);
  if (sc.end != rg.offset + rg.length)
    throw Error("snapshot: shard record does not match its manifest byte "
                "range (corrupted file?)");
  serve::io::SegmentTable table =
      serve::io::SegmentTable::mapped(std::move(sc.entries), region);
  if (opt.verify_checksums) table.verify_checksums();
  serve::io::Reader r(sc.meta, info.version, &table, opt.deep_validate);
  Pipeline p = read_shard_record_payload(r, shard);
  if (p.matrix().nrows() != out.row_end - out.row_begin ||
      p.matrix().ncols() != info.ncols)
    throw Error("snapshot: shard pipeline does not match its row block "
                "(corrupted file?)");
  out.pipeline = std::make_shared<const Pipeline>(std::move(p));
  return out;
}

ShardManifest read_manifest_file(const std::string& path) {
  auto f = open_in(path);
  return read_manifest(f);
}

serve::SnapshotInfo convert_snapshot_file(const std::string& in_path,
                                          const std::string& out_path,
                                          const serve::SaveOptions& opt) {
  serve::detail::check_save_version(opt.version);
  const SnapshotInfo info = serve::read_info_file(in_path);
  if (info.kind != SnapshotKind::kShardedPipeline)
    return serve::convert_snapshot_file(in_path, out_path, opt);
  // Copying (stream) load = full per-record verification before the rewrite
  // touches anything — exactly what an offline fleet-upgrade job wants.
  auto in = open_in(in_path);
  const ShardedPipeline sharded = load_sharded_pipeline(in);
  save_sharded_pipeline_file(out_path, sharded, opt);
  return info;
}

}  // namespace cw::shard
