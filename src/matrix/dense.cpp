#include "matrix/dense.hpp"

#include <cmath>

#include "common/error.hpp"
#include "matrix/coo.hpp"
#include "matrix/csr.hpp"

namespace cw {

Dense Dense::from_csr(const Csr& a) {
  Dense d(a.nrows(), a.ncols());
  for (index_t r = 0; r < a.nrows(); ++r) {
    auto cols = a.row_cols(r);
    auto vals = a.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) d.at(r, cols[k]) += vals[k];
  }
  return d;
}

Csr Dense::to_csr(double drop_tol) const {
  Coo coo(nrows_, ncols_);
  for (index_t r = 0; r < nrows_; ++r) {
    for (index_t c = 0; c < ncols_; ++c) {
      const value_t v = at(r, c);
      if (std::abs(v) > drop_tol) coo.push(r, c, v);
    }
  }
  return Csr::from_coo(coo);
}

Dense Dense::multiply(const Dense& b) const {
  CW_CHECK(ncols_ == b.nrows());
  Dense c(nrows_, b.ncols());
  for (index_t i = 0; i < nrows_; ++i) {
    for (index_t k = 0; k < ncols_; ++k) {
      const value_t aik = at(i, k);
      if (aik == 0.0) continue;
      for (index_t j = 0; j < b.ncols(); ++j) c.at(i, j) += aik * b.at(k, j);
    }
  }
  return c;
}

bool Dense::approx_equal(const Dense& other, double tol) const {
  if (nrows_ != other.nrows_ || ncols_ != other.ncols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

}  // namespace cw
