// Small row-major dense matrix used as the brute-force reference in tests
// (never in benchmarked code paths).
#pragma once

#include <vector>

#include "common/types.hpp"

namespace cw {

class Csr;

class Dense {
 public:
  Dense() = default;
  Dense(index_t nrows, index_t ncols)
      : nrows_(nrows), ncols_(ncols),
        data_(static_cast<std::size_t>(nrows) * static_cast<std::size_t>(ncols), 0.0) {}

  [[nodiscard]] index_t nrows() const { return nrows_; }
  [[nodiscard]] index_t ncols() const { return ncols_; }

  value_t& at(index_t r, index_t c) {
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(ncols_) +
                 static_cast<std::size_t>(c)];
  }
  [[nodiscard]] value_t at(index_t r, index_t c) const {
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(ncols_) +
                 static_cast<std::size_t>(c)];
  }

  /// Contiguous row-major row pointer (rows are ncols() long).
  [[nodiscard]] const value_t* row_data(index_t r) const {
    return data_.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(ncols_);
  }
  value_t* row_data(index_t r) {
    return data_.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(ncols_);
  }

  /// Densify a CSR matrix.
  static Dense from_csr(const Csr& a);

  /// Drop explicit zeros and return the CSR form.
  [[nodiscard]] Csr to_csr(double drop_tol = 0.0) const;

  /// Naive O(n·m·k) product, the ground truth for SpGEMM tests.
  [[nodiscard]] Dense multiply(const Dense& b) const;

  [[nodiscard]] bool approx_equal(const Dense& other, double tol) const;

 private:
  index_t nrows_ = 0, ncols_ = 0;
  std::vector<value_t> data_;
};

}  // namespace cw
