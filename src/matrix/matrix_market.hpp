// Matrix Market (.mtx) reader/writer so users can run the suite on real
// SuiteSparse downloads. Supports coordinate real/integer/pattern matrices,
// general and symmetric storage.
#pragma once

#include <iosfwd>
#include <string>

#include "matrix/csr.hpp"

namespace cw {

/// Parse a Matrix Market stream. Symmetric/skew-symmetric storage is
/// expanded to general form. Throws cw::Error on malformed input.
Csr read_matrix_market(std::istream& in);

/// Convenience file wrapper around the stream reader.
Csr read_matrix_market_file(const std::string& path);

/// Write in "matrix coordinate real general" form with 1-based indices.
void write_matrix_market(std::ostream& out, const Csr& a);

void write_matrix_market_file(const std::string& path, const Csr& a);

}  // namespace cw
