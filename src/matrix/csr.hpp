// Compressed Sparse Row matrix — the library's workhorse format (§2.1).
//
// Invariants maintained by every constructor and mutator:
//   * row_ptr has nrows()+1 entries, is non-decreasing, row_ptr[0] == 0;
//   * column indices within each row are strictly increasing (sorted, unique);
//   * col_idx and values have row_ptr[nrows()] entries.
// validate() checks all of them and is exercised heavily by the test suite.
#pragma once

#include <span>
#include <vector>

#include "common/array_segment.hpp"
#include "common/error.hpp"
#include "common/types.hpp"

namespace cw {

class Coo;

/// Row order vector: order[new_position] = old_index. apply-side helpers
/// live in Csr (permute_rows / permute_symmetric).
using Permutation = std::vector<index_t>;

/// Returns the inverse permutation: inv[old_index] = new_position.
Permutation invert_permutation(const Permutation& order);

/// True iff `order` is a permutation of 0..n-1.
bool is_permutation(const Permutation& order, index_t n);

class Csr {
 public:
  Csr() = default;

  /// Takes ownership of pre-built arrays. Rows are sorted/deduplicated if
  /// needed; validate() is run in debug builds.
  Csr(index_t nrows, index_t ncols, std::vector<offset_t> row_ptr,
      std::vector<index_t> col_idx, std::vector<value_t> values);

  /// Conversion from COO (duplicates are summed).
  static Csr from_coo(const Coo& coo);

  /// Identity matrix.
  static Csr identity(index_t n);

  /// Adopt prebuilt storage without copying — the snapshot-v3 zero-copy load
  /// path, where the segments point into a mapped file. Cheap invariants
  /// (array lengths, row_ptr monotone and covering the data arrays) are
  /// always enforced so no kernel can index out of this matrix's own arrays;
  /// `deep_validate` additionally runs the full O(nnz) validate() (column
  /// range + sortedness), which the copying load path always does and the
  /// mmap path does on demand. Rows must already be sorted (never mutates).
  static Csr from_segments(index_t nrows, index_t ncols,
                           ArraySegment<offset_t> row_ptr,
                           ArraySegment<index_t> col_idx,
                           ArraySegment<value_t> values, bool deep_validate);

  [[nodiscard]] index_t nrows() const { return nrows_; }
  [[nodiscard]] index_t ncols() const { return ncols_; }
  [[nodiscard]] offset_t nnz() const {
    return row_ptr_.empty() ? 0 : row_ptr_.back();
  }

  [[nodiscard]] const ArraySegment<offset_t>& row_ptr() const { return row_ptr_; }
  [[nodiscard]] const ArraySegment<index_t>& col_idx() const { return col_idx_; }
  [[nodiscard]] const ArraySegment<value_t>& values() const { return values_; }

  /// Mutable value access; materializes a private copy first when the matrix
  /// borrows its storage from a mapped snapshot (copy-on-write).
  [[nodiscard]] std::span<value_t> mutable_values() {
    return values_.mutable_span();
  }

  /// Number of nonzeros in row r. The cast cannot narrow for a valid matrix
  /// (a row holds at most ncols_ <= INT32_MAX unique columns); the debug
  /// check guards against corrupted row pointers reaching callers as a
  /// silently wrapped count.
  [[nodiscard]] index_t row_nnz(index_t r) const {
    const offset_t d = row_ptr_[r + 1] - row_ptr_[r];
    CW_DCHECK(d >= 0 && d <= static_cast<offset_t>(ncols_));
    return static_cast<index_t>(d);
  }

  /// Column indices of row r (sorted ascending).
  [[nodiscard]] std::span<const index_t> row_cols(index_t r) const {
    return {col_idx_.data() + row_ptr_[r],
            static_cast<std::size_t>(row_ptr_[r + 1] - row_ptr_[r])};
  }

  /// Values of row r, parallel to row_cols(r).
  [[nodiscard]] std::span<const value_t> row_vals(index_t r) const {
    return {values_.data() + row_ptr_[r],
            static_cast<std::size_t>(row_ptr_[r + 1] - row_ptr_[r])};
  }

  /// Transposed copy (CSC view materialized as CSR of Aᵀ). O(nnz).
  [[nodiscard]] Csr transpose() const;

  /// Copy with all stored values replaced by 1.0 — used by the hierarchical
  /// clustering preprocessing (Alg. 3 resets values before A·Aᵀ).
  [[nodiscard]] Csr pattern_ones() const;

  /// Row permutation only: result row i = this row order[i]. Columns keep
  /// their labels. Used when only the A-row traversal order changes.
  [[nodiscard]] Csr permute_rows(const Permutation& order) const;

  /// Symmetric permutation P·A·Pᵀ: rows reordered by `order` and column
  /// labels relabelled with the inverse. This is how the reordering study
  /// applies an ordering to a square matrix (§4).
  [[nodiscard]] Csr permute_symmetric(const Permutation& order) const;

  /// A + Aᵀ pattern (values summed); requires square. The reordering
  /// algorithms operate on this symmetrized adjacency structure.
  [[nodiscard]] Csr symmetrized() const;

  /// Copy without diagonal entries.
  [[nodiscard]] Csr without_diagonal() const;

  /// Matrix bandwidth: max |i - j| over stored entries.
  [[nodiscard]] index_t bandwidth() const;

  /// Out-degree (row nnz) of every row.
  [[nodiscard]] std::vector<index_t> row_degrees() const;

  /// Bytes of the CSR arrays (row_ptr + col_idx + values) — the baseline for
  /// the Fig. 11 memory comparison.
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Structural + numerical equality.
  bool operator==(const Csr& other) const;

  /// Equality within absolute tolerance `tol` on values, exact on pattern.
  [[nodiscard]] bool approx_equal(const Csr& other, double tol) const;

  /// Check every invariant; throws cw::Error with a description on failure.
  void validate() const;

 private:
  void sort_rows_();

  index_t nrows_ = 0, ncols_ = 0;
  // Owned vectors for anything built in-process; borrowed views into a
  // shared MmapRegion when restored from a v3 snapshot (array_segment.hpp).
  ArraySegment<offset_t> row_ptr_{0};
  ArraySegment<index_t> col_idx_;
  ArraySegment<value_t> values_;
};

}  // namespace cw
