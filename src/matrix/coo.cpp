#include "matrix/coo.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace cw {

void Coo::push(index_t r, index_t c, value_t v) {
  CW_DCHECK(r >= 0 && r < nrows_);
  CW_DCHECK(c >= 0 && c < ncols_);
  rows_.push_back(r);
  cols_.push_back(c);
  vals_.push_back(v);
}

void Coo::reserve(offset_t n) {
  rows_.reserve(static_cast<std::size_t>(n));
  cols_.reserve(static_cast<std::size_t>(n));
  vals_.reserve(static_cast<std::size_t>(n));
}

void Coo::sort() {
  const std::size_t n = rows_.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (rows_[a] != rows_[b]) return rows_[a] < rows_[b];
    return cols_[a] < cols_[b];
  });
  std::vector<index_t> r(n), c(n);
  std::vector<value_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = rows_[order[i]];
    c[i] = cols_[order[i]];
    v[i] = vals_[order[i]];
  }
  rows_ = std::move(r);
  cols_ = std::move(c);
  vals_ = std::move(v);
}

void Coo::sum_duplicates() {
  if (rows_.empty()) return;
  sort();
  std::size_t out = 0;
  for (std::size_t i = 1; i < rows_.size(); ++i) {
    if (rows_[i] == rows_[out] && cols_[i] == cols_[out]) {
      vals_[out] += vals_[i];
    } else {
      ++out;
      rows_[out] = rows_[i];
      cols_[out] = cols_[i];
      vals_[out] = vals_[i];
    }
  }
  rows_.resize(out + 1);
  cols_.resize(out + 1);
  vals_.resize(out + 1);
}

void Coo::symmetrize() {
  CW_CHECK_MSG(nrows_ == ncols_, "symmetrize requires a square matrix");
  const std::size_t n = rows_.size();
  rows_.reserve(2 * n);
  cols_.reserve(2 * n);
  vals_.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rows_[i] != cols_[i]) {
      rows_.push_back(cols_[i]);
      cols_.push_back(rows_[i]);
      vals_.push_back(vals_[i]);
    }
  }
  sum_duplicates();
}

}  // namespace cw
