#include "matrix/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "matrix/coo.hpp"

namespace cw {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

Csr read_matrix_market(std::istream& in) {
  std::string line;
  CW_CHECK_MSG(static_cast<bool>(std::getline(in, line)), "empty stream");
  std::istringstream header(line);
  std::string banner, object, fmt, field, symmetry;
  header >> banner >> object >> fmt >> field >> symmetry;
  if (banner != "%%MatrixMarket") throw Error("missing %%MatrixMarket banner");
  object = lower(object);
  fmt = lower(fmt);
  field = lower(field);
  symmetry = lower(symmetry);
  if (object != "matrix") throw Error("unsupported object: " + object);
  if (fmt != "coordinate") throw Error("only coordinate format is supported");
  const bool pattern = field == "pattern";
  if (!pattern && field != "real" && field != "integer")
    throw Error("unsupported field: " + field);
  const bool symmetric = symmetry == "symmetric";
  const bool skew = symmetry == "skew-symmetric";
  if (!symmetric && !skew && symmetry != "general")
    throw Error("unsupported symmetry: " + symmetry);

  // Skip comments.
  do {
    if (!std::getline(in, line)) throw Error("missing size line");
  } while (!line.empty() && line[0] == '%');

  std::istringstream size_line(line);
  long long nrows = 0, ncols = 0, nnz = 0;
  size_line >> nrows >> ncols >> nnz;
  if (nrows <= 0 || ncols <= 0 || nnz < 0) throw Error("bad size line: " + line);
  // The library uses 32-bit indices; reject files whose dimensions would
  // silently wrap in the index_t casts below.
  constexpr long long kMaxDim = std::numeric_limits<index_t>::max();
  if (nrows > kMaxDim || ncols > kMaxDim)
    throw Error("matrix dimensions exceed 32-bit index range: " + line);

  Coo coo(static_cast<index_t>(nrows), static_cast<index_t>(ncols));
  coo.reserve((symmetric || skew) ? 2 * nnz : nnz);
  for (long long e = 0; e < nnz; ++e) {
    long long r = 0, c = 0;
    double v = 1.0;
    if (!(in >> r >> c)) throw Error("truncated entry list");
    if (!pattern) {
      if (!(in >> v)) throw Error("truncated entry list (value)");
    }
    if (r < 1 || r > nrows || c < 1 || c > ncols)
      throw Error("entry out of bounds");
    const auto ri = static_cast<index_t>(r - 1);
    const auto ci = static_cast<index_t>(c - 1);
    coo.push(ri, ci, v);
    if ((symmetric || skew) && ri != ci) coo.push(ci, ri, skew ? -v : v);
  }
  return Csr::from_coo(coo);
}

Csr read_matrix_market_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw Error("cannot open " + path);
  return read_matrix_market(f);
}

void write_matrix_market(std::ostream& out, const Csr& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.nrows() << " " << a.ncols() << " " << a.nnz() << "\n";
  out.precision(17);
  for (index_t r = 0; r < a.nrows(); ++r) {
    auto cols = a.row_cols(r);
    auto vals = a.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      out << (r + 1) << " " << (cols[k] + 1) << " " << vals[k] << "\n";
    }
  }
}

void write_matrix_market_file(const std::string& path, const Csr& a) {
  std::ofstream f(path);
  if (!f) throw Error("cannot open " + path + " for writing");
  write_matrix_market(f, a);
}

}  // namespace cw
