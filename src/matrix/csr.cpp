#include "matrix/csr.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numeric>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/prefix_sum.hpp"
#include "matrix/coo.hpp"

namespace cw {

Permutation invert_permutation(const Permutation& order) {
  Permutation inv(order.size(), kInvalidIndex);
  for (index_t i = 0; i < static_cast<index_t>(order.size()); ++i) {
    CW_DCHECK(order[i] >= 0 && order[i] < static_cast<index_t>(order.size()));
    inv[order[i]] = i;
  }
  return inv;
}

bool is_permutation(const Permutation& order, index_t n) {
  if (static_cast<index_t>(order.size()) != n) return false;
  std::vector<bool> seen(n, false);
  for (index_t x : order) {
    if (x < 0 || x >= n || seen[x]) return false;
    seen[x] = true;
  }
  return true;
}

Csr::Csr(index_t nrows, index_t ncols, std::vector<offset_t> row_ptr,
         std::vector<index_t> col_idx, std::vector<value_t> values)
    : nrows_(nrows),
      ncols_(ncols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  CW_CHECK(static_cast<index_t>(row_ptr_.size()) == nrows_ + 1);
  CW_CHECK(col_idx_.size() == values_.size());
  sort_rows_();
#ifndef NDEBUG
  validate();
#endif
}

void Csr::sort_rows_() {
  // Sort each row by column index if necessary. Rows produced by our own
  // kernels are already sorted, so check before paying for a sort. Only the
  // constructor calls this, so the storage is always owned here.
  std::vector<index_t>& col_idx = col_idx_.mutate();
  std::vector<value_t>& values = values_.mutate();
  parallel_for(nrows_, [&](index_t r) {
    const offset_t lo = row_ptr_[r], hi = row_ptr_[r + 1];
    bool sorted = true;
    for (offset_t k = lo + 1; k < hi; ++k) {
      if (col_idx[static_cast<std::size_t>(k - 1)] >=
          col_idx[static_cast<std::size_t>(k)]) {
        sorted = false;
        break;
      }
    }
    if (sorted) return;
    const auto len = static_cast<std::size_t>(hi - lo);
    std::vector<std::pair<index_t, value_t>> tmp(len);
    for (std::size_t k = 0; k < len; ++k)
      tmp[k] = {col_idx[static_cast<std::size_t>(lo) + k],
                values[static_cast<std::size_t>(lo) + k]};
    std::sort(tmp.begin(), tmp.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::size_t k = 0; k < len; ++k) {
      col_idx[static_cast<std::size_t>(lo) + k] = tmp[k].first;
      values[static_cast<std::size_t>(lo) + k] = tmp[k].second;
    }
  });
}

Csr Csr::from_segments(index_t nrows, index_t ncols,
                       ArraySegment<offset_t> row_ptr,
                       ArraySegment<index_t> col_idx,
                       ArraySegment<value_t> values, bool deep_validate) {
  if (nrows < 0 || ncols < 0 ||
      row_ptr.size() != static_cast<std::size_t>(nrows) + 1)
    throw Error("csr segments: inconsistent dimensions");
  if (row_ptr.front() != 0 ||
      row_ptr.back() != static_cast<offset_t>(col_idx.size()) ||
      col_idx.size() != values.size())
    throw Error("csr segments: array lengths do not match row pointers");
  // Monotone row pointers bound every row's span inside col_idx/values, so
  // this O(nrows) scan is what makes skipping the O(nnz) checks safe for the
  // matrix's OWN arrays (column values are only range-checked when
  // deep_validate is set — see serve/snapshot.hpp on trust).
  for (std::size_t r = 0; r + 1 < row_ptr.size(); ++r)
    if (row_ptr[r] > row_ptr[r + 1])
      throw Error("csr segments: row pointers are not non-decreasing");
  Csr a;
  a.nrows_ = nrows;
  a.ncols_ = ncols;
  a.row_ptr_ = std::move(row_ptr);
  a.col_idx_ = std::move(col_idx);
  a.values_ = std::move(values);
  if (deep_validate) a.validate();
  return a;
}

Csr Csr::from_coo(const Coo& coo_in) {
  Coo coo = coo_in;  // sum_duplicates mutates
  coo.sum_duplicates();
  const index_t nrows = coo.nrows();
  std::vector<offset_t> counts(static_cast<std::size_t>(nrows), 0);
  for (index_t r : coo.rows()) counts[static_cast<std::size_t>(r)]++;
  std::vector<offset_t> row_ptr = counts_to_pointers(counts);
  // coo is sorted by (row, col) after sum_duplicates, so a straight copy works.
  std::vector<index_t> col_idx(coo.cols());
  std::vector<value_t> values(coo.values());
  return Csr(nrows, coo.ncols(), std::move(row_ptr), std::move(col_idx),
             std::move(values));
}

Csr Csr::identity(index_t n) {
  std::vector<offset_t> row_ptr(static_cast<std::size_t>(n) + 1);
  std::iota(row_ptr.begin(), row_ptr.end(), offset_t{0});
  std::vector<index_t> col_idx(static_cast<std::size_t>(n));
  std::iota(col_idx.begin(), col_idx.end(), index_t{0});
  std::vector<value_t> values(static_cast<std::size_t>(n), 1.0);
  return Csr(n, n, std::move(row_ptr), std::move(col_idx), std::move(values));
}

Csr Csr::transpose() const {
  std::vector<offset_t> counts(static_cast<std::size_t>(ncols_), 0);
  for (index_t c : col_idx_) counts[static_cast<std::size_t>(c)]++;
  std::vector<offset_t> t_ptr = counts_to_pointers(counts);
  std::vector<offset_t> cursor(t_ptr.begin(), t_ptr.end() - 1);
  std::vector<index_t> t_col(col_idx_.size());
  std::vector<value_t> t_val(values_.size());
  for (index_t r = 0; r < nrows_; ++r) {
    for (offset_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const auto c = static_cast<std::size_t>(col_idx_[k]);
      const offset_t dst = cursor[c]++;
      t_col[static_cast<std::size_t>(dst)] = r;
      t_val[static_cast<std::size_t>(dst)] = values_[static_cast<std::size_t>(k)];
    }
  }
  // Row-major traversal of A writes each transposed row in increasing
  // original-row order, so rows of Aᵀ come out sorted already.
  return Csr(ncols_, nrows_, std::move(t_ptr), std::move(t_col),
             std::move(t_val));
}

Csr Csr::pattern_ones() const {
  Csr out = *this;
  std::vector<value_t>& vals = out.values_.mutate();
  std::fill(vals.begin(), vals.end(), 1.0);
  return out;
}

Csr Csr::permute_rows(const Permutation& order) const {
  CW_CHECK_MSG(is_permutation(order, nrows_), "invalid row permutation");
  std::vector<offset_t> counts(static_cast<std::size_t>(nrows_));
  for (index_t i = 0; i < nrows_; ++i)
    counts[static_cast<std::size_t>(i)] = row_ptr_[order[i] + 1] - row_ptr_[order[i]];
  std::vector<offset_t> new_ptr = counts_to_pointers(counts);
  std::vector<index_t> new_col(col_idx_.size());
  std::vector<value_t> new_val(values_.size());
  parallel_for(nrows_, [&](index_t i) {
    const index_t src = order[i];
    const offset_t s = row_ptr_[src];
    const offset_t d = new_ptr[i];
    const offset_t len = row_ptr_[src + 1] - s;
    for (offset_t k = 0; k < len; ++k) {
      new_col[static_cast<std::size_t>(d + k)] = col_idx_[static_cast<std::size_t>(s + k)];
      new_val[static_cast<std::size_t>(d + k)] = values_[static_cast<std::size_t>(s + k)];
    }
  });
  return Csr(nrows_, ncols_, std::move(new_ptr), std::move(new_col),
             std::move(new_val));
}

Csr Csr::permute_symmetric(const Permutation& order) const {
  CW_CHECK_MSG(nrows_ == ncols_, "symmetric permutation requires square matrix");
  CW_CHECK_MSG(is_permutation(order, nrows_), "invalid permutation");
  const Permutation inv = invert_permutation(order);
  std::vector<offset_t> counts(static_cast<std::size_t>(nrows_));
  for (index_t i = 0; i < nrows_; ++i)
    counts[static_cast<std::size_t>(i)] = row_ptr_[order[i] + 1] - row_ptr_[order[i]];
  std::vector<offset_t> new_ptr = counts_to_pointers(counts);
  std::vector<index_t> new_col(col_idx_.size());
  std::vector<value_t> new_val(values_.size());
  parallel_for(nrows_, [&](index_t i) {
    const index_t src = order[i];
    offset_t d = new_ptr[i];
    for (offset_t k = row_ptr_[src]; k < row_ptr_[src + 1]; ++k, ++d) {
      new_col[static_cast<std::size_t>(d)] = inv[col_idx_[static_cast<std::size_t>(k)]];
      new_val[static_cast<std::size_t>(d)] = values_[static_cast<std::size_t>(k)];
    }
  });
  // Column labels changed, so rows need re-sorting (the Csr ctor does it).
  return Csr(nrows_, ncols_, std::move(new_ptr), std::move(new_col),
             std::move(new_val));
}

Csr Csr::symmetrized() const {
  CW_CHECK_MSG(nrows_ == ncols_, "symmetrized requires square matrix");
  Coo coo(nrows_, ncols_);
  coo.reserve(2 * nnz());
  for (index_t r = 0; r < nrows_; ++r) {
    for (offset_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      coo.push(r, col_idx_[static_cast<std::size_t>(k)],
               values_[static_cast<std::size_t>(k)]);
    }
  }
  coo.symmetrize();
  return Csr::from_coo(coo);
}

Csr Csr::without_diagonal() const {
  std::vector<offset_t> new_ptr(static_cast<std::size_t>(nrows_) + 1, 0);
  std::vector<index_t> new_col;
  std::vector<value_t> new_val;
  new_col.reserve(col_idx_.size());
  new_val.reserve(values_.size());
  for (index_t r = 0; r < nrows_; ++r) {
    for (offset_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const index_t c = col_idx_[static_cast<std::size_t>(k)];
      if (c == r) continue;
      new_col.push_back(c);
      new_val.push_back(values_[static_cast<std::size_t>(k)]);
    }
    new_ptr[static_cast<std::size_t>(r) + 1] =
        static_cast<offset_t>(new_col.size());
  }
  return Csr(nrows_, ncols_, std::move(new_ptr), std::move(new_col),
             std::move(new_val));
}

index_t Csr::bandwidth() const {
  index_t bw = 0;
  for (index_t r = 0; r < nrows_; ++r) {
    for (offset_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      bw = std::max(bw, std::abs(r - col_idx_[static_cast<std::size_t>(k)]));
    }
  }
  return bw;
}

std::vector<index_t> Csr::row_degrees() const {
  std::vector<index_t> deg(static_cast<std::size_t>(nrows_));
  for (index_t r = 0; r < nrows_; ++r) deg[static_cast<std::size_t>(r)] = row_nnz(r);
  return deg;
}

std::size_t Csr::memory_bytes() const {
  return row_ptr_.size() * sizeof(offset_t) +
         col_idx_.size() * sizeof(index_t) + values_.size() * sizeof(value_t);
}

bool Csr::operator==(const Csr& other) const {
  return nrows_ == other.nrows_ && ncols_ == other.ncols_ &&
         row_ptr_ == other.row_ptr_ && col_idx_ == other.col_idx_ &&
         values_ == other.values_;
}

bool Csr::approx_equal(const Csr& other, double tol) const {
  if (nrows_ != other.nrows_ || ncols_ != other.ncols_) return false;
  if (row_ptr_ != other.row_ptr_ || col_idx_ != other.col_idx_) return false;
  for (std::size_t k = 0; k < values_.size(); ++k) {
    if (std::abs(values_[k] - other.values_[k]) > tol) return false;
  }
  return true;
}

void Csr::validate() const {
  CW_CHECK(nrows_ >= 0 && ncols_ >= 0);
  CW_CHECK(static_cast<index_t>(row_ptr_.size()) == nrows_ + 1);
  CW_CHECK(row_ptr_[0] == 0);
  for (index_t r = 0; r < nrows_; ++r) {
    CW_CHECK_MSG(row_ptr_[r] <= row_ptr_[r + 1], "row_ptr not monotone at row " << r);
    for (offset_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const index_t c = col_idx_[static_cast<std::size_t>(k)];
      CW_CHECK_MSG(c >= 0 && c < ncols_, "column out of range in row " << r);
      if (k > row_ptr_[r]) {
        CW_CHECK_MSG(col_idx_[static_cast<std::size_t>(k - 1)] < c,
                     "row " << r << " not strictly sorted");
      }
    }
  }
  CW_CHECK(static_cast<offset_t>(col_idx_.size()) == row_ptr_[nrows_]);
  CW_CHECK(col_idx_.size() == values_.size());
}

}  // namespace cw
