// CSR_Cluster — the clustered sparse-matrix format of §3.1 of the paper.
//
// Rows are grouped into clusters of *consecutive* rows (any reordering has
// already been applied to the Csr before the format is built). Within a
// cluster the nonzeros are stored column-major:
//
//   * col_idx holds the cluster's *distinct* column ids, sorted ascending;
//   * for each such column there are `cluster_size` value slots, one per row
//     of the cluster, stored contiguously (padding slots are 0.0);
//   * a per-column presence bitmask records which rows actually own a
//     nonzero, so the symbolic phase stays exact — padding never leaks into
//     the output pattern. (The paper calls these "empty (or placeholder)
//     positions" and leaves their encoding unspecified.)
//
// This layout is what lets cluster-wise SpGEMM (Alg. 1) fetch a row of B once
// and apply it to every row of the A-cluster while it is cache-resident.
#pragma once

#include <cstdint>
#include <vector>

#include "common/array_segment.hpp"
#include "common/types.hpp"
#include "matrix/csr.hpp"

namespace cw {

/// A partition of rows 0..nrows-1 into consecutive ranges.
/// Cluster c covers rows [row_start(c), row_start(c+1)).
class Clustering {
 public:
  Clustering() = default;

  /// Build from per-cluster sizes (must sum to nrows, all >= 1).
  static Clustering from_sizes(const std::vector<index_t>& sizes);

  /// One row per cluster (the row-wise baseline expressed as clustering).
  static Clustering singletons(index_t nrows);

  /// Equal-size clusters of `k` rows (last cluster may be shorter) — the
  /// fixed-length scheme of §3.2.
  static Clustering fixed(index_t nrows, index_t k);

  /// Adopt a prebuilt pointer array without copying (snapshot-v3 zero-copy
  /// loading; the segment may borrow from a mapped file). Always validates
  /// the O(num_clusters) invariants: ptr[0] == 0, strictly increasing.
  static Clustering from_ptr(ArraySegment<index_t> ptr);

  /// Copy with every cluster wider than `max_size` split into consecutive
  /// chunks of at most `max_size` rows (row coverage and order unchanged).
  /// This is how callers with externally supplied cluster sizes fit the
  /// 64-row presence-mask / accumulator-lane bound (CsrCluster::build and
  /// ClusterAccumulator::configure both reject oversized clusters).
  [[nodiscard]] Clustering split(index_t max_size) const;

  [[nodiscard]] index_t num_clusters() const {
    return static_cast<index_t>(ptr_.size()) - 1;
  }
  [[nodiscard]] index_t nrows() const { return ptr_.empty() ? 0 : ptr_.back(); }
  [[nodiscard]] index_t row_start(index_t c) const { return ptr_[c]; }
  [[nodiscard]] index_t size(index_t c) const { return ptr_[c + 1] - ptr_[c]; }
  [[nodiscard]] index_t max_size() const;
  [[nodiscard]] const ArraySegment<index_t>& ptr() const { return ptr_; }

  /// Cluster sizes array (the cluster-sz array of Fig. 6(b)).
  [[nodiscard]] std::vector<index_t> sizes() const;

  void validate(index_t expected_nrows) const;

 private:
  ArraySegment<index_t> ptr_{0};  // size num_clusters()+1, ptr_[0] == 0
};

/// The clustered matrix. Build once per (matrix, clustering); reuse across
/// many SpGEMM invocations (the amortization scenario of §4.5).
class CsrCluster {
 public:
  /// Maximum supported rows per cluster (presence masks are 64-bit).
  static constexpr index_t kMaxClusterSize = 64;

  CsrCluster() = default;

  /// Build from a CSR matrix whose rows are already in cluster order.
  static CsrCluster build(const Csr& a, const Clustering& clustering);

  /// Reassemble from previously built raw arrays (snapshot loading). The
  /// parts must describe a format that CsrCluster::build could have produced;
  /// validate() is run on the result.
  static CsrCluster from_parts(index_t nrows, index_t ncols, offset_t nnz,
                               Clustering clustering,
                               std::vector<offset_t> cluster_ptr,
                               std::vector<offset_t> value_ptr,
                               std::vector<index_t> col_idx,
                               std::vector<std::uint64_t> row_mask,
                               std::vector<value_t> values);

  /// Adopt prebuilt storage without copying (snapshot-v3 zero-copy loading;
  /// segments may borrow from a mapped file). The O(num_clusters) pointer
  /// invariants (coverage of the data arrays, value slots == distinct
  /// columns × cluster size) are always enforced so kernels cannot index out
  /// of this format's own arrays; `deep_validate` additionally runs the full
  /// O(slots) validate() (column range/sortedness, mask popcounts).
  static CsrCluster from_segments(index_t nrows, index_t ncols, offset_t nnz,
                                  Clustering clustering,
                                  ArraySegment<offset_t> cluster_ptr,
                                  ArraySegment<offset_t> value_ptr,
                                  ArraySegment<index_t> col_idx,
                                  ArraySegment<std::uint64_t> row_mask,
                                  ArraySegment<value_t> values,
                                  bool deep_validate);

  [[nodiscard]] index_t nrows() const { return nrows_; }
  [[nodiscard]] index_t ncols() const { return ncols_; }
  [[nodiscard]] index_t num_clusters() const { return clustering_.num_clusters(); }
  [[nodiscard]] const Clustering& clustering() const { return clustering_; }

  /// Number of stored nonzeros of the underlying matrix (excludes padding).
  [[nodiscard]] offset_t nnz() const { return nnz_; }

  /// Total value slots including padding; padding ratio = slots / nnz.
  [[nodiscard]] offset_t value_slots() const {
    return static_cast<offset_t>(values_.size());
  }

  // --- raw arrays for the kernel ------------------------------------------
  [[nodiscard]] const ArraySegment<offset_t>& cluster_ptr() const { return cluster_ptr_; }
  [[nodiscard]] const ArraySegment<offset_t>& value_ptr() const { return value_ptr_; }
  [[nodiscard]] const ArraySegment<index_t>& col_idx() const { return col_idx_; }
  [[nodiscard]] const ArraySegment<std::uint64_t>& row_mask() const { return row_mask_; }
  [[nodiscard]] const ArraySegment<value_t>& values() const { return values_; }

  /// Distinct columns of cluster c. Like Csr::row_nnz, the cast cannot
  /// narrow for a valid format (a cluster has at most ncols_ distinct
  /// columns); the debug check catches corrupted pointers.
  [[nodiscard]] index_t cluster_ncols(index_t c) const {
    const offset_t d = cluster_ptr_[c + 1] - cluster_ptr_[c];
    CW_DCHECK(d >= 0 && d <= static_cast<offset_t>(ncols_));
    return static_cast<index_t>(d);
  }

  /// Reconstruct the CSR matrix (test/debug path; exact round trip).
  [[nodiscard]] Csr to_csr() const;

  /// Bytes of the format for the Fig. 11 memory comparison. Presence masks
  /// are accounted at the bit-packed width a production build would use for
  /// this cluster-size bound (1 byte for <=8 rows — the paper's setting).
  [[nodiscard]] std::size_t memory_bytes() const;

  void validate() const;

 private:
  index_t nrows_ = 0, ncols_ = 0;
  offset_t nnz_ = 0;
  Clustering clustering_;
  ArraySegment<offset_t> cluster_ptr_;  // per cluster: offset into col_idx_/row_mask_
  ArraySegment<offset_t> value_ptr_;    // per cluster: offset into values_
  ArraySegment<index_t> col_idx_;       // distinct columns per cluster, sorted
  ArraySegment<std::uint64_t> row_mask_;  // bit r => row (start+r) present
  ArraySegment<value_t> values_;        // column-major inside a cluster
};

}  // namespace cw
