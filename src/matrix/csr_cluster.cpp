#include "matrix/csr_cluster.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/prefix_sum.hpp"

namespace cw {

// ---------------------------------------------------------------------------
// Clustering
// ---------------------------------------------------------------------------

Clustering Clustering::from_sizes(const std::vector<index_t>& sizes) {
  std::vector<index_t> ptr(sizes.size() + 1);
  ptr[0] = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    CW_CHECK_MSG(sizes[i] >= 1, "cluster size must be >= 1");
    ptr[i + 1] = ptr[i] + sizes[i];
  }
  Clustering c;
  c.ptr_ = std::move(ptr);
  return c;
}

Clustering Clustering::singletons(index_t nrows) {
  std::vector<index_t> ptr(static_cast<std::size_t>(nrows) + 1);
  for (index_t i = 0; i <= nrows; ++i) ptr[static_cast<std::size_t>(i)] = i;
  Clustering c;
  c.ptr_ = std::move(ptr);
  return c;
}

Clustering Clustering::fixed(index_t nrows, index_t k) {
  CW_CHECK(k >= 1);
  std::vector<index_t> ptr;
  for (index_t start = 0; start < nrows; start += k) ptr.push_back(start);
  ptr.push_back(nrows);
  if (nrows == 0) ptr = {0};
  Clustering c;
  c.ptr_ = std::move(ptr);
  return c;
}

Clustering Clustering::from_ptr(ArraySegment<index_t> ptr) {
  if (ptr.empty() || ptr.front() != 0)
    throw Error("clustering segment: malformed pointer array");
  for (std::size_t i = 1; i < ptr.size(); ++i)
    if (ptr[i] <= ptr[i - 1])
      throw Error("clustering segment: pointers not strictly increasing");
  Clustering c;
  c.ptr_ = std::move(ptr);
  return c;
}

Clustering Clustering::split(index_t max_size) const {
  CW_CHECK(max_size >= 1);
  std::vector<index_t> ptr;
  ptr.reserve(ptr_.size());
  ptr.push_back(0);
  for (index_t c = 0; c < num_clusters(); ++c) {
    for (index_t start = row_start(c) + max_size; start < row_start(c + 1);
         start += max_size)
      ptr.push_back(start);
    ptr.push_back(row_start(c + 1));
  }
  Clustering out;
  out.ptr_ = std::move(ptr);
  return out;
}

index_t Clustering::max_size() const {
  index_t m = 0;
  for (index_t c = 0; c < num_clusters(); ++c) m = std::max(m, size(c));
  return m;
}

std::vector<index_t> Clustering::sizes() const {
  std::vector<index_t> s(static_cast<std::size_t>(num_clusters()));
  for (index_t c = 0; c < num_clusters(); ++c) s[static_cast<std::size_t>(c)] = size(c);
  return s;
}

void Clustering::validate(index_t expected_nrows) const {
  CW_CHECK(!ptr_.empty() && ptr_[0] == 0);
  for (std::size_t i = 1; i < ptr_.size(); ++i)
    CW_CHECK_MSG(ptr_[i] > ptr_[i - 1], "empty cluster at index " << (i - 1));
  CW_CHECK_MSG(ptr_.back() == expected_nrows,
               "clustering covers " << ptr_.back() << " rows, expected "
                                    << expected_nrows);
}

// ---------------------------------------------------------------------------
// CsrCluster
// ---------------------------------------------------------------------------

namespace {

/// K-way merge over the sorted rows of one cluster. Calls
/// `emit(col, mask)` once per distinct column, in ascending column order,
/// where bit r of `mask` is set iff row (row_start + r) holds `col`.
template <typename Emit>
void merge_cluster_columns(const Csr& a, index_t row_start, index_t k,
                           Emit&& emit) {
  constexpr index_t kInf = std::numeric_limits<index_t>::max();
  offset_t cursor[CsrCluster::kMaxClusterSize];
  offset_t row_end[CsrCluster::kMaxClusterSize];
  for (index_t r = 0; r < k; ++r) {
    cursor[r] = a.row_ptr()[row_start + r];
    row_end[r] = a.row_ptr()[row_start + r + 1];
  }
  for (;;) {
    index_t min_col = kInf;
    for (index_t r = 0; r < k; ++r) {
      if (cursor[r] < row_end[r])
        min_col = std::min(min_col, a.col_idx()[static_cast<std::size_t>(cursor[r])]);
    }
    if (min_col == kInf) break;
    std::uint64_t mask = 0;
    for (index_t r = 0; r < k; ++r) {
      if (cursor[r] < row_end[r] &&
          a.col_idx()[static_cast<std::size_t>(cursor[r])] == min_col) {
        mask |= std::uint64_t{1} << r;
        ++cursor[r];
      }
    }
    emit(min_col, mask);
  }
}

}  // namespace

CsrCluster CsrCluster::from_parts(index_t nrows, index_t ncols, offset_t nnz,
                                  Clustering clustering,
                                  std::vector<offset_t> cluster_ptr,
                                  std::vector<offset_t> value_ptr,
                                  std::vector<index_t> col_idx,
                                  std::vector<std::uint64_t> row_mask,
                                  std::vector<value_t> values) {
  return from_segments(nrows, ncols, nnz, std::move(clustering),
                       std::move(cluster_ptr), std::move(value_ptr),
                       std::move(col_idx), std::move(row_mask),
                       std::move(values), /*deep_validate=*/true);
}

CsrCluster CsrCluster::from_segments(index_t nrows, index_t ncols, offset_t nnz,
                                     Clustering clustering,
                                     ArraySegment<offset_t> cluster_ptr,
                                     ArraySegment<offset_t> value_ptr,
                                     ArraySegment<index_t> col_idx,
                                     ArraySegment<std::uint64_t> row_mask,
                                     ArraySegment<value_t> values,
                                     bool deep_validate) {
  CW_CHECK_MSG(clustering.max_size() <= kMaxClusterSize,
               "cluster size exceeds kMaxClusterSize");
  CW_CHECK(col_idx.size() == row_mask.size());
  // Bounds-check the pointer arrays against the data arrays BEFORE anything
  // dereferences through them: the kernels (and validate() itself) index
  // col_idx/row_mask/values by raw cluster_ptr/value_ptr entries, so
  // untrusted (snapshot-loaded) offsets must be proven in range first. The
  // per-cluster slot equation pins every pointer exactly, which is why these
  // O(num_clusters) checks suffice to make the O(slots) ones optional.
  const index_t ncl = clustering.num_clusters();
  CW_CHECK_MSG(clustering.nrows() == nrows,
               "from_parts: clustering covers " << clustering.nrows()
                                                << " rows, expected " << nrows);
  CW_CHECK_MSG(cluster_ptr.size() == static_cast<std::size_t>(ncl) + 1 &&
                   value_ptr.size() == static_cast<std::size_t>(ncl) + 1,
               "from_parts: pointer array length mismatch");
  CW_CHECK_MSG(cluster_ptr.front() == 0 && value_ptr.front() == 0,
               "from_parts: pointer arrays must start at 0");
  CW_CHECK_MSG(cluster_ptr.back() == static_cast<offset_t>(col_idx.size()) &&
                   value_ptr.back() == static_cast<offset_t>(values.size()),
               "from_parts: pointer arrays do not cover the data arrays");
  for (index_t c = 0; c < ncl; ++c) {
    const offset_t ncols_c = cluster_ptr[static_cast<std::size_t>(c) + 1] -
                             cluster_ptr[static_cast<std::size_t>(c)];
    CW_CHECK_MSG(ncols_c >= 0, "from_parts: pointer arrays are not non-decreasing");
    CW_CHECK_MSG(value_ptr[static_cast<std::size_t>(c) + 1] -
                         value_ptr[static_cast<std::size_t>(c)] ==
                     ncols_c * clustering.size(c),
                 "from_parts: value slots do not match distinct columns × "
                 "cluster size");
  }
  CsrCluster out;
  out.nrows_ = nrows;
  out.ncols_ = ncols;
  out.nnz_ = nnz;
  out.clustering_ = std::move(clustering);
  out.cluster_ptr_ = std::move(cluster_ptr);
  out.value_ptr_ = std::move(value_ptr);
  out.col_idx_ = std::move(col_idx);
  out.row_mask_ = std::move(row_mask);
  out.values_ = std::move(values);
  if (deep_validate) out.validate();
  return out;
}

CsrCluster CsrCluster::build(const Csr& a, const Clustering& clustering) {
  clustering.validate(a.nrows());
  CW_CHECK_MSG(clustering.max_size() <= kMaxClusterSize,
               "cluster size exceeds kMaxClusterSize");
  CsrCluster out;
  out.nrows_ = a.nrows();
  out.ncols_ = a.ncols();
  out.nnz_ = a.nnz();
  out.clustering_ = clustering;

  const index_t ncl = clustering.num_clusters();

  // Pass 1: distinct-column count per cluster.
  std::vector<offset_t> col_counts(static_cast<std::size_t>(ncl), 0);
  parallel_for(ncl, [&](index_t c) {
    offset_t count = 0;
    merge_cluster_columns(a, clustering.row_start(c), clustering.size(c),
                          [&](index_t, std::uint64_t) { ++count; });
    col_counts[static_cast<std::size_t>(c)] = count;
  });

  std::vector<offset_t> cluster_ptr = counts_to_pointers(col_counts);
  // Value slots per cluster = distinct columns × cluster size.
  std::vector<offset_t> slot_counts(static_cast<std::size_t>(ncl));
  for (index_t c = 0; c < ncl; ++c)
    slot_counts[static_cast<std::size_t>(c)] =
        col_counts[static_cast<std::size_t>(c)] * clustering.size(c);
  std::vector<offset_t> value_ptr = counts_to_pointers(slot_counts);

  std::vector<index_t> col_idx(static_cast<std::size_t>(cluster_ptr.back()));
  std::vector<std::uint64_t> row_mask(static_cast<std::size_t>(cluster_ptr.back()));
  std::vector<value_t> values(static_cast<std::size_t>(value_ptr.back()), 0.0);

  // Pass 2: fill columns, masks and (column-major) values.
  parallel_for(ncl, [&](index_t c) {
    const index_t row_start = clustering.row_start(c);
    const index_t k = clustering.size(c);
    offset_t col_off = cluster_ptr[static_cast<std::size_t>(c)];
    offset_t val_off = value_ptr[static_cast<std::size_t>(c)];
    // Per-row cursors advance in lockstep with the merge (rows are sorted, and
    // the merge emits columns in ascending order).
    offset_t cursor[kMaxClusterSize];
    for (index_t r = 0; r < k; ++r) cursor[r] = a.row_ptr()[row_start + r];
    merge_cluster_columns(a, row_start, k, [&](index_t col, std::uint64_t mask) {
      col_idx[static_cast<std::size_t>(col_off)] = col;
      row_mask[static_cast<std::size_t>(col_off)] = mask;
      for (index_t r = 0; r < k; ++r) {
        if (mask & (std::uint64_t{1} << r)) {
          values[static_cast<std::size_t>(val_off + r)] =
              a.values()[static_cast<std::size_t>(cursor[r]++)];
        }
      }
      ++col_off;
      val_off += k;
    });
  });

  out.cluster_ptr_ = std::move(cluster_ptr);
  out.value_ptr_ = std::move(value_ptr);
  out.col_idx_ = std::move(col_idx);
  out.row_mask_ = std::move(row_mask);
  out.values_ = std::move(values);

#ifndef NDEBUG
  out.validate();
#endif
  return out;
}

Csr CsrCluster::to_csr() const {
  const index_t ncl = num_clusters();
  std::vector<offset_t> counts(static_cast<std::size_t>(nrows_), 0);
  for (index_t c = 0; c < ncl; ++c) {
    const index_t row_start = clustering_.row_start(c);
    const index_t k = clustering_.size(c);
    for (offset_t t = cluster_ptr_[static_cast<std::size_t>(c)];
         t < cluster_ptr_[static_cast<std::size_t>(c) + 1]; ++t) {
      const std::uint64_t mask = row_mask_[static_cast<std::size_t>(t)];
      for (index_t r = 0; r < k; ++r) {
        if (mask & (std::uint64_t{1} << r)) ++counts[static_cast<std::size_t>(row_start + r)];
      }
    }
  }
  std::vector<offset_t> row_ptr = counts_to_pointers(counts);
  std::vector<offset_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
  std::vector<index_t> col_idx(static_cast<std::size_t>(row_ptr.back()));
  std::vector<value_t> values(static_cast<std::size_t>(row_ptr.back()));
  for (index_t c = 0; c < ncl; ++c) {
    const index_t row_start = clustering_.row_start(c);
    const index_t k = clustering_.size(c);
    offset_t val_off = value_ptr_[static_cast<std::size_t>(c)];
    for (offset_t t = cluster_ptr_[static_cast<std::size_t>(c)];
         t < cluster_ptr_[static_cast<std::size_t>(c) + 1]; ++t, val_off += k) {
      const index_t col = col_idx_[static_cast<std::size_t>(t)];
      const std::uint64_t mask = row_mask_[static_cast<std::size_t>(t)];
      for (index_t r = 0; r < k; ++r) {
        if (mask & (std::uint64_t{1} << r)) {
          const offset_t dst = cursor[static_cast<std::size_t>(row_start + r)]++;
          col_idx[static_cast<std::size_t>(dst)] = col;
          values[static_cast<std::size_t>(dst)] =
              values_[static_cast<std::size_t>(val_off + r)];
        }
      }
    }
  }
  // Columns are emitted in ascending order per cluster, hence per row.
  return Csr(nrows_, ncols_, std::move(row_ptr), std::move(col_idx),
             std::move(values));
}

std::size_t CsrCluster::memory_bytes() const {
  const index_t k = clustering_.max_size();
  // Width a bit-packed production mask would need for this cluster bound.
  std::size_t mask_bytes = k <= 8 ? 1 : k <= 16 ? 2 : k <= 32 ? 4 : 8;
  std::size_t bytes = 0;
  bytes += cluster_ptr_.size() * sizeof(offset_t);
  bytes += value_ptr_.size() * sizeof(offset_t);
  bytes += clustering_.ptr().size() * sizeof(index_t);  // cluster-sz array
  bytes += col_idx_.size() * sizeof(index_t);
  bytes += col_idx_.size() * mask_bytes;
  bytes += values_.size() * sizeof(value_t);
  return bytes;
}

void CsrCluster::validate() const {
  clustering_.validate(nrows_);
  const index_t ncl = num_clusters();
  CW_CHECK(static_cast<index_t>(cluster_ptr_.size()) == ncl + 1);
  CW_CHECK(static_cast<index_t>(value_ptr_.size()) == ncl + 1);
  CW_CHECK(cluster_ptr_[0] == 0 && value_ptr_[0] == 0);
  offset_t nnz_seen = 0;
  for (index_t c = 0; c < ncl; ++c) {
    const index_t k = clustering_.size(c);
    const offset_t ncols_c = cluster_ptr_[static_cast<std::size_t>(c) + 1] -
                             cluster_ptr_[static_cast<std::size_t>(c)];
    CW_CHECK(value_ptr_[static_cast<std::size_t>(c) + 1] -
                 value_ptr_[static_cast<std::size_t>(c)] ==
             ncols_c * k);
    for (offset_t t = cluster_ptr_[static_cast<std::size_t>(c)];
         t < cluster_ptr_[static_cast<std::size_t>(c) + 1]; ++t) {
      const index_t col = col_idx_[static_cast<std::size_t>(t)];
      CW_CHECK(col >= 0 && col < ncols_);
      if (t > cluster_ptr_[static_cast<std::size_t>(c)]) {
        CW_CHECK_MSG(col_idx_[static_cast<std::size_t>(t - 1)] < col,
                     "cluster " << c << " columns not strictly sorted");
      }
      const std::uint64_t mask = row_mask_[static_cast<std::size_t>(t)];
      CW_CHECK_MSG(mask != 0, "empty presence mask in cluster " << c);
      CW_CHECK_MSG(k == 64 || (mask >> k) == 0,
                   "mask has bits beyond cluster size in cluster " << c);
      nnz_seen += __builtin_popcountll(mask);
    }
  }
  CW_CHECK_MSG(nnz_seen == nnz_, "mask popcount " << nnz_seen
                                                  << " != nnz " << nnz_);
}

}  // namespace cw
