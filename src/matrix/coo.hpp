// Coordinate-format sparse matrix: the assembly format every generator and
// file reader produces before conversion to CSR.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace cw {

/// Unsorted triplet matrix. Duplicate (row, col) entries are allowed until
/// sum_duplicates() is called; to_csr() handles both cases.
class Coo {
 public:
  Coo() = default;
  Coo(index_t nrows, index_t ncols) : nrows_(nrows), ncols_(ncols) {}

  [[nodiscard]] index_t nrows() const { return nrows_; }
  [[nodiscard]] index_t ncols() const { return ncols_; }
  [[nodiscard]] offset_t nnz() const { return static_cast<offset_t>(rows_.size()); }

  /// Append one entry. Bounds are validated.
  void push(index_t r, index_t c, value_t v);

  /// Reserve space for n entries.
  void reserve(offset_t n);

  /// Sort entries by (row, col). Stable with respect to duplicates.
  void sort();

  /// Sort and merge duplicate coordinates by adding their values.
  void sum_duplicates();

  /// Make the pattern symmetric: for every (r,c) ensure (c,r) exists
  /// (values mirrored). Requires a square matrix. Duplicates are summed.
  void symmetrize();

  [[nodiscard]] const std::vector<index_t>& rows() const { return rows_; }
  [[nodiscard]] const std::vector<index_t>& cols() const { return cols_; }
  [[nodiscard]] const std::vector<value_t>& values() const { return vals_; }

 private:
  index_t nrows_ = 0, ncols_ = 0;
  std::vector<index_t> rows_, cols_;
  std::vector<value_t> vals_;
};

}  // namespace cw
