#include "graph/peripheral.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "graph/bfs.hpp"

namespace cw {

index_t pseudo_peripheral_node(const Csr& g, index_t seed) {
  CW_CHECK(seed >= 0 && seed < g.nrows());
  index_t current = seed;
  index_t ecc = -1;
  for (int iter = 0; iter < 16; ++iter) {  // converges in a few rounds
    BfsFrontierInfo info = bfs_frontier_info(g, current);
    if (info.eccentricity <= ecc) break;
    ecc = info.eccentricity;
    // Minimum-degree vertex of the last level.
    index_t best = current;
    index_t best_deg = g.nrows() + 1;
    for (index_t v : info.last_level) {
      const index_t d = g.row_nnz(v);
      if (d < best_deg || (d == best_deg && v < best)) {
        best_deg = d;
        best = v;
      }
    }
    current = best;
  }
  return current;
}

}  // namespace cw
