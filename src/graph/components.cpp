#include "graph/components.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cw {

index_t Components::giant() const {
  CW_CHECK(count > 0);
  return static_cast<index_t>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
}

Components connected_components(const Csr& g) {
  Components out;
  const index_t n = g.nrows();
  out.comp.assign(static_cast<std::size_t>(n), kInvalidIndex);
  std::vector<index_t> stack;
  for (index_t s = 0; s < n; ++s) {
    if (out.comp[static_cast<std::size_t>(s)] != kInvalidIndex) continue;
    const index_t id = out.count++;
    index_t size = 0;
    stack.push_back(s);
    out.comp[static_cast<std::size_t>(s)] = id;
    while (!stack.empty()) {
      const index_t u = stack.back();
      stack.pop_back();
      ++size;
      for (index_t v : g.row_cols(u)) {
        if (out.comp[static_cast<std::size_t>(v)] == kInvalidIndex) {
          out.comp[static_cast<std::size_t>(v)] = id;
          stack.push_back(v);
        }
      }
    }
    out.sizes.push_back(size);
  }
  return out;
}

}  // namespace cw
