#include "graph/community.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/error.hpp"
#include "matrix/coo.hpp"

namespace cw {

AggregationLevel aggregate_communities(const Csr& g,
                                       const std::vector<index_t>& volume) {
  const index_t n = g.nrows();
  CW_CHECK(static_cast<index_t>(volume.size()) == n);

  // Total edge weight ×2 (each undirected edge counted from both rows).
  double two_m = 0;
  for (value_t v : g.values()) two_m += v;
  if (two_m <= 0) two_m = 1;

  // Community state: initially singleton per vertex.
  std::vector<index_t> comm(static_cast<std::size_t>(n));
  std::iota(comm.begin(), comm.end(), index_t{0});
  std::vector<double> comm_vol(static_cast<std::size_t>(n));
  for (index_t v = 0; v < n; ++v)
    comm_vol[static_cast<std::size_t>(v)] = static_cast<double>(volume[static_cast<std::size_t>(v)]);

  // Scan vertices by increasing degree (rabbit's heuristic: absorb leaves
  // into hubs first).
  std::vector<index_t> scan(static_cast<std::size_t>(n));
  std::iota(scan.begin(), scan.end(), index_t{0});
  std::sort(scan.begin(), scan.end(), [&](index_t a, index_t b) {
    const index_t da = g.row_nnz(a), db = g.row_nnz(b);
    if (da != db) return da < db;
    return a < b;
  });

  std::unordered_map<index_t, double> weight_to;
  for (index_t u : scan) {
    weight_to.clear();
    auto cols = g.row_cols(u);
    auto vals = g.row_vals(u);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const index_t cv = comm[static_cast<std::size_t>(cols[k])];
      if (cols[k] == u) continue;
      weight_to[cv] += vals[k];
    }
    const index_t cu = comm[static_cast<std::size_t>(u)];
    const double vol_u = static_cast<double>(volume[static_cast<std::size_t>(u)]);
    double best_gain = 0.0;
    index_t best_comm = cu;
    for (const auto& [cv, w] : weight_to) {
      if (cv == cu) continue;
      // Modularity gain of moving u into cv (singleton-leaning approximation:
      // u's internal weight within cu is ignored, which is exact while cu is
      // still {u} — the common case in degree order).
      const double gain = w / two_m - vol_u * comm_vol[static_cast<std::size_t>(cv)] / (two_m * two_m) * 2.0;
      if (gain > best_gain + 1e-15) {
        best_gain = gain;
        best_comm = cv;
      }
    }
    if (best_comm != cu) {
      comm_vol[static_cast<std::size_t>(cu)] -= vol_u;
      comm_vol[static_cast<std::size_t>(best_comm)] += vol_u;
      comm[static_cast<std::size_t>(u)] = best_comm;
    }
  }

  // Compact community ids.
  AggregationLevel out;
  out.community.assign(static_cast<std::size_t>(n), kInvalidIndex);
  std::vector<index_t> remap(static_cast<std::size_t>(n), kInvalidIndex);
  for (index_t v = 0; v < n; ++v) {
    const index_t c = comm[static_cast<std::size_t>(v)];
    if (remap[static_cast<std::size_t>(c)] == kInvalidIndex)
      remap[static_cast<std::size_t>(c)] = out.num_communities++;
    out.community[static_cast<std::size_t>(v)] = remap[static_cast<std::size_t>(c)];
  }

  // Coarse graph + folded volumes.
  Coo coarse(out.num_communities, out.num_communities);
  out.volume.assign(static_cast<std::size_t>(out.num_communities), 0);
  for (index_t v = 0; v < n; ++v) {
    const index_t cv = out.community[static_cast<std::size_t>(v)];
    out.volume[static_cast<std::size_t>(cv)] += volume[static_cast<std::size_t>(v)];
    auto cols = g.row_cols(v);
    auto vals = g.row_vals(v);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const index_t cu = out.community[static_cast<std::size_t>(cols[k])];
      coarse.push(cv, cu, vals[k]);
    }
  }
  out.coarse = Csr::from_coo(coarse);
  return out;
}

double modularity(const Csr& g, const std::vector<index_t>& community) {
  CW_CHECK(static_cast<index_t>(community.size()) == g.nrows());
  double two_m = 0;
  for (value_t v : g.values()) two_m += v;
  if (two_m <= 0) return 0.0;
  index_t ncomm = 0;
  for (index_t c : community) ncomm = std::max(ncomm, c + 1);
  std::vector<double> internal(static_cast<std::size_t>(ncomm), 0.0);
  std::vector<double> total(static_cast<std::size_t>(ncomm), 0.0);
  for (index_t u = 0; u < g.nrows(); ++u) {
    auto cols = g.row_cols(u);
    auto vals = g.row_vals(u);
    const index_t cu = community[static_cast<std::size_t>(u)];
    for (std::size_t k = 0; k < cols.size(); ++k) {
      total[static_cast<std::size_t>(cu)] += vals[k];
      if (community[static_cast<std::size_t>(cols[k])] == cu)
        internal[static_cast<std::size_t>(cu)] += vals[k];
    }
  }
  double q = 0.0;
  for (index_t c = 0; c < ncomm; ++c) {
    q += internal[static_cast<std::size_t>(c)] / two_m -
         (total[static_cast<std::size_t>(c)] / two_m) *
             (total[static_cast<std::size_t>(c)] / two_m);
  }
  return q;
}

}  // namespace cw
