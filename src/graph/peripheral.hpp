// George–Liu pseudo-peripheral node finder — the standard RCM starting
// point.
#pragma once

#include "matrix/csr.hpp"

namespace cw {

/// Starting from `seed`, repeatedly BFS to a minimum-degree vertex of the
/// last level until the eccentricity stops growing.
index_t pseudo_peripheral_node(const Csr& g, index_t seed);

}  // namespace cw
