// Connected components of a symmetric CSR pattern.
#pragma once

#include <vector>

#include "matrix/csr.hpp"

namespace cw {

struct Components {
  std::vector<index_t> comp;  // component id per vertex, 0..count-1
  index_t count = 0;
  /// Vertex count of every component.
  std::vector<index_t> sizes;
  /// Id of a largest component.
  [[nodiscard]] index_t giant() const;
};

Components connected_components(const Csr& g);

}  // namespace cw
