#include "graph/frontier.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "matrix/coo.hpp"

namespace cw {

std::vector<Csr> bc_frontiers(const Csr& g, const FrontierOptions& opt) {
  CW_CHECK(g.nrows() == g.ncols());
  CW_CHECK(opt.batch >= 1 && opt.num_frontiers >= 1);
  const index_t n = g.nrows();

  // Sample distinct sources with nonzero degree.
  std::vector<index_t> candidates;
  candidates.reserve(static_cast<std::size_t>(n));
  for (index_t v = 0; v < n; ++v)
    if (g.row_nnz(v) > 0) candidates.push_back(v);
  CW_CHECK_MSG(!candidates.empty(), "graph has no edges");
  Rng rng(opt.seed);
  shuffle(candidates, rng);
  const index_t batch =
      std::min<index_t>(opt.batch, static_cast<index_t>(candidates.size()));
  candidates.resize(static_cast<std::size_t>(batch));

  // Per-frontier COO assembly.
  std::vector<Coo> frontier_coo;
  frontier_coo.reserve(static_cast<std::size_t>(opt.num_frontiers));
  for (index_t i = 0; i < opt.num_frontiers; ++i)
    frontier_coo.emplace_back(n, batch);

  std::vector<index_t> level(static_cast<std::size_t>(n));
  std::vector<double> sigma(static_cast<std::size_t>(n));
  for (index_t s = 0; s < batch; ++s) {
    std::fill(level.begin(), level.end(), kInvalidIndex);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    const index_t src = candidates[static_cast<std::size_t>(s)];
    level[static_cast<std::size_t>(src)] = 0;
    sigma[static_cast<std::size_t>(src)] = 1.0;
    std::vector<index_t> frontier{src}, next;
    index_t depth = 0;
    while (!frontier.empty() && depth < opt.num_frontiers) {
      ++depth;
      next.clear();
      for (index_t u : frontier) {
        for (index_t v : g.row_cols(u)) {
          if (level[static_cast<std::size_t>(v)] == kInvalidIndex) {
            level[static_cast<std::size_t>(v)] = depth;
            next.push_back(v);
          }
          if (level[static_cast<std::size_t>(v)] == depth) {
            sigma[static_cast<std::size_t>(v)] += sigma[static_cast<std::size_t>(u)];
          }
        }
      }
      // Frontier matrix i (1-based) records this BFS's level-i vertices.
      for (index_t v : next)
        frontier_coo[static_cast<std::size_t>(depth - 1)].push(
            v, s, sigma[static_cast<std::size_t>(v)]);
      frontier.swap(next);
    }
  }

  std::vector<Csr> out;
  out.reserve(frontier_coo.size());
  for (auto& coo : frontier_coo) out.push_back(Csr::from_coo(coo));
  return out;
}

}  // namespace cw
