// Modularity-driven community aggregation — one level of the hierarchical
// merging that Rabbit Order (Arai et al., IPDPS'16) performs. reorder/rabbit
// runs this level-by-level and orders vertices by DFS over the merge tree.
#pragma once

#include <vector>

#include "matrix/csr.hpp"

namespace cw {

struct AggregationLevel {
  /// community[v] = coarse vertex id of v, 0..num_communities-1.
  std::vector<index_t> community;
  index_t num_communities = 0;
  /// Coarse graph: community adjacency with summed edge weights.
  Csr coarse;
  /// Total vertex weight folded into each community.
  std::vector<index_t> volume;
};

/// One pass of greedy modularity aggregation: every vertex (scanned in
/// increasing degree order) joins the neighbouring community with the best
/// positive modularity gain. Values of `g` are edge weights; `volume[v]` is
/// the degree-volume each vertex carries (1-level: weighted degree).
AggregationLevel aggregate_communities(const Csr& g,
                                       const std::vector<index_t>& volume);

/// Newman modularity of a community assignment on weighted graph g.
double modularity(const Csr& g, const std::vector<index_t>& community);

}  // namespace cw
