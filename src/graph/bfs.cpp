#include "graph/bfs.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cw {

std::vector<index_t> bfs_levels(const Csr& g, index_t src) {
  CW_CHECK(src >= 0 && src < g.nrows());
  std::vector<index_t> level(static_cast<std::size_t>(g.nrows()), kInvalidIndex);
  std::vector<index_t> frontier{src}, next;
  level[static_cast<std::size_t>(src)] = 0;
  index_t depth = 0;
  while (!frontier.empty()) {
    ++depth;
    next.clear();
    for (index_t u : frontier) {
      for (index_t v : g.row_cols(u)) {
        if (level[static_cast<std::size_t>(v)] == kInvalidIndex) {
          level[static_cast<std::size_t>(v)] = depth;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return level;
}

std::vector<index_t> bfs_order(const Csr& g, index_t src, bool sort_by_degree) {
  CW_CHECK(src >= 0 && src < g.nrows());
  std::vector<std::uint8_t> visited(static_cast<std::size_t>(g.nrows()), 0);
  std::vector<index_t> order;
  std::vector<index_t> frontier{src}, next;
  visited[static_cast<std::size_t>(src)] = 1;
  while (!frontier.empty()) {
    order.insert(order.end(), frontier.begin(), frontier.end());
    next.clear();
    for (index_t u : frontier) {
      for (index_t v : g.row_cols(u)) {
        if (!visited[static_cast<std::size_t>(v)]) {
          visited[static_cast<std::size_t>(v)] = 1;
          next.push_back(v);
        }
      }
    }
    if (sort_by_degree) {
      std::sort(next.begin(), next.end(), [&](index_t x, index_t y) {
        const index_t dx = g.row_nnz(x), dy = g.row_nnz(y);
        if (dx != dy) return dx < dy;
        return x < y;
      });
    }
    frontier.swap(next);
  }
  return order;
}

BfsFrontierInfo bfs_frontier_info(const Csr& g, index_t src) {
  const std::vector<index_t> level = bfs_levels(g, src);
  BfsFrontierInfo info;
  for (index_t v = 0; v < g.nrows(); ++v) {
    const index_t l = level[static_cast<std::size_t>(v)];
    if (l == kInvalidIndex) continue;
    ++info.visited;
    info.eccentricity = std::max(info.eccentricity, l);
  }
  for (index_t v = 0; v < g.nrows(); ++v) {
    if (level[static_cast<std::size_t>(v)] == info.eccentricity)
      info.last_level.push_back(v);
  }
  return info;
}

}  // namespace cw
