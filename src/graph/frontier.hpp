// Betweenness-centrality frontier generator — the CombBLAS substitute for
// the §4.4 tall-skinny workload.
//
// BC's forward phase runs a batch of BFSs as repeated SpGEMMs: the square
// matrix is the graph, each column of the tall-skinny B is one BFS frontier,
// and values carry shortest-path counts (σ). We reproduce the series
// directly: per source a level-synchronous BFS with σ accumulation, then
// frontier matrix i holds column s = {(v, σ_s(v)) : level_s(v) == i}.
#pragma once

#include <vector>

#include "matrix/csr.hpp"

namespace cw {

struct FrontierOptions {
  index_t batch = 64;        // number of simultaneous BFS sources (columns)
  index_t num_frontiers = 10;  // the paper uses the first 10 forward frontiers
  std::uint64_t seed = 42;   // source sampling seed
};

/// Tall-skinny frontier matrices F_1..F_num_frontiers (n × batch). F_i can be
/// empty (0 nnz) for sources whose BFS already terminated. Sources are
/// sampled uniformly from vertices with nonzero degree.
std::vector<Csr> bc_frontiers(const Csr& g, const FrontierOptions& opt = {});

}  // namespace cw
