// Breadth-first search over the (symmetric) pattern of a CSR matrix.
#pragma once

#include <vector>

#include "matrix/csr.hpp"

namespace cw {

/// Level of every vertex from `src` (-1 if unreachable). `g` is treated as an
/// adjacency structure (values ignored).
std::vector<index_t> bfs_levels(const Csr& g, index_t src);

/// BFS visit order from `src` (only reachable vertices). Neighbors are
/// visited in increasing-degree order when `sort_by_degree` is set — the
/// Cuthill–McKee traversal rule.
std::vector<index_t> bfs_order(const Csr& g, index_t src, bool sort_by_degree);

/// Eccentricity (max finite level) and the set of last-level vertices.
struct BfsFrontierInfo {
  index_t eccentricity = 0;
  std::vector<index_t> last_level;
  index_t visited = 0;
};
BfsFrontierInfo bfs_frontier_info(const Csr& g, index_t src);

}  // namespace cw
