// AVX-512F kernels (compiled with -mavx512f -ffp-contract=off; stubbed out
// otherwise). Same bit-identity rules as the AVX2 tier: mul-then-add, no
// _mm512_fmadd_pd, scalar-identical per-element operation order. Tail
// elements use masked loads/stores so a 63-lane cluster never reads past its
// value block.
#include "simd/tables.hpp"

#if defined(__AVX512F__)

#include <immintrin.h>

#include <cstring>

namespace cw::simd::detail {
namespace {

void lane_fma_avx512(value_t* lane, const value_t* avals, value_t bv,
                     index_t k) {
  const __m512d vb = _mm512_set1_pd(bv);
  index_t r = 0;
  for (; r + 16 <= k; r += 16) {
    const __m512d a0 = _mm512_loadu_pd(avals + r);
    const __m512d a1 = _mm512_loadu_pd(avals + r + 8);
    const __m512d l0 = _mm512_loadu_pd(lane + r);
    const __m512d l1 = _mm512_loadu_pd(lane + r + 8);
    _mm512_storeu_pd(lane + r, _mm512_add_pd(l0, _mm512_mul_pd(a0, vb)));
    _mm512_storeu_pd(lane + r + 8, _mm512_add_pd(l1, _mm512_mul_pd(a1, vb)));
  }
  if (r < k) {
    const __mmask8 tail0 =
        static_cast<__mmask8>((k - r >= 8) ? 0xFF : (1u << (k - r)) - 1);
    const __m512d a0 = _mm512_maskz_loadu_pd(tail0, avals + r);
    const __m512d l0 = _mm512_maskz_loadu_pd(tail0, lane + r);
    _mm512_mask_storeu_pd(lane + r, tail0,
                          _mm512_add_pd(l0, _mm512_mul_pd(a0, vb)));
    r += 8;
    if (r < k) {
      const __mmask8 tail1 = static_cast<__mmask8>((1u << (k - r)) - 1);
      const __m512d a1 = _mm512_maskz_loadu_pd(tail1, avals + r);
      const __m512d l1 = _mm512_maskz_loadu_pd(tail1, lane + r);
      _mm512_mask_storeu_pd(lane + r, tail1,
                            _mm512_add_pd(l1, _mm512_mul_pd(a1, vb)));
    }
  }
}

void gather_f64_avx512(value_t* out, const value_t* base, const index_t* idx,
                       std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    _mm512_storeu_pd(out + i, _mm512_i32gather_pd(vi, base, 8));
  }
  for (; i < n; ++i) out[i] = base[static_cast<std::size_t>(idx[i])];
}

void shift_i32_avx512(index_t* dst, const index_t* src, index_t delta,
                      std::size_t n) {
  const __m512i vd = _mm512_set1_epi32(delta);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i v = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_add_epi32(v, vd));
  }
  for (; i < n; ++i) dst[i] = src[i] + delta;
}

void fill_zero_f64_avx512(value_t* dst, std::size_t n) {
  const __m512d z = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) _mm512_storeu_pd(dst + i, z);
  if (i < n) std::memset(dst + i, 0, (n - i) * sizeof(value_t));
}

void fill_zero_u8_avx512(std::uint8_t* dst, std::size_t n) {
  std::memset(dst, 0, n);
}

constexpr KernelTable kAvx512Table = {
    SimdTier::kAvx512,    lane_fma_avx512,      gather_f64_avx512,
    shift_i32_avx512,     fill_zero_f64_avx512, fill_zero_u8_avx512,
};

}  // namespace

const KernelTable* avx512_table() { return &kAvx512Table; }

}  // namespace cw::simd::detail

#else  // !__AVX512F__

namespace cw::simd::detail {
const KernelTable* avx512_table() { return nullptr; }
}  // namespace cw::simd::detail

#endif
