// Runtime-dispatched SIMD kernels for the accumulator / panel hot paths.
//
// The library is built once, with no global -march flags; only the per-ISA
// kernel translation units (src/simd/kernels_*.cpp) are compiled with
// -mavx2 / -mavx512f, and the best tier the *running* CPU supports is picked
// at startup (CPUID probe via __builtin_cpu_supports). `CW_SIMD=scalar`
// forces the portable fallback; `CW_SIMD=avx2|avx512|neon` requests a tier
// (clamped to what the CPU and the build actually provide).
//
// Bit-identity contract: every kernel computes, per element, exactly the
// scalar reference's IEEE operation sequence — multiplies and adds are never
// fused (the kernel TUs are built with -ffp-contract=off and the intrinsics
// use mul-then-add, not FMA), and no kernel reassociates across elements.
// Vectorizing across *lanes* of the cluster accumulator is safe because the
// lanes are independent accumulators; the 220-case bit-identity suite runs
// under every tier to keep this provable (tests/simd/dispatch_identity_test).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace cw::simd {

enum class SimdTier : int {
  kScalar = 0,
  kNeon = 1,
  kAvx2 = 2,
  kAvx512 = 3,
};

const char* to_string(SimdTier tier);

/// Parse a CW_SIMD value; returns false for unknown strings ("auto" and ""
/// parse as `auto_tier = true`).
bool tier_from_string(const char* s, SimdTier& tier, bool& auto_tier);

/// The per-tier kernel table. Every pointer is non-null in every table; the
/// scalar table is the reference implementation the others must match bit
/// for bit.
struct KernelTable {
  SimdTier tier;

  /// lane[r] += avals[r] * bv for r in [0, k) — the K-wide lane update of
  /// the cluster accumulator's dense-mask branch. Per-lane order-preserving:
  /// one multiply, one add per element, no fusing, no reassociation.
  void (*lane_fma)(value_t* lane, const value_t* avals, value_t bv, index_t k);

  /// out[i] = base[idx[i]] for i in [0, n) — sorted-key value extraction
  /// (dense accumulator). Pure data movement.
  void (*gather_f64)(value_t* out, const value_t* base, const index_t* idx,
                     std::size_t n);

  /// dst[i] = src[i] + delta for i in [0, n) — column-id shifting when
  /// stacking request panels (delta > 0) or splitting them back (delta < 0).
  void (*shift_i32)(index_t* dst, const index_t* src, index_t delta,
                    std::size_t n);

  /// dst[0, n) = 0.0 — wholesale dense-accumulator reset.
  void (*fill_zero_f64)(value_t* dst, std::size_t n);

  /// dst[0, n) = 0 — wholesale presence-flag reset.
  void (*fill_zero_u8)(std::uint8_t* dst, std::size_t n);
};

namespace detail {
/// The active table slot (function-local static inside active_slot(), so any
/// static-init-order use still probes first).
std::atomic<const KernelTable*>& active_slot();
}  // namespace detail

/// The active kernel table. One relaxed load + indirect call per kernel use;
/// hot loops may cache individual pointers (re-fetched on reconfigure).
inline const KernelTable& kernels() {
  return *detail::active_slot().load(std::memory_order_acquire);
}

/// The tier the active table implements.
SimdTier active_tier();

/// Tiers usable on this CPU with this build, best first. Always contains
/// kScalar.
std::vector<SimdTier> available_tiers();

/// Force a tier (tests / bench sweeps). Returns false — and leaves the
/// active table unchanged — if the tier is not available. Not meant to be
/// called while kernels are executing on other threads.
bool force_tier(SimdTier tier);

/// Re-run auto-selection (CPU probe + CW_SIMD env override).
void reset_tier();

/// Dispatch-independent read prefetch hint (no-op where unsupported).
inline void prefetch_read(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/1);
#else
  (void)p;
#endif
}

/// Lane counts below this stay on the inline scalar loop: the indirect call
/// into the dispatched kernel only pays for itself once a vector register's
/// worth of lanes is in flight.
inline constexpr index_t kMinVectorLanes = 8;

}  // namespace cw::simd
