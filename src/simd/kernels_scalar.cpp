// Portable reference kernels — the bit-identity baseline every vector tier
// must reproduce exactly. Compiled with the project's default flags (no
// -march, contraction disabled via CMake), so `lane[r] += avals[r] * bv` is
// one IEEE multiply followed by one IEEE add per element.
#include <cstring>

#include "simd/tables.hpp"

namespace cw::simd::detail {
namespace {

void lane_fma_scalar(value_t* lane, const value_t* avals, value_t bv,
                     index_t k) {
  for (index_t r = 0; r < k; ++r) lane[r] += avals[r] * bv;
}

void gather_f64_scalar(value_t* out, const value_t* base, const index_t* idx,
                       std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    out[i] = base[static_cast<std::size_t>(idx[i])];
}

void shift_i32_scalar(index_t* dst, const index_t* src, index_t delta,
                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[i] + delta;
}

void fill_zero_f64_scalar(value_t* dst, std::size_t n) {
  std::memset(dst, 0, n * sizeof(value_t));
}

void fill_zero_u8_scalar(std::uint8_t* dst, std::size_t n) {
  std::memset(dst, 0, n);
}

constexpr KernelTable kScalarTable = {
    SimdTier::kScalar,    lane_fma_scalar,      gather_f64_scalar,
    shift_i32_scalar,     fill_zero_f64_scalar, fill_zero_u8_scalar,
};

}  // namespace

const KernelTable* scalar_table() { return &kScalarTable; }

}  // namespace cw::simd::detail
