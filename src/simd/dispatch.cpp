#include "simd/dispatch.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "simd/tables.hpp"

namespace cw::simd {

const char* to_string(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar: return "scalar";
    case SimdTier::kNeon: return "neon";
    case SimdTier::kAvx2: return "avx2";
    case SimdTier::kAvx512: return "avx512";
  }
  return "?";
}

bool tier_from_string(const char* s, SimdTier& tier, bool& auto_tier) {
  auto_tier = false;
  if (s == nullptr || *s == '\0' || std::strcmp(s, "auto") == 0) {
    auto_tier = true;
    return true;
  }
  if (std::strcmp(s, "scalar") == 0) { tier = SimdTier::kScalar; return true; }
  if (std::strcmp(s, "neon") == 0) { tier = SimdTier::kNeon; return true; }
  if (std::strcmp(s, "avx2") == 0) { tier = SimdTier::kAvx2; return true; }
  if (std::strcmp(s, "avx512") == 0) { tier = SimdTier::kAvx512; return true; }
  return false;
}

namespace detail {
namespace {

/// Table for `tier` iff it is compiled into this build AND the running CPU
/// executes it; nullptr otherwise.
const KernelTable* usable_table(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return scalar_table();
    case SimdTier::kNeon:
      // NEON is baseline on AArch64: compiled-in implies executable.
      return neon_table();
    case SimdTier::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      if (__builtin_cpu_supports("avx2")) return avx2_table();
#endif
      return nullptr;
    case SimdTier::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      if (__builtin_cpu_supports("avx512f")) return avx512_table();
#endif
      return nullptr;
  }
  return nullptr;
}

/// Best usable tier, best first in the enum order: avx512 > avx2 > neon >
/// scalar (avx* and neon never coexist).
const KernelTable* best_table() {
  for (SimdTier t : {SimdTier::kAvx512, SimdTier::kAvx2, SimdTier::kNeon}) {
    if (const KernelTable* table = usable_table(t)) return table;
  }
  return scalar_table();
}

/// Auto-selection: CPU probe, then the CW_SIMD override. An unknown or
/// unusable override falls back to the probe result (with a one-line note,
/// so a CI leg forcing `CW_SIMD=avx2` on odd hardware degrades loudly but
/// gracefully instead of failing every test).
const KernelTable* select_table() {
  const KernelTable* chosen = best_table();
  const char* env = std::getenv("CW_SIMD");
  if (env == nullptr || *env == '\0') return chosen;
  SimdTier want{};
  bool auto_tier = false;
  if (!tier_from_string(env, want, auto_tier)) {
    std::fprintf(stderr, "cw: CW_SIMD=%s not recognized; using %s kernels\n",
                 env, to_string(chosen->tier));
    return chosen;
  }
  if (auto_tier) return chosen;
  if (const KernelTable* table = usable_table(want)) return table;
  std::fprintf(stderr, "cw: CW_SIMD=%s unavailable on this CPU/build; "
                       "using %s kernels\n", env, to_string(chosen->tier));
  return chosen;
}

}  // namespace

std::atomic<const KernelTable*>& active_slot() {
  static std::atomic<const KernelTable*> slot{select_table()};
  return slot;
}

}  // namespace detail

SimdTier active_tier() { return kernels().tier; }

std::vector<SimdTier> available_tiers() {
  std::vector<SimdTier> out;
  for (SimdTier t : {SimdTier::kAvx512, SimdTier::kAvx2, SimdTier::kNeon,
                     SimdTier::kScalar}) {
    if (detail::usable_table(t) != nullptr) out.push_back(t);
  }
  return out;
}

bool force_tier(SimdTier tier) {
  const KernelTable* table = detail::usable_table(tier);
  if (table == nullptr) return false;
  detail::active_slot().store(table, std::memory_order_release);
  return true;
}

void reset_tier() {
  detail::active_slot().store(detail::select_table(),
                              std::memory_order_release);
}

}  // namespace cw::simd
