// Internal: per-ISA kernel table accessors. Each returns nullptr when the
// tier was not compiled into this build (wrong architecture, compiler
// without the -m flag, or CW_ENABLE_SIMD=OFF).
#pragma once

#include "simd/dispatch.hpp"

namespace cw::simd::detail {

const KernelTable* scalar_table();  // never nullptr
const KernelTable* neon_table();
const KernelTable* avx2_table();
const KernelTable* avx512_table();

}  // namespace cw::simd::detail
