// NEON kernels (AArch64; NEON is baseline there, so no per-file -m flags —
// just -ffp-contract=off). vmulq/vaddq, never vfmaq: fused multiply-add
// rounds differently from the scalar reference.
#include "simd/tables.hpp"

#if defined(__aarch64__) && defined(__ARM_NEON) && !defined(CW_NO_SIMD)

#include <arm_neon.h>

#include <cstring>

namespace cw::simd::detail {
namespace {

void lane_fma_neon(value_t* lane, const value_t* avals, value_t bv,
                   index_t k) {
  const float64x2_t vb = vdupq_n_f64(bv);
  index_t r = 0;
  for (; r + 4 <= k; r += 4) {
    const float64x2_t a0 = vld1q_f64(avals + r);
    const float64x2_t a1 = vld1q_f64(avals + r + 2);
    const float64x2_t l0 = vld1q_f64(lane + r);
    const float64x2_t l1 = vld1q_f64(lane + r + 2);
    vst1q_f64(lane + r, vaddq_f64(l0, vmulq_f64(a0, vb)));
    vst1q_f64(lane + r + 2, vaddq_f64(l1, vmulq_f64(a1, vb)));
  }
  for (; r < k; ++r) lane[r] += avals[r] * bv;
}

void gather_f64_neon(value_t* out, const value_t* base, const index_t* idx,
                     std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    out[i] = base[static_cast<std::size_t>(idx[i])];
}

void shift_i32_neon(index_t* dst, const index_t* src, index_t delta,
                    std::size_t n) {
  const int32x4_t vd = vdupq_n_s32(delta);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    vst1q_s32(dst + i, vaddq_s32(vld1q_s32(src + i), vd));
  for (; i < n; ++i) dst[i] = src[i] + delta;
}

void fill_zero_f64_neon(value_t* dst, std::size_t n) {
  std::memset(dst, 0, n * sizeof(value_t));
}

void fill_zero_u8_neon(std::uint8_t* dst, std::size_t n) {
  std::memset(dst, 0, n);
}

constexpr KernelTable kNeonTable = {
    SimdTier::kNeon,    lane_fma_neon,      gather_f64_neon,
    shift_i32_neon,     fill_zero_f64_neon, fill_zero_u8_neon,
};

}  // namespace

const KernelTable* neon_table() { return &kNeonTable; }

}  // namespace cw::simd::detail

#else  // not an AArch64 NEON build

namespace cw::simd::detail {
const KernelTable* neon_table() { return nullptr; }
}  // namespace cw::simd::detail

#endif
