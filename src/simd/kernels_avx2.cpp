// AVX2 kernels. This file — and only this file — is compiled with
// -mavx2 -ffp-contract=off (see CMakeLists); when the compiler cannot
// target AVX2 the stub at the bottom keeps the build portable. The FP
// kernels use mul-then-add, never _mm256_fmadd_pd: fusing would change the
// rounding and break bit-identity with the scalar reference.
#include "simd/tables.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

namespace cw::simd::detail {
namespace {

void lane_fma_avx2(value_t* lane, const value_t* avals, value_t bv,
                   index_t k) {
  const __m256d vb = _mm256_set1_pd(bv);
  index_t r = 0;
  // Register-blocked: two independent accumulate chains per iteration keep
  // the add ports busy across the load latency.
  for (; r + 8 <= k; r += 8) {
    const __m256d a0 = _mm256_loadu_pd(avals + r);
    const __m256d a1 = _mm256_loadu_pd(avals + r + 4);
    const __m256d l0 = _mm256_loadu_pd(lane + r);
    const __m256d l1 = _mm256_loadu_pd(lane + r + 4);
    _mm256_storeu_pd(lane + r, _mm256_add_pd(l0, _mm256_mul_pd(a0, vb)));
    _mm256_storeu_pd(lane + r + 4, _mm256_add_pd(l1, _mm256_mul_pd(a1, vb)));
  }
  for (; r + 4 <= k; r += 4) {
    const __m256d a0 = _mm256_loadu_pd(avals + r);
    const __m256d l0 = _mm256_loadu_pd(lane + r);
    _mm256_storeu_pd(lane + r, _mm256_add_pd(l0, _mm256_mul_pd(a0, vb)));
  }
  for (; r < k; ++r) lane[r] += avals[r] * bv;
}

void gather_f64_avx2(value_t* out, const value_t* base, const index_t* idx,
                     std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i vi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    _mm256_storeu_pd(out + i, _mm256_i32gather_pd(base, vi, 8));
  }
  for (; i < n; ++i) out[i] = base[static_cast<std::size_t>(idx[i])];
}

void shift_i32_avx2(index_t* dst, const index_t* src, index_t delta,
                    std::size_t n) {
  const __m256i vd = _mm256_set1_epi32(delta);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_add_epi32(v, vd));
  }
  for (; i < n; ++i) dst[i] = src[i] + delta;
}

void fill_zero_f64_avx2(value_t* dst, std::size_t n) {
  const __m256d z = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(dst + i, z);
    _mm256_storeu_pd(dst + i + 4, z);
  }
  if (i < n) std::memset(dst + i, 0, (n - i) * sizeof(value_t));
}

void fill_zero_u8_avx2(std::uint8_t* dst, std::size_t n) {
  std::memset(dst, 0, n);
}

constexpr KernelTable kAvx2Table = {
    SimdTier::kAvx2,    lane_fma_avx2,      gather_f64_avx2,
    shift_i32_avx2,     fill_zero_f64_avx2, fill_zero_u8_avx2,
};

}  // namespace

const KernelTable* avx2_table() { return &kAvx2Table; }

}  // namespace cw::simd::detail

#else  // !__AVX2__

namespace cw::simd::detail {
const KernelTable* avx2_table() { return nullptr; }
}  // namespace cw::simd::detail

#endif
