// Exclusive prefix sums — the workhorse for CSR construction (converting
// per-row counts into row pointers).
#pragma once

#include <vector>

#include "common/types.hpp"

namespace cw {

/// In-place exclusive prefix sum. On return, v[i] holds the sum of the first
/// i original elements and the function returns the total.
template <typename T>
T exclusive_prefix_sum(std::vector<T>& v) {
  T run = 0;
  for (auto& x : v) {
    T next = run + x;
    x = run;
    run = next;
  }
  return run;
}

/// Out-of-place exclusive prefix sum producing a pointer array of size
/// counts.size() + 1 (CSR row_ptr convention: ptr[n] == total).
template <typename T>
std::vector<T> counts_to_pointers(const std::vector<T>& counts) {
  std::vector<T> ptr(counts.size() + 1);
  T run = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    ptr[i] = run;
    run += counts[i];
  }
  ptr[counts.size()] = run;
  return ptr;
}

}  // namespace cw
