#include "common/mmap_region.hpp"

#ifndef _WIN32
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include <cerrno>
#include <cstring>

#include "fault/injector.hpp"
#include "fault/status.hpp"

namespace cw {

#ifndef _WIN32

std::uint64_t MmapRegion::query_file_size(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0)
    throw fault::StatusError(
        fault::ErrorCode::kIoError,
        "mmap: cannot stat " + path + ": " + std::strerror(errno));
  return static_cast<std::uint64_t>(st.st_size);
}

std::shared_ptr<const MmapRegion> MmapRegion::map_file(const std::string& path,
                                                       std::uint64_t offset,
                                                       std::uint64_t length) {
  fault::inject("mmap.map", fault::ErrorCode::kIoError);
  // CLOEXEC: the descriptor lives as long as the mapping (drop_cache needs
  // it) and is strictly in-process — children must not inherit one fd per
  // cached snapshot.
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0)
    throw fault::StatusError(
        fault::ErrorCode::kIoError,
        "mmap: cannot open " + path + ": " + std::strerror(errno));

  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw fault::StatusError(
        fault::ErrorCode::kIoError,
        "mmap: fstat failed for " + path + ": " + std::strerror(err));
  }
  const auto file_size = static_cast<std::uint64_t>(st.st_size);
  if (offset > file_size ||
      (length > 0 && length > file_size - offset)) {
    ::close(fd);
    throw fault::StatusError(
        fault::ErrorCode::kCorruptSnapshot,
        "mmap: requested range exceeds " + path + " (" +
            std::to_string(file_size) + " bytes) — truncated file?");
  }
  if (length == 0) length = file_size - offset;

  auto region = std::shared_ptr<MmapRegion>(new MmapRegion());
  region->size_ = length;
  region->file_offset_ = offset;
  region->file_size_ = file_size;

  if (length > 0) {
    const auto page = static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
    const std::uint64_t page_floor = offset - offset % page;
    const std::uint64_t map_len = (offset - page_floor) + length;
    void* base = ::mmap(nullptr, static_cast<std::size_t>(map_len), PROT_READ,
                        MAP_PRIVATE, fd, static_cast<off_t>(page_floor));
    if (base == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      throw Error("mmap: mapping " + path + " failed: " + std::strerror(err));
    }
    region->map_base_ = base;
    region->map_len_ = static_cast<std::size_t>(map_len);
    region->data_ =
        static_cast<const std::byte*>(base) + (offset - page_floor);
  }
  // The descriptor stays open for the region's lifetime: releasing an
  // evicted snapshot's physical memory needs posix_fadvise on the file
  // (drop_cache), and reopening by path would break once the file is
  // renamed or unlinked underneath a live mapping.
  region->fd_ = fd;
  return region;
}

MmapRegion::~MmapRegion() {
  if (map_base_ != nullptr) ::munmap(map_base_, map_len_);
  if (fd_ >= 0) ::close(fd_);
}

#else  // _WIN32

std::uint64_t MmapRegion::query_file_size(const std::string& path) {
  throw Error("mmap: not supported on this platform (" + path + ")");
}

std::shared_ptr<const MmapRegion> MmapRegion::map_file(const std::string& path,
                                                       std::uint64_t, std::uint64_t) {
  throw Error("mmap: not supported on this platform (load " + path +
              " through the copying path instead)");
}

MmapRegion::~MmapRegion() = default;

#endif

}  // namespace cw
