// Thin OpenMP helpers. All kernels in the library parallelize over rows or
// clusters with dynamic scheduling (SpGEMM row costs are highly skewed).
#pragma once

#include <cstddef>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/types.hpp"

namespace cw {

/// Number of OpenMP threads the parallel regions will use.
inline int num_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Cap the number of threads OpenMP parallel regions started by the
/// *calling* thread will use (the nthreads ICV is per-thread, so an engine
/// worker can budget its own kernels without affecting other workers).
/// No-op in serial builds or for n <= 0.
inline void set_num_threads(int n) {
#ifdef _OPENMP
  if (n > 0) omp_set_num_threads(n);
#else
  (void)n;
#endif
}

/// Threads the hardware offers to OpenMP regardless of the current cap —
/// the basis for dividing a machine between engine workers.
inline int hardware_threads() {
#ifdef _OPENMP
  return omp_get_num_procs();
#else
  return 1;
#endif
}

/// Current thread id inside a parallel region (0 outside).
inline int thread_id() {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// parallel for over [0, n) with dynamic scheduling and a tunable chunk.
/// `body(i)` must be safe to run concurrently for distinct i.
template <typename Body>
void parallel_for(index_t n, Body&& body, int chunk = 64) {
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, chunk)
  for (index_t i = 0; i < n; ++i) body(i);
#else
  (void)chunk;
  for (index_t i = 0; i < n; ++i) body(i);
#endif
}

/// parallel for with static scheduling for uniform-cost loops.
template <typename Body>
void parallel_for_static(index_t n, Body&& body) {
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < n; ++i) body(i);
#else
  for (index_t i = 0; i < n; ++i) body(i);
#endif
}

}  // namespace cw
