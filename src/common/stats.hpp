// Summary statistics used throughout the evaluation section:
// geometric means, positive-fraction metrics (Table 2), box-plot quartile
// summaries (Figs. 2–3) and performance-profile curves (Fig. 10).
#pragma once

#include <string>
#include <vector>

namespace cw {

/// Geometric mean of strictly positive samples. Returns 0 for empty input.
double geomean(const std::vector<double>& xs);

/// Arithmetic mean. Returns 0 for empty input.
double mean(const std::vector<double>& xs);

/// p-th percentile (0..100) via linear interpolation on a copy of xs.
double percentile(std::vector<double> xs, double p);

/// Five-number summary used to print the paper's box plots as text.
struct BoxSummary {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0;
  std::size_t n = 0;
};
BoxSummary box_summary(const std::vector<double>& xs);

/// Table-2 style aggregate of a set of speedups:
///   gm   — geometric mean over all samples,
///   pos  — fraction (%) of samples with speedup > 1,
///   pos_gm — geometric mean over only the positive samples.
struct SpeedupSummary {
  double gm = 0;
  double pos_pct = 0;
  double pos_gm = 0;
  std::size_t n = 0;
};
SpeedupSummary summarize_speedups(const std::vector<double>& speedups);

/// Performance-profile curve (Fig. 10): for each threshold x in `grid`,
/// the fraction of samples with value <= x.
std::vector<double> profile_curve(const std::vector<double>& samples,
                                  const std::vector<double>& grid);

/// Render a BoxSummary as "min/q1/med/q3/max (n=..)".
std::string to_string(const BoxSummary& b);

/// DEPRECATED — superseded by obs::Histogram (PR 6). The ring keeps only
/// the most recent `window` samples, so under sustained load
/// window_percentile() silently forgets every earlier sample: a burst of
/// slow requests older than one window vanishes from the reported tail, and
/// p99 under-reports exactly when it matters (the regression test in
/// tests/obs/metrics_test.cpp pins this bias down against the histogram).
/// The serving engines now record into log-bucketed histograms covering the
/// FULL run; this class remains only for code that genuinely wants a
/// moving-window estimate and accepts the bias.
/// Not internally synchronized: callers guard it with their own mutex.
class LatencyRecorder {
 public:
  explicit LatencyRecorder(std::size_t window);

  void record(double ms);

  /// p-th percentile over the retained window; 0 with no samples yet.
  [[nodiscard]] double window_percentile(double p) const;

  /// Largest sample ever recorded.
  [[nodiscard]] double max_ms() const { return max_ms_; }

  [[nodiscard]] std::size_t count() const { return count_; }

 private:
  std::vector<double> ring_;  // size = window
  std::size_t next_ = 0;      // ring cursor
  std::size_t count_ = 0;     // valid entries (<= window)
  double max_ms_ = 0;
};

}  // namespace cw
