// Summary statistics used throughout the evaluation section:
// geometric means, positive-fraction metrics (Table 2), box-plot quartile
// summaries (Figs. 2–3) and performance-profile curves (Fig. 10).
#pragma once

#include <string>
#include <vector>

namespace cw {

/// Geometric mean of strictly positive samples. Returns 0 for empty input.
double geomean(const std::vector<double>& xs);

/// Arithmetic mean. Returns 0 for empty input.
double mean(const std::vector<double>& xs);

/// p-th percentile (0..100) via linear interpolation on a copy of xs.
double percentile(std::vector<double> xs, double p);

/// Five-number summary used to print the paper's box plots as text.
struct BoxSummary {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0;
  std::size_t n = 0;
};
BoxSummary box_summary(const std::vector<double>& xs);

/// Table-2 style aggregate of a set of speedups:
///   gm   — geometric mean over all samples,
///   pos  — fraction (%) of samples with speedup > 1,
///   pos_gm — geometric mean over only the positive samples.
struct SpeedupSummary {
  double gm = 0;
  double pos_pct = 0;
  double pos_gm = 0;
  std::size_t n = 0;
};
SpeedupSummary summarize_speedups(const std::vector<double>& speedups);

/// Performance-profile curve (Fig. 10): for each threshold x in `grid`,
/// the fraction of samples with value <= x.
std::vector<double> profile_curve(const std::vector<double>& samples,
                                  const std::vector<double>& grid);

/// Render a BoxSummary as "min/q1/med/q3/max (n=..)".
std::string to_string(const BoxSummary& b);

}  // namespace cw
