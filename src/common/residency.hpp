// Physical-residency control for mapped memory — the syscall floor of the
// serving stack's memory plane.
//
// Snapshot v3 made pipeline arrays file-backed (common/mmap_region.hpp):
// load is O(directory) and the kernel pages data in on first touch. That
// trades the *where* of the bytes for the *when* — first multiplies eat page
// faults, eviction of a mapped pipeline frees no physical memory, and
// nothing above the mapping can ask "how much of this is actually in RAM?".
// This header is the vocabulary the layers above use to take that control
// back:
//
//   * advise()          — madvise hints (WILLNEED prefetch, DONTNEED release,
//                         SEQUENTIAL/RANDOM readahead shaping);
//   * lock()/unlock()   — mlock pinning for latency-critical pipelines;
//   * resident_bytes()  — mincore probe: how much of a range is in RAM now;
//   * touch()           — a fault-in read pass (works on every platform).
//
// All functions page-align internally (the syscalls demand it) and accept
// any range inside a live mapping. They return success/observations instead
// of throwing: residency is *advisory* — a failed hint (e.g. mlock past
// RLIMIT_MEMLOCK) must degrade to the lazy behaviour, never take serving
// down. On platforms without the syscalls (or with CW_NO_RESIDENCY_SYSCALLS
// defined, the CI fallback build), advise/lock report false, probes report
// 0, and touch() still faults pages in — callers stay correct, just blind.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cw::residency {

/// Access-pattern hints, mapped onto madvise when available.
enum class Advice {
  kNormal,      // reset to default kernel readahead
  kWillNeed,    // prefetch: fault the range in ahead of first use
  kDontNeed,    // release: drop page tables / private copies now
  kSequential,  // aggressive readahead, drop-behind
  kRandom,      // disable readahead (pointer-chasing access)
};

const char* to_string(Advice advice);

/// True when this build can actually reach madvise/mlock/mincore. The no-op
/// fallback (CW_NO_RESIDENCY_SYSCALLS or non-POSIX) returns false; callers
/// gate *expectations* on this, never correctness.
bool supported();

/// System page size (4096 when it cannot be queried).
std::size_t page_size();

/// Hint the kernel about [addr, addr+len); rounds to page boundaries
/// internally. Returns true iff the hint was delivered.
bool advise(const void* addr, std::size_t len, Advice advice);

/// Pin / unpin the pages covering [addr, addr+len). Locking commonly fails
/// for unprivileged processes (RLIMIT_MEMLOCK); callers must treat false as
/// "stays pageable", not an error.
bool lock(const void* addr, std::size_t len);
bool unlock(const void* addr, std::size_t len);

/// Bytes of [addr, addr+len) currently resident in physical memory
/// (mincore; partial pages count only their overlap with the range).
/// 0 when probing is unsupported.
std::size_t resident_bytes(const void* addr, std::size_t len);

/// Fault the range in by reading one byte per page (and the last byte).
/// Pure loads — works in every build, returns len.
std::size_t touch(const void* addr, std::size_t len);

/// fsync `fd`. fadvise silently skips dirty pages, and a snapshot that was
/// *just* written (offline prepare, then immediate serve) is all dirty
/// pages — flush once before dropping so the drop actually drops. Linux
/// allows fsync on read-only descriptors.
bool sync_file(int fd);

/// Drop the (clean) page-cache copies of file range [offset, offset+len) —
/// posix_fadvise(DONTNEED), which only touches pages fully inside the
/// range. madvise(DONTNEED) on a file-backed mapping only drops this
/// process's page tables; the data stays cached in the kernel and mincore
/// keeps reporting it resident. Evicting a mapped pipeline with real teeth
/// needs both: drop the PTEs, then the cache. Pages still mapped elsewhere
/// survive, and everything re-reads from disk correctly.
bool drop_file_cache(int fd, std::uint64_t offset, std::uint64_t len);

}  // namespace cw::residency
