// Error handling: CW_CHECK for unrecoverable precondition violations and
// cw::Error for recoverable I/O and format failures.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cw {

/// Exception thrown on recoverable failures (file I/O, malformed input).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CW_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace cw

/// Precondition check that stays enabled in release builds. Sparse-matrix
/// index corruption silently produces wrong numerics, so the cost of a branch
/// is worth it everywhere outside the innermost kernels (which use
/// CW_DCHECK).
#define CW_CHECK(cond)                                                \
  do {                                                                \
    if (!(cond)) ::cw::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define CW_CHECK_MSG(cond, msg)                                        \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::ostringstream cw_os_;                                       \
      cw_os_ << msg;                                                   \
      ::cw::detail::check_failed(#cond, __FILE__, __LINE__, cw_os_.str()); \
    }                                                                  \
  } while (0)

/// Debug-only check for hot loops.
#ifndef NDEBUG
#define CW_DCHECK(cond) CW_CHECK(cond)
#else
#define CW_DCHECK(cond) ((void)0)
#endif
