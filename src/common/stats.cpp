#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace cw {

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    CW_CHECK_MSG(x > 0.0, "geomean requires positive samples, got " << x);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double percentile(std::vector<double> xs, double p) {
  CW_CHECK(!xs.empty());
  CW_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

BoxSummary box_summary(const std::vector<double>& xs) {
  BoxSummary b;
  if (xs.empty()) return b;
  b.n = xs.size();
  b.min = percentile(xs, 0);
  b.q1 = percentile(xs, 25);
  b.median = percentile(xs, 50);
  b.q3 = percentile(xs, 75);
  b.max = percentile(xs, 100);
  return b;
}

SpeedupSummary summarize_speedups(const std::vector<double>& speedups) {
  SpeedupSummary s;
  s.n = speedups.size();
  if (speedups.empty()) return s;
  s.gm = geomean(speedups);
  std::vector<double> pos;
  for (double x : speedups)
    if (x > 1.0) pos.push_back(x);
  s.pos_pct = 100.0 * static_cast<double>(pos.size()) /
              static_cast<double>(speedups.size());
  s.pos_gm = pos.empty() ? 0.0 : geomean(pos);
  return s;
}

std::vector<double> profile_curve(const std::vector<double>& samples,
                                  const std::vector<double>& grid) {
  std::vector<double> curve;
  curve.reserve(grid.size());
  if (samples.empty()) {
    curve.assign(grid.size(), 0.0);
    return curve;
  }
  for (double x : grid) {
    std::size_t count = 0;
    for (double s : samples)
      if (s <= x) ++count;
    curve.push_back(static_cast<double>(count) /
                    static_cast<double>(samples.size()));
  }
  return curve;
}

std::string to_string(const BoxSummary& b) {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << b.min << "/" << b.q1 << "/" << b.median << "/" << b.q3
     << "/" << b.max << " (n=" << b.n << ")";
  return os.str();
}

}  // namespace cw
