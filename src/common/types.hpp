// Fundamental scalar types shared by every subsystem.
//
// The library uses 32-bit row/column indices (sufficient for the laptop-scale
// suite; SuiteSparse matrices in the paper fit as well) and 64-bit offsets so
// that nnz counts and intermediate-product counts (flops) never overflow.
#pragma once

#include <cstdint>

namespace cw {

/// Row / column index of a sparse matrix.
using index_t = std::int32_t;

/// Offset into the col-id / value arrays (row pointers, nnz counts, flops).
using offset_t = std::int64_t;

/// Numeric value type. The paper's kernels are value-type agnostic; we follow
/// the usual double-precision convention of sparse BLAS.
using value_t = double;

/// Sentinel for "no index" (parents, matches, cluster ids, ...).
inline constexpr index_t kInvalidIndex = -1;

}  // namespace cw
