#include "common/timer.hpp"

#include <sstream>

namespace cw {

void PhaseTimings::add(const std::string& label, double seconds) {
  phases_.emplace_back(label, seconds);
}

double PhaseTimings::total() const {
  double t = 0.0;
  for (const auto& [label, s] : phases_) t += s;
  return t;
}

std::string PhaseTimings::summary() const {
  std::ostringstream os;
  for (size_t i = 0; i < phases_.size(); ++i) {
    if (i) os << ", ";
    os << phases_[i].first << "=" << phases_[i].second * 1e3 << "ms";
  }
  return os.str();
}

}  // namespace cw
