// Wall-clock timing utilities used by the evaluation harness.
#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

namespace cw {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() { reset(); }

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Runs `fn` `reps` times and returns the *minimum* wall time in seconds —
/// the conventional estimator for kernel benchmarking (least noise).
/// A single warm-up execution happens first and is not counted.
template <typename Fn>
double time_best_of(int reps, Fn&& fn) {
  fn();  // warm-up
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

/// Mean wall time over `reps` runs (after one warm-up). The paper reports the
/// average of 10 runs; the harness uses this when CW_REPS >= 2.
template <typename Fn>
double time_mean_of(int reps, Fn&& fn) {
  fn();  // warm-up
  double total = 0.0;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    total += t.seconds();
  }
  return total / reps;
}

/// Accumulates labelled timing phases (symbolic/numeric/preprocessing...).
class PhaseTimings {
 public:
  void add(const std::string& label, double seconds);
  [[nodiscard]] double total() const;
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<std::pair<std::string, double>> phases_;
};

}  // namespace cw
