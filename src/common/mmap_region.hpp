// Read-only memory-mapped file region — the storage substrate of snapshot
// format v3's zero-copy load path (serve/snapshot.hpp).
//
// A region maps a byte range [offset, offset+size) of a file with PROT_READ.
// mmap requires page-aligned file offsets, so the region maps from the
// containing page boundary internally and exposes `data()` at the *requested*
// offset; callers address bytes by absolute file offset through `at()`, which
// bounds-checks every access. Regions are handed around as
// `shared_ptr<const MmapRegion>` and borrowed into `ArraySegment`s
// (common/array_segment.hpp), so the mapping stays alive exactly as long as
// any array still points into it — destruction munmaps.
//
// Why mmap instead of read(): N serving processes loading the same prepared
// snapshot share ONE page-cache copy of the arrays, and load time is O(pages
// touched) instead of O(file size) — the kernel faults in only the rows a
// process actually multiplies with. The flip side: bytes are re-read from the
// mapping on every access, so corruption checks are opt-in (see the
// verify-on-demand flags in serve/snapshot.hpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/error.hpp"
#include "common/residency.hpp"

namespace cw {

class MmapRegion {
 public:
  /// Map [offset, offset+length) of `path` read-only. length == 0 means "to
  /// end of file". Throws cw::Error if the file cannot be opened, the range
  /// exceeds the file, or the platform has no mmap.
  static std::shared_ptr<const MmapRegion> map_file(const std::string& path,
                                                    std::uint64_t offset = 0,
                                                    std::uint64_t length = 0);

  /// Size of `path` in bytes without mapping anything (selective loaders
  /// size their windows from this).
  static std::uint64_t query_file_size(const std::string& path);

  MmapRegion(const MmapRegion&) = delete;
  MmapRegion& operator=(const MmapRegion&) = delete;
  ~MmapRegion();

  /// First mapped byte — the byte at file offset file_offset().
  [[nodiscard]] const std::byte* data() const { return data_; }

  /// Mapped length in bytes (the requested range, not the page-rounded one).
  [[nodiscard]] std::uint64_t size() const { return size_; }

  /// Absolute file offset of data()[0].
  [[nodiscard]] std::uint64_t file_offset() const { return file_offset_; }

  /// Total size of the underlying file at map time.
  [[nodiscard]] std::uint64_t file_size() const { return file_size_; }

  /// True iff [file_off, file_off+len) lies inside the mapped range.
  [[nodiscard]] bool contains(std::uint64_t file_off, std::uint64_t len) const {
    return file_off >= file_offset_ && len <= size_ &&
           file_off - file_offset_ <= size_ - len;
  }

  /// Pointer to absolute file offset `file_off`, valid for `len` bytes.
  /// Throws cw::Error when the range falls outside the mapping (a truncated
  /// or lying snapshot file must never turn into a wild pointer).
  [[nodiscard]] const std::byte* at(std::uint64_t file_off,
                                    std::uint64_t len) const {
    if (!contains(file_off, len))
      throw Error("mmap: range [" + std::to_string(file_off) + ", +" +
                  std::to_string(len) + ") outside mapped region (truncated "
                  "file?)");
    return data_ + (file_off - file_offset_);
  }

  // --- residency control (common/residency.hpp) -----------------------------
  //
  // Per-range variants address bytes by absolute file offset like at() (and
  // share its bounds checking); the no-argument variants cover the whole
  // mapping. All of them are advisory: false means "the kernel ignored us",
  // and the mapping keeps working lazily.

  /// madvise the given range (or the whole mapping).
  bool advise(residency::Advice advice) const {
    return size_ > 0 && residency::advise(data_, size_, advice);
  }
  bool advise(std::uint64_t file_off, std::uint64_t len,
              residency::Advice advice) const {
    return residency::advise(at(file_off, len), static_cast<std::size_t>(len),
                             advice);
  }

  /// mlock / munlock the given range (or the whole mapping).
  bool lock(std::uint64_t file_off, std::uint64_t len) const {
    return residency::lock(at(file_off, len), static_cast<std::size_t>(len));
  }
  bool unlock(std::uint64_t file_off, std::uint64_t len) const {
    return residency::unlock(at(file_off, len), static_cast<std::size_t>(len));
  }

  /// mincore probe: bytes of the range (or whole mapping) in RAM right now.
  /// For a file mapping this reports page-cache residency — "accessible
  /// without disk IO", shared across every process mapping the file.
  [[nodiscard]] std::uint64_t resident_bytes() const {
    return size_ > 0 ? residency::resident_bytes(data_, size_) : 0;
  }
  [[nodiscard]] std::uint64_t resident_bytes(std::uint64_t file_off,
                                             std::uint64_t len) const {
    return residency::resident_bytes(at(file_off, len),
                                     static_cast<std::size_t>(len));
  }

  /// Drop the page-cache copies of the range (posix_fadvise DONTNEED on the
  /// region's file descriptor, which stays open for the mapping's lifetime).
  /// madvise(kDontNeed) only sheds this process's page tables; physically
  /// freeing an evicted snapshot's memory takes this too. Bounds-checked
  /// like at(); the dropped bytes re-read from disk on next access.
  /// The first drop fsyncs the file once (fadvise skips dirty pages, and a
  /// just-written snapshot is all dirty pages); the mapping is read-only,
  /// so one flush per region covers every later call.
  bool drop_cache(std::uint64_t file_off, std::uint64_t len) const {
    (void)at(file_off, len);  // bounds check
    if (!synced_.exchange(true, std::memory_order_relaxed))
      residency::sync_file(fd_);
    return residency::drop_file_cache(fd_, file_off, len);
  }

 private:
  MmapRegion() = default;

  void* map_base_ = nullptr;  // page-aligned mmap return value
  std::size_t map_len_ = 0;   // page-rounded mapped length
  int fd_ = -1;               // kept open so drop_cache can fadvise
  mutable std::atomic<bool> synced_{false};  // one fsync per region suffices
  const std::byte* data_ = nullptr;
  std::uint64_t size_ = 0;
  std::uint64_t file_offset_ = 0;
  std::uint64_t file_size_ = 0;
};

}  // namespace cw
