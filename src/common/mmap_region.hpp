// Read-only memory-mapped file region — the storage substrate of snapshot
// format v3's zero-copy load path (serve/snapshot.hpp).
//
// A region maps a byte range [offset, offset+size) of a file with PROT_READ.
// mmap requires page-aligned file offsets, so the region maps from the
// containing page boundary internally and exposes `data()` at the *requested*
// offset; callers address bytes by absolute file offset through `at()`, which
// bounds-checks every access. Regions are handed around as
// `shared_ptr<const MmapRegion>` and borrowed into `ArraySegment`s
// (common/array_segment.hpp), so the mapping stays alive exactly as long as
// any array still points into it — destruction munmaps.
//
// Why mmap instead of read(): N serving processes loading the same prepared
// snapshot share ONE page-cache copy of the arrays, and load time is O(pages
// touched) instead of O(file size) — the kernel faults in only the rows a
// process actually multiplies with. The flip side: bytes are re-read from the
// mapping on every access, so corruption checks are opt-in (see the
// verify-on-demand flags in serve/snapshot.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/error.hpp"

namespace cw {

class MmapRegion {
 public:
  /// Map [offset, offset+length) of `path` read-only. length == 0 means "to
  /// end of file". Throws cw::Error if the file cannot be opened, the range
  /// exceeds the file, or the platform has no mmap.
  static std::shared_ptr<const MmapRegion> map_file(const std::string& path,
                                                    std::uint64_t offset = 0,
                                                    std::uint64_t length = 0);

  /// Size of `path` in bytes without mapping anything (selective loaders
  /// size their windows from this).
  static std::uint64_t query_file_size(const std::string& path);

  MmapRegion(const MmapRegion&) = delete;
  MmapRegion& operator=(const MmapRegion&) = delete;
  ~MmapRegion();

  /// First mapped byte — the byte at file offset file_offset().
  [[nodiscard]] const std::byte* data() const { return data_; }

  /// Mapped length in bytes (the requested range, not the page-rounded one).
  [[nodiscard]] std::uint64_t size() const { return size_; }

  /// Absolute file offset of data()[0].
  [[nodiscard]] std::uint64_t file_offset() const { return file_offset_; }

  /// Total size of the underlying file at map time.
  [[nodiscard]] std::uint64_t file_size() const { return file_size_; }

  /// True iff [file_off, file_off+len) lies inside the mapped range.
  [[nodiscard]] bool contains(std::uint64_t file_off, std::uint64_t len) const {
    return file_off >= file_offset_ && len <= size_ &&
           file_off - file_offset_ <= size_ - len;
  }

  /// Pointer to absolute file offset `file_off`, valid for `len` bytes.
  /// Throws cw::Error when the range falls outside the mapping (a truncated
  /// or lying snapshot file must never turn into a wild pointer).
  [[nodiscard]] const std::byte* at(std::uint64_t file_off,
                                    std::uint64_t len) const {
    if (!contains(file_off, len))
      throw Error("mmap: range [" + std::to_string(file_off) + ", +" +
                  std::to_string(len) + ") outside mapped region (truncated "
                  "file?)");
    return data_ + (file_off - file_offset_);
  }

 private:
  MmapRegion() = default;

  void* map_base_ = nullptr;  // page-aligned mmap return value
  std::size_t map_len_ = 0;   // page-rounded mapped length
  const std::byte* data_ = nullptr;
  std::uint64_t size_ = 0;
  std::uint64_t file_offset_ = 0;
  std::uint64_t file_size_ = 0;
};

}  // namespace cw
