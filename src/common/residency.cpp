#include "common/residency.hpp"

#include <cstdint>

#if !defined(CW_NO_RESIDENCY_SYSCALLS) && !defined(_WIN32)
#define CW_RESIDENCY_POSIX 1
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <vector>
#endif

namespace cw::residency {

const char* to_string(Advice advice) {
  switch (advice) {
    case Advice::kNormal: return "normal";
    case Advice::kWillNeed: return "willneed";
    case Advice::kDontNeed: return "dontneed";
    case Advice::kSequential: return "sequential";
    case Advice::kRandom: return "random";
  }
  return "?";
}

namespace {

struct PageRange {
  void* base = nullptr;
  std::size_t len = 0;
};

/// Round [addr, addr+len) OUT to page boundaries. The page containing any
/// byte of a live range is itself part of a live mapping, so widening never
/// escapes the caller's mapping — it can only reach bytes that share a page
/// with it. Only non-destructive hints may widen.
PageRange page_widen(const void* addr, std::size_t len) {
  const std::size_t page = page_size();
  const auto a = reinterpret_cast<std::uintptr_t>(addr);
  const std::uintptr_t floor = a - a % page;
  PageRange r;
  r.base = reinterpret_cast<void*>(floor);
  r.len = (a - floor) + len;
  r.len = (r.len + page - 1) / page * page;
  return r;
}

/// Shrink [addr, addr+len) IN to the pages it fully contains. Destructive
/// operations (munlock, DONTNEED) must never touch a boundary page shared
/// with a neighbouring 64B-aligned segment: widening there would unpin a
/// still-locked neighbour's page (munlock does not reference-count) or make
/// madvise fail with EINVAL on a range containing a VM_LOCKED page. A range
/// containing no full page shrinks to empty — nothing destructive to do.
PageRange page_shrink(const void* addr, std::size_t len) {
  const std::size_t page = page_size();
  const auto a = reinterpret_cast<std::uintptr_t>(addr);
  const std::uintptr_t begin = (a + page - 1) / page * page;
  const std::uintptr_t end = (a + len) / page * page;
  PageRange r;
  r.base = reinterpret_cast<void*>(begin);
  r.len = end > begin ? end - begin : 0;
  return r;
}

}  // namespace

#ifdef CW_RESIDENCY_POSIX

bool supported() { return true; }

std::size_t page_size() {
  static const std::size_t page = [] {
    const long p = ::sysconf(_SC_PAGESIZE);
    return p > 0 ? static_cast<std::size_t>(p) : std::size_t{4096};
  }();
  return page;
}

bool advise(const void* addr, std::size_t len, Advice advice) {
  if (addr == nullptr || len == 0) return false;
  int flag = MADV_NORMAL;
  switch (advice) {
    case Advice::kNormal: flag = MADV_NORMAL; break;
    case Advice::kWillNeed: flag = MADV_WILLNEED; break;
    case Advice::kDontNeed: flag = MADV_DONTNEED; break;
    case Advice::kSequential: flag = MADV_SEQUENTIAL; break;
    case Advice::kRandom: flag = MADV_RANDOM; break;
  }
  // DONTNEED destroys; everything else merely hints.
  const PageRange r = advice == Advice::kDontNeed ? page_shrink(addr, len)
                                                  : page_widen(addr, len);
  if (r.len == 0) return true;  // no fully-contained page: vacuously done
  return ::madvise(r.base, r.len, flag) == 0;
}

bool lock(const void* addr, std::size_t len) {
  if (addr == nullptr || len == 0) return false;
  // Pin/unpin only fully-contained pages, symmetrically: the kernel widens
  // mlock ranges itself, and a widened pin (or unpin) on a boundary page
  // shared with a neighbouring segment would interfere with that
  // neighbour's own locking.
  const PageRange r = page_shrink(addr, len);
  if (r.len == 0) return true;
  return ::mlock(r.base, r.len) == 0;
}

bool unlock(const void* addr, std::size_t len) {
  if (addr == nullptr || len == 0) return false;
  const PageRange r = page_shrink(addr, len);
  if (r.len == 0) return true;
  return ::munlock(r.base, r.len) == 0;
}

std::size_t resident_bytes(const void* addr, std::size_t len) {
  if (addr == nullptr || len == 0) return 0;
  const std::size_t page = page_size();
  const PageRange r = page_widen(addr, len);
  const std::size_t npages = r.len / page;
  std::vector<unsigned char> vec(npages);
#if defined(__APPLE__)
  if (::mincore(r.base, r.len, reinterpret_cast<char*>(vec.data())) != 0)
    return 0;
#else
  if (::mincore(r.base, r.len, vec.data()) != 0) return 0;
#endif
  // Count only the overlap of each resident page with the requested range,
  // so a probe over a small sub-range never reports more than `len`.
  const auto begin = reinterpret_cast<std::uintptr_t>(addr);
  const auto end = begin + len;
  const auto base = reinterpret_cast<std::uintptr_t>(r.base);
  std::size_t resident = 0;
  for (std::size_t i = 0; i < npages; ++i) {
    if ((vec[i] & 1) == 0) continue;
    const std::uintptr_t page_begin = base + i * page;
    const std::uintptr_t lo = page_begin > begin ? page_begin : begin;
    const std::uintptr_t hi = page_begin + page < end ? page_begin + page : end;
    if (hi > lo) resident += hi - lo;
  }
  return resident;
}

bool sync_file(int fd) { return fd >= 0 && ::fsync(fd) == 0; }

bool drop_file_cache(int fd, std::uint64_t offset, std::uint64_t len) {
  if (fd < 0 || len == 0) return false;
  // The kernel itself applies fully-contained-pages semantics to DONTNEED
  // (offset rounds up, end rounds down), which is exactly the destructive-
  // op alignment rule above — pass the raw range.
  return ::posix_fadvise(fd, static_cast<off_t>(offset),
                         static_cast<off_t>(len), POSIX_FADV_DONTNEED) == 0;
}

#else  // no residency syscalls: hints vanish, probes read 0

bool supported() { return false; }

std::size_t page_size() { return 4096; }

bool advise(const void*, std::size_t, Advice) { return false; }
bool lock(const void*, std::size_t) { return false; }
bool unlock(const void*, std::size_t) { return false; }
std::size_t resident_bytes(const void*, std::size_t) { return 0; }
bool sync_file(int) { return false; }
bool drop_file_cache(int, std::uint64_t, std::uint64_t) { return false; }

#endif

namespace {
// The touch pass must survive optimization: the reads feed a volatile sink,
// so the compiler cannot prove them dead and elide the page faults.
volatile unsigned char g_touch_sink = 0;
}  // namespace

std::size_t touch(const void* addr, std::size_t len) {
  if (addr == nullptr || len == 0) return 0;
  const std::size_t page = page_size();
  const auto* bytes = static_cast<const unsigned char*>(addr);
  unsigned char acc = 0;
  for (std::size_t off = 0; off < len; off += page) acc ^= bytes[off];
  acc ^= bytes[len - 1];
  g_touch_sink = acc;
  return len;
}

}  // namespace cw::residency
