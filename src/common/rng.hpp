// Deterministic, fast pseudo-random number generation.
//
// All generators in this library are seeded explicitly so every experiment is
// reproducible run-to-run. xoshiro256** is used instead of std::mt19937 for
// speed in the synthetic-matrix generators.
#pragma once

#include <cstdint>
#include <utility>

#include "common/types.hpp"

namespace cw {

/// SplitMix64 — used to seed xoshiro from a single 64-bit value.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t n) {
    using u128 = unsigned __int128;
    std::uint64_t x = (*this)();
    u128 m = static_cast<u128>(x) * static_cast<u128>(n);
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (-n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<u128>(x) * static_cast<u128>(n);
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform index in [0, n).
  index_t index(index_t n) { return static_cast<index_t>(bounded(static_cast<std::uint64_t>(n))); }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

/// Fisher–Yates shuffle with our Rng (std::shuffle has unspecified results
/// across standard libraries; this keeps outputs identical everywhere).
template <typename Vec>
void shuffle(Vec& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::size_t j = rng.bounded(i);
    std::swap(v[i - 1], v[j]);
  }
}

}  // namespace cw
