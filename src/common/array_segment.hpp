// ArraySegment<T> — owned-or-borrowed array storage for the sparse formats.
//
// Every bulk array in Csr / Clustering / CsrCluster is one of these. Two
// states:
//
//   * owned    — backed by a private std::vector<T> (the default; everything
//                built in-process is owned);
//   * borrowed — a read-only view into a shared MmapRegion (a snapshot-v3
//                file mapped by serve/snapshot.hpp). The segment keeps the
//                region alive, so "load" means "point at the page cache" and
//                N processes share one physical copy of the arrays.
//
// The read API is vector-like (data/size/operator[]/iteration) and identical
// in both states, so kernels never know the difference. Mutation goes
// through mutate(), which first materializes a private owned copy when the
// storage is borrowed (copy-on-write) — mapped snapshot bytes are PROT_READ
// and must never be written through. Owned reads always delegate to the
// vector, so mutation through mutate() can never leave a stale view.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/mmap_region.hpp"
#include "common/residency.hpp"

namespace cw {

template <typename T>
class ArraySegment {
  static_assert(std::is_trivially_copyable_v<T>,
                "segments hold raw fixed-width data");

 public:
  ArraySegment() = default;

  /// Owned storage (implicit: segments assign seamlessly from vectors).
  ArraySegment(std::vector<T> v) : vec_(std::move(v)) {}

  ArraySegment(std::initializer_list<T> init) : vec_(init) {}

  /// Borrowed storage: `count` elements at `data`, which must lie inside
  /// `region` (the caller — SegmentTable in snapshot_io.hpp — has
  /// bounds-checked that). The segment shares ownership of the mapping.
  static ArraySegment borrowed(const T* data, std::size_t count,
                               std::shared_ptr<const MmapRegion> region) {
    ArraySegment s;
    if (count == 0) return s;  // empty segments need no region
    s.region_ = std::move(region);
    s.data_ = data;
    s.size_ = count;
    return s;
  }

  // Default copy/move are correct in both states: an owned copy deep-copies
  // the vector (and reads through it), a borrowed copy shares the mapping.
  // A moved-from segment reads as empty owned.

  // --- read API (both states) ----------------------------------------------

  [[nodiscard]] const T* data() const {
    return region_ ? data_ : vec_.data();
  }
  [[nodiscard]] std::size_t size() const {
    return region_ ? size_ : vec_.size();
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::size_t size_bytes() const { return size() * sizeof(T); }
  const T& operator[](std::size_t i) const { return data()[i]; }
  [[nodiscard]] const T& front() const { return data()[0]; }
  [[nodiscard]] const T& back() const { return data()[size() - 1]; }
  [[nodiscard]] const T* begin() const { return data(); }
  [[nodiscard]] const T* end() const { return data() + size(); }
  [[nodiscard]] std::span<const T> span() const { return {data(), size()}; }

  /// True when backed by a private vector; false when borrowed from a
  /// mapped region (the registry charges these differently — registry.hpp).
  [[nodiscard]] bool owned() const { return region_ == nullptr; }

  [[nodiscard]] const std::shared_ptr<const MmapRegion>& region() const {
    return region_;
  }

  [[nodiscard]] std::vector<T> to_vector() const {
    return std::vector<T>(data(), data() + size());
  }

  // --- residency (borrowed segments only) ----------------------------------
  //
  // A borrowed segment is a byte range of its region's file mapping, so
  // higher layers (Pipeline::warm_up / the registry's eviction-with-teeth)
  // can steer its physical residency per array. Owned segments live on the
  // private heap — hints are meaningless there, and they are simply counted
  // as fully resident.

  /// madvise this segment's byte range; no-op (false) when owned or empty.
  bool advise(residency::Advice a) const {
    return !owned() && residency::advise(data_, size_ * sizeof(T), a);
  }

  /// mlock / munlock this segment's byte range; no-op (false) when owned.
  bool lock_memory() const {
    return !owned() && residency::lock(data_, size_ * sizeof(T));
  }
  bool unlock_memory() const {
    return !owned() && residency::unlock(data_, size_ * sizeof(T));
  }

  /// Bytes of this segment in physical memory: the full size for owned
  /// (heap) storage, a mincore probe for borrowed storage.
  [[nodiscard]] std::size_t resident_bytes() const {
    if (owned()) return size_bytes();
    return residency::resident_bytes(data_, size_ * sizeof(T));
  }

  /// Physically release a borrowed segment: unpin, drop this process's page
  /// tables (DONTNEED), then drop the kernel's page-cache copies of the
  /// backing file range — mincore stops reporting the bytes resident and the
  /// machine gets its memory back. Next access re-reads from disk. Returns
  /// the bytes released (0 for owned/empty segments or fallback builds).
  std::size_t release() const {
    if (owned() || size_ == 0) return 0;
    unlock_memory();
    const bool dropped = advise(residency::Advice::kDontNeed);
    const auto off = static_cast<std::uint64_t>(
        reinterpret_cast<const std::byte*>(data_) - region_->data());
    region_->drop_cache(region_->file_offset() + off, size_ * sizeof(T));
    return dropped ? size_bytes() : 0;
  }

  // --- mutate API ----------------------------------------------------------

  /// Mutable access to the underlying vector, materializing a private copy
  /// first if the storage is borrowed (mapped bytes are read-only).
  std::vector<T>& mutate() {
    if (region_) {
      vec_.assign(data_, data_ + size_);
      region_.reset();
      data_ = nullptr;
      size_ = 0;
    }
    return vec_;
  }

  /// Element-wise mutable span over owned (materialized) storage.
  [[nodiscard]] std::span<T> mutable_span() {
    std::vector<T>& v = mutate();
    return {v.data(), v.size()};
  }

  /// Element-wise equality with the element type's own == (matching the
  /// std::vector comparison this storage replaced — so +0.0 == -0.0 and
  /// NaN != NaN for floating T, exactly as before).
  bool operator==(const ArraySegment& other) const {
    if (size() != other.size()) return false;
    return std::equal(begin(), end(), other.begin());
  }

  bool operator==(const std::vector<T>& v) const {
    if (size() != v.size()) return false;
    return std::equal(begin(), end(), v.begin());
  }

 private:
  std::vector<T> vec_;                        // owned state (region_ null)
  std::shared_ptr<const MmapRegion> region_;  // borrowed state (non-null)
  const T* data_ = nullptr;                   // borrowed view
  std::size_t size_ = 0;                      // borrowed view
};

}  // namespace cw
