#include "eval/tables.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace cw {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      if (c) os << "  ";
      const std::string& cell = c < row.size() ? row[c] : std::string();
      if (c == 0) {
        os << cell << std::string(width[c] - cell.size(), ' ');
      } else {
        os << std::string(width[c] - cell.size(), ' ') << cell;
      }
    }
    os << "\n";
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < header_.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string fmt_double(double x, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << x;
  return os.str();
}

std::string fmt_seconds(double s) {
  std::ostringstream os;
  if (s < 1e-3) {
    os << std::fixed << std::setprecision(1) << s * 1e6 << "us";
  } else if (s < 1.0) {
    os << std::fixed << std::setprecision(2) << s * 1e3 << "ms";
  } else {
    os << std::fixed << std::setprecision(2) << s << "s";
  }
  return os.str();
}

std::string fmt_speedup(double s) { return fmt_double(s, 2) + "x"; }

}  // namespace cw
