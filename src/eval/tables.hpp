// Fixed-width text table rendering for the bench binaries.
#pragma once

#include <string>
#include <vector>

namespace cw {

/// Simple left-aligned-first-column table with right-aligned numerics.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with column auto-sizing and a rule under the header.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers.
std::string fmt_double(double x, int precision = 2);
std::string fmt_seconds(double s);
std::string fmt_speedup(double s);

}  // namespace cw
