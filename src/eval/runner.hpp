// Shared experiment driver for every table/figure bench binary.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "gen/suite.hpp"

namespace cw {

struct RunConfig {
  SuiteScale scale = SuiteScale::kSmall;
  int reps = 3;  // paper averages 10 runs; CW_REPS overrides
  /// Optional comma-separated dataset filter (CW_DATASETS).
  std::vector<std::string> dataset_filter;
};

/// CW_SUITE / CW_REPS / CW_DATASETS environment configuration.
RunConfig run_config_from_env();

/// True if `name` passes the dataset filter.
bool dataset_selected(const RunConfig& cfg, const std::string& name);

/// Mean seconds of row-wise SpGEMM A×A (hash accumulator) over cfg.reps runs.
double time_rowwise_square(const Csr& a, const RunConfig& cfg);

/// Mean seconds of the pipeline's A'×A' over cfg.reps runs (preprocessing
/// excluded — it is reported separately via pipeline.stats()).
double time_pipeline_square(const Pipeline& pipeline, const RunConfig& cfg);

/// Mean seconds of row-wise A×B over cfg.reps runs.
double time_rowwise(const Csr& a, const Csr& b, const RunConfig& cfg);

/// Mean seconds of the pipeline's A'×B over cfg.reps runs.
double time_pipeline(const Pipeline& pipeline, const Csr& b,
                     const RunConfig& cfg);

/// One dataset × one pipeline configuration, A² workload.
struct SquareExperiment {
  std::string dataset;
  double baseline_seconds = 0;   // row-wise, original order
  double variant_seconds = 0;    // configured pipeline
  double preprocess_seconds = 0; // reorder + cluster + format build
  PipelineStats pipeline_stats;
  [[nodiscard]] double speedup() const {
    return variant_seconds > 0 ? baseline_seconds / variant_seconds : 0.0;
  }
  /// SpGEMM iterations needed to amortize preprocessing (Fig. 10); infinity
  /// when the variant is not faster.
  [[nodiscard]] double amortization_iters() const {
    const double gain = baseline_seconds - variant_seconds;
    if (gain <= 0) return 1e18;
    return preprocess_seconds / gain;
  }
};

/// Run one configuration against a prebuilt baseline time.
SquareExperiment run_square_experiment(const std::string& dataset,
                                       const Csr& a,
                                       const PipelineOptions& opt,
                                       double baseline_seconds,
                                       const RunConfig& cfg);

}  // namespace cw
