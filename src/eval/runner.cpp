#include "eval/runner.hpp"

#include <cstdlib>
#include <sstream>

#include "common/timer.hpp"

namespace cw {

RunConfig run_config_from_env() {
  RunConfig cfg;
  cfg.scale = suite_scale_from_env();
  if (const char* reps = std::getenv("CW_REPS")) {
    const int r = std::atoi(reps);
    if (r >= 1) cfg.reps = r;
  }
  if (const char* filter = std::getenv("CW_DATASETS")) {
    std::istringstream ss(filter);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      if (!tok.empty()) cfg.dataset_filter.push_back(tok);
    }
  }
  return cfg;
}

bool dataset_selected(const RunConfig& cfg, const std::string& name) {
  if (cfg.dataset_filter.empty()) return true;
  for (const auto& f : cfg.dataset_filter)
    if (f == name) return true;
  return false;
}

double time_rowwise_square(const Csr& a, const RunConfig& cfg) {
  return time_mean_of(cfg.reps, [&] {
    Csr c = spgemm(a, a, Accumulator::kHash);
    (void)c;
  });
}

double time_pipeline_square(const Pipeline& pipeline, const RunConfig& cfg) {
  return time_mean_of(cfg.reps, [&] {
    Csr c = pipeline.multiply_square();
    (void)c;
  });
}

double time_rowwise(const Csr& a, const Csr& b, const RunConfig& cfg) {
  return time_mean_of(cfg.reps, [&] {
    Csr c = spgemm(a, b, Accumulator::kHash);
    (void)c;
  });
}

double time_pipeline(const Pipeline& pipeline, const Csr& b,
                     const RunConfig& cfg) {
  return time_mean_of(cfg.reps, [&] {
    Csr c = pipeline.multiply(b);
    (void)c;
  });
}

SquareExperiment run_square_experiment(const std::string& dataset,
                                       const Csr& a,
                                       const PipelineOptions& opt,
                                       double baseline_seconds,
                                       const RunConfig& cfg) {
  SquareExperiment e;
  e.dataset = dataset;
  e.baseline_seconds = baseline_seconds;
  Pipeline pipeline(a, opt);
  e.pipeline_stats = pipeline.stats();
  e.preprocess_seconds = pipeline.stats().preprocess_seconds();
  e.variant_seconds = time_pipeline_square(pipeline, cfg);
  return e;
}

}  // namespace cw
