#include "obs/flight.hpp"

#include <sstream>
#include <utility>

namespace cw::obs {

const char* to_string(FlightReason reason) {
  switch (reason) {
    case FlightReason::kSlow:
      return "slow";
    case FlightReason::kError:
      return "error";
    case FlightReason::kShed:
      return "shed";
  }
  return "unknown";
}

namespace {

FlightOptions sanitize(FlightOptions opt) {
  if (opt.capacity == 0) opt.capacity = 1;
  return opt;
}

}  // namespace

FlightRecorder::FlightRecorder(FlightOptions opt)
    : opt_(sanitize(opt)), epoch_(Clock::now()) {}

std::shared_ptr<TraceContext> FlightRecorder::begin(std::uint64_t request_id) {
  auto ctx = std::make_shared<TraceContext>(request_id, epoch_);
  ctx->reserve(opt_.reserve_spans);
  return ctx;
}

void FlightRecorder::keep_(FlightRecord rec) {
  std::lock_guard<std::mutex> lock(mu_);
  ++kept_;
  if (ring_.size() >= opt_.capacity) {
    ring_.pop_front();
    ++overwritten_;
  }
  ring_.push_back(std::move(rec));
}

void FlightRecorder::complete(const std::shared_ptr<TraceContext>& ctx,
                              double latency_ms) {
  if (ctx == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++completed_;
  }
  if (latency_ms < opt_.slow_threshold_ms) return;  // the fast bulk: discard
  FlightRecord rec;
  rec.request_id = ctx->id();
  rec.latency_ms = latency_ms;
  rec.reason = FlightReason::kSlow;
  rec.spans = ctx->take_spans();
  keep_(std::move(rec));
}

void FlightRecorder::complete_error(const std::shared_ptr<TraceContext>& ctx,
                                    double latency_ms, std::string what) {
  if (ctx == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++completed_;
  }
  if (!opt_.keep_errors) return;
  FlightRecord rec;
  rec.request_id = ctx->id();
  rec.latency_ms = latency_ms;
  rec.reason = FlightReason::kError;
  rec.error = std::move(what);
  rec.spans = ctx->take_spans();
  keep_(std::move(rec));
}

void FlightRecorder::record_shed(std::uint64_t request_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++completed_;
  }
  if (!opt_.keep_shed) return;
  FlightRecord rec;
  rec.request_id = request_id;
  rec.reason = FlightReason::kShed;
  keep_(std::move(rec));
}

std::vector<FlightRecord> FlightRecorder::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<FlightRecord>(ring_.begin(), ring_.end());
}

std::uint64_t FlightRecorder::completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

std::uint64_t FlightRecorder::kept() const {
  std::lock_guard<std::mutex> lock(mu_);
  return kept_;
}

std::uint64_t FlightRecorder::overwritten() const {
  std::lock_guard<std::mutex> lock(mu_);
  return overwritten_;
}

void FlightRecorder::write_chrome_json(std::ostream& os) const {
  std::vector<TraceSpan> spans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const FlightRecord& rec : ring_)
      spans.insert(spans.end(), rec.spans.begin(), rec.spans.end());
  }
  write_chrome_trace(os, std::move(spans));
}

std::string FlightRecorder::to_chrome_json() const {
  std::ostringstream os;
  write_chrome_json(os);
  return os.str();
}

}  // namespace cw::obs
