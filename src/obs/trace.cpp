#include "obs/trace.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace cw::obs {

void TraceContext::add(const char* name, Clock::time_point begin,
                       Clock::time_point end, const char* arg_name,
                       std::int64_t arg) {
  TraceSpan s;
  s.name = name;
  s.request_id = id_;
  s.ts_us = std::chrono::duration<double, std::micro>(begin - epoch_).count();
  s.dur_us = std::chrono::duration<double, std::micro>(end - begin).count();
  if (s.dur_us < 0) s.dur_us = 0;
  s.arg_name = arg_name;
  s.arg = arg;
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(s);
}

void TraceContext::reserve(std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.reserve(n);
}

std::vector<TraceSpan> TraceContext::take_spans() {
  std::vector<TraceSpan> spans;
  std::lock_guard<std::mutex> lock(mu_);
  spans.swap(spans_);
  return spans;
}

namespace {

std::uint64_t stride_for(double rate) {
  if (!(rate > 0)) return 0;
  if (rate >= 1) return 1;
  return static_cast<std::uint64_t>(std::llround(1.0 / rate));
}

}  // namespace

TraceCollector::TraceCollector(TraceOptions opt)
    : opt_(opt), stride_(stride_for(opt.sample_rate)), epoch_(Clock::now()) {}

std::shared_ptr<TraceContext> TraceCollector::maybe_sample() {
  if (stride_ == 0) return nullptr;
  const std::uint64_t n = submits_.fetch_add(1, std::memory_order_relaxed);
  if (n % stride_ != 0) return nullptr;
  sampled_.fetch_add(1, std::memory_order_relaxed);
  return std::make_shared<TraceContext>(
      next_id_.fetch_add(1, std::memory_order_relaxed), epoch_);
}

void TraceCollector::commit(const std::shared_ptr<TraceContext>& ctx) {
  if (ctx == nullptr) return;
  std::vector<TraceSpan> spans = ctx->take_spans();
  std::lock_guard<std::mutex> lock(mu_);
  for (TraceSpan& s : spans) {
    if (spans_.size() >= opt_.capacity_spans) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    spans_.push_back(s);
  }
}

std::vector<TraceSpan> TraceCollector::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

void write_chrome_trace(std::ostream& os, std::vector<TraceSpan> spans) {
  // Stable render order (by request, then time): diffs and golden checks
  // should not depend on commit interleaving.
  std::sort(spans.begin(), spans.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              if (a.request_id != b.request_id)
                return a.request_id < b.request_id;
              return a.ts_us < b.ts_us;
            });
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const TraceSpan& s = spans[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "  {\"name\": \"" << s.name << "\", \"cat\": \"serve\", "
       << "\"ph\": \"X\", \"pid\": 1, \"tid\": " << s.request_id
       << ", \"ts\": " << s.ts_us << ", \"dur\": " << s.dur_us;
    os << ", \"args\": {\"request\": " << s.request_id;
    if (s.arg_name != nullptr)
      os << ", \"" << s.arg_name << "\": " << s.arg;
    os << "}}";
  }
  os << "\n]}\n";
}

void TraceCollector::write_chrome_json(std::ostream& os) const {
  write_chrome_trace(os, spans());
}

std::string TraceCollector::to_chrome_json() const {
  std::ostringstream os;
  write_chrome_json(os);
  return os.str();
}

}  // namespace cw::obs
