#include "obs/exposition.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/log.hpp"  // json_escape

namespace cw::obs {

namespace {

/// Deterministic number rendering: integral values print without a decimal
/// point, everything else with 9 significant digits — stable across
/// platforms for the golden-file test, precise enough for any scraper.
std::string fmt(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// HELP text escaping per the text exposition format: backslash and
/// newline. (Label VALUES additionally escape the double quote — see
/// prom_escape_label.) The registry's interning key keeps the RAW
/// render_labels rendering; escaping is exposition-only.
std::string prom_escape_help(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\')
      out += "\\\\";
    else if (c == '\n')
      out += "\\n";
    else
      out += c;
  }
  return out;
}

std::string prom_escape_label(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\')
      out += "\\\\";
    else if (c == '"')
      out += "\\\"";
    else if (c == '\n')
      out += "\\n";
    else
      out += c;
  }
  return out;
}

/// render_labels with exposition escaping applied to the values.
std::string prom_labels(const Labels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first;
    out += "=\"";
    out += prom_escape_label(labels[i].second);
    out += "\"";
  }
  out += "}";
  return out;
}

/// Labels with one extra pair appended (the histogram `le` label).
std::string labels_plus(const Labels& labels, const std::string& key,
                        const std::string& value) {
  Labels all = labels;
  all.emplace_back(key, value);
  return prom_labels(all);
}

}  // namespace

void write_prometheus(std::ostream& os, const MetricsRegistry& registry) {
  std::string last_name;
  for (const MetricsRegistry::Series& s : registry.series()) {
    if (s.name != last_name) {
      // One HELP/TYPE header per metric name, shared by its label series.
      if (!s.help.empty())
        os << "# HELP " << s.name << " " << prom_escape_help(s.help) << "\n";
      os << "# TYPE " << s.name << " " << to_string(s.kind) << "\n";
      last_name = s.name;
    }
    switch (s.kind) {
      case MetricKind::kCounter:
        os << s.name << prom_labels(s.labels) << " " << s.counter->value()
           << "\n";
        break;
      case MetricKind::kGauge:
        os << s.name << prom_labels(s.labels) << " " << fmt(s.gauge->value())
           << "\n";
        break;
      case MetricKind::kHistogram: {
        const HistogramSnapshot h = s.histogram->snapshot();
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
          if (h.counts[i] == 0) continue;
          cum += h.counts[i];
          os << s.name << "_bucket"
             << labels_plus(s.labels, "le", fmt(h.bounds[i])) << " " << cum
             << "\n";
        }
        os << s.name << "_bucket" << labels_plus(s.labels, "le", "+Inf") << " "
           << h.count << "\n";
        os << s.name << "_sum" << prom_labels(s.labels) << " " << fmt(h.sum)
           << "\n";
        os << s.name << "_count" << prom_labels(s.labels) << " " << h.count
           << "\n";
        break;
      }
    }
  }
}

std::string to_prometheus(const MetricsRegistry& registry) {
  std::ostringstream os;
  write_prometheus(os, registry);
  return os.str();
}

namespace {

void write_label_json(std::ostream& os, const Labels& labels) {
  os << "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    os << (i == 0 ? "" : ", ") << "\"" << json_escape(labels[i].first)
       << "\": \"" << json_escape(labels[i].second) << "\"";
  }
  os << "}";
}

}  // namespace

void write_json(std::ostream& os, const MetricsRegistry& registry) {
  const std::vector<MetricsRegistry::Series> series = registry.series();
  os << "{\n  \"counters\": [";
  bool first = true;
  for (const auto& s : series) {
    if (s.kind != MetricKind::kCounter) continue;
    os << (first ? "\n" : ",\n") << "    {\"name\": \"" << s.name
       << "\", \"labels\": ";
    write_label_json(os, s.labels);
    os << ", \"value\": " << s.counter->value() << "}";
    first = false;
  }
  os << "\n  ],\n  \"gauges\": [";
  first = true;
  for (const auto& s : series) {
    if (s.kind != MetricKind::kGauge) continue;
    os << (first ? "\n" : ",\n") << "    {\"name\": \"" << s.name
       << "\", \"labels\": ";
    write_label_json(os, s.labels);
    os << ", \"value\": " << fmt(s.gauge->value()) << "}";
    first = false;
  }
  os << "\n  ],\n  \"histograms\": [";
  first = true;
  for (const auto& s : series) {
    if (s.kind != MetricKind::kHistogram) continue;
    const HistogramSnapshot h = s.histogram->snapshot();
    os << (first ? "\n" : ",\n") << "    {\"name\": \"" << s.name
       << "\", \"labels\": ";
    write_label_json(os, s.labels);
    os << ", \"count\": " << h.count << ", \"sum\": " << fmt(h.sum)
       << ", \"max\": " << fmt(h.max) << ", \"p50\": " << fmt(h.percentile(50))
       << ", \"p95\": " << fmt(h.percentile(95))
       << ", \"p99\": " << fmt(h.percentile(99))
       << ", \"p999\": " << fmt(h.percentile(99.9)) << ", \"buckets\": [";
    bool bfirst = true;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (h.counts[i] == 0) continue;
      os << (bfirst ? "" : ", ") << "{\"le\": " << fmt(h.bounds[i])
         << ", \"count\": " << h.counts[i] << "}";
      bfirst = false;
    }
    os << "]}";
    first = false;
  }
  os << "\n  ]\n}\n";
}

std::string to_json(const MetricsRegistry& registry) {
  std::ostringstream os;
  write_json(os, registry);
  return os.str();
}

}  // namespace cw::obs
